// BFS layering for shortest-hop routing (paper §2.3).
//
// The BFS application of Decay labels every node with its hop distance
// from a gateway. Those labels immediately give minimum-hop routes: each
// node forwards upstream traffic to any neighbor labelled one less. This
// example builds a 6x10 grid deployment, runs the distributed BFS, draws
// the computed layer map next to the ground truth, and extracts a route.
#include <cstdio>
#include <vector>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/proto/bfs.hpp"
#include "radiocast/sim/simulator.hpp"

int main() {
  using namespace radiocast;
  const std::size_t rows = 6;
  const std::size_t cols = 10;
  const graph::Graph g = graph::grid(rows, cols);
  const NodeId gateway = 0;

  const proto::BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.02,
      .stop_probability = 0.5,
  };

  // Run the distributed BFS through the harness once for the summary...
  const auto outcome =
      harness::run_bgi_bfs(g, gateway, params, /*seed=*/11, Slot{1} << 22);
  std::printf("distributed BFS on a %zux%zu grid: %zu/%zu labels correct "
              "(%s), %llu slots\n",
              rows, cols, outcome.correct_labels, outcome.node_count,
              outcome.labels_correct ? "all exact" : "some off",
              static_cast<unsigned long long>(outcome.slots_run));

  // ...and once by hand so we can read the labels out of the protocols.
  sim::Simulator s(g, sim::SimOptions{11});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == gateway) {
      sim::Message m;
      m.origin = gateway;
      s.emplace_protocol<proto::BgiBfs>(v, params, m);
    } else {
      s.emplace_protocol<proto::BgiBfs>(v, params);
    }
  }
  s.run_until(
      [&](const sim::Simulator& sim) {
        if (sim.now() == 0) {
          return false;
        }
        for (NodeId v = 0; v < g.node_count(); ++v) {
          const auto& p = sim.protocol_as<proto::BgiBfs>(v);
          if (p.informed() && !p.terminated()) {
            return false;
          }
        }
        return true;
      },
      Slot{1} << 22);

  std::printf("\nhop-distance layers (computed by the radio protocol):\n");
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      const auto& p =
          s.protocol_as<proto::BgiBfs>(static_cast<NodeId>(r * cols + c));
      if (p.informed()) {
        std::printf("%3llu",
                    static_cast<unsigned long long>(p.distance()));
      } else {
        std::printf("  ?");
      }
    }
    std::printf("\n");
  }

  // Extract a minimum-hop route from the far corner back to the gateway by
  // always stepping to a neighbor with a smaller label.
  std::vector<NodeId> route;
  NodeId cur = static_cast<NodeId>(rows * cols - 1);
  route.push_back(cur);
  while (cur != gateway) {
    const auto& here = s.protocol_as<proto::BgiBfs>(cur);
    NodeId next = kNoNode;
    for (const NodeId nb : g.out_neighbors(cur)) {
      const auto& p = s.protocol_as<proto::BgiBfs>(nb);
      if (p.informed() && p.distance() + 1 == here.distance()) {
        next = nb;
        break;
      }
    }
    if (next == kNoNode) {
      std::printf("route extraction stuck at %u (label noise)\n", cur);
      return 1;
    }
    cur = next;
    route.push_back(cur);
  }
  std::printf("\nmin-hop route from node %zu to the gateway:", rows * cols - 1);
  for (const NodeId hop : route) {
    std::printf(" %u", hop);
  }
  std::printf("  (%zu hops, true distance %u)\n", route.size() - 1,
              graph::bfs_distances(g, gateway)[rows * cols - 1]);
  return 0;
}
