// The paper's story in one terminal screen: on the 3-layer family C_n,
// randomization broadcasts in O(log n * log(n/ε)) slots while every
// deterministic protocol — however clever — needs Ω(n).
//
// This example walks a single C_64 instance end to end:
//   1. build G_S with a hidden S,
//   2. run the randomized Broadcast_scheme (fast),
//   3. run deterministic DFS and round-robin (slow),
//   4. run the hitting-game adversary against a deterministic strategy to
//      show WHY determinism is stuck: the referee's answers carry no
//      information until ~n/2 probes have been spent.
#include <cstdio>

#include "radiocast/graph/families.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/lb/reduction.hpp"
#include "radiocast/lb/strategies.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/rng/rng.hpp"

int main() {
  using namespace radiocast;
  const std::size_t n = 64;

  // 1. The hidden instance: sink behind the single second-layer node 64.
  const NodeId s_members[] = {static_cast<NodeId>(n)};
  const auto net = graph::make_cn(n, s_members);
  std::printf("C_%zu: source=0, second layer=1..%zu, sink=%u, |S|=%zu "
              "(diameter 3)\n",
              n, n, net.sink, net.s.size());

  // 2. Randomized broadcast.
  const proto::BroadcastParams params{
      .network_size_bound = net.g.node_count(),
      .degree_bound = net.g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };
  const NodeId sources[] = {net.source};
  const auto rand_run = harness::run_bgi_broadcast(net.g, sources, params,
                                                   /*seed=*/3, 1 << 20);
  std::printf("\n[randomized] BGI Broadcast_scheme: %s in %llu slots "
              "(k=%u-slot Decay phases, t=%u repetitions)\n",
              rand_run.all_informed ? "complete" : "failed",
              static_cast<unsigned long long>(rand_run.completion_slot + 1),
              params.phase_length(), params.repetitions());

  // 3. Deterministic baselines on the very same network.
  const auto dfs = harness::run_dfs_broadcast(net.g, net.source, 8 * n);
  const auto rr = harness::run_round_robin(net.g, net.source, 8 * n);
  std::printf("[deterministic] DFS token traversal: complete in %llu slots\n",
              static_cast<unsigned long long>(dfs.completion_slot + 1));
  std::printf("[deterministic] round-robin:         complete in %llu slots\n",
              static_cast<unsigned long long>(rr.completion_slot + 1));

  // 4. Why determinism is stuck: the hitting game.
  lb::ScanSingletonsStrategy scan;
  const auto foiled = lb::foil_strategy(scan, n, n / 2);
  if (foiled.has_value()) {
    std::printf(
        "\n[lower bound] find_set adversary vs '%s': survived %zu moves;\n"
        "              every referee answer was predetermined (Lemma 9), so\n"
        "              the explorer learned nothing for n/2 = %zu probes.\n",
        scan.name(), foiled->moves_collected, n / 2);
  }
  lb::BitSplitAbstract bit_split;
  const auto protocol_foil =
      lb::foil_abstract_protocol(bit_split, n, n / 4, 100 * n);
  if (protocol_foil.has_value()) {
    std::printf(
        "[lower bound] abstract '%s' protocol on the adversarial G_S:\n"
        "              survived %zu rounds (floor n/4 = %zu) — Θ(n), despite"
        "\n              its log n binary-splitting rounds.\n",
        bit_split.name(), protocol_foil->rounds_survived, n / 4);
  }

  std::printf("\nThe exponential gap of the paper's title: %llu slots "
              "(randomized) vs %llu+ slots (any deterministic protocol).\n",
              static_cast<unsigned long long>(rand_run.completion_slot + 1),
              static_cast<unsigned long long>(n / 8));
  return 0;
}
