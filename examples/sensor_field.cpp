// Sensor field: the paper's motivating setting — a field of radio sensors
// with physical (unit-disk) connectivity, asymmetric long-range uplinks,
// and no topology knowledge at the nodes.
//
// A base station (node 0) disseminates a configuration message to 500
// sensors using the BGI randomized broadcast; we then compare against the
// deterministic round-robin baseline on the same field, and show the
// effect of radio range on completion time.
#include <cstdio>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/harness/table.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/stats/chernoff.hpp"

int main() {
  using namespace radiocast;
  const std::size_t sensors = 500;

  harness::print_banner("sensor field: 500 unit-disk sensors, base station "
                        "broadcast, range sweep");
  harness::Table table({"radio range", "mean degree", "diameter",
                        "BGI slots", "thm4 bound", "round-robin slots"});

  for (const double range : {0.06, 0.09, 0.14, 0.22}) {
    rng::Rng field_rng(2026);
    const graph::Graph g = graph::random_geometric(sensors, range, field_rng);
    const auto d = graph::diameter(g);
    const auto stats_deg = graph::degree_stats(g);

    const proto::BroadcastParams params{
        .network_size_bound = sensors,
        .degree_bound = g.max_in_degree(),
        .epsilon = 0.05,
        .stop_probability = 0.5,
    };
    const NodeId sources[] = {0};
    const auto bgi = harness::run_bgi_broadcast(g, sources, params,
                                                /*seed=*/7, Slot{1} << 22);
    const auto rr =
        harness::run_round_robin(g, 0, Slot{sensors} * (d + 2) * 2);
    const double bound = stats::theorem4_delivery_slots(
        d, sensors, g.max_in_degree(), params.epsilon);

    table.add_row(
        {harness::Table::num(range, 2),
         harness::Table::num(stats_deg.mean_in, 1), harness::Table::inum(d),
         bgi.all_informed ? harness::Table::inum(bgi.completion_slot) : "-",
         harness::Table::num(bound, 0),
         rr.all_heard ? harness::Table::inum(rr.completion_slot) : "-"});
  }
  table.print();
  std::printf(
      "\nTakeaways: a longer radio range densifies the field (higher degree,"
      "\nsmaller diameter); the randomized protocol's completion time stays"
      "\nnear D * log-factors while round-robin pays ~n slots per layer.\n");
  return 0;
}
