// Centralized planning vs distributed improvisation (paper §1.3).
//
// When the topology IS known ahead of time, a base station can hand out a
// fixed TDMA-style broadcast schedule (Chlamtac-Weinstein style). This
// example computes one with the greedy scheduler, validates it against
// the exact radio semantics, executes it in the simulator, and then runs
// the topology-oblivious BGI protocol on the same network for contrast.
#include <cstdio>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/sched/schedule.hpp"
#include "radiocast/sched/scheduled_broadcast.hpp"
#include "radiocast/sim/simulator.hpp"

int main() {
  using namespace radiocast;

  rng::Rng topo(404);
  const graph::Graph g = graph::connected_gnp(150, 0.035, topo);
  const auto d = graph::diameter(g);
  std::printf("network: n=%zu, diameter=%u\n", g.node_count(), d);

  // Plan.
  const sched::BroadcastSchedule plan = sched::greedy_cover_schedule(g, 0);
  const sched::ScheduleCheck check = sched::verify_schedule(g, 0, plan);
  std::printf("greedy plan: %zu slots (naive would use %zu), valid=%s, "
              "%zu transmissions\n",
              plan.length(), sched::naive_schedule(g, 0).length(),
              check.valid ? "yes" : "NO", check.transmissions);
  std::printf("slot occupancy:");
  for (std::size_t t = 0; t < std::min<std::size_t>(plan.length(), 12); ++t) {
    std::printf(" %zu", plan.slots[t].size());
  }
  std::printf("%s\n", plan.length() > 12 ? " ..." : "");

  // Execute the plan on the radio simulator.
  sim::Simulator s(g, sim::SimOptions{.seed = 2});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      m.tag = 0x71DA;
      s.emplace_protocol<sched::ScheduledBroadcast>(v, plan, v,
                                                    std::optional(m));
    } else {
      s.emplace_protocol<sched::ScheduledBroadcast>(v, plan, v,
                                                    std::nullopt);
    }
  }
  s.run_to_quiescence(plan.length() + 2);
  std::size_t informed = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    informed += s.protocol_as<sched::ScheduledBroadcast>(v).informed() ? 1 : 0;
  }
  std::printf("executed plan: %zu/%zu nodes informed in %zu slots "
              "(deterministic, zero randomness)\n",
              informed, g.node_count(), plan.length());

  // The improviser: no topology knowledge at all.
  const proto::BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.05,
      .stop_probability = 0.5,
  };
  const NodeId sources[] = {0};
  const auto bgi =
      harness::run_bgi_broadcast(g, sources, params, 3, Slot{1} << 20);
  std::printf("BGI (topology-oblivious): %s in %llu slots\n",
              bgi.all_informed ? "complete" : "failed",
              static_cast<unsigned long long>(bgi.completion_slot));
  std::printf("\nThe trade: planning needs the whole topology and "
              "recomputation on every change;\nthe randomized protocol "
              "needs nothing and pays only a log-factor premium.\n");
  return 0;
}
