// A self-organizing ad-hoc network, end to end, with no collision
// detection anywhere:
//   1. leader election — the nodes agree on a coordinator (the
//      application the paper's §2.3 points to, published as [BGI89]);
//   2. BFS from the leader — every node learns its hop distance;
//   3. point-to-point routing — the farthest node sends a report back to
//      the leader along the label gradient.
// Everything rides on the one primitive the paper contributes: Decay.
#include <cstdio>
#include <vector>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/proto/leader_election.hpp"
#include "radiocast/proto/routing.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/sim/simulator.hpp"

int main() {
  using namespace radiocast;

  // An ad-hoc deployment: 80 radios scattered in the unit square.
  rng::Rng topo(2077);
  const graph::Graph g = graph::random_geometric(80, 0.22, topo);
  const auto diameter = graph::diameter(g);
  std::printf("field: %zu radios, diameter %u, max degree %zu\n",
              g.node_count(), diameter, g.max_in_degree());

  const proto::BroadcastParams base{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.02,
      .stop_probability = 0.5,
  };

  // --- 1. Elect a coordinator -------------------------------------------
  const proto::LeaderElectionParams election{base, diameter};
  NodeId leader = kNoNode;
  {
    sim::Simulator s(g, sim::SimOptions{.seed = 11});
    for (NodeId v = 0; v < g.node_count(); ++v) {
      s.emplace_protocol<proto::LeaderElection>(v, election);
    }
    s.run_to_quiescence(election.horizon() + 2);
    bool agree = true;
    std::size_t believers = 0;
    leader = s.protocol_as<proto::LeaderElection>(0).best_owner();
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto& p = s.protocol_as<proto::LeaderElection>(v);
      agree = agree && p.best_owner() == leader;
      believers += p.believes_leader(v) ? 1 : 0;
    }
    std::printf("election: node %u elected in %llu slots "
                "(agreement=%s, self-believers=%zu)\n",
                leader, static_cast<unsigned long long>(s.now()),
                agree ? "yes" : "NO", believers);
  }

  // --- 2. BFS from the leader, 3. route a report back --------------------
  const auto dist = graph::bfs_distances(g, leader);
  NodeId farthest = leader;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dist[v] != graph::kUnreachable && dist[v] > dist[farthest]) {
      farthest = v;
    }
  }
  std::printf("report source: node %u at distance %u from the leader\n",
              farthest, dist[farthest]);

  const proto::RoutingParams routing{base, diameter};
  sim::Simulator s(g, sim::SimOptions{.seed = 12});
  using Role = proto::PointToPointRouting::Role;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Role role = v == farthest ? Role::kSource
                      : v == leader ? Role::kDestination
                                    : Role::kRelay;
    s.emplace_protocol<proto::PointToPointRouting>(
        v, routing, role,
        v == farthest ? std::vector<std::uint64_t>{0xF1E1D}
                      : std::vector<std::uint64_t>{});
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= routing.horizon();
  }, routing.horizon());

  const auto& dst = s.protocol_as<proto::PointToPointRouting>(leader);
  std::size_t cone = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    cone += s.protocol_as<proto::PointToPointRouting>(v).has_packet() ? 1 : 0;
  }
  if (dst.delivered()) {
    std::printf("routing: report delivered to the leader "
                "(BFS stage %llu slots, then %llu more; packet touched "
                "%zu/%zu nodes)\n",
                static_cast<unsigned long long>(routing.bfs_horizon()),
                static_cast<unsigned long long>(dst.packet_at() -
                                                routing.bfs_horizon()),
                cone, g.node_count());
  } else {
    std::printf("routing: report not delivered (probability <= eps)\n");
  }
  return dst.delivered() ? 0 : 1;
}
