// Dynamic topology (paper §2.2, property 3): the protocol keeps working
// while links fail and recover and nodes crash, as long as the unchanged
// core stays connected.
//
// Scenario: a 60-node mesh (stable ring + volatile chords). During the
// broadcast, every chord flaps on a 10-slot cycle and three nodes
// fail-stop mid-run (one of them recovers). The ring keeps the network
// connected throughout, so the broadcast still reaches every live node.
#include <cstdio>
#include <vector>

#include "radiocast/graph/generators.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/sim/simulator.hpp"

int main() {
  using namespace radiocast;
  const std::size_t n = 60;

  // Stable core: a ring. Volatile extras: 40 random chords.
  graph::Graph g = graph::cycle(n);
  rng::Rng topo(99);
  std::vector<std::pair<NodeId, NodeId>> chords;
  while (chords.size() < 40) {
    const auto u = static_cast<NodeId>(topo.uniform(n));
    const auto v = static_cast<NodeId>(topo.uniform(n));
    if (u != v && g.add_edge(u, v)) {
      chords.emplace_back(u, v);
    }
  }

  const proto::BroadcastParams params{
      .network_size_bound = n,
      .degree_bound = n,  // degree fluctuates under churn; use the safe cap
      .epsilon = 0.05,
      .stop_probability = 0.5,
  };

  sim::Simulator s(g, sim::SimOptions{.seed = 5});
  for (NodeId v = 0; v < n; ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      m.tag = 0xD1A;
      s.emplace_protocol<proto::BgiBroadcast>(v, params, m);
    } else {
      s.emplace_protocol<proto::BgiBroadcast>(v, params);
    }
  }

  // Chord churn: down for 10 slots, up for 10, repeating.
  for (std::size_t i = 0; i < chords.size(); ++i) {
    for (Slot cycle = 0; cycle < 30; ++cycle) {
      const Slot base = (i % 10) + cycle * 20;
      s.network().schedule({base + 10, sim::EventKind::kRemoveEdge,
                            chords[i].first, chords[i].second});
      s.network().schedule({base + 20, sim::EventKind::kAddEdge,
                            chords[i].first, chords[i].second});
    }
  }
  // Node faults: 20 and 41 crash early; 20 recovers, 41 stays down.
  s.network().schedule({6, sim::EventKind::kCrashNode, 20, kNoNode});
  s.network().schedule({8, sim::EventKind::kCrashNode, 41, kNoNode});
  s.network().schedule({40, sim::EventKind::kReviveNode, 20, kNoNode});

  Slot informed_all_live = kNever;
  for (Slot t = 0; t < 5000; ++t) {
    s.step();
    bool all_live_informed = true;
    for (NodeId v = 0; v < n; ++v) {
      if (s.network().is_alive(v) &&
          !s.protocol_as<proto::BgiBroadcast>(v).informed()) {
        all_live_informed = false;
        break;
      }
    }
    if (all_live_informed && informed_all_live == kNever) {
      informed_all_live = s.now();
    }
    if (informed_all_live != kNever && s.all_terminated()) {
      break;
    }
  }

  std::printf("network: %zu nodes (ring core + %zu flapping chords), "
              "2 crash faults, 1 recovery\n",
              n, chords.size());
  if (informed_all_live != kNever) {
    std::printf("every live node informed by slot %llu; "
                "%llu transmissions total\n",
                static_cast<unsigned long long>(informed_all_live),
                static_cast<unsigned long long>(
                    s.trace().total_transmissions()));
  } else {
    std::printf("broadcast did not reach every live node within the "
                "horizon (probability <= eps)\n");
  }
  const auto& crashed = s.protocol_as<proto::BgiBroadcast>(41);
  std::printf("node 41 (crashed at slot 8, never revived): %s\n",
              crashed.informed() ? "was informed before crashing"
                                 : "uninformed, as expected");
  const auto& recovered = s.protocol_as<proto::BgiBroadcast>(20);
  std::printf("node 20 (crashed at slot 6, revived at 40): %s\n",
              recovered.informed() ? "informed after recovery" : "missed");
  return informed_all_live != kNever ? 0 : 1;
}
