// Quickstart: broadcast one message across a 200-node random radio network
// with the BGI randomized protocol and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/rng/rng.hpp"

int main() {
  using namespace radiocast;

  // 1. A topology: a connected Erdős–Rényi graph on 200 nodes.
  rng::Rng topo_rng(/*seed=*/42);
  const graph::Graph g = graph::connected_gnp(200, 0.03, topo_rng);
  const auto diameter = graph::diameter(g);
  std::printf("network: n=%zu, arcs=%zu, diameter=%u, max in-degree=%zu\n",
              g.node_count(), g.arc_count(), diameter, g.max_in_degree());

  // 2. Protocol parameters: the protocol needs only an upper bound N on the
  //    node count, a bound Δ on the max in-degree, and the error budget ε.
  proto::BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.01,
  };
  std::printf("protocol: Decay phase k=%u slots, t=%u phases per node\n",
              params.phase_length(), params.repetitions());

  // 3. Run Broadcast_scheme: node 0 initiates; everyone relays via Decay.
  const NodeId source = 0;
  const NodeId sources[] = {source};
  const harness::BroadcastOutcome outcome = harness::run_bgi_broadcast(
      g, sources, params, /*seed=*/7, /*max_slots=*/100000);

  if (outcome.all_informed) {
    std::printf("broadcast complete: every node informed by slot %llu "
                "(%llu transmissions total)\n",
                static_cast<unsigned long long>(outcome.completion_slot),
                static_cast<unsigned long long>(outcome.transmissions));
  } else {
    std::printf("broadcast failed (probability <= ε = %.2f): "
                "activity died out at slot %llu\n",
                params.epsilon,
                static_cast<unsigned long long>(outcome.slots_run));
  }
  return outcome.all_informed ? 0 : 1;
}
