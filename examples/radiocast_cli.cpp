// radiocast_cli — drive the library from the command line.
//
//   radiocast_cli broadcast --family gnp --n 120 --eps 0.1 --trials 50
//   radiocast_cli bfs       --family grid --n 100 --trials 20
//   radiocast_cli gap       --n 128 --trials 30
//   radiocast_cli election  --family geometric --n 80
//   radiocast_cli route     --family grid --n 100 --source 99 --dest 0
//   radiocast_cli gossip    --family grid --n 36
//   radiocast_cli convergecast --family tree --n 40
//   radiocast_cli schedule  --family gnp --n 150 [--dot plan.dot]
//   radiocast_cli graph     --family geometric --n 60 --save g.txt [--dot g.dot]
//
// Sweep service front end (docs/SWEEP.md):
//   radiocast_cli sweep run    --runner gap --axis n=64,128
//       --set trials=20 --set seed=1 --set eps=0.1
//       [--cache-dir DIR] [--out DIR] [--threads W] [--quiet]
//   radiocast_cli sweep status --cache-dir DIR
//   radiocast_cli sweep gc     --cache-dir DIR [--max-entries N] [--max-bytes B]
//   radiocast_cli sweep serve  [--cache-dir DIR] [--threads W]
//
// Common options: --family {path,cycle,grid,clique,star,hypercube,tree,
// gnp,geometric,cn}, --n <nodes>, --eps <0..1>, --trials, --seed,
// --threads <workers> (0 = auto; env RADIOCAST_THREADS also honored).
//
// Fault injection (broadcast and gap commands; see docs/FAULTS.md):
//   --loss P              i.i.d. Bernoulli loss with P(drop) = P, or
//   --loss ge:PGB:PBG     Gilbert–Elliott bursty loss (good->bad, bad->good)
//   --jammers SPECS       comma-separated jammers: oblivious:P[:BUDGET],
//                         periodic:T[:PHASE[:BUDGET]], reactive:BUDGET
//   --fault-seed S        fault randomness stream (0 = derive from --seed)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "radiocast/cache/key.hpp"
#include "radiocast/cache/store.hpp"
#include "radiocast/common/check.hpp"
#include "radiocast/fault/config.hpp"
#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/graph/io.hpp"
#include "radiocast/harness/args.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/harness/options.hpp"
#include "radiocast/harness/parallel.hpp"
#include "radiocast/harness/report.hpp"
#include "radiocast/harness/sweep.hpp"
#include "radiocast/harness/sweep_runners.hpp"
#include "radiocast/harness/sweep_service.hpp"
#include "radiocast/harness/table.hpp"
#include "radiocast/proto/convergecast.hpp"
#include "radiocast/proto/gossip.hpp"
#include "radiocast/proto/leader_election.hpp"
#include "radiocast/proto/routing.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/sched/schedule.hpp"
#include "radiocast/sim/simulator.hpp"
#include "radiocast/stats/summary.hpp"

namespace {

using namespace radiocast;

graph::Graph make_family(const std::string& family, std::size_t n,
                         std::uint64_t seed) {
  rng::Rng rng(seed);
  if (family == "path") return graph::path(n);
  if (family == "cycle") return graph::cycle(n);
  if (family == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(n));
    return graph::grid(side, (n + side - 1) / side);
  }
  if (family == "clique") return graph::clique(n);
  if (family == "star") return graph::star(n);
  if (family == "hypercube") {
    return graph::hypercube(floor_log2(std::max<std::size_t>(n, 2)));
  }
  if (family == "tree") return graph::random_tree(n, rng);
  if (family == "gnp") {
    return graph::connected_gnp(n, 4.0 / static_cast<double>(n), rng);
  }
  if (family == "geometric") {
    return graph::random_geometric(
        n, 1.8 / std::sqrt(static_cast<double>(n)), rng);
  }
  if (family == "cn") {
    return graph::make_cn_random(n >= 3 ? n - 2 : 1, rng).g;
  }
  std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

[[noreturn]] void bad_spec(const char* flag, const std::string& spec) {
  std::fprintf(stderr, "cannot parse --%s '%s' (see docs/FAULTS.md)\n", flag,
               spec.c_str());
  std::exit(2);
}

// --loss P | --loss ge:PGB:PBG
double strict_prob(const std::string& s, const char* flag,
                   const std::string& spec) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || v < 0.0 || v > 1.0) {
    bad_spec(flag, spec);
  }
  return v;
}

fault::LossModel parse_loss(const std::string& spec) {
  if (spec.empty()) {
    return fault::LossModel::none();
  }
  if (spec.rfind("ge:", 0) == 0) {
    const auto parts = split(spec.substr(3), ':');
    if (parts.size() != 2) {
      bad_spec("loss", spec);
    }
    fault::GilbertElliott ge;
    ge.p_good_to_bad = strict_prob(parts[0], "loss", spec);
    ge.p_bad_to_good = strict_prob(parts[1], "loss", spec);
    return fault::LossModel::gilbert_elliott(ge);
  }
  return fault::LossModel::bernoulli(strict_prob(spec, "loss", spec));
}

// --jammers oblivious:P[:BUDGET],periodic:T[:PHASE[:BUDGET]],reactive:BUDGET
std::vector<fault::JammerSpec> parse_jammers(const std::string& specs) {
  std::vector<fault::JammerSpec> out;
  if (specs.empty()) {
    return out;
  }
  for (const std::string& spec : split(specs, ',')) {
    const auto parts = split(spec, ':');
    const std::string& kind = parts.front();
    if (kind == "oblivious" && (parts.size() == 2 || parts.size() == 3)) {
      const double p = std::strtod(parts[1].c_str(), nullptr);
      const std::uint64_t budget =
          parts.size() == 3 ? std::strtoull(parts[2].c_str(), nullptr, 10)
                            : fault::kUnlimitedBudget;
      out.push_back(fault::JammerSpec::oblivious(p, budget));
    } else if (kind == "periodic" &&
               (parts.size() >= 2 && parts.size() <= 4)) {
      const Slot period = std::strtoull(parts[1].c_str(), nullptr, 10);
      const Slot phase =
          parts.size() >= 3 ? std::strtoull(parts[2].c_str(), nullptr, 10)
                            : 0;
      const std::uint64_t budget =
          parts.size() == 4 ? std::strtoull(parts[3].c_str(), nullptr, 10)
                            : fault::kUnlimitedBudget;
      out.push_back(fault::JammerSpec::periodic(period, phase, budget));
    } else if (kind == "reactive" && parts.size() == 2) {
      out.push_back(fault::JammerSpec::reactive(
          std::strtoull(parts[1].c_str(), nullptr, 10)));
    } else {
      bad_spec("jammers", spec);
    }
  }
  return out;
}

proto::BroadcastParams params_for(const graph::Graph& g, double eps) {
  return proto::BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = eps,
      .stop_probability = 0.5,
  };
}

int usage() {
  std::fprintf(
      stderr,
      "usage: radiocast_cli <broadcast|bfs|gap|election|route|gossip|"
      "convergecast|schedule|graph|sweep> [--family F] [--n N] [--eps E] "
      "[--trials T] [--seed S] [--threads W] [--loss SPEC] "
      "[--jammers SPECS] [--fault-seed S] ...\n"
      "  --threads W   run Monte-Carlo trials on W worker threads "
      "(0 = auto:\n                RADIOCAST_THREADS if set, else all "
      "hardware threads);\n                results are identical for "
      "every W\n");
  return 2;
}

int cmd_broadcast(const graph::Graph& g, double eps, std::size_t trials,
                  std::uint64_t seed, std::size_t threads,
                  const fault::FaultConfig& fault_base,
                  std::uint64_t fault_seed) {
  const auto params = params_for(g, eps);
  std::size_t ok = 0;
  stats::Summary completion;
  stats::Summary tx;
  const bool faulty = fault_base.any();
  const auto outcomes = harness::run_trials(
      trials,
      [&g, &params, seed, &fault_base, faulty,
       fault_seed](std::size_t trial) {
        const NodeId sources[] = {0};
        const fault::FaultConfig fc =
            fault_base.with_seed(rng::mix64(fault_seed ^ trial));
        return harness::run_bgi_broadcast(g, sources, params, seed + trial,
                                          Slot{1} << 22, {},
                                          faulty ? &fc : nullptr);
      },
      threads);
  for (const auto& out : outcomes) {
    tx.add(static_cast<double>(out.transmissions));
    if (out.all_informed) {
      ++ok;
      completion.add(static_cast<double>(out.completion_slot));
    }
  }
  std::printf("broadcast: n=%zu D=%u k=%u t=%u\n", g.node_count(),
              graph::diameter(g), params.phase_length(),
              params.repetitions());
  std::printf("  success %zu/%zu (target >= %.3f)\n", ok, trials, 1 - eps);
  if (completion.count() > 0) {
    std::printf("  completion slots: median %.0f  p90 %.0f  max %.0f\n",
                completion.median(), completion.quantile(0.9),
                completion.max());
  }
  std::printf("  transmissions: mean %.0f\n", tx.mean());
  return 0;
}

int cmd_bfs(const graph::Graph& g, double eps, std::size_t trials,
            std::uint64_t seed, std::size_t threads) {
  const auto params = params_for(g, eps);
  const auto outcomes = harness::run_trials(
      trials,
      [&g, &params, seed](std::size_t trial) -> int {
        const auto out =
            harness::run_bgi_bfs(g, 0, params, seed + trial, Slot{1} << 24);
        return out.labels_correct ? 1 : 0;
      },
      threads);
  std::size_t perfect = 0;
  for (const int ok : outcomes) {
    perfect += static_cast<std::size_t>(ok);
  }
  std::printf("bfs: n=%zu D=%u: all-labels-exact %zu/%zu (target >= %.3f)\n",
              g.node_count(), graph::diameter(g), perfect, trials, 1 - eps);
  return 0;
}

int cmd_gap(std::size_t n, double eps, std::size_t trials,
            std::uint64_t seed, std::size_t threads,
            const fault::FaultConfig& fault_base,
            std::uint64_t fault_seed) {
  const NodeId worst_s[] = {static_cast<NodeId>(n)};
  const auto net = graph::make_cn(n, worst_s);
  const auto params = params_for(net.g, eps);
  const bool faulty = fault_base.any();
  stats::Summary randomized;
  const auto outcomes = harness::run_trials(
      trials,
      [&net, &params, seed, &fault_base, faulty,
       fault_seed](std::size_t trial) {
        const NodeId sources[] = {net.source};
        const fault::FaultConfig fc =
            fault_base.with_seed(rng::mix64(fault_seed ^ trial));
        return harness::run_bgi_broadcast(net.g, sources, params,
                                          seed + trial, Slot{1} << 22, {},
                                          faulty ? &fc : nullptr);
      },
      threads);
  for (const auto& out : outcomes) {
    if (out.all_informed) {
      randomized.add(static_cast<double>(out.completion_slot) + 1);
    }
  }
  const fault::FaultConfig det_fc =
      fault_base.with_seed(rng::mix64(fault_seed));
  const auto dfs = harness::run_dfs_broadcast(net.g, net.source, 8 * (n + 2),
                                              faulty ? &det_fc : nullptr);
  const auto rr = harness::run_round_robin(net.g, net.source, 8 * (n + 2),
                                           faulty ? &det_fc : nullptr);
  std::printf("C_%zu (diameter 3): randomized median %.0f slots, "
              "DFS %llu, round-robin %llu, Thm12 floor %.1f\n",
              n, randomized.count() ? randomized.median() : -1.0,
              static_cast<unsigned long long>(dfs.completion_slot + 1),
              static_cast<unsigned long long>(rr.completion_slot + 1),
              static_cast<double>(n) / 8.0);
  return 0;
}

int cmd_election(const graph::Graph& g, double eps, std::uint64_t seed) {
  const auto d = graph::diameter(g);
  const proto::LeaderElectionParams params{
      params_for(g, eps), std::max<std::size_t>(d, 1)};
  sim::Simulator s(g, sim::SimOptions{seed});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    s.emplace_protocol<proto::LeaderElection>(v, params);
  }
  s.run_to_quiescence(params.horizon() + 2);
  const NodeId leader = s.protocol_as<proto::LeaderElection>(0).best_owner();
  bool agree = true;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    agree = agree &&
            s.protocol_as<proto::LeaderElection>(v).best_owner() == leader;
  }
  std::printf("election: leader=%u agreement=%s slots=%llu (budget %llu)\n",
              leader, agree ? "yes" : "NO",
              static_cast<unsigned long long>(s.now()),
              static_cast<unsigned long long>(params.horizon()));
  return agree ? 0 : 1;
}

int cmd_route(const graph::Graph& g, double eps, std::uint64_t seed,
              NodeId source, NodeId dest) {
  const auto d = graph::diameter(g);
  const proto::RoutingParams params{params_for(g, eps),
                                    std::max<std::size_t>(d, 1)};
  sim::Simulator s(g, sim::SimOptions{seed});
  using Role = proto::PointToPointRouting::Role;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Role role = v == source  ? Role::kSource
                      : v == dest ? Role::kDestination
                                  : Role::kRelay;
    s.emplace_protocol<proto::PointToPointRouting>(
        v, params, role, std::vector<std::uint64_t>{0xDA7A});
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());
  const auto& dst = s.protocol_as<proto::PointToPointRouting>(dest);
  std::printf("route %u -> %u (distance %u): %s\n", source, dest,
              graph::bfs_distances(g, dest)[source],
              dst.delivered() ? "delivered" : "NOT delivered");
  return dst.delivered() ? 0 : 1;
}

int cmd_gossip(const graph::Graph& g, double eps, std::uint64_t seed) {
  const auto d = graph::diameter(g);
  const proto::GossipParams params{
      params_for(g, eps),
      std::max<std::size_t>(d, g.node_count() > 1 ? 1 : 0)};
  sim::Simulator s(g, sim::SimOptions{seed});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    s.emplace_protocol<proto::Gossip>(v, params);
  }
  s.run_to_quiescence(params.horizon() + 2);
  std::size_t min_rumors = g.node_count();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    min_rumors = std::min(min_rumors,
                          s.protocol_as<proto::Gossip>(v).rumor_count());
  }
  const bool complete = min_rumors == g.node_count();
  std::printf("gossip: %s (min rumors %zu/%zu) in %llu slots "
              "(budget %llu)\n",
              complete ? "complete" : "incomplete", min_rumors,
              g.node_count(), static_cast<unsigned long long>(s.now()),
              static_cast<unsigned long long>(params.horizon()));
  return complete ? 0 : 1;
}

int cmd_convergecast(const graph::Graph& g, double eps,
                     std::uint64_t seed) {
  const auto ecc = graph::eccentricity(g, 0);
  const proto::ConvergecastParams params{
      params_for(g, eps), std::max<std::size_t>(ecc, 1), 2};
  sim::Simulator s(g, sim::SimOptions{seed});
  rng::Rng values(seed * 3 + 1);
  std::uint64_t true_max = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::uint64_t value = values.uniform(1 << 30);
    true_max = std::max(true_max, value);
    s.emplace_protocol<proto::Convergecast>(v, params, v == 0, value);
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());
  const std::uint64_t got = s.protocol_as<proto::Convergecast>(0).aggregate();
  std::printf("convergecast: root aggregate %llu, true max %llu (%s), "
              "%llu slots\n",
              static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(true_max),
              got == true_max ? "exact" : "MISSED",
              static_cast<unsigned long long>(params.horizon()));
  return got == true_max ? 0 : 1;
}

int cmd_schedule(const graph::Graph& g, const std::string& dot_path) {
  const auto plan = sched::greedy_cover_schedule(g, 0);
  const auto naive = sched::naive_schedule(g, 0);
  const auto check = sched::verify_schedule(g, 0, plan);
  std::printf("schedule: greedy %zu slots (naive %zu), valid=%s, "
              "%zu transmissions, completes at slot %llu\n",
              plan.length(), naive.length(), check.valid ? "yes" : "NO",
              check.transmissions,
              static_cast<unsigned long long>(check.completion_slot));
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    graph::write_dot(out, g);
    std::printf("  topology written to %s\n", dot_path.c_str());
  }
  return check.valid ? 0 : 1;
}

int cmd_graph(const graph::Graph& g, const std::string& save_path,
              const std::string& dot_path) {
  std::printf("graph: n=%zu arcs=%zu D=%u max-in-degree=%zu symmetric=%s\n",
              g.node_count(), g.arc_count(), graph::diameter(g),
              g.max_in_degree(), g.is_symmetric() ? "yes" : "no");
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    graph::write_graph(out, g);
    std::printf("  saved to %s\n", save_path.c_str());
  }
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    graph::write_dot(out, g);
    std::printf("  DOT written to %s\n", dot_path.c_str());
  }
  return 0;
}

// --- sweep service front end (docs/SWEEP.md) -------------------------------

// Sweep config values are typed: "64" is an integer, "0.1" a double,
// "true" a bool, anything else a string. The type matters because it is
// part of the canonical config text and therefore of the cache key.
obs::JsonValue parse_scalar(const std::string& text) {
  if (text == "true") return obs::JsonValue(true);
  if (text == "false") return obs::JsonValue(false);
  if (!text.empty()) {
    char* end = nullptr;
    if (text[0] == '-') {
      const long long i = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() + text.size()) {
        return obs::JsonValue(static_cast<std::int64_t>(i));
      }
    } else {
      const unsigned long long u = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() + text.size()) {
        return obs::JsonValue(static_cast<std::uint64_t>(u));
      }
    }
    const double d = std::strtod(text.c_str(), &end);
    if (end == text.c_str() + text.size()) {
      return obs::JsonValue(d);
    }
  }
  return obs::JsonValue(text);
}

[[noreturn]] void sweep_usage() {
  std::fprintf(
      stderr,
      "usage: radiocast_cli sweep <run|status|gc|serve> [options]\n"
      "  run    --runner NAME [--set k=v]... [--axis k=v1,v2,...]...\n"
      "         [--cache-dir DIR] [--out DIR] [--threads W] [--quiet]\n"
      "  status --cache-dir DIR\n"
      "  gc     --cache-dir DIR [--max-entries N] [--max-bytes B]\n"
      "  serve  [--cache-dir DIR] [--threads W]   (NDJSON on stdin/stdout)\n"
      "Runners: gap, faults (see docs/SWEEP.md for their config fields).\n"
      "RADIOCAST_CACHE_DIR is honored when --cache-dir is absent.\n");
  std::exit(2);
}

const char* status_name(harness::SweepService::JobStatus s) {
  using JobStatus = harness::SweepService::JobStatus;
  switch (s) {
    case JobStatus::kHit: return "hit";
    case JobStatus::kComputed: return "computed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

struct SweepArgs {
  std::string sub;
  std::string runner;
  std::string cache_dir;
  std::string out_dir;
  std::size_t threads = 0;
  bool quiet = false;
  std::size_t max_entries = 0;
  std::uintmax_t max_bytes = 0;
  obs::JsonValue base = obs::JsonValue::object();
  std::vector<harness::SweepAxis> axes;
};

// The generic Args class keeps one value per key; --set and --axis repeat,
// so the sweep subcommand walks argv itself.
SweepArgs parse_sweep_args(int argc, char** argv) {
  SweepArgs out;
  if (argc < 3) {
    sweep_usage();
  }
  out.sub = argv[2];
  if (const char* env = std::getenv("RADIOCAST_CACHE_DIR")) {
    out.cache_dir = env;
  }
  const auto next_value = [&](int& i, const std::string& flag,
                              std::string inline_value,
                              bool has_inline) -> std::string {
    if (has_inline) {
      return inline_value;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "--%s needs a value\n", flag.c_str());
      sweep_usage();
    }
    return argv[++i];
  };
  for (int i = 3; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", token.c_str());
      sweep_usage();
    }
    token = token.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = token.find('='); eq != std::string::npos) {
      inline_value = token.substr(eq + 1);
      token = token.substr(0, eq);
      has_inline = true;
    }
    if (token == "quiet") {
      out.quiet = true;
    } else if (token == "runner") {
      out.runner = next_value(i, token, inline_value, has_inline);
    } else if (token == "cache-dir") {
      out.cache_dir = next_value(i, token, inline_value, has_inline);
    } else if (token == "out") {
      out.out_dir = next_value(i, token, inline_value, has_inline);
    } else if (token == "threads") {
      out.threads = static_cast<std::size_t>(std::strtoull(
          next_value(i, token, inline_value, has_inline).c_str(), nullptr,
          10));
    } else if (token == "max-entries") {
      out.max_entries = static_cast<std::size_t>(std::strtoull(
          next_value(i, token, inline_value, has_inline).c_str(), nullptr,
          10));
    } else if (token == "max-bytes") {
      out.max_bytes = std::strtoull(
          next_value(i, token, inline_value, has_inline).c_str(), nullptr,
          10);
    } else if (token == "set") {
      const std::string kv = next_value(i, token, inline_value, has_inline);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "--set wants key=value, got '%s'\n", kv.c_str());
        sweep_usage();
      }
      out.base.set(kv.substr(0, eq), parse_scalar(kv.substr(eq + 1)));
    } else if (token == "axis") {
      const std::string kv = next_value(i, token, inline_value, has_inline);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "--axis wants key=v1,v2,..., got '%s'\n",
                     kv.c_str());
        sweep_usage();
      }
      harness::SweepAxis axis;
      axis.name = kv.substr(0, eq);
      for (const std::string& v : split(kv.substr(eq + 1), ',')) {
        axis.values.push_back(parse_scalar(v));
      }
      out.axes.push_back(std::move(axis));
    } else {
      std::fprintf(stderr, "unknown option --%s\n", token.c_str());
      sweep_usage();
    }
  }
  return out;
}

int cmd_sweep_run(const SweepArgs& sa, cache::ResultCache* cache) {
  if (sa.runner.empty()) {
    std::fprintf(stderr, "sweep run: --runner is required\n");
    sweep_usage();
  }
  harness::SweepService service(cache, sa.threads);
  harness::register_standard_runners(service, sa.threads);
  if (!service.has_runner(sa.runner)) {
    std::fprintf(stderr, "unknown runner '%s' (have:", sa.runner.c_str());
    for (const auto& name : service.runner_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  harness::SweepSpec spec;
  spec.runner = sa.runner;
  spec.base = sa.base;
  spec.axes = sa.axes;
  if (spec.job_count() == 0) {
    std::fprintf(stderr, "sweep run: an --axis has no values\n");
    return 2;
  }

  if (!sa.out_dir.empty()) {
    std::filesystem::create_directories(sa.out_dir);
  }
  const auto results = service.run(spec);
  const auto jobs = spec.expand();
  for (const auto& r : results) {
    if (!sa.quiet) {
      std::printf("job %zu %-9s %.12s %s", r.index, status_name(r.status),
                  r.key.c_str(),
                  cache::canonicalize(jobs[r.index].config)
                      .dump_compact()
                      .c_str());
      if (!r.error.empty()) {
        std::printf("  error: %s", r.error.c_str());
      }
      std::printf("\n");
    }
    if (!sa.out_dir.empty() && !r.record.is_null()) {
      std::ofstream out(std::filesystem::path(sa.out_dir) /
                        (r.key + ".json"));
      out << r.record.dump();
    }
  }
  const auto totals = harness::SweepService::tally(results);
  std::printf("sweep: %zu jobs, %zu hits, %zu computed, %zu failed, "
              "%zu cancelled (hit rate %.0f%%)\n",
              results.size(), totals.hits, totals.computed, totals.failed,
              totals.cancelled,
              results.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(totals.hits) /
                        static_cast<double>(results.size()));
  if (cache != nullptr) {
    const auto st = cache->stats();
    std::printf("cache: %llu hits, %llu misses (%llu corrupt), %llu puts\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.corrupt),
                static_cast<unsigned long long>(st.puts));
  }
  return totals.failed == 0 && totals.cancelled == 0 ? 0 : 1;
}

int cmd_sweep_status(cache::ResultCache& cache) {
  const auto entries = cache.scan();
  std::uintmax_t bytes = 0;
  std::map<std::string, std::pair<std::size_t, std::uintmax_t>> by_runner;
  for (const auto& e : entries) {
    bytes += e.bytes;
    auto& slot = by_runner[e.runner.empty() ? "(unreadable)" : e.runner];
    slot.first += 1;
    slot.second += e.bytes;
  }
  std::printf("cache %s: %zu entries, %ju bytes (fingerprint %s)\n",
              cache.root().string().c_str(), entries.size(), bytes,
              std::string(cache::kEngineFingerprint).c_str());
  for (const auto& [runner, slot] : by_runner) {
    std::printf("  %-12s %6zu entries %12ju bytes\n", runner.c_str(),
                slot.first, slot.second);
  }
  return 0;
}

int cmd_sweep_gc(cache::ResultCache& cache, const SweepArgs& sa) {
  const std::size_t evicted =
      cache.gc({.max_entries = sa.max_entries, .max_bytes = sa.max_bytes});
  const auto entries = cache.scan();
  std::uintmax_t bytes = 0;
  for (const auto& e : entries) {
    bytes += e.bytes;
  }
  std::printf("gc: evicted %zu, %zu entries remain (%ju bytes)\n", evicted,
              entries.size(), bytes);
  return 0;
}

// One JSON request per stdin line, one JSON response per stdout line:
//   {"runner": "gap", "config": {...}}  -> {"status", "key", "record"}
//   {"cmd": "stats"}                    -> cache counter snapshot
//   {"cmd": "shutdown"}                 -> {"ok": true}, then exit
// EOF also ends the loop. Malformed lines get {"error": ...} — the daemon
// never dies on bad input.
int cmd_sweep_serve(const SweepArgs& sa, cache::ResultCache* cache) {
  harness::SweepService service(cache, sa.threads);
  harness::register_standard_runners(service, sa.threads);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    obs::JsonValue response = obs::JsonValue::object();
    try {
      const obs::JsonValue request = obs::JsonValue::parse(line);
      const obs::JsonValue* command = request.find("cmd");
      if (command != nullptr && command->is_string()) {
        if (command->as_string() == "shutdown") {
          response.set("ok", obs::JsonValue(true));
          std::printf("%s\n", response.dump_compact().c_str());
          std::fflush(stdout);
          break;
        }
        if (command->as_string() == "stats") {
          const auto st = cache != nullptr ? cache->stats()
                                           : cache::ResultCache::Stats{};
          response.set("hits", obs::JsonValue(st.hits));
          response.set("misses", obs::JsonValue(st.misses));
          response.set("corrupt", obs::JsonValue(st.corrupt));
          response.set("puts", obs::JsonValue(st.puts));
          response.set("evictions", obs::JsonValue(st.evictions));
          std::printf("%s\n", response.dump_compact().c_str());
          std::fflush(stdout);
          continue;
        }
        throw ContractViolation("unknown cmd");
      }
      const obs::JsonValue* runner = request.find("runner");
      const obs::JsonValue* config = request.find("config");
      if (runner == nullptr || !runner->is_string() || config == nullptr ||
          !config->is_object()) {
        throw ContractViolation(
            "request wants {\"runner\": str, \"config\": object}");
      }
      const auto result = service.run_one(runner->as_string(), *config);
      response.set("status", obs::JsonValue(status_name(result.status)));
      response.set("key", obs::JsonValue(result.key));
      if (result.status == harness::SweepService::JobStatus::kFailed) {
        response.set("error", obs::JsonValue(result.error));
      } else {
        response.set("record", result.record);
      }
    } catch (const std::exception& e) {
      response = obs::JsonValue::object();
      response.set("error", obs::JsonValue(std::string(e.what())));
    }
    std::printf("%s\n", response.dump_compact().c_str());
    std::fflush(stdout);
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  const SweepArgs sa = parse_sweep_args(argc, argv);
  std::optional<cache::ResultCache> cache;
  if (!sa.cache_dir.empty()) {
    cache.emplace(sa.cache_dir);
  }
  if (sa.sub == "run") {
    return cmd_sweep_run(sa, cache ? &*cache : nullptr);
  }
  if (sa.sub == "serve") {
    return cmd_sweep_serve(sa, cache ? &*cache : nullptr);
  }
  if (sa.sub == "status" || sa.sub == "gc") {
    if (!cache) {
      std::fprintf(stderr, "sweep %s: --cache-dir is required\n",
                   sa.sub.c_str());
      return 2;
    }
    return sa.sub == "status" ? cmd_sweep_status(*cache)
                              : cmd_sweep_gc(*cache, sa);
  }
  sweep_usage();
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  if (args.positional().empty()) {
    return usage();
  }
  // The sweep service has its own (repeatable) flags; hand it raw argv
  // before the generic option check can reject them.
  if (args.positional().front() == "sweep") {
    try {
      return cmd_sweep(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const std::set<std::string> known{
      "family", "n",       "eps",     "trials",   "seed",
      "dot",    "save",    "source",  "dest",     "load",
      "threads", "json-out", "loss",  "jammers",  "fault-seed"};
  for (const auto& key : args.unknown_keys(known)) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 2;
  }

  const std::string cmd = args.positional().front();
  const std::string family = args.get("family", "gnp");
  const auto n = static_cast<std::size_t>(args.get_int("n", 100));
  const double eps = args.get_double("eps", 0.1);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 30));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  // 0 means auto-detect (RADIOCAST_THREADS, else hardware concurrency);
  // resolve it here so every command sees a concrete worker count.
  auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  if (threads == 0) {
    threads = harness::default_thread_count();
  }

  // Channel impairments (broadcast/gap only): a base FaultConfig built
  // from the flags; each trial re-seeds it (docs/FAULTS.md).
  fault::FaultConfig fault_base;
  fault_base.loss = parse_loss(args.get("loss", ""));
  fault_base.jammers = parse_jammers(args.get("jammers", ""));
  auto fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  if (fault_seed == 0) {
    fault_seed = seed ^ 0xFA17'5EED'0000'0001ULL;
  }

  // Provenance / metrics: --json-out (or RADIOCAST_JSON_OUT) makes the CLI
  // emit the same run-record document as every bench_* binary.
  harness::RunOptions report_opt;
  report_opt.trials = trials;
  report_opt.seed = seed;
  report_opt.threads = threads;
  report_opt.json_out = args.get("json-out", report_opt.json_out);
  if (report_opt.json_out.empty()) {
    if (const char* env = std::getenv("RADIOCAST_JSON_OUT")) {
      report_opt.json_out = env;
    }
  }
  harness::RunReporter reporter("radiocast_cli", report_opt);
  reporter.extra("command", obs::JsonValue(cmd));

  const auto load_or_make = [&]() -> graph::Graph {
    const std::string load = args.get("load", "");
    if (!load.empty()) {
      std::ifstream in(load);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", load.c_str());
        std::exit(2);
      }
      return graph::read_graph(in);
    }
    return make_family(family, n, seed);
  };

  try {
    if (cmd == "broadcast") {
      return cmd_broadcast(load_or_make(), eps, trials, seed, threads,
                           fault_base, fault_seed);
    }
    if (cmd == "bfs") {
      return cmd_bfs(load_or_make(), eps, trials, seed, threads);
    }
    if (cmd == "gap") {
      return cmd_gap(n, eps, trials, seed, threads, fault_base, fault_seed);
    }
    if (cmd == "election") {
      return cmd_election(load_or_make(), eps, seed);
    }
    if (cmd == "route") {
      const graph::Graph g = load_or_make();
      const auto dest = static_cast<NodeId>(args.get_int("dest", 0));
      const auto source = static_cast<NodeId>(args.get_int(
          "source", static_cast<std::int64_t>(g.node_count() - 1)));
      return cmd_route(g, eps, seed, source, dest);
    }
    if (cmd == "gossip") {
      return cmd_gossip(load_or_make(), eps, seed);
    }
    if (cmd == "convergecast") {
      return cmd_convergecast(load_or_make(), eps, seed);
    }
    if (cmd == "schedule") {
      return cmd_schedule(load_or_make(), args.get("dot", ""));
    }
    if (cmd == "graph") {
      return cmd_graph(load_or_make(), args.get("save", ""),
                       args.get("dot", ""));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
