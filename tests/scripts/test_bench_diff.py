#!/usr/bin/env python3
"""Unit test for scripts/bench_diff.py's input-error handling.

A missing baseline file, unparsable JSON, a non-object document, or a
document with no numeric metrics at all must exit 2 with a one-line
``bench_diff: error: ...`` diagnostic — never a stack trace, which is
what CI used to print and what made gate failures hard to read.  The
regression exit status (1) and the clean exit (0) are pinned alongside
so the three codes stay distinct.

Run directly or via ctest (registered as BenchDiffSelfTest). Stdlib-only.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH_DIFF = ROOT / "scripts" / "bench_diff.py"


def run_diff(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(BENCH_DIFF), *args],
                          capture_output=True, text=True, check=False)


def record(slots_per_sec: float) -> dict:
    return {
        "schema_version": 1,
        "metrics": {"gauges": {"engine.slots_per_sec": slots_per_sec}},
    }


class BenchDiffErrors(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.base = self.write("base.json", record(100.0))

    def write(self, name: str, doc) -> pathlib.Path:
        path = pathlib.Path(self.dir.name) / name
        path.write_text(doc if isinstance(doc, str) else json.dumps(doc),
                        encoding="utf-8")
        return path

    def assert_clean_error(self, proc, *needles: str):
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("bench_diff: error:", proc.stderr)
        for needle in needles:
            self.assertIn(needle, proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertNotIn("Traceback", proc.stdout)

    def test_missing_baseline_file_is_a_distinct_error(self):
        proc = run_diff(str(pathlib.Path(self.dir.name) / "nope.json"),
                        str(self.base), "--check")
        self.assert_clean_error(proc, "cannot read baseline")

    def test_invalid_json_is_a_distinct_error(self):
        bad = self.write("bad.json", "{not json")
        proc = run_diff(str(bad), str(self.base))
        self.assert_clean_error(proc, "not valid JSON")

    def test_non_object_document_is_a_distinct_error(self):
        arr = self.write("arr.json", [1, 2, 3])
        proc = run_diff(str(arr), str(self.base))
        self.assert_clean_error(proc, "not a JSON object")

    def test_document_without_metric_keys_is_a_distinct_error(self):
        empty = self.write("empty.json",
                           {"schema_version": 1, "metrics": {}})
        proc = run_diff(str(empty), str(self.base), "--check")
        self.assert_clean_error(proc, "no numeric metrics")

    def test_error_applies_to_current_document_too(self):
        proc = run_diff(str(self.base),
                        str(pathlib.Path(self.dir.name) / "nope.json"))
        self.assert_clean_error(proc, "cannot read current")


class BenchDiffVerdicts(unittest.TestCase):
    """The pre-existing exit codes stay as they were."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name: str, doc) -> pathlib.Path:
        path = pathlib.Path(self.dir.name) / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return path

    def test_self_diff_is_clean(self):
        base = self.write("a.json", record(100.0))
        proc = run_diff(str(base), str(base), "--check")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_regression_exits_1_under_check(self):
        base = self.write("a.json", record(100.0))
        slow = self.write("b.json", record(50.0))
        proc = run_diff(str(base), str(slow), "--threshold", "10",
                        "--check")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
