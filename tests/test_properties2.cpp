// Second parameterized property batch: cross-module invariants with
// brute-force oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/graph/io.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/lb/find_set.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/sched/schedule.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast {
namespace {

// --- hitting-game referee vs a brute-force oracle ------------------------------

class RefereeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefereeProperty, MatchesBruteForce) {
  rng::Rng rng(GetParam());
  const std::size_t n = 4 + rng.uniform(20);
  for (int round = 0; round < 200; ++round) {
    // Random S and random move.
    std::set<NodeId> s_set;
    const std::size_t s_size = 1 + rng.uniform(n);
    while (s_set.size() < s_size) {
      s_set.insert(static_cast<NodeId>(1 + rng.uniform(n)));
    }
    lb::Move m;
    const std::size_t m_size = rng.uniform(n + 1);
    std::set<NodeId> m_set;
    while (m_set.size() < m_size) {
      m_set.insert(static_cast<NodeId>(1 + rng.uniform(n)));
    }
    m.assign(m_set.begin(), m_set.end());

    const lb::HittingGame game(
        n, std::vector<NodeId>(s_set.begin(), s_set.end()));
    const lb::RefereeAnswer a = game.answer(m);

    // Oracle.
    std::vector<NodeId> inside;
    std::vector<NodeId> outside;
    for (const NodeId x : m) {
      (s_set.contains(x) ? inside : outside).push_back(x);
    }
    if (inside.size() == 1) {
      EXPECT_EQ(a.kind, lb::RefereeAnswer::Kind::kHit);
      EXPECT_EQ(a.revealed, inside.front());
    } else if (outside.size() == 1) {
      EXPECT_EQ(a.kind, lb::RefereeAnswer::Kind::kComplement);
      EXPECT_EQ(a.revealed, outside.front());
    } else {
      EXPECT_EQ(a.kind, lb::RefereeAnswer::Kind::kSilent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefereeProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- find_set removal accounting (the Lemma 10 charging argument) --------------

class FindSetChargeProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FindSetChargeProperty, RemovalsRespectTheCharges) {
  rng::Rng rng(GetParam() * 101);
  const std::size_t n = 10 + rng.uniform(40);
  const std::size_t t = 1 + rng.uniform(n / 2);
  std::vector<lb::Move> moves;
  std::size_t singletons = 0;
  for (std::size_t i = 0; i < t; ++i) {
    const std::size_t size = 1 + std::min<std::size_t>(rng.geometric(0.5),
                                                       n - 1);
    std::set<NodeId> m;
    while (m.size() < size) {
      m.insert(static_cast<NodeId>(1 + rng.uniform(n)));
    }
    singletons += m.size() == 1 ? 1 : 0;
    moves.emplace_back(m.begin(), m.end());
  }
  const auto s = lb::find_foiling_set(n, moves);
  ASSERT_TRUE(s.has_value());
  const std::size_t removed = n - s->size();
  if (singletons == 0) {
    // Without singleton moves nothing ever triggers a removal.
    EXPECT_EQ(removed, 0U);
  } else {
    // Lemma 10's charge: each singleton once, each non-singleton at most
    // twice, and the last charge is single: <= 2t - 1 removals.
    EXPECT_LE(removed, 2 * t - 1);
    EXPECT_LE(removed, singletons + 2 * (t - singletons));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindSetChargeProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- broadcast cannot beat physics ---------------------------------------------

class BroadcastPhysicsProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BroadcastPhysicsProperty, InformedAtIsAtLeastHopDistance) {
  rng::Rng topo(GetParam() * 7);
  const graph::Graph g = graph::connected_gnp(40, 0.1, topo);
  const auto dist = graph::bfs_distances(g, 0);
  const proto::BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };
  sim::Simulator s(g, sim::SimOptions{GetParam()});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      s.emplace_protocol<proto::BgiBroadcast>(v, params, m);
    } else {
      s.emplace_protocol<proto::BgiBroadcast>(v, params);
    }
  }
  for (int i = 0; i < 3000; ++i) {
    s.step();
  }
  for (NodeId v = 1; v < g.node_count(); ++v) {
    const auto& p = s.protocol_as<proto::BgiBroadcast>(v);
    if (p.informed()) {
      // A message needs dist[v] hops and each hop costs >= 1 slot.
      EXPECT_GE(p.informed_at() + 1, dist[v]) << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastPhysicsProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- schedules: greedy validity on directed reachable graphs --------------------

class DirectedScheduleProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedScheduleProperty, GreedyValidOnDigraphs) {
  rng::Rng rng(GetParam() * 13);
  const std::size_t n = 15 + rng.uniform(60);
  const graph::Graph g =
      graph::random_strongly_reachable_digraph(n, 2 * n, rng);
  const auto schedule = sched::greedy_cover_schedule(g, 0);
  const auto check = sched::verify_schedule(g, 0, schedule);
  EXPECT_TRUE(check.valid) << "n=" << n;
  const auto naive = sched::naive_schedule(g, 0);
  EXPECT_TRUE(sched::verify_schedule(g, 0, naive).valid);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedScheduleProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- graph io round-trips everything the generators produce ---------------------

class GraphIoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphIoProperty, RoundTripRandomGraphs) {
  rng::Rng rng(GetParam() * 17);
  const std::size_t n = 2 + rng.uniform(60);
  const graph::Graph graphs[] = {
      graph::random_tree(n, rng),
      graph::gnp(n, rng.uniform01(), rng),
      graph::random_strongly_reachable_digraph(n, rng.uniform(3 * n), rng),
  };
  for (const graph::Graph& g : graphs) {
    EXPECT_EQ(graph::from_string(graph::to_string(g)), g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Decay transmission distribution ---------------------------------------------

class DecayDistributionProperty
    : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecayDistributionProperty, TransmissionCountIsTruncatedGeometric) {
  const unsigned k = GetParam();
  rng::Rng rng(k * 19);
  sim::Message m;
  m.origin = 0;
  std::vector<std::size_t> counts(k + 1, 0);
  const std::size_t trials = 40000;
  for (std::size_t i = 0; i < trials; ++i) {
    proto::DecayRun run(k, m);
    while (!run.phase_over()) {
      (void)run.tick(rng);
    }
    ++counts[run.transmissions_sent()];
  }
  // Pr[sent = j] = 2^-j for j < k; Pr[sent = k] = 2^-(k-1). Never 0.
  EXPECT_EQ(counts[0], 0U);
  for (unsigned j = 1; j <= k; ++j) {
    const double expected =
        (j < k) ? std::ldexp(1.0, -static_cast<int>(j))
                : std::ldexp(1.0, -static_cast<int>(k - 1));
    const double got =
        static_cast<double>(counts[j]) / static_cast<double>(trials);
    EXPECT_NEAR(got, expected, 5.0 * std::sqrt(expected / trials) + 1e-3)
        << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(PhaseLengths, DecayDistributionProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace radiocast
