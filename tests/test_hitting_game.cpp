#include "radiocast/lb/hitting_game.hpp"

#include <gtest/gtest.h>

#include "radiocast/common/check.hpp"
#include "radiocast/lb/strategies.hpp"

namespace radiocast::lb {
namespace {

TEST(NormalizeMove, SortsAndDedups) {
  const Move m = normalize_move({5, 2, 5, 1}, 6);
  EXPECT_EQ(m, (Move{1, 2, 5}));
}

TEST(NormalizeMove, RejectsOutOfUniverse) {
  EXPECT_THROW(normalize_move({0}, 5), ContractViolation);
  EXPECT_THROW(normalize_move({6}, 5), ContractViolation);
  EXPECT_NO_THROW(normalize_move({}, 5));
}

TEST(HittingGame, RejectsEmptyS) {
  EXPECT_THROW(HittingGame(5, {}), ContractViolation);
}

TEST(HittingGame, HitOnSingletonIntersection) {
  const HittingGame g(6, {2, 4});
  // M ∩ S = {2}: a hit.
  const RefereeAnswer a = g.answer({1, 2, 3});
  EXPECT_EQ(a.kind, RefereeAnswer::Kind::kHit);
  EXPECT_EQ(a.revealed, 2U);
}

TEST(HittingGame, HitTakesPriorityOverComplement) {
  // M = {2, 3}: M ∩ S = {2} and M ∩ S̄ = {3}; the hit wins and ends the
  // game (Definition 5: the |M ∩ S| = 1 clause is checked first).
  const HittingGame g(6, {2, 4});
  const RefereeAnswer a = g.answer({2, 3});
  EXPECT_EQ(a.kind, RefereeAnswer::Kind::kHit);
  EXPECT_EQ(a.revealed, 2U);
}

TEST(HittingGame, ComplementRevealOnSingletonOutside) {
  const HittingGame g(6, {2, 4});
  // M = {2, 4, 5}: M ∩ S = {2,4} (no hit), M ∩ S̄ = {5}: revealed.
  const RefereeAnswer a = g.answer({2, 4, 5});
  EXPECT_EQ(a.kind, RefereeAnswer::Kind::kComplement);
  EXPECT_EQ(a.revealed, 5U);
}

TEST(HittingGame, SilentWhenBothLarge) {
  const HittingGame g(8, {2, 4, 6});
  // M = {2, 4, 5, 7}: inside {2,4}, outside {5,7}: silence.
  EXPECT_EQ(g.answer({2, 4, 5, 7}).kind, RefereeAnswer::Kind::kSilent);
}

TEST(HittingGame, SilentOnEmptyMove) {
  const HittingGame g(4, {1});
  EXPECT_EQ(g.answer({}).kind, RefereeAnswer::Kind::kSilent);
}

TEST(HittingGame, SingletonMemberMoveWins) {
  const HittingGame g(4, {3});
  const RefereeAnswer a = g.answer({3});
  EXPECT_EQ(a.kind, RefereeAnswer::Kind::kHit);
  EXPECT_EQ(a.revealed, 3U);
}

TEST(HittingGame, SingletonNonMemberMoveRevealsIt) {
  const HittingGame g(4, {3});
  const RefereeAnswer a = g.answer({2});
  EXPECT_EQ(a.kind, RefereeAnswer::Kind::kComplement);
  EXPECT_EQ(a.revealed, 2U);
}

TEST(HittingGame, FullUniverseMove) {
  // M = {1..4}, S = {3}: M ∩ S = {3}: immediate win. The n-1 complement
  // elements do not matter.
  const HittingGame g(4, {3});
  EXPECT_EQ(g.answer({1, 2, 3, 4}).kind, RefereeAnswer::Kind::kHit);
}

TEST(HittingGame, PlayScanWinsAtMinS) {
  ScanSingletonsStrategy scan;
  const HittingGame g(10, {7, 9});
  const GameResult r = g.play(scan, 100);
  EXPECT_TRUE(r.won);
  EXPECT_EQ(r.moves, 7U);
  EXPECT_EQ(r.hit, 7U);
}

TEST(HittingGame, PlayRespectsMaxMoves) {
  ScanSingletonsStrategy scan;
  const HittingGame g(10, {9});
  const GameResult r = g.play(scan, 5);
  EXPECT_FALSE(r.won);
  EXPECT_EQ(r.moves, 5U);
  EXPECT_EQ(r.hit, kNoNode);
}

TEST(HittingGame, SIsNormalized) {
  const HittingGame g(6, {4, 2, 4});
  EXPECT_EQ(g.s(), (std::vector<NodeId>{2, 4}));
}

}  // namespace
}  // namespace radiocast::lb
