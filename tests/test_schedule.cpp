#include "radiocast/sched/schedule.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sched/scheduled_broadcast.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::sched {
namespace {

TEST(VerifySchedule, AcceptsHandmadePathSchedule) {
  const graph::Graph g = graph::path(4);
  BroadcastSchedule s;
  s.slots = {{0}, {1}, {2}};
  const ScheduleCheck check = verify_schedule(g, 0, s);
  EXPECT_TRUE(check.valid);
  EXPECT_EQ(check.completion_slot, 2U);
  EXPECT_EQ(check.transmissions, 3U);
}

TEST(VerifySchedule, RejectsUninformedTransmitter) {
  const graph::Graph g = graph::path(4);
  BroadcastSchedule s;
  s.slots = {{2}};  // node 2 does not hold the message yet
  EXPECT_FALSE(verify_schedule(g, 0, s).valid);
}

TEST(VerifySchedule, DetectsCollisionPreventsDelivery) {
  // Star: both leaves transmitting at once never inform... wait, leaves
  // hear only the hub. Use C_n: 1 and 2 both transmit; the sink hears a
  // collision and stays uninformed.
  const NodeId members[] = {1, 2};
  const auto net = graph::make_cn(2, members);
  BroadcastSchedule s;
  s.slots = {{0}, {1, 2}};
  const ScheduleCheck check = verify_schedule(net.g, 0, s);
  EXPECT_FALSE(check.valid);  // sink never informed
}

TEST(VerifySchedule, IncompleteScheduleInvalid) {
  const graph::Graph g = graph::path(5);
  BroadcastSchedule s;
  s.slots = {{0}, {1}};  // stops two hops short
  EXPECT_FALSE(verify_schedule(g, 0, s).valid);
}

TEST(GreedySchedule, ValidOnClassicFamilies) {
  rng::Rng rng(1);
  const graph::Graph graphs[] = {
      graph::path(17),
      graph::cycle(12),
      graph::star(20),
      graph::clique(10),
      graph::grid(5, 7),
      graph::hypercube(4),
      graph::random_tree(40, rng),
      graph::connected_gnp(50, 0.1, rng),
  };
  for (const graph::Graph& g : graphs) {
    const BroadcastSchedule s = greedy_cover_schedule(g, 0);
    const ScheduleCheck check = verify_schedule(g, 0, s);
    EXPECT_TRUE(check.valid) << "n=" << g.node_count();
  }
}

TEST(GreedySchedule, LengthNearDLog2N) {
  // The CW87 guarantee is O(D log^2 n); check the greedy heuristic stays
  // within that envelope (with a generous constant) on random graphs.
  rng::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::connected_gnp(120, 0.05, rng);
    const auto d = graph::diameter(g);
    const BroadcastSchedule s = greedy_cover_schedule(g, 0);
    const double budget =
        4.0 * (d + 1.0) * ceil_log2(g.node_count()) *
        ceil_log2(g.node_count());
    EXPECT_LE(static_cast<double>(s.length()), budget);
    EXPECT_TRUE(verify_schedule(g, 0, s).valid);
  }
}

TEST(GreedySchedule, OptimalOnFullSCn) {
  // On C_n with full S both schedulers find the 2-slot optimum: one slot
  // informs the whole second layer, one lone member reaches the sink.
  std::vector<NodeId> all;
  for (NodeId x = 1; x <= 40; ++x) {
    all.push_back(x);
  }
  const auto net = graph::make_cn(40, all);
  const BroadcastSchedule greedy = greedy_cover_schedule(net.g, 0);
  const BroadcastSchedule naive = naive_schedule(net.g, 0);
  EXPECT_TRUE(verify_schedule(net.g, 0, greedy).valid);
  EXPECT_TRUE(verify_schedule(net.g, 0, naive).valid);
  EXPECT_EQ(greedy.length(), 2U);
  EXPECT_EQ(naive.length(), 2U);
}

TEST(GreedySchedule, BeatsNaiveOnAMatchingLayer) {
  // Source -> a_1..a_m; a_i -> b_i (a perfect matching). The naive
  // scheduler needs one slot per a_i; greedy fires all a_i at once — each
  // b_i hears exactly its own partner, so the whole layer completes in a
  // single slot.
  const std::size_t m = 20;
  graph::Graph g(1 + 2 * m);
  for (NodeId i = 0; i < m; ++i) {
    g.add_edge(0, 1 + i);                 // source to a_i
    g.add_edge(1 + i, 1 + m + i);         // a_i to b_i
  }
  const BroadcastSchedule greedy = greedy_cover_schedule(g, 0);
  const BroadcastSchedule naive = naive_schedule(g, 0);
  EXPECT_TRUE(verify_schedule(g, 0, greedy).valid);
  EXPECT_TRUE(verify_schedule(g, 0, naive).valid);
  EXPECT_EQ(greedy.length(), 2U);       // 1 slot per layer
  EXPECT_EQ(naive.length(), 1U + m);    // 1 + one per a_i
}

TEST(NaiveSchedule, ValidAndLinear) {
  rng::Rng rng(3);
  const graph::Graph g = graph::connected_gnp(60, 0.08, rng);
  const BroadcastSchedule s = naive_schedule(g, 0);
  EXPECT_TRUE(verify_schedule(g, 0, s).valid);
  EXPECT_LE(s.length(), g.node_count() - 1);
}

TEST(GreedySchedule, RejectsUnreachable) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(greedy_cover_schedule(g, 0), ContractViolation);
  EXPECT_THROW(naive_schedule(g, 0), ContractViolation);
}

TEST(GreedySchedule, SingleNode) {
  const graph::Graph g(1);
  const BroadcastSchedule s = greedy_cover_schedule(g, 0);
  EXPECT_EQ(s.length(), 0U);
  EXPECT_TRUE(verify_schedule(g, 0, s).valid);
}

TEST(ScheduledBroadcast, ExecutesScheduleInSimulator) {
  rng::Rng rng(4);
  const graph::Graph g = graph::connected_gnp(40, 0.12, rng);
  const BroadcastSchedule schedule = greedy_cover_schedule(g, 0);
  const ScheduleCheck check = verify_schedule(g, 0, schedule);
  ASSERT_TRUE(check.valid);

  sim::Simulator s(g, sim::SimOptions{9});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      m.tag = 0x5C;
      s.emplace_protocol<ScheduledBroadcast>(v, schedule, v,
                                             std::optional(m));
    } else {
      s.emplace_protocol<ScheduledBroadcast>(v, schedule, v, std::nullopt);
    }
  }
  s.run_to_quiescence(schedule.length() + 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& p = s.protocol_as<ScheduledBroadcast>(v);
    EXPECT_TRUE(p.informed()) << "node " << v;
    EXPECT_FALSE(p.schedule_violation()) << "node " << v;
  }
  // The simulator execution must agree with the offline verifier.
  Slot worst = 0;
  for (NodeId v = 1; v < g.node_count(); ++v) {
    worst = std::max(worst,
                     s.protocol_as<ScheduledBroadcast>(v).informed_at());
  }
  EXPECT_EQ(worst, check.completion_slot);
}

TEST(ScheduledBroadcast, ViolationFlaggedOnWrongTopology) {
  // Schedule computed for a path, executed on a different path where node
  // 2 is scheduled before it can be informed.
  const graph::Graph right = graph::path(4);
  const BroadcastSchedule schedule = greedy_cover_schedule(right, 0);
  graph::Graph wrong(4);
  wrong.add_edge(0, 1);
  wrong.add_edge(2, 3);
  wrong.add_edge(1, 3);  // 2 is now only reachable via 3
  sim::Simulator s(wrong, sim::SimOptions{10});
  for (NodeId v = 0; v < 4; ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      s.emplace_protocol<ScheduledBroadcast>(v, schedule, v,
                                             std::optional(m));
    } else {
      s.emplace_protocol<ScheduledBroadcast>(v, schedule, v, std::nullopt);
    }
  }
  s.run_to_quiescence(schedule.length() + 2);
  EXPECT_TRUE(s.protocol_as<ScheduledBroadcast>(2).schedule_violation());
}

}  // namespace
}  // namespace radiocast::sched
