// The parallel trial engine's determinism contract: run_trials produces
// bit-identical results at every thread count, covers every index exactly
// once, and propagates worker exceptions to the caller.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/harness/parallel.hpp"

namespace radiocast::harness {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  for_each_trial(kCount, 8, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ResultsIndexedByTrial) {
  const auto results = run_trials(
      257, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(Parallel, CountZeroReturnsEmpty) {
  const auto results = run_trials(
      0, [](std::size_t) { return 1; }, 8);
  EXPECT_TRUE(results.empty());
  bool called = false;
  for_each_trial(0, 4, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleTrialRunsInline) {
  // count <= 1 must not spawn a thread: observable because the lambda
  // runs on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  for_each_trial(1, 8, [&seen](std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(Parallel, ExceptionPropagatesInline) {
  EXPECT_THROW(for_each_trial(4, 1,
                              [](std::size_t i) {
                                if (i == 2) {
                                  throw std::runtime_error("boom");
                                }
                              }),
               std::runtime_error);
}

TEST(Parallel, ExceptionPropagatesFromWorker) {
  EXPECT_THROW(for_each_trial(64, 8,
                              [](std::size_t i) {
                                if (i == 40) {
                                  throw std::runtime_error("boom");
                                }
                              }),
               std::runtime_error);
}

TEST(Parallel, DefaultThreadCountHonorsEnv) {
  ::setenv("RADIOCAST_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(default_thread_count(), 3u);
  // Zero and garbage fall through to hardware concurrency (>= 1).
  ::setenv("RADIOCAST_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1u);
  ::setenv("RADIOCAST_THREADS", "banana", 1);
  EXPECT_GE(default_thread_count(), 1u);
  ::unsetenv("RADIOCAST_THREADS");
  EXPECT_GE(default_thread_count(), 1u);
}

// Regression: "8x" used to parse as 8 (atoi semantics) and a value like
// "99999999999999999999" overflowed silently. The env parse is now
// all-or-nothing: any trailing garbage or overflow falls back to
// hardware concurrency.
TEST(Parallel, DefaultThreadCountRejectsTrailingGarbage) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ::setenv("RADIOCAST_THREADS", "8x", 1);
  EXPECT_EQ(default_thread_count(), hw);
  ::setenv("RADIOCAST_THREADS", "3 4", 1);
  EXPECT_EQ(default_thread_count(), hw);
  ::setenv("RADIOCAST_THREADS", "-2", 1);
  EXPECT_EQ(default_thread_count(), hw);
  ::setenv("RADIOCAST_THREADS", "", 1);
  EXPECT_EQ(default_thread_count(), hw);
  ::setenv("RADIOCAST_THREADS", "99999999999999999999", 1);  // overflows
  EXPECT_EQ(default_thread_count(), hw);
  ::unsetenv("RADIOCAST_THREADS");
}

// An absurd-but-parseable request is clamped to 4x the hardware threads
// instead of spawning thousands of workers.
TEST(Parallel, DefaultThreadCountClampsHugeRequests) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ::setenv("RADIOCAST_THREADS", "1000000", 1);
  EXPECT_EQ(default_thread_count(), 4u * hw);
  // A large-but-sane request below the cap is honored verbatim.
  const unsigned sane = 2u * hw;
  ::setenv("RADIOCAST_THREADS", std::to_string(sane).c_str(), 1);
  EXPECT_EQ(default_thread_count(), sane);
  ::unsetenv("RADIOCAST_THREADS");
}

/// One full-protocol broadcast trial, seeded purely from its index — the
/// exact shape every migrated bench uses.
harness::BroadcastOutcome bgi_trial(std::size_t trial) {
  rng::Rng graph_rng(100 + trial);
  const graph::Graph g = graph::connected_gnp(48, 0.12, graph_rng);
  const proto::BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };
  const NodeId sources[] = {0};
  return harness::run_bgi_broadcast(g, sources, params, 9000 + trial,
                                    Slot{1} << 20);
}

TEST(Parallel, BroadcastOutcomesIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTrials = 24;
  const auto serial = run_trials(kTrials, bgi_trial, 1);
  const auto two = run_trials(kTrials, bgi_trial, 2);
  const auto eight = run_trials(kTrials, bgi_trial, 8);
  ASSERT_EQ(serial.size(), kTrials);
  for (std::size_t i = 0; i < kTrials; ++i) {
    EXPECT_EQ(serial[i], two[i]) << "trial " << i << " differs at 2 threads";
    EXPECT_EQ(serial[i], eight[i])
        << "trial " << i << " differs at 8 threads";
  }
  // Sanity: the workload is not degenerate (some trials must succeed).
  std::size_t informed = 0;
  for (const auto& out : serial) {
    informed += out.all_informed ? 1 : 0;
  }
  EXPECT_GT(informed, 0u);
}

TEST(Parallel, ThreadsGreaterThanCountClamps) {
  const auto results = run_trials(
      3, [](std::size_t i) { return static_cast<int>(i) + 7; }, 64);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 7);
  EXPECT_EQ(results[1], 8);
  EXPECT_EQ(results[2], 9);
}

// Work is handed out through an atomic cursor, not static per-worker
// chunks, so a ragged count (not a multiple of the worker count, or of
// the batched engine's 64-lane blocks) can neither strand a tail index
// nor run one twice. Pinned explicitly for the counts the batched trial
// runner produces: a lone trial, one-short / exact / one-over a 64-lane
// block, and a ragged multi-block count.
TEST(Parallel, RaggedTrialCountsCoverEveryIndexExactlyOnce) {
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{130}}) {
    std::vector<std::atomic<int>> hits(count);
    for_each_trial(count, 8, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "count " << count << ", index " << i;
    }
  }
}

// count < threads: the pool clamps to one worker per trial and results
// still land at their own indices.
TEST(Parallel, RaggedCountBelowThreadsIndexedCorrectly) {
  const auto results = run_trials(
      5, [](std::size_t i) { return 100 + i; }, 16);
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], 100 + i);
  }
}

}  // namespace
}  // namespace radiocast::harness
