// Lemma 6 executable: abstract histories extracted from restricted radio
// executions agree with the real run — the sink's completion round in the
// abstract view equals its first physical delivery.
#include "radiocast/lb/abstract_extraction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "radiocast/lb/restricted.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/round_robin.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::lb {
namespace {

CnRole role_of(const graph::CnNetwork& net, NodeId v) {
  if (v == net.source) {
    return CnRole::kSource;
  }
  if (v == net.sink) {
    return CnRole::kSink;
  }
  return CnRole::kSecondLayer;
}

sim::Message payload() {
  sim::Message m;
  m.origin = 0;
  m.tag = 0xEC;
  return m;
}

/// Runs a restricted round-robin broadcast on `net`, returns (simulator
/// is consumed) the extracted history plus the sink's real first delivery.
std::pair<ExtractedHistory, Slot> run_restricted_rr(
    const graph::CnNetwork& net, Slot virtual_rounds, std::uint64_t seed) {
  const std::size_t n = net.g.node_count();
  sim::Simulator s(net.g, sim::SimOptions{.seed = seed,
                                          .collision_detection = false,
                                          .trace_slots = true});
  for (NodeId v = 0; v < n; ++v) {
    auto inner =
        v == net.source
            ? std::make_unique<proto::RoundRobinBroadcast>(n, payload())
            : std::make_unique<proto::RoundRobinBroadcast>(n);
    s.emplace_protocol<RestrictedAdapter>(v, std::move(inner),
                                          role_of(net, v));
  }
  for (Slot i = 0; i < 2 * virtual_rounds; ++i) {
    s.step();
  }
  return {extract_abstract_history(net, s.trace()),
          s.trace().first_delivery(net.sink)};
}

TEST(AbstractExtraction, CompletionMatchesSinkDelivery) {
  const NodeId s_members[] = {3, 6};
  const auto net = graph::make_cn(8, s_members);
  const auto [history, sink_first] = run_restricted_rr(net, 40, 5);
  ASSERT_TRUE(history.completed());
  ASSERT_NE(sink_first, kNever);
  // The sink's first physical delivery lands in virtual round slot/2.
  EXPECT_EQ(history.completion_round, sink_first / 2);
  // The completing round's sink view names an S member (indicator 1).
  const auto& round = history.rounds[history.completion_round];
  EXPECT_TRUE(round.sink_view.successful);
  EXPECT_TRUE(round.sink_view.indicator);
  EXPECT_TRUE(std::ranges::binary_search(net.s, round.sink_view.heard));
}

TEST(AbstractExtraction, TransmitterSetsAreSecondLayerOnly) {
  const NodeId s_members[] = {2};
  const auto net = graph::make_cn(5, s_members);
  const auto [history, sink_first] = run_restricted_rr(net, 30, 7);
  (void)sink_first;
  for (const ExtractedRound& round : history.rounds) {
    for (const NodeId v : round.transmitters) {
      EXPECT_NE(v, net.source);
      EXPECT_NE(v, net.sink);
      EXPECT_GE(v, 1U);
      EXPECT_LE(v, 5U);
    }
    EXPECT_TRUE(std::ranges::is_sorted(round.transmitters));
  }
}

TEST(AbstractExtraction, SourceViewSeesSecondLayerSingletons) {
  // Round-robin: exactly one second-layer node transmits per virtual slot
  // once informed, so after the first round the source's view must be
  // successful whenever any second-layer node transmits.
  const NodeId s_members[] = {4};
  const auto net = graph::make_cn(4, s_members);
  const auto [history, sink_first] = run_restricted_rr(net, 20, 9);
  (void)sink_first;
  for (const ExtractedRound& round : history.rounds) {
    if (round.transmitters.size() == 1) {
      EXPECT_TRUE(round.source_view.successful);
      EXPECT_EQ(round.source_view.heard, round.transmitters.front());
    }
  }
}

TEST(AbstractExtraction, RequiresSlotRecording) {
  const NodeId s_members[] = {1};
  const auto net = graph::make_cn(3, s_members);
  const sim::Trace bare(net.g.node_count(), false);
  EXPECT_THROW(extract_abstract_history(net, bare), ContractViolation);
}

TEST(AbstractExtraction, RejectsUnrestrictedTraces) {
  // A PLAIN (un-adapted) run can have the source and sink co-active;
  // extraction must refuse it. Build one where the sink transmits in an
  // even sub-slot.
  const NodeId s_members[] = {1, 2};
  const auto net = graph::make_cn(3, s_members);
  class Beacon final : public sim::Protocol {
   public:
    sim::Action on_slot(sim::NodeContext& ctx) override {
      sim::Message m;
      m.origin = ctx.id();
      return sim::Action::transmit(m);
    }
  };
  sim::Simulator s(net.g, sim::SimOptions{.seed = 1,
                                          .collision_detection = false,
                                          .trace_slots = true});
  s.install_all([](NodeId) { return std::make_unique<Beacon>(); });
  s.step();
  s.step();
  EXPECT_THROW(extract_abstract_history(net, s.trace()),
               ContractViolation);
}

}  // namespace
}  // namespace radiocast::lb
