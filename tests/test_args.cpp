#include "radiocast/harness/args.hpp"

#include <gtest/gtest.h>

#include "radiocast/common/check.hpp"
#include "radiocast/common/worker_pool.hpp"
#include "radiocast/sim/sharded.hpp"

namespace radiocast::harness {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, Empty) {
  const Args a = parse({});
  EXPECT_TRUE(a.positional().empty());
  EXPECT_FALSE(a.has("x"));
  EXPECT_EQ(a.get("x", "d"), "d");
}

TEST(Args, PositionalAndOptions) {
  const Args a = parse({"run", "--n", "100", "--eps", "0.1", "target"});
  EXPECT_EQ(a.positional(),
            (std::vector<std::string>{"run", "target"}));
  EXPECT_EQ(a.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(a.get_double("eps", 0), 0.1);
}

TEST(Args, EqualsSyntax) {
  const Args a = parse({"--n=42", "--name=alpha"});
  EXPECT_EQ(a.get_int("n", 0), 42);
  EXPECT_EQ(a.get("name", ""), "alpha");
}

TEST(Args, BareFlag) {
  const Args a = parse({"--verbose", "--n", "3"});
  EXPECT_TRUE(a.get_flag("verbose"));
  EXPECT_FALSE(a.get_flag("quiet"));
  EXPECT_EQ(a.get_int("n", 0), 3);
}

TEST(Args, FlagBeforeAnotherOption) {
  const Args a = parse({"--dry-run", "--out", "x.csv"});
  EXPECT_TRUE(a.get_flag("dry-run"));
  EXPECT_EQ(a.get("out", ""), "x.csv");
}

TEST(Args, FlagFalseValue) {
  const Args a = parse({"--feature", "false"});
  EXPECT_FALSE(a.get_flag("feature"));
}

TEST(Args, MalformedIntThrows) {
  const Args a = parse({"--n", "12x"});
  EXPECT_THROW(a.get_int("n", 0), ContractViolation);
}

TEST(Args, MalformedDoubleThrows) {
  const Args a = parse({"--eps", "zero"});
  EXPECT_THROW(a.get_double("eps", 0), ContractViolation);
}

TEST(Args, FlagWithArbitraryValueThrows) {
  const Args a = parse({"--feature", "banana"});
  EXPECT_THROW(a.get_flag("feature"), ContractViolation);
}

TEST(Args, NegativeNumbersAsValues) {
  // A "-5" does not start with "--", so it binds as the value.
  const Args a = parse({"--delta", "-5"});
  EXPECT_EQ(a.get_int("delta", 0), -5);
}

TEST(Args, UnknownKeyDetection) {
  const Args a = parse({"--n", "1", "--oops", "2"});
  const auto unknown = a.unknown_keys({"n"});
  ASSERT_EQ(unknown.size(), 1U);
  EXPECT_EQ(unknown[0], "oops");
}

TEST(Args, BareDoubleDashRejected) {
  EXPECT_THROW(parse({"--"}), ContractViolation);
}

// The env-knob parsers behind RADIOCAST_AFFINITY and RADIOCAST_SCALE_SWEEP
// follow the RADIOCAST_THREADS discipline: the whole value must match one
// of the documented spellings, anything else is rejected (the reader then
// warns once and falls back to the default) rather than silently coerced.

TEST(Args, AffinityEnvValuesParseStrictly) {
  EXPECT_EQ(common::parse_affinity("none"), common::Affinity::kNone);
  EXPECT_EQ(common::parse_affinity("pin"), common::Affinity::kPin);
  EXPECT_FALSE(common::parse_affinity("PIN").has_value());
  EXPECT_FALSE(common::parse_affinity("pin,0-3").has_value());
  EXPECT_FALSE(common::parse_affinity("true").has_value());
  EXPECT_FALSE(common::parse_affinity("").has_value());
  EXPECT_FALSE(common::parse_affinity(nullptr).has_value());
}

TEST(Args, SweepStrategyEnvValuesParseStrictly) {
  EXPECT_EQ(sim::parse_sweep_strategy("auto"), sim::SweepStrategy::kAuto);
  EXPECT_EQ(sim::parse_sweep_strategy("dense"), sim::SweepStrategy::kDense);
  EXPECT_EQ(sim::parse_sweep_strategy("sparse"),
            sim::SweepStrategy::kSparse);
  EXPECT_FALSE(sim::parse_sweep_strategy("AUTO").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("dense sparse").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("0").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("").has_value());
}

}  // namespace
}  // namespace radiocast::harness
