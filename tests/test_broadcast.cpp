#include "radiocast/proto/broadcast.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/sim/simulator.hpp"
#include "radiocast/stats/chernoff.hpp"

namespace radiocast::proto {
namespace {

BroadcastParams params_for(const graph::Graph& g, double epsilon = 0.1) {
  return BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = epsilon,
      .stop_probability = 0.5,
  };
}

sim::Message payload() {
  sim::Message m;
  m.origin = 0;
  m.tag = 0xFEED;
  return m;
}

TEST(BgiBroadcast, SourceIsInformedFromSlotZero) {
  const BgiBroadcast p(params_for(graph::path(4)), payload());
  EXPECT_TRUE(p.informed());
  EXPECT_EQ(p.informed_at(), 0U);
  EXPECT_FALSE(p.terminated());
}

TEST(BgiBroadcast, NonSourceStartsUninformed) {
  const BgiBroadcast p(params_for(graph::path(4)));
  EXPECT_FALSE(p.informed());
  EXPECT_EQ(p.informed_at(), kNever);
  EXPECT_THROW(p.message(), ContractViolation);
}

TEST(BgiBroadcast, TwoNodeDelivery) {
  const graph::Graph g = graph::path(2);
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{1});
  s.emplace_protocol<BgiBroadcast>(0, params, payload());
  auto& receiver = s.emplace_protocol<BgiBroadcast>(1, params);
  // Slot 0: the source's Decay always transmits in its first slot, and it
  // is the only transmitter, so node 1 must be informed immediately.
  s.step();
  EXPECT_TRUE(receiver.informed());
  EXPECT_EQ(receiver.informed_at(), 0U);
  EXPECT_EQ(receiver.message(), payload());
}

TEST(BgiBroadcast, TerminatesAfterAllPhases) {
  const graph::Graph g = graph::path(2);
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{1});
  auto& source = s.emplace_protocol<BgiBroadcast>(0, params, payload());
  s.emplace_protocol<BgiBroadcast>(1, params);
  const Slot horizon =
      static_cast<Slot>(params.phase_length()) * (params.repetitions() + 2);
  for (Slot i = 0; i < horizon; ++i) {
    s.step();
  }
  EXPECT_TRUE(source.terminated());
  EXPECT_EQ(source.phases_completed(), params.repetitions());
}

TEST(BgiBroadcast, UninformedNeverTransmits) {
  // A lone uninformed node in an empty network never transmits.
  sim::Simulator s(graph::Graph(1), sim::SimOptions{1});
  s.emplace_protocol<BgiBroadcast>(
      0, BroadcastParams{.network_size_bound = 4, .degree_bound = 2,
                         .epsilon = 0.5, .stop_probability = 0.5});
  for (int i = 0; i < 50; ++i) {
    s.step();
  }
  EXPECT_EQ(s.trace().total_transmissions(), 0U);
}

TEST(BgiBroadcast, NodesJoinOnlyAtPhaseBoundaries) {
  // On a path 0-1-2, node 1 is informed at slot 0. It must not transmit
  // before the next multiple of k.
  const graph::Graph g = graph::path(3);
  const auto params = params_for(g);
  const unsigned k = params.phase_length();
  sim::Simulator s(g, sim::SimOptions{3, false, true});
  s.emplace_protocol<BgiBroadcast>(0, params, payload());
  s.emplace_protocol<BgiBroadcast>(1, params);
  s.emplace_protocol<BgiBroadcast>(2, params);
  s.step();
  ASSERT_TRUE(s.protocol_as<BgiBroadcast>(1).informed());
  // Slots 1..k-1: node 1 may not transmit yet.
  for (Slot t = 1; t < k; ++t) {
    s.step();
    for (const auto& rec : s.trace().slots()) {
      if (rec.slot >= 1 && rec.slot < k) {
        for (const NodeId tx : rec.transmitters) {
          EXPECT_NE(tx, 1U) << "node 1 transmitted mid-phase at slot "
                            << rec.slot;
        }
      }
    }
  }
}

TEST(BgiBroadcast, CompletesOnPathWithHighProbability) {
  const graph::Graph g = graph::path(12);
  const auto params = params_for(g, 0.2);
  int successes = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    const NodeId sources[] = {0};
    const auto out = harness::run_bgi_broadcast(
        g, sources, params, 1000 + trial, 200000);
    successes += out.all_informed ? 1 : 0;
  }
  // Lemma 2: success probability >= 1 - ε = 0.8. With 60 trials a rate
  // below 0.7 would be a > 2-sigma miss.
  EXPECT_GE(static_cast<double>(successes) / trials, 0.7);
}

TEST(BgiBroadcast, CompletesOnCliqueDespiteConflicts) {
  const graph::Graph g = graph::clique(24);
  const auto params = params_for(g, 0.1);
  const NodeId sources[] = {0};
  int successes = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out = harness::run_bgi_broadcast(
        g, sources, params, 5000 + trial, 100000);
    successes += out.all_informed ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(successes) / trials, 0.8);
}

TEST(BgiBroadcast, MeetsTheorem4BoundTypically) {
  rng::Rng topo(11);
  const graph::Graph g = graph::connected_gnp(80, 0.08, topo);
  const auto d = graph::diameter(g);
  ASSERT_NE(d, graph::kUnreachable);
  const auto params = params_for(g, 0.1);
  const double bound = stats::theorem4_delivery_slots(
      d, g.node_count(), g.max_in_degree(), 0.1);
  const NodeId sources[] = {0};
  int within = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out =
        harness::run_bgi_broadcast(g, sources, params, 31 + trial, 200000);
    if (out.all_informed &&
        static_cast<double>(out.completion_slot) <= bound) {
      ++within;
    }
  }
  // Theorem 4 promises probability >= 1 - 2ε = 0.8; in practice the bound
  // is loose and essentially every run lands inside it.
  EXPECT_GE(within, 20);
}

TEST(BgiBroadcast, MultiSourceRemark) {
  // Remark after Theorem 4: several initiators with the same message.
  const graph::Graph g = graph::grid(6, 6);
  const auto params = params_for(g, 0.1);
  const NodeId sources[] = {0, 35};
  const auto out = harness::run_bgi_broadcast(g, sources, params, 7, 100000);
  EXPECT_TRUE(out.all_informed);
}

TEST(BgiBroadcast, WorksOnDirectedNetworks) {
  // §2.2 property 4: no acknowledgements, so asymmetric links are fine.
  rng::Rng topo(13);
  const graph::Graph g =
      graph::random_strongly_reachable_digraph(50, 100, topo);
  ASSERT_TRUE(graph::all_reachable_from(g, 0));
  const auto params = params_for(g, 0.1);
  const NodeId sources[] = {0};
  int successes = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out =
        harness::run_bgi_broadcast(g, sources, params, 600 + trial, 200000);
    successes += out.all_informed ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(successes) / trials, 0.8);
}

TEST(BgiBroadcast, ActivityDiesOutAfterTermination) {
  const graph::Graph g = graph::path(6);
  const auto params = params_for(g, 0.2);
  const NodeId sources[] = {0};
  const auto out = harness::run_bgi_broadcast(g, sources, params, 17, 200000);
  // run_bgi_broadcast stops at completion or death; afterwards re-running
  // the simulation longer must not change transmission counts once all
  // nodes terminated. Here we simply sanity-check the run ended before the
  // hard horizon (the protocol always terminates, Lemma 2's "always
  // terminates" clause).
  EXPECT_LT(out.slots_run, 200000U);
}

TEST(BroadcastParams, DerivedQuantities) {
  const BroadcastParams p{.network_size_bound = 1000, .degree_bound = 17,
                          .epsilon = 0.01, .stop_probability = 0.5};
  EXPECT_EQ(p.phase_length(), 10U);  // 2*ceil(log2 17) = 10
  EXPECT_EQ(p.repetitions(), 17U);   // ceil(log2 1e5)
}

}  // namespace
}  // namespace radiocast::proto
