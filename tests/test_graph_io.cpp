#include "radiocast/graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "radiocast/graph/generators.hpp"

namespace radiocast::graph {
namespace {

TEST(GraphIo, RoundTripEmpty) {
  const Graph g(5);
  EXPECT_EQ(from_string(to_string(g)), g);
}

TEST(GraphIo, RoundTripUndirected) {
  rng::Rng rng(1);
  const Graph g = connected_gnp(40, 0.1, rng);
  EXPECT_EQ(from_string(to_string(g)), g);
}

TEST(GraphIo, RoundTripDirected) {
  rng::Rng rng(2);
  const Graph g = random_strongly_reachable_digraph(30, 50, rng);
  const Graph back = from_string(to_string(g));
  EXPECT_EQ(back, g);
  EXPECT_FALSE(back.is_symmetric());
}

TEST(GraphIo, FormatIsStable) {
  Graph g(3);
  g.add_arc(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(to_string(g),
            "radiocast-graph 1\n"
            "nodes 3\n"
            "arc 0 1\n"
            "arc 1 2\n"
            "arc 2 1\n");
}

TEST(GraphIo, RejectsBadMagic) {
  std::istringstream is("wrong-magic 1\nnodes 2\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphIo, RejectsBadVersion) {
  std::istringstream is("radiocast-graph 9\nnodes 2\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphIo, RejectsMissingNodesLine) {
  std::istringstream is("radiocast-graph 1\narcs 2\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphIo, RejectsOutOfRangeArc) {
  std::istringstream is("radiocast-graph 1\nnodes 2\narc 0 5\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::istringstream is("radiocast-graph 1\nnodes 2\narc 1 1\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphIo, RejectsTruncatedArc) {
  std::istringstream is("radiocast-graph 1\nnodes 2\narc 0\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphIo, RejectsJunkKeyword) {
  std::istringstream is("radiocast-graph 1\nnodes 2\nedge 0 1\n");
  EXPECT_THROW(read_graph(is), ContractViolation);
}

TEST(GraphDot, UndirectedCollapsed) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::ostringstream os;
  write_dot(os, g);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph radiocast {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2;"), std::string::npos);
  // Each edge exactly once.
  EXPECT_EQ(dot.find("n1 -- n0"), std::string::npos);
}

TEST(GraphDot, OneWayArcKeepsDirection) {
  Graph g(2);
  g.add_arc(0, 1);
  std::ostringstream os;
  write_dot(os, g);
  EXPECT_NE(os.str().find("[dir=forward]"), std::string::npos);
}

TEST(GraphDot, DigraphMode) {
  Graph g(2);
  g.add_edge(0, 1);
  std::ostringstream os;
  DotOptions options;
  options.collapse_symmetric = false;
  write_dot(os, g, options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n0;"), std::string::npos);
}

TEST(GraphDot, CustomLabels) {
  Graph g(2);
  g.add_edge(0, 1);
  std::ostringstream os;
  DotOptions options;
  options.node_labels = {"source", "sink"};
  write_dot(os, g, options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("label=\"source\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"sink\""), std::string::npos);
}

// Regression: labels containing `"` or `\` used to be emitted verbatim,
// producing DOT files Graphviz rejects (or worse, parses differently).
TEST(GraphDot, HostileLabelsAreEscaped) {
  Graph g(2);
  g.add_edge(0, 1);
  std::ostringstream os;
  DotOptions options;
  options.node_labels = {"say \"hi\"", "back\\slash"};
  write_dot(os, g, options);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("label=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"back\\\\slash\""), std::string::npos);
  // No raw unescaped quote may survive inside a label.
  EXPECT_EQ(dot.find("label=\"say \"hi"), std::string::npos);
}

}  // namespace
}  // namespace radiocast::graph
