#include "radiocast/rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace radiocast::rng {
namespace {

TEST(Splitmix64, KnownSequence) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation (Steele, Lea & Flood).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

TEST(Splitmix64, Mix64IsStateless) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, StreamsAreIndependent) {
  Xoshiro256 a(7, 0);
  Xoshiro256 b(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, JumpChangesState) {
  Xoshiro256 a(7);
  const auto before = a.state();
  a.jump();
  EXPECT_NE(a.state(), before);
}

TEST(Rng, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17U);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform(1), 0U);
  }
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(0), ContractViolation);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(1234);
  std::array<int, 8> bucket{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) {
    ++bucket[rng.uniform(8)];
  }
  for (const int b : bucket) {
    EXPECT_NEAR(b, trials / 8, 500);  // ~5 sigma
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(77);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    heads += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.01);
}

TEST(Rng, FairCoinFrequency) {
  Rng rng(10);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    heads += rng.fair_coin() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(Rng, GeometricMean) {
  Rng rng(11);
  double total = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.geometric(0.5));
  }
  EXPECT_NEAR(total / trials, 1.0, 0.05);  // mean (1-p)/p = 1
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.geometric(1.0), 0U);
  }
}

TEST(Rng, GeometricRejectsBadP) {
  Rng rng(13);
  EXPECT_THROW(rng.geometric(0.0), ContractViolation);
  EXPECT_THROW(rng.geometric(1.5), ContractViolation);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::ranges::sort(w);
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(15);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[i] = i;
  }
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // probability of identity is astronomically small
}

}  // namespace
}  // namespace radiocast::rng
