// Randomized differential testing of the slot engine: drive random
// protocols over random (mutating) topologies and check, slot by slot,
// that the simulator's deliveries match an independent recomputation of
// the radio semantics from the per-slot trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "radiocast/fault/plan.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::sim {
namespace {

/// Transmits with a node-specific probability; records everything it
/// hears and its own actions.
class FuzzNode final : public Protocol {
 public:
  explicit FuzzNode(double p) : p_(p) {}

  Action on_slot(NodeContext& ctx) override {
    if (ctx.rng().bernoulli(p_)) {
      tx_slots.push_back(ctx.now());
      Message m;
      m.origin = ctx.id();
      m.tag = ctx.now();
      return Action::transmit(m);
    }
    if (ctx.rng().bernoulli(0.1)) {
      idle_slots.insert(ctx.now());
      return Action::idle();
    }
    return Action::receive();
  }

  void on_receive(NodeContext& ctx, const Message& m) override {
    heard.emplace_back(ctx.now(), m.origin);
    // The tag is the slot the sender transmitted in: must be *this* slot.
    EXPECT_EQ(m.tag, ctx.now());
  }

  std::vector<Slot> tx_slots;
  std::set<Slot> idle_slots;
  std::vector<std::pair<Slot, NodeId>> heard;

 private:
  double p_;
};

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, TraceSelfConsistent) {
  const std::uint64_t seed = GetParam();
  rng::Rng meta(seed);
  const std::size_t n = 8 + meta.uniform(25);
  graph::Graph g = graph::connected_gnp(
      n, 2.5 / static_cast<double>(n), meta);

  Simulator s(std::move(g), SimOptions{.seed = seed + 1,
                                       .collision_detection = false,
                                       .trace_slots = true});
  std::vector<FuzzNode*> nodes(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes[v] = &s.emplace_protocol<FuzzNode>(
        v, 0.1 + 0.8 * meta.uniform01());
  }
  // Sprinkle topology churn and crashes.
  const std::size_t events = 5 + meta.uniform(10);
  for (std::size_t i = 0; i < events; ++i) {
    const Slot at = meta.uniform(100);
    const auto u = static_cast<NodeId>(meta.uniform(n));
    auto v = static_cast<NodeId>(meta.uniform(n));
    if (u == v) {
      v = (v + 1) % n;
    }
    switch (meta.uniform(4)) {
      case 0:
        s.network().schedule({at, EventKind::kAddEdge, u, v});
        break;
      case 1:
        s.network().schedule({at, EventKind::kRemoveEdge, u, v});
        break;
      case 2:
        s.network().schedule({at, EventKind::kCrashNode, u, kNoNode});
        break;
      default:
        s.network().schedule({at, EventKind::kReviveNode, u, kNoNode});
        break;
    }
  }

  const int slots = 120;
  for (int i = 0; i < slots; ++i) {
    s.step();
  }

  // 1. Per-slot recomputation: for every recorded slot, re-derive who
  //    must have heard what from the transmitter set alone.
  const auto& records = s.trace().slots();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(slots));
  std::uint64_t expected_deliveries = 0;
  for (const SlotRecord& rec : records) {
    // Transmitter lists are sorted and duplicate-free.
    EXPECT_TRUE(std::ranges::is_sorted(rec.transmitters));
    EXPECT_TRUE(std::ranges::adjacent_find(rec.transmitters) ==
                rec.transmitters.end());
    // Every delivery's sender must be in the slot's transmitter set, and
    // the receiver must not be.
    for (const Delivery& d : rec.deliveries) {
      EXPECT_TRUE(std::ranges::binary_search(rec.transmitters, d.sender));
      EXPECT_FALSE(
          std::ranges::binary_search(rec.transmitters, d.receiver));
      ++expected_deliveries;
    }
    // A node cannot be both a collision victim and a delivery receiver.
    for (const NodeId v : rec.collision_receivers) {
      for (const Delivery& d : rec.deliveries) {
        EXPECT_NE(d.receiver, v);
      }
    }
  }
  EXPECT_EQ(s.trace().total_deliveries(), expected_deliveries);

  // 2. Protocol-side vs trace-side agreement: everything a node heard is
  //    in the trace and vice versa.
  std::uint64_t heard_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    heard_total += nodes[v]->heard.size();
    EXPECT_EQ(nodes[v]->heard.size(), s.trace().deliveries_to(v));
    // Nodes never hear anything in slots where they transmitted or idled.
    std::set<Slot> tx(nodes[v]->tx_slots.begin(), nodes[v]->tx_slots.end());
    for (const auto& [slot, sender] : nodes[v]->heard) {
      EXPECT_FALSE(tx.contains(slot));
      EXPECT_FALSE(nodes[v]->idle_slots.contains(slot));
      EXPECT_NE(sender, v);  // never hears itself
    }
  }
  EXPECT_EQ(heard_total, s.trace().total_deliveries());

  // 3. Transmission bookkeeping.
  std::uint64_t tx_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(nodes[v]->tx_slots.size(), s.trace().transmissions_of(v));
    tx_total += nodes[v]->tx_slots.size();
  }
  EXPECT_EQ(tx_total, s.trace().total_transmissions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Differential test against a naive O(n * m) reference stepper.
//
// The optimized engine (CSR snapshot, transmitter list, touched-receiver
// scratch) must be observationally identical to the textbook semantics:
// per slot, for every receiver, count transmitting in-neighbors; exactly
// one -> delivery, two or more -> collision. The reference below computes
// that directly from its own copy of the evolving graph and liveness.
// Protocol actions are a pure function of (salt, node, slot), so both
// sides can derive them independently — no rng state is shared.
// ---------------------------------------------------------------------------

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

ActionKind scripted_kind(std::uint64_t salt, NodeId v, Slot t) {
  const std::uint64_t h = mix64(salt ^ mix64(v * 0x10001ULL + t));
  const double r =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  if (r < 0.35) {
    return ActionKind::kTransmit;
  }
  if (r < 0.45) {
    return ActionKind::kIdle;
  }
  return ActionKind::kReceive;
}

/// Plays the scripted action for its node; logs what it hears.
class ScriptedNode final : public Protocol {
 public:
  explicit ScriptedNode(std::uint64_t salt) : salt_(salt) {}

  Action on_slot(NodeContext& ctx) override {
    switch (scripted_kind(salt_, ctx.id(), ctx.now())) {
      case ActionKind::kTransmit: {
        Message m;
        m.origin = ctx.id();
        m.tag = ctx.now();
        return Action::transmit(m);
      }
      case ActionKind::kIdle:
        return Action::idle();
      default:
        return Action::receive();
    }
  }

  void on_receive(NodeContext& ctx, const Message& m) override {
    heard.emplace_back(ctx.now(), m.origin);
  }

  std::vector<std::pair<Slot, NodeId>> heard;

 private:
  std::uint64_t salt_;
};

/// The naive model: a private copy of the graph and liveness, mutated by
/// the same event list the simulator sees, stepped by brute force.
class ReferenceStepper {
 public:
  ReferenceStepper(graph::Graph g, std::uint64_t salt)
      : g_(std::move(g)), alive_(g_.node_count(), 1), salt_(salt) {}

  void schedule(const TopologyEvent& e) { events_.push_back(e); }

  /// Attach an independent FaultHook instance (same config as the
  /// simulator's, never shared — each side owns its full fault state).
  void set_fault(FaultHook* fault) { fault_ = fault; }

  /// Mirrors Network::apply for one event.
  void apply(const TopologyEvent& e) {
    switch (e.kind) {
      case EventKind::kAddEdge:
        g_.add_edge(e.u, e.v);
        break;
      case EventKind::kRemoveEdge:
        g_.remove_edge(e.u, e.v);
        break;
      case EventKind::kAddArc:
        g_.add_arc(e.u, e.v);
        break;
      case EventKind::kRemoveArc:
        g_.remove_arc(e.u, e.v);
        break;
      case EventKind::kCrashNode:
        alive_[e.u] = 0;
        break;
      case EventKind::kReviveNode:
      case EventKind::kRecoverNode:
        alive_[e.u] = 1;
        break;
    }
  }

  std::size_t dead_count() const {
    return static_cast<std::size_t>(std::count(alive_.begin(), alive_.end(),
                                               0));
  }

  /// The expected observable content of one slot.
  struct ExpectedSlot {
    std::vector<NodeId> transmitters;
    std::vector<Delivery> deliveries;
    std::vector<NodeId> collisions;
  };

  ExpectedSlot step(Slot now) {
    // Events with equal `at` apply in scheduling order, exactly like
    // EventQueue (stable sort by slot).
    std::stable_sort(events_.begin() + static_cast<std::ptrdiff_t>(next_),
                     events_.end(),
                     [](const TopologyEvent& a, const TopologyEvent& b) {
                       return a.at < b.at;
                     });
    while (next_ < events_.size() && events_[next_].at <= now) {
      apply(events_[next_]);
      ++next_;
    }

    const std::size_t n = g_.node_count();
    if (fault_ != nullptr) {
      fault_->begin_slot(now, dead_count());
    }
    ExpectedSlot out;
    for (NodeId u = 0; u < n; ++u) {
      if (alive_[u] != 0 &&
          scripted_kind(salt_, u, now) == ActionKind::kTransmit) {
        out.transmitters.push_back(u);
      }
    }
    // O(n * m): every receiver tests every node for "transmitting
    // in-neighbor" via arc membership — no CSR, no scratch lists.
    // Receivers go in increasing id order — the order the engine promises
    // to consult the fault hook in, on both its sparse and dense paths.
    for (NodeId v = 0; v < n; ++v) {
      if (alive_[v] == 0 ||
          scripted_kind(salt_, v, now) != ActionKind::kReceive) {
        continue;
      }
      std::size_t count = 0;
      NodeId sender = kNoNode;
      for (const NodeId u : out.transmitters) {
        if (g_.has_arc(u, v)) {
          if (++count == 1) {
            sender = u;
          }
        }
      }
      if (count == 1) {
        DeliveryFate fate = DeliveryFate::kDeliver;
        if (fault_ != nullptr) {
          fate = fault_->on_delivery(now, sender, v);
        }
        if (fate == DeliveryFate::kDeliver) {
          out.deliveries.push_back(Delivery{v, sender});
          expected_heard_[v].emplace_back(now, sender);
        } else if (fate == DeliveryFate::kJam) {
          out.collisions.push_back(v);
        }  // kDrop: pure erasure, the receiver sees silence
      } else if (count >= 2) {
        out.collisions.push_back(v);
      }
    }
    return out;
  }

  const std::map<NodeId, std::vector<std::pair<Slot, NodeId>>>&
  expected_heard() const {
    return expected_heard_;
  }

 private:
  graph::Graph g_;
  std::vector<char> alive_;
  std::uint64_t salt_;
  FaultHook* fault_ = nullptr;
  std::vector<TopologyEvent> events_;
  std::size_t next_ = 0;
  std::map<NodeId, std::vector<std::pair<Slot, NodeId>>> expected_heard_;
};

class SimVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimVsReference, SlotTracesMatchNaiveSemantics) {
  const std::uint64_t seed = GetParam();
  rng::Rng meta(seed * 977 + 5);
  const std::size_t n = 6 + meta.uniform(30);
  const graph::Graph g = graph::connected_gnp(
      n, 3.0 / static_cast<double>(n), meta);
  const std::uint64_t salt = mix64(seed);

  Simulator s(g, SimOptions{.seed = seed,
                            .collision_detection = false,
                            .trace_slots = true});
  ReferenceStepper ref(g, salt);
  std::vector<ScriptedNode*> nodes(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes[v] = &s.emplace_protocol<ScriptedNode>(v, salt);
  }

  // Random churn, including directed-arc events and crash/revive pairs,
  // fed identically to both machines.
  const std::size_t events = 8 + meta.uniform(12);
  for (std::size_t i = 0; i < events; ++i) {
    TopologyEvent e;
    e.at = meta.uniform(90);
    e.u = static_cast<NodeId>(meta.uniform(n));
    e.v = static_cast<NodeId>(meta.uniform(n));
    if (e.u == e.v) {
      e.v = (e.v + 1) % n;
    }
    switch (meta.uniform(6)) {
      case 0: e.kind = EventKind::kAddEdge; break;
      case 1: e.kind = EventKind::kRemoveEdge; break;
      case 2: e.kind = EventKind::kAddArc; break;
      case 3: e.kind = EventKind::kRemoveArc; break;
      case 4: e.kind = EventKind::kCrashNode; break;
      default: e.kind = EventKind::kReviveNode; break;
    }
    s.network().schedule(e);
    ref.schedule(e);
  }

  const Slot slots = 100;
  for (Slot t = 0; t < slots; ++t) {
    // Occasionally mutate the topology directly between steps — the
    // engine must notice via the graph's version counter and rebuild its
    // CSR snapshot before handing out stale neighbor spans.
    if (t % 17 == 11) {
      const auto a = static_cast<NodeId>(meta.uniform(n));
      auto b = static_cast<NodeId>(meta.uniform(n));
      if (a == b) {
        b = (b + 1) % n;
      }
      s.network().topology().add_edge(a, b);
      ref.apply(TopologyEvent{t, EventKind::kAddEdge, a, b});
    }
    const auto expected = ref.step(t);
    s.step();

    const SlotRecord& rec = s.trace().slots().at(t);
    ASSERT_EQ(rec.slot, t);
    EXPECT_EQ(rec.transmitters, expected.transmitters) << "slot " << t;
    EXPECT_EQ(rec.deliveries, expected.deliveries) << "slot " << t;
    EXPECT_EQ(rec.collision_receivers, expected.collisions) << "slot " << t;
  }

  // The protocols' own heard logs must agree with the reference too.
  for (NodeId v = 0; v < n; ++v) {
    const auto it = ref.expected_heard().find(v);
    const std::vector<std::pair<Slot, NodeId>> want =
        it == ref.expected_heard().end()
            ? std::vector<std::pair<Slot, NodeId>>{}
            : it->second;
    EXPECT_EQ(nodes[v]->heard, want) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsReference,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---------------------------------------------------------------------------
// Same differential setup, now with a random FaultPlan attached to both
// machines. Two independent plan instances are compiled from an identical
// config (plans are stateful — budgets, Gilbert–Elliott chains — so they
// must never be shared); if the engine consults its hook in any slot or
// order the reference does not, deliveries, collisions or the plans'
// counters diverge.
// ---------------------------------------------------------------------------

fault::FaultConfig random_fault_config(rng::Rng& meta) {
  fault::FaultConfig fc;
  fc.seed = meta.generator().next();
  switch (meta.uniform(3)) {
    case 0:
      break;  // lossless
    case 1:
      fc.loss = fault::LossModel::bernoulli(0.05 + 0.3 * meta.uniform01());
      break;
    default: {
      fault::GilbertElliott ge;
      ge.p_good_to_bad = 0.05 + 0.2 * meta.uniform01();
      ge.p_bad_to_good = 0.1 + 0.5 * meta.uniform01();
      ge.loss_bad = 0.5 + 0.5 * meta.uniform01();
      fc.loss = fault::LossModel::gilbert_elliott(ge);
      break;
    }
  }
  if (meta.uniform(2) == 0) {
    fc.jammers.push_back(fault::JammerSpec::oblivious(
        0.1 * meta.uniform01(), 5 + meta.uniform(20)));
  }
  if (meta.uniform(2) == 0) {
    fc.jammers.push_back(fault::JammerSpec::reactive(3 + meta.uniform(10)));
  }
  if (meta.uniform(2) == 0) {
    fc.jammers.push_back(
        fault::JammerSpec::periodic(2 + meta.uniform(9), meta.uniform(5)));
  }
  if (meta.uniform(2) == 0) {
    fc.crashes.fraction = 0.1 + 0.3 * meta.uniform01();
    fc.crashes.window = 60;
    fc.crashes.min_downtime = 5;
    // Every other config leaves some nodes down for good.
    fc.crashes.max_downtime = meta.uniform(2) == 0 ? 0 : 5 + meta.uniform(40);
  }
  return fc;
}

class SimVsReferenceFaults : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimVsReferenceFaults, FaultyTracesMatchNaiveSemantics) {
  const std::uint64_t seed = GetParam();
  rng::Rng meta(seed * 7919 + 13);
  const std::size_t n = 6 + meta.uniform(30);
  const graph::Graph g = graph::connected_gnp(
      n, 3.0 / static_cast<double>(n), meta);
  const std::uint64_t salt = mix64(seed ^ 0xFA17u);

  const fault::FaultConfig fc = random_fault_config(meta);
  fault::FaultPlan plan_sim(fc, n);
  fault::FaultPlan plan_ref(fc, n);
  ASSERT_EQ(plan_sim.events(), plan_ref.events());

  SimOptions options{.seed = seed, .collision_detection = false,
                     .trace_slots = true};
  options.fault = &plan_sim;
  Simulator s(g, options);  // ctor drains plan_sim.scheduled_events()
  ReferenceStepper ref(g, salt);
  ref.set_fault(&plan_ref);
  for (const TopologyEvent& e : plan_ref.scheduled_events()) {
    ref.schedule(e);
  }
  std::vector<ScriptedNode*> nodes(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes[v] = &s.emplace_protocol<ScriptedNode>(v, salt);
  }

  // Plain topology churn on top of the compiled crash/recover schedule.
  const std::size_t events = 4 + meta.uniform(8);
  for (std::size_t i = 0; i < events; ++i) {
    TopologyEvent e;
    e.at = meta.uniform(90);
    e.u = static_cast<NodeId>(meta.uniform(n));
    e.v = static_cast<NodeId>(meta.uniform(n));
    if (e.u == e.v) {
      e.v = (e.v + 1) % n;
    }
    e.kind = meta.uniform(2) == 0 ? EventKind::kAddEdge
                                  : EventKind::kRemoveEdge;
    s.network().schedule(e);
    ref.schedule(e);
  }

  const Slot slots = 100;
  for (Slot t = 0; t < slots; ++t) {
    const auto expected = ref.step(t);
    s.step();

    const SlotRecord& rec = s.trace().slots().at(t);
    ASSERT_EQ(rec.slot, t);
    EXPECT_EQ(rec.transmitters, expected.transmitters) << "slot " << t;
    EXPECT_EQ(rec.deliveries, expected.deliveries) << "slot " << t;
    EXPECT_EQ(rec.collision_receivers, expected.collisions) << "slot " << t;
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto it = ref.expected_heard().find(v);
    const std::vector<std::pair<Slot, NodeId>> want =
        it == ref.expected_heard().end()
            ? std::vector<std::pair<Slot, NodeId>>{}
            : it->second;
    EXPECT_EQ(nodes[v]->heard, want) << "node " << v;
  }

  // Both plans saw the exact same decision sequence.
  EXPECT_EQ(plan_sim.counters(), plan_ref.counters());
  for (std::size_t i = 0; i < fc.jammers.size(); ++i) {
    EXPECT_EQ(plan_sim.remaining_budget(i), plan_ref.remaining_budget(i))
        << "jammer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsReferenceFaults,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace radiocast::sim
