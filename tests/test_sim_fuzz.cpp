// Randomized differential testing of the slot engine: drive random
// protocols over random (mutating) topologies and check, slot by slot,
// that the simulator's deliveries match an independent recomputation of
// the radio semantics from the per-slot trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::sim {
namespace {

/// Transmits with a node-specific probability; records everything it
/// hears and its own actions.
class FuzzNode final : public Protocol {
 public:
  explicit FuzzNode(double p) : p_(p) {}

  Action on_slot(NodeContext& ctx) override {
    if (ctx.rng().bernoulli(p_)) {
      tx_slots.push_back(ctx.now());
      Message m;
      m.origin = ctx.id();
      m.tag = ctx.now();
      return Action::transmit(m);
    }
    if (ctx.rng().bernoulli(0.1)) {
      idle_slots.insert(ctx.now());
      return Action::idle();
    }
    return Action::receive();
  }

  void on_receive(NodeContext& ctx, const Message& m) override {
    heard.emplace_back(ctx.now(), m.origin);
    // The tag is the slot the sender transmitted in: must be *this* slot.
    EXPECT_EQ(m.tag, ctx.now());
  }

  std::vector<Slot> tx_slots;
  std::set<Slot> idle_slots;
  std::vector<std::pair<Slot, NodeId>> heard;

 private:
  double p_;
};

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, TraceSelfConsistent) {
  const std::uint64_t seed = GetParam();
  rng::Rng meta(seed);
  const std::size_t n = 8 + meta.uniform(25);
  graph::Graph g = graph::connected_gnp(
      n, 2.5 / static_cast<double>(n), meta);

  Simulator s(std::move(g), SimOptions{.seed = seed + 1,
                                       .collision_detection = false,
                                       .trace_slots = true});
  std::vector<FuzzNode*> nodes(n);
  for (NodeId v = 0; v < n; ++v) {
    nodes[v] = &s.emplace_protocol<FuzzNode>(
        v, 0.1 + 0.8 * meta.uniform01());
  }
  // Sprinkle topology churn and crashes.
  const std::size_t events = 5 + meta.uniform(10);
  for (std::size_t i = 0; i < events; ++i) {
    const Slot at = meta.uniform(100);
    const auto u = static_cast<NodeId>(meta.uniform(n));
    auto v = static_cast<NodeId>(meta.uniform(n));
    if (u == v) {
      v = (v + 1) % n;
    }
    switch (meta.uniform(4)) {
      case 0:
        s.network().schedule({at, EventKind::kAddEdge, u, v});
        break;
      case 1:
        s.network().schedule({at, EventKind::kRemoveEdge, u, v});
        break;
      case 2:
        s.network().schedule({at, EventKind::kCrashNode, u, kNoNode});
        break;
      default:
        s.network().schedule({at, EventKind::kReviveNode, u, kNoNode});
        break;
    }
  }

  const int slots = 120;
  for (int i = 0; i < slots; ++i) {
    s.step();
  }

  // 1. Per-slot recomputation: for every recorded slot, re-derive who
  //    must have heard what from the transmitter set alone.
  const auto& records = s.trace().slots();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(slots));
  std::uint64_t expected_deliveries = 0;
  for (const SlotRecord& rec : records) {
    // Transmitter lists are sorted and duplicate-free.
    EXPECT_TRUE(std::ranges::is_sorted(rec.transmitters));
    EXPECT_TRUE(std::ranges::adjacent_find(rec.transmitters) ==
                rec.transmitters.end());
    // Every delivery's sender must be in the slot's transmitter set, and
    // the receiver must not be.
    for (const Delivery& d : rec.deliveries) {
      EXPECT_TRUE(std::ranges::binary_search(rec.transmitters, d.sender));
      EXPECT_FALSE(
          std::ranges::binary_search(rec.transmitters, d.receiver));
      ++expected_deliveries;
    }
    // A node cannot be both a collision victim and a delivery receiver.
    for (const NodeId v : rec.collision_receivers) {
      for (const Delivery& d : rec.deliveries) {
        EXPECT_NE(d.receiver, v);
      }
    }
  }
  EXPECT_EQ(s.trace().total_deliveries(), expected_deliveries);

  // 2. Protocol-side vs trace-side agreement: everything a node heard is
  //    in the trace and vice versa.
  std::uint64_t heard_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    heard_total += nodes[v]->heard.size();
    EXPECT_EQ(nodes[v]->heard.size(), s.trace().deliveries_to(v));
    // Nodes never hear anything in slots where they transmitted or idled.
    std::set<Slot> tx(nodes[v]->tx_slots.begin(), nodes[v]->tx_slots.end());
    for (const auto& [slot, sender] : nodes[v]->heard) {
      EXPECT_FALSE(tx.contains(slot));
      EXPECT_FALSE(nodes[v]->idle_slots.contains(slot));
      EXPECT_NE(sender, v);  // never hears itself
    }
  }
  EXPECT_EQ(heard_total, s.trace().total_deliveries());

  // 3. Transmission bookkeeping.
  std::uint64_t tx_total = 0;
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(nodes[v]->tx_slots.size(), s.trace().transmissions_of(v));
    tx_total += nodes[v]->tx_slots.size();
  }
  EXPECT_EQ(tx_total, s.trace().total_transmissions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace radiocast::sim
