// Tests for the collision-detector false-negative fault model (paper §1's
// reliability argument): CD-reliant protocols break when collisions go
// undetected; the CD-free randomized protocol does not care.
#include <gtest/gtest.h>

#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/proto/cd_star.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast {
namespace {

/// Transmits every slot.
class Beacon final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext& ctx) override {
    sim::Message m;
    m.origin = ctx.id();
    return sim::Action::transmit(m);
  }
};

class Listener final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext&) override {
    return sim::Action::receive();
  }
  void on_collision(sim::NodeContext&) override { ++collisions; }
  int collisions = 0;
};

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  return g;
}

TEST(CdFalseNegatives, ZeroRateDetectsEverything) {
  sim::Simulator s(triangle(),
                   sim::SimOptions{.seed = 1,
                                   .collision_detection = true,
                                   .cd_false_negative_rate = 0.0});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Beacon>(1);
  auto& listener = s.emplace_protocol<Listener>(2);
  for (int i = 0; i < 50; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.collisions, 50);
}

TEST(CdFalseNegatives, FullRateDetectsNothing) {
  sim::Simulator s(triangle(),
                   sim::SimOptions{.seed = 1,
                                   .collision_detection = true,
                                   .cd_false_negative_rate = 1.0});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Beacon>(1);
  auto& listener = s.emplace_protocol<Listener>(2);
  for (int i = 0; i < 50; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.collisions, 0);
  // The collisions still happened physically — the trace sees them.
  EXPECT_EQ(s.trace().total_collisions(), 50U);
}

TEST(CdFalseNegatives, PartialRateIsBernoulli) {
  sim::Simulator s(triangle(),
                   sim::SimOptions{.seed = 3,
                                   .collision_detection = true,
                                   .cd_false_negative_rate = 0.3});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Beacon>(1);
  auto& listener = s.emplace_protocol<Listener>(2);
  const int slots = 4000;
  for (int i = 0; i < slots; ++i) {
    s.step();
  }
  EXPECT_NEAR(static_cast<double>(listener.collisions) / slots, 0.7, 0.04);
}

TEST(CdFalseNegatives, BreaksTheFourSlotProtocol) {
  // With fnr = 1, |S| >= 2 instances never inform the sink: the slot-1
  // collision is the protocol's only trigger.
  const NodeId members[] = {1, 3};
  const auto net = graph::make_cn(4, members);
  sim::Simulator s(net.g,
                   sim::SimOptions{.seed = 5,
                                   .collision_detection = true,
                                   .cd_false_negative_rate = 1.0});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      sim::Message m;
      m.origin = 0;
      s.emplace_protocol<proto::CdStarBroadcast>(v, net.n(), m);
    } else {
      s.emplace_protocol<proto::CdStarBroadcast>(v, net.n(), std::nullopt);
    }
  }
  for (int i = 0; i < 6; ++i) {
    s.step();
  }
  EXPECT_FALSE(s.protocol_as<proto::CdStarBroadcast>(net.sink).informed());
}

TEST(CdFalseNegatives, BgiBroadcastIndifferent) {
  // The randomized protocol never calls the detector; success is
  // unaffected even at fnr = 1.
  const NodeId members[] = {1, 3};
  const auto net = graph::make_cn(4, members);
  const proto::BroadcastParams params{
      .network_size_bound = net.g.node_count(),
      .degree_bound = net.g.max_in_degree(),
      .epsilon = 0.05,
      .stop_probability = 0.5,
  };
  int ok = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId sources[] = {net.source};
    const auto out = harness::run_bgi_broadcast(
        net.g, sources, params, 700 + trial, Slot{1} << 20);
    ok += out.all_informed ? 1 : 0;
  }
  EXPECT_GE(ok, 18);
}

TEST(CdFalseNegatives, IgnoredWithoutCdMode) {
  // Without collision_detection, the rate knob has no observable effect.
  sim::Simulator s(triangle(),
                   sim::SimOptions{.seed = 1,
                                   .collision_detection = false,
                                   .cd_false_negative_rate = 0.5});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Beacon>(1);
  auto& listener = s.emplace_protocol<Listener>(2);
  for (int i = 0; i < 20; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.collisions, 0);
}

}  // namespace
}  // namespace radiocast
