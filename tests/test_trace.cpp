// Direct tests of the Trace observation API (most other suites exercise
// it only indirectly through the simulator).
#include "radiocast/sim/trace.hpp"

#include <gtest/gtest.h>

#include "radiocast/common/check.hpp"

namespace radiocast::sim {
namespace {

TEST(Trace, FreshTraceIsEmpty) {
  const Trace t(4, false);
  EXPECT_EQ(t.total_transmissions(), 0U);
  EXPECT_EQ(t.total_deliveries(), 0U);
  EXPECT_EQ(t.total_collisions(), 0U);
  EXPECT_EQ(t.first_delivery(2), kNever);
  EXPECT_FALSE(t.records_slots());
  EXPECT_TRUE(t.slots().empty());
}

TEST(Trace, FirstDeliveryKeepsTheEarliest) {
  Trace t(3, false);
  t.begin_slot(5);
  t.record_delivery(5, 1, 0);
  t.begin_slot(9);
  t.record_delivery(9, 1, 2);
  EXPECT_EQ(t.first_delivery(1), 5U);
  EXPECT_EQ(t.deliveries_to(1), 2U);
}

TEST(Trace, AllDeliveredAndLastFirstDelivery) {
  Trace t(4, false);
  t.begin_slot(0);
  t.record_delivery(0, 1, 0);
  t.begin_slot(3);
  t.record_delivery(3, 2, 1);
  const std::vector<NodeId> both{1, 2};
  const std::vector<NodeId> more{1, 2, 3};
  EXPECT_TRUE(t.all_delivered(both));
  EXPECT_FALSE(t.all_delivered(more));
  EXPECT_EQ(t.last_first_delivery(both), 3U);
  EXPECT_EQ(t.last_first_delivery(more), kNever);
  EXPECT_EQ(t.last_first_delivery({}), 0U);  // vacuous
}

TEST(Trace, TransmissionCounters) {
  Trace t(2, false);
  t.begin_slot(0);
  t.record_transmission(0);
  t.record_transmission(0);
  t.record_transmission(1);
  EXPECT_EQ(t.transmissions_of(0), 2U);
  EXPECT_EQ(t.transmissions_of(1), 1U);
  EXPECT_EQ(t.total_transmissions(), 3U);
}

TEST(Trace, CollisionCounter) {
  Trace t(2, false);
  t.begin_slot(0);
  t.record_collision(1);
  t.record_collision(1);
  EXPECT_EQ(t.total_collisions(), 2U);
}

TEST(Trace, SlotRecordsCaptureDetail) {
  Trace t(3, true);
  t.begin_slot(0);
  t.record_transmission(2);
  t.record_delivery(0, 1, 2);
  t.begin_slot(1);
  t.record_collision(0);
  ASSERT_TRUE(t.records_slots());
  ASSERT_EQ(t.slots().size(), 2U);
  EXPECT_EQ(t.slots()[0].slot, 0U);
  EXPECT_EQ(t.slots()[0].transmitters, (std::vector<NodeId>{2}));
  ASSERT_EQ(t.slots()[0].deliveries.size(), 1U);
  EXPECT_EQ(t.slots()[0].deliveries[0], (Delivery{1, 2}));
  EXPECT_EQ(t.slots()[1].collision_receivers, (std::vector<NodeId>{0}));
}

TEST(Trace, RangeChecks) {
  const Trace t(2, false);
  EXPECT_THROW((void)t.first_delivery(2), ContractViolation);
  EXPECT_THROW((void)t.transmissions_of(9), ContractViolation);
  EXPECT_THROW((void)t.deliveries_to(2), ContractViolation);
}

}  // namespace
}  // namespace radiocast::sim
