// Differential suite for implicit adjacency (graph/implicit.hpp): every
// implicit family must reproduce its materialized generator twin arc for
// arc, and the range-query contract (ascending, duplicate-free, partition-
// composable) must hold — the sharded slot engine's correctness rests on
// concatenated per-shard range queries equaling the full neighbor list.
#include "radiocast/graph/implicit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "radiocast/graph/csr.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/rng/rng.hpp"

namespace radiocast::graph {
namespace {

/// The implicit topology's materialization must equal `expected` exactly
/// (operator== compares full adjacency), and degrees/arc counts must agree.
void expect_matches(const ImplicitTopology& topo, const Graph& expected) {
  ASSERT_EQ(topo.node_count(), expected.node_count());
  EXPECT_TRUE(topo.materialize() == expected);
  EXPECT_EQ(topo.arc_count(), expected.arc_count());
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < expected.node_count(); ++u) {
    EXPECT_EQ(topo.out_degree(u), expected.out_degree(u)) << "node " << u;
    max_deg = std::max(max_deg, expected.out_degree(u));
  }
  EXPECT_EQ(topo.max_out_degree(), max_deg);
}

/// Concatenating range queries over any partition of [0, n) must equal the
/// full neighbor list: the exact composition the receiver shards perform.
void expect_partition_composes(const ImplicitTopology& topo) {
  const auto n = static_cast<NodeId>(topo.node_count());
  // Uneven boundaries on purpose (including empty intervals).
  const std::vector<NodeId> cuts = {0, n / 7, n / 7, n / 3, n / 2,
                                    static_cast<NodeId>(n - n / 5), n};
  std::vector<NodeId> full;
  std::vector<NodeId> pieced;
  std::vector<NodeId> ordered_piece;
  std::vector<NodeId> unordered_piece;
  for (NodeId u = 0; u < n; ++u) {
    full.clear();
    topo.append_out_neighbors(u, full);
    pieced.clear();
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
      topo.append_out_neighbors_in(u, cuts[c], cuts[c + 1], pieced);
      // The unordered variant must return the same *set* per interval
      // (sorting it reproduces the ordered answer exactly — which also
      // proves it duplicate-free).
      ordered_piece.clear();
      unordered_piece.clear();
      topo.append_out_neighbors_in(u, cuts[c], cuts[c + 1], ordered_piece);
      topo.append_out_neighbors_unordered_in(u, cuts[c], cuts[c + 1],
                                             unordered_piece);
      std::sort(unordered_piece.begin(), unordered_piece.end());
      EXPECT_EQ(unordered_piece, ordered_piece)
          << "node " << u << " interval [" << cuts[c] << ", " << cuts[c + 1]
          << ")";
    }
    EXPECT_EQ(pieced, full) << "node " << u;
  }
  // degree_hint is a batch-sizing estimate: the only contract is >= 1
  // (and not absurdly beyond n).
  EXPECT_GE(topo.degree_hint(), 1U);
  EXPECT_LE(topo.degree_hint(), std::max<std::size_t>(topo.node_count(), 8));
}

TEST(ImplicitGrid, MatchesMaterializedGenerator) {
  for (const auto& [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {1, 8},
        {8, 1},
        {2, 2},
        {5, 7},
        {16, 16}}) {
    const GridTopology topo(rows, cols);
    expect_matches(topo, grid(rows, cols));
    expect_partition_composes(topo);
  }
}

TEST(ImplicitGrid, SameOverflowGuardAsGenerator) {
  EXPECT_THROW(GridTopology(std::size_t{1} << 17, std::size_t{1} << 17),
               ContractViolation);
}

TEST(ImplicitHypercube, MatchesMaterializedGenerator) {
  for (unsigned dim = 0; dim <= 7; ++dim) {
    const HypercubeTopology topo(dim);
    expect_matches(topo, hypercube(dim));
    expect_partition_composes(topo);
  }
}

TEST(ImplicitHypercube, SupportsLargeDimWithoutMaterializing) {
  // dim = 30 would be a 2^30-node graph; adjacency queries must still be
  // O(dim) with no allocation proportional to n.
  const HypercubeTopology topo(30);
  EXPECT_EQ(topo.node_count(), std::size_t{1} << 30);
  EXPECT_EQ(topo.max_out_degree(), 30U);
  std::vector<NodeId> nbrs;
  topo.append_out_neighbors(5, nbrs);
  ASSERT_EQ(nbrs.size(), 30U);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  for (const NodeId v : nbrs) {
    EXPECT_EQ(__builtin_popcount(v ^ 5U), 1);
  }
  EXPECT_THROW(HypercubeTopology(32), ContractViolation);
}

TEST(ImplicitUnitDisk, BitIdenticalToRandomGeometric) {
  for (const double radius : {0.05, 0.15, 0.4, 2.0}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{37}, std::size_t{200}}) {
      // Same seed => same point draws => the adjacency must be equal down
      // to the last floating-point distance comparison and chain link.
      rng::Rng gen_rng(99, n);
      const Graph expected = random_geometric(n, radius, gen_rng);
      rng::Rng topo_rng(99, n);
      const UnitDiskTopology topo(n, radius, topo_rng);
      expect_matches(topo, expected);
      expect_partition_composes(topo);
    }
  }
}

TEST(ImplicitUnitDisk, TinyRadiusUsesClampedCellGrid) {
  // Pre-clamp, radius 1e-4 at n = 100 would allocate 10^8 buckets; with
  // geometric_cell_count the structure is O(n) and adjacency is exactly
  // the connectivity chain (no pair is within radius w.h.p.).
  rng::Rng gen_rng(7);
  const Graph expected = random_geometric(100, 1e-4, gen_rng);
  rng::Rng topo_rng(7);
  const UnitDiskTopology topo(100, 1e-4, topo_rng);
  expect_matches(topo, expected);
}

TEST(ImplicitCsrBacked, MatchesArbitraryMaterializedGraph) {
  rng::Rng rng(123);
  const Graph g = connected_gnp(120, 0.07, rng);
  const CsrTopology csr(g);
  const CsrBackedTopology topo(csr);
  expect_matches(topo, g);
  expect_partition_composes(topo);
}

TEST(ImplicitCsrBacked, AsymmetricDigraphKeepsDirectedArcs) {
  rng::Rng rng(5);
  const Graph g = random_strongly_reachable_digraph(60, 40, rng);
  const CsrTopology csr(g);
  const CsrBackedTopology topo(csr);
  expect_matches(topo, g);
}

}  // namespace
}  // namespace radiocast::graph
