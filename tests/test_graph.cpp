#include "radiocast/graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "radiocast/common/check.hpp"

namespace radiocast::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(5);
  EXPECT_EQ(g.node_count(), 5U);
  EXPECT_EQ(g.arc_count(), 0U);
  EXPECT_EQ(g.max_in_degree(), 0U);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Graph, AddArcIsDirected) {
  Graph g(3);
  EXPECT_TRUE(g.add_arc(0, 1));
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_FALSE(g.is_symmetric());
  EXPECT_EQ(g.arc_count(), 1U);
}

TEST(Graph, AddArcDuplicateReturnsFalse) {
  Graph g(3);
  EXPECT_TRUE(g.add_arc(0, 1));
  EXPECT_FALSE(g.add_arc(0, 1));
  EXPECT_EQ(g.arc_count(), 1U);
}

TEST(Graph, AddEdgeAddsBothArcs) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 2));
  EXPECT_TRUE(g.has_arc(0, 2));
  EXPECT_TRUE(g.has_arc(2, 0));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.arc_count(), 2U);
}

TEST(Graph, RemoveArc) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_arc(0, 1));
  EXPECT_FALSE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 0));
  EXPECT_FALSE(g.remove_arc(0, 1));
  EXPECT_EQ(g.arc_count(), 1U);
}

TEST(Graph, RemoveEdge) {
  Graph g(4);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.remove_edge(1, 3));
  EXPECT_EQ(g.arc_count(), 0U);
  EXPECT_FALSE(g.remove_edge(1, 3));
}

TEST(Graph, NeighborsAreSorted) {
  Graph g(6);
  g.add_arc(0, 4);
  g.add_arc(0, 1);
  g.add_arc(0, 3);
  const auto nbrs = g.out_neighbors(0);
  const std::vector<NodeId> expected{1, 3, 4};
  EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), expected.begin(),
                         expected.end()));
}

TEST(Graph, InNeighborsTrackReverseDirection) {
  Graph g(4);
  g.add_arc(1, 0);
  g.add_arc(2, 0);
  g.add_arc(0, 3);
  const auto in = g.in_neighbors(0);
  ASSERT_EQ(in.size(), 2U);
  EXPECT_EQ(in[0], 1U);
  EXPECT_EQ(in[1], 2U);
  EXPECT_EQ(g.in_degree(3), 1U);
  EXPECT_EQ(g.out_degree(0), 1U);
}

TEST(Graph, MaxInDegree) {
  Graph g(5);
  g.add_arc(1, 0);
  g.add_arc(2, 0);
  g.add_arc(3, 0);
  g.add_arc(0, 4);
  EXPECT_EQ(g.max_in_degree(), 3U);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(3);
  EXPECT_THROW(g.add_arc(1, 1), ContractViolation);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_arc(0, 3), ContractViolation);
  EXPECT_THROW((void)g.has_arc(5, 0), ContractViolation);
  EXPECT_THROW((void)g.out_neighbors(3), ContractViolation);
}

TEST(Graph, EqualityComparesStructure) {
  Graph a(3);
  Graph b(3);
  a.add_edge(0, 1);
  EXPECT_NE(a, b);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
}

TEST(Graph, RemoveThenReAdd) {
  Graph g(3);
  g.add_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
}

}  // namespace
}  // namespace radiocast::graph
