// The observability layer: JSON round-trips, the metrics registry, the
// run-record document, and the contract between sim::Trace and the
// "sim.*" counters. Also pins the run-record schema to the checked-in
// scripts/bench_schema.json via a mini JSON-Schema validator.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "radiocast/common/check.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/obs/build_info.hpp"
#include "radiocast/obs/json.hpp"
#include "radiocast/obs/metrics.hpp"
#include "radiocast/obs/run_record.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::obs {
namespace {

// --- JsonValue -----------------------------------------------------------

TEST(Json, ScalarsRenderExactly) {
  EXPECT_EQ(JsonValue(true).dump(), "true\n");
  EXPECT_EQ(JsonValue(nullptr).dump(), "null\n");
  EXPECT_EQ(JsonValue(std::int64_t{-42}).dump(), "-42\n");
  // 2^64 - 1 must not round-trip through a double.
  EXPECT_EQ(JsonValue(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615\n");
  EXPECT_EQ(JsonValue("he\"llo\\").dump(), "\"he\\\"llo\\\\\"\n");
}

TEST(Json, DoublesRoundTrip) {
  for (const double d : {0.1, 1.0 / 3.0, 1e-300, 12345.678901234567, 2.0}) {
    const JsonValue parsed = JsonValue::parse(JsonValue(d).dump());
    EXPECT_DOUBLE_EQ(parsed.as_double(), d);
  }
  // Integral doubles keep a decimal point so the type survives the trip.
  EXPECT_EQ(JsonValue(2.0).dump(), "2.0\n");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", JsonValue(1));
  obj.set("alpha", JsonValue(2));
  const std::string text = obj.dump();
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  // set() on an existing key replaces in place.
  obj.set("zeta", JsonValue(3));
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.find("zeta")->as_int(), 3);
}

TEST(Json, ParseRoundTripsNestedDocument) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue("radiocast"));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(1));
  arr.push_back(JsonValue(nullptr));
  arr.push_back(JsonValue("x\ny"));
  doc.set("items", std::move(arr));
  JsonValue inner = JsonValue::object();
  inner.set("pi", JsonValue(3.25));
  doc.set("inner", std::move(inner));

  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_EQ(back.dump(), doc.dump());
  EXPECT_EQ(back.find("items")->at(2).as_string(), "x\ny");
  EXPECT_DOUBLE_EQ(back.find("inner")->find("pi")->as_double(), 3.25);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(JsonValue::parse("{"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("[1,]"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("true false"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ContractViolation);
  EXPECT_THROW(JsonValue::parse(""), ContractViolation);
}

TEST(Json, ParseUnicodeEscapes) {
  const JsonValue v = JsonValue::parse("\"a\\u00e9b\"");
  EXPECT_EQ(v.as_string(), "a\xc3\xa9"
                           "b");
}

// --- MetricsRegistry -----------------------------------------------------

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.counter("c").add();
  reg.counter("c").add(4);
  EXPECT_EQ(reg.counter("c").value(), 5u);
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("h").record(static_cast<double>(i));
  }
  const auto snap = reg.histogram("h").snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean, 50.5);
  EXPECT_DOUBLE_EQ(snap.p50, 50.0);
  EXPECT_DOUBLE_EQ(snap.p99, 99.0);
}

TEST(Metrics, ReferencesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("stable");
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  c.add(7);
  EXPECT_EQ(reg.counter("stable").value(), 7u);
}

TEST(Metrics, ResetZeroesButKeepsNames) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.gauge("b").set(1.0);
  reg.histogram("c").record(2.0);
  reg.reset();
  EXPECT_EQ(reg.counter("a").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("b").value(), 0.0);
  EXPECT_EQ(reg.histogram("c").snapshot().count, 0u);
  const JsonValue j = reg.to_json();
  EXPECT_NE(j.find("counters")->find("a"), nullptr);
}

TEST(Metrics, ToJsonShape) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("speed").set(10.0);
  reg.histogram("lat").record(1.0);
  const JsonValue j = reg.to_json();
  ASSERT_TRUE(j.is_object());
  const JsonValue* counters = j.find("counters");
  ASSERT_NE(counters, nullptr);
  // Sections are sorted by name for byte-stable output.
  EXPECT_EQ(counters->items()[0].first, "a.count");
  EXPECT_EQ(counters->items()[1].first, "z.count");
  EXPECT_EQ(j.find("gauges")->find("speed")->as_double(), 10.0);
  const JsonValue* lat = j.find("histograms")->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_uint(), 1u);
}

TEST(Metrics, GlobalRegistryDisabledByDefault) {
  EXPECT_FALSE(metrics().enabled());
}

// --- Trace -> metrics ----------------------------------------------------

/// Transmits every slot.
class Beacon final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext& ctx) override {
    sim::Message m;
    m.origin = ctx.id();
    return sim::Action::transmit(m);
  }
};

class Listener final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext&) override {
    return sim::Action::receive();
  }
};

// The registry's "sim.*" counters must equal the Trace's own totals after
// the simulator dies — the totals are published exactly once, by the
// Trace destructor.
TEST(Metrics, TraceTotalsReachRegistryOnce) {
  MetricsRegistry& reg = metrics();
  reg.set_enabled(true);
  reg.reset();
  std::uint64_t slots = 0, tx = 0, rx = 0, coll = 0;
  {
    // path(4): beacons at both ends, listeners at 1 and 2. Node 1 hears
    // only node 0 (delivery); node 2 hears only node 3 (delivery).
    sim::Simulator s(graph::path(4), sim::SimOptions{});
    s.emplace_protocol<Beacon>(0);
    s.emplace_protocol<Listener>(1);
    s.emplace_protocol<Listener>(2);
    s.emplace_protocol<Beacon>(3);
    for (int i = 0; i < 5; ++i) {
      s.step();
    }
    slots = s.trace().total_slots();
    tx = s.trace().total_transmissions();
    rx = s.trace().total_deliveries();
    coll = s.trace().total_collisions();
    EXPECT_EQ(slots, 5u);
    EXPECT_EQ(tx, 10u);
    // Totals are published at destruction, not during the run.
    EXPECT_EQ(reg.counter("sim.slots").value(), 0u);
  }
  EXPECT_EQ(reg.counter("sim.slots").value(), slots);
  EXPECT_EQ(reg.counter("sim.transmissions").value(), tx);
  EXPECT_EQ(reg.counter("sim.deliveries").value(), rx);
  EXPECT_EQ(reg.counter("sim.collisions").value(), coll);
  reg.reset();
  reg.set_enabled(false);
}

// Several simulators accumulate; a disabled registry stays untouched.
TEST(Metrics, TraceTotalsAccumulateAcrossRuns) {
  MetricsRegistry& reg = metrics();
  reg.set_enabled(true);
  reg.reset();
  for (int run = 0; run < 3; ++run) {
    sim::Simulator s(graph::path(2), sim::SimOptions{});
    s.emplace_protocol<Beacon>(0);
    s.emplace_protocol<Listener>(1);
    s.step();
    s.step();
  }
  EXPECT_EQ(reg.counter("sim.slots").value(), 6u);
  EXPECT_EQ(reg.counter("sim.transmissions").value(), 6u);
  reg.reset();
  reg.set_enabled(false);
  {
    sim::Simulator s(graph::path(2), sim::SimOptions{});
    s.emplace_protocol<Beacon>(0);
    s.emplace_protocol<Listener>(1);
    s.step();
  }
  EXPECT_EQ(reg.counter("sim.slots").value(), 0u);
}

// --- RunRecord + schema --------------------------------------------------

/// Just enough JSON-Schema (type / required / properties /
/// additionalProperties) to pin run records to scripts/bench_schema.json —
/// the same subset scripts/check_schema.py implements for CI.
void validate(const JsonValue& value, const JsonValue& schema,
              const std::string& path, std::vector<std::string>& errors) {
  if (const JsonValue* type = schema.find("type")) {
    const std::string& t = type->as_string();
    const bool ok =
        (t == "object" && value.is_object()) ||
        (t == "array" && value.is_array()) ||
        (t == "string" && value.is_string()) ||
        (t == "boolean" && value.is_bool()) ||
        (t == "integer" && value.is_integer()) ||
        (t == "number" && value.is_number()) || (t == "null" && value.is_null());
    if (!ok) {
      errors.push_back(path + ": expected " + t);
      return;
    }
  }
  if (!value.is_object()) {
    return;
  }
  if (const JsonValue* required = schema.find("required")) {
    for (std::size_t i = 0; i < required->size(); ++i) {
      if (value.find(required->at(i).as_string()) == nullptr) {
        errors.push_back(path + ": missing " + required->at(i).as_string());
      }
    }
  }
  const JsonValue* properties = schema.find("properties");
  const JsonValue* additional = schema.find("additionalProperties");
  for (const auto& [key, child] : value.items()) {
    const JsonValue* child_schema =
        properties != nullptr ? properties->find(key) : nullptr;
    if (child_schema == nullptr && additional != nullptr &&
        additional->is_object()) {
      child_schema = additional;
    }
    if (child_schema != nullptr) {
      validate(child, *child_schema, path + "." + key, errors);
    }
  }
}

JsonValue load_schema() {
  const std::string path =
      std::string(RADIOCAST_SOURCE_DIR) + "/scripts/bench_schema.json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return JsonValue::parse(ss.str());
}

TEST(RunRecord, ForToolFillsProvenance) {
  const RunRecord r = RunRecord::for_tool("test_obs");
  EXPECT_EQ(r.tool, "test_obs");
  EXPECT_FALSE(r.git_describe.empty());
  EXPECT_FALSE(r.compiler.empty());
  EXPECT_GT(r.timestamp_unix, 0);
}

// Property: however the record and registry are populated, the emitted
// document validates against the checked-in schema.
TEST(RunRecord, DocumentsValidateAgainstCheckedInSchema) {
  const JsonValue schema = load_schema();
  for (int variant = 0; variant < 4; ++variant) {
    MetricsRegistry reg;
    RunRecord r = RunRecord::for_tool("variant_" + std::to_string(variant));
    r.seed = 11u * static_cast<std::uint64_t>(variant);
    r.trials = 100u + static_cast<std::uint64_t>(variant);
    r.scale = 0.25 * (variant + 1);
    r.threads = static_cast<std::uint64_t>(variant);
    r.wall_sec = 0.5 * variant;
    if (variant >= 1) {
      reg.counter("sim.slots").add(1000u * static_cast<unsigned>(variant));
      reg.counter("sim.transmissions").add(7);
      r.capture_sim_totals(reg);
    }
    if (variant >= 2) {
      reg.gauge("engine.slots_per_sec.gnp.n256").set(12345.6);
      reg.histogram("harness.trial_wall_sec").record(0.01);
      reg.histogram("harness.trial_wall_sec").record(0.02);
    }
    if (variant >= 3) {
      r.extra.set("command", JsonValue("broadcast"));
      r.extra.set("note", JsonValue(nullptr));
    }
    const JsonValue doc = r.to_json(reg);
    std::vector<std::string> errors;
    validate(doc, schema, "$", errors);
    EXPECT_TRUE(errors.empty()) << "variant " << variant << ": " << [&] {
      std::string all;
      for (const auto& e : errors) {
        all += e + "; ";
      }
      return all;
    }();
    // And the document survives a parse round-trip byte-for-byte.
    EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
  }
}

TEST(RunRecord, CaptureSimTotalsReadsRegistry) {
  MetricsRegistry reg;
  reg.counter("sim.slots").add(5);
  reg.counter("sim.transmissions").add(10);
  reg.counter("sim.deliveries").add(8);
  reg.counter("sim.collisions").add(2);
  RunRecord r;
  r.capture_sim_totals(reg);
  EXPECT_EQ(r.slots, 5u);
  EXPECT_EQ(r.transmissions, 10u);
  EXPECT_EQ(r.deliveries, 8u);
  EXPECT_EQ(r.collisions, 2u);
  const JsonValue doc = r.to_json(reg);
  EXPECT_EQ(doc.find("sim")->find("slots")->as_uint(), 5u);
}

TEST(RunRecord, WriteFailureReturnsFalse) {
  MetricsRegistry reg;
  const RunRecord r = RunRecord::for_tool("t");
  EXPECT_FALSE(r.write("/tmp/radiocast_no_such_dir_9876/x.json", reg));
}

TEST(RunRecord, WriteRoundTrips) {
  MetricsRegistry reg;
  reg.counter("sim.slots").add(3);
  RunRecord r = RunRecord::for_tool("t");
  r.capture_sim_totals(reg);
  const std::string path = "/tmp/radiocast_test_record.json";
  ASSERT_TRUE(r.write(path, reg));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = JsonValue::parse(ss.str());
  EXPECT_EQ(doc.find("tool")->as_string(), "t");
  EXPECT_EQ(doc.find("sim")->find("slots")->as_uint(), 3u);
  EXPECT_EQ(doc.find("schema_version")->as_int(), RunRecord::kSchemaVersion);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace radiocast::obs
