#include "radiocast/proto/cd_star.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/families.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::proto {
namespace {

sim::Message payload() {
  sim::Message m;
  m.origin = 0;
  m.tag = 0xCAFE;
  return m;
}

struct RunResult {
  bool sink_informed = false;
  Slot sink_informed_at = kNever;
  bool all_informed = false;
};

RunResult run_cd(const graph::CnNetwork& net) {
  sim::Simulator s(net.g,
                   sim::SimOptions{.seed = 1, .collision_detection = true});
  const std::size_t n = net.n();
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      s.emplace_protocol<CdStarBroadcast>(v, n, payload());
    } else {
      s.emplace_protocol<CdStarBroadcast>(v, n, std::nullopt);
    }
  }
  for (int i = 0; i < 6; ++i) {
    s.step();
  }
  RunResult r;
  const auto& sink = s.protocol_as<CdStarBroadcast>(net.sink);
  r.sink_informed = sink.informed();
  r.sink_informed_at = sink.informed_at();
  r.all_informed = true;
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (!s.protocol_as<CdStarBroadcast>(v).informed()) {
      r.all_informed = false;
    }
  }
  return r;
}

TEST(CdStar, SingletonSFinishesInTwoSlots) {
  const NodeId s_members[] = {3};
  const auto net = graph::make_cn(5, s_members);
  const RunResult r = run_cd(net);
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.sink_informed_at, 1U);  // slots 0 and 1 = "2 time-slots"
}

TEST(CdStar, MultiMemberSFinishesInFourSlots) {
  const NodeId s_members[] = {1, 2, 4};
  const auto net = graph::make_cn(5, s_members);
  const RunResult r = run_cd(net);
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.sink_informed_at, 3U);  // slots 0..3 = "4 time-slots"
}

TEST(CdStar, FullSWorks) {
  const NodeId s_members[] = {1, 2, 3, 4, 5};
  const auto net = graph::make_cn(5, s_members);
  const RunResult r = run_cd(net);
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.sink_informed_at, 3U);
}

TEST(CdStar, AllSubsetsOfSmallUniverse) {
  // Exhaustive: every non-empty S ⊆ {1..6} must finish within 4 slots —
  // the §4 claim that collision detection collapses the Ω(n) bound.
  const std::size_t n = 6;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const auto s_members = graph::subset_from_mask(n, mask);
    const auto net = graph::make_cn(n, s_members);
    const RunResult r = run_cd(net);
    EXPECT_TRUE(r.all_informed) << "mask=" << mask;
    EXPECT_LE(r.sink_informed_at, 3U) << "mask=" << mask;
  }
}

TEST(CdStar, RequiresCollisionDetectionMode) {
  const NodeId s_members[] = {1, 2};
  const auto net = graph::make_cn(4, s_members);
  sim::Simulator s(net.g, sim::SimOptions{.seed = 1,
                                          .collision_detection = false});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      s.emplace_protocol<CdStarBroadcast>(v, net.n(), payload());
    } else {
      s.emplace_protocol<CdStarBroadcast>(v, net.n(), std::nullopt);
    }
  }
  EXPECT_THROW(s.step(), ContractViolation);
}

TEST(CdStar, SourceMustCarryPayload) {
  const NodeId s_members[] = {1};
  const auto net = graph::make_cn(3, s_members);
  sim::Simulator s(net.g,
                   sim::SimOptions{.seed = 1, .collision_detection = true});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    s.emplace_protocol<CdStarBroadcast>(v, net.n(), std::nullopt);
  }
  EXPECT_THROW(s.step(), ContractViolation);
}

TEST(CdStar, TerminatesAfterFourSlots) {
  const NodeId s_members[] = {1, 3};
  const auto net = graph::make_cn(4, s_members);
  sim::Simulator s(net.g,
                   sim::SimOptions{.seed = 1, .collision_detection = true});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      s.emplace_protocol<CdStarBroadcast>(v, net.n(), payload());
    } else {
      s.emplace_protocol<CdStarBroadcast>(v, net.n(), std::nullopt);
    }
  }
  const Slot end = s.run_to_quiescence(100);
  EXPECT_LE(end, 6U);
}

}  // namespace
}  // namespace radiocast::proto
