#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "radiocast/common/check.hpp"
#include "radiocast/harness/csv.hpp"
#include "radiocast/harness/options.hpp"
#include "radiocast/harness/sweep.hpp"
#include "radiocast/harness/table.hpp"

namespace radiocast::harness {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  // Every line has the same length.
  std::stringstream ss(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(ss, line)) {
    if (len == 0) {
      len = line.size();
    }
    EXPECT_EQ(line.size(), len);
  }
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::inum(42), "42");
  EXPECT_EQ(Table::yes_no(true), "yes");
  EXPECT_EQ(Table::yes_no(false), "no");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0U);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1U);
}

TEST(Sweep, GeometricSteps) {
  EXPECT_EQ(geometric_steps(1, 16, 2.0),
            (std::vector<std::size_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(geometric_steps(10, 10), (std::vector<std::size_t>{10}));
  // hi not on the grid: still included.
  EXPECT_EQ(geometric_steps(1, 10, 2.0),
            (std::vector<std::size_t>{1, 2, 4, 8, 10}));
}

TEST(Sweep, GeometricValidation) {
  EXPECT_THROW(geometric_steps(0, 10), ContractViolation);
  EXPECT_THROW(geometric_steps(5, 4), ContractViolation);
  EXPECT_THROW(geometric_steps(1, 10, 1.0), ContractViolation);
}

TEST(Sweep, LinearSteps) {
  EXPECT_EQ(linear_steps(0, 10, 5), (std::vector<std::size_t>{0, 5, 10}));
  EXPECT_EQ(linear_steps(0, 9, 5), (std::vector<std::size_t>{0, 5, 9}));
  EXPECT_EQ(linear_steps(3, 3, 1), (std::vector<std::size_t>{3}));
}

TEST(Options, DefaultsWithoutEnv) {
  unsetenv("REPRO_TRIALS");
  unsetenv("REPRO_SCALE");
  unsetenv("REPRO_SEED");
  unsetenv("REPRO_CSV_DIR");
  const RunOptions opt = run_options();
  EXPECT_EQ(opt.trials, 200U);
  EXPECT_DOUBLE_EQ(opt.scale, 1.0);
  EXPECT_EQ(opt.seed, 20260704U);
  EXPECT_TRUE(opt.csv_dir.empty());
}

TEST(Options, ReadsEnvironment) {
  setenv("REPRO_TRIALS", "50", 1);
  setenv("REPRO_SCALE", "0.5", 1);
  setenv("REPRO_SEED", "99", 1);
  setenv("REPRO_CSV_DIR", "/tmp", 1);
  const RunOptions opt = run_options();
  EXPECT_EQ(opt.trials, 50U);
  EXPECT_DOUBLE_EQ(opt.scale, 0.5);
  EXPECT_EQ(opt.seed, 99U);
  EXPECT_EQ(opt.csv_dir, "/tmp");
  unsetenv("REPRO_TRIALS");
  unsetenv("REPRO_SCALE");
  unsetenv("REPRO_SEED");
  unsetenv("REPRO_CSV_DIR");
}

TEST(Options, IgnoresGarbageEnv) {
  setenv("REPRO_TRIALS", "not-a-number", 1);
  setenv("REPRO_SCALE", "-2", 1);
  const RunOptions opt = run_options();
  EXPECT_EQ(opt.trials, 200U);
  EXPECT_DOUBLE_EQ(opt.scale, 1.0);
  unsetenv("REPRO_TRIALS");
  unsetenv("REPRO_SCALE");
}

TEST(Options, ScaledClampsToOne) {
  RunOptions opt;
  opt.scale = 0.001;
  EXPECT_EQ(scaled(100, opt), 1U);
  opt.scale = 2.0;
  EXPECT_EQ(scaled(100, opt), 200U);
}

TEST(Csv, DisabledWhenDirEmpty) {
  CsvWriter w("", "t");
  w.header({"a"});
  w.row({"1"});
  w.flush();  // no crash, no file
  SUCCEED();
}

TEST(Csv, WritesEscapedFile) {
  CsvWriter w("/tmp", "radiocast_csv_test");
  w.header({"name", "note"});
  w.row({"x,y", "say \"hi\""});
  w.flush();
  std::ifstream in("/tmp/radiocast_csv_test.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,note");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"say \"\"hi\"\"\"");
  std::remove("/tmp/radiocast_csv_test.csv");
}

TEST(Csv, FlushIsIdempotent) {
  CsvWriter w("/tmp", "radiocast_csv_test2");
  w.row({"1"});
  EXPECT_TRUE(w.flush());
  EXPECT_TRUE(w.flush());
  std::ifstream in("/tmp/radiocast_csv_test2.csv");
  std::string all;
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 1);
  std::remove("/tmp/radiocast_csv_test2.csv");
}

// Regression: flush() used to be a one-shot latch — rows appended after
// the first flush were silently dropped. Now every flush writes whatever
// is buffered (first truncates, later ones append).
TEST(Csv, RowsAfterFlushAreNotDropped) {
  CsvWriter w("/tmp", "radiocast_csv_test3");
  w.header({"n"});
  w.row({"1"});
  EXPECT_TRUE(w.flush());
  w.row({"2"});
  EXPECT_TRUE(w.flush());
  w.row({"3"});  // left to the destructor's flush
  {
    // Destructor must flush the tail row too.
    CsvWriter tail("/tmp", "radiocast_csv_test3_tail");
    tail.row({"x"});
  }
  EXPECT_TRUE(w.flush());
  std::ifstream in("/tmp/radiocast_csv_test3.csv");
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"n", "1", "2", "3"}));
  std::ifstream tail_in("/tmp/radiocast_csv_test3_tail.csv");
  ASSERT_TRUE(tail_in.good());
  std::getline(tail_in, line);
  EXPECT_EQ(line, "x");
  std::remove("/tmp/radiocast_csv_test3.csv");
  std::remove("/tmp/radiocast_csv_test3_tail.csv");
}

// Open/write failures surface through the return value (and ok()), and a
// failed flush keeps the rows so a retry can still deliver them.
TEST(Csv, FlushReportsFailureAndKeepsRows) {
  CsvWriter w("/tmp/radiocast_no_such_dir_12345", "t");
  w.row({"1"});
  EXPECT_FALSE(w.flush());
  EXPECT_FALSE(w.ok());
  // The writer still holds the row; pointing at a bad dir forever means
  // the destructor warns instead of crashing (covered implicitly here).
}

}  // namespace
}  // namespace radiocast::harness
