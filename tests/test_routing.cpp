#include "radiocast/proto/routing.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::proto {
namespace {

RoutingParams params_for(const graph::Graph& g, double eps = 0.05) {
  const auto d = graph::diameter(g);
  return RoutingParams{
      BroadcastParams{
          .network_size_bound = g.node_count(),
          .degree_bound = g.max_in_degree(),
          .epsilon = eps,
          .stop_probability = 0.5,
      },
      std::max<std::size_t>(d, 1)};
}

struct RouteResult {
  bool delivered = false;
  Slot delivered_at = kNever;
  std::uint64_t stage2_transmissions = 0;
  std::size_t nodes_with_packet = 0;
  std::vector<std::uint64_t> payload;
};

RouteResult route(const graph::Graph& g, NodeId source, NodeId dest,
                  std::uint64_t seed,
                  std::vector<std::uint64_t> payload = {0xCAFE}) {
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{seed});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    using Role = PointToPointRouting::Role;
    const Role role = v == source  ? Role::kSource
                      : v == dest ? Role::kDestination
                                  : Role::kRelay;
    s.emplace_protocol<PointToPointRouting>(
        v, params, role, v == source ? payload : std::vector<std::uint64_t>{});
  }
  const std::uint64_t tx_before_stage2 = [&] {
    s.run_until([&](const sim::Simulator& sim) {
      return sim.now() >= params.bfs_horizon();
    }, params.horizon());
    return s.trace().total_transmissions();
  }();
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());

  RouteResult r;
  const auto& d = s.protocol_as<PointToPointRouting>(dest);
  r.delivered = d.delivered();
  r.delivered_at = d.packet_at();
  r.payload = d.payload();
  r.stage2_transmissions = s.trace().total_transmissions() - tx_before_stage2;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    r.nodes_with_packet +=
        s.protocol_as<PointToPointRouting>(v).has_packet() ? 1 : 0;
  }
  return r;
}

TEST(Routing, DeliversOnAPath) {
  const graph::Graph g = graph::path(10);
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RouteResult r = route(g, 0, 9, seed);
    if (r.delivered) {
      ++ok;
      EXPECT_EQ(r.payload, (std::vector<std::uint64_t>{0xCAFE}));
    }
  }
  EXPECT_GE(ok, 8);
}

TEST(Routing, DeliversOnAGrid) {
  const graph::Graph g = graph::grid(5, 5);
  int ok = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ok += route(g, 0, 24, seed).delivered ? 1 : 0;
  }
  EXPECT_GE(ok, 8);
}

TEST(Routing, DeliversOnRandomGraphs) {
  rng::Rng topo(3);
  int ok = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = graph::connected_gnp(40, 0.1, topo);
    ok += route(g, 0, 39, 100 + trial).delivered ? 1 : 0;
  }
  EXPECT_GE(ok, trials * 4 / 5);
}

TEST(Routing, PacketStaysInsideTheCone) {
  // Gradient descent: a node can hold the packet only if its label is
  // strictly below some holder's label, so holders' labels are bounded by
  // the source's label — nodes farther from the destination than the
  // source never see the packet.
  const graph::Graph g = graph::path(12);
  // Source in the middle, destination at the left end: the right half
  // (labels > source's) must stay packet-free.
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{5});
  using Role = PointToPointRouting::Role;
  for (NodeId v = 0; v < 12; ++v) {
    const Role role = v == 5 ? Role::kSource
                      : v == 0 ? Role::kDestination
                               : Role::kRelay;
    s.emplace_protocol<PointToPointRouting>(v, params, role,
                                            std::vector<std::uint64_t>{});
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());
  for (NodeId v = 7; v < 12; ++v) {
    EXPECT_FALSE(s.protocol_as<PointToPointRouting>(v).has_packet())
        << "node " << v << " is outside the cone";
  }
  EXPECT_TRUE(s.protocol_as<PointToPointRouting>(0).delivered());
}

TEST(Routing, CheaperThanBroadcastOnBigGraphs) {
  // The whole point of the cone restriction: stage-2 messages scale with
  // the cone, not the graph. Compare against relaying from the corner of
  // a long path where the cone is small.
  const graph::Graph g = graph::path(30);
  const RouteResult near = route(g, 2, 0, 7);   // cone ~2 nodes
  const RouteResult far = route(g, 29, 0, 7);   // cone = whole path
  ASSERT_TRUE(near.delivered);
  ASSERT_TRUE(far.delivered);
  EXPECT_LT(near.stage2_transmissions, far.stage2_transmissions);
  EXPECT_LE(near.nodes_with_packet, 4U);
}

TEST(Routing, LabelsMatchBfsTruth) {
  const graph::Graph g = graph::grid(4, 4);
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{11});
  using Role = PointToPointRouting::Role;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const Role role = v == 15 ? Role::kSource
                      : v == 0 ? Role::kDestination
                               : Role::kRelay;
    s.emplace_protocol<PointToPointRouting>(v, params, role,
                                            std::vector<std::uint64_t>{});
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.bfs_horizon();
  }, params.horizon());
  const auto truth = graph::bfs_distances(g, 0);
  std::size_t correct = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& p = s.protocol_as<PointToPointRouting>(v);
    if (p.labelled() && p.label() == truth[v]) {
      ++correct;
    }
  }
  EXPECT_GE(correct, g.node_count() - 1);  // allow <= 1 label failure
}

TEST(Routing, RejectsZeroDiameterBound) {
  const graph::Graph g = graph::path(4);
  RoutingParams params = params_for(g);
  params.diameter_bound = 0;
  EXPECT_THROW(PointToPointRouting(params,
                                   PointToPointRouting::Role::kRelay),
               ContractViolation);
}

}  // namespace
}  // namespace radiocast::proto
