#include "radiocast/graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/generators.hpp"

namespace radiocast::graph {
namespace {

TEST(BfsDistances, Path) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(d[v], v);
  }
}

TEST(BfsDistances, FromMiddle) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 2);
  EXPECT_EQ(d[0], 2U);
  EXPECT_EQ(d[4], 2U);
  EXPECT_EQ(d[2], 0U);
}

TEST(BfsDistances, RespectsDirection) {
  Graph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], 2U);
  const auto back = bfs_distances(g, 2);
  EXPECT_EQ(back[0], kUnreachable);
}

TEST(BfsDistances, MultiSource) {
  const Graph g = path(7);
  const NodeId sources[] = {0, 6};
  const auto d = bfs_distances_multi(g, sources);
  EXPECT_EQ(d[0], 0U);
  EXPECT_EQ(d[6], 0U);
  EXPECT_EQ(d[3], 3U);
  EXPECT_EQ(d[1], 1U);
  EXPECT_EQ(d[5], 1U);
}

TEST(BfsDistances, DuplicateSourcesOk) {
  const Graph g = path(4);
  const NodeId sources[] = {1, 1};
  const auto d = bfs_distances_multi(g, sources);
  EXPECT_EQ(d[1], 0U);
  EXPECT_EQ(d[3], 2U);
}

TEST(Eccentricity, StarCenterVsLeaf) {
  const Graph g = star(8);
  EXPECT_EQ(eccentricity(g, 0), 1U);
  EXPECT_EQ(eccentricity(g, 3), 2U);
}

TEST(Eccentricity, UnreachableIsSentinel) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(eccentricity(g, 0), kUnreachable);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path(10)), 9U);
  EXPECT_EQ(diameter(cycle(10)), 5U);
  EXPECT_EQ(diameter(clique(7)), 1U);
  EXPECT_EQ(diameter(grid(4, 4)), 6U);
  EXPECT_EQ(diameter(hypercube(5)), 5U);
}

TEST(Diameter, SingleNodeIsZero) { EXPECT_EQ(diameter(path(1)), 0U); }

TEST(Diameter, DisconnectedIsSentinel) {
  const Graph g(4);
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Reachability, AllReachable) {
  EXPECT_TRUE(all_reachable_from(path(6), 0));
  Graph g(3);
  g.add_arc(0, 1);
  EXPECT_FALSE(all_reachable_from(g, 0));
  EXPECT_FALSE(all_reachable_from(g, 2));
}

TEST(Connectivity, Undirected) {
  EXPECT_TRUE(is_connected_undirected(path(5)));
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected_undirected(g));
  EXPECT_TRUE(is_connected_undirected(Graph(1)));
  EXPECT_TRUE(is_connected_undirected(Graph(0)));
}

TEST(Connectivity, OneWayArcCountsAsConnecting) {
  Graph g(2);
  g.add_arc(0, 1);
  EXPECT_TRUE(is_connected_undirected(g));
}

TEST(Connectivity, SymmetricCore) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_arc(1, 2);  // one-way only
  EXPECT_TRUE(is_connected_undirected(g));
  EXPECT_FALSE(is_symmetric_core_connected(g));
  g.add_arc(2, 1);
  EXPECT_TRUE(is_symmetric_core_connected(g));
}

TEST(DegreeStats, Values) {
  const Graph g = star(5);  // hub 0 with 4 leaves
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max_in, 4U);
  EXPECT_EQ(s.min_in, 1U);
  EXPECT_EQ(s.max_out, 4U);
  EXPECT_DOUBLE_EQ(s.mean_in, 8.0 / 5.0);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degree_stats(Graph(0));
  EXPECT_EQ(s.max_in, 0U);
  EXPECT_DOUBLE_EQ(s.mean_in, 0.0);
}

}  // namespace
}  // namespace radiocast::graph
