// Equivalence suite for the receiver-sharded slot engine (sim/sharded.hpp).
//
// The contract under test extends the thread-invariance pattern of
// tests/test_parallel.cpp to the intra-slot parallelism: a sharded run must
// be bit-identical to the classic Simulator — per-slot transmitter sets,
// deliveries, collisions, every node's protocol state and rng trajectory —
// for ANY shard count and ANY thread count, on both implicit and
// CSR-backed topologies, with and without collision detection.
#include "radiocast/sim/sharded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "radiocast/graph/csr.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast {
namespace {

using graph::connected_gnp;
using graph::CsrBackedTopology;
using graph::CsrTopology;
using graph::grid;
using graph::GridTopology;
using graph::random_geometric;
using graph::UnitDiskTopology;
using graph::HypercubeTopology;
using proto::BgiBroadcast;
using proto::BroadcastParams;
using sim::ShardedSimOptions;
using sim::ShardedSimulator;
using sim::SimOptions;
using sim::Simulator;
using sim::SweepStrategy;

constexpr std::uint64_t kSeed = 42;

constexpr SweepStrategy kAllStrategies[] = {
    SweepStrategy::kAuto, SweepStrategy::kDense, SweepStrategy::kSparse};

std::function<std::unique_ptr<sim::Protocol>(NodeId)> bgi_factory(
    BroadcastParams params, NodeId source) {
  return [params, source](NodeId v) -> std::unique_ptr<sim::Protocol> {
    if (v == source) {
      sim::Message m;
      m.origin = source;
      return std::make_unique<BgiBroadcast>(params, m);
    }
    return std::make_unique<BgiBroadcast>(params);
  };
}

/// A topology-oblivious mixing protocol that exercises deliveries AND
/// collisions heavily: transmit with probability 0.35, else listen; count
/// what happens. Never terminates (runs are fixed-length).
class MixProtocol final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext& ctx) override {
    if (ctx.rng().bernoulli(0.35)) {
      sim::Message m;
      m.origin = ctx.id();
      m.tag = ++sent_;
      return sim::Action::transmit(std::move(m));
    }
    return sim::Action::receive();
  }
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override {
    received_ += 1;
    last_heard_ = m.origin;
    // Draw from the node stream so any engine divergence snowballs into
    // visibly different trajectories.
    if (ctx.rng().fair_coin()) {
      coin_heads_ += 1;
    }
  }
  void on_collision(sim::NodeContext& /*ctx*/) override { collisions_ += 1; }

  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t coin_heads_ = 0;
  NodeId last_heard_ = kNoNode;
};

void expect_same_trajectory(Simulator& classic, ShardedSimulator& sharded) {
  ASSERT_EQ(classic.now(), sharded.now());
  const auto& ct = classic.trace();
  const auto& st = sharded.trace();
  EXPECT_EQ(ct.total_slots(), st.total_slots());
  EXPECT_EQ(ct.total_transmissions(), st.total_transmissions());
  EXPECT_EQ(ct.total_deliveries(), st.total_deliveries());
  EXPECT_EQ(ct.total_collisions(), st.total_collisions());
  std::size_t delivered = 0;
  for (NodeId v = 0; v < classic.node_count(); ++v) {
    EXPECT_EQ(ct.first_delivery(v), st.first_delivery(v)) << "node " << v;
    delivered += ct.first_delivery(v) != kNever ? 1 : 0;
  }
  EXPECT_EQ(st.delivered_count(), delivered);
  // With sample period 1 every classic slot record must reappear verbatim.
  if (st.sample_period() == 1) {
    ASSERT_EQ(st.sampled_slots().size(), ct.slots().size());
    for (std::size_t i = 0; i < ct.slots().size(); ++i) {
      EXPECT_EQ(st.sampled_slots()[i], ct.slots()[i]) << "slot " << i;
    }
  }
}

TEST(ShardedEngine, BgiOnUnitDiskMatchesClassicAtEveryShardThreadCount) {
  const std::size_t n = 150;
  const double radius = 0.12;
  rng::Rng graph_rng(kSeed, 7);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};

  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 0));
  const Slot classic_end = classic.run_to_quiescence(50'000);
  ASSERT_LT(classic_end, 50'000U);

  for (const auto& [shards, threads] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {1, 4},
        {2, 2},
        {3, 1},
        {5, 4},
        {8, 8},
        {150, 4}}) {
    rng::Rng topo_rng(kSeed, 7);
    const UnitDiskTopology topo(n, radius, topo_rng);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = shards,
                                    .threads = threads,
                                    .trace_sample_period = 1});
    sharded.install_all(bgi_factory(params, 0));
    EXPECT_EQ(sharded.run_to_quiescence(50'000), classic_end)
        << "shards=" << shards << " threads=" << threads;
    expect_same_trajectory(classic, sharded);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(sharded.protocol_as<BgiBroadcast>(v).informed_at(),
                classic.protocol_as<BgiBroadcast>(v).informed_at());
    }
  }
}

TEST(ShardedSweep, ForcedStrategiesBitIdenticalOnUnitDisk) {
  const std::size_t n = 150;
  const double radius = 0.12;
  rng::Rng graph_rng(kSeed, 7);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 0));
  const Slot classic_end = classic.run_to_quiescence(50'000);
  ASSERT_LT(classic_end, 50'000U);

  for (const SweepStrategy strategy : kAllStrategies) {
    for (const auto& [shards, threads] :
         {std::pair<std::size_t, std::size_t>{1, 1}, {5, 4}, {16, 2}}) {
      rng::Rng topo_rng(kSeed, 7);
      const UnitDiskTopology topo(n, radius, topo_rng);
      ShardedSimulator sharded(topo, {.seed = kSeed,
                                      .shards = shards,
                                      .threads = threads,
                                      .trace_sample_period = 1,
                                      .sweep = strategy});
      sharded.install_all(bgi_factory(params, 0));
      EXPECT_EQ(sharded.run_to_quiescence(50'000), classic_end)
          << sim::sweep_strategy_name(strategy) << " shards=" << shards;
      expect_same_trajectory(classic, sharded);
      // The strategy counters must account for every slot, and a forced
      // strategy must actually run (the whole point of forcing).
      const auto& st = sharded.trace();
      EXPECT_EQ(st.sweep_dense_slots() + st.sweep_sparse_slots(),
                st.total_slots());
      if (strategy == SweepStrategy::kDense) {
        EXPECT_EQ(st.sweep_sparse_slots(), 0U);
      }
      if (strategy == SweepStrategy::kSparse) {
        EXPECT_EQ(st.sweep_dense_slots(), 0U);
      }
    }
  }
}

TEST(ShardedSweep, ForcedStrategiesBitIdenticalOnHypercube) {
  const unsigned dim = 7;
  const std::size_t n = std::size_t{1} << dim;
  const graph::Graph g = graph::hypercube(dim);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 5));
  const Slot end = classic.run_to_quiescence(50'000);
  ASSERT_LT(end, 50'000U);

  const HypercubeTopology topo(dim);
  for (const SweepStrategy strategy : kAllStrategies) {
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = 6,
                                    .threads = 3,
                                    .trace_sample_period = 1,
                                    .sweep = strategy});
    sharded.install_all(bgi_factory(params, 5));
    EXPECT_EQ(sharded.run_to_quiescence(50'000), end)
        << sim::sweep_strategy_name(strategy);
    expect_same_trajectory(classic, sharded);
  }
}

TEST(ShardedSweep, MultiSourceBroadcastBitIdenticalAcrossStrategies) {
  // Two informed sources racing: wavefronts merge, so both deliveries and
  // collisions are plentiful on every strategy's code path.
  const std::size_t n = 120;
  const double radius = 0.14;
  const auto multi_factory =
      [](const BroadcastParams& params) {
        return [params](NodeId v) -> std::unique_ptr<sim::Protocol> {
          if (v == 0 || v == 60) {
            sim::Message m;
            m.origin = v;
            return std::make_unique<BgiBroadcast>(params, m);
          }
          return std::make_unique<BgiBroadcast>(params);
        };
      };
  rng::Rng graph_rng(kSeed, 11);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(multi_factory(params));
  const Slot end = classic.run_to_quiescence(50'000);
  ASSERT_LT(end, 50'000U);

  for (const SweepStrategy strategy : kAllStrategies) {
    rng::Rng topo_rng(kSeed, 11);
    const UnitDiskTopology topo(n, radius, topo_rng);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = 7,
                                    .threads = 4,
                                    .trace_sample_period = 1,
                                    .sweep = strategy});
    sharded.install_all(multi_factory(params));
    EXPECT_EQ(sharded.run_to_quiescence(50'000), end)
        << sim::sweep_strategy_name(strategy);
    expect_same_trajectory(classic, sharded);
  }
}

TEST(ShardedEngine, BgiOnImplicitGridMatchesClassic) {
  const std::size_t rows = 9;
  const std::size_t cols = 17;
  const graph::Graph g = grid(rows, cols);
  const BroadcastParams params{.network_size_bound = rows * cols,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 3));
  const Slot end = classic.run_to_quiescence(50'000);
  ASSERT_LT(end, 50'000U);

  const GridTopology topo(rows, cols);
  ShardedSimulator sharded(topo,
                           {.seed = kSeed, .shards = 4, .threads = 2,
                            .trace_sample_period = 1});
  sharded.install_all(bgi_factory(params, 3));
  EXPECT_EQ(sharded.run_to_quiescence(50'000), end);
  expect_same_trajectory(classic, sharded);
}

TEST(ShardedEngine, CollisionDetectionFalseNegativesMatchClassic) {
  // A dense topology under heavy contention: collisions every slot, an
  // unreliable detector drawing from each receiver's rng stream, and a
  // protocol that draws again on every delivery. Any engine divergence in
  // draw order diverges the trajectories immediately.
  const std::size_t n = 48;
  rng::Rng graph_rng(kSeed, 1);
  const graph::Graph g = connected_gnp(n, 0.2, graph_rng);
  const SimOptions classic_options{.seed = kSeed,
                                   .collision_detection = true,
                                   .cd_false_negative_rate = 0.3,
                                   .trace_slots = true};
  Simulator classic(g, classic_options);
  classic.install_all(
      [](NodeId) { return std::make_unique<MixProtocol>(); });
  const Slot kSlots = 250;
  while (classic.now() < kSlots) {
    classic.step();
  }

  const CsrTopology csr(g);
  for (const auto& [shards, strategy] :
       {std::pair<std::size_t, SweepStrategy>{1, SweepStrategy::kAuto},
        {3, SweepStrategy::kAuto},
        {8, SweepStrategy::kAuto},
        {3, SweepStrategy::kDense},
        {3, SweepStrategy::kSparse},
        {8, SweepStrategy::kSparse}}) {
    const CsrBackedTopology topo(csr);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .collision_detection = true,
                                    .cd_false_negative_rate = 0.3,
                                    .shards = shards,
                                    .threads = 4,
                                    .trace_sample_period = 1,
                                    .sweep = strategy});
    sharded.install_all(
        [](NodeId) { return std::make_unique<MixProtocol>(); });
    while (sharded.now() < kSlots) {
      sharded.step();
    }
    expect_same_trajectory(classic, sharded);
    for (NodeId v = 0; v < n; ++v) {
      const auto& a = classic.protocol_as<MixProtocol>(v);
      const auto& b = sharded.protocol_as<MixProtocol>(v);
      EXPECT_EQ(a.sent_, b.sent_) << "node " << v;
      EXPECT_EQ(a.received_, b.received_) << "node " << v;
      EXPECT_EQ(a.collisions_, b.collisions_) << "node " << v;
      EXPECT_EQ(a.coin_heads_, b.coin_heads_) << "node " << v;
      EXPECT_EQ(a.last_heard_, b.last_heard_) << "node " << v;
    }
  }
}

TEST(ShardedEngine, SamplingRecordsExactlyThePeriodSlots) {
  const std::size_t n = 100;
  const double radius = 0.15;
  rng::Rng graph_rng(kSeed, 2);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 0));
  const Slot end = classic.run_to_quiescence(50'000);

  rng::Rng topo_rng(kSeed, 2);
  const UnitDiskTopology topo(n, radius, topo_rng);
  const Slot period = 7;
  ShardedSimulator sharded(topo, {.seed = kSeed,
                                  .shards = 5,
                                  .threads = 4,
                                  .trace_sample_period = period});
  sharded.install_all(bgi_factory(params, 0));
  EXPECT_EQ(sharded.run_to_quiescence(50'000), end);

  const auto& sampled = sharded.trace().sampled_slots();
  ASSERT_EQ(sampled.size(), (end + period - 1) / period);
  for (const auto& record : sampled) {
    EXPECT_EQ(record.slot % period, 0U);
    // Each sampled record must equal the classic engine's full record.
    EXPECT_EQ(record, classic.trace().slots()[record.slot]);
  }
  // Aggregate totals are always on, independent of sampling.
  EXPECT_EQ(sharded.trace().total_slots(), classic.trace().total_slots());
  EXPECT_EQ(sharded.trace().total_deliveries(),
            classic.trace().total_deliveries());
}

TEST(ShardedEngine, TracingOffStillMaintainsTotalsAndFirstDeliveries) {
  const GridTopology topo(6, 6);
  const graph::Graph g = grid(6, 6);
  const BroadcastParams params{.network_size_bound = 36,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed});
  classic.install_all(bgi_factory(params, 0));
  const Slot end = classic.run_to_quiescence(50'000);

  ShardedSimulator sharded(topo, {.seed = kSeed});  // sampling off
  sharded.install_all(bgi_factory(params, 0));
  EXPECT_EQ(sharded.run_to_quiescence(50'000), end);
  EXPECT_TRUE(sharded.trace().sampled_slots().empty());
  expect_same_trajectory(classic, sharded);
}

/// Exactly `talkers` fixed transmitters every slot — the knob that lets a
/// test park the live-transmitter count ON the crossover threshold.
class FixedTransmitters final : public sim::Protocol {
 public:
  explicit FixedTransmitters(bool talk) : talk_(talk) {}
  sim::Action on_slot(sim::NodeContext& ctx) override {
    if (talk_) {
      sim::Message m;
      m.origin = ctx.id();
      return sim::Action::transmit(std::move(m));
    }
    return sim::Action::receive();
  }
  void on_receive(sim::NodeContext&, const sim::Message&) override {}

 private:
  bool talk_;
};

/// {dense slots, sparse slots} after `slots` steps with `talkers` fixed
/// transmitters against the given auto-crossover threshold.
std::pair<std::uint64_t, std::uint64_t> boundary_counts(
    const GridTopology& topo, std::size_t talkers, std::size_t shards,
    std::size_t threshold, Slot slots) {
  ShardedSimulator s(topo, {.seed = kSeed,
                            .shards = shards,
                            .threads = 2,
                            .sweep = SweepStrategy::kAuto,
                            .sweep_sparse_threshold = threshold});
  s.install_all([talkers](NodeId v) -> std::unique_ptr<sim::Protocol> {
    return std::make_unique<FixedTransmitters>(v < talkers);
  });
  while (s.now() < slots) {
    s.step();
  }
  return {s.trace().sweep_dense_slots(), s.trace().sweep_sparse_slots()};
}

TEST(ShardedSweep, AutoCrossoverFlipsExactlyAtTheThreshold) {
  const GridTopology topo(8, 8);
  const std::size_t talkers = 10;
  const Slot slots = 6;
  // T == threshold: at the boundary, sparse (the heuristic is <=).
  EXPECT_EQ(boundary_counts(topo, talkers, /*shards=*/4,
                            /*threshold=*/talkers, slots),
            (std::pair<std::uint64_t, std::uint64_t>{0, slots}));
  // T == threshold + 1: one past the boundary, dense.
  EXPECT_EQ(boundary_counts(topo, talkers, /*shards=*/4,
                            /*threshold=*/talkers - 1, slots),
            (std::pair<std::uint64_t, std::uint64_t>{slots, 0}));
  // A single shard never goes sparse on auto: the dense sweep already
  // does the minimal number of full-range queries.
  EXPECT_EQ(boundary_counts(topo, talkers, /*shards=*/1,
                            /*threshold=*/talkers, slots),
            (std::pair<std::uint64_t, std::uint64_t>{slots, 0}));
}

TEST(ShardedSweep, ThresholdDefaultsToHalfTheNodes) {
  const GridTopology topo(8, 8);
  ShardedSimulator s(topo, {.seed = kSeed});
  EXPECT_EQ(s.sweep_sparse_threshold(), 32U);
  ShardedSimulator pinned_threshold(topo,
                                    {.seed = kSeed,
                                     .sweep_sparse_threshold = 7});
  EXPECT_EQ(pinned_threshold.sweep_sparse_threshold(), 7U);
}

TEST(ShardedSweep, AdjacencyCacheBudgetFallsBackBitIdentically) {
  // The adjacency cache is wall-clock only: a budget too small for any
  // row (1 byte), one that exhausts mid-run (200 bytes — a handful of
  // entries per shard, so some rows memoize and the rest fall back), and
  // the auto default must all walk the exact classic trajectory.
  const std::size_t n = 150;
  const double radius = 0.12;
  rng::Rng graph_rng(kSeed, 7);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};

  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 0));
  ASSERT_LT(classic.run_to_quiescence(50'000), 50'000U);

  for (const std::size_t budget :
       {std::size_t{1}, std::size_t{200}, std::size_t{0}}) {
    rng::Rng topo_rng(kSeed, 7);
    const UnitDiskTopology topo(n, radius, topo_rng);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = 5,
                                    .threads = 3,
                                    .trace_sample_period = 1,
                                    .sweep = SweepStrategy::kSparse,
                                    .adjacency_cache_bytes = budget});
    sharded.install_all(bgi_factory(params, 0));
    sharded.run_to_quiescence(50'000);
    expect_same_trajectory(classic, sharded);
    if (budget == 1) {
      // One byte holds no NodeId: the cache is disabled outright.
      EXPECT_EQ(sharded.cached_rows(), 0U);
    } else {
      EXPECT_GT(sharded.cached_rows(), 0U);
      EXPECT_LT(sharded.cached_rows(), budget == 200 ? n : n + 1);
    }
  }

  // Materialized rows (CSR-backed) are never memoized under the auto
  // budget — the cache would just duplicate the CSR.
  const CsrTopology csr(g);
  const CsrBackedTopology csr_view(csr);
  ShardedSimulator on_csr(csr_view, {.seed = kSeed, .shards = 5});
  on_csr.install_all(bgi_factory(params, 0));
  on_csr.run_to_quiescence(50'000);
  EXPECT_EQ(on_csr.cached_rows(), 0U);
}

TEST(ShardedSweep, StrategyKnobParsesStrictly) {
  EXPECT_EQ(sim::parse_sweep_strategy("auto"), SweepStrategy::kAuto);
  EXPECT_EQ(sim::parse_sweep_strategy("dense"), SweepStrategy::kDense);
  EXPECT_EQ(sim::parse_sweep_strategy("sparse"), SweepStrategy::kSparse);
  // Anything else — case drift, whitespace, prefixes, numbers — is
  // rejected outright rather than silently truncated or defaulted.
  EXPECT_FALSE(sim::parse_sweep_strategy("Dense").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("sparse ").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy(" dense").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("densest").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("").has_value());
  EXPECT_FALSE(sim::parse_sweep_strategy("1").has_value());

  EXPECT_STREQ(sim::sweep_strategy_name(SweepStrategy::kAuto), "auto");
  EXPECT_STREQ(sim::sweep_strategy_name(SweepStrategy::kDense), "dense");
  EXPECT_STREQ(sim::sweep_strategy_name(SweepStrategy::kSparse), "sparse");
}

TEST(ShardedAffinity, PinnedRunBitIdenticalToUnpinned) {
  // Pinning (like shard/thread counts) is placement-only; a pinned pool
  // must replay the exact same trajectory.
  const std::size_t rows = 9;
  const std::size_t cols = 17;
  const graph::Graph g = grid(rows, cols);
  const BroadcastParams params{.network_size_bound = rows * cols,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 3));
  const Slot end = classic.run_to_quiescence(50'000);

  const GridTopology topo(rows, cols);
  for (const auto affinity :
       {common::Affinity::kNone, common::Affinity::kPin}) {
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = 4,
                                    .threads = 3,
                                    .trace_sample_period = 1,
                                    .sweep = SweepStrategy::kSparse,
                                    .affinity = affinity});
    sharded.install_all(bgi_factory(params, 3));
    EXPECT_EQ(sharded.run_to_quiescence(50'000), end);
    expect_same_trajectory(classic, sharded);
  }
}

TEST(ShardedAffinity, PoolReportsPinningAndStaticDispatchCoversAllIndices) {
  common::WorkerPool unpinned(3, common::Affinity::kNone);
  EXPECT_FALSE(unpinned.pinned());
  common::WorkerPool pinned(3, common::Affinity::kPin);
  EXPECT_EQ(pinned.pinned(), common::affinity_supported());

  // Static dispatch must still execute every index exactly once, for
  // counts below, equal to, and above the worker count.
  for (const std::size_t count : {std::size_t{2}, std::size_t{3},
                                  std::size_t{17}}) {
    std::vector<std::atomic<int>> hits(count);
    pinned.run(
        count, [&](std::size_t i) { hits[i].fetch_add(1); },
        common::Dispatch::kStatic);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ShardedAffinity, AffinityKnobParsesStrictly) {
  EXPECT_EQ(common::parse_affinity("none"), common::Affinity::kNone);
  EXPECT_EQ(common::parse_affinity("pin"), common::Affinity::kPin);
  EXPECT_FALSE(common::parse_affinity("Pin").has_value());
  EXPECT_FALSE(common::parse_affinity("pin ").has_value());
  EXPECT_FALSE(common::parse_affinity("pinned").has_value());
  EXPECT_FALSE(common::parse_affinity("").has_value());
  EXPECT_FALSE(common::parse_affinity("1").has_value());
  EXPECT_FALSE(common::parse_affinity(nullptr).has_value());
}

TEST(ShardedEngine, GuardsProtocolInstallation) {
  const GridTopology topo(3, 3);
  ShardedSimulator sharded(topo, {.seed = kSeed});
  EXPECT_THROW(sharded.step(), ContractViolation);
  EXPECT_THROW(sharded.set_protocol(9, nullptr), ContractViolation);
}

/// Relays once and sleeps: uninformed and finished nodes promise dormancy
/// until a callback (kNever). The tally pointer counts actual on_slot
/// invocations without being protocol state — skipping a dormant poll
/// leaves the node's behavior and the trajectory untouched, which is
/// exactly the Protocol::dormant_until() contract.
class SleepyRelay final : public sim::Protocol {
 public:
  SleepyRelay(bool source, std::uint64_t* polls)
      : informed_(source), polls_(polls) {}
  sim::Action on_slot(sim::NodeContext& ctx) override {
    *polls_ += 1;
    if (!informed_ || sent_) {
      return sim::Action::receive();
    }
    sent_ = true;
    sim::Message m;
    m.origin = ctx.id();
    return sim::Action::transmit(std::move(m));
  }
  void on_receive(sim::NodeContext& /*ctx*/,
                  const sim::Message& /*m*/) override {
    informed_ = true;
    ++heard_;
  }
  bool terminated() const override { return informed_ && sent_; }
  Slot dormant_until() const override {
    return !informed_ || sent_ ? kNever : 0;
  }

  bool informed_;
  bool sent_ = false;
  std::uint64_t heard_ = 0;
  std::uint64_t* polls_;
};

TEST(ShardedDormancy, SkipsDormantPollsAndWakesOnDelivery) {
  // On a path, the one-shot relay wave visits one transmitter per slot, so
  // a classic engine polls n nodes for ~n slots while the dormancy fast
  // path polls each node O(1) times: once at slot 0 (everyone starts
  // awake), once when woken by a delivery, and once more after its own
  // transmission. The trajectories must still match bit-for-bit.
  const std::size_t n = 64;
  const graph::Graph g = graph::path(n);
  std::vector<std::uint64_t> classic_polls(n, 0);
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  for (NodeId v = 0; v < n; ++v) {
    classic.set_protocol(
        v, std::make_unique<SleepyRelay>(v == 0, &classic_polls[v]));
  }
  const Slot end = classic.run_to_quiescence(10 * n);
  ASSERT_LT(end, 10 * n);

  const CsrTopology csr(g);
  for (const auto& [shards, threads] :
       {std::pair<std::size_t, std::size_t>{1, 1}, {4, 2}, {8, 8}}) {
    std::vector<std::uint64_t> polls(n, 0);
    const CsrBackedTopology topo(csr);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = shards,
                                    .threads = threads,
                                    .trace_sample_period = 1});
    for (NodeId v = 0; v < n; ++v) {
      sharded.set_protocol(v,
                           std::make_unique<SleepyRelay>(v == 0, &polls[v]));
    }
    EXPECT_EQ(sharded.run_to_quiescence(10 * n), end);
    expect_same_trajectory(classic, sharded);
    std::uint64_t classic_total = 0;
    std::uint64_t sharded_total = 0;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(sharded.protocol_as<SleepyRelay>(v).heard_,
                classic.protocol_as<SleepyRelay>(v).heard_);
      classic_total += classic_polls[v];
      sharded_total += polls[v];
    }
    // The classic engine pays ~n^2 polls for the wave; the engine honoring
    // the promise pays O(n). Anything near classic means skips never
    // happened.
    EXPECT_LE(sharded_total, 6 * n) << "shards=" << shards;
    EXPECT_LT(sharded_total, classic_total / 4);
  }
}

/// Sleeps until a fixed wake slot, transmits there once, then sleeps
/// forever — the finite-horizon form of the dormancy promise (every poll
/// strictly before `wake` is a pure receive).
class TimedBeacon final : public sim::Protocol {
 public:
  TimedBeacon(Slot wake, std::uint64_t* polls) : wake_(wake), polls_(polls) {}
  sim::Action on_slot(sim::NodeContext& ctx) override {
    *polls_ += 1;
    if (sent_ || ctx.now() < wake_) {
      return sim::Action::receive();
    }
    sent_ = true;
    sim::Message m;
    m.origin = ctx.id();
    return sim::Action::transmit(std::move(m));
  }
  bool terminated() const override { return sent_; }
  Slot dormant_until() const override { return sent_ ? kNever : wake_; }

  bool sent_ = false;
  Slot wake_;
  std::uint64_t* polls_;
};

/// Pure listener that terminates once it hears anything.
class OneHearListener final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext& /*ctx*/) override {
    return sim::Action::receive();
  }
  void on_receive(sim::NodeContext& ctx, const sim::Message& /*m*/) override {
    heard_at_ = ctx.now();
  }
  bool terminated() const override { return heard_at_ != kNever; }
  Slot dormant_until() const override { return kNever; }

  Slot heard_at_ = kNever;
};

TEST(ShardedDormancy, FiniteWakePollsExactlyThePromisedSlot) {
  // Two nodes joined by one edge: the beacon promises dormancy until slot
  // 37, so the engine must poll it at slot 0 (everyone starts awake), skip
  // 1..36, and poll again at exactly 37 — where the transmission fires and
  // the listener hears it.
  constexpr Slot kWake = 37;
  graph::Graph g(2);
  g.add_edge(0, 1);
  const CsrTopology csr(g);
  const CsrBackedTopology topo(csr);
  std::uint64_t polls = 0;
  ShardedSimulator sharded(topo, {.seed = kSeed, .trace_sample_period = 1});
  sharded.set_protocol(0, std::make_unique<TimedBeacon>(kWake, &polls));
  sharded.set_protocol(1, std::make_unique<OneHearListener>());
  const Slot end = sharded.run_to_quiescence(4 * kWake);
  EXPECT_EQ(end, kWake + 1);
  EXPECT_EQ(sharded.protocol_as<OneHearListener>(1).heard_at_, kWake);
  EXPECT_EQ(sharded.trace().total_transmissions(), 1U);
  // Slot 0 plus the promised wake slot; every poll in between was skipped,
  // and quiescence lands before a third poll can happen.
  EXPECT_EQ(polls, 2U);
}

}  // namespace
}  // namespace radiocast
