// Equivalence suite for the receiver-sharded slot engine (sim/sharded.hpp).
//
// The contract under test extends the thread-invariance pattern of
// tests/test_parallel.cpp to the intra-slot parallelism: a sharded run must
// be bit-identical to the classic Simulator — per-slot transmitter sets,
// deliveries, collisions, every node's protocol state and rng trajectory —
// for ANY shard count and ANY thread count, on both implicit and
// CSR-backed topologies, with and without collision detection.
#include "radiocast/sim/sharded.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "radiocast/graph/csr.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast {
namespace {

using graph::connected_gnp;
using graph::CsrBackedTopology;
using graph::CsrTopology;
using graph::grid;
using graph::GridTopology;
using graph::random_geometric;
using graph::UnitDiskTopology;
using proto::BgiBroadcast;
using proto::BroadcastParams;
using sim::ShardedSimOptions;
using sim::ShardedSimulator;
using sim::SimOptions;
using sim::Simulator;

constexpr std::uint64_t kSeed = 42;

std::function<std::unique_ptr<sim::Protocol>(NodeId)> bgi_factory(
    BroadcastParams params, NodeId source) {
  return [params, source](NodeId v) -> std::unique_ptr<sim::Protocol> {
    if (v == source) {
      sim::Message m;
      m.origin = source;
      return std::make_unique<BgiBroadcast>(params, m);
    }
    return std::make_unique<BgiBroadcast>(params);
  };
}

/// A topology-oblivious mixing protocol that exercises deliveries AND
/// collisions heavily: transmit with probability 0.35, else listen; count
/// what happens. Never terminates (runs are fixed-length).
class MixProtocol final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext& ctx) override {
    if (ctx.rng().bernoulli(0.35)) {
      sim::Message m;
      m.origin = ctx.id();
      m.tag = ++sent_;
      return sim::Action::transmit(std::move(m));
    }
    return sim::Action::receive();
  }
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override {
    received_ += 1;
    last_heard_ = m.origin;
    // Draw from the node stream so any engine divergence snowballs into
    // visibly different trajectories.
    if (ctx.rng().fair_coin()) {
      coin_heads_ += 1;
    }
  }
  void on_collision(sim::NodeContext& /*ctx*/) override { collisions_ += 1; }

  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t coin_heads_ = 0;
  NodeId last_heard_ = kNoNode;
};

void expect_same_trajectory(Simulator& classic, ShardedSimulator& sharded) {
  ASSERT_EQ(classic.now(), sharded.now());
  const auto& ct = classic.trace();
  const auto& st = sharded.trace();
  EXPECT_EQ(ct.total_slots(), st.total_slots());
  EXPECT_EQ(ct.total_transmissions(), st.total_transmissions());
  EXPECT_EQ(ct.total_deliveries(), st.total_deliveries());
  EXPECT_EQ(ct.total_collisions(), st.total_collisions());
  std::size_t delivered = 0;
  for (NodeId v = 0; v < classic.node_count(); ++v) {
    EXPECT_EQ(ct.first_delivery(v), st.first_delivery(v)) << "node " << v;
    delivered += ct.first_delivery(v) != kNever ? 1 : 0;
  }
  EXPECT_EQ(st.delivered_count(), delivered);
  // With sample period 1 every classic slot record must reappear verbatim.
  if (st.sample_period() == 1) {
    ASSERT_EQ(st.sampled_slots().size(), ct.slots().size());
    for (std::size_t i = 0; i < ct.slots().size(); ++i) {
      EXPECT_EQ(st.sampled_slots()[i], ct.slots()[i]) << "slot " << i;
    }
  }
}

TEST(ShardedEngine, BgiOnUnitDiskMatchesClassicAtEveryShardThreadCount) {
  const std::size_t n = 150;
  const double radius = 0.12;
  rng::Rng graph_rng(kSeed, 7);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};

  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 0));
  const Slot classic_end = classic.run_to_quiescence(50'000);
  ASSERT_LT(classic_end, 50'000U);

  for (const auto& [shards, threads] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {1, 4},
        {2, 2},
        {3, 1},
        {5, 4},
        {8, 8},
        {150, 4}}) {
    rng::Rng topo_rng(kSeed, 7);
    const UnitDiskTopology topo(n, radius, topo_rng);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .shards = shards,
                                    .threads = threads,
                                    .trace_sample_period = 1});
    sharded.install_all(bgi_factory(params, 0));
    EXPECT_EQ(sharded.run_to_quiescence(50'000), classic_end)
        << "shards=" << shards << " threads=" << threads;
    expect_same_trajectory(classic, sharded);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(sharded.protocol_as<BgiBroadcast>(v).informed_at(),
                classic.protocol_as<BgiBroadcast>(v).informed_at());
    }
  }
}

TEST(ShardedEngine, BgiOnImplicitGridMatchesClassic) {
  const std::size_t rows = 9;
  const std::size_t cols = 17;
  const graph::Graph g = grid(rows, cols);
  const BroadcastParams params{.network_size_bound = rows * cols,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 3));
  const Slot end = classic.run_to_quiescence(50'000);
  ASSERT_LT(end, 50'000U);

  const GridTopology topo(rows, cols);
  ShardedSimulator sharded(topo,
                           {.seed = kSeed, .shards = 4, .threads = 2,
                            .trace_sample_period = 1});
  sharded.install_all(bgi_factory(params, 3));
  EXPECT_EQ(sharded.run_to_quiescence(50'000), end);
  expect_same_trajectory(classic, sharded);
}

TEST(ShardedEngine, CollisionDetectionFalseNegativesMatchClassic) {
  // A dense topology under heavy contention: collisions every slot, an
  // unreliable detector drawing from each receiver's rng stream, and a
  // protocol that draws again on every delivery. Any engine divergence in
  // draw order diverges the trajectories immediately.
  const std::size_t n = 48;
  rng::Rng graph_rng(kSeed, 1);
  const graph::Graph g = connected_gnp(n, 0.2, graph_rng);
  const SimOptions classic_options{.seed = kSeed,
                                   .collision_detection = true,
                                   .cd_false_negative_rate = 0.3,
                                   .trace_slots = true};
  Simulator classic(g, classic_options);
  classic.install_all(
      [](NodeId) { return std::make_unique<MixProtocol>(); });
  const Slot kSlots = 250;
  while (classic.now() < kSlots) {
    classic.step();
  }

  const CsrTopology csr(g);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
    const CsrBackedTopology topo(csr);
    ShardedSimulator sharded(topo, {.seed = kSeed,
                                    .collision_detection = true,
                                    .cd_false_negative_rate = 0.3,
                                    .shards = shards,
                                    .threads = 4,
                                    .trace_sample_period = 1});
    sharded.install_all(
        [](NodeId) { return std::make_unique<MixProtocol>(); });
    while (sharded.now() < kSlots) {
      sharded.step();
    }
    expect_same_trajectory(classic, sharded);
    for (NodeId v = 0; v < n; ++v) {
      const auto& a = classic.protocol_as<MixProtocol>(v);
      const auto& b = sharded.protocol_as<MixProtocol>(v);
      EXPECT_EQ(a.sent_, b.sent_) << "node " << v;
      EXPECT_EQ(a.received_, b.received_) << "node " << v;
      EXPECT_EQ(a.collisions_, b.collisions_) << "node " << v;
      EXPECT_EQ(a.coin_heads_, b.coin_heads_) << "node " << v;
      EXPECT_EQ(a.last_heard_, b.last_heard_) << "node " << v;
    }
  }
}

TEST(ShardedEngine, SamplingRecordsExactlyThePeriodSlots) {
  const std::size_t n = 100;
  const double radius = 0.15;
  rng::Rng graph_rng(kSeed, 2);
  const graph::Graph g = random_geometric(n, radius, graph_rng);
  const BroadcastParams params{.network_size_bound = n,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed, .trace_slots = true});
  classic.install_all(bgi_factory(params, 0));
  const Slot end = classic.run_to_quiescence(50'000);

  rng::Rng topo_rng(kSeed, 2);
  const UnitDiskTopology topo(n, radius, topo_rng);
  const Slot period = 7;
  ShardedSimulator sharded(topo, {.seed = kSeed,
                                  .shards = 5,
                                  .threads = 4,
                                  .trace_sample_period = period});
  sharded.install_all(bgi_factory(params, 0));
  EXPECT_EQ(sharded.run_to_quiescence(50'000), end);

  const auto& sampled = sharded.trace().sampled_slots();
  ASSERT_EQ(sampled.size(), (end + period - 1) / period);
  for (const auto& record : sampled) {
    EXPECT_EQ(record.slot % period, 0U);
    // Each sampled record must equal the classic engine's full record.
    EXPECT_EQ(record, classic.trace().slots()[record.slot]);
  }
  // Aggregate totals are always on, independent of sampling.
  EXPECT_EQ(sharded.trace().total_slots(), classic.trace().total_slots());
  EXPECT_EQ(sharded.trace().total_deliveries(),
            classic.trace().total_deliveries());
}

TEST(ShardedEngine, TracingOffStillMaintainsTotalsAndFirstDeliveries) {
  const GridTopology topo(6, 6);
  const graph::Graph g = grid(6, 6);
  const BroadcastParams params{.network_size_bound = 36,
                               .degree_bound = g.max_in_degree()};
  Simulator classic(g, {.seed = kSeed});
  classic.install_all(bgi_factory(params, 0));
  const Slot end = classic.run_to_quiescence(50'000);

  ShardedSimulator sharded(topo, {.seed = kSeed});  // sampling off
  sharded.install_all(bgi_factory(params, 0));
  EXPECT_EQ(sharded.run_to_quiescence(50'000), end);
  EXPECT_TRUE(sharded.trace().sampled_slots().empty());
  expect_same_trajectory(classic, sharded);
}

TEST(ShardedEngine, GuardsProtocolInstallation) {
  const GridTopology topo(3, 3);
  ShardedSimulator sharded(topo, {.seed = kSeed});
  EXPECT_THROW(sharded.step(), ContractViolation);
  EXPECT_THROW(sharded.set_protocol(9, nullptr), ContractViolation);
}

}  // namespace
}  // namespace radiocast
