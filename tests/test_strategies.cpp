#include "radiocast/lb/strategies.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "radiocast/lb/hitting_game.hpp"

namespace radiocast::lb {
namespace {

/// Every bundled strategy must eventually win against every S when the
/// referee is honest — they are complete search procedures, just not fast
/// ones.
template <typename S>
void expect_wins_everywhere(S&& strategy, std::size_t n,
                            std::size_t budget) {
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    std::vector<NodeId> s;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1U) {
        s.push_back(static_cast<NodeId>(i + 1));
      }
    }
    const HittingGame game(n, s);
    const GameResult r = game.play(strategy, budget);
    EXPECT_TRUE(r.won) << "mask=" << mask;
    EXPECT_TRUE(std::ranges::binary_search(s, r.hit));
  }
}

TEST(ScanSingletons, WinsEverywhereWithinN) {
  ScanSingletonsStrategy scan;
  expect_wins_everywhere(scan, 7, 7);
}

TEST(ScanSingletons, MoveSequence) {
  ScanSingletonsStrategy scan;
  scan.reset(3);
  EXPECT_EQ(scan.next_move(), (Move{1}));
  scan.observe(RefereeAnswer{});
  EXPECT_EQ(scan.next_move(), (Move{2}));
  scan.observe(RefereeAnswer{});
  EXPECT_EQ(scan.next_move(), (Move{3}));
  scan.observe(RefereeAnswer{});
  EXPECT_EQ(scan.next_move(), (Move{1}));  // wraps around
}

TEST(Halving, WinsEverywhereSmall) {
  HalvingStrategy halving;
  expect_wins_everywhere(halving, 6, 200);
}

TEST(Halving, FastOnSingletonS) {
  // With |S| = 1 the halving explorer behaves like binary search *when the
  // referee reveals complement singletons*; it should be comfortably under
  // n moves on this friendly instance.
  HalvingStrategy halving;
  const HittingGame game(64, {37});
  const GameResult r = game.play(halving, 1000);
  EXPECT_TRUE(r.won);
  EXPECT_EQ(r.hit, 37U);
  EXPECT_LT(r.moves, 64U);
}

TEST(DoublingWindows, WinsEverywhereSmall) {
  DoublingWindowStrategy windows;
  expect_wins_everywhere(windows, 6, 400);
}

TEST(DoublingWindows, FirstMovesAreWindows) {
  DoublingWindowStrategy windows;
  windows.reset(8);
  EXPECT_EQ(windows.next_move(), (Move{1}));
  windows.observe(RefereeAnswer{});
  EXPECT_EQ(windows.next_move(), (Move{2}));
  windows.observe(RefereeAnswer{});
  // ... singles first, then width-2 windows once start passes n.
  for (int i = 0; i < 6; ++i) {
    (void)windows.next_move();
    windows.observe(RefereeAnswer{});
  }
  EXPECT_EQ(windows.next_move(), (Move{1, 2}));
}

TEST(RandomSubsets, WinsEverywhereSmall) {
  RandomSubsetStrategy random(1234);
  expect_wins_everywhere(random, 5, 3000);
}

TEST(RandomSubsets, DeterministicAcrossResets) {
  RandomSubsetStrategy a(99);
  RandomSubsetStrategy b(99);
  a.reset(20);
  b.reset(20);
  for (int i = 0; i < 30; ++i) {
    const Move ma = a.next_move();
    const Move mb = b.next_move();
    EXPECT_EQ(ma, mb);
    a.observe(RefereeAnswer{});
    b.observe(RefereeAnswer{});
  }
  // reset() rewinds the stream completely.
  a.reset(20);
  b.reset(20);
  EXPECT_EQ(a.next_move(), b.next_move());
}

TEST(RandomSubsets, PrunesRevealedNonMembers) {
  RandomSubsetStrategy random(5);
  random.reset(10);
  (void)random.next_move();
  random.observe(RefereeAnswer{RefereeAnswer::Kind::kComplement, 7});
  // 7 must never appear again.
  for (int i = 0; i < 50; ++i) {
    const Move m = random.next_move();
    EXPECT_EQ(std::ranges::count(m, 7U), 0) << "move " << i;
    random.observe(RefereeAnswer{});
  }
}

TEST(Strategies, NamesAreStable) {
  ScanSingletonsStrategy scan;
  HalvingStrategy halving;
  DoublingWindowStrategy windows;
  RandomSubsetStrategy random(1);
  EXPECT_STREQ(scan.name(), "scan-singletons");
  EXPECT_STREQ(halving.name(), "adaptive-halving");
  EXPECT_STREQ(windows.name(), "doubling-windows");
  EXPECT_STREQ(random.name(), "random-subsets");
}

}  // namespace
}  // namespace radiocast::lb
