#include "radiocast/proto/spontaneous_star.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/families.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::proto {
namespace {

sim::Message payload() {
  sim::Message m;
  m.origin = 0;
  m.tag = 0xBEEF;
  return m;
}

Slot run_and_get_sink_slot(const graph::CnNetwork& net, bool* all_informed) {
  sim::Simulator s(net.g, sim::SimOptions{.seed = 1});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      s.emplace_protocol<SpontaneousStarBroadcast>(v, net.n(), payload());
    } else {
      s.emplace_protocol<SpontaneousStarBroadcast>(v, net.n(), std::nullopt);
    }
  }
  for (int i = 0; i < 5; ++i) {
    s.step();
  }
  if (all_informed != nullptr) {
    *all_informed = true;
    for (NodeId v = 0; v < net.g.node_count(); ++v) {
      if (!s.protocol_as<SpontaneousStarBroadcast>(v).informed()) {
        *all_informed = false;
      }
    }
  }
  return s.protocol_as<SpontaneousStarBroadcast>(net.sink).informed_at();
}

TEST(SpontaneousStar, ThreeRoundsRegardlessOfS) {
  // §3.5: with spontaneous transmissions, C_n broadcast finishes in 3
  // rounds (slots 0, 1, 2) no matter what S is.
  const std::size_t n = 6;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const auto s_members = graph::subset_from_mask(n, mask);
    const auto net = graph::make_cn(n, s_members);
    bool all = false;
    const Slot sink_at = run_and_get_sink_slot(net, &all);
    EXPECT_TRUE(all) << "mask=" << mask;
    EXPECT_EQ(sink_at, 2U) << "mask=" << mask;
  }
}

TEST(SpontaneousStar, NoCollisionDetectionNeeded) {
  // The protocol never relies on the CD mechanism: it must work with the
  // default (no-CD) simulator options, which run_and_get_sink_slot uses.
  const NodeId s_members[] = {2, 3, 5};
  const auto net = graph::make_cn(5, s_members);
  bool all = false;
  EXPECT_EQ(run_and_get_sink_slot(net, &all), 2U);
  EXPECT_TRUE(all);
}

TEST(SpontaneousStar, NominatesTheMinimumOfS) {
  // Slot 1: the sink transmits its smallest neighbor id; slot 2 that node
  // alone transmits. Observe via per-slot trace.
  const NodeId s_members[] = {3, 5};
  const auto net = graph::make_cn(6, s_members);
  sim::Simulator s(net.g, sim::SimOptions{.seed = 1,
                                          .collision_detection = false,
                                          .trace_slots = true});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      s.emplace_protocol<SpontaneousStarBroadcast>(v, net.n(), payload());
    } else {
      s.emplace_protocol<SpontaneousStarBroadcast>(v, net.n(), std::nullopt);
    }
  }
  for (int i = 0; i < 3; ++i) {
    s.step();
  }
  const auto& slots = s.trace().slots();
  ASSERT_EQ(slots.size(), 3U);
  EXPECT_EQ(slots[0].transmitters, (std::vector<NodeId>{0}));
  EXPECT_EQ(slots[1].transmitters, (std::vector<NodeId>{net.sink}));
  EXPECT_EQ(slots[2].transmitters, (std::vector<NodeId>{3}));
}

TEST(SpontaneousStar, TerminatesAfterThreeSlots) {
  const NodeId s_members[] = {1};
  const auto net = graph::make_cn(3, s_members);
  sim::Simulator s(net.g, sim::SimOptions{.seed = 1});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    if (v == net.source) {
      s.emplace_protocol<SpontaneousStarBroadcast>(v, net.n(), payload());
    } else {
      s.emplace_protocol<SpontaneousStarBroadcast>(v, net.n(), std::nullopt);
    }
  }
  EXPECT_LE(s.run_to_quiescence(100), 5U);
}

}  // namespace
}  // namespace radiocast::proto
