#include <gtest/gtest.h>

#include <cmath>

#include "radiocast/common/check.hpp"
#include "radiocast/stats/chernoff.hpp"
#include "radiocast/stats/histogram.hpp"
#include "radiocast/stats/summary.hpp"

namespace radiocast::stats {
namespace {

TEST(Summary, MomentsOfKnownSample) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, QuantilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 5; ++i) {
    s.add(i);  // 1..5
  }
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.375), 2.5);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.5);
}

TEST(Summary, EmptyThrows) {
  const Summary s;
  EXPECT_THROW(s.mean(), radiocast::ContractViolation);
  EXPECT_THROW(s.min(), radiocast::ContractViolation);
  EXPECT_THROW(s.quantile(0.5), radiocast::ContractViolation);
}

TEST(Summary, QuantileAfterMoreAdds) {
  // The sorted cache must invalidate on add().
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Wilson, CoversTrueRate) {
  const Interval i = wilson_interval(80, 100);
  EXPECT_LT(i.lo, 0.8);
  EXPECT_GT(i.hi, 0.8);
  EXPECT_GT(i.lo, 0.70);
  EXPECT_LT(i.hi, 0.88);
}

TEST(Wilson, ExtremesStayInUnitInterval) {
  const Interval zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(Wilson, Validation) {
  EXPECT_THROW(wilson_interval(1, 0), radiocast::ContractViolation);
  EXPECT_THROW(wilson_interval(5, 4), radiocast::ContractViolation);
}

TEST(ChernoffTail, AboveMeanIsOne) {
  EXPECT_DOUBLE_EQ(binomial_lower_tail_bound(100, 0.5, 60), 1.0);
  EXPECT_DOUBLE_EQ(binomial_lower_tail_bound(100, 0.5, 50), 1.0);
}

TEST(ChernoffTail, MatchesHoeffdingFormula) {
  const double b = binomial_lower_tail_bound(100, 0.5, 30);
  EXPECT_NEAR(b, std::exp(-2.0 * 20.0 * 20.0 / 100.0), 1e-12);
}

TEST(Lemma3, MIsCeilLog) {
  EXPECT_EQ(lemma3_m(1000, 0.01), 17U);
  EXPECT_EQ(lemma3_m(8, 1.0), 3U);
}

TEST(Lemma3, TDominatedByDiameterWhenDLarge) {
  // For D >> M, T ≈ 2D + 5 sqrt(D M).
  const double t = lemma3_t(10000, 100, 0.1);
  const double m = lemma3_m(100, 0.1);
  EXPECT_NEAR(t, 2.0 * 10000 + 5.0 * std::sqrt(10000 * m), 1e-9);
}

TEST(Lemma3, TDominatedByLogWhenDSmall) {
  // For D << M, T = 2D + 5M.
  const double t = lemma3_t(1, 1 << 20, 0.001);
  const double m = lemma3_m(1 << 20, 0.001);
  EXPECT_NEAR(t, 2.0 + 5.0 * m, 1e-9);
}

TEST(Lemma3, ChernoffClosesTheProof) {
  // The reconstructed T must actually satisfy the inequality the proof of
  // Lemma 3 needs: Pr[Bin(T, 1/2) < D] <= ε/n for a healthy range.
  for (const std::size_t n : {10U, 100U, 10000U}) {
    for (const double eps : {0.5, 0.1, 0.001}) {
      for (const std::size_t d : {1U, 3U, 10U, 100U, 2000U}) {
        const double t = lemma3_t(d, n, eps);
        const double tail = binomial_lower_tail_bound(t, 0.5, d);
        EXPECT_LE(tail, eps / static_cast<double>(n))
            << "n=" << n << " eps=" << eps << " D=" << d;
      }
    }
  }
}

TEST(Theorem4, SlotBoundsScale) {
  const double deliver = theorem4_delivery_slots(10, 1000, 16, 0.1);
  const double terminate =
      theorem4_termination_slots(10, 1000, 1000, 16, 0.1);
  EXPECT_GT(terminate, deliver);
  // k = 2*ceil(log2 16) = 8; termination adds k * reps.
  EXPECT_NEAR(terminate - deliver, 8.0 * lemma3_m(1000, 0.1), 1e-9);
}

TEST(MessageComplexity, Formula) {
  EXPECT_DOUBLE_EQ(message_complexity_bound(100, 1000, 0.1),
                   2.0 * 100 * 14);  // ceil(log2 1e4) = 14
}

TEST(BfsBound, Formula) {
  // D * k * reps with k = 2 ceil(log Δ).
  EXPECT_DOUBLE_EQ(bfs_slot_bound(5, 256, 8, 1.0), 5.0 * 6.0 * 8.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 2U);
  EXPECT_EQ(h.count(0), 2U);  // 0.0 and 1.9
  EXPECT_EQ(h.count(1), 1U);  // 2.0
  EXPECT_EQ(h.count(4), 1U);  // 9.999
  EXPECT_EQ(h.total(), 7U);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_THROW(h.bin_lo(4), radiocast::ContractViolation);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), radiocast::ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), radiocast::ContractViolation);
}

}  // namespace
}  // namespace radiocast::stats
