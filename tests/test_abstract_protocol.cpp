#include "radiocast/lb/abstract_protocol.hpp"

#include <gtest/gtest.h>

#include "radiocast/common/check.hpp"

namespace radiocast::lb {
namespace {

TEST(RunAbstract, RejectsEmptyS) {
  RoundRobinAbstract rr;
  EXPECT_THROW(run_abstract(rr, 5, {}, 10), radiocast::ContractViolation);
}

TEST(RoundRobinAbstract, CompletesAtMinS) {
  RoundRobinAbstract rr;
  const std::vector<NodeId> s{4, 7};
  const AbstractRunResult r = run_abstract(rr, 9, s, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 4U);  // processor 4 transmits in round 3 (0-based)
  EXPECT_TRUE(r.history.back().successful);
  EXPECT_EQ(r.history.back().heard, 4U);
  EXPECT_TRUE(r.history.back().indicator);
}

TEST(RoundRobinAbstract, WorstCaseIsN) {
  RoundRobinAbstract rr;
  const std::vector<NodeId> s{9};
  const AbstractRunResult r = run_abstract(rr, 9, s, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rounds, 9U);
}

TEST(RoundRobinAbstract, EarlierRoundsAreFailures) {
  RoundRobinAbstract rr;
  const std::vector<NodeId> s{3};
  const AbstractRunResult r = run_abstract(rr, 5, s, 100);
  ASSERT_EQ(r.rounds, 3U);
  // Rounds 0 and 1 (processors 1, 2 ∉ S, sink hears nothing): unsuccessful.
  EXPECT_FALSE(r.history[0].successful);
  EXPECT_FALSE(r.history[1].successful);
}

TEST(RoundRobinAbstract, HonorsMaxRounds) {
  RoundRobinAbstract rr;
  const std::vector<NodeId> s{5};
  const AbstractRunResult r = run_abstract(rr, 5, s, 3);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 3U);
}

TEST(BitSplitAbstract, SingletonSFoundFast) {
  // |S| = 1: some mask round isolates the lone member long before the
  // round-robin fallback — in fact the very first round ({p : bit0 = 0})
  // or the second catches it.
  BitSplitAbstract bs;
  const std::vector<NodeId> s{11};
  const AbstractRunResult r = run_abstract(bs, 16, s, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 2U);
}

TEST(BitSplitAbstract, DenseSFallsThroughToRobin) {
  // With S = everything, every mask move has |T ∩ S| = n/2 >= 2: all mask
  // rounds fail; the fallback round-robin completes at its first round.
  BitSplitAbstract bs;
  std::vector<NodeId> s;
  for (NodeId x = 1; x <= 8; ++x) {
    s.push_back(x);
  }
  const AbstractRunResult r = run_abstract(bs, 8, s, 100);
  EXPECT_TRUE(r.completed);
  const std::size_t mask_rounds = 2 * 3;  // 2*ceil(log2 8)
  EXPECT_EQ(r.rounds, mask_rounds + 1);
}

TEST(BitSplitAbstract, IsObliviousFlag) {
  BitSplitAbstract bs;
  RoundRobinAbstract rr;
  AdaptiveSplitAbstract as;
  EXPECT_TRUE(bs.is_oblivious());
  EXPECT_TRUE(rr.is_oblivious());
  EXPECT_FALSE(as.is_oblivious());
}

TEST(AdaptiveSplitAbstract, SingletonSIsBinarySearchFast) {
  AdaptiveSplitAbstract as;
  const std::vector<NodeId> s{1};
  // Window halves toward the low end: {1..16} -> {1..8} -> ... -> {1}.
  const AbstractRunResult r = run_abstract(as, 16, s, 100);
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.rounds, 6U);
}

TEST(AdaptiveSplitAbstract, CompletesOnEveryS) {
  AdaptiveSplitAbstract as;
  const std::size_t n = 7;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    std::vector<NodeId> s;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1U) {
        s.push_back(static_cast<NodeId>(i + 1));
      }
    }
    const AbstractRunResult r = run_abstract(as, n, s, 5000);
    EXPECT_TRUE(r.completed) << "mask=" << mask;
  }
}

TEST(AbstractModel, SourceReceiverHearsNonMembers) {
  // A protocol where only non-members transmit and the source listens:
  // the source can hear a χ=0 message; the run must record it as
  // successful but NOT completed.
  class NonMembersOnly final : public AbstractBroadcastProtocol {
   public:
    bool transmits(NodeId p, bool chi, const History&) const override {
      return !chi && p == 2;
    }
    Receiver receiver(const History&) const override {
      return Receiver::kSource;
    }
    const char* name() const override { return "non-members-only"; }
  };
  NonMembersOnly proto;
  const std::vector<NodeId> s{5};
  const AbstractRunResult r = run_abstract(proto, 5, s, 3);
  EXPECT_FALSE(r.completed);
  ASSERT_EQ(r.rounds, 3U);
  EXPECT_TRUE(r.history[0].successful);
  EXPECT_EQ(r.history[0].heard, 2U);
  EXPECT_FALSE(r.history[0].indicator);
}

TEST(AbstractModel, SinkDoesNotHearNonMembers) {
  // Same transmit rule, sink listening: non-members are not the sink's
  // neighbors, so every round is silent.
  class NonMembersOnly final : public AbstractBroadcastProtocol {
   public:
    bool transmits(NodeId p, bool chi, const History&) const override {
      return !chi && p == 2;
    }
    Receiver receiver(const History&) const override {
      return Receiver::kSink;
    }
    const char* name() const override { return "non-members-sink"; }
  };
  NonMembersOnly proto;
  const std::vector<NodeId> s{5};
  const AbstractRunResult r = run_abstract(proto, 5, s, 3);
  EXPECT_FALSE(r.completed);
  for (const RoundOutcome& o : r.history) {
    EXPECT_FALSE(o.successful);
  }
}

TEST(AbstractModel, SourceCollisionWhenMixedPair) {
  // Two transmitters (one member, one non-member) with the source
  // listening: collision, unsuccessful.
  class Pair final : public AbstractBroadcastProtocol {
   public:
    bool transmits(NodeId p, bool, const History&) const override {
      return p == 1 || p == 2;
    }
    Receiver receiver(const History&) const override {
      return Receiver::kSource;
    }
    const char* name() const override { return "pair"; }
  };
  Pair proto;
  const std::vector<NodeId> s{1};
  const AbstractRunResult r = run_abstract(proto, 4, s, 2);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.history[0].successful);
}

}  // namespace
}  // namespace radiocast::lb
