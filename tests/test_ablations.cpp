// Tests for the ablation switches: each design choice the paper makes is
// paired with its broken variant, and the tests pin down both that the
// variant runs and that it is measurably worse (which is exactly why the
// paper's choice is the default).
#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/proto/bfs.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/sim/simulator.hpp"
#include "radiocast/stats/decay_analysis.hpp"
#include "radiocast/stats/summary.hpp"

namespace radiocast::proto {
namespace {

TEST(DecayAblation, FlipFirstCanStaySilent) {
  rng::Rng rng(1);
  sim::Message m;
  m.origin = 0;
  int silent_runs = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    DecayRun run(6, m, 0.5, /*send_before_flip=*/false);
    while (!run.phase_over()) {
      (void)run.tick(rng);
    }
    silent_runs += run.transmissions_sent() == 0 ? 1 : 0;
  }
  // Pr[first flip stops] = 1/2: about half the runs never transmit.
  EXPECT_NEAR(static_cast<double>(silent_runs) / trials, 0.5, 0.05);
}

TEST(DecayAblation, SendFirstNeverSilent) {
  rng::Rng rng(2);
  sim::Message m;
  m.origin = 0;
  for (int trial = 0; trial < 500; ++trial) {
    DecayRun run(6, m, 0.5, /*send_before_flip=*/true);
    while (!run.phase_over()) {
      (void)run.tick(rng);
    }
    EXPECT_GE(run.transmissions_sent(), 1U);
  }
}

TEST(DecayAblation, FlipFirstLosesToPaperOrderOnAStar) {
  // d=1 competitor: paper order always succeeds; flip-first fails half the
  // time. That's the whole point of "but at least once!".
  const graph::Graph g = graph::star(2);
  int paper_ok = 0;
  int ablated_ok = 0;
  const int trials = 600;
  for (int trial = 0; trial < trials; ++trial) {
    for (const bool send_first : {true, false}) {
      class OneShot final : public sim::Protocol {
       public:
        OneShot(bool sf) : run_(4, sim::Message{1, 0, {}}, 0.5, sf) {}
        sim::Action on_slot(sim::NodeContext& ctx) override {
          return run_.phase_over() ? sim::Action::receive()
                                   : run_.tick(ctx.rng());
        }
        DecayRun run_;
      };
      class Hub final : public sim::Protocol {
       public:
        sim::Action on_slot(sim::NodeContext&) override {
          return sim::Action::receive();
        }
        void on_receive(sim::NodeContext&, const sim::Message&) override {
          got = true;
        }
        bool got = false;
      };
      sim::Simulator s(g, sim::SimOptions{100u * trial + send_first});
      auto& hub = s.emplace_protocol<Hub>(0);
      s.emplace_protocol<OneShot>(1, send_first);
      for (int i = 0; i < 4; ++i) {
        s.step();
      }
      (send_first ? paper_ok : ablated_ok) += hub.got ? 1 : 0;
    }
  }
  EXPECT_EQ(paper_ok, trials);  // the lone neighbor always gets through
  EXPECT_LT(ablated_ok, trials);
  EXPECT_GT(ablated_ok, 0);
}

TEST(AlignmentAblation, UnalignedBroadcastStillRunsButSlower) {
  // Phase alignment is Theorem 1's hypothesis. The unaligned variant is
  // not *wrong* on easy graphs, but on collision-heavy topologies (a
  // clique) it loses the synchronized halving and pays measurably more
  // slots at equal success.
  const graph::Graph g = graph::clique(24);
  const int trials = 40;
  auto median_completion = [&](bool aligned) {
    stats::Summary s;
    for (int trial = 0; trial < trials; ++trial) {
      BroadcastParams params{
          .network_size_bound = g.node_count(),
          .degree_bound = g.max_in_degree(),
          .epsilon = 0.1,
      };
      params.align_phases = aligned;
      const NodeId sources[] = {0};
      const auto out = harness::run_bgi_broadcast(
          g, sources, params, 3000 + trial, Slot{1} << 20);
      if (out.all_informed) {
        s.add(static_cast<double>(out.completion_slot));
      }
    }
    return s;
  };
  const auto aligned = median_completion(true);
  const auto unaligned = median_completion(false);
  // Both succeed usually; the aligned variant must not be worse.
  EXPECT_GT(aligned.count(), static_cast<std::size_t>(trials * 3 / 4));
  EXPECT_GT(unaligned.count(), 0U);
  EXPECT_LE(aligned.median(), unaligned.median() + 1.0);
}

TEST(BfsAblation, LiteralPseudocodeDegradesLabels) {
  // The literal reading (one Decay per phase) gives each node only ONE
  // conflict-resolution attempt in the phase that determines its label:
  // per-node correctness drops toward P(k, d) ~ 0.7 instead of 1 - ε/N,
  // so on a deep path some label is almost always wrong.
  const graph::Graph g = graph::grid(5, 5);
  const BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.05,
  };
  const auto run_mode = [&](BfsSchedule schedule, std::uint64_t seed) {
    sim::Simulator s(g, sim::SimOptions{seed});
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == 0) {
        sim::Message m;
        m.origin = 0;
        s.emplace_protocol<BgiBfs>(v, params, m, schedule);
      } else {
        s.emplace_protocol<BgiBfs>(v, params, schedule);
      }
    }
    for (int i = 0; i < 30000; ++i) {
      s.step();
    }
    const auto truth = graph::bfs_distances(g, 0);
    std::size_t correct = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto& p = s.protocol_as<BgiBfs>(v);
      if (p.informed() && p.distance() == truth[v]) {
        ++correct;
      }
    }
    return correct == g.node_count();
  };
  int block_perfect = 0;
  int literal_perfect = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    block_perfect += run_mode(BfsSchedule::kBlockPerLayer, 10 + trial);
    literal_perfect += run_mode(BfsSchedule::kLiteralPseudocode, 10 + trial);
  }
  EXPECT_GE(block_perfect, trials * 4 / 5);
  EXPECT_LT(literal_perfect, block_perfect);
}

TEST(BroadcastAblation, FlipFirstLowersEndToEndSuccess) {
  // End-to-end on a path: the flip-first variant loses reliability because
  // a layer can go completely silent through a phase.
  const graph::Graph g = graph::path(16);
  const int trials = 60;
  auto success_rate = [&](bool send_first) {
    int ok = 0;
    for (int trial = 0; trial < trials; ++trial) {
      BroadcastParams params{
          .network_size_bound = g.node_count(),
          .degree_bound = g.max_in_degree(),
          .epsilon = 0.3,
      };
      params.send_before_flip = send_first;
      const NodeId sources[] = {0};
      const auto out = harness::run_bgi_broadcast(
          g, sources, params, 7000 + trial, Slot{1} << 20);
      ok += out.all_informed ? 1 : 0;
    }
    return static_cast<double>(ok) / trials;
  };
  const double paper = success_rate(true);
  const double ablated = success_rate(false);
  EXPECT_GE(paper, 0.7);  // 1 - ε = 0.7 target
  EXPECT_LT(ablated, paper);
}

TEST(ParameterSensitivity, DegreeUnderestimateCollapsesAtTheSink) {
  // Theorem 1 needs k >= 2 log2(d). On C_n with S = {1..n} the sink faces
  // n competitors; configuring Δ = 2 gives k = 2 and the sink essentially
  // never resolves the conflict, while the true Δ works.
  const std::size_t n = 32;
  std::vector<NodeId> all;
  for (NodeId x = 1; x <= n; ++x) {
    all.push_back(x);
  }
  const auto net = graph::make_cn(n, all);
  const auto run_with_delta = [&](std::size_t delta) {
    int ok = 0;
    const int trials = 30;
    for (int trial = 0; trial < trials; ++trial) {
      const BroadcastParams params{
          .network_size_bound = net.g.node_count(),
          .degree_bound = delta,
          .epsilon = 0.1,
          .stop_probability = 0.5,
      };
      const NodeId sources[] = {net.source};
      const auto out = harness::run_bgi_broadcast(
          net.g, sources, params, 4000 + trial, Slot{1} << 18);
      ok += out.all_informed ? 1 : 0;
    }
    return ok;
  };
  EXPECT_LE(run_with_delta(2), 3);                           // collapse
  EXPECT_GE(run_with_delta(net.g.max_in_degree()), 27);      // healthy
}

TEST(ParameterSensitivity, PolynomialNOverestimateKeepsSuccess) {
  // §1.1: N = n^2 only multiplies t by a constant; success unaffected.
  rng::Rng topo(31);
  const graph::Graph g = graph::connected_gnp(40, 0.12, topo);
  int ok = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    const BroadcastParams params{
        .network_size_bound = g.node_count() * g.node_count(),
        .degree_bound = g.max_in_degree(),
        .epsilon = 0.1,
        .stop_probability = 0.5,
    };
    const NodeId sources[] = {0};
    const auto out = harness::run_bgi_broadcast(g, sources, params,
                                                6000 + trial, Slot{1} << 20);
    ok += out.all_informed ? 1 : 0;
  }
  EXPECT_GE(ok, 22);
}

}  // namespace
}  // namespace radiocast::proto
