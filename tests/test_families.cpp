#include "radiocast/graph/families.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "radiocast/graph/algorithms.hpp"

namespace radiocast::graph {
namespace {

TEST(CnFamily, Structure) {
  const NodeId s[] = {2, 5};
  const CnNetwork net = make_cn(6, s);
  EXPECT_EQ(net.n(), 6U);
  EXPECT_EQ(net.g.node_count(), 8U);
  EXPECT_EQ(net.source, 0U);
  EXPECT_EQ(net.sink, 7U);
  // Source connected to the entire second layer.
  for (NodeId i = 1; i <= 6; ++i) {
    EXPECT_TRUE(net.g.has_edge(0, i));
  }
  // Sink connected exactly to S.
  EXPECT_TRUE(net.g.has_edge(2, 7));
  EXPECT_TRUE(net.g.has_edge(5, 7));
  EXPECT_EQ(net.g.in_degree(7), 2U);
  // No source-sink edge, no intra-layer edges.
  EXPECT_FALSE(net.g.has_edge(0, 7));
  EXPECT_FALSE(net.g.has_edge(1, 2));
}

TEST(CnFamily, DiameterIsAtMostThree) {
  const NodeId s[] = {1};
  EXPECT_EQ(diameter(make_cn(5, s).g), 3U);
  const NodeId all[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(diameter(make_cn(5, all).g), 2U);
}

TEST(CnFamily, UnsortedInputIsSorted) {
  const NodeId s[] = {4, 1, 3};
  const CnNetwork net = make_cn(5, s);
  EXPECT_TRUE(std::ranges::is_sorted(net.s));
  EXPECT_EQ(net.s.size(), 3U);
}

TEST(CnFamily, RejectsBadS) {
  const std::vector<NodeId> empty;
  EXPECT_THROW(make_cn(5, empty), ContractViolation);
  const NodeId zero[] = {0};
  EXPECT_THROW(make_cn(5, zero), ContractViolation);
  const NodeId big[] = {6};
  EXPECT_THROW(make_cn(5, big), ContractViolation);
  const NodeId dup[] = {2, 2};
  EXPECT_THROW(make_cn(5, dup), ContractViolation);
}

TEST(CnFamily, RandomSIsValid) {
  rng::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const CnNetwork net = make_cn_random(10, rng);
    EXPECT_FALSE(net.s.empty());
    EXPECT_GE(net.s.front(), 1U);
    EXPECT_LE(net.s.back(), 10U);
  }
}

TEST(CnStarFamily, Structure) {
  const NodeId s[] = {1, 3};
  const NodeId r[] = {5, 6, 8};
  const CnStarNetwork net = make_cn_star(4, s, r);
  EXPECT_EQ(net.n(), 4U);
  EXPECT_EQ(net.g.node_count(), 9U);
  for (NodeId i = 1; i <= 4; ++i) {
    EXPECT_TRUE(net.g.has_edge(0, i));
  }
  for (const NodeId i : net.s) {
    for (const NodeId j : net.sinks) {
      EXPECT_TRUE(net.g.has_edge(i, j));
    }
  }
  // Non-S second layer not connected to sinks.
  EXPECT_FALSE(net.g.has_edge(2, 5));
  // Sink 7 not in R: isolated.
  EXPECT_EQ(net.g.in_degree(7), 0U);
}

TEST(CnStarFamily, RejectsBadRanges) {
  const NodeId s[] = {1};
  const NodeId r_low[] = {4};  // must be >= n+1 = 5
  EXPECT_THROW(make_cn_star(4, s, r_low), ContractViolation);
  const NodeId r_ok[] = {5};
  const NodeId s_high[] = {5};
  EXPECT_THROW(make_cn_star(4, s_high, r_ok), ContractViolation);
}

TEST(CnStarFamily, RandomInstance) {
  rng::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const CnStarNetwork net = make_cn_star_random(8, rng);
    EXPECT_FALSE(net.s.empty());
    EXPECT_FALSE(net.sinks.empty());
    EXPECT_GE(net.sinks.front(), 9U);
    EXPECT_LE(net.sinks.back(), 16U);
  }
}

TEST(Subsets, RandomNonemptySubsetBounds) {
  rng::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto s = random_nonempty_subset(3, 9, rng);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(std::ranges::is_sorted(s));
    EXPECT_GE(s.front(), 3U);
    EXPECT_LE(s.back(), 9U);
  }
}

TEST(Subsets, SingletonRange) {
  rng::Rng rng(4);
  const auto s = random_nonempty_subset(5, 5, rng);
  ASSERT_EQ(s.size(), 1U);
  EXPECT_EQ(s[0], 5U);
}

TEST(Subsets, FromMask) {
  const auto s = subset_from_mask(6, 0b101001);
  const std::vector<NodeId> expected{1, 4, 6};
  EXPECT_EQ(s, expected);
  EXPECT_TRUE(subset_from_mask(6, 0).empty());
}

}  // namespace
}  // namespace radiocast::graph
