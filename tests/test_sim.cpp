#include "radiocast/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "radiocast/graph/generators.hpp"

namespace radiocast::sim {
namespace {

/// Transmits every slot; tag = own id.
class Beacon final : public Protocol {
 public:
  Action on_slot(NodeContext& ctx) override {
    Message m;
    m.origin = ctx.id();
    m.tag = ctx.id();
    return Action::transmit(m);
  }
};

/// Always listens; records everything.
class Listener final : public Protocol {
 public:
  Action on_slot(NodeContext&) override { return Action::receive(); }
  void on_receive(NodeContext& ctx, const Message& m) override {
    heard.emplace_back(ctx.now(), m);
  }
  void on_collision(NodeContext&) override { ++collisions; }

  std::vector<std::pair<Slot, Message>> heard;
  int collisions = 0;
};

/// Transmits exactly on the given slots, otherwise listens.
class Scripted final : public Protocol {
 public:
  explicit Scripted(std::set<Slot> when) : when_(std::move(when)) {}
  Action on_slot(NodeContext& ctx) override {
    if (when_.contains(ctx.now())) {
      Message m;
      m.origin = ctx.id();
      m.tag = 100 + ctx.id();
      return Action::transmit(m);
    }
    return Action::receive();
  }
  void on_receive(NodeContext& ctx, const Message& m) override {
    heard.emplace_back(ctx.now(), m);
  }

  std::vector<std::pair<Slot, Message>> heard;

 private:
  std::set<Slot> when_;
};

class Idler final : public Protocol {
 public:
  Action on_slot(NodeContext&) override { return Action::idle(); }
  void on_receive(NodeContext&, const Message&) override { ++received; }
  int received = 0;
};

graph::Graph triangle() {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

TEST(Simulator, SingleTransmitterDelivers) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.step();
  ASSERT_EQ(listener.heard.size(), 1U);
  EXPECT_EQ(listener.heard[0].first, 0U);
  EXPECT_EQ(listener.heard[0].second.tag, 0U);
}

TEST(Simulator, TwoTransmittersCollide) {
  Simulator s(triangle(), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Beacon>(1);
  auto& listener = s.emplace_protocol<Listener>(2);
  s.step();
  EXPECT_TRUE(listener.heard.empty());
  // Without CD the collision callback must NOT fire.
  EXPECT_EQ(listener.collisions, 0);
  EXPECT_EQ(s.trace().total_collisions(), 1U);
}

TEST(Simulator, CollisionDetectionCallback) {
  Simulator s(triangle(), SimOptions{.seed = 1, .collision_detection = true});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Beacon>(1);
  auto& listener = s.emplace_protocol<Listener>(2);
  s.step();
  EXPECT_EQ(listener.collisions, 1);
}

TEST(Simulator, TransmitterHearsNothing) {
  // 0 and 1 both transmit at slot 0; although each is the other's sole
  // transmitting neighbor, neither is receiving.
  Simulator s(graph::path(2), SimOptions{});
  auto& a = s.emplace_protocol<Scripted>(0, std::set<Slot>{0});
  auto& b = s.emplace_protocol<Scripted>(1, std::set<Slot>{0});
  s.step();
  EXPECT_TRUE(a.heard.empty());
  EXPECT_TRUE(b.heard.empty());
  EXPECT_EQ(s.trace().total_deliveries(), 0U);
}

TEST(Simulator, IdleNodeHearsNothing) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& idler = s.emplace_protocol<Idler>(1);
  s.step();
  EXPECT_EQ(idler.received, 0);
}

TEST(Simulator, DeliveryFollowsArcDirection) {
  graph::Graph g(2);
  g.add_arc(0, 1);  // 0 can be heard by 1, not vice versa
  {
    Simulator s(g, SimOptions{});
    s.emplace_protocol<Beacon>(0);
    auto& listener = s.emplace_protocol<Listener>(1);
    s.step();
    EXPECT_EQ(listener.heard.size(), 1U);
  }
  {
    Simulator s(g, SimOptions{});
    auto& listener = s.emplace_protocol<Listener>(0);
    s.emplace_protocol<Beacon>(1);
    s.step();
    EXPECT_TRUE(listener.heard.empty());
  }
}

TEST(Simulator, NonNeighborNotHeard) {
  Simulator s(graph::path(3), SimOptions{});  // 0-1-2
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Idler>(1);
  auto& far = s.emplace_protocol<Listener>(2);
  s.step();
  EXPECT_TRUE(far.heard.empty());
}

TEST(Simulator, CrashedNodeIsDeafAndMute) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().crash(0);
  s.step();
  EXPECT_TRUE(listener.heard.empty());
  s.network().revive(0);
  s.step();
  EXPECT_EQ(listener.heard.size(), 1U);
}

TEST(Simulator, TraceCounters) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Listener>(1);
  for (int i = 0; i < 5; ++i) {
    s.step();
  }
  EXPECT_EQ(s.trace().total_transmissions(), 5U);
  EXPECT_EQ(s.trace().transmissions_of(0), 5U);
  EXPECT_EQ(s.trace().total_deliveries(), 5U);
  EXPECT_EQ(s.trace().deliveries_to(1), 5U);
  EXPECT_EQ(s.trace().first_delivery(1), 0U);
  EXPECT_EQ(s.trace().first_delivery(0), kNever);
}

TEST(Simulator, SlotRecordsWhenEnabled) {
  Simulator s(triangle(), SimOptions{.seed = 1, .collision_detection = false,
                                     .trace_slots = true});
  s.emplace_protocol<Scripted>(0, std::set<Slot>{0, 1});
  s.emplace_protocol<Scripted>(1, std::set<Slot>{1});
  s.emplace_protocol<Listener>(2);
  s.step();
  s.step();
  const auto& slots = s.trace().slots();
  ASSERT_EQ(slots.size(), 2U);
  EXPECT_EQ(slots[0].transmitters, (std::vector<NodeId>{0}));
  ASSERT_EQ(slots[0].deliveries.size(), 2U);  // nodes 1 and 2 hear 0
  EXPECT_EQ(slots[1].transmitters, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(slots[1].collision_receivers, (std::vector<NodeId>{2}));
}

TEST(Simulator, RunUntilStopsOnPredicate) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Listener>(1);
  const Slot end = s.run_until(
      [](const Simulator& sim) { return sim.trace().total_deliveries() >= 3; },
      100);
  EXPECT_EQ(end, 3U);
}

TEST(Simulator, RunUntilHonorsMaxSlots) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Idler>(0);
  s.emplace_protocol<Idler>(1);
  const Slot end = s.run_until([](const Simulator&) { return false; }, 17);
  EXPECT_EQ(end, 17U);
}

TEST(Simulator, StepRequiresAllProtocols) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  EXPECT_THROW(s.step(), ContractViolation);
}

TEST(Simulator, ProtocolAsTypeChecks) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  s.emplace_protocol<Listener>(1);
  EXPECT_NO_THROW(s.protocol_as<Beacon>(0));
  EXPECT_THROW(s.protocol_as<Listener>(0), ContractViolation);
}

TEST(Simulator, InstallAll) {
  Simulator s(graph::path(3), SimOptions{});
  s.install_all([](NodeId) { return std::make_unique<Idler>(); });
  s.step();
  EXPECT_EQ(s.now(), 1U);
}

TEST(Simulator, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    rng::Rng topo(9);
    Simulator s(graph::connected_gnp(30, 0.1, topo), SimOptions{seed});
    // Every node transmits with probability 1/2 each slot: exercises the
    // per-node rng streams.
    class Flipper final : public Protocol {
     public:
      Action on_slot(NodeContext& ctx) override {
        if (ctx.rng().fair_coin()) {
          Message m;
          m.origin = ctx.id();
          return Action::transmit(m);
        }
        return Action::receive();
      }
    };
    s.install_all([](NodeId) { return std::make_unique<Flipper>(); });
    for (int i = 0; i < 50; ++i) {
      s.step();
    }
    return std::pair{s.trace().total_transmissions(),
                     s.trace().total_deliveries()};
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Simulator, MessageContentDeliveredVerbatim) {
  Simulator s(graph::path(2), SimOptions{});
  class PayloadBeacon final : public Protocol {
   public:
    Action on_slot(NodeContext& ctx) override {
      Message m;
      m.origin = ctx.id();
      m.tag = 77;
      m.data = {1, 2, 3};
      return Action::transmit(m);
    }
  };
  s.emplace_protocol<PayloadBeacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.step();
  ASSERT_EQ(listener.heard.size(), 1U);
  EXPECT_EQ(listener.heard[0].second.tag, 77U);
  EXPECT_EQ(listener.heard[0].second.data, (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace radiocast::sim
