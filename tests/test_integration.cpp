// Cross-module integration tests: whole-pipeline scenarios that tie the
// generators, simulator, protocols, bounds and the lower-bound machinery
// together — miniature versions of the bench experiments.
#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/lb/reduction.hpp"
#include "radiocast/lb/strategies.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/stats/chernoff.hpp"
#include "radiocast/stats/summary.hpp"

namespace radiocast {
namespace {

proto::BroadcastParams params_for(const graph::Graph& g, double eps) {
  return proto::BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = eps,
      .stop_probability = 0.5,
  };
}

TEST(Integration, MessageComplexityStaysUnderPaperBound) {
  // §2.2 property 2: expected transmissions <= 2 n ceil(log2(N/ε)).
  rng::Rng topo(1);
  const graph::Graph g = graph::connected_gnp(60, 0.08, topo);
  const double eps = 0.1;
  const auto params = params_for(g, eps);
  const double bound =
      stats::message_complexity_bound(g.node_count(), g.node_count(), eps);
  stats::Summary tx;
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId sources[] = {0};
    const auto out = harness::run_bgi_broadcast(g, sources, params,
                                                40 + trial, 1 << 20);
    tx.add(static_cast<double>(out.transmissions));
  }
  EXPECT_LE(tx.mean(), bound);
}

TEST(Integration, ExponentialGapSnapshotOnCn) {
  // Corollary 13 in miniature: on C_n the randomized protocol is
  // polylog(n) while deterministic baselines pay Θ(n).
  const std::size_t n = 48;
  const NodeId worst_s[] = {static_cast<NodeId>(n)};
  const auto net = graph::make_cn(n, worst_s);
  const auto params = params_for(net.g, 0.1);

  // Randomized: median completion over trials.
  stats::Summary randomized;
  int successes = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId sources[] = {net.source};
    const auto out = harness::run_bgi_broadcast(net.g, sources, params,
                                                90 + trial, 1 << 20);
    if (out.all_informed) {
      ++successes;
      randomized.add(static_cast<double>(out.completion_slot));
    }
  }
  ASSERT_GE(successes, 10);

  // Deterministic baselines on the same instance.
  const auto dfs = harness::run_dfs_broadcast(net.g, net.source, 8 * n);
  const auto rr = harness::run_round_robin(net.g, net.source, 16 * n * n);
  ASSERT_TRUE(dfs.all_heard);
  ASSERT_TRUE(rr.all_heard);

  // The gap: randomized median well below n; deterministic at least ~n.
  EXPECT_LT(randomized.median(), static_cast<double>(n) / 2);
  EXPECT_GE(dfs.completion_slot + 1, n / 2);
  EXPECT_GE(rr.completion_slot + 1, n - 1);
}

TEST(Integration, DynamicTopologySurvivesEdgeChurn) {
  // §2.2 property 3: edges may come and go while the stable core stays
  // connected. Core: a path 0..n-1. Churn: extra chords flap every few
  // slots.
  const std::size_t n = 24;
  graph::Graph g = graph::path(n);
  // Pre-install chords that will be removed, and schedule churn.
  std::vector<sim::TopologyEvent> events;
  for (NodeId i = 0; i + 4 < n; i += 3) {
    g.add_edge(i, i + 4);
    events.push_back({static_cast<Slot>(2 + i), sim::EventKind::kRemoveEdge,
                      i, static_cast<NodeId>(i + 4)});
    events.push_back({static_cast<Slot>(30 + i), sim::EventKind::kAddEdge,
                      i, static_cast<NodeId>(i + 4)});
  }
  const auto params = params_for(g, 0.1);
  int successes = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const NodeId sources[] = {0};
    const auto out = harness::run_bgi_broadcast(g, sources, params,
                                                60 + trial, 1 << 20, events);
    successes += out.all_informed ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(successes) / trials, 0.8);
}

TEST(Integration, CrashedLeafOnlyAffectsItself) {
  // Fail-stop of a leaf: everyone else still gets the message.
  const std::size_t n = 16;
  graph::Graph g = graph::path(n);
  std::vector<sim::TopologyEvent> events{
      {0, sim::EventKind::kCrashNode, static_cast<NodeId>(n - 1), kNoNode}};
  const auto params = params_for(g, 0.1);
  const NodeId sources[] = {0};
  const auto out =
      harness::run_bgi_broadcast(g, sources, params, 3, 1 << 20, events);
  // The crashed node can't be informed, so all_informed is false; but the
  // run must have informed everyone else. Re-check via a custom sim is
  // overkill: instead verify the run ran to activity death, not timeout.
  EXPECT_FALSE(out.all_informed);
  EXPECT_LT(out.slots_run, Slot{1} << 20);
}

TEST(Integration, AbstractLowerBoundMatchesRadioSimulationOnCn) {
  // The abstract round-robin protocol and the full radio-simulator
  // round-robin agree about C_n hardness: both need ~n slots against the
  // worst S.
  const std::size_t n = 16;
  lb::RoundRobinAbstract rr;
  const lb::WorstCase w = lb::exhaustive_worst_case(rr, n, 10 * n);
  EXPECT_EQ(w.rounds, n);

  const auto net = graph::make_cn(n, w.argmax_s);
  const auto out = harness::run_round_robin(net.g, net.source, 100 * n);
  ASSERT_TRUE(out.all_heard);
  EXPECT_GE(out.completion_slot, n - 1);
}

TEST(Integration, Theorem4HoldsAcrossDiameterSweep) {
  // Sweep D with n (roughly) fixed using path_of_cliques; completion must
  // stay within the Theorem-4 slot bound in the vast majority of runs.
  const double eps = 0.1;
  int total = 0;
  int within = 0;
  for (const std::size_t layers : {2U, 4U, 8U, 16U}) {
    const std::size_t width = 32 / layers;
    const graph::Graph g = graph::path_of_cliques(layers, width);
    const auto d = graph::diameter(g);
    const auto params = params_for(g, eps);
    const double bound = stats::theorem4_delivery_slots(
        d, g.node_count(), g.max_in_degree(), eps);
    for (int trial = 0; trial < 10; ++trial) {
      const NodeId sources[] = {0};
      const auto out = harness::run_bgi_broadcast(g, sources, params,
                                                  500 + trial, 1 << 20);
      ++total;
      if (out.all_informed &&
          static_cast<double>(out.completion_slot) <= bound) {
        ++within;
      }
    }
  }
  EXPECT_GE(within, total * 8 / 10);
}

TEST(Integration, SpontaneousModelLowerBoundSurvivesOnCnStar) {
  // §3.5: in C*_n both S and R are hidden, so the 3-round trick dies; the
  // hitting-game adversary applies to the S-side exactly as before. Here:
  // the foiled scan explorer still needs > n/2 moves — the reduction
  // object is the same game.
  lb::ScanSingletonsStrategy scan;
  const std::size_t n = 30;
  const auto outcome = lb::foil_strategy(scan, n, n / 2);
  ASSERT_TRUE(outcome.has_value());
  // And the C*_n instance built from the foiling S is a valid network.
  rng::Rng rng(5);
  const auto r =
      graph::random_nonempty_subset(static_cast<NodeId>(n + 1),
                                    static_cast<NodeId>(2 * n), rng);
  const auto net = graph::make_cn_star(n, outcome->s, r);
  EXPECT_EQ(net.g.node_count(), 2 * n + 1);
  // Every hidden sink is exactly 2 hops from the source (via any S member).
  const auto dist = graph::bfs_distances(net.g, net.source);
  for (const NodeId sink : net.sinks) {
    EXPECT_EQ(dist[sink], 2U);
  }
}

}  // namespace
}  // namespace radiocast
