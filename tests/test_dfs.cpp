#include "radiocast/proto/dfs_broadcast.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"

namespace radiocast::proto {
namespace {

TEST(DfsBroadcast, SingleNodeFinishesImmediately) {
  const auto out = harness::run_dfs_broadcast(graph::path(1), 0, 10);
  EXPECT_TRUE(out.all_heard);             // vacuous: no non-source nodes
  EXPECT_EQ(out.completion_slot, 0U);     // vacuously complete at slot 0
  EXPECT_EQ(out.transmissions, 0U);
}

TEST(DfsBroadcast, TwoNodes) {
  const auto out = harness::run_dfs_broadcast(graph::path(2), 0, 10);
  EXPECT_TRUE(out.all_heard);
  EXPECT_EQ(out.completion_slot, 0U);
  EXPECT_LE(out.slots_run, 4U);  // 2n = 4
}

TEST(DfsBroadcast, PathCompletesWithin2n) {
  for (const std::size_t n : {3U, 5U, 10U, 25U}) {
    const auto out =
        harness::run_dfs_broadcast(graph::path(n), 0, 4 * n);
    EXPECT_TRUE(out.all_heard) << "n=" << n;
    EXPECT_LE(out.slots_run, 2 * n) << "n=" << n;
  }
}

TEST(DfsBroadcast, CliqueCompletesWithin2n) {
  const std::size_t n = 12;
  const auto out = harness::run_dfs_broadcast(graph::clique(n), 0, 4 * n);
  EXPECT_TRUE(out.all_heard);
  EXPECT_LE(out.slots_run, 2 * n);
  // In a clique one forward transmission informs everyone.
  EXPECT_EQ(out.completion_slot, 0U);
}

TEST(DfsBroadcast, GridFromCorner) {
  const auto g = graph::grid(5, 6);
  const auto out = harness::run_dfs_broadcast(g, 0, 4 * g.node_count());
  EXPECT_TRUE(out.all_heard);
  EXPECT_LE(out.slots_run, 2 * g.node_count());
}

TEST(DfsBroadcast, RandomGraphsAlwaysWithin2n) {
  rng::Rng topo(3);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = graph::connected_gnp(40, 0.08, topo);
    const auto out = harness::run_dfs_broadcast(g, 0, 4 * g.node_count());
    EXPECT_TRUE(out.all_heard);
    EXPECT_LE(out.slots_run, 2 * g.node_count());
  }
}

TEST(DfsBroadcast, TreesTakeNearly2n) {
  // On a path from an end, DFS must walk down and back: ~2n slots. This is
  // the worst case that makes the deterministic bound tight.
  const std::size_t n = 30;
  const auto out = harness::run_dfs_broadcast(graph::path(n), 0, 4 * n);
  EXPECT_TRUE(out.all_heard);
  EXPECT_GE(out.slots_run, n);  // definitely linear
}

TEST(DfsBroadcast, NeverCollides) {
  // Only the token holder transmits: the trace must show zero collisions.
  rng::Rng topo(4);
  const auto g = graph::connected_gnp(30, 0.15, topo);
  sim::Simulator s(g, sim::SimOptions{});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      s.emplace_protocol<DfsBroadcast>(v, m);
    } else {
      s.emplace_protocol<DfsBroadcast>(v);
    }
  }
  s.run_until(
      [](const sim::Simulator& sim) {
        return sim.protocol_as<DfsBroadcast>(0).traversal_complete();
      },
      static_cast<Slot>(4 * g.node_count()));
  EXPECT_EQ(s.trace().total_collisions(), 0U);
  // And at most one transmitter per slot (transmissions == slots used with
  // a transmitter): total transmissions <= slots run.
  EXPECT_LE(s.trace().total_transmissions(), s.now());
}

TEST(DfsBroadcast, SourceReportsTraversalComplete) {
  const auto g = graph::cycle(8);
  sim::Simulator s(g, sim::SimOptions{});
  sim::Message m;
  m.origin = 0;
  auto& source = s.emplace_protocol<DfsBroadcast>(0, m);
  for (NodeId v = 1; v < 8; ++v) {
    s.emplace_protocol<DfsBroadcast>(v);
  }
  EXPECT_FALSE(source.traversal_complete());
  for (int i = 0; i < 32; ++i) {
    s.step();
  }
  EXPECT_TRUE(source.traversal_complete());
}

TEST(DfsBroadcast, PayloadSurvivesTheTraversal) {
  const auto g = graph::path(5);
  sim::Simulator s(g, sim::SimOptions{});
  sim::Message m;
  m.origin = 0;
  m.data = {0xABCD, 0x1234};
  s.emplace_protocol<DfsBroadcast>(0, m);
  for (NodeId v = 1; v < 5; ++v) {
    s.emplace_protocol<DfsBroadcast>(v);
  }
  for (int i = 0; i < 20; ++i) {
    s.step();
  }
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(s.protocol_as<DfsBroadcast>(v).informed()) << "node " << v;
  }
}

TEST(DfsBroadcast, WorksOnCnWorstCase) {
  // On C_n the DFS pays Θ(n) even though the diameter is 3 — the behaviour
  // Theorem 12 says is unavoidable for deterministic protocols.
  const std::size_t n = 20;
  const NodeId s_members[] = {static_cast<NodeId>(n)};  // sink behind node n
  const auto net = graph::make_cn(n, s_members);
  const auto out =
      harness::run_dfs_broadcast(net.g, net.source, 8 * (n + 2));
  EXPECT_TRUE(out.all_heard);
  EXPECT_GE(out.completion_slot, n - 2);  // had to walk most of layer 2
}

TEST(DfsBroadcast, RequiresSymmetricNetwork) {
  graph::Graph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  EXPECT_THROW(harness::run_dfs_broadcast(g, 0, 100), ContractViolation);
}

}  // namespace
}  // namespace radiocast::proto
