#include "radiocast/proto/bfs.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/stats/chernoff.hpp"

namespace radiocast::proto {
namespace {

BroadcastParams params_for(const graph::Graph& g, double epsilon = 0.1) {
  return BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = epsilon,
      .stop_probability = 0.5,
  };
}

TEST(BgiBfs, RootHasDistanceZero) {
  sim::Message m;
  m.origin = 0;
  const BgiBfs root(params_for(graph::path(4)), m);
  EXPECT_TRUE(root.informed());
  EXPECT_EQ(root.distance(), 0U);
}

TEST(BgiBfs, UninformedHasNoLabel) {
  const BgiBfs node(params_for(graph::path(4)));
  EXPECT_FALSE(node.informed());
  EXPECT_THROW(node.distance(), ContractViolation);
}

TEST(BgiBfs, PhaseLengthIsKTimesT) {
  const auto params = params_for(graph::star(9), 0.25);
  const BgiBfs node(params);
  EXPECT_EQ(node.phase_length(),
            params.phase_length() * params.repetitions());
}

TEST(BgiBfs, CorrectLabelsOnAPath) {
  const graph::Graph g = graph::path(8);
  int correct_runs = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out =
        harness::run_bgi_bfs(g, 0, params_for(g, 0.1), 100 + trial, 100000);
    correct_runs += out.labels_correct ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(correct_runs) / trials, 0.8);
}

TEST(BgiBfs, CorrectLabelsOnAGrid) {
  const graph::Graph g = graph::grid(5, 5);
  int correct_runs = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out =
        harness::run_bgi_bfs(g, 12, params_for(g, 0.1), 200 + trial, 100000);
    correct_runs += out.labels_correct ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(correct_runs) / trials, 0.8);
}

TEST(BgiBfs, CorrectLabelsOnRandomTrees) {
  rng::Rng topo(5);
  int correct_runs = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = graph::random_tree(40, topo);
    const auto out =
        harness::run_bgi_bfs(g, 0, params_for(g, 0.1), 300 + trial, 200000);
    correct_runs += out.labels_correct ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(correct_runs) / trials, 0.8);
}

TEST(BgiBfs, FinishesWithinPaperSlotBound) {
  const graph::Graph g = graph::path(6);
  const auto d = graph::diameter(g);
  const auto params = params_for(g, 0.1);
  const double bound = stats::bfs_slot_bound(d, g.node_count(),
                                             g.max_in_degree(), 0.1);
  int within = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const auto out =
        harness::run_bgi_bfs(g, 0, params, 400 + trial, 1000000);
    if (out.labels_correct) {
      // Every label was assigned by phase D, i.e. within D phase lengths,
      // plus the trailing repetitions of the deepest layer.
      const double slack =
          bound + static_cast<double>(params.phase_length()) *
                      params.repetitions() * params.repetitions();
      EXPECT_LE(static_cast<double>(out.slots_run), slack);
      ++within;
    }
  }
  EXPECT_GE(within, 14);
}

TEST(BgiBfs, LabelsNeverUnderestimate) {
  // A node at true distance L cannot possibly be labelled < L: the message
  // physically needs L hops and every hop costs at least one phase.
  rng::Rng topo(6);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::connected_gnp(30, 0.1, topo);
    const auto truth = graph::bfs_distances(g, 0);
    const auto params = params_for(g, 0.2);
    sim::Simulator s(g, sim::SimOptions{900u + trial});
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == 0) {
        sim::Message m;
        m.origin = 0;
        s.emplace_protocol<BgiBfs>(v, params, m);
      } else {
        s.emplace_protocol<BgiBfs>(v, params);
      }
    }
    for (int i = 0; i < 20000; ++i) {
      s.step();
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto& p = s.protocol_as<BgiBfs>(v);
      if (p.informed()) {
        EXPECT_GE(p.distance(), truth[v]) << "node " << v;
      }
    }
  }
}

}  // namespace
}  // namespace radiocast::proto
