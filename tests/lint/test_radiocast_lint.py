#!/usr/bin/env python3
"""Self-test for scripts/radiocast_lint.py.

Every rule R1-R5 is exercised against a fixture file containing exactly
one deliberate violation; the assertions pin the *exact* rule id and
``file:line`` output plus the exit-code contract (clean tree -> 0,
violation -> 1, malformed suppression -> 2).  The regex engine is forced
so the expectations do not depend on whether libclang is installed.

Run directly (``python3 tests/lint/test_radiocast_lint.py``) or via
ctest (registered as LintSelfTest).  Stdlib-only.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import unittest

ROOT = pathlib.Path(__file__).resolve().parents[2]
LINT = ROOT / "scripts" / "radiocast_lint.py"
FIXTURES = pathlib.Path("tests/lint/fixtures")


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), "--root", str(ROOT),
         "--engine", "regex", *args],
        capture_output=True, text=True, cwd=ROOT, check=False)


class CleanTree(unittest.TestCase):
    def test_full_walk_is_clean(self):
        proc = run_lint()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_summary_reports_suppression_count(self):
        proc = run_lint()
        self.assertRegex(proc.stdout, r"\d+ suppression\(s\) in use")

    def test_rule_catalog_lists_all_five_rules(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("R1", "R2", "R3", "R4", "R5"):
            self.assertIn(rule, proc.stdout)


class Fixtures(unittest.TestCase):
    """One deliberate violation per rule, pinned to file:line: rule."""

    # fixture path -> (line, rule)
    EXPECTED = {
        "r1_mt19937.cpp": (8, "R1"),
        "sim/r2_wallclock.cpp": (7, "R2"),
        "obs/r3_unordered_iter.cpp": (8, "R3"),
        "r4_duplicate_salt.cpp": (9, "R4"),
        "proto/r5_static_state.cpp": (8, "R5"),
    }

    def test_each_rule_has_a_failing_fixture(self):
        for rel, (line, rule) in self.EXPECTED.items():
            fixture = FIXTURES / rel
            with self.subTest(fixture=str(fixture)):
                proc = run_lint(str(fixture))
                self.assertEqual(proc.returncode, 1,
                                 proc.stdout + proc.stderr)
                expected = f"{fixture.as_posix()}:{line}: {rule}:"
                self.assertIn(expected, proc.stdout)

    def test_violation_messages_name_only_their_rule(self):
        # A fixture must not trip rules it was not built for.
        for rel, (_, rule) in self.EXPECTED.items():
            proc = run_lint(str(FIXTURES / rel))
            with self.subTest(fixture=rel):
                flagged = [ln for ln in proc.stdout.splitlines()
                           if ": R" in ln]
                self.assertEqual(len(flagged), 1, proc.stdout)
                self.assertIn(f" {rule}: ", flagged[0])


class Suppressions(unittest.TestCase):
    def test_valid_suppression_lints_clean_and_is_counted(self):
        proc = run_lint(str(FIXTURES / "sim/ok_suppressed.cpp"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("1 suppression(s) in use", proc.stdout)

    def test_malformed_suppression_exits_2(self):
        fixture = FIXTURES / "sim/malformed_suppression.cpp"
        proc = run_lint(str(fixture))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn(f"{fixture.as_posix()}:7: SUPPRESSION:", proc.stdout)
        self.assertIn("unknown rule 'R9'", proc.stdout)


class EngineSelection(unittest.TestCase):
    def test_explicit_clang_engine_errors_cleanly_when_unavailable(self):
        try:
            import clang.cindex  # noqa: F401
            self.skipTest("libclang bindings are installed")
        except ImportError:
            pass
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(ROOT),
             "--engine", "clang"],
            capture_output=True, text=True, cwd=ROOT, check=False)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("libclang bindings are unavailable", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
