#!/usr/bin/env python3
"""Self-test for the radiocast_lint package.

Every rule R1-R9 is exercised against a fixture file with deliberate
violations; the assertions pin the *exact* rule id and ``file:line``
output plus the exit-code contract (clean tree -> 0, violation or budget
mismatch -> 1, malformed suppression or usage error -> 2).

The line-based rules (R1-R6, R9) are tested under the forced regex
engine so the expectations hold with or without libclang.  The AST rules
(R7, R8) are clang-only: their fixture tests run when the libclang
bindings import and skip otherwise — CI's lint job installs them, so the
clang expectations are enforced where the clang engine is the one that
gates the tree.

Run directly (``python3 tests/lint/test_radiocast_lint.py``) or via
ctest (registered as LintSelfTest).  Stdlib-only.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parents[2]
LINT = ROOT / "scripts" / "radiocast_lint.py"
FIXTURES = pathlib.Path("tests/lint/fixtures")

try:
    sys.path.insert(0, str(ROOT / "scripts"))
    from radiocast_lint import clang_engine
    HAVE_CLANG = clang_engine.load() is not None
except Exception:
    HAVE_CLANG = False

needs_clang = unittest.skipUnless(
    HAVE_CLANG, "libclang bindings unavailable (clang engine is CI-only)")


def run_lint(*args: str, engine: str = "regex") -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), "--root", str(ROOT),
         "--engine", engine, *args],
        capture_output=True, text=True, cwd=ROOT, check=False)


def flagged_lines(stdout: str) -> set:
    """The set of (path, line, rule) triples printed as violations."""
    out = set()
    for ln in stdout.splitlines():
        parts = ln.split(": ")
        if len(parts) >= 3 and parts[1].startswith("R") \
                and parts[1][1:].isdigit():
            path, lineno = parts[0].rsplit(":", 1)
            out.add((path, int(lineno), parts[1]))
    return out


class CleanTree(unittest.TestCase):
    def test_full_walk_is_clean(self):
        proc = run_lint()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_summary_reports_suppression_count(self):
        proc = run_lint()
        self.assertRegex(proc.stdout, r"\d+ suppression\(s\) in use")

    def test_regex_engine_discloses_unchecked_rules(self):
        proc = run_lint()
        self.assertIn("R7/R8 not checked (clang engine only)", proc.stdout)

    def test_rule_catalog_lists_all_nine_rules_with_scopes(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"):
            self.assertIn(rule, proc.stdout)
        self.assertEqual(proc.stdout.count("scope:"), 9)
        self.assertIn("common/", proc.stdout)   # R9's extended scope
        self.assertIn("salts.hpp", proc.stdout)  # R6's registry

    def test_docs_budget_matches_tree(self):
        # The same gate CI runs: the budget line in docs/STATIC_ANALYSIS.md
        # must equal the tree's annotation inventory.
        proc = run_lint("--budget", "docs/STATIC_ANALYSIS.md")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("budget", proc.stdout)


class Fixtures(unittest.TestCase):
    """Deliberate violations per rule, pinned to file:line: rule."""

    # fixture path -> exact set of (line, rule) the regex engine reports
    EXPECTED = {
        "r1_mt19937.cpp": {(8, "R1")},
        "sim/r2_wallclock.cpp": {(7, "R2")},
        "obs/r3_unordered_iter.cpp": {(8, "R3")},
        "r4_duplicate_salt.cpp": {(7, "R6"), (9, "R4"), (9, "R6")},
        "proto/r5_static_state.cpp": {(8, "R5")},
        "proto/r6_literal_salt.cpp": {(8, "R6"), (13, "R6")},
        "common/r9_env_read.cpp": {(7, "R9")},
    }

    def test_each_rule_fixture_reports_exactly_its_violations(self):
        for rel, expected in self.EXPECTED.items():
            fixture = FIXTURES / rel
            with self.subTest(fixture=str(fixture)):
                proc = run_lint(str(fixture))
                self.assertEqual(proc.returncode, 1,
                                 proc.stdout + proc.stderr)
                want = {(fixture.as_posix(), line, rule)
                        for line, rule in expected}
                self.assertEqual(flagged_lines(proc.stdout), want,
                                 proc.stdout)

    def test_clang_only_fixtures_pass_regex_engine_with_notice(self):
        # The regex engine must not guess at AST rules: the R7/R8
        # fixtures lint clean under it, and the summary discloses the
        # unchecked rules instead of silently passing.
        for rel in ("sim/r7_shared_write.cpp",
                    "harness/r8_float_accumulation.cpp"):
            with self.subTest(fixture=rel):
                proc = run_lint(str(FIXTURES / rel))
                self.assertEqual(proc.returncode, 0,
                                 proc.stdout + proc.stderr)
                self.assertIn("R7/R8 not checked (clang engine only)",
                              proc.stdout)


class Suppressions(unittest.TestCase):
    OK_TWINS = (
        "sim/ok_suppressed.cpp",        # R2
        "proto/ok_r6_suppressed.cpp",   # R6
        "common/ok_r9_suppressed.cpp",  # R9
    )

    def test_valid_suppressions_lint_clean_and_are_counted(self):
        for rel in self.OK_TWINS:
            with self.subTest(fixture=rel):
                proc = run_lint(str(FIXTURES / rel))
                self.assertEqual(proc.returncode, 0,
                                 proc.stdout + proc.stderr)
                self.assertIn("1 suppression(s) in use", proc.stdout)

    def test_clang_only_twins_keep_annotations_without_failing_regex(self):
        # Under the regex engine an R7/R8 annotation is inventory (the
        # budget counts it) but cannot be marked in-use; that must not
        # fail the file.
        for rel in ("sim/ok_r7_suppressed.cpp",
                    "harness/ok_r8_suppressed.cpp"):
            with self.subTest(fixture=rel):
                proc = run_lint(str(FIXTURES / rel))
                self.assertEqual(proc.returncode, 0,
                                 proc.stdout + proc.stderr)
                self.assertIn("0 suppression(s) in use", proc.stdout)

    def test_malformed_suppression_exits_2(self):
        fixture = FIXTURES / "sim/malformed_suppression.cpp"
        proc = run_lint(str(fixture))
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn(f"{fixture.as_posix()}:7: error:", proc.stdout)
        self.assertIn("unknown rule 'R42'", proc.stdout)


class ClangEngine(unittest.TestCase):
    """AST-rule expectations — enforced wherever libclang imports
    (CI's lint job); skipped on boxes without the bindings."""

    def test_explicit_clang_engine_errors_cleanly_when_unavailable(self):
        if HAVE_CLANG:
            self.skipTest("libclang bindings are installed")
        proc = run_lint(engine="clang")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("libclang bindings are unavailable", proc.stderr)

    @needs_clang
    def test_r7_flags_unproven_shared_write_only(self):
        fixture = FIXTURES / "sim/r7_shared_write.cpp"
        proc = run_lint(str(fixture), engine="clang")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        want = {(fixture.as_posix(), 19, "R7")}
        self.assertEqual(flagged_lines(proc.stdout), want, proc.stdout)

    @needs_clang
    def test_r7_suppression_twin_is_clean_and_in_use(self):
        proc = run_lint(str(FIXTURES / "sim/ok_r7_suppressed.cpp"),
                        engine="clang")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("1 suppression(s) in use", proc.stdout)

    @needs_clang
    def test_r8_flags_unordered_float_accumulation(self):
        fixture = FIXTURES / "harness/r8_float_accumulation.cpp"
        proc = run_lint(str(fixture), engine="clang")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        want = {(fixture.as_posix(), 11, "R8")}
        self.assertEqual(flagged_lines(proc.stdout), want, proc.stdout)

    @needs_clang
    def test_r8_suppression_twin_is_clean_and_in_use(self):
        proc = run_lint(str(FIXTURES / "harness/ok_r8_suppressed.cpp"),
                        engine="clang")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("1 suppression(s) in use", proc.stdout)

    @needs_clang
    def test_full_walk_is_clean_under_clang(self):
        # The acceptance bar: the AST engine enforces R6-R9 on the real
        # tree with zero unsuppressed violations.
        proc = run_lint(engine="clang")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


class JsonReport(unittest.TestCase):
    def lint_json(self, *args: str, engine: str = "regex"):
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "lint.json"
            proc = run_lint(*args, "--json", str(out), engine=engine)
            return proc, json.loads(out.read_text(encoding="utf-8"))

    def test_schema_of_clean_tree_report(self):
        proc, data = self.lint_json()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(data["version"], 1)
        self.assertEqual(data["engine"], "regex")
        self.assertEqual(data["exit"], 0)
        self.assertEqual(data["findings"], [])
        self.assertEqual(data["malformed"], [])
        self.assertEqual(sorted(data["rules"]),
                         ["R1", "R2", "R3", "R4", "R5",
                          "R6", "R7", "R8", "R9"])
        for rule, entry in data["rules"].items():
            self.assertEqual(sorted(entry),
                             ["checked", "scope", "title", "violations"])
            self.assertEqual(entry["violations"], 0)
        self.assertFalse(data["rules"]["R7"]["checked"])
        self.assertFalse(data["rules"]["R8"]["checked"])
        self.assertTrue(data["rules"]["R9"]["checked"])
        supp = data["suppressions"]
        self.assertEqual(supp["total"], supp["in_use"] + supp["unused"])
        self.assertEqual(supp["total"], len(supp["inventory"]))
        for entry in supp["inventory"]:
            self.assertEqual(sorted(entry),
                             ["line", "path", "reason", "rule", "used"])
            self.assertTrue(entry["reason"].strip())

    def test_findings_round_trip(self):
        fixture = FIXTURES / "common/r9_env_read.cpp"
        proc, data = self.lint_json(str(fixture))
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(data["exit"], 1)
        self.assertEqual(data["rules"]["R9"]["violations"], 1)
        self.assertEqual(
            [(f["path"], f["line"], f["rule"]) for f in data["findings"]],
            [(fixture.as_posix(), 7, "R9")])


class BudgetGate(unittest.TestCase):
    def setUp(self):
        # The tree's actual annotation count, read off the JSON report.
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "lint.json"
            run_lint("--quiet", "--json", str(out))
            self.total = json.loads(out.read_text())["suppressions"]["total"]

    def run_budget(self, budget_text: str) -> subprocess.CompletedProcess:
        with tempfile.TemporaryDirectory() as tmp:
            doc = pathlib.Path(tmp) / "doc.md"
            doc.write_text(budget_text, encoding="utf-8")
            return run_lint("--quiet", "--budget", str(doc))

    def test_matching_budget_passes(self):
        proc = self.run_budget(f"Suppression budget: `{self.total}`\n")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn(f"budget {self.total} ok", proc.stdout)

    def test_budget_drift_fails(self):
        proc = self.run_budget(f"Suppression budget: `{self.total + 1}`\n")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("suppression budget mismatch", proc.stderr)

    def test_missing_budget_line_is_a_usage_error(self):
        proc = self.run_budget("no budget pinned here\n")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("no 'Suppression budget:", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
