// Fixture: R4 — two CounterRng salt constants sharing one value
// (violation reported on line 9, the second definition). Draws keyed
// under the two names would be bit-identical, silently correlating the
// streams they were meant to separate.
#include <cstdint>

constexpr std::uint64_t kSaltCoinFlip = 0xC01F'F11F'0000'0001ULL;
// Copy-pasted from the line above without re-rolling the constant:
constexpr std::uint64_t kSaltBackoff = 0xC01F'F11F'0000'0001ULL;
