// Fixture: R9 — an environment read inside common/ (violation on
// line 7). Infrastructure below the trial engines must not read ambient
// state that could steer a trajectory.
#include <cstdlib>

const char* scratch_dir() {
  return std::getenv("RADIOCAST_SCRATCH_DIR");
}
