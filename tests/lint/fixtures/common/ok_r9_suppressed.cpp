// Fixture: a *valid* R9 suppression — the read on line 9 happens once
// at startup and only picks a scratch directory, which no trajectory
// ever observes; the annotation on line 8 carries that proof, so the
// file lints clean (exit 0).
#include <cstdlib>

const char* scratch_dir() {
  // RADIOCAST_LINT_OK(R9): startup-only scratch-dir lookup, value never feeds a trajectory
  return std::getenv("RADIOCAST_SCRATCH_DIR");
}
