// Fixture: R6 — CounterRng streams keyed outside the registry. The
// local salt constant on line 8 and the literal draw on line 13 both
// bypass src/radiocast/rng/salts.hpp, so neither stream appears in the
// docs/STATIC_ANALYSIS.md inventory.
#include <cstdint>

// Copy-pasted instead of registered:
constexpr std::uint64_t kSaltRogue = 0xB060'0001'0000'0001ULL;

struct Rng { std::uint64_t word(std::uint64_t, std::uint64_t); };

std::uint64_t draw(Rng& rng) {
  return rng.word(0x51D0'0000'0000'0001ULL, 7);
}
