// Fixture: R5 — static non-const state inside proto/ (violation on
// line 8). The counter survives across trials, so trial k's trajectory
// depends on how many trials ran before it — and on which thread.
#include <cstdint>

std::uint64_t next_token() {
  // Looks innocent, breaks trial independence:
  static std::uint64_t counter = 0;
  return ++counter;
}
