// Fixture: a *valid* R6 suppression — the literal draw on line 11 keys
// a throwaway probe stream whose output is discarded; the annotation on
// line 10 carries the proof, so the file lints clean (exit 0).
#include <cstdint>

struct Rng { std::uint64_t word(std::uint64_t, std::uint64_t); };

std::uint64_t probe(Rng& rng) {
  // Self-test only; the drawn word never reaches a RunRecord.
  // RADIOCAST_LINT_OK(R6): throwaway self-test probe stream, result discarded
  return rng.word(0x9E0B'0000'0000'0001ULL, 1);
}
