// Fixture: R1 — a sequential RNG engine outside src/radiocast/rng/.
// The violation is on line 8 (the mt19937 member); the <random> include
// itself is legal, which the driver relies on to pin exact line output.
#include <random>

struct BiasedCoin {
  // Streams from engine types are neither portable nor counter-keyed:
  std::mt19937 engine{42};

  bool flip() { return (engine() & 1u) != 0u; }
};
