// Fixture: a *malformed* suppression — the annotation on line 7 names a
// rule that does not exist, so the tool must refuse it (exit 2) instead
// of silently treating it as a comment.
#include <cstdlib>

const char* trace_dir() {
  // RADIOCAST_LINT_OK(R42): no such rule
  return std::getenv("RADIOCAST_TRACE_DIR");
}
