// Fixture: a *valid* suppression — the R2 hit on line 10 carries a
// well-formed annotation, so the file lints clean (exit 0) and the
// summary counts exactly one suppression in use.
#include <cstdlib>

const char* trace_dir() {
  // Debug-trace destination only; read once at startup, never inside a
  // trial, and the value cannot influence any trajectory.
  // RADIOCAST_LINT_OK(R2): startup-only trace destination, outside trials
  return std::getenv("RADIOCAST_TRACE_DIR");
}
