// Fixture: R2 — wall-clock read inside a sim/ trial path (violation on
// line 7). A trial must be a pure function of the seed; time() makes two
// runs of the same seed diverge.
#include <ctime>

long slot_stamp() {
  return static_cast<long>(std::time(nullptr));
}
