// Fixture: R7 — a worker-pool lambda writing through reference-captured
// shared state with no ownership proof (violation on line 19; clang
// engine only — the regex engine reports R7 as not checked). The
// shard-indexed write on line 18 is provably owned and stays clean.
#include <cstddef>
#include <vector>

struct WorkerPool {
  template <typename Fn>
  void run(std::size_t count, Fn&& fn) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
};

void tally(WorkerPool& pool, std::vector<int>& hits) {
  int collisions = 0;
  pool.run(hits.size(), [&](std::size_t shard) {
    hits[shard] = 1;
    collisions += 1;
  });
  (void)collisions;
}
