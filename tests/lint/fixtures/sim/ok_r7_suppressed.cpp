// Fixture: a *valid* R7 suppression — the shared write on line 20 is
// guarded by the ownership proof on line 19 (the pool here runs the
// lambda from exactly one thread), so the file lints clean (exit 0)
// under the clang engine.
#include <cstddef>
#include <vector>

struct WorkerPool {
  template <typename Fn>
  void run(std::size_t count, Fn&& fn) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
};

void tally(WorkerPool& pool, std::vector<int>& hits) {
  int total = 0;
  pool.run(hits.size(), [&](std::size_t shard) {
    hits[shard] = 1;
    // RADIOCAST_LINT_OK(R7): single-thread pool in this fixture, writes are serialized by construction
    total += 1;
  });
  (void)total;
}
