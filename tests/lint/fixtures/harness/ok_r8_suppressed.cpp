// Fixture: a *valid* R8 suppression — the accumulation on line 13 is
// integer-valued doubles well inside the 2^53 exact range, so addition
// order cannot change the sum; the annotation on line 12 carries that
// proof and the file lints clean (exit 0) under the clang engine.
#include <string>
#include <unordered_map>

double count_hits(const std::unordered_map<std::string, double>& hits) {
  double total = 0.0;
  for (const auto& entry : hits) {
    // Every value is a small integral count; double addition is exact.
    // RADIOCAST_LINT_OK(R8): integral counts below 2^53, addition is exact in any order
    total += entry.second;
  }
  return total;
}
