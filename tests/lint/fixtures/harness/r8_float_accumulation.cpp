// Fixture: R8 — floating-point accumulation over an unordered range
// (violation on line 11; clang engine only — the regex engine reports
// R8 as not checked). Bucket order is a function of libstdc++ version
// and insertion history, so the rounded sum is too.
#include <string>
#include <unordered_map>

double total(const std::unordered_map<std::string, double>& gauges) {
  double sum = 0.0;
  for (const auto& entry : gauges) {
    sum += entry.second;
  }
  return sum;
}
