// Fixture: R3 — an unordered container in a result-bearing directory
// (violation on line 8). Iterating it feeds bucket order — a function of
// libstdc++ version and insertion history — straight into a RunRecord.
#include <string>
#include <unordered_map>

double total_of(int which) {
  std::unordered_map<std::string, double> gauges;
  gauges["a"] = static_cast<double>(which);
  double sum = 0.0;
  for (const auto& entry : gauges) {
    sum += entry.second;
  }
  return sum;
}
