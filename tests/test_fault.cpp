// Unit tests for the fault layer (fault::FaultConfig -> fault::FaultPlan)
// plus the tentpole determinism guarantee: a broadcast with crashes AND
// recoveries mid-Decay is bit-identical at any worker-thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "radiocast/fault/plan.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/harness/parallel.hpp"
#include "radiocast/rng/rng.hpp"

namespace radiocast::fault {
namespace {

// --- crash/recover schedule compilation -----------------------------------

FaultConfig crashes_config(double fraction, Slot window, Slot min_down,
                           Slot max_down, std::vector<NodeId> immune = {}) {
  FaultConfig fc;
  fc.seed = 42;
  fc.crashes.fraction = fraction;
  fc.crashes.window = window;
  fc.crashes.min_downtime = min_down;
  fc.crashes.max_downtime = max_down;
  fc.crashes.immune = std::move(immune);
  return fc;
}

TEST(FaultPlanCrash, ScheduleIsAFunctionOfConfigAndNodeCount) {
  const FaultConfig fc = crashes_config(0.5, 100, 10, 50);
  FaultPlan a(fc, 64);
  FaultPlan b(fc, 64);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_FALSE(a.events().empty());

  FaultPlan c(fc.with_seed(43), 64);
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultPlanCrash, VictimCountWindowAndDowntimeRespected) {
  const std::size_t n = 40;
  const FaultConfig fc = crashes_config(0.25, 64, 8, 16, {0, 1});
  FaultPlan plan(fc, n);

  std::size_t crashes = 0;
  std::vector<Slot> crash_at(n, 0);
  for (const sim::TopologyEvent& e : plan.events()) {
    if (e.kind == sim::EventKind::kCrashNode) {
      ++crashes;
      EXPECT_NE(e.u, 0u);  // immune
      EXPECT_NE(e.u, 1u);
      EXPECT_GE(e.at, 1u);  // slot 0 always runs clean
      EXPECT_LE(e.at, 64u);
      crash_at[e.u] = e.at;
    }
  }
  // round(0.25 * 38) victims among the 38 non-immune nodes.
  EXPECT_EQ(crashes, 10u);
  EXPECT_EQ(plan.counters().crash_events, 10u);
  EXPECT_EQ(plan.counters().recover_events, 10u);
  for (const sim::TopologyEvent& e : plan.events()) {
    if (e.kind == sim::EventKind::kRecoverNode) {
      const Slot down = e.at - crash_at[e.u];
      EXPECT_GE(down, 8u);
      EXPECT_LE(down, 16u);
    }
  }
}

TEST(FaultPlanCrash, ZeroMaxDowntimeMeansNoRecovery) {
  FaultPlan plan(crashes_config(1.0, 10, 0, 0), 16);
  EXPECT_EQ(plan.counters().crash_events, 16u);
  EXPECT_EQ(plan.counters().recover_events, 0u);
  for (const sim::TopologyEvent& e : plan.events()) {
    EXPECT_EQ(e.kind, sim::EventKind::kCrashNode);
  }
}

// --- jammers ---------------------------------------------------------------

TEST(FaultPlanJammer, ObliviousBudgetExhausts) {
  FaultConfig fc;
  fc.seed = 7;
  fc.jammers.push_back(JammerSpec::oblivious(1.0, 5));
  FaultPlan plan(fc, 8);
  for (Slot t = 0; t < 20; ++t) {
    plan.begin_slot(t, 0);
  }
  // p = 1 jams every slot until the budget runs dry.
  EXPECT_EQ(plan.counters().jammed_slots, 5u);
  EXPECT_EQ(plan.remaining_budget(0), 0u);
}

TEST(FaultPlanJammer, PeriodicJamsExactlyItsPhase) {
  FaultConfig fc;
  fc.seed = 7;
  fc.jammers.push_back(JammerSpec::periodic(4, 1));
  FaultPlan plan(fc, 8);
  for (Slot t = 0; t < 16; ++t) {
    plan.begin_slot(t, 0);
    const sim::DeliveryFate fate = plan.on_delivery(t, 0, 1);
    if (t % 4 == 1) {
      EXPECT_EQ(fate, sim::DeliveryFate::kJam) << "slot " << t;
    } else {
      EXPECT_EQ(fate, sim::DeliveryFate::kDeliver) << "slot " << t;
    }
  }
  EXPECT_EQ(plan.counters().jammed_slots, 4u);
  EXPECT_EQ(plan.remaining_budget(0), kUnlimitedBudget);
}

TEST(FaultPlanJammer, ReactiveSpendsOnlyOnSingletonSlots) {
  FaultConfig fc;
  fc.seed = 7;
  fc.jammers.push_back(JammerSpec::reactive(2));
  FaultPlan plan(fc, 8);

  // Slots without a would-be delivery cost nothing.
  plan.begin_slot(0, 0);
  plan.begin_slot(1, 0);
  EXPECT_EQ(plan.remaining_budget(0), 2u);
  EXPECT_EQ(plan.counters().jammed_slots, 0u);

  // First singleton delivery of a slot triggers the jam; the whole slot
  // (including later deliveries) is noise, for one budget unit.
  plan.begin_slot(2, 0);
  EXPECT_EQ(plan.on_delivery(2, 0, 1), sim::DeliveryFate::kJam);
  EXPECT_EQ(plan.on_delivery(2, 3, 4), sim::DeliveryFate::kJam);
  EXPECT_EQ(plan.remaining_budget(0), 1u);
  EXPECT_EQ(plan.counters().jammed_slots, 1u);

  plan.begin_slot(3, 0);
  EXPECT_EQ(plan.on_delivery(3, 0, 1), sim::DeliveryFate::kJam);
  EXPECT_EQ(plan.remaining_budget(0), 0u);

  // Budget gone: deliveries pass.
  plan.begin_slot(4, 0);
  EXPECT_EQ(plan.on_delivery(4, 0, 1), sim::DeliveryFate::kDeliver);
  EXPECT_EQ(plan.counters().jammed_slots, 2u);
  EXPECT_EQ(plan.counters().jammed_deliveries, 3u);
}

// --- loss ------------------------------------------------------------------

TEST(FaultPlanLoss, BernoulliDrawsAreOrderIndependent) {
  FaultConfig fc;
  fc.seed = 99;
  fc.loss = LossModel::bernoulli(0.5);
  FaultPlan forward(fc, 8);
  FaultPlan backward(fc, 8);

  std::vector<sim::DeliveryFate> fwd;
  for (Slot t = 0; t < 50; ++t) {
    forward.begin_slot(t, 0);
    fwd.push_back(forward.on_delivery(t, 2, 3));
  }
  std::vector<sim::DeliveryFate> bwd(50, sim::DeliveryFate::kDeliver);
  for (Slot t = 50; t-- > 0;) {
    backward.begin_slot(t, 0);
    bwd[t] = backward.on_delivery(t, 2, 3);
  }
  EXPECT_EQ(fwd, bwd);
  const auto drops = static_cast<std::size_t>(
      std::count(fwd.begin(), fwd.end(), sim::DeliveryFate::kDrop));
  EXPECT_EQ(forward.counters().dropped_deliveries, drops);
  EXPECT_GT(drops, 10u);  // p = 0.5 over 50 draws
  EXPECT_LT(drops, 40u);
}

TEST(FaultPlanLoss, GilbertElliottExtremes) {
  // Chain pinned to the good state with loss_good = 0: nothing drops.
  FaultConfig good;
  good.seed = 5;
  good.loss = LossModel::gilbert_elliott(
      {.p_good_to_bad = 0.0, .p_bad_to_good = 1.0,
       .loss_good = 0.0, .loss_bad = 1.0});
  FaultPlan good_plan(good, 4);
  // Chain pinned to the bad state (stationary start) with loss_bad = 1:
  // everything drops.
  FaultConfig bad;
  bad.seed = 5;
  bad.loss = LossModel::gilbert_elliott(
      {.p_good_to_bad = 1.0, .p_bad_to_good = 0.0,
       .loss_good = 0.0, .loss_bad = 1.0});
  FaultPlan bad_plan(bad, 4);
  for (Slot t = 0; t < 30; ++t) {
    good_plan.begin_slot(t, 0);
    bad_plan.begin_slot(t, 0);
    EXPECT_EQ(good_plan.on_delivery(t, 0, 1), sim::DeliveryFate::kDeliver);
    EXPECT_EQ(bad_plan.on_delivery(t, 0, 1), sim::DeliveryFate::kDrop);
  }
  EXPECT_EQ(good_plan.counters().dropped_deliveries, 0u);
  EXPECT_EQ(bad_plan.counters().dropped_deliveries, 30u);
}

// --- config validation ------------------------------------------------------

TEST(FaultPlanConfig, RejectsMalformedConfigs) {
  FaultConfig bad_loss;
  bad_loss.loss = LossModel::bernoulli(1.5);
  EXPECT_THROW(FaultPlan(bad_loss, 4), ContractViolation);

  FaultConfig bad_immune = crashes_config(0.5, 10, 0, 0, {99});
  EXPECT_THROW(FaultPlan(bad_immune, 4), ContractViolation);

  FaultConfig bad_down = crashes_config(0.5, 10, 9, 3);
  EXPECT_THROW(FaultPlan(bad_down, 4), ContractViolation);
}

// --- the tentpole guarantee -------------------------------------------------
// A BGI broadcast where nodes crash AND recover mid-Decay must produce the
// same outcome sequence on 1 worker thread and on 8 (docs/PARALLELISM.md:
// thread count changes wall-clock only, never results).

TEST(FaultThreading, CrashRecoveryMidDecayBitIdenticalAcrossThreads) {
  rng::Rng graph_rng(2026);
  const std::size_t n = 48;
  const graph::Graph g =
      graph::connected_gnp(n, 4.0 / static_cast<double>(n), graph_rng);
  const proto::BroadcastParams params{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };

  FaultConfig base;
  base.loss = LossModel::bernoulli(0.05);
  base.jammers.push_back(JammerSpec::reactive(16));
  base.crashes.fraction = 0.3;
  base.crashes.window = 2 * n;       // inside the broadcast's Decay phases
  base.crashes.min_downtime = 4;
  base.crashes.max_downtime = 3 * n; // recoveries also land mid-run
  base.crashes.immune = {0};

  const std::size_t trials = 24;
  const auto trial_fn = [&](std::size_t trial) {
    const NodeId sources[] = {0};
    const FaultConfig fc = base.with_seed(rng::mix64(0xFA17 + trial));
    return harness::run_bgi_broadcast(g, sources, params, 1000 + trial,
                                      Slot{1} << 18, {}, &fc);
  };

  const auto one = harness::run_trials(trials, trial_fn, 1);
  const auto eight = harness::run_trials(trials, trial_fn, 8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < trials; ++i) {
    EXPECT_EQ(one[i], eight[i]) << "trial " << i;
  }

  // The faults must actually bite for this test to mean anything: some
  // trial should differ from the fault-free run of the same seed.
  bool any_difference = false;
  for (std::size_t trial = 0; trial < trials && !any_difference; ++trial) {
    const NodeId sources[] = {0};
    const auto clean = harness::run_bgi_broadcast(
        g, sources, params, 1000 + trial, Slot{1} << 18);
    any_difference = !(clean == one[trial]);
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace radiocast::fault
