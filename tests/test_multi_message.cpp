#include "radiocast/proto/multi_message.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"
#include "radiocast/stats/chernoff.hpp"

namespace radiocast::proto {
namespace {

MultiMessageParams params_for(const graph::Graph& g, std::size_t messages,
                              double epsilon = 0.1) {
  const BroadcastParams base{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = epsilon,
      .stop_probability = 0.5,
  };
  const auto d = graph::diameter(g);
  // Epoch sized from the Theorem-4 delivery bound plus termination slack.
  const auto epoch = static_cast<Slot>(stats::theorem4_termination_slots(
                         d, g.node_count(), g.node_count(),
                         g.max_in_degree(), epsilon)) +
                     base.phase_length();
  return MultiMessageParams{base, epoch, messages};
}

std::vector<sim::Message> make_messages(std::size_t count) {
  std::vector<sim::Message> out(count);
  for (std::size_t q = 0; q < count; ++q) {
    out[q].origin = 0;
    out[q].tag = 1000 + q;
  }
  return out;
}

TEST(MultiMessage, ParamsValidation) {
  const auto g = graph::path(4);
  auto params = params_for(g, 2);
  params.epoch_length = 1;  // smaller than one Decay phase
  EXPECT_THROW(MultiMessageBroadcast{params}, ContractViolation);
  auto zero = params_for(g, 2);
  zero.message_count = 0;
  EXPECT_THROW(MultiMessageBroadcast{zero}, ContractViolation);
}

TEST(MultiMessage, SourceMustCarryAllMessages) {
  const auto g = graph::path(4);
  const auto params = params_for(g, 3);
  EXPECT_THROW(MultiMessageBroadcast(params, make_messages(2)),
               ContractViolation);
}

TEST(MultiMessage, EpochRoundedToPhaseMultiple) {
  const auto g = graph::star(9);
  auto params = params_for(g, 1);
  params.epoch_length = params.base.phase_length() + 1;
  const MultiMessageBroadcast node(params);
  EXPECT_EQ(node.epoch_length() % params.base.phase_length(), 0U);
  EXPECT_GE(node.epoch_length(), params.epoch_length);
}

TEST(MultiMessage, DeliversAllMessagesOnAPath) {
  const auto g = graph::path(6);
  const std::size_t messages = 3;
  const auto params = params_for(g, messages, 0.05);
  sim::Simulator s(g, sim::SimOptions{21});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      s.emplace_protocol<MultiMessageBroadcast>(v, params,
                                                make_messages(messages));
    } else {
      s.emplace_protocol<MultiMessageBroadcast>(v, params);
    }
  }
  const auto& model = s.protocol_as<MultiMessageBroadcast>(1);
  const Slot horizon = model.epoch_length() * (messages + 1);
  for (Slot i = 0; i < horizon; ++i) {
    s.step();
  }
  for (NodeId v = 1; v < g.node_count(); ++v) {
    const auto& got = s.protocol_as<MultiMessageBroadcast>(v).delivered();
    EXPECT_EQ(got.size(), messages) << "node " << v;
  }
  // And in epoch order with the right tags.
  const auto& got = s.protocol_as<MultiMessageBroadcast>(5).delivered();
  for (std::size_t q = 0; q < got.size(); ++q) {
    EXPECT_EQ(got[q].tag, 1000 + q);
  }
}

TEST(MultiMessage, SourceRecordsItsOwnMessages) {
  const auto g = graph::path(3);
  const std::size_t messages = 2;
  const auto params = params_for(g, messages);
  sim::Simulator s(g, sim::SimOptions{22});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      s.emplace_protocol<MultiMessageBroadcast>(v, params,
                                                make_messages(messages));
    } else {
      s.emplace_protocol<MultiMessageBroadcast>(v, params);
    }
  }
  const Slot horizon =
      s.protocol_as<MultiMessageBroadcast>(0).epoch_length() *
      (messages + 1);
  for (Slot i = 0; i < horizon; ++i) {
    s.step();
  }
  EXPECT_EQ(s.protocol_as<MultiMessageBroadcast>(0).delivered().size(),
            messages);
  EXPECT_TRUE(s.protocol_as<MultiMessageBroadcast>(0).terminated());
}

TEST(MultiMessage, MostNodesGetMostMessagesOnRandomGraphs) {
  rng::Rng topo(9);
  const auto g = graph::connected_gnp(25, 0.15, topo);
  const std::size_t messages = 4;
  const auto params = params_for(g, messages, 0.05);
  sim::Simulator s(g, sim::SimOptions{23});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      s.emplace_protocol<MultiMessageBroadcast>(v, params,
                                                make_messages(messages));
    } else {
      s.emplace_protocol<MultiMessageBroadcast>(v, params);
    }
  }
  const Slot horizon =
      s.protocol_as<MultiMessageBroadcast>(0).epoch_length() *
      (messages + 1);
  for (Slot i = 0; i < horizon; ++i) {
    s.step();
  }
  std::size_t total = 0;
  for (NodeId v = 1; v < g.node_count(); ++v) {
    total += s.protocol_as<MultiMessageBroadcast>(v).delivered().size();
  }
  const auto expected = (g.node_count() - 1) * messages;
  EXPECT_GE(total, expected * 9 / 10);
}

}  // namespace
}  // namespace radiocast::proto
