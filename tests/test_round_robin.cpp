#include "radiocast/proto/round_robin.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"

namespace radiocast::proto {
namespace {

TEST(RoundRobin, CompletesOnPath) {
  const std::size_t n = 10;
  const auto out =
      harness::run_round_robin(graph::path(n), 0, n * (n + 2));
  EXPECT_TRUE(out.all_heard);
}

TEST(RoundRobin, BoundNDPlusOne) {
  for (const std::size_t n : {4U, 9U, 16U}) {
    const auto g = graph::grid(n / 2, (n + 1) / 2 + 1);
    const auto d = graph::diameter(g);
    const auto out = harness::run_round_robin(
        g, 0, g.node_count() * (d + 2));
    EXPECT_TRUE(out.all_heard) << "n=" << n;
    EXPECT_LE(out.completion_slot, g.node_count() * (d + 1));
  }
}

TEST(RoundRobin, NoCollisionsEver) {
  rng::Rng topo(1);
  const auto g = graph::connected_gnp(25, 0.2, topo);
  sim::Simulator s(g, sim::SimOptions{});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == 0) {
      sim::Message m;
      m.origin = 0;
      s.emplace_protocol<RoundRobinBroadcast>(v, g.node_count(), m);
    } else {
      s.emplace_protocol<RoundRobinBroadcast>(v, g.node_count());
    }
  }
  for (int i = 0; i < 500; ++i) {
    s.step();
  }
  EXPECT_EQ(s.trace().total_collisions(), 0U);
}

TEST(RoundRobin, PaysLinearOnCnDespiteTinyDiameter) {
  // The deterministic Θ(n) behaviour on C_n: with S = {n}, the sink hears
  // its only neighbor when that node's slot comes around: slot n-1 of some
  // round — linear in n even though the diameter is 3.
  const std::size_t n = 30;
  const NodeId s_members[] = {static_cast<NodeId>(n)};
  const auto net = graph::make_cn(n, s_members);
  const auto out = harness::run_round_robin(net.g, net.source,
                                            10 * net.g.node_count());
  EXPECT_TRUE(out.all_heard);
  EXPECT_GE(out.completion_slot, n - 1);
}

TEST(RoundRobin, InformedAtTracksFirstReceipt) {
  const auto g = graph::path(3);
  sim::Simulator s(g, sim::SimOptions{});
  sim::Message m;
  m.origin = 0;
  s.emplace_protocol<RoundRobinBroadcast>(0, 3, m);
  auto& mid = s.emplace_protocol<RoundRobinBroadcast>(1, 3);
  auto& far = s.emplace_protocol<RoundRobinBroadcast>(2, 3);
  // Slot 0: node 0 transmits; node 1 hears. Slot 1: node 1 transmits;
  // nodes 0 and 2 hear.
  s.step();
  EXPECT_TRUE(mid.informed());
  EXPECT_EQ(mid.informed_at(), 0U);
  EXPECT_FALSE(far.informed());
  s.step();
  EXPECT_TRUE(far.informed());
  EXPECT_EQ(far.informed_at(), 1U);
}

TEST(RoundRobin, RejectsZeroNodes) {
  EXPECT_THROW(RoundRobinBroadcast(0), ContractViolation);
}

}  // namespace
}  // namespace radiocast::proto
