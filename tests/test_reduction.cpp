#include "radiocast/lb/reduction.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "radiocast/lb/strategies.hpp"

namespace radiocast::lb {
namespace {

TEST(FoilStrategy, DefeatsScanForHalfN) {
  // Proposition 11 in executable form: the adversary survives n/2 moves of
  // the singleton scan.
  ScanSingletonsStrategy scan;
  for (const std::size_t n : {8U, 16U, 40U, 100U}) {
    const auto outcome = foil_strategy(scan, n, n / 2);
    ASSERT_TRUE(outcome.has_value()) << "n=" << n;
    EXPECT_TRUE(outcome->lemma9_holds);
    EXPECT_TRUE(outcome->replay_consistent);
    EXPECT_FALSE(outcome->s.empty());
  }
}

TEST(FoilStrategy, DefeatsAllBundledStrategies) {
  const std::size_t n = 60;
  ScanSingletonsStrategy scan;
  HalvingStrategy halving;
  DoublingWindowStrategy windows;
  RandomSubsetStrategy random(77);
  ExplorerStrategy* strategies[] = {&scan, &halving, &windows, &random};
  for (ExplorerStrategy* strategy : strategies) {
    const auto outcome = foil_strategy(*strategy, n, n / 2);
    ASSERT_TRUE(outcome.has_value()) << strategy->name();
    EXPECT_TRUE(outcome->lemma9_holds) << strategy->name();
    EXPECT_TRUE(outcome->replay_consistent) << strategy->name();
  }
}

TEST(FoilStrategy, SurvivingSetLosesEventually) {
  // Consistency check on the machinery: with the foiling S fixed, the scan
  // strategy — run far past n/2 — does win in the end (the bound is n/2,
  // not infinity).
  const std::size_t n = 20;
  ScanSingletonsStrategy scan;
  const auto outcome = foil_strategy(scan, n, n / 2);
  ASSERT_TRUE(outcome.has_value());
  const HittingGame game(n, outcome->s);
  const GameResult r = game.play(scan, 2 * n);
  EXPECT_TRUE(r.won);
  EXPECT_GT(r.moves, n / 2);
}

TEST(ProtocolExplorer, EmitsTwoMovesPerRound) {
  RoundRobinAbstract rr;
  ProtocolExplorer explorer(rr);
  explorer.reset(5);
  // Round 0: T(1) = T(0) = {1} (round-robin ignores χ).
  EXPECT_EQ(explorer.next_move(), (Move{1}));
  explorer.observe(RefereeAnswer{});
  EXPECT_EQ(explorer.next_move(), (Move{1}));
  explorer.observe(RefereeAnswer{});
  // Round 1: processor 2.
  EXPECT_EQ(explorer.next_move(), (Move{2}));
}

TEST(FoilAbstractProtocol, RoundRobinSurvivesHalfN) {
  RoundRobinAbstract rr;
  for (const std::size_t n : {10U, 30U, 64U}) {
    const auto outcome = foil_abstract_protocol(rr, n, n / 4, 10 * n);
    ASSERT_TRUE(outcome.has_value()) << "n=" << n;
    // The constructed S excludes the first n/2-ish ids probed by the
    // round-robin, so the protocol needs more than n/4 rounds on G_S.
    EXPECT_GE(outcome->rounds_survived, n / 4) << "n=" << n;
  }
}

TEST(FoilAbstractProtocol, BitSplitForcedLinear) {
  // The oblivious bit-splitting protocol is exactly what the adversary
  // eats for breakfast: its clever mask rounds all go silent and it
  // degenerates to round-robin, surviving ~linear rounds.
  BitSplitAbstract bs;
  const std::size_t n = 64;
  const auto outcome = foil_abstract_protocol(bs, n, n / 4, 10 * n);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_GE(outcome->rounds_survived, n / 4);
}

TEST(FoilAbstractProtocol, AdaptiveSplitDelayed) {
  AdaptiveSplitAbstract as;
  const std::size_t n = 40;
  const auto outcome = foil_abstract_protocol(as, n, n / 4, 100 * n);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_GE(outcome->rounds_survived, n / 4);
}

TEST(ExhaustiveWorstCase, RoundRobinIsExactlyN) {
  RoundRobinAbstract rr;
  const WorstCase w = exhaustive_worst_case(rr, 8, 100);
  EXPECT_TRUE(w.all_completed);
  EXPECT_EQ(w.rounds, 8U);
  EXPECT_EQ(w.argmax_s, (std::vector<NodeId>{8}));
}

TEST(ExhaustiveWorstCase, BitSplitStillLinear) {
  // Even with its log n mask rounds, the worst S forces the fallback scan:
  // worst case >= n/2 over all hidden sets (Theorem 12's message: no
  // deterministic cleverness beats Ω(n)).
  BitSplitAbstract bs;
  const std::size_t n = 10;
  const WorstCase w = exhaustive_worst_case(bs, n, 1000);
  EXPECT_TRUE(w.all_completed);
  EXPECT_GE(w.rounds, n / 2);
}

TEST(ExhaustiveWorstCase, AdaptiveSplitLinearToo) {
  AdaptiveSplitAbstract as;
  const std::size_t n = 9;
  const WorstCase w = exhaustive_worst_case(as, n, 5000);
  EXPECT_TRUE(w.all_completed);
  EXPECT_GE(w.rounds, n / 2);
}

TEST(ExhaustiveWorstCase, RejectsLargeN) {
  RoundRobinAbstract rr;
  EXPECT_THROW(exhaustive_worst_case(rr, 21, 10),
               radiocast::ContractViolation);
}

TEST(FoilStrategy, TooManyMovesMayExhaust) {
  // Past n/2 the guarantee lapses; with the full singleton scan of length
  // n the universe is exhausted and the adversary reports failure.
  ScanSingletonsStrategy scan;
  const auto outcome = foil_strategy(scan, 6, 6);
  EXPECT_FALSE(outcome.has_value());
}

}  // namespace
}  // namespace radiocast::lb
