#include "radiocast/proto/leader_election.hpp"

#include <gtest/gtest.h>

#include <set>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"
#include "radiocast/stats/chernoff.hpp"

namespace radiocast::proto {
namespace {

BroadcastParams params_for(const graph::Graph& g, double eps = 0.05) {
  return BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = eps,
  };
}

struct ElectionResult {
  bool agreement = false;        ///< all nodes name the same (prio, owner)
  bool leader_is_argmax = false; ///< the winner has the max own priority
  std::size_t self_believers = 0;
  NodeId leader = kNoNode;
};

ElectionResult run_election(const graph::Graph& g, std::uint64_t seed) {
  const std::size_t n = g.node_count();
  const auto d = graph::diameter(g);
  const LeaderElectionParams params{
      params_for(g), std::max<std::size_t>(d, n > 1 ? 1 : 0)};
  sim::Simulator s(g, sim::SimOptions{seed});
  for (NodeId v = 0; v < n; ++v) {
    s.emplace_protocol<LeaderElection>(v, params);
  }
  s.run_to_quiescence(params.horizon() + 2);

  ElectionResult r;
  std::uint64_t max_priority = 0;
  NodeId argmax = kNoNode;
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = s.protocol_as<LeaderElection>(v);
    if (p.own_priority() > max_priority) {
      max_priority = p.own_priority();
      argmax = v;
    }
  }
  r.agreement = true;
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = s.protocol_as<LeaderElection>(v);
    if (p.best_owner() != s.protocol_as<LeaderElection>(0).best_owner()) {
      r.agreement = false;
    }
    if (p.believes_leader(v)) {
      ++r.self_believers;
    }
  }
  r.leader = s.protocol_as<LeaderElection>(0).best_owner();
  r.leader_is_argmax = r.leader == argmax;
  return r;
}

TEST(LeaderElection, SingleNodeElectsItself) {
  const graph::Graph g(1);
  const ElectionResult r = run_election(g, 1);
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.leader, 0U);
  EXPECT_EQ(r.self_believers, 1U);
}

TEST(LeaderElection, PathAgreement) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ElectionResult r = run_election(graph::path(12), seed);
    EXPECT_TRUE(r.agreement) << "seed=" << seed;
    EXPECT_TRUE(r.leader_is_argmax) << "seed=" << seed;
    EXPECT_EQ(r.self_believers, 1U) << "seed=" << seed;
  }
}

TEST(LeaderElection, CliqueAgreement) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ElectionResult r = run_election(graph::clique(20), seed);
    EXPECT_TRUE(r.agreement) << "seed=" << seed;
    EXPECT_EQ(r.self_believers, 1U) << "seed=" << seed;
  }
}

TEST(LeaderElection, RandomGraphsMostlyAgree) {
  rng::Rng topo(7);
  int agreements = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = graph::connected_gnp(40, 0.1, topo);
    const ElectionResult r = run_election(g, 50 + trial);
    agreements += (r.agreement && r.self_believers == 1) ? 1 : 0;
  }
  // ε = 0.05 per spread; allow generous Monte-Carlo slack.
  EXPECT_GE(agreements, trials * 8 / 10);
}

TEST(LeaderElection, WinnerVariesWithSeed) {
  std::set<NodeId> winners;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ElectionResult r = run_election(graph::grid(4, 4), seed);
    if (r.agreement) {
      winners.insert(r.leader);
    }
  }
  EXPECT_GT(winners.size(), 2U);
}

TEST(LeaderElection, WorksOnDirectedNetworks) {
  // The underlying broadcast never needs acknowledgements, so election
  // works whenever the winner can reach everyone. Use a digraph strongly
  // reachable from every node... simplest: a bidirected core plus one-way
  // shortcuts.
  rng::Rng topo(9);
  graph::Graph g = graph::cycle(16);
  for (int i = 0; i < 20; ++i) {
    const auto u = static_cast<NodeId>(topo.uniform(16));
    const auto v = static_cast<NodeId>(topo.uniform(16));
    if (u != v) {
      g.add_arc(u, v);
    }
  }
  int agreements = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ElectionResult r = run_election(g, seed);
    agreements += r.agreement ? 1 : 0;
  }
  EXPECT_GE(agreements, 8);
}

}  // namespace
}  // namespace radiocast::proto
