// Lemma 5 executable: the RestrictedAdapter's 2x-slowed execution on C_n
// reproduces the plain execution node for node — including randomized
// protocols, draw for draw — while never having source and sink active in
// the same real slot.
#include "radiocast/lb/restricted.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "radiocast/graph/families.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/round_robin.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::lb {
namespace {

CnRole role_of(const graph::CnNetwork& net, NodeId v) {
  if (v == net.source) {
    return CnRole::kSource;
  }
  if (v == net.sink) {
    return CnRole::kSink;
  }
  return CnRole::kSecondLayer;
}

sim::Message payload() {
  sim::Message m;
  m.origin = 0;
  m.tag = 0xAB;
  return m;
}

TEST(RestrictedAdapter, RoundRobinMatchesPlainExecution) {
  const NodeId s_members[] = {3, 7};
  const auto net = graph::make_cn(8, s_members);
  const std::size_t n = net.g.node_count();
  const Slot virtual_slots = 40;

  // Plain run.
  sim::Simulator plain(net.g, sim::SimOptions{5});
  for (NodeId v = 0; v < n; ++v) {
    if (v == net.source) {
      plain.emplace_protocol<proto::RoundRobinBroadcast>(v, n, payload());
    } else {
      plain.emplace_protocol<proto::RoundRobinBroadcast>(v, n);
    }
  }
  for (Slot i = 0; i < virtual_slots; ++i) {
    plain.step();
  }

  // Restricted run: same seeds, twice the slots.
  sim::Simulator restricted(net.g, sim::SimOptions{5});
  for (NodeId v = 0; v < n; ++v) {
    auto inner = v == net.source
                     ? std::make_unique<proto::RoundRobinBroadcast>(
                           n, payload())
                     : std::make_unique<proto::RoundRobinBroadcast>(n);
    restricted.emplace_protocol<RestrictedAdapter>(v, std::move(inner),
                                                   role_of(net, v));
  }
  for (Slot i = 0; i < 2 * virtual_slots + 2; ++i) {
    restricted.step();
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto& p = plain.protocol_as<proto::RoundRobinBroadcast>(v);
    const auto& r = restricted.protocol_as<RestrictedAdapter>(v)
                        .inner_as<proto::RoundRobinBroadcast>();
    EXPECT_EQ(p.informed(), r.informed()) << "node " << v;
    if (p.informed() && p.informed_at() < virtual_slots) {
      EXPECT_EQ(p.informed_at(), r.informed_at()) << "node " << v;
    }
  }
}

TEST(RestrictedAdapter, RandomizedProtocolMatchesDrawForDraw) {
  // The adapter queries the inner protocol once per virtual slot with the
  // same per-node rng stream, so even the randomized BGI broadcast runs
  // identically under the transformation.
  const NodeId s_members[] = {2, 5, 6};
  const auto net = graph::make_cn(6, s_members);
  const std::size_t n = net.g.node_count();
  const proto::BroadcastParams params{
      .network_size_bound = n,
      .degree_bound = net.g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };
  const Slot virtual_slots = 200;

  sim::Simulator plain(net.g, sim::SimOptions{9});
  sim::Simulator restricted(net.g, sim::SimOptions{9});
  for (NodeId v = 0; v < n; ++v) {
    if (v == net.source) {
      plain.emplace_protocol<proto::BgiBroadcast>(v, params, payload());
      restricted.emplace_protocol<RestrictedAdapter>(
          v, std::make_unique<proto::BgiBroadcast>(params, payload()),
          role_of(net, v));
    } else {
      plain.emplace_protocol<proto::BgiBroadcast>(v, params);
      restricted.emplace_protocol<RestrictedAdapter>(
          v, std::make_unique<proto::BgiBroadcast>(params),
          role_of(net, v));
    }
  }
  for (Slot i = 0; i < virtual_slots; ++i) {
    plain.step();
  }
  for (Slot i = 0; i < 2 * virtual_slots + 2; ++i) {
    restricted.step();
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = plain.protocol_as<proto::BgiBroadcast>(v);
    const auto& r = restricted.protocol_as<RestrictedAdapter>(v)
                        .inner_as<proto::BgiBroadcast>();
    EXPECT_EQ(p.informed(), r.informed()) << "node " << v;
    if (p.informed() && p.informed_at() < virtual_slots) {
      EXPECT_EQ(p.informed_at(), r.informed_at()) << "node " << v;
    }
  }
}

TEST(RestrictedAdapter, SourceAndSinkNeverCoActive) {
  // The defining property of a restricted protocol (Definition 2).
  const NodeId s_members[] = {1, 2, 3, 4};
  const auto net = graph::make_cn(4, s_members);
  const std::size_t n = net.g.node_count();
  const proto::BroadcastParams params{
      .network_size_bound = n,
      .degree_bound = net.g.max_in_degree(),
      .epsilon = 0.2,
      .stop_probability = 0.5,
  };
  sim::Simulator s(net.g, sim::SimOptions{.seed = 3,
                                          .collision_detection = false,
                                          .trace_slots = true});
  for (NodeId v = 0; v < n; ++v) {
    auto inner = v == net.source
                     ? std::make_unique<proto::BgiBroadcast>(params, payload())
                     : std::make_unique<proto::BgiBroadcast>(params);
    s.emplace_protocol<RestrictedAdapter>(v, std::move(inner),
                                          role_of(net, v));
  }
  for (int i = 0; i < 100; ++i) {
    s.step();
  }
  for (const auto& rec : s.trace().slots()) {
    const bool source_active =
        std::ranges::binary_search(rec.transmitters, net.source);
    const bool sink_active =
        std::ranges::binary_search(rec.transmitters, net.sink);
    EXPECT_FALSE(source_active && sink_active) << "slot " << rec.slot;
    if (rec.slot % 2 == 0) {
      EXPECT_FALSE(sink_active) << "sink transmitted in an even sub-slot";
    } else {
      EXPECT_FALSE(source_active)
          << "source transmitted in an odd sub-slot";
    }
  }
}

TEST(RestrictedAdapter, DoubleReceptionCancelsLikeACollision) {
  // Source and sink both beacon: in the plain run an S member hears a
  // collision (nothing); restricted, it hears one message per sub-slot
  // and must record none (Lemma 5's merge rule).
  class Beacon final : public sim::Protocol {
   public:
    sim::Action on_slot(sim::NodeContext& ctx) override {
      sim::Message m;
      m.origin = ctx.id();
      return sim::Action::transmit(m);
    }
  };
  class Recorder final : public sim::Protocol {
   public:
    sim::Action on_slot(sim::NodeContext&) override {
      return sim::Action::receive();
    }
    void on_receive(sim::NodeContext&, const sim::Message&) override {
      ++received;
    }
    int received = 0;
  };

  const NodeId s_members[] = {1, 2};
  const auto net = graph::make_cn(3, s_members);
  sim::Simulator s(net.g, sim::SimOptions{1});
  for (NodeId v = 0; v < net.g.node_count(); ++v) {
    std::unique_ptr<sim::Protocol> inner;
    if (v == net.source || v == net.sink) {
      inner = std::make_unique<Beacon>();
    } else {
      inner = std::make_unique<Recorder>();
    }
    s.emplace_protocol<RestrictedAdapter>(v, std::move(inner),
                                          role_of(net, v));
  }
  for (int i = 0; i < 20; ++i) {
    s.step();
  }
  // S members (1, 2): double receptions cancelled, inner saw nothing.
  for (const NodeId v : {1U, 2U}) {
    const auto& adapter = s.protocol_as<RestrictedAdapter>(v);
    EXPECT_GT(adapter.double_receptions(), 0U) << "node " << v;
    EXPECT_EQ(adapter.inner_as<Recorder>().received, 0) << "node " << v;
  }
  // The non-S second-layer node (3) hears only the source: records it.
  const auto& outside = s.protocol_as<RestrictedAdapter>(3);
  EXPECT_EQ(outside.double_receptions(), 0U);
  EXPECT_GT(outside.inner_as<Recorder>().received, 0);
}

TEST(RestrictedAdapter, RejectsNullInner) {
  EXPECT_THROW(RestrictedAdapter(nullptr, CnRole::kSource),
               ContractViolation);
}

TEST(RestrictedAdapter, InnerAsTypeChecks) {
  RestrictedAdapter adapter(
      std::make_unique<proto::RoundRobinBroadcast>(4),
      CnRole::kSecondLayer);
  EXPECT_NO_THROW(adapter.inner_as<proto::RoundRobinBroadcast>());
  EXPECT_THROW(adapter.inner_as<proto::BgiBroadcast>(), ContractViolation);
}

}  // namespace
}  // namespace radiocast::lb
