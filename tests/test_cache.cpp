// Tests for the content-addressed result cache (docs/SWEEP.md): the
// SHA-256 primitive against FIPS 180-4 vectors, key derivation (golden
// value pinned byte for byte — the cross-process stability contract),
// and the store's integrity-before-trust behavior: corrupted entries are
// misses, never served.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "radiocast/cache/hash.hpp"
#include "radiocast/cache/key.hpp"
#include "radiocast/cache/store.hpp"
#include "radiocast/common/check.hpp"

namespace radiocast::cache {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test scratch directory (removed up front so a crashed
/// previous run cannot leak state into this one).
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("radiocast_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

obs::JsonValue gap_config() {
  obs::JsonValue config = obs::JsonValue::object();
  config.set("n", obs::JsonValue(std::uint64_t{32}));
  config.set("trials", obs::JsonValue(std::uint64_t{5}));
  config.set("seed", obs::JsonValue(std::uint64_t{1}));
  config.set("eps", obs::JsonValue(0.1));
  return config;
}

obs::JsonValue small_record() {
  obs::JsonValue record = obs::JsonValue::object();
  record.set("value", obs::JsonValue(std::uint64_t{42}));
  record.set("ratio", obs::JsonValue(0.25));
  return record;
}

// --- SHA-256 -------------------------------------------------------------

TEST(Sha256, Fips180KnownVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b78"
            "52b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2"
            "0015ad");
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  // Feed a multi-block message in awkward chunk sizes: block-boundary
  // bugs (the 56/64-byte padding cases) show up exactly here.
  std::string message;
  for (int i = 0; i < 300; ++i) {
    message += static_cast<char>('a' + i % 26);
  }
  for (const std::size_t chunk : {1UL, 7UL, 55UL, 56UL, 63UL, 64UL, 65UL}) {
    Sha256 hasher;
    for (std::size_t at = 0; at < message.size(); at += chunk) {
      hasher.update(std::string_view(message).substr(
          at, std::min(chunk, message.size() - at)));
    }
    EXPECT_EQ(hasher.hex(), sha256_hex(message)) << "chunk " << chunk;
  }
}

// --- key derivation ------------------------------------------------------

TEST(CacheKey, GoldenValueIsStableAcrossProcesses) {
  // Pinned byte for byte. This exact key is also what
  // `radiocast_cli sweep run --runner gap --set n=32 --set trials=5
  //  --set seed=1 --set eps=0.1` derives in a separate process, so two
  // processes (or two machines) sharing a cache directory address the
  // same entry. If this test ever needs updating, every shared cache is
  // invalidated — that is a fingerprint bump, not a constant edit
  // (see key.hpp).
  EXPECT_EQ(derive_key("gap", gap_config()),
            "3197d8b7358132541887de663a21a79a175078cfc469aeeae1176285dca"
            "ce5fd");
}

TEST(CacheKey, InsertionOrderDoesNotMatter) {
  obs::JsonValue reordered = obs::JsonValue::object();
  reordered.set("eps", obs::JsonValue(0.1));
  reordered.set("seed", obs::JsonValue(std::uint64_t{1}));
  reordered.set("n", obs::JsonValue(std::uint64_t{32}));
  reordered.set("trials", obs::JsonValue(std::uint64_t{5}));
  EXPECT_EQ(canonical_config_text(reordered),
            canonical_config_text(gap_config()));
  EXPECT_EQ(derive_key("gap", reordered), derive_key("gap", gap_config()));
}

TEST(CacheKey, NestedObjectsCanonicalizeRecursively) {
  obs::JsonValue inner_a = obs::JsonValue::object();
  inner_a.set("b", obs::JsonValue(1));
  inner_a.set("a", obs::JsonValue(2));
  obs::JsonValue config_a = obs::JsonValue::object();
  config_a.set("outer", inner_a);

  obs::JsonValue inner_b = obs::JsonValue::object();
  inner_b.set("a", obs::JsonValue(2));
  inner_b.set("b", obs::JsonValue(1));
  obs::JsonValue config_b = obs::JsonValue::object();
  config_b.set("outer", inner_b);

  EXPECT_EQ(derive_key("r", config_a), derive_key("r", config_b));
}

TEST(CacheKey, SemanticConfigChangeChangesKey) {
  const std::string base = derive_key("gap", gap_config());

  obs::JsonValue other_n = gap_config();
  other_n.set("n", obs::JsonValue(std::uint64_t{33}));
  EXPECT_NE(derive_key("gap", other_n), base);

  obs::JsonValue other_eps = gap_config();
  other_eps.set("eps", obs::JsonValue(0.2));
  EXPECT_NE(derive_key("gap", other_eps), base);

  // An explicit lane-width override is conservatively part of the key
  // even though lane width cannot change results: a spurious miss is
  // cheap, a wrong hit would be unbounded (docs/SWEEP.md).
  obs::JsonValue lane = gap_config();
  lane.set("lane_width", obs::JsonValue(std::uint64_t{8}));
  EXPECT_NE(derive_key("gap", lane), base);
}

TEST(CacheKey, RunnerAndFingerprintAreKeyed) {
  const std::string base = derive_key("gap", gap_config());
  EXPECT_NE(derive_key("faults", gap_config()), base);
  EXPECT_NE(derive_key("gap", gap_config(), "radiocast-engines-v2"), base);
}

TEST(CacheKey, NumbersRenderExactly) {
  // The canonical text is the hashed text: integers must not round-trip
  // through double (2^63 is not representable) and doubles must
  // round-trip shortest-form, or keys drift between writers.
  obs::JsonValue config = obs::JsonValue::object();
  config.set("big", obs::JsonValue(std::uint64_t{9223372036854775809ULL}));
  config.set("frac", obs::JsonValue(0.1));
  const std::string text = canonical_config_text(config);
  EXPECT_NE(text.find("9223372036854775809"), std::string::npos) << text;
  EXPECT_NE(text.find("0.1"), std::string::npos) << text;
  EXPECT_EQ(text.find("0.100000"), std::string::npos) << text;
}

// --- store ---------------------------------------------------------------

TEST(ResultCache, MissOnEmptyStoreThenRoundTrip) {
  ResultCache cache(scratch_dir("cache_roundtrip"));
  const std::string key = derive_key("toy", gap_config());

  EXPECT_FALSE(cache.get(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1U);

  ASSERT_TRUE(cache.put(key, "toy", kEngineFingerprint, gap_config(),
                        small_record()));
  const auto back = cache.get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), small_record().dump());
  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().puts, 1U);
}

TEST(ResultCache, TruncatedEntryIsAMissAndIsDeleted) {
  const fs::path root = scratch_dir("cache_truncated");
  ResultCache cache(root);
  const std::string key = derive_key("toy", gap_config());
  ASSERT_TRUE(cache.put(key, "toy", kEngineFingerprint, gap_config(),
                        small_record()));

  // Truncate the entry mid-envelope, as a crashed disk or partial copy
  // would. The checksum (and the JSON parse) must catch it.
  fs::path entry;
  for (const auto& file : fs::recursive_directory_iterator(root)) {
    if (file.is_regular_file()) {
      entry = file.path();
    }
  }
  ASSERT_FALSE(entry.empty());
  fs::resize_file(entry, fs::file_size(entry) / 2);

  EXPECT_FALSE(cache.get(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1U);
  EXPECT_FALSE(fs::exists(entry)) << "corrupt entries must be deleted";

  // The caller recomputes and re-puts; the store must serve it again.
  ASSERT_TRUE(cache.put(key, "toy", kEngineFingerprint, gap_config(),
                        small_record()));
  EXPECT_TRUE(cache.get(key).has_value());
}

TEST(ResultCache, TamperedPayloadIsAMiss) {
  const fs::path root = scratch_dir("cache_tampered");
  ResultCache cache(root);
  const std::string key = derive_key("toy", gap_config());
  ASSERT_TRUE(cache.put(key, "toy", kEngineFingerprint, gap_config(),
                        small_record()));

  fs::path entry;
  for (const auto& file : fs::recursive_directory_iterator(root)) {
    if (file.is_regular_file()) {
      entry = file.path();
    }
  }
  std::string text;
  {
    std::ifstream in(entry);
    std::getline(in, text, '\0');
  }
  // Flip the cached value 42 -> 43: valid JSON, stale payload checksum.
  const std::size_t at = text.find("42");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 2, "43");
  {
    std::ofstream out(entry, std::ios::trunc);
    out << text;
  }

  EXPECT_FALSE(cache.get(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1U);
}

TEST(ResultCache, EntryUnderWrongKeyIsAMiss) {
  const fs::path root = scratch_dir("cache_wrongkey");
  ResultCache cache(root);
  const std::string key = derive_key("toy", gap_config());
  ASSERT_TRUE(cache.put(key, "toy", kEngineFingerprint, gap_config(),
                        small_record()));

  // Copy the (internally consistent) entry to a different key's path —
  // a renamed file, a botched sync. The embedded key must reject it.
  obs::JsonValue other = gap_config();
  other.set("n", obs::JsonValue(std::uint64_t{33}));
  const std::string other_key = derive_key("toy", other);
  const fs::path from =
      root / "objects" / key.substr(0, 2) / (key.substr(2) + ".json");
  const fs::path to = root / "objects" / other_key.substr(0, 2) /
                      (other_key.substr(2) + ".json");
  fs::create_directories(to.parent_path());
  fs::copy_file(from, to);

  EXPECT_FALSE(cache.get(other_key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1U);
  EXPECT_TRUE(cache.get(key).has_value()) << "the real entry still serves";
}

TEST(ResultCache, ScanReportsEveryEntry) {
  ResultCache cache(scratch_dir("cache_scan"));
  obs::JsonValue config = gap_config();
  for (const std::uint64_t n : {10ULL, 11ULL, 12ULL}) {
    config.set("n", obs::JsonValue(n));
    ASSERT_TRUE(cache.put(derive_key("toy", config), "toy",
                          kEngineFingerprint, config, small_record()));
  }
  const auto entries = cache.scan();
  ASSERT_EQ(entries.size(), 3U);
  for (const auto& e : entries) {
    EXPECT_EQ(e.runner, "toy");
    EXPECT_GT(e.bytes, 0U);
  }
  EXPECT_LT(entries[0].key, entries[1].key);
  EXPECT_LT(entries[1].key, entries[2].key);
}

TEST(ResultCache, GcEvictsOldestFirst) {
  ResultCache cache(scratch_dir("cache_gc"));
  obs::JsonValue config = gap_config();
  std::vector<std::string> keys;
  for (const std::uint64_t n : {10ULL, 11ULL, 12ULL}) {
    config.set("n", obs::JsonValue(n));
    keys.push_back(derive_key("toy", config));
    ASSERT_TRUE(cache.put(keys.back(), "toy", kEngineFingerprint, config,
                          small_record()));
  }
  // Pin distinct mtimes explicitly (puts can land within one filesystem
  // timestamp tick): keys[1] oldest, keys[0] middle, keys[2] newest.
  const auto now = fs::file_time_type::clock::now();
  const auto path_of = [&](const std::string& k) {
    return cache.root() / "objects" / k.substr(0, 2) /
           (k.substr(2) + ".json");
  };
  fs::last_write_time(path_of(keys[1]), now - std::chrono::hours(2));
  fs::last_write_time(path_of(keys[0]), now - std::chrono::hours(1));
  fs::last_write_time(path_of(keys[2]), now);

  EXPECT_EQ(cache.gc({.max_entries = 1}), 2U);
  EXPECT_EQ(cache.stats().evictions, 2U);
  const auto left = cache.scan();
  ASSERT_EQ(left.size(), 1U);
  EXPECT_EQ(left[0].key, keys[2]) << "newest entry survives";
}

TEST(ResultCache, GcEnforcesByteBudgetAndSweepsTmpFiles) {
  ResultCache cache(scratch_dir("cache_gc_bytes"));
  obs::JsonValue config = gap_config();
  for (const std::uint64_t n : {10ULL, 11ULL, 12ULL, 13ULL}) {
    config.set("n", obs::JsonValue(n));
    ASSERT_TRUE(cache.put(derive_key("toy", config), "toy",
                          kEngineFingerprint, config, small_record()));
  }
  std::uintmax_t total = 0;
  std::uintmax_t one = 0;
  for (const auto& e : cache.scan()) {
    total += e.bytes;
    one = e.bytes;
  }
  // A leftover tmp file from a crashed writer: gc must remove it without
  // counting it as an entry.
  const fs::path tmp = cache.root() / "objects" / "ab" / "leftover.json.tmp";
  fs::create_directories(tmp.parent_path());
  std::ofstream(tmp) << "{\"half\":";

  EXPECT_GE(cache.gc({.max_bytes = total - one}), 1U);
  EXPECT_LE(cache.scan().size(), 3U);
  EXPECT_FALSE(fs::exists(tmp));
}

}  // namespace
}  // namespace radiocast::cache
