// Exhaustive small-universe verification on the lower-bound family C_n:
// sweeping EVERY hidden set S (2^n - 1 instances) pins behaviors that
// sampled tests could miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/lb/find_set.hpp"
#include "radiocast/lb/strategies.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/sched/schedule.hpp"

namespace radiocast {
namespace {

TEST(CnExhaustive, StructureInvariantsForEveryS) {
  const std::size_t n = 10;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const auto s = graph::subset_from_mask(n, mask);
    const auto net = graph::make_cn(n, s);
    // Diameter: 2 if S = everything, else 3.
    const auto d = graph::diameter(net.g);
    if (s.size() == n) {
      EXPECT_EQ(d, 2U) << "mask=" << mask;
    } else {
      EXPECT_EQ(d, 3U) << "mask=" << mask;
    }
    // Sink degree == |S|; source degree == n.
    EXPECT_EQ(net.g.in_degree(net.sink), s.size());
    EXPECT_EQ(net.g.in_degree(net.source), n);
    EXPECT_TRUE(graph::all_reachable_from(net.g, net.source));
  }
}

TEST(CnExhaustive, DfsWithinTwoNForEveryS) {
  const std::size_t n = 8;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const auto net = graph::make_cn(n, graph::subset_from_mask(n, mask));
    const auto out = harness::run_dfs_broadcast(net.g, net.source,
                                                4 * (n + 2));
    EXPECT_TRUE(out.all_heard) << "mask=" << mask;
    EXPECT_LE(out.slots_run, 2 * (n + 2)) << "mask=" << mask;
  }
}

TEST(CnExhaustive, GreedyScheduleValidForEveryS) {
  const std::size_t n = 8;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const auto net = graph::make_cn(n, graph::subset_from_mask(n, mask));
    const auto plan = sched::greedy_cover_schedule(net.g, net.source);
    const auto check = sched::verify_schedule(net.g, net.source, plan);
    EXPECT_TRUE(check.valid) << "mask=" << mask;
    // Centralized, with full knowledge: 3 slots suffice for any S
    // (source; any second-layer non-S... actually: inform layer 2, then a
    // single S member to the sink). Greedy should find <= 3.
    EXPECT_LE(plan.length(), 3U) << "mask=" << mask;
  }
}

TEST(CnExhaustive, BgiBroadcastSucceedsOnEverySingletonAndPair) {
  // Randomized check over every |S| <= 2 instance (the hard, sparse ones)
  // with a modest per-instance trial count.
  const std::size_t n = 8;
  std::size_t failures = 0;
  std::size_t runs = 0;
  for (NodeId a = 1; a <= n; ++a) {
    for (NodeId b = a; b <= n; ++b) {
      std::vector<NodeId> s{a};
      if (b != a) {
        s.push_back(b);
      }
      const auto net = graph::make_cn(n, s);
      const proto::BroadcastParams params{
          .network_size_bound = net.g.node_count(),
          .degree_bound = net.g.max_in_degree(),
          .epsilon = 0.1,
          .stop_probability = 0.5,
      };
      for (int trial = 0; trial < 5; ++trial) {
        const NodeId sources[] = {net.source};
        const auto out = harness::run_bgi_broadcast(
            net.g, sources, params, 100 * a + 10 * b + trial,
            Slot{1} << 18);
        ++runs;
        failures += out.all_informed ? 0 : 1;
      }
    }
  }
  // Union bound target is eps = 0.1; allow a 2x Monte-Carlo cushion.
  EXPECT_LE(static_cast<double>(failures) / static_cast<double>(runs), 0.2)
      << failures << "/" << runs;
}

TEST(HittingGameExhaustive, ScanNeedsExactlyMinS) {
  const std::size_t n = 9;
  lb::ScanSingletonsStrategy scan;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    const auto s = graph::subset_from_mask(n, mask);
    const lb::HittingGame game(n, s);
    const lb::GameResult r = game.play(scan, n);
    ASSERT_TRUE(r.won) << "mask=" << mask;
    EXPECT_EQ(r.moves, s.front()) << "mask=" << mask;  // min(S) moves
    EXPECT_EQ(r.hit, s.front()) << "mask=" << mask;
  }
}

TEST(FindSetExhaustive, FoilingSetsForAllMoveSetsOverTinyUniverse) {
  // All possible 2-move sequences over {1..4} (each move any subset):
  // find_set must produce a Lemma-9-consistent non-empty S every time
  // (2 <= 4/2 moves).
  const std::size_t n = 4;
  for (std::uint64_t m1 = 0; m1 < 16; ++m1) {
    for (std::uint64_t m2 = 0; m2 < 16; ++m2) {
      const std::vector<lb::Move> moves{graph::subset_from_mask(n, m1),
                                        graph::subset_from_mask(n, m2)};
      const auto s = lb::find_foiling_set(n, moves);
      ASSERT_TRUE(s.has_value()) << m1 << "," << m2;
      EXPECT_FALSE(s->empty()) << m1 << "," << m2;
      EXPECT_TRUE(lb::is_foiling_set(n, *s, moves)) << m1 << "," << m2;
    }
  }
}

}  // namespace
}  // namespace radiocast
