// Parameterized property sweeps: invariants checked across whole families
// of inputs rather than hand-picked instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/experiment.hpp"
#include "radiocast/lb/reduction.hpp"
#include "radiocast/lb/strategies.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/stats/decay_analysis.hpp"

namespace radiocast {
namespace {

// --- Graph mutation invariants ------------------------------------------------

class GraphMutationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GraphMutationProperty, AdjacencyStaysConsistent) {
  rng::Rng rng(GetParam());
  const std::size_t n = 12;
  graph::Graph g(n);
  std::size_t expected_arcs = 0;
  for (int step = 0; step < 400; ++step) {
    const auto u = static_cast<NodeId>(rng.uniform(n));
    auto v = static_cast<NodeId>(rng.uniform(n));
    if (u == v) {
      v = (v + 1) % n;
    }
    if (rng.fair_coin()) {
      if (g.add_arc(u, v)) {
        ++expected_arcs;
      }
    } else {
      if (g.remove_arc(u, v)) {
        --expected_arcs;
      }
    }
  }
  EXPECT_EQ(g.arc_count(), expected_arcs);
  // Out-lists and in-lists must mirror each other exactly.
  std::size_t recount = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.out_neighbors(u)) {
      EXPECT_TRUE(g.has_arc(u, v));
      const auto in = g.in_neighbors(v);
      EXPECT_TRUE(std::ranges::binary_search(in, u));
      ++recount;
    }
    EXPECT_TRUE(std::ranges::is_sorted(g.out_neighbors(u)));
    EXPECT_TRUE(std::ranges::is_sorted(g.in_neighbors(u)));
  }
  EXPECT_EQ(recount, expected_arcs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphMutationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Prüfer trees --------------------------------------------------------------

class RandomTreeProperty
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomTreeProperty, AlwaysATree) {
  const std::size_t n = GetParam();
  rng::Rng rng(n * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::Graph g = graph::random_tree(n, rng);
    EXPECT_EQ(g.arc_count(), 2 * (n - 1));
    EXPECT_TRUE(graph::is_connected_undirected(g));
    EXPECT_TRUE(g.is_symmetric());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeProperty,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33, 100, 257));

// --- Decay DP invariants ---------------------------------------------------------

class DecayDpProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecayDpProperty, BoundsAndTheorem1) {
  const std::size_t d = GetParam();
  const unsigned k = 2 * ceil_log2(std::max<std::size_t>(d, 2));
  const double finite = stats::decay_success_probability(k, d);
  const double limit = stats::decay_limit_probability(d);
  EXPECT_GE(finite, 0.0);
  EXPECT_LE(finite, limit + 1e-12);  // finite horizon can't beat the limit
  if (d >= 2) {
    EXPECT_GE(limit, 2.0 / 3.0 - 1e-12);       // Theorem 1(i)
    EXPECT_GE(finite, 0.5 - 1e-12);            // Theorem 1(ii) (>= at d=2)
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DecayDpProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16, 23,
                                           32, 64, 100, 128, 256, 511, 512,
                                           1000));

// --- Broadcast success across topology families ---------------------------------

struct FamilyCase {
  std::string name;
  graph::Graph (*make)(std::uint64_t seed);
};

graph::Graph make_path(std::uint64_t) { return graph::path(20); }
graph::Graph make_cycle(std::uint64_t) { return graph::cycle(21); }
graph::Graph make_grid(std::uint64_t) { return graph::grid(5, 5); }
graph::Graph make_clique(std::uint64_t) { return graph::clique(16); }
graph::Graph make_star(std::uint64_t) { return graph::star(24); }
graph::Graph make_hypercube(std::uint64_t) { return graph::hypercube(4); }
graph::Graph make_gnp(std::uint64_t seed) {
  rng::Rng rng(seed);
  return graph::connected_gnp(40, 0.12, rng);
}
graph::Graph make_tree(std::uint64_t seed) {
  rng::Rng rng(seed);
  return graph::random_tree(30, rng);
}
graph::Graph make_geometric(std::uint64_t seed) {
  rng::Rng rng(seed);
  return graph::random_geometric(40, 0.25, rng);
}

class BroadcastFamilyProperty
    : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(BroadcastFamilyProperty, Lemma2SuccessRate) {
  const FamilyCase& fc = GetParam();
  const double epsilon = 0.1;
  int successes = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = fc.make(1000 + trial);
    const proto::BroadcastParams params{
        .network_size_bound = g.node_count(),
        .degree_bound = g.max_in_degree(),
        .epsilon = epsilon,
        .stop_probability = 0.5,
    };
    const NodeId sources[] = {0};
    const auto out = harness::run_bgi_broadcast(
        g, sources, params, 777 + trial, 1 << 20);
    successes += out.all_informed ? 1 : 0;
  }
  // Lemma 2 promises >= 1 - ε = 0.9; allow Monte-Carlo slack to 0.8.
  EXPECT_GE(static_cast<double>(successes) / trials, 0.8) << fc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, BroadcastFamilyProperty,
    ::testing::Values(FamilyCase{"path", make_path},
                      FamilyCase{"cycle", make_cycle},
                      FamilyCase{"grid", make_grid},
                      FamilyCase{"clique", make_clique},
                      FamilyCase{"star", make_star},
                      FamilyCase{"hypercube", make_hypercube},
                      FamilyCase{"gnp", make_gnp},
                      FamilyCase{"tree", make_tree},
                      FamilyCase{"geometric", make_geometric}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

// --- DFS 2n bound across random graphs -------------------------------------------

class DfsBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DfsBoundProperty, AlwaysWithin2n) {
  rng::Rng rng(GetParam());
  const std::size_t n = 20 + rng.uniform(40);
  const graph::Graph g = graph::connected_gnp(n, 0.1, rng);
  const auto out = harness::run_dfs_broadcast(g, 0, 4 * n);
  EXPECT_TRUE(out.all_heard);
  EXPECT_LE(out.slots_run, 2 * n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsBoundProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- The adversary beats every bundled strategy at every size --------------------

class AdversaryProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdversaryProperty, FoilsAllStrategiesForHalfN) {
  const std::size_t n = GetParam();
  lb::ScanSingletonsStrategy scan;
  lb::HalvingStrategy halving;
  lb::DoublingWindowStrategy windows;
  lb::RandomSubsetStrategy random(n);
  lb::ExplorerStrategy* strategies[] = {&scan, &halving, &windows, &random};
  for (lb::ExplorerStrategy* strategy : strategies) {
    const auto outcome = lb::foil_strategy(*strategy, n, n / 2);
    ASSERT_TRUE(outcome.has_value())
        << strategy->name() << " n=" << n;
    EXPECT_TRUE(outcome->lemma9_holds) << strategy->name() << " n=" << n;
    EXPECT_TRUE(outcome->replay_consistent)
        << strategy->name() << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdversaryProperty,
                         ::testing::Values(4, 6, 8, 12, 20, 32, 50, 64, 100,
                                           128, 200));

}  // namespace
}  // namespace radiocast
