#include "radiocast/proto/willard.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::proto {
namespace {

struct ElectionResult {
  bool everyone_agrees = false;
  NodeId leader = kNoNode;
  Slot slots = 0;
};

ElectionResult run_election(std::size_t n, std::uint64_t seed,
                            Slot max_slots) {
  sim::Simulator s(graph::clique(n),
                   sim::SimOptions{.seed = seed, .collision_detection = true});
  for (NodeId v = 0; v < n; ++v) {
    s.emplace_protocol<WillardElection>(v, n);
  }
  s.run_to_quiescence(max_slots);
  ElectionResult r;
  r.slots = s.now();
  r.everyone_agrees = true;
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = s.protocol_as<WillardElection>(v);
    if (!p.has_leader()) {
      r.everyone_agrees = false;
      return r;
    }
    if (v == 0) {
      r.leader = p.leader();
    } else if (p.leader() != r.leader) {
      r.everyone_agrees = false;
      return r;
    }
  }
  return r;
}

TEST(Willard, TwoNodes) {
  const ElectionResult r = run_election(2, 1, 1000);
  EXPECT_TRUE(r.everyone_agrees);
  EXPECT_LT(r.leader, 2U);
}

TEST(Willard, ElectsUniqueLeaderAcrossSizes) {
  for (const std::size_t n : {2U, 3U, 5U, 16U, 64U}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const ElectionResult r = run_election(n, seed, 100000);
      EXPECT_TRUE(r.everyone_agrees) << "n=" << n << " seed=" << seed;
      EXPECT_LT(r.leader, n) << "n=" << n;
    }
  }
}

TEST(Willard, FastInExpectation) {
  // Geometric backoff finds a lone transmitter in O(log n) expected
  // rounds; with 2 slots per round, runs should end far below the n-slot
  // mark for n = 256.
  double total = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const ElectionResult r = run_election(256, 100 + trial, 100000);
    ASSERT_TRUE(r.everyone_agrees);
    total += static_cast<double>(r.slots);
  }
  EXPECT_LT(total / trials, 200.0);
}

TEST(Willard, RequiresCollisionDetection) {
  sim::Simulator s(graph::clique(3), sim::SimOptions{.seed = 1});
  for (NodeId v = 0; v < 3; ++v) {
    s.emplace_protocol<WillardElection>(v, 3);
  }
  EXPECT_THROW(s.step(), ContractViolation);
}

TEST(Willard, LoneNodeRejected) {
  sim::Simulator s(graph::Graph(1),
                   sim::SimOptions{.seed = 1, .collision_detection = true});
  s.emplace_protocol<WillardElection>(0, 1);
  EXPECT_THROW(s.step(), ContractViolation);
}

TEST(Willard, LeaderAccessorGuard) {
  const WillardElection p(4);
  EXPECT_FALSE(p.has_leader());
  EXPECT_THROW(p.leader(), ContractViolation);
}

TEST(Willard, DifferentSeedsElectDifferentLeaders) {
  // Sanity: the winner is random, not structurally fixed.
  std::set<NodeId> winners;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ElectionResult r = run_election(16, seed, 100000);
    ASSERT_TRUE(r.everyone_agrees);
    winners.insert(r.leader);
  }
  EXPECT_GT(winners.size(), 2U);
}

// --- binary-search variant --------------------------------------------------

ElectionResult run_bs_election(std::size_t n, std::uint64_t seed,
                               Slot max_slots) {
  sim::Simulator s(graph::clique(n),
                   sim::SimOptions{.seed = seed, .collision_detection = true});
  for (NodeId v = 0; v < n; ++v) {
    s.emplace_protocol<WillardBinarySearchElection>(v, n);
  }
  s.run_to_quiescence(max_slots);
  ElectionResult r;
  r.slots = s.now();
  r.everyone_agrees = true;
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = s.protocol_as<WillardBinarySearchElection>(v);
    if (!p.has_leader()) {
      r.everyone_agrees = false;
      return r;
    }
    if (v == 0) {
      r.leader = p.leader();
    } else if (p.leader() != r.leader) {
      r.everyone_agrees = false;
      return r;
    }
  }
  return r;
}

TEST(WillardBinarySearch, ElectsUniqueLeaderAcrossSizes) {
  for (const std::size_t n : {2U, 3U, 5U, 16U, 64U, 256U}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const ElectionResult r = run_bs_election(n, seed, 200000);
      EXPECT_TRUE(r.everyone_agrees) << "n=" << n << " seed=" << seed;
      EXPECT_LT(r.leader, n) << "n=" << n;
    }
  }
}

TEST(WillardBinarySearch, FasterThanGeometricAtScale) {
  // The point of the binary search: O(log log n) rounds instead of
  // O(log n). Compare means at n = 1024.
  double geometric = 0;
  double binary = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const ElectionResult g = run_election(1024, 300 + trial, 200000);
    const ElectionResult b = run_bs_election(1024, 300 + trial, 200000);
    ASSERT_TRUE(g.everyone_agrees);
    ASSERT_TRUE(b.everyone_agrees);
    geometric += static_cast<double>(g.slots);
    binary += static_cast<double>(b.slots);
  }
  EXPECT_LT(binary, geometric);
}

TEST(WillardBinarySearch, TinyNetworkDoesNotDeadlock) {
  // n = 2 has rounds with no listener at all (both transmit); the
  // level-0-silence-is-a-collision rule keeps the search moving.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ElectionResult r = run_bs_election(2, seed, 50000);
    EXPECT_TRUE(r.everyone_agrees) << "seed=" << seed;
  }
}

TEST(WillardBinarySearch, RequiresCollisionDetection) {
  sim::Simulator s(graph::clique(3), sim::SimOptions{.seed = 1});
  for (NodeId v = 0; v < 3; ++v) {
    s.emplace_protocol<WillardBinarySearchElection>(v, 3);
  }
  EXPECT_THROW(s.step(), ContractViolation);
}

TEST(WillardBinarySearch, LeaderAccessorGuard) {
  const WillardBinarySearchElection p(4);
  EXPECT_FALSE(p.has_leader());
  EXPECT_THROW(p.leader(), ContractViolation);
}

}  // namespace
}  // namespace radiocast::proto
