// Differential suite for the bit-parallel trial engine.
//
// The batched engine's correctness claim is not statistical but exact:
// lane k of block b must produce the SAME BroadcastOutcome as scalar trial
// 64*b + k replayed through the counter-RNG protocol — same success flag,
// same completion slot, same slots_run, same transmission count — for
// every lane width (1, 4, 8 words per block row), for every supported
// stop probability, and under every lane-supported fault config. These
// tests pin that equivalence on the paper's topologies, across ragged
// trial counts (partial final blocks), across thread counts and widths,
// and on the retirement edge cases (every lane finishing in the same
// slot, stragglers, n = 1, horizon clamps, crash retirement).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "radiocast/fault/config.hpp"
#include "radiocast/fault/lane_plan.hpp"
#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/batch_runner.hpp"
#include "radiocast/proto/broadcast_batch.hpp"
#include "radiocast/proto/decay_batch.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/rng/sliced_bernoulli.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"

namespace radiocast {
namespace {

using harness::BroadcastOutcome;
using harness::TrialEngine;

constexpr std::uint64_t kSeed = 0xB17BA7C4;

// --- counter RNG ----------------------------------------------------------

TEST(CounterRng, WordIsAPureFunctionOfItsKey) {
  const rng::CounterRng a(42);
  const rng::CounterRng b(42);
  EXPECT_EQ(a.word(1, 2, 3), b.word(1, 2, 3));
  EXPECT_EQ(a.word(1, 2, 3), a.word(1, 2, 3));  // no hidden state
  EXPECT_NE(a.word(1, 2, 3), a.word(1, 2, 4));
  EXPECT_NE(a.word(1, 2, 3), a.word(1, 3, 3));
  EXPECT_NE(a.word(1, 2, 3), a.word(2, 2, 3));
  EXPECT_NE(a.word(1, 2, 3), rng::CounterRng(43).word(1, 2, 3));
  EXPECT_NE(a.word(1, 2, 3, 4), a.word(1, 2, 3, 5));
}

TEST(CounterRng, UnitUsesTheTop53Bits) {
  const rng::CounterRng rng(7);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const double u = rng.unit(1, i, 0);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    // The documented derivation, bit for bit (the FaultPlan streams were
    // migrated onto this and must not move).
    EXPECT_EQ(u, static_cast<double>(rng.word(1, i, 0) >> 11) * 0x1.0p-53);
    // The four-counter overload chains the same way.
    EXPECT_EQ(rng.unit(1, i, 0, 9),
              static_cast<double>(rng.word(1, i, 0, 9) >> 11) * 0x1.0p-53);
  }
}

TEST(CounterRng, DecayCoinBitMatchesScalarExtraction) {
  const rng::CounterRng rng(99);
  const std::uint64_t w = proto::decay_coin_word(rng, 3, 17, 5);
  for (std::size_t lane = 0; lane < sim::batch::kLanes; ++lane) {
    EXPECT_EQ(proto::decay_coin_stops(w, lane), ((w >> lane) & 1U) == 0);
  }
}

TEST(BatchSimulator, LanePrefixShapes) {
  EXPECT_EQ(sim::batch::lane_prefix(0), 0U);
  EXPECT_EQ(sim::batch::lane_prefix(1), 1U);
  EXPECT_EQ(sim::batch::lane_prefix(5), 0x1FU);
  EXPECT_EQ(sim::batch::lane_prefix(64), sim::batch::kAllLanes);
}

// --- bit-sliced Bernoulli -------------------------------------------------

TEST(SlicedBernoulli, FairCoinReproducesTheLegacyWord) {
  // p = 0.5 must compile to one slice whose stop mask is exactly the
  // complement of the legacy fair-coin word: every trajectory recorded
  // before biased coins existed is preserved bit for bit.
  const rng::SlicedBernoulli coin(0.5);
  EXPECT_EQ(coin.slices(), 1U);
  const rng::CounterRng rng(kSeed);
  for (std::uint64_t slot = 0; slot < 32; ++slot) {
    const std::uint64_t legacy = proto::decay_coin_word(rng, 7, slot, 3);
    EXPECT_EQ(proto::decay_stop_mask(rng, coin, 7, slot, 3), ~legacy);
  }
}

TEST(SlicedBernoulli, DegenerateProbabilitiesConsumeNoRandomness) {
  const rng::CounterRng rng(1);
  const rng::SlicedBernoulli zero(0.0);
  EXPECT_TRUE(zero.never());
  EXPECT_EQ(zero.mask(rng, 1, 2, 3, 4), 0U);
  const rng::SlicedBernoulli one(1.0);
  EXPECT_TRUE(one.always());
  EXPECT_EQ(one.mask(rng, 1, 2, 3, 4), ~std::uint64_t{0});
  EXPECT_TRUE(rng::SlicedBernoulli(-0.25).never());
  EXPECT_TRUE(rng::SlicedBernoulli(2.0).always());
  EXPECT_TRUE(rng::SlicedBernoulli().never());
}

TEST(SlicedBernoulli, DyadicProbabilitiesTrimToFewSlices) {
  EXPECT_EQ(rng::SlicedBernoulli(0.25).slices(), 2U);
  EXPECT_EQ(rng::SlicedBernoulli(0.75).slices(), 2U);
  EXPECT_EQ(rng::SlicedBernoulli(0.375).slices(), 3U);
  // Non-dyadic p rounds to 32 fractional bits and keeps them all.
  EXPECT_EQ(rng::SlicedBernoulli(1.0 / 3.0).slices(), 32U);
}

TEST(SlicedBernoulli, MaskFromIsTheHoistedFullKey) {
  const rng::CounterRng rng(77);
  const rng::SlicedBernoulli coin(0.3);
  for (std::uint64_t c = 0; c < 20; ++c) {
    EXPECT_EQ(coin.mask(rng, 5, 6, 7, c),
              coin.mask_from(rng.word(5, 6, 7), c));
  }
}

TEST(SlicedBernoulli, LaneBitMatchesTheScalarComparator) {
  // Reference semantics: lane k hits iff the top slices() binary digits
  // of its uniform, read MSB-first across the slice words, are strictly
  // below the same digits of the compiled fixed-point p (p's remaining
  // digits are zero by construction, so the prefix decides).
  const rng::CounterRng rng(2027);
  for (const double p : {0.25, 0.3, 0.6, 1.0 / 3.0, 0.9}) {
    const rng::SlicedBernoulli coin(p);
    const unsigned s = coin.slices();
    ASSERT_GT(s, 0U);
    const std::uint64_t p_prefix = coin.scaled() >> (32 - s);
    for (std::uint64_t c = 0; c < 8; ++c) {
      const std::uint64_t hits = coin.mask(rng, 11, 12, 13, c);
      const std::uint64_t base = rng.word(11, 12, 13, c);
      for (std::size_t lane = 0; lane < sim::batch::kLanes; ++lane) {
        std::uint64_t u_prefix = 0;
        for (unsigned i = 0; i < s; ++i) {
          const std::uint64_t w = i == 0 ? base : rng.word(11, 12, 13, c, i);
          u_prefix = (u_prefix << 1) | ((w >> lane) & 1U);
        }
        EXPECT_EQ(((hits >> lane) & 1U) != 0, u_prefix < p_prefix)
            << "p=" << p << " c=" << c << " lane=" << lane;
      }
    }
  }
}

TEST(SlicedBernoulli, HitRateTracksP) {
  const rng::CounterRng rng(404);
  for (const double p : {0.1, 0.3, 0.5, 0.85}) {
    const rng::SlicedBernoulli coin(p);
    std::uint64_t hits = 0;
    constexpr std::uint64_t kDraws = 4000;
    for (std::uint64_t c = 0; c < kDraws; ++c) {
      hits += static_cast<std::uint64_t>(
          std::popcount(coin.mask(rng, 21, 22, 23, c)));
    }
    const double rate =
        static_cast<double>(hits) /
        static_cast<double>(kDraws * sim::batch::kLanes);
    EXPECT_NEAR(rate, p, 0.01) << "p=" << p;
  }
}

// --- differential harness -------------------------------------------------

proto::BroadcastParams params_for(const graph::Graph& g) {
  return proto::BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };
}

constexpr std::size_t kWidths[] = {1, 4, 8};

// The engine-equivalence oracle: one scalar counter-RNG replay per trial
// vs the batched engine at every supported lane width — identical
// outcomes, field for field, trial for trial.
void expect_engines_agree(const graph::Graph& g,
                          std::span<const NodeId> sources,
                          const proto::BroadcastParams& params,
                          std::size_t trials,
                          const fault::FaultConfig* fault = nullptr,
                          Slot horizon = Slot{1} << 20) {
  ASSERT_TRUE(harness::batched_bgi_supported(params, fault));
  harness::TrialRunOptions scalar_opt;
  scalar_opt.engine = TrialEngine::kScalarCounter;
  scalar_opt.threads = 1;
  scalar_opt.fault = fault;
  const auto scalar = harness::run_bgi_broadcast_trials(
      g, sources, params, kSeed, trials, horizon, scalar_opt);
  ASSERT_EQ(scalar.size(), trials);
  for (const std::size_t width : kWidths) {
    harness::TrialRunOptions opt;
    opt.engine = TrialEngine::kBatched;
    opt.threads = 1;
    opt.fault = fault;
    opt.lane_width = width;
    const auto batched = harness::run_bgi_broadcast_trials(
        g, sources, params, kSeed, trials, horizon, opt);
    ASSERT_EQ(batched.size(), trials);
    for (std::size_t t = 0; t < trials; ++t) {
      EXPECT_EQ(batched[t], scalar[t])
          << "width " << width << ", trial " << t << " (block " << t / 64
          << ", lane " << t % 64
          << "): batched {informed=" << batched[t].all_informed
          << ", completion=" << batched[t].completion_slot
          << ", slots=" << batched[t].slots_run
          << ", tx=" << batched[t].transmissions << "} vs scalar {informed="
          << scalar[t].all_informed
          << ", completion=" << scalar[t].completion_slot
          << ", slots=" << scalar[t].slots_run
          << ", tx=" << scalar[t].transmissions << "}";
    }
  }
}

void expect_batched_equals_scalar(const graph::Graph& g,
                                  std::span<const NodeId> sources,
                                  std::size_t trials,
                                  Slot horizon = Slot{1} << 20) {
  expect_engines_agree(g, sources, params_for(g), trials, nullptr, horizon);
}

// Ragged trial counts around the 64-lane block size: a lone lane, a
// one-short block, exactly one block, a one-over block, and a ragged
// multi-block count (which is also a partial WORD for widths 4 and 8).
constexpr std::size_t kRaggedCounts[] = {1, 63, 64, 65, 130};

TEST(BatchDifferential, GnpMatchesScalarAtEveryRaggedCount) {
  rng::Rng graph_rng(2026);
  const graph::Graph g = graph::connected_gnp(48, 0.12, graph_rng);
  const NodeId sources[] = {0};
  for (const std::size_t trials : kRaggedCounts) {
    SCOPED_TRACE(trials);
    expect_batched_equals_scalar(g, sources, trials);
  }
}

TEST(BatchDifferential, CnLowerBoundFamilyMatchesScalar) {
  const NodeId s[] = {2, 5, 6, 11};
  const graph::CnNetwork net = graph::make_cn(12, s);
  const NodeId sources[] = {net.source};
  expect_batched_equals_scalar(net.g, sources, 130);
}

TEST(BatchDifferential, RandomTreeMatchesScalar) {
  rng::Rng graph_rng(7);
  const graph::Graph g = graph::random_tree(40, graph_rng);
  const NodeId sources[] = {0};
  expect_batched_equals_scalar(g, sources, 96);
}

TEST(BatchDifferential, MultiSourceMatchesScalar) {
  rng::Rng graph_rng(11);
  const graph::Graph g = graph::connected_gnp(32, 0.15, graph_rng);
  const NodeId sources[] = {0, 7, 19};
  expect_batched_equals_scalar(g, sources, 70);
}

TEST(BatchDifferential, HorizonClampMatchesScalar) {
  // A path is slow to cover, so a tight horizon leaves lanes unfinished:
  // the truncated outcomes (slots_run == horizon, partial success flags)
  // must still agree lane by lane.
  const graph::Graph g = graph::path(24);
  const NodeId sources[] = {0};
  expect_batched_equals_scalar(g, sources, 66, /*horizon=*/Slot{40});
}

TEST(BatchDifferential, FlipFirstAblationMatchesScalar) {
  rng::Rng graph_rng(15);
  const graph::Graph g = graph::connected_gnp(32, 0.15, graph_rng);
  const NodeId sources[] = {0};
  proto::BroadcastParams params = params_for(g);
  params.send_before_flip = false;
  expect_engines_agree(g, sources, params, 70);
}

// --- biased coins (the Hofri ablation, newly batchable) -------------------

TEST(BatchDifferential, BiasedCoinAblationMatchesScalar) {
  rng::Rng graph_rng(16);
  const graph::Graph g = graph::connected_gnp(32, 0.15, graph_rng);
  const NodeId sources[] = {0};
  // Dyadic (exact, few slices) and non-dyadic (full 32-slice comparator)
  // biases, both sides of fair.
  for (const double p : {0.25, 0.3, 1.0 / 3.0, 0.6}) {
    SCOPED_TRACE(p);
    proto::BroadcastParams params = params_for(g);
    params.stop_probability = p;
    expect_engines_agree(g, sources, params, 70);
  }
}

// --- repetition counts beyond the old 8-plane limit -----------------------

TEST(BatchDifferential, RepetitionsBeyond256MatchScalar) {
  // t = ceil(log2(N / eps)) lands in [256, 4096): the 16-plane phase
  // counters must carry past the old 8-bit ceiling.
  rng::Rng graph_rng(17);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  proto::BroadcastParams params = params_for(g);
  params.epsilon = 1e-80;
  ASSERT_GE(params.repetitions(), 256U);
  ASSERT_LT(params.repetitions(), 4096U);
  expect_engines_agree(g, sources, params, 70);
}

// --- fault configs as lane masks ------------------------------------------

const graph::Graph& fault_graph() {
  static const graph::Graph g = [] {
    rng::Rng graph_rng(909);
    return graph::connected_gnp(36, 0.14, graph_rng);
  }();
  return g;
}

fault::FaultConfig fault_seeded() {
  fault::FaultConfig f;
  f.seed = 0xFA17'0001;
  return f;
}

TEST(BatchFaults, CrashWithRecoveryMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.crashes = {.fraction = 0.3,
               .window = 30,
               .min_downtime = 5,
               .max_downtime = 25,
               .immune = {0}};
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f);
}

TEST(BatchFaults, CrashForeverMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.crashes = {.fraction = 0.25, .window = 20, .immune = {0}};
  // Crashed-forever informed nodes never terminate, so their lanes run to
  // the horizon (exactly like the classic engine): keep it tight.
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f, /*horizon=*/Slot{4096});
}

TEST(BatchFaults, BernoulliLossMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.loss = fault::LossModel::bernoulli(0.15);
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f);
}

TEST(BatchFaults, GilbertElliottLossMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.loss = fault::LossModel::gilbert_elliott({.p_good_to_bad = 0.1,
                                              .p_bad_to_good = 0.3,
                                              .loss_good = 0.02,
                                              .loss_bad = 0.9});
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f);
}

TEST(BatchFaults, ObliviousJammerMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.jammers.push_back(fault::JammerSpec::oblivious(0.25, /*budget=*/12));
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f);
}

TEST(BatchFaults, PeriodicJammerMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.jammers.push_back(fault::JammerSpec::periodic(5, /*phase=*/2));
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f);
}

TEST(BatchFaults, ReactiveJammerMatchesScalar) {
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.jammers.push_back(fault::JammerSpec::reactive(/*budget=*/6));
  expect_engines_agree(fault_graph(), sources, params_for(fault_graph()), 130,
                       &f);
}

TEST(BatchFaults, CombinedFaultsMatchScalarOnBiasedCoins) {
  // The E22-style worst case: crashes + loss + two jammer kinds, on a
  // biased coin — every lane plane active at once.
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.crashes = {.fraction = 0.2,
               .window = 25,
               .min_downtime = 4,
               .max_downtime = 20,
               .immune = {0}};
  f.loss = fault::LossModel::bernoulli(0.1);
  f.jammers.push_back(fault::JammerSpec::oblivious(0.05, /*budget=*/20));
  f.jammers.push_back(fault::JammerSpec::reactive(/*budget=*/4));
  proto::BroadcastParams params = params_for(fault_graph());
  params.stop_probability = 0.4;
  expect_engines_agree(fault_graph(), sources, params, 130, &f);
}

TEST(BatchFaults, RaggedTrialCountsMatchScalarUnderFaults) {
  // Partial blocks AND partial block rows: per-trial crash schedules and
  // valid-lane masking must stop exactly at trial_count for every width.
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.crashes = {.fraction = 0.3, .window = 15, .immune = {0}};
  f.loss = fault::LossModel::bernoulli(0.1);
  for (const std::size_t trials : {std::size_t{1}, std::size_t{65}}) {
    SCOPED_TRACE(trials);
    expect_engines_agree(fault_graph(), sources, params_for(fault_graph()),
                         trials, &f, /*horizon=*/Slot{4096});
  }
}

// --- thread-count invariance ---------------------------------------------

TEST(BatchThreads, OutcomesInvariantAcrossWorkerCounts) {
  rng::Rng graph_rng(404);
  const graph::Graph g = graph::connected_gnp(40, 0.12, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const auto run = [&](std::size_t threads) {
    return harness::run_bgi_broadcast_trials(
        g, sources, params, 31337, 200, Slot{1} << 20, TrialEngine::kBatched,
        threads);
  };
  const auto one = run(1);
  const auto four = run(4);
  const auto native = run(hw);
  ASSERT_EQ(one.size(), 200u);
  for (std::size_t t = 0; t < one.size(); ++t) {
    EXPECT_EQ(one[t], four[t]) << "trial " << t << " differs at 4 threads";
    EXPECT_EQ(one[t], native[t])
        << "trial " << t << " differs at " << hw << " threads";
  }
}

TEST(BatchThreads, FaultedOutcomesInvariantAcrossThreadsAndWidths) {
  // Threads split the trial range into block rows whose size depends on
  // the width, so (threads, width) together exercise every partitioning
  // seam; outcomes must not move.
  const NodeId sources[] = {0};
  fault::FaultConfig f = fault_seeded();
  f.crashes = {.fraction = 0.25,
               .window = 20,
               .min_downtime = 3,
               .max_downtime = 15,
               .immune = {0}};
  f.loss = fault::LossModel::bernoulli(0.08);
  const proto::BroadcastParams params = params_for(fault_graph());
  const auto run = [&](std::size_t threads, std::size_t width) {
    harness::TrialRunOptions opt;
    opt.engine = TrialEngine::kBatched;
    opt.threads = threads;
    opt.fault = &f;
    opt.lane_width = width;
    return harness::run_bgi_broadcast_trials(fault_graph(), sources, params,
                                             kSeed, 200, Slot{1} << 20, opt);
  };
  const auto baseline = run(1, 1);
  EXPECT_EQ(baseline, run(4, 1));
  EXPECT_EQ(baseline, run(1, 4));
  EXPECT_EQ(baseline, run(4, 4));
  EXPECT_EQ(baseline, run(4, 8));
}

TEST(BatchThreads, EnvThreadOverrideDoesNotChangeOutcomes) {
  // threads = 0 resolves through RADIOCAST_THREADS; outcomes must not move.
  rng::Rng graph_rng(405);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  const auto run_with_env = [&](const char* value) {
    ::setenv("RADIOCAST_THREADS", value, /*overwrite=*/1);
    auto r = harness::run_bgi_broadcast_trials(g, sources, params, 9, 130,
                                               Slot{1} << 20,
                                               TrialEngine::kBatched,
                                               /*threads=*/0);
    ::unsetenv("RADIOCAST_THREADS");
    return r;
  };
  EXPECT_EQ(run_with_env("1"), run_with_env("4"));
}

// --- engine selection -----------------------------------------------------

TEST(BatchDispatch, AutoPicksTheBatchedEngineWhenSupported) {
  rng::Rng graph_rng(12);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  ASSERT_TRUE(harness::batched_bgi_supported(params));
  const auto autoed = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 70, Slot{1} << 20, TrialEngine::kAuto, 1);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 70, Slot{1} << 20, TrialEngine::kBatched, 1);
  EXPECT_EQ(autoed, batched);
}

TEST(BatchDispatch, AutoPicksBatchedForBiasedCoinsAndLaneFaults) {
  // The two workloads the widened envelope was built for: the coin-bias
  // ablation and the E22 fault grid now dispatch to the batched engine.
  rng::Rng graph_rng(18);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  proto::BroadcastParams params = params_for(g);
  params.stop_probability = 0.6;
  fault::FaultConfig f = fault_seeded();
  f.loss = fault::LossModel::bernoulli(0.1);
  ASSERT_TRUE(harness::batched_bgi_supported(params, &f));
  harness::EngineSelection selected;
  harness::TrialRunOptions opt;
  opt.fault = &f;
  opt.threads = 1;
  opt.selected = &selected;
  const auto r = harness::run_bgi_broadcast_trials(g, sources, params, 21, 70,
                                                   Slot{1} << 20, opt);
  EXPECT_EQ(r.size(), 70U);
  EXPECT_EQ(selected.engine, TrialEngine::kBatched);
  EXPECT_TRUE(sim::batch::lane_width_supported(selected.lane_width));
}

TEST(BatchDispatch, AutoFallsBackToClassicForUnbatchableParams) {
  rng::Rng graph_rng(13);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  proto::BroadcastParams params = params_for(g);
  params.align_phases = false;  // free-running phases have no global grid
  EXPECT_FALSE(harness::batched_bgi_supported(params));
  harness::EngineSelection selected;
  harness::TrialRunOptions opt;
  opt.threads = 1;
  opt.selected = &selected;
  const auto autoed = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 40, Slot{1} << 20, opt);
  EXPECT_EQ(selected.engine, TrialEngine::kScalarClassic);
  EXPECT_EQ(selected.lane_width, 0U);
  const auto classic = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 40, Slot{1} << 20, TrialEngine::kScalarClassic,
      1);
  EXPECT_EQ(autoed, classic);
}

TEST(BatchDispatch, SelectionReportsEngineAndWidth) {
  rng::Rng graph_rng(19);
  const graph::Graph g = graph::connected_gnp(16, 0.3, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  harness::EngineSelection selected;
  harness::TrialRunOptions opt;
  opt.engine = TrialEngine::kBatched;
  opt.threads = 1;
  opt.lane_width = 4;
  opt.selected = &selected;
  (void)harness::run_bgi_broadcast_trials(g, sources, params, 3, 10,
                                          Slot{1} << 20, opt);
  EXPECT_EQ(selected, (harness::EngineSelection{TrialEngine::kBatched, 4}));
  EXPECT_STREQ(harness::engine_selection_label(selected), "batched_w4");
  opt.engine = TrialEngine::kScalarCounter;
  opt.lane_width = 0;
  (void)harness::run_bgi_broadcast_trials(g, sources, params, 3, 10,
                                          Slot{1} << 20, opt);
  EXPECT_EQ(selected,
            (harness::EngineSelection{TrialEngine::kScalarCounter, 0}));
  EXPECT_STREQ(harness::engine_selection_label(selected), "scalar_counter");
  EXPECT_STREQ(harness::engine_selection_label(
                   {TrialEngine::kBatched, 1}),
               "batched_w1");
  EXPECT_STREQ(harness::engine_selection_label(
                   {TrialEngine::kBatched, 8}),
               "batched_w8");
  EXPECT_STREQ(harness::engine_selection_label(
                   {TrialEngine::kScalarClassic, 0}),
               "scalar_classic");
}

TEST(BatchDispatch, SupportGateCoversEveryFallbackTrigger) {
  rng::Rng graph_rng(14);
  const graph::Graph g = graph::connected_gnp(16, 0.3, graph_rng);
  const proto::BroadcastParams base = params_for(g);
  EXPECT_TRUE(harness::batched_bgi_supported(base));
  EXPECT_TRUE(proto::batchable(base));

  // Biased coins are batchable now (bit-sliced Bernoulli draws).
  proto::BroadcastParams biased = base;
  biased.stop_probability = 0.6;
  EXPECT_TRUE(proto::batchable(biased));

  proto::BroadcastParams unaligned = base;
  unaligned.align_phases = false;
  EXPECT_FALSE(proto::batchable(unaligned));

  // The 16-plane counters hold any t an IEEE double can express:
  // even eps = 1e-300 only reaches t ~ 1000, far below 2^16, so the
  // repetition bound is a structural invariant, not a practical gate.
  proto::BroadcastParams huge_t = base;
  huge_t.epsilon = 1e-300;
  ASSERT_GE(huge_t.repetitions(), 256u);
  ASSERT_LT(huge_t.repetitions(), 1U << 16);
  EXPECT_TRUE(proto::batchable(huge_t));

  // The flip-first ablation IS batchable (order handled per lane).
  proto::BroadcastParams flip_first = base;
  flip_first.send_before_flip = false;
  EXPECT_TRUE(proto::batchable(flip_first));

  // Loss/jam/crash faults run as lane masks now...
  fault::FaultConfig faults;
  faults.loss = fault::LossModel::bernoulli(0.1);
  EXPECT_TRUE(harness::batched_bgi_supported(base, &faults));
  EXPECT_TRUE(fault::lane_fault_supported(faults));
  const fault::FaultConfig no_faults;
  EXPECT_TRUE(harness::batched_bgi_supported(base, &no_faults));

  // ...but scripted topology events would rewire the shared topology,
  // which the lane engine cannot express: the one remaining fault gate.
  fault::FaultConfig scripted;
  scripted.extra_events.push_back(
      {Slot{3}, sim::EventKind::kCrashNode, NodeId{1}, kNoNode});
  EXPECT_FALSE(fault::lane_fault_supported(scripted));
  EXPECT_FALSE(harness::batched_bgi_supported(base, &scripted));
}

// --- retirement edge cases ------------------------------------------------

TEST(BatchRetirement, SingleNodeNetworkFinishesInOneSlot) {
  // n = 1, the source is the whole network: all_informed from slot 0, so
  // every lane retires after the mandatory first step with completion 0.
  const graph::Graph g(1);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  for (const std::size_t trials : {std::size_t{1}, std::size_t{65}}) {
    const auto batched = harness::run_bgi_broadcast_trials(
        g, sources, params, 5, trials, Slot{1} << 20, TrialEngine::kBatched,
        1);
    for (const BroadcastOutcome& o : batched) {
      EXPECT_TRUE(o.all_informed);
      EXPECT_EQ(o.completion_slot, 0U);
      EXPECT_EQ(o.slots_run, 1U);
    }
  }
  expect_batched_equals_scalar(g, sources, 65);
}

TEST(BatchRetirement, AllLanesFinishingTheSameSlotRetireTogether) {
  // Every node is a source: lane-independent, deterministic completion at
  // the first predicate check — the all-lanes-retire-at-once edge.
  const graph::Graph g = graph::clique(6);
  const NodeId sources[] = {0, 1, 2, 3, 4, 5};
  const proto::BroadcastParams params = params_for(g);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 77, 64, Slot{1} << 20, TrialEngine::kBatched, 1);
  for (const BroadcastOutcome& o : batched) {
    EXPECT_TRUE(o.all_informed);
    EXPECT_EQ(o.completion_slot, 0U);
    EXPECT_EQ(o.slots_run, 1U);
  }
  expect_batched_equals_scalar(g, sources, 64);
}

TEST(BatchRetirement, StragglerLanesKeepRunningAfterOthersRetire) {
  // Multi-hop topology with relayer contention: collision luck differs
  // per lane, so lanes retire at different slots; retired lanes' counters
  // must freeze while stragglers continue.
  rng::Rng graph_rng(606);
  const graph::Graph g = graph::connected_gnp(40, 0.1, graph_rng);
  const NodeId sources[] = {0};
  expect_batched_equals_scalar(g, sources, 128);
  const proto::BroadcastParams params = params_for(g);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, kSeed, 128, Slot{1} << 20,
      TrialEngine::kBatched, 1);
  Slot min_run = kNever;
  Slot max_run = 0;
  for (const BroadcastOutcome& o : batched) {
    min_run = std::min(min_run, o.slots_run);
    max_run = std::max(max_run, o.slots_run);
  }
  EXPECT_LT(min_run, max_run) << "workload degenerate: every lane retired "
                                 "in the same slot, straggler path untested";
}

}  // namespace
}  // namespace radiocast
