// Differential suite for the bit-parallel trial engine.
//
// The batched engine's correctness claim is not statistical but exact:
// lane k of block b must produce the SAME BroadcastOutcome as scalar trial
// 64*b + k replayed through the counter-RNG protocol — same success flag,
// same completion slot, same slots_run, same transmission count. These
// tests pin that equivalence on the paper's topologies, across ragged
// trial counts (partial final blocks), across thread counts, and on the
// retirement edge cases (every lane finishing in the same slot, stragglers,
// n = 1, horizon clamps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <thread>
#include <vector>

#include "radiocast/graph/families.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/harness/batch_runner.hpp"
#include "radiocast/proto/broadcast_batch.hpp"
#include "radiocast/proto/decay_batch.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"

namespace radiocast {
namespace {

using harness::BroadcastOutcome;
using harness::TrialEngine;

// --- counter RNG ----------------------------------------------------------

TEST(CounterRng, WordIsAPureFunctionOfItsKey) {
  const rng::CounterRng a(42);
  const rng::CounterRng b(42);
  EXPECT_EQ(a.word(1, 2, 3), b.word(1, 2, 3));
  EXPECT_EQ(a.word(1, 2, 3), a.word(1, 2, 3));  // no hidden state
  EXPECT_NE(a.word(1, 2, 3), a.word(1, 2, 4));
  EXPECT_NE(a.word(1, 2, 3), a.word(1, 3, 3));
  EXPECT_NE(a.word(1, 2, 3), a.word(2, 2, 3));
  EXPECT_NE(a.word(1, 2, 3), rng::CounterRng(43).word(1, 2, 3));
  EXPECT_NE(a.word(1, 2, 3, 4), a.word(1, 2, 3, 5));
}

TEST(CounterRng, UnitUsesTheTop53Bits) {
  const rng::CounterRng rng(7);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const double u = rng.unit(1, i, 0);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    // The documented derivation, bit for bit (the FaultPlan streams were
    // migrated onto this and must not move).
    EXPECT_EQ(u, static_cast<double>(rng.word(1, i, 0) >> 11) * 0x1.0p-53);
  }
}

TEST(CounterRng, DecayCoinBitMatchesScalarExtraction) {
  const rng::CounterRng rng(99);
  const std::uint64_t w = proto::decay_coin_word(rng, 3, 17, 5);
  for (std::size_t lane = 0; lane < sim::batch::kLanes; ++lane) {
    EXPECT_EQ(proto::decay_coin_stops(w, lane), ((w >> lane) & 1U) == 0);
  }
}

TEST(BatchSimulator, LanePrefixShapes) {
  EXPECT_EQ(sim::batch::lane_prefix(0), 0U);
  EXPECT_EQ(sim::batch::lane_prefix(1), 1U);
  EXPECT_EQ(sim::batch::lane_prefix(5), 0x1FU);
  EXPECT_EQ(sim::batch::lane_prefix(64), sim::batch::kAllLanes);
}

// --- differential harness -------------------------------------------------

proto::BroadcastParams params_for(const graph::Graph& g) {
  return proto::BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = 0.1,
      .stop_probability = 0.5,
  };
}

void expect_batched_equals_scalar(const graph::Graph& g,
                                  std::span<const NodeId> sources,
                                  std::size_t trials,
                                  Slot horizon = Slot{1} << 20) {
  const proto::BroadcastParams params = params_for(g);
  ASSERT_TRUE(harness::batched_bgi_supported(params));
  const auto scalar = harness::run_bgi_broadcast_trials(
      g, sources, params, 0xB17BA7C4, trials, horizon,
      TrialEngine::kScalarCounter, /*threads=*/1);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 0xB17BA7C4, trials, horizon, TrialEngine::kBatched,
      /*threads=*/1);
  ASSERT_EQ(scalar.size(), trials);
  ASSERT_EQ(batched.size(), trials);
  for (std::size_t t = 0; t < trials; ++t) {
    EXPECT_EQ(batched[t], scalar[t])
        << "trial " << t << " (block " << t / 64 << ", lane " << t % 64
        << "): batched {informed=" << batched[t].all_informed
        << ", completion=" << batched[t].completion_slot
        << ", slots=" << batched[t].slots_run
        << ", tx=" << batched[t].transmissions << "} vs scalar {informed="
        << scalar[t].all_informed
        << ", completion=" << scalar[t].completion_slot
        << ", slots=" << scalar[t].slots_run
        << ", tx=" << scalar[t].transmissions << "}";
  }
}

// Ragged trial counts around the 64-lane block size: a lone lane, a
// one-short block, exactly one block, a one-over block, and a ragged
// multi-block count.
constexpr std::size_t kRaggedCounts[] = {1, 63, 64, 65, 130};

TEST(BatchDifferential, GnpMatchesScalarAtEveryRaggedCount) {
  rng::Rng graph_rng(2026);
  const graph::Graph g = graph::connected_gnp(48, 0.12, graph_rng);
  const NodeId sources[] = {0};
  for (const std::size_t trials : kRaggedCounts) {
    SCOPED_TRACE(trials);
    expect_batched_equals_scalar(g, sources, trials);
  }
}

TEST(BatchDifferential, CnLowerBoundFamilyMatchesScalar) {
  const NodeId s[] = {2, 5, 6, 11};
  const graph::CnNetwork net = graph::make_cn(12, s);
  const NodeId sources[] = {net.source};
  expect_batched_equals_scalar(net.g, sources, 130);
}

TEST(BatchDifferential, RandomTreeMatchesScalar) {
  rng::Rng graph_rng(7);
  const graph::Graph g = graph::random_tree(40, graph_rng);
  const NodeId sources[] = {0};
  expect_batched_equals_scalar(g, sources, 96);
}

TEST(BatchDifferential, MultiSourceMatchesScalar) {
  rng::Rng graph_rng(11);
  const graph::Graph g = graph::connected_gnp(32, 0.15, graph_rng);
  const NodeId sources[] = {0, 7, 19};
  expect_batched_equals_scalar(g, sources, 70);
}

TEST(BatchDifferential, HorizonClampMatchesScalar) {
  // A path is slow to cover, so a tight horizon leaves lanes unfinished:
  // the truncated outcomes (slots_run == horizon, partial success flags)
  // must still agree lane by lane.
  const graph::Graph g = graph::path(24);
  const NodeId sources[] = {0};
  expect_batched_equals_scalar(g, sources, 66, /*horizon=*/Slot{40});
}

// --- retirement edge cases ------------------------------------------------

TEST(BatchRetirement, SingleNodeNetworkFinishesInOneSlot) {
  // n = 1, the source is the whole network: all_informed from slot 0, so
  // every lane retires after the mandatory first step with completion 0.
  const graph::Graph g(1);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  for (const std::size_t trials : {std::size_t{1}, std::size_t{65}}) {
    const auto batched = harness::run_bgi_broadcast_trials(
        g, sources, params, 5, trials, Slot{1} << 20, TrialEngine::kBatched,
        1);
    for (const BroadcastOutcome& o : batched) {
      EXPECT_TRUE(o.all_informed);
      EXPECT_EQ(o.completion_slot, 0U);
      EXPECT_EQ(o.slots_run, 1U);
    }
  }
  expect_batched_equals_scalar(g, sources, 65);
}

TEST(BatchRetirement, AllLanesFinishingTheSameSlotRetireTogether) {
  // Every node is a source: lane-independent, deterministic completion at
  // the first predicate check — the all-lanes-retire-at-once edge.
  const graph::Graph g = graph::clique(6);
  const NodeId sources[] = {0, 1, 2, 3, 4, 5};
  const proto::BroadcastParams params = params_for(g);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 77, 64, Slot{1} << 20, TrialEngine::kBatched, 1);
  for (const BroadcastOutcome& o : batched) {
    EXPECT_TRUE(o.all_informed);
    EXPECT_EQ(o.completion_slot, 0U);
    EXPECT_EQ(o.slots_run, 1U);
  }
  expect_batched_equals_scalar(g, sources, 64);
}

TEST(BatchRetirement, StragglerLanesKeepRunningAfterOthersRetire) {
  // Multi-hop topology with relayer contention: collision luck differs
  // per lane, so lanes retire at different slots; retired lanes' counters
  // must freeze while stragglers continue.
  rng::Rng graph_rng(606);
  const graph::Graph g = graph::connected_gnp(40, 0.1, graph_rng);
  const NodeId sources[] = {0};
  expect_batched_equals_scalar(g, sources, 128);
  const proto::BroadcastParams params = params_for(g);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 0xB17BA7C4, 128, Slot{1} << 20,
      TrialEngine::kBatched, 1);
  Slot min_run = kNever;
  Slot max_run = 0;
  for (const BroadcastOutcome& o : batched) {
    min_run = std::min(min_run, o.slots_run);
    max_run = std::max(max_run, o.slots_run);
  }
  EXPECT_LT(min_run, max_run) << "workload degenerate: every lane retired "
                                 "in the same slot, straggler path untested";
}

// --- thread-count invariance ---------------------------------------------

TEST(BatchThreads, OutcomesInvariantAcrossWorkerCounts) {
  rng::Rng graph_rng(404);
  const graph::Graph g = graph::connected_gnp(40, 0.12, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const auto run = [&](std::size_t threads) {
    return harness::run_bgi_broadcast_trials(
        g, sources, params, 31337, 200, Slot{1} << 20, TrialEngine::kBatched,
        threads);
  };
  const auto one = run(1);
  const auto four = run(4);
  const auto native = run(hw);
  ASSERT_EQ(one.size(), 200u);
  for (std::size_t t = 0; t < one.size(); ++t) {
    EXPECT_EQ(one[t], four[t]) << "trial " << t << " differs at 4 threads";
    EXPECT_EQ(one[t], native[t])
        << "trial " << t << " differs at " << hw << " threads";
  }
}

TEST(BatchThreads, EnvThreadOverrideDoesNotChangeOutcomes) {
  // threads = 0 resolves through RADIOCAST_THREADS; outcomes must not move.
  rng::Rng graph_rng(405);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  const auto run_with_env = [&](const char* value) {
    ::setenv("RADIOCAST_THREADS", value, /*overwrite=*/1);
    auto r = harness::run_bgi_broadcast_trials(g, sources, params, 9, 130,
                                               Slot{1} << 20,
                                               TrialEngine::kBatched,
                                               /*threads=*/0);
    ::unsetenv("RADIOCAST_THREADS");
    return r;
  };
  EXPECT_EQ(run_with_env("1"), run_with_env("4"));
}

// --- engine selection -----------------------------------------------------

TEST(BatchDispatch, AutoPicksTheBatchedEngineWhenSupported) {
  rng::Rng graph_rng(12);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  const proto::BroadcastParams params = params_for(g);
  ASSERT_TRUE(harness::batched_bgi_supported(params));
  const auto autoed = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 70, Slot{1} << 20, TrialEngine::kAuto, 1);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 70, Slot{1} << 20, TrialEngine::kBatched, 1);
  EXPECT_EQ(autoed, batched);
}

TEST(BatchDispatch, AutoFallsBackToClassicForUnbatchableParams) {
  rng::Rng graph_rng(13);
  const graph::Graph g = graph::connected_gnp(24, 0.2, graph_rng);
  const NodeId sources[] = {0};
  proto::BroadcastParams params = params_for(g);
  params.stop_probability = 0.75;  // the Hofri biased-coin ablation
  EXPECT_FALSE(harness::batched_bgi_supported(params));
  const auto autoed = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 40, Slot{1} << 20, TrialEngine::kAuto, 1);
  const auto classic = harness::run_bgi_broadcast_trials(
      g, sources, params, 21, 40, Slot{1} << 20, TrialEngine::kScalarClassic,
      1);
  EXPECT_EQ(autoed, classic);
}

TEST(BatchDispatch, SupportGateCoversEveryFallbackTrigger) {
  rng::Rng graph_rng(14);
  const graph::Graph g = graph::connected_gnp(16, 0.3, graph_rng);
  const proto::BroadcastParams base = params_for(g);
  EXPECT_TRUE(harness::batched_bgi_supported(base));
  EXPECT_TRUE(proto::batchable(base));

  proto::BroadcastParams biased = base;
  biased.stop_probability = 0.6;
  EXPECT_FALSE(proto::batchable(biased));

  proto::BroadcastParams unaligned = base;
  unaligned.align_phases = false;
  EXPECT_FALSE(proto::batchable(unaligned));

  // t = ceil(log2(N/eps)) >= 256 overflows the 8-plane phase counters.
  proto::BroadcastParams huge_t = base;
  huge_t.epsilon = 1e-300;
  ASSERT_GE(huge_t.repetitions(), 256u);
  EXPECT_FALSE(proto::batchable(huge_t));

  // The flip-first ablation IS batchable (order handled per lane).
  proto::BroadcastParams flip_first = base;
  flip_first.send_before_flip = false;
  EXPECT_TRUE(proto::batchable(flip_first));

  fault::FaultConfig faults;
  faults.loss = fault::LossModel::bernoulli(0.1);
  EXPECT_FALSE(harness::batched_bgi_supported(base, &faults));
  const fault::FaultConfig no_faults;
  EXPECT_TRUE(harness::batched_bgi_supported(base, &no_faults));
}

TEST(BatchDifferential, FlipFirstAblationMatchesScalar) {
  rng::Rng graph_rng(15);
  const graph::Graph g = graph::connected_gnp(32, 0.15, graph_rng);
  const NodeId sources[] = {0};
  proto::BroadcastParams params = params_for(g);
  params.send_before_flip = false;
  const auto scalar = harness::run_bgi_broadcast_trials(
      g, sources, params, 1234, 70, Slot{1} << 20,
      TrialEngine::kScalarCounter, 1);
  const auto batched = harness::run_bgi_broadcast_trials(
      g, sources, params, 1234, 70, Slot{1} << 20, TrialEngine::kBatched, 1);
  EXPECT_EQ(batched, scalar);
}

}  // namespace
}  // namespace radiocast
