// Unit coverage for the harness trial runners themselves (the benches lean
// on them, so their observables must be trustworthy).
#include "radiocast/harness/experiment.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/proto/broadcast.hpp"

namespace radiocast::harness {
namespace {

proto::BroadcastParams params_for(const graph::Graph& g, double eps = 0.1) {
  return proto::BroadcastParams{
      .network_size_bound = g.node_count(),
      .degree_bound = g.max_in_degree(),
      .epsilon = eps,
      .stop_probability = 0.5,
  };
}

TEST(RunBgiBroadcast, RequiresAnInitiator) {
  const graph::Graph g = graph::path(3);
  EXPECT_THROW(
      run_bgi_broadcast(g, {}, params_for(g), 1, 1000),
      ContractViolation);
}

TEST(RunBgiBroadcast, OutcomeFieldsConsistent) {
  const graph::Graph g = graph::path(5);
  const NodeId sources[] = {0};
  const auto out = run_bgi_broadcast(g, sources, params_for(g), 3, 100000);
  if (out.all_informed) {
    EXPECT_NE(out.completion_slot, kNever);
    EXPECT_LE(out.completion_slot, out.slots_run);
    EXPECT_GT(out.transmissions, 0U);
  } else {
    EXPECT_EQ(out.completion_slot, kNever);
  }
}

TEST(RunBgiBroadcast, SingleNodeGraphIsTriviallyComplete) {
  const graph::Graph g(1);
  const NodeId sources[] = {0};
  const auto out = run_bgi_broadcast(g, sources, params_for(g), 1, 1000);
  EXPECT_TRUE(out.all_informed);
  EXPECT_EQ(out.completion_slot, 0U);
}

TEST(RunBgiBroadcast, DisconnectedTargetEndsByActivityDeath) {
  graph::Graph g(4);
  g.add_edge(0, 1);  // node 2, 3 unreachable
  const NodeId sources[] = {0};
  const auto out = run_bgi_broadcast(g, sources, params_for(g), 1, 1 << 20);
  EXPECT_FALSE(out.all_informed);
  EXPECT_LT(out.slots_run, Slot{1} << 20);  // stopped early, not timeout
}

TEST(RunBgiBroadcast, HonorsMaxSlots) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const NodeId sources[] = {0};
  const auto out = run_bgi_broadcast(g, sources, params_for(g), 1, 2);
  EXPECT_EQ(out.slots_run, 2U);
}

TEST(RunToTermination, RunsLongerAndTransmitsMore) {
  const graph::Graph g = graph::clique(12);
  const NodeId sources[] = {0};
  const auto params = params_for(g);
  const auto quick = run_bgi_broadcast(g, sources, params, 9, 1 << 20);
  const auto full =
      run_bgi_broadcast_to_termination(g, sources, params, 9, 1 << 20);
  ASSERT_TRUE(quick.all_informed);
  ASSERT_TRUE(full.all_informed);
  // Same seed: identical dynamics, but the full run keeps going until all
  // t phases are spent.
  EXPECT_EQ(quick.completion_slot, full.completion_slot);
  EXPECT_GE(full.slots_run, quick.slots_run);
  EXPECT_GE(full.transmissions, quick.transmissions);
  // After termination every node performed its full phase budget.
  const double expected_min =
      static_cast<double>(g.node_count()) * params.repetitions();
  EXPECT_GE(static_cast<double>(full.transmissions), expected_min);
}

TEST(RunBgiBfs, OutcomeFieldsConsistent) {
  const graph::Graph g = graph::grid(3, 3);
  const auto out = run_bgi_bfs(g, 0, params_for(g, 0.05), 4, 1 << 22);
  EXPECT_EQ(out.node_count, 9U);
  EXPECT_LE(out.correct_labels, out.node_count);
  if (out.labels_correct) {
    EXPECT_EQ(out.correct_labels, out.node_count);
    EXPECT_TRUE(out.all_informed);
  }
}

TEST(RunDfs, TransmissionsMatchTokenMoves) {
  const graph::Graph g = graph::path(7);
  const auto out = run_dfs_broadcast(g, 0, 100);
  ASSERT_TRUE(out.all_heard);
  // Token protocol: one transmission per slot, except the final slot in
  // which the source discovers it is done and stays silent.
  EXPECT_EQ(out.transmissions + 1, out.slots_run);
}

TEST(RunRoundRobin, SlotOrderDeterminesSpeed) {
  // Round-robin is id-ordered, so on a path from node 0 the frontier
  // rides the schedule (node t transmits in slot t: done at slot n-2),
  // while the descending direction waits a full round per hop.
  const graph::Graph g = graph::path(9);
  const auto ascending = run_round_robin(g, 0, 1000);
  const auto from_mid = run_round_robin(g, 4, 1000);
  ASSERT_TRUE(ascending.all_heard);
  ASSERT_TRUE(from_mid.all_heard);
  EXPECT_EQ(ascending.completion_slot, 7U);
  const auto d = graph::diameter(g);
  EXPECT_LE(from_mid.completion_slot, g.node_count() * (d + 1));
  EXPECT_GT(from_mid.completion_slot, ascending.completion_slot);
}

}  // namespace
}  // namespace radiocast::harness
