#include "radiocast/graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "radiocast/graph/algorithms.hpp"

namespace radiocast::graph {
namespace {

TEST(Generators, Path) {
  const Graph g = path(5);
  EXPECT_EQ(g.node_count(), 5U);
  EXPECT_EQ(g.arc_count(), 8U);  // 4 edges
  EXPECT_EQ(diameter(g), 4U);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Generators, PathSingleNode) {
  const Graph g = path(1);
  EXPECT_EQ(g.arc_count(), 0U);
  EXPECT_EQ(diameter(g), 0U);
}

TEST(Generators, Cycle) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.arc_count(), 12U);
  EXPECT_EQ(diameter(g), 3U);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(g.out_degree(v), 2U);
  }
}

TEST(Generators, CycleRejectsTiny) {
  EXPECT_THROW(cycle(2), ContractViolation);
}

TEST(Generators, Star) {
  const Graph g = star(10);
  EXPECT_EQ(g.in_degree(0), 9U);
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_EQ(g.out_degree(v), 1U);
    EXPECT_TRUE(g.has_edge(0, v));
  }
  EXPECT_EQ(diameter(g), 2U);
}

TEST(Generators, Clique) {
  const Graph g = clique(6);
  EXPECT_EQ(g.arc_count(), 30U);
  EXPECT_EQ(diameter(g), 1U);
  EXPECT_EQ(g.max_in_degree(), 5U);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7U);
  EXPECT_EQ(g.arc_count(), 24U);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_EQ(diameter(g), 2U);
}

TEST(Generators, Grid) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12U);
  // edges: 3*3 horizontal + 2*4 vertical = 17
  EXPECT_EQ(g.arc_count(), 34U);
  EXPECT_EQ(diameter(g), 5U);  // (3-1)+(4-1)
  EXPECT_EQ(g.max_in_degree(), 4U);
}

TEST(Generators, GridDegenerate) {
  const Graph g = grid(1, 5);
  EXPECT_EQ(diameter(g), 4U);
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.node_count(), 16U);
  EXPECT_EQ(g.arc_count(), 16U * 4U);
  EXPECT_EQ(diameter(g), 4U);
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(g.out_degree(v), 4U);
  }
}

TEST(Generators, RandomTreeIsTree) {
  rng::Rng rng(1);
  for (const std::size_t n : {1U, 2U, 3U, 10U, 57U, 200U}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_EQ(g.arc_count(), 2 * (n - (n > 0 ? 1 : 0)));
    EXPECT_TRUE(is_connected_undirected(g));
  }
}

TEST(Generators, RandomTreeVaries) {
  rng::Rng rng(2);
  const Graph a = random_tree(30, rng);
  const Graph b = random_tree(30, rng);
  EXPECT_NE(a, b);  // same seed stream, consecutive draws differ
}

TEST(Generators, GnpDensity) {
  rng::Rng rng(3);
  const std::size_t n = 300;
  const double p = 0.05;
  const Graph g = gnp(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1));
  // arc_count counts both directions: mean p*n*(n-1); allow 5 sigma.
  const double sigma = std::sqrt(expected / 2.0) * 2.0;
  EXPECT_NEAR(static_cast<double>(g.arc_count()), expected, 5 * sigma);
}

TEST(Generators, GnpEdgeCases) {
  rng::Rng rng(4);
  EXPECT_EQ(gnp(50, 0.0, rng).arc_count(), 0U);
  EXPECT_EQ(gnp(10, 1.0, rng).arc_count(), 90U);
}

TEST(Generators, ConnectedGnpIsConnected) {
  rng::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Graph g = connected_gnp(100, 0.005, rng);  // p well below log n / n
    EXPECT_TRUE(is_connected_undirected(g));
  }
}

TEST(Generators, RandomGeometricConnectedAndSymmetric) {
  rng::Rng rng(6);
  const Graph g = random_geometric(150, 0.12, rng);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(is_connected_undirected(g));
}

TEST(Generators, PathOfCliques) {
  const Graph g = path_of_cliques(5, 4);
  EXPECT_EQ(g.node_count(), 20U);
  EXPECT_EQ(diameter(g), 4U);
  // in-degree: own layer (3) + up to two adjacent layers (4+4).
  EXPECT_EQ(g.max_in_degree(), 11U);
}

TEST(Generators, PathOfCliquesWidthOneIsPath) {
  const Graph g = path_of_cliques(6, 1);
  EXPECT_EQ(g, path(6));
}

TEST(Generators, RandomDigraphReachable) {
  rng::Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_strongly_reachable_digraph(80, 40, rng);
    EXPECT_TRUE(all_reachable_from(g, 0));
    EXPECT_FALSE(g.is_symmetric());
  }
}

TEST(Generators, DeterministicGivenSeed) {
  rng::Rng a(42);
  rng::Rng b(42);
  EXPECT_EQ(connected_gnp(60, 0.1, a), connected_gnp(60, 0.1, b));
}

TEST(Generators, GeometricCellCountClampsToSqrtN) {
  // floor(1/radius) when the radius dominates ...
  EXPECT_EQ(geometric_cell_count(10'000, 0.25), 4U);
  // ... clamped to O(sqrt(n)) when it does not: 1e-4 alone would mean
  // 10^4 cells per side (10^8 buckets) for only 100 points.
  EXPECT_EQ(geometric_cell_count(100, 1e-4), 10U);
  // Degenerate corners stay at >= 1 cell.
  EXPECT_EQ(geometric_cell_count(0, 0.5), 1U);
  EXPECT_EQ(geometric_cell_count(100, 2.0), 1U);
  EXPECT_THROW(geometric_cell_count(100, 0.0), ContractViolation);
}

TEST(Generators, RandomGeometricTinyRadiusStaysSmall) {
  // Regression: the bucket grid used to be sized floor(1/radius)^2 with no
  // dependence on n — radius 1e-4 at n = 100 allocated ~10^8 empty vectors
  // (multiple GB). Post-clamp this must build instantly and degenerate to
  // the connectivity chain (no two of 100 random points are within 1e-4 of
  // each other with overwhelming probability).
  rng::Rng rng(8);
  const Graph g = random_geometric(100, 1e-4, rng);
  EXPECT_EQ(g.node_count(), 100U);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(is_connected_undirected(g));
  EXPECT_GE(g.arc_count(), 2U * 99U);
}

TEST(Generators, GridRejectsNodeIdOverflow) {
  // 2^17 x 2^17 = 2^34 ids would silently wrap NodeId; the guard must
  // fire before any allocation is attempted.
  EXPECT_THROW(grid(std::size_t{1} << 17, std::size_t{1} << 17),
               ContractViolation);
  EXPECT_THROW(grid(std::size_t{1} << 40, 2), ContractViolation);
}

TEST(Generators, HypercubeRejectsOverlargeDimension) {
  EXPECT_THROW(hypercube(26), ContractViolation);
  EXPECT_THROW(hypercube(40), ContractViolation);
}

TEST(Generators, PathOfCliquesRejectsNodeIdOverflow) {
  EXPECT_THROW(path_of_cliques(std::size_t{1} << 17, std::size_t{1} << 17),
               ContractViolation);
}

TEST(GraphBuilder, MatchesIncrementalConstruction) {
  // The bulk path must produce a Graph arc-for-arc identical to repeated
  // add_arc, including dedup of duplicate insertions, for a randomized
  // arc soup.
  rng::Rng rng(9);
  const std::size_t n = 40;
  Graph incremental(n);
  GraphBuilder builder(n);
  for (int i = 0; i < 2'000; ++i) {
    const auto u = static_cast<NodeId>(rng.uniform(n));
    const auto v = static_cast<NodeId>(rng.uniform(n));
    if (u == v) {
      continue;
    }
    if (rng.fair_coin()) {
      incremental.add_arc(u, v);
      builder.add_arc(u, v);
    } else {
      incremental.add_edge(u, v);
      builder.add_edge(u, v);
    }
  }
  const Graph bulk = builder.build();
  EXPECT_EQ(bulk, incremental);
  EXPECT_EQ(bulk.arc_count(), incremental.arc_count());
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_TRUE(std::ranges::equal(bulk.in_neighbors(v),
                                   incremental.in_neighbors(v)))
        << "in-neighbors of " << v;
  }
  EXPECT_EQ(bulk.max_in_degree(), incremental.max_in_degree());
}

TEST(GraphBuilder, RejectsInvalidArcs) {
  GraphBuilder b(4);
  EXPECT_THROW(b.add_arc(0, 4), ContractViolation);
  EXPECT_THROW(b.add_arc(2, 2), ContractViolation);
}

TEST(GraphBuilder, BuiltGraphSupportsFurtherMutation) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Graph g = b.build();
  const std::uint64_t v0 = g.version();
  EXPECT_TRUE(g.add_edge(2, 3));
  EXPECT_GT(g.version(), v0);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.add_arc(0, 1));  // already present
}

}  // namespace
}  // namespace radiocast::graph
