#include "radiocast/lb/find_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "radiocast/graph/families.hpp"
#include "radiocast/rng/rng.hpp"

namespace radiocast::lb {
namespace {

TEST(FindSet, NoMovesKeepsFullUniverse) {
  const auto s = find_foiling_set(5, {});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST(FindSet, NonSingletonMovesNeedNoRemovals) {
  // With S = {1..n}: every |M ∩ S| = |M| >= 2 and |M ∩ S̄| = 0 — already
  // consistent, so find_set removes nothing.
  const std::vector<Move> moves{{1, 2}, {3, 4, 5}, {1, 5}};
  const auto s = find_foiling_set(5, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->size(), 5U);
  EXPECT_TRUE(is_foiling_set(5, *s, moves));
}

TEST(FindSet, SingletonMoveIsExpelled) {
  const std::vector<Move> moves{{3}};
  const auto s = find_foiling_set(5, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(is_foiling_set(5, *s, moves));
  EXPECT_EQ(std::ranges::count(*s, 3U), 0);
}

TEST(FindSet, PairLosingOneElementLosesASecond) {
  // {3} expels 3; then {3,4} ∩ S̄ = {3} is a singleton, so one more member
  // of {3,4} (namely 4) must go, leaving |{3,4} ∩ S̄| = 2.
  const std::vector<Move> moves{{3}, {3, 4}};
  const auto s = find_foiling_set(5, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(is_foiling_set(5, *s, moves));
  EXPECT_EQ(std::ranges::count(*s, 3U), 0);
  EXPECT_EQ(std::ranges::count(*s, 4U), 0);
  EXPECT_EQ(s->size(), 3U);
}

TEST(FindSet, CascadingRemovals) {
  // {1}, then {1,2} drops 2, then {2,3} has a singleton S̄-intersection...
  const std::vector<Move> moves{{1}, {1, 2}, {2, 3}, {3, 4}};
  const auto s = find_foiling_set(9, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(is_foiling_set(9, *s, moves));
  EXPECT_FALSE(s->empty());
}

TEST(FindSet, ScanStrategySequence) {
  // The singleton scan {1},{2},...,{t}: each is expelled; with t = n/2 the
  // set S = {t+1..n} remains and answers are all "non-member revealed".
  const std::size_t n = 12;
  std::vector<Move> moves;
  for (NodeId x = 1; x <= n / 2; ++x) {
    moves.push_back({x});
  }
  const auto s = find_foiling_set(n, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (std::vector<NodeId>{7, 8, 9, 10, 11, 12}));
  EXPECT_TRUE(is_foiling_set(n, *s, moves));
}

TEST(FindSet, Lemma10NonEmptyForHalfNMoves) {
  // Lemma 10: any t <= n/2 moves leave a non-empty S. Adversarial-ish
  // random move sets, many trials.
  rng::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 6 + rng.uniform(20);
    const std::size_t t = n / 2;
    std::vector<Move> moves;
    for (std::size_t i = 0; i < t; ++i) {
      // Geometric sizes biased toward singletons — the worst inputs.
      const std::size_t size =
          1 + std::min<std::size_t>(rng.geometric(0.6), n - 1);
      Move m;
      while (m.size() < size) {
        m.push_back(static_cast<NodeId>(1 + rng.uniform(n)));
      }
      moves.push_back(normalize_move(std::move(m), n));
    }
    const auto s = find_foiling_set(n, moves);
    ASSERT_TRUE(s.has_value()) << "n=" << n << " trial=" << trial;
    EXPECT_FALSE(s->empty());
    EXPECT_TRUE(is_foiling_set(n, *s, moves)) << "n=" << n;
  }
}

TEST(FindSet, AllSingletonsPastHalfCanExhaust) {
  // n singleton moves covering the whole universe force S empty — the
  // procedure reports failure (only possible when t > n/2).
  const std::size_t n = 4;
  std::vector<Move> moves;
  for (NodeId x = 1; x <= n; ++x) {
    moves.push_back({x});
  }
  EXPECT_FALSE(find_foiling_set(n, moves).has_value());
}

TEST(FindSet, DuplicateMovesAreHarmless) {
  const std::vector<Move> moves{{2}, {2}, {2}};
  const auto s = find_foiling_set(5, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(is_foiling_set(5, *s, moves));
  EXPECT_EQ(s->size(), 4U);
}

TEST(FindSet, EmptyMovesAreIgnored) {
  const std::vector<Move> moves{{}, {1, 2}, {}};
  const auto s = find_foiling_set(4, moves);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->size(), 4U);
}

TEST(IsFoilingSet, DetectsCondition1Violation) {
  const std::vector<Move> moves{{1, 2}};
  const std::vector<NodeId> s{2, 3};  // {1,2} ∩ S = {2}: singleton
  EXPECT_FALSE(is_foiling_set(4, s, moves));
}

TEST(IsFoilingSet, DetectsCondition2Violation) {
  const std::vector<Move> moves{{1, 2, 3}};
  const std::vector<NodeId> s{2, 3};  // M ∩ S̄ = {1}: singleton, |M| > 1
  EXPECT_FALSE(is_foiling_set(4, s, moves));
}

TEST(IsFoilingSet, SingletonMoveMustBeOutside) {
  const std::vector<Move> moves{{2}};
  const std::vector<NodeId> in{2};     // M ∩ S = {2}: violates (1)
  const std::vector<NodeId> out{3};    // M ∩ S̄ = {2}: exactly right
  EXPECT_FALSE(is_foiling_set(4, in, moves));
  EXPECT_TRUE(is_foiling_set(4, out, moves));
}

TEST(PredeterminedAnswer, MatchesLemma9Rule) {
  EXPECT_EQ(predetermined_answer({4}).kind,
            RefereeAnswer::Kind::kComplement);
  EXPECT_EQ(predetermined_answer({4}).revealed, 4U);
  EXPECT_EQ(predetermined_answer({1, 2}).kind, RefereeAnswer::Kind::kSilent);
  EXPECT_EQ(predetermined_answer({}).kind, RefereeAnswer::Kind::kSilent);
}

TEST(FindSet, AnswersUnderFoilingSetMatchPredetermined) {
  // The whole point of Lemma 9: under the constructed S, the real referee
  // gives exactly the predetermined answers.
  rng::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 8 + rng.uniform(12);
    std::vector<Move> moves;
    for (std::size_t i = 0; i < n / 2; ++i) {
      const std::size_t size = 1 + rng.uniform(4);
      Move m;
      for (std::size_t j = 0; j < size; ++j) {
        m.push_back(static_cast<NodeId>(1 + rng.uniform(n)));
      }
      moves.push_back(normalize_move(std::move(m), n));
    }
    const auto s = find_foiling_set(n, moves);
    ASSERT_TRUE(s.has_value());
    const HittingGame game(n, *s);
    for (const Move& m : moves) {
      EXPECT_EQ(game.answer(m), predetermined_answer(m));
    }
  }
}

}  // namespace
}  // namespace radiocast::lb
