#include "radiocast/stats/decay_analysis.hpp"

#include <gtest/gtest.h>

#include "radiocast/common/check.hpp"
#include "radiocast/common/types.hpp"

namespace radiocast::stats {
namespace {

TEST(DecayLimit, BaseCases) {
  EXPECT_DOUBLE_EQ(decay_limit_probability(0), 0.0);
  EXPECT_DOUBLE_EQ(decay_limit_probability(1), 1.0);
}

TEST(DecayLimit, TwoCompetitorsIsTwoThirds) {
  // The paper's induction basis: P(∞,2) = 2/3.
  EXPECT_NEAR(decay_limit_probability(2), 2.0 / 3.0, 1e-12);
}

TEST(DecayLimit, Theorem1PartI) {
  // Theorem 1(i): P(∞,d) >= 2/3 for all d >= 2.
  const auto p = decay_limit_probabilities(2048);
  for (std::size_t d = 2; d <= 2048; ++d) {
    EXPECT_GE(p[d], 2.0 / 3.0 - 1e-12) << "d=" << d;
    EXPECT_LE(p[d], 1.0 + 1e-12);
  }
}

TEST(DecayLimit, SatisfiesRecurrence) {
  // Spot-check recurrence (1): P(∞,d) = Σ_j C(d,j) 2^-d P(∞,j).
  const std::size_t d = 7;
  const auto p = decay_limit_probabilities(d);
  double rhs = 0.0;
  double binom = 1.0;  // C(7,0)
  for (std::size_t j = 0; j <= d; ++j) {
    rhs += binom / 128.0 * p[j];
    binom = binom * static_cast<double>(d - j) / static_cast<double>(j + 1);
  }
  EXPECT_NEAR(p[d], rhs, 1e-12);
}

TEST(DecayFinite, BaseCases) {
  EXPECT_DOUBLE_EQ(decay_success_probability(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(decay_success_probability(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(decay_success_probability(1, 2), 0.0);
}

TEST(DecayFinite, HandComputedSmallCases) {
  // d=2, k=2: success iff exactly one of the two competitors survives the
  // first coin flip: probability 1/2.
  EXPECT_NEAR(decay_success_probability(2, 2), 0.5, 1e-12);
  // d=2, k=3: fail needs A_1 in {0,2} and then A_2 != 1.
  // Pr = 1/2 (A_1=1) + 1/4 * Pr[A_2=1 | A_1=2] = 1/2 + 1/4*1/2 = 5/8.
  EXPECT_NEAR(decay_success_probability(3, 2), 0.625, 1e-12);
}

TEST(DecayFinite, MonotoneInK) {
  for (const std::size_t d : {2U, 5U, 16U, 100U}) {
    double prev = 0.0;
    for (unsigned k = 1; k <= 30; ++k) {
      const double p = decay_success_probability(k, d);
      EXPECT_GE(p, prev - 1e-12) << "d=" << d << " k=" << k;
      prev = p;
    }
  }
}

TEST(DecayFinite, ConvergesToLimit) {
  for (const std::size_t d : {2U, 4U, 10U}) {
    const double lim = decay_limit_probability(d);
    const double p60 = decay_success_probability(60, d);
    EXPECT_NEAR(p60, lim, 1e-6) << "d=" << d;
    EXPECT_LE(p60, lim + 1e-12);
  }
}

TEST(DecayFinite, Theorem1PartII) {
  // Theorem 1(ii): P(k,d) > 1/2 for k >= 2 log2 d. At the exact boundary
  // d = 2, k = 2 the DP value is exactly 1/2 (the paper's "by Time=k"
  // convention reads as one extra observation slot; see EXPERIMENTS.md);
  // every other case is strictly above.
  for (std::size_t d = 2; d <= 1024; d *= 2) {
    const unsigned k = 2 * ceil_log2(d);
    const double p = decay_success_probability(k, d);
    if (d == 2) {
      EXPECT_NEAR(p, 0.5, 1e-12);
    } else {
      EXPECT_GT(p, 0.5) << "d=" << d << " k=" << k;
    }
  }
  // Non-power-of-two d (k strictly exceeds 2 log2 d): strictly better.
  for (const std::size_t d : {3U, 5U, 9U, 33U, 100U, 1000U}) {
    const unsigned k = 2 * ceil_log2(d);
    EXPECT_GT(decay_success_probability(k, d), 0.5) << "d=" << d;
  }
}

TEST(DecayFinite, VectorVersionConsistent) {
  const unsigned k = 8;
  const auto all = decay_success_probabilities(k, 32);
  for (const std::size_t d : {0U, 1U, 2U, 7U, 32U}) {
    EXPECT_DOUBLE_EQ(all[d], decay_success_probability(k, d));
  }
}

TEST(DecayFinite, LargeDNoUnderflowBlowup) {
  // Exercises the renormalizing binomial path (0.5^4096 underflows).
  const double p = decay_success_probability(24, 4096);
  EXPECT_GT(p, 0.5);
  EXPECT_LE(p, 1.0);
}

TEST(DecayBiased, ContinueZeroMeansOneShot) {
  // cont = 0: everybody stops after one transmission; success iff d == 1.
  EXPECT_DOUBLE_EQ(decay_success_probability(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(decay_success_probability(5, 1, 0.0), 1.0);
}

TEST(DecayBiased, ContinueOneNeverResolves) {
  // cont = 1: nobody ever stops; d >= 2 never resolves.
  EXPECT_DOUBLE_EQ(decay_success_probability(50, 4, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(decay_limit_probability(4, 1.0), 0.0);
}

TEST(DecayBiased, FairCoinWinsAtTheProtocolHorizon) {
  // Hofri [H87] studied other biases. Within the protocol's window
  // k = 2 log2 d the fair coin beats strong biases in either direction:
  // dying too fast rarely passes through 1; dying too slowly does not get
  // there within k slots.
  const std::size_t d = 64;
  const unsigned k = 2 * ceil_log2(d);
  const double fair = decay_success_probability(k, d, 0.5);
  EXPECT_GT(fair, decay_success_probability(k, d, 0.15));
  EXPECT_GT(fair, decay_success_probability(k, d, 0.9));
}

TEST(DecayBiased, SlowDecayWinsOnlyWithUnboundedTime) {
  // The flip side of the ablation: with no time bound, a stickier coin
  // (higher continue probability) has a *higher* limit success
  // probability — the active-count chain moves slower and is more likely
  // to pass through 1 — but it is useless at the protocol's horizon.
  const std::size_t d = 64;
  EXPECT_GT(decay_limit_probability(d, 0.9), decay_limit_probability(d, 0.5));
  const unsigned k = 2 * ceil_log2(d);
  EXPECT_LT(decay_success_probability(k, d, 0.9),
            decay_success_probability(k, d, 0.5));
}

TEST(DecayAnalysis, RejectsBadCont) {
  EXPECT_THROW(decay_success_probability(3, 2, -0.1),
               radiocast::ContractViolation);
  EXPECT_THROW(decay_limit_probability(2, 1.5),
               radiocast::ContractViolation);
}

}  // namespace
}  // namespace radiocast::stats
