#include "radiocast/proto/decay.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"
#include "radiocast/stats/decay_analysis.hpp"

namespace radiocast::proto {
namespace {

sim::Message msg() {
  sim::Message m;
  m.origin = 0;
  m.tag = 1;
  return m;
}

TEST(DecayRun, RejectsBadArguments) {
  EXPECT_THROW(DecayRun(0, msg()), ContractViolation);
  EXPECT_THROW(DecayRun(3, msg(), -0.1), ContractViolation);
  EXPECT_THROW(DecayRun(3, msg(), 1.1), ContractViolation);
}

TEST(DecayRun, AlwaysTransmitsAtLeastOnce) {
  rng::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    DecayRun run(4, msg());
    const sim::Action first = run.tick(rng);
    EXPECT_EQ(first.kind, sim::ActionKind::kTransmit);
    EXPECT_GE(run.transmissions_sent(), 1U);
  }
}

TEST(DecayRun, StopProbabilityOneSendsExactlyOnce) {
  rng::Rng rng(2);
  DecayRun run(5, msg(), 1.0);
  EXPECT_EQ(run.tick(rng).kind, sim::ActionKind::kTransmit);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run.tick(rng).kind, sim::ActionKind::kReceive);
  }
  EXPECT_EQ(run.transmissions_sent(), 1U);
  EXPECT_TRUE(run.phase_over());
}

TEST(DecayRun, StopProbabilityZeroSendsAllSlots) {
  rng::Rng rng(3);
  DecayRun run(6, msg(), 0.0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(run.tick(rng).kind, sim::ActionKind::kTransmit);
  }
  EXPECT_EQ(run.transmissions_sent(), 6U);
  EXPECT_TRUE(run.transmissions_done());
}

TEST(DecayRun, TickPastPhaseThrows) {
  rng::Rng rng(4);
  DecayRun run(2, msg());
  run.tick(rng);
  run.tick(rng);
  EXPECT_TRUE(run.phase_over());
  EXPECT_THROW(run.tick(rng), ContractViolation);
}

TEST(DecayRun, TransmitsThePayload) {
  rng::Rng rng(5);
  sim::Message m;
  m.origin = 7;
  m.tag = 42;
  m.data = {9, 9, 9};
  DecayRun run(3, m);
  const sim::Action a = run.tick(rng);
  ASSERT_EQ(a.kind, sim::ActionKind::kTransmit);
  EXPECT_EQ(a.message, m);
}

TEST(DecayRun, GeometricTransmissionCount) {
  // Number of transmissions = min(k, 1 + Geometric(1/2)); its mean for
  // large k is 2.
  rng::Rng rng(6);
  double total = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    DecayRun run(30, msg());
    while (!run.phase_over()) {
      (void)run.tick(rng);
    }
    total += run.transmissions_sent();
  }
  EXPECT_NEAR(total / trials, 2.0, 0.05);
}

TEST(DecayParams, PhaseLength) {
  EXPECT_EQ(decay_phase_length(1), 2U);  // clamped to d = 2
  EXPECT_EQ(decay_phase_length(2), 2U);
  EXPECT_EQ(decay_phase_length(3), 4U);
  EXPECT_EQ(decay_phase_length(4), 4U);
  EXPECT_EQ(decay_phase_length(5), 6U);
  EXPECT_EQ(decay_phase_length(1024), 20U);
  EXPECT_EQ(decay_phase_length(1025), 22U);
}

TEST(DecayParams, Repetitions) {
  EXPECT_EQ(decay_repetitions(8, 1.0), 3U);
  EXPECT_EQ(decay_repetitions(1000, 0.01), 17U);  // ceil(log2 1e5)
  EXPECT_EQ(decay_repetitions(1, 1.0), 1U);       // clamped to >= 1
  EXPECT_THROW(decay_repetitions(0, 0.5), ContractViolation);
  EXPECT_THROW(decay_repetitions(10, 0.0), ContractViolation);
  EXPECT_THROW(decay_repetitions(10, 1.5), ContractViolation);
}

/// d competitors around a hub, all starting Decay at slot 0: the Monte
/// Carlo success frequency must match the exact DP of
/// stats::decay_success_probability.
class DecayNode final : public sim::Protocol {
 public:
  DecayNode(unsigned k, double stop) : run_(k, msg(), stop) {}
  sim::Action on_slot(sim::NodeContext& ctx) override {
    if (run_.phase_over()) {
      return sim::Action::receive();
    }
    return run_.tick(ctx.rng());
  }

 private:
  DecayRun run_;
};

class CountingHub final : public sim::Protocol {
 public:
  sim::Action on_slot(sim::NodeContext&) override {
    return sim::Action::receive();
  }
  void on_receive(sim::NodeContext&, const sim::Message&) override {
    received = true;
  }
  bool received = false;
};

double monte_carlo_decay(std::size_t d, unsigned k, double stop,
                         int trials) {
  int successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    sim::Simulator s(graph::star(d + 1),
                     sim::SimOptions{static_cast<std::uint64_t>(trial) + 1});
    auto& hub = s.emplace_protocol<CountingHub>(0);
    for (NodeId v = 1; v <= d; ++v) {
      s.emplace_protocol<DecayNode>(v, k, stop);
    }
    for (unsigned t = 0; t < k; ++t) {
      s.step();
    }
    successes += hub.received ? 1 : 0;
  }
  return static_cast<double>(successes) / trials;
}

TEST(DecaySimVsExact, MatchesDynamicProgram) {
  const int trials = 4000;
  for (const std::size_t d : {2U, 3U, 5U, 8U}) {
    const unsigned k = decay_phase_length(d);
    const double exact = stats::decay_success_probability(k, d);
    const double mc = monte_carlo_decay(d, k, 0.5, trials);
    // 4000 trials: 4-sigma band is about 0.032.
    EXPECT_NEAR(mc, exact, 0.04) << "d=" << d << " k=" << k;
  }
}

TEST(DecaySimVsExact, BiasedCoinMatches) {
  const int trials = 4000;
  const std::size_t d = 4;
  const unsigned k = 6;
  for (const double stop : {0.3, 0.7}) {
    const double exact = stats::decay_success_probability(k, d, 1.0 - stop);
    const double mc = monte_carlo_decay(d, k, stop, trials);
    EXPECT_NEAR(mc, exact, 0.04) << "stop=" << stop;
  }
}

}  // namespace
}  // namespace radiocast::proto
