#include "radiocast/proto/gossip.hpp"

#include <gtest/gtest.h>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::proto {
namespace {

GossipParams params_for(const graph::Graph& g, double eps = 0.05) {
  const auto d = graph::diameter(g);
  return GossipParams{
      BroadcastParams{
          .network_size_bound = g.node_count(),
          .degree_bound = g.max_in_degree(),
          .epsilon = eps,
          .stop_probability = 0.5,
      },
      std::max<std::size_t>(d, g.node_count() > 1 ? 1 : 0)};
}

struct GossipResult {
  bool complete = false;         ///< everyone knows everything
  std::size_t min_rumors = 0;
  Slot last_learning_slot = 0;
  Slot slots = 0;
};

GossipResult run_gossip(const graph::Graph& g, std::uint64_t seed) {
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{seed});
  const std::size_t n = g.node_count();
  for (NodeId v = 0; v < n; ++v) {
    s.emplace_protocol<Gossip>(v, params);
  }
  s.run_to_quiescence(params.horizon() + 2);
  GossipResult r;
  r.slots = s.now();
  r.complete = true;
  r.min_rumors = n;
  for (NodeId v = 0; v < n; ++v) {
    const auto& p = s.protocol_as<Gossip>(v);
    r.min_rumors = std::min(r.min_rumors, p.rumor_count());
    r.last_learning_slot =
        std::max(r.last_learning_slot, p.last_learned_at());
    if (p.rumor_count() != n) {
      r.complete = false;
    }
  }
  return r;
}

TEST(Gossip, SingleNodeKnowsItself) {
  const GossipResult r = run_gossip(graph::Graph(1), 1);
  EXPECT_TRUE(r.complete);
}

TEST(Gossip, TwoNodesExchange) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_TRUE(run_gossip(graph::path(2), seed).complete)
        << "seed=" << seed;
  }
}

TEST(Gossip, CompletesOnPath) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const GossipResult r = run_gossip(graph::path(12), seed);
    EXPECT_TRUE(r.complete) << "seed=" << seed;
  }
}

TEST(Gossip, CompletesOnGrid) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_TRUE(run_gossip(graph::grid(4, 5), seed).complete)
        << "seed=" << seed;
  }
}

TEST(Gossip, CompletesOnClique) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_TRUE(run_gossip(graph::clique(16), seed).complete)
        << "seed=" << seed;
  }
}

TEST(Gossip, MostRandomGraphsComplete) {
  rng::Rng topo(3);
  int complete = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = graph::connected_gnp(30, 0.12, topo);
    complete += run_gossip(g, 100 + trial).complete ? 1 : 0;
  }
  EXPECT_GE(complete, trials * 8 / 10);
}

TEST(Gossip, RumorSetsAreMonotoneAndSound) {
  // A node can only know rumors that exist, always knows its own, and
  // set sizes never shrink over observation points.
  const graph::Graph g = graph::cycle(10);
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{5});
  for (NodeId v = 0; v < 10; ++v) {
    s.emplace_protocol<Gossip>(v, params);
  }
  std::vector<std::size_t> previous(10, 0);
  for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
    for (Slot i = 0; i < params.horizon() / 10; ++i) {
      s.step();
    }
    for (NodeId v = 0; v < 10; ++v) {
      const auto& p = s.protocol_as<Gossip>(v);
      EXPECT_TRUE(p.knows(v));
      EXPECT_GE(p.rumor_count(), previous[v]);
      previous[v] = p.rumor_count();
      for (const NodeId rumor : p.rumors()) {
        EXPECT_LT(rumor, 10U);
      }
    }
  }
}

TEST(Gossip, QuiescentAfterHorizon) {
  const graph::Graph g = graph::path(6);
  const auto params = params_for(g);
  sim::Simulator s(g, sim::SimOptions{7});
  for (NodeId v = 0; v < 6; ++v) {
    s.emplace_protocol<Gossip>(v, params);
  }
  for (Slot i = 0; i < params.horizon() + 1; ++i) {
    s.step();
  }
  EXPECT_TRUE(s.all_terminated());
  const auto tx_before = s.trace().total_transmissions();
  for (int i = 0; i < 20; ++i) {
    s.step();
  }
  EXPECT_EQ(s.trace().total_transmissions(), tx_before);
}

TEST(Gossip, LearningFinishesWellBeforeTheHorizon) {
  // The horizon is a safety budget; actual convergence is much earlier.
  const graph::Graph g = graph::grid(4, 4);
  const GossipResult r = run_gossip(g, 11);
  ASSERT_TRUE(r.complete);
  EXPECT_LT(r.last_learning_slot, params_for(g).horizon() / 2);
}

TEST(Gossip, RejectsZeroDiameterBoundOnMultiNode) {
  GossipParams params = params_for(graph::path(4));
  params.diameter_bound = 0;
  EXPECT_THROW(Gossip{params}, ContractViolation);
}

}  // namespace
}  // namespace radiocast::proto
