#include "radiocast/proto/convergecast.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "radiocast/graph/algorithms.hpp"
#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::proto {
namespace {

ConvergecastParams params_for(const graph::Graph& g, NodeId root,
                              double eps = 0.05) {
  const auto ecc = graph::eccentricity(g, root);
  return ConvergecastParams{
      BroadcastParams{
          .network_size_bound = g.node_count(),
          .degree_bound = g.max_in_degree(),
          .epsilon = eps,
          .stop_probability = 0.5,
      },
      std::max<std::size_t>(ecc, 1),
      /*sweeps=*/2};
}

struct CastResult {
  std::uint64_t root_aggregate = 0;
  std::uint64_t true_max = 0;
  bool exact = false;
};

CastResult run_cast(const graph::Graph& g, NodeId root,
                    std::uint64_t seed) {
  const auto params = params_for(g, root);
  sim::Simulator s(g, sim::SimOptions{seed});
  rng::Rng values(seed * 77 + 5);
  std::uint64_t true_max = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::uint64_t value = values.uniform(1 << 30);
    true_max = std::max(true_max, value);
    s.emplace_protocol<Convergecast>(v, params, v == root, value);
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());
  CastResult r;
  r.root_aggregate = s.protocol_as<Convergecast>(root).aggregate();
  r.true_max = true_max;
  r.exact = r.root_aggregate == true_max;
  return r;
}

TEST(Convergecast, PathRootLearnsTheMax) {
  int exact = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    exact += run_cast(graph::path(10), 0, seed).exact ? 1 : 0;
  }
  EXPECT_GE(exact, 8);
}

TEST(Convergecast, GridRootLearnsTheMax) {
  int exact = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    exact += run_cast(graph::grid(5, 5), 12, seed).exact ? 1 : 0;
  }
  EXPECT_GE(exact, 8);
}

TEST(Convergecast, TreeRootLearnsTheMax) {
  rng::Rng topo(9);
  int exact = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    const graph::Graph g = graph::random_tree(25, topo);
    exact += run_cast(g, 0, 40 + trial).exact ? 1 : 0;
  }
  EXPECT_GE(exact, trials * 3 / 4);
}

TEST(Convergecast, AggregateNeverExceedsTrueMax) {
  // Soundness: the aggregate is a max of real values, never an invention.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CastResult r = run_cast(graph::cycle(12), 0, seed);
    EXPECT_LE(r.root_aggregate, r.true_max);
  }
}

TEST(Convergecast, RootWithMaxValueIsTrivial) {
  // If the root itself holds the max it needs nobody.
  const graph::Graph g = graph::path(6);
  const auto params = params_for(g, 0);
  sim::Simulator s(g, sim::SimOptions{3});
  for (NodeId v = 0; v < 6; ++v) {
    s.emplace_protocol<Convergecast>(v, params, v == 0,
                                     v == 0 ? 1000000U : v);
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());
  EXPECT_EQ(s.protocol_as<Convergecast>(0).aggregate(), 1000000U);
}

TEST(Convergecast, OnlyOneLayerTransmitsPerRound) {
  const graph::Graph g = graph::path(8);
  const auto params = params_for(g, 0);
  sim::Simulator s(g, sim::SimOptions{.seed = 4,
                                      .collision_detection = false,
                                      .trace_slots = true});
  for (NodeId v = 0; v < 8; ++v) {
    s.emplace_protocol<Convergecast>(v, params, v == 0, v);
  }
  s.run_until([&](const sim::Simulator& sim) {
    return sim.now() >= params.horizon();
  }, params.horizon());
  const auto truth = graph::bfs_distances(g, 0);
  for (const auto& rec : s.trace().slots()) {
    if (rec.slot < params.bfs_horizon() || rec.transmitters.empty()) {
      continue;
    }
    // All transmitters of a stage-2 slot share one BFS layer.
    const auto first_layer = truth[rec.transmitters.front()];
    for (const NodeId u : rec.transmitters) {
      EXPECT_EQ(truth[u], first_layer) << "slot " << rec.slot;
    }
  }
}

TEST(Convergecast, ParamsValidation) {
  const graph::Graph g = graph::path(4);
  auto params = params_for(g, 0);
  params.depth_bound = 0;
  EXPECT_THROW(Convergecast(params, true, 1), ContractViolation);
  auto zero_sweeps = params_for(g, 0);
  zero_sweeps.sweeps = 0;
  EXPECT_THROW(Convergecast(zero_sweeps, true, 1), ContractViolation);
}

}  // namespace
}  // namespace radiocast::proto
