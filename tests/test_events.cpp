#include "radiocast/sim/events.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/network.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push({5, EventKind::kAddEdge, 0, 1});
  q.push({2, EventKind::kRemoveEdge, 1, 2});
  q.push({2, EventKind::kCrashNode, 3, kNoNode});
  EXPECT_EQ(q.pending(), 3U);
  const auto due2 = q.pop_due(2);
  ASSERT_EQ(due2.size(), 2U);
  EXPECT_EQ(due2[0].kind, EventKind::kRemoveEdge);  // insertion order kept
  EXPECT_EQ(due2[1].kind, EventKind::kCrashNode);
  EXPECT_TRUE(q.pop_due(4).empty());
  const auto due5 = q.pop_due(5);
  ASSERT_EQ(due5.size(), 1U);
  EXPECT_EQ(due5[0].at, 5U);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.push({5, EventKind::kAddEdge, 0, 1});
  (void)q.pop_due(5);
  EXPECT_THROW(q.push({3, EventKind::kAddEdge, 0, 2}), ContractViolation);
}

// Regression: the past-guard used to compare against the last *stored*
// event (events_[next_-1].at), which after unsorted pushes is not the
// queue's clock. Pushing {10} then {3}, popping through slot 5 and then
// pushing {4} slipped a stale event past the guard.
TEST(EventQueue, RejectsPastEventAfterUnsortedPushes) {
  EventQueue q;
  q.push({10, EventKind::kAddEdge, 0, 1});
  q.push({3, EventKind::kRemoveEdge, 1, 2});  // out of order on purpose
  const auto due = q.pop_due(5);
  ASSERT_EQ(due.size(), 1U);
  EXPECT_EQ(due[0].at, 3U);
  // The queue's clock is now 5: slot 4 is the past even though the last
  // popped event sat at slot 3.
  EXPECT_THROW(q.push({4, EventKind::kAddEdge, 0, 2}), ContractViolation);
  // Scheduling at exactly the clock or later is still fine, and delivery
  // order stays correct around the still-pending {10}.
  q.push({5, EventKind::kCrashNode, 2, kNoNode});
  q.push({7, EventKind::kReviveNode, 2, kNoNode});
  const auto rest = q.pop_due(10);
  ASSERT_EQ(rest.size(), 3U);
  EXPECT_EQ(rest[0].at, 5U);
  EXPECT_EQ(rest[1].at, 7U);
  EXPECT_EQ(rest[2].at, 10U);
}

// The clock advances even when a pop returns nothing: time passed, so
// earlier slots are still the past.
TEST(EventQueue, EmptyPopStillAdvancesTheClock) {
  EventQueue q;
  EXPECT_TRUE(q.pop_due(6).empty());
  EXPECT_THROW(q.push({2, EventKind::kAddEdge, 0, 1}), ContractViolation);
  q.push({6, EventKind::kAddEdge, 0, 1});  // at the clock: allowed
  EXPECT_EQ(q.pending(), 1U);
}

TEST(Network, ApplyEdgeEvents) {
  Network net(graph::path(3));
  net.schedule({1, EventKind::kRemoveEdge, 0, 1});
  net.schedule({2, EventKind::kAddEdge, 0, 2});
  EXPECT_EQ(net.apply_due_events(0), 0U);
  EXPECT_TRUE(net.topology().has_edge(0, 1));
  EXPECT_EQ(net.apply_due_events(1), 1U);
  EXPECT_FALSE(net.topology().has_edge(0, 1));
  EXPECT_EQ(net.apply_due_events(2), 1U);
  EXPECT_TRUE(net.topology().has_edge(0, 2));
}

TEST(Network, ApplyArcEvents) {
  Network net(graph::Graph(3));
  net.schedule({0, EventKind::kAddArc, 0, 1});
  net.apply_due_events(0);
  EXPECT_TRUE(net.topology().has_arc(0, 1));
  EXPECT_FALSE(net.topology().has_arc(1, 0));
  net.schedule({1, EventKind::kRemoveArc, 0, 1});
  net.apply_due_events(1);
  EXPECT_EQ(net.topology().arc_count(), 0U);
}

TEST(Network, CrashAndRevive) {
  Network net(graph::path(3));
  EXPECT_EQ(net.alive_count(), 3U);
  net.schedule({0, EventKind::kCrashNode, 1, kNoNode});
  net.schedule({4, EventKind::kReviveNode, 1, kNoNode});
  net.apply_due_events(0);
  EXPECT_FALSE(net.is_alive(1));
  EXPECT_EQ(net.alive_count(), 2U);
  net.apply_due_events(4);
  EXPECT_TRUE(net.is_alive(1));
}

TEST(Network, CrashIsIdempotent) {
  Network net(graph::path(2));
  net.crash(0);
  net.crash(0);
  EXPECT_EQ(net.alive_count(), 1U);
  net.revive(0);
  net.revive(0);
  EXPECT_EQ(net.alive_count(), 2U);
}

/// Transmits every slot.
class Beacon final : public Protocol {
 public:
  Action on_slot(NodeContext& ctx) override {
    Message m;
    m.origin = ctx.id();
    return Action::transmit(m);
  }
};

class Listener final : public Protocol {
 public:
  Action on_slot(NodeContext&) override { return Action::receive(); }
  void on_receive(NodeContext&, const Message&) override { ++received; }
  int received = 0;
};

TEST(SimulatorEvents, EdgeRemovalTakesEffectAtItsSlot) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().schedule({2, EventKind::kRemoveEdge, 0, 1});
  for (int i = 0; i < 4; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.received, 2);  // slots 0, 1 only
}

TEST(SimulatorEvents, EdgeAdditionEnablesDelivery) {
  Simulator s(graph::Graph(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().schedule({3, EventKind::kAddEdge, 0, 1});
  for (int i = 0; i < 5; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.received, 2);  // slots 3, 4
}

TEST(SimulatorEvents, CrashSilencesTransmitter) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().schedule({1, EventKind::kCrashNode, 0, kNoNode});
  s.network().schedule({3, EventKind::kReviveNode, 0, kNoNode});
  for (int i = 0; i < 4; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.received, 2);  // slots 0 and 3
}

}  // namespace
}  // namespace radiocast::sim
