#include "radiocast/sim/events.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "radiocast/graph/generators.hpp"
#include "radiocast/sim/network.hpp"
#include "radiocast/sim/simulator.hpp"

namespace radiocast::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push({5, EventKind::kAddEdge, 0, 1});
  q.push({2, EventKind::kRemoveEdge, 1, 2});
  q.push({2, EventKind::kCrashNode, 3, kNoNode});
  EXPECT_EQ(q.pending(), 3U);
  const auto due2 = q.pop_due(2);
  ASSERT_EQ(due2.size(), 2U);
  EXPECT_EQ(due2[0].kind, EventKind::kRemoveEdge);  // insertion order kept
  EXPECT_EQ(due2[1].kind, EventKind::kCrashNode);
  EXPECT_TRUE(q.pop_due(4).empty());
  const auto due5 = q.pop_due(5);
  ASSERT_EQ(due5.size(), 1U);
  EXPECT_EQ(due5[0].at, 5U);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.push({5, EventKind::kAddEdge, 0, 1});
  (void)q.pop_due(5);
  EXPECT_THROW(q.push({3, EventKind::kAddEdge, 0, 2}), ContractViolation);
}

TEST(Network, ApplyEdgeEvents) {
  Network net(graph::path(3));
  net.schedule({1, EventKind::kRemoveEdge, 0, 1});
  net.schedule({2, EventKind::kAddEdge, 0, 2});
  EXPECT_EQ(net.apply_due_events(0), 0U);
  EXPECT_TRUE(net.topology().has_edge(0, 1));
  EXPECT_EQ(net.apply_due_events(1), 1U);
  EXPECT_FALSE(net.topology().has_edge(0, 1));
  EXPECT_EQ(net.apply_due_events(2), 1U);
  EXPECT_TRUE(net.topology().has_edge(0, 2));
}

TEST(Network, ApplyArcEvents) {
  Network net(graph::Graph(3));
  net.schedule({0, EventKind::kAddArc, 0, 1});
  net.apply_due_events(0);
  EXPECT_TRUE(net.topology().has_arc(0, 1));
  EXPECT_FALSE(net.topology().has_arc(1, 0));
  net.schedule({1, EventKind::kRemoveArc, 0, 1});
  net.apply_due_events(1);
  EXPECT_EQ(net.topology().arc_count(), 0U);
}

TEST(Network, CrashAndRevive) {
  Network net(graph::path(3));
  EXPECT_EQ(net.alive_count(), 3U);
  net.schedule({0, EventKind::kCrashNode, 1, kNoNode});
  net.schedule({4, EventKind::kReviveNode, 1, kNoNode});
  net.apply_due_events(0);
  EXPECT_FALSE(net.is_alive(1));
  EXPECT_EQ(net.alive_count(), 2U);
  net.apply_due_events(4);
  EXPECT_TRUE(net.is_alive(1));
}

TEST(Network, CrashIsIdempotent) {
  Network net(graph::path(2));
  net.crash(0);
  net.crash(0);
  EXPECT_EQ(net.alive_count(), 1U);
  net.revive(0);
  net.revive(0);
  EXPECT_EQ(net.alive_count(), 2U);
}

/// Transmits every slot.
class Beacon final : public Protocol {
 public:
  Action on_slot(NodeContext& ctx) override {
    Message m;
    m.origin = ctx.id();
    return Action::transmit(m);
  }
};

class Listener final : public Protocol {
 public:
  Action on_slot(NodeContext&) override { return Action::receive(); }
  void on_receive(NodeContext&, const Message&) override { ++received; }
  int received = 0;
};

TEST(SimulatorEvents, EdgeRemovalTakesEffectAtItsSlot) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().schedule({2, EventKind::kRemoveEdge, 0, 1});
  for (int i = 0; i < 4; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.received, 2);  // slots 0, 1 only
}

TEST(SimulatorEvents, EdgeAdditionEnablesDelivery) {
  Simulator s(graph::Graph(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().schedule({3, EventKind::kAddEdge, 0, 1});
  for (int i = 0; i < 5; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.received, 2);  // slots 3, 4
}

TEST(SimulatorEvents, CrashSilencesTransmitter) {
  Simulator s(graph::path(2), SimOptions{});
  s.emplace_protocol<Beacon>(0);
  auto& listener = s.emplace_protocol<Listener>(1);
  s.network().schedule({1, EventKind::kCrashNode, 0, kNoNode});
  s.network().schedule({3, EventKind::kReviveNode, 0, kNoNode});
  for (int i = 0; i < 4; ++i) {
    s.step();
  }
  EXPECT_EQ(listener.received, 2);  // slots 0 and 3
}

}  // namespace
}  // namespace radiocast::sim
