// Tests for the sweep library and service (docs/SWEEP.md): grid
// expansion, cache-or-compute execution, thread-count invariance of both
// results and cache keys, cancellation, and per-job failure isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "radiocast/cache/key.hpp"
#include "radiocast/cache/store.hpp"
#include "radiocast/common/check.hpp"
#include "radiocast/harness/sweep.hpp"
#include "radiocast/harness/sweep_runners.hpp"
#include "radiocast/harness/sweep_service.hpp"

namespace radiocast::harness {
namespace {

namespace fs = std::filesystem;
using JobStatus = SweepService::JobStatus;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("radiocast_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A deterministic toy runner: record = {"sum": a + b} — cheap enough to
/// sweep widely, dependent on every config field so wrong-key bugs show.
obs::JsonValue toy_runner(const obs::JsonValue& config) {
  return obs::JsonValue::object().set(
      "sum", obs::JsonValue(config.find("a")->as_int() +
                            config.find("b")->as_int()));
}

SweepSpec toy_spec() {
  SweepSpec spec;
  spec.runner = "toy";
  spec.base = obs::JsonValue::object();
  spec.base.set("b", obs::JsonValue(std::int64_t{100}));
  spec.axis("a", {obs::JsonValue(std::int64_t{1}),
                  obs::JsonValue(std::int64_t{2}),
                  obs::JsonValue(std::int64_t{3})});
  return spec;
}

// --- grid expansion ------------------------------------------------------

TEST(SweepSpec, ExpandsRowMajorWithBaseOverride) {
  SweepSpec spec;
  spec.runner = "toy";
  spec.base.set("a", obs::JsonValue(std::int64_t{0}));  // overridden
  spec.base.set("keep", obs::JsonValue("yes"));
  spec.axis("a", {obs::JsonValue(std::int64_t{1}),
                  obs::JsonValue(std::int64_t{2})});
  spec.axis("b", {obs::JsonValue("x"), obs::JsonValue("y"),
                  obs::JsonValue("z")});

  EXPECT_EQ(spec.job_count(), 6U);
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 6U);
  // Last axis fastest: (a=1,b=x), (a=1,b=y), (a=1,b=z), (a=2,b=x), ...
  EXPECT_EQ(jobs[0].config.find("a")->as_int(), 1);
  EXPECT_EQ(jobs[0].config.find("b")->as_string(), "x");
  EXPECT_EQ(jobs[2].config.find("b")->as_string(), "z");
  EXPECT_EQ(jobs[3].config.find("a")->as_int(), 2);
  EXPECT_EQ(jobs[3].config.find("b")->as_string(), "x");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].config.find("keep")->as_string(), "yes");
  }
}

TEST(SweepSpec, NoAxesMeansOneJob) {
  SweepSpec spec;
  spec.runner = "toy";
  spec.base.set("a", obs::JsonValue(std::int64_t{7}));
  EXPECT_EQ(spec.job_count(), 1U);
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1U);
  EXPECT_EQ(jobs[0].config.find("a")->as_int(), 7);
}

TEST(SweepSpec, DuplicateAxisNameThrows) {
  SweepSpec spec;
  spec.runner = "toy";
  spec.axis("a", {obs::JsonValue(std::int64_t{1})});
  spec.axis("a", {obs::JsonValue(std::int64_t{2})});
  EXPECT_THROW(spec.expand(), ContractViolation);
}

// --- cache-or-compute ----------------------------------------------------

TEST(SweepService, SecondRunIsAllHitsWithIdenticalRecords) {
  cache::ResultCache cache(scratch_dir("sweep_rerun"));
  SweepService service(&cache, 2);
  std::atomic<int> invocations{0};
  service.register_runner("toy", [&](const obs::JsonValue& config) {
    invocations.fetch_add(1);
    return toy_runner(config);
  });

  const auto first = service.run(toy_spec());
  ASSERT_EQ(first.size(), 3U);
  for (const auto& job : first) {
    EXPECT_EQ(job.status, JobStatus::kComputed);
  }
  EXPECT_EQ(invocations.load(), 3);

  const auto second = service.run(toy_spec());
  ASSERT_EQ(second.size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(second[i].status, JobStatus::kHit);
    EXPECT_EQ(second[i].key, first[i].key);
    // The cached record is bit-identical to the computed one.
    EXPECT_EQ(second[i].record.dump(), first[i].record.dump());
    EXPECT_EQ(second[i].record.find("sum")->as_int(),
              101 + static_cast<int>(i));
  }
  EXPECT_EQ(invocations.load(), 3) << "hits must not re-invoke the runner";

  const auto totals = SweepService::tally(second);
  EXPECT_EQ(totals.hits, 3U);
  EXPECT_EQ(totals.computed, 0U);
}

TEST(SweepService, ResultsAndKeysAreThreadCountInvariant) {
  // Two services at different thread counts over fresh caches must
  // produce the same keys and the same records: thread count is
  // scheduling, never identity (docs/SWEEP.md).
  std::vector<std::vector<SweepService::JobResult>> runs;
  for (const std::size_t threads : {1UL, 4UL}) {
    cache::ResultCache cache(
        scratch_dir("sweep_threads_" + std::to_string(threads)));
    SweepService service(&cache, threads);
    service.register_runner("toy", toy_runner);
    runs.push_back(service.run(toy_spec()));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].key, runs[1][i].key);
    EXPECT_EQ(runs[0][i].record.dump(), runs[1][i].record.dump());
  }
}

TEST(SweepService, NoCacheMeansEveryRunComputes) {
  SweepService service(nullptr, 1);
  std::atomic<int> invocations{0};
  service.register_runner("toy", [&](const obs::JsonValue& config) {
    invocations.fetch_add(1);
    return toy_runner(config);
  });
  (void)service.run(toy_spec());
  (void)service.run(toy_spec());
  EXPECT_EQ(invocations.load(), 6);
}

TEST(SweepService, CorruptEntryIsRecomputedNeverServed) {
  const fs::path root = scratch_dir("sweep_corrupt");
  cache::ResultCache cache(root);
  SweepService service(&cache, 1);
  service.register_runner("toy", toy_runner);

  obs::JsonValue config = obs::JsonValue::object();
  config.set("a", obs::JsonValue(std::int64_t{1}));
  config.set("b", obs::JsonValue(std::int64_t{2}));
  const auto first = service.run_one("toy", config);
  EXPECT_EQ(first.status, JobStatus::kComputed);

  // Corrupt the entry on disk; the service must detect it, recompute,
  // and heal the store so the third call hits again.
  const fs::path entry = root / "objects" / first.key.substr(0, 2) /
                         (first.key.substr(2) + ".json");
  ASSERT_TRUE(fs::exists(entry));
  fs::resize_file(entry, fs::file_size(entry) / 3);

  const auto second = service.run_one("toy", config);
  EXPECT_EQ(second.status, JobStatus::kComputed);
  EXPECT_EQ(second.record.dump(), first.record.dump());

  const auto third = service.run_one("toy", config);
  EXPECT_EQ(third.status, JobStatus::kHit);
  EXPECT_EQ(third.record.dump(), first.record.dump());
}

// --- failure and cancellation --------------------------------------------

TEST(SweepService, OneFailingJobDoesNotAbortTheSweep) {
  cache::ResultCache cache(scratch_dir("sweep_failure"));
  SweepService service(&cache, 1);
  service.register_runner("toy", [](const obs::JsonValue& config) {
    if (config.find("a")->as_int() == 2) {
      throw std::runtime_error("boom on a=2");
    }
    return toy_runner(config);
  });

  const auto results = service.run(toy_spec());
  ASSERT_EQ(results.size(), 3U);
  EXPECT_EQ(results[0].status, JobStatus::kComputed);
  EXPECT_EQ(results[1].status, JobStatus::kFailed);
  EXPECT_NE(results[1].error.find("boom on a=2"), std::string::npos);
  EXPECT_TRUE(results[1].record.is_null());
  EXPECT_EQ(results[2].status, JobStatus::kComputed);

  // Nothing was stored for the failed job: a rerun recomputes exactly it.
  service.register_runner("toy", toy_runner);
  const auto rerun = service.run(toy_spec());
  EXPECT_EQ(rerun[0].status, JobStatus::kHit);
  EXPECT_EQ(rerun[1].status, JobStatus::kComputed);
  EXPECT_EQ(rerun[2].status, JobStatus::kHit);
}

TEST(SweepService, CancellationResolvesRemainingJobs) {
  SweepService service(nullptr, 1);
  service.register_runner("toy", [&](const obs::JsonValue& config) {
    service.cancel();  // first executed job pulls the plug
    return toy_runner(config);
  });

  const auto results = service.run(toy_spec());
  ASSERT_EQ(results.size(), 3U);
  // One thread executes jobs in order: job 0 completes, the rest were
  // never started and resolve to kCancelled.
  EXPECT_EQ(results[0].status, JobStatus::kComputed);
  EXPECT_EQ(results[1].status, JobStatus::kCancelled);
  EXPECT_EQ(results[2].status, JobStatus::kCancelled);

  // run() resets the flag: the next sweep completes normally.
  service.register_runner("toy", toy_runner);
  const auto totals = SweepService::tally(service.run(toy_spec()));
  EXPECT_EQ(totals.computed, 3U);
  EXPECT_EQ(totals.cancelled, 0U);
}

TEST(SweepService, UnknownRunnerThrows) {
  SweepService service(nullptr, 1);
  SweepSpec spec;
  spec.runner = "nonexistent";
  EXPECT_THROW(service.run(spec), ContractViolation);
  EXPECT_THROW(service.run_one("nonexistent", obs::JsonValue::object()),
               ContractViolation);
}

TEST(SweepService, StandardRunnersAreRegistered) {
  SweepService service(nullptr, 1);
  register_standard_runners(service, 1);
  EXPECT_TRUE(service.has_runner("gap"));
  EXPECT_TRUE(service.has_runner("faults"));
  const auto names = service.runner_names();
  EXPECT_EQ(names.size(), 2U);

  // One tiny real job end to end: the "gap" runner on n=8 — the record
  // carries every field bench_gap's table needs.
  obs::JsonValue config = obs::JsonValue::object();
  config.set("n", obs::JsonValue(std::uint64_t{8}));
  config.set("trials", obs::JsonValue(std::uint64_t{3}));
  config.set("seed", obs::JsonValue(std::uint64_t{1}));
  config.set("eps", obs::JsonValue(0.1));
  const auto job = service.run_one("gap", config);
  ASSERT_EQ(job.status, JobStatus::kComputed);
  for (const char* field :
       {"n", "trials", "successes", "rand_median", "dfs_slots", "rr_slots",
        "lower_bound"}) {
    EXPECT_NE(job.record.find(field), nullptr) << field;
  }
  EXPECT_EQ(job.record.find("n")->as_uint(), 8U);
}

}  // namespace
}  // namespace radiocast::harness
