#!/usr/bin/env python3
"""Compare two radiocast benchmark JSON documents metric by metric.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--tolerance PCT] [--check]
                  [--only PREFIX]

Run-record documents (emitted by any bench_* binary via --json-out /
RADIOCAST_JSON_OUT), the legacy BENCH_engine.json layout and sweep-cache
entries (the envelopes under a --cache-dir store, and the per-job files
`sweep run --out` writes -- see docs/SWEEP.md) are all accepted; each is
canonicalised to a flat {metric_name: value} map first, so a new run
record can be diffed directly against a checked-in legacy baseline, and a
cached sweep result against a fresh one.

For every metric present in both documents the script prints the baseline
value, the current value and the relative delta.  Metrics whose name
implies a direction (``*_per_sec`` and ``*speedup`` are higher-is-better,
``*_sec`` / ``wall`` / ``cpu`` are lower-is-better) are classified as
improvements or regressions; anything beyond --tolerance percent in the
bad direction is a REGRESSION (--threshold is an accepted alias).  With
--check the exit status is 1 when at least one regression was found, which
is how CI consumes this script.  --only PREFIX restricts the comparison to
metrics whose canonical name starts with PREFIX (e.g. ``engine.batch``),
so a partial rerun can be diffed against a full baseline.

No third-party dependencies: stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _flatten(prefix: str, node, out: dict) -> None:
    """Flattens numeric leaves into dotted paths.

    List elements are keyed by their "name" (and "n", when present) fields
    so reordering a workload table does not break the diff.
    """
    if _is_number(node):
        out[prefix] = float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            _flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            key = str(index)
            if isinstance(value, dict) and isinstance(value.get("name"), str):
                key = value["name"]
                if _is_number(value.get("n")):
                    key += f".n{value['n']}"
            _flatten(f"{prefix}.{key}" if prefix else key, value, out)


# Legacy BENCH_engine.json paths -> the gauge names bench_engine publishes
# in the new run-record format, so old baselines stay comparable.
_LEGACY_RENAMES = {
    "trials_workload.serial_trials_per_sec": "engine.serial_trials_per_sec",
    "trials_workload.parallel_trials_per_sec":
        "engine.parallel_trials_per_sec",
    "trials_workload.speedup": "engine.speedup",
    "quiescence.slots_per_sec": "engine.quiescence_slots_per_sec",
    "batched_workload.scalar_trials_per_sec":
        "engine.batch_scalar_trials_per_sec",
    "batched_workload.batched_trials_per_sec":
        "engine.batch_trials_per_sec",
    "batched_workload.speedup": "engine.batch_speedup",
    "batched_workload.pooled_trials_per_sec":
        "engine.batch_pool_trials_per_sec",
    "batched_workload.lane_width": "engine.batch_lane_width",
    "batched_workload.w1_trials_per_sec": "engine.batch_w1_trials_per_sec",
    "batched_workload.w4_trials_per_sec": "engine.batch_w4_trials_per_sec",
    "batched_workload.w8_trials_per_sec": "engine.batch_w8_trials_per_sec",
}


def canonicalize(doc: dict) -> dict:
    """Returns {metric_name: float} with format differences ironed out."""
    flat: dict = {}
    if "cache_version" in doc and "record" in doc:
        # Sweep-cache envelope (docs/SWEEP.md): the comparable payload is
        # the cached record; the envelope fields (key, fingerprint,
        # payload_sha256, canonical config) are identity, not metrics.
        doc = doc["record"]
        if not isinstance(doc, dict):
            return flat
    if "schema_version" in doc and "metrics" in doc:
        # Run-record format: gauges already carry their full dotted names;
        # everything else keeps its section prefix.
        _flatten("", doc.get("metrics", {}).get("gauges", {}), flat)
        _flatten("counters", doc.get("metrics", {}).get("counters", {}), flat)
        _flatten("hist", doc.get("metrics", {}).get("histograms", {}), flat)
        _flatten("sim", doc.get("sim", {}), flat)
        _flatten("resources", doc.get("resources", {}), flat)
        _flatten("extra", doc.get("extra", {}), flat)
        return flat
    # Legacy layout (BENCH_engine.json).
    _flatten("", doc, flat)
    out = {}
    for path, value in flat.items():
        if path in _LEGACY_RENAMES:
            out[_LEGACY_RENAMES[path]] = value
        elif path.startswith("slot_workloads.") and path.endswith(
                ".slots_per_sec"):
            middle = path[len("slot_workloads."):-len(".slots_per_sec")]
            out[f"engine.slots_per_sec.{middle}"] = value
        else:
            out[path] = value
    return out


def direction(name: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 when neutral."""
    if "per_sec" in name or name.endswith("speedup"):
        return 1
    if name.endswith("_sec") or "wall" in name or "cpu" in name:
        return -1
    return 0


def load_metrics(path: str, label: str) -> dict:
    """Reads and canonicalises one document, or exits with a one-line
    diagnostic.  A missing file, unparsable JSON, a non-object document or
    a document with no numeric metric keys at all used to surface as a
    stack trace (or as a silent empty diff), which made CI gate failures
    hard to read.  Input errors exit 2, like usage errors -- distinct from
    the regression exit status 1."""
    def bail(why: str) -> None:
        print(f"bench_diff: error: {why}", file=sys.stderr)
        raise SystemExit(2)

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as err:
        bail(f"cannot read {label} '{path}': {err.strerror or err}")
    except json.JSONDecodeError as err:
        bail(f"{label} '{path}' is not valid JSON "
             f"(line {err.lineno}: {err.msg})")
    if not isinstance(doc, dict):
        bail(f"{label} '{path}' is not a JSON object "
             f"(got {type(doc).__name__})")
    flat = canonicalize(doc)
    if not flat:
        bail(f"{label} '{path}' contains no numeric metrics -- expected a "
             "run-record document (schema_version/metrics) or the legacy "
             "BENCH layout")
    return flat


def main() -> int:
    parser = argparse.ArgumentParser(
        description="diff two radiocast benchmark JSON documents")
    parser.add_argument("baseline", help="baseline JSON document")
    parser.add_argument("current", help="current JSON document")
    parser.add_argument("--tolerance", "--threshold", type=float,
                        default=10.0, dest="tolerance",
                        help="regression tolerance in percent (default 10); "
                             "--threshold is an accepted alias")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when any regression exceeds the "
                             "tolerance")
    parser.add_argument("--only", default="",
                        help="compare only metrics whose canonical name "
                             "starts with this prefix")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline, "baseline")
    current = load_metrics(args.current, "current")

    # Always say what was compared: a clean CI log must still identify the
    # baseline file and the restriction in force, or a surprising "no
    # regressions" is undebuggable without a local rerun.
    print(f"bench_diff: baseline={args.baseline} current={args.current} "
          f"prefix={args.only or '(all metrics)'} "
          f"tolerance={args.tolerance:.1f}%")

    shared = sorted(name for name in set(baseline) & set(current)
                    if name.startswith(args.only))
    if not shared:
        print("bench_diff: no comparable metrics between "
              f"{args.baseline} and {args.current}"
              + (f" under prefix '{args.only}'" if args.only else ""),
              file=sys.stderr)
        return 2 if args.check else 0

    regressions = []
    name_width = max(len(n) for n in shared)
    print(f"{'metric':<{name_width}}  {'baseline':>14}  {'current':>14}  "
          f"{'delta':>9}  verdict")
    for name in shared:
        base, cur = baseline[name], current[name]
        if base == 0.0:
            delta_pct = 0.0 if cur == 0.0 else float("inf")
        else:
            delta_pct = 100.0 * (cur - base) / abs(base)
        sign = direction(name)
        verdict = ""
        if sign != 0 and delta_pct * sign < -args.tolerance:
            verdict = "REGRESSION"
            regressions.append((name, delta_pct))
        elif sign != 0 and delta_pct * sign > args.tolerance:
            verdict = "improved"
        print(f"{name:<{name_width}}  {base:>14.6g}  {cur:>14.6g}  "
              f"{delta_pct:>+8.1f}%  {verdict}")

    skipped = sorted((set(baseline) | set(current)) - set(shared))
    if skipped:
        print(f"({len(skipped)} metric(s) present in only one document "
              "were skipped)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.1f}%:")
        for name, delta_pct in regressions:
            print(f"  {name}: {delta_pct:+.1f}%")
        if args.check:
            return 1
    else:
        print(f"\nno regressions beyond {args.tolerance:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
