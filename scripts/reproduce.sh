#!/usr/bin/env bash
# Full reproduction: configure, build, test, run every experiment.
# Outputs land in test_output.txt / bench_output.txt (and CSV mirrors in
# ./results if you leave REPRO_CSV_DIR at its default below).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Determinism/invariant lint pass (docs/STATIC_ANALYSIS.md). A violation
# invalidates the reproduction's independence assumptions, so it fails
# the run; if python3 is missing we say so in one line and move on.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/radiocast_lint.py --root . --budget docs/STATIC_ANALYSIS.md
else
  echo "notice: radiocast-lint pass skipped (python3 not found on PATH)"
fi

mkdir -p results
export REPRO_CSV_DIR="${REPRO_CSV_DIR:-$PWD/results}"
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "Done. Tables: bench_output.txt ; CSVs: $REPRO_CSV_DIR ; tests: test_output.txt"
