#!/usr/bin/env python3
"""Documentation link and path checker.

Usage:
    check_docs.py [REPO_ROOT]

Scans every ``*.md`` file in the repository (skipping build output and
third-party directories) and verifies that

1. every relative Markdown link ``[text](target)`` resolves to a file or
   directory in the tree (anchors and ``http(s)://`` / ``mailto:`` links
   are ignored), and
2. every mention of a C++ source file (``foo.cpp`` / ``foo.hpp``) refers
   to a file that exists: mentions containing a ``/`` must resolve
   relative to the repo root or to the referencing document, bare file
   names must match some file of that basename anywhere in the tree, and
3. the lint rule catalog cannot drift from its documentation: every rule
   id (``R1``, ``R2``, ...) mentioned in ``docs/STATIC_ANALYSIS.md``
   must exist in ``scripts/radiocast_lint/rules.py``'s RULES table,
   every implemented rule must be documented, and every rule section's
   ``**Scope:**`` line must match the implementation's scope string
   (so a scope extension like R9's cannot land without its docs), and
3b. the CounterRng stream inventory table in ``docs/STATIC_ANALYSIS.md``
   matches the salt registry ``src/radiocast/rng/salts.hpp`` in both
   directions (names *and* values), and
4. the RunRecord field table in ``docs/OBSERVABILITY.md`` matches
   ``scripts/bench_schema.json`` in both directions: every dotted field
   path declared under the schema's ``properties`` (recursively, skipping
   free-form ``additionalProperties`` subtrees) must have a table row,
   and every table row must name a schema field.

Exit status is 0 when everything resolves, 1 otherwise; each dangling
reference is printed as ``file:line: message``.  Stdlib-only, like every
script in this repo — CI must not pip-install anything.
"""

from __future__ import annotations

import json
import pathlib
import re
import sys

SKIP_DIRS = {".git", "build", "third_party", "external", ".cache"}
# Repo-growth driver metadata, not shipped documentation: they quote
# placeholder names and code from *other* repositories.
SKIP_FILES = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md"}

# [text](target) — non-greedy target, no nested parens.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Path-ish mentions of C++ sources: optional dirs, then name.cpp/.hpp.
CPP_RE = re.compile(r"[A-Za-z0-9_./-]*[A-Za-z0-9_-]+\.[ch]pp\b")


def md_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        if path.name in SKIP_FILES:
            continue
        yield path


def strip_code_fences(text: str) -> list:
    """Lines of `text` with fenced code blocks kept (paths in examples
    should resolve too) but fence markers themselves blanked."""
    return text.splitlines()


def check_link(target: str, doc: pathlib.Path, root: pathlib.Path):
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return None
    # Drop anchors and trailing punctuation that markdown allows.
    target = target.split("#", 1)[0]
    if not target:
        return None
    candidate = (doc.parent / target).resolve()
    if candidate.exists():
        return None
    from_root = (root / target).resolve()
    if from_root.exists():
        return None
    return f"dangling link '{target}'"


def check_cpp_mention(mention: str, doc: pathlib.Path, root: pathlib.Path,
                      basenames: set):
    mention = mention.lstrip("./")
    if "/" in mention:
        if (root / mention).exists() or (doc.parent / mention).exists():
            return None
        # A path under src/ may be written from the include root, or
        # relative to the radiocast/ include namespace itself
        # (common/worker_pool.hpp for src/radiocast/common/worker_pool.hpp).
        if (root / "src" / mention).exists():
            return None
        if (root / "src" / "radiocast" / mention).exists():
            return None
        return f"dangling source path '{mention}'"
    if mention in basenames:
        return None
    return f"unknown source file '{mention}'"


LINT_RULES = "scripts/radiocast_lint/rules.py"
STATIC_DOC = "docs/STATIC_ANALYSIS.md"
SALTS_HPP = "src/radiocast/rng/salts.hpp"
RULE_ID_RE = re.compile(r"\bR\d+\b")
RULE_HEADING_RE = re.compile(r"^###\s+(R\d+)\b")
SCOPE_LINE_RE = re.compile(r"^\*\*Scope:\*\*\s*(.+?)\s*$")
SALT_DEF_RE = re.compile(r"\b(kSalt\w*)\s*=\s*(0[xX][0-9a-fA-F']+)")
SALT_ROW_RE = re.compile(r"^\|\s*`(kSalt\w*)`\s*\|\s*`(0[xX][0-9a-fA-F']+)")


def load_lint_rules(root: pathlib.Path):
    """Imports scripts/radiocast_lint/rules.py standalone (it is pure
    data + stdlib, by contract) so the checks below compare against the
    *live* catalog, not a textual copy of it."""
    import importlib.util
    path = root / LINT_RULES
    spec = importlib.util.spec_from_file_location(
        "radiocast_lint_rules", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_rule_sync(root: pathlib.Path) -> list:
    """Rule ids *and* per-rule scope lines in docs/STATIC_ANALYSIS.md
    <-> scripts/radiocast_lint/rules.py."""
    doc = root / STATIC_DOC
    errors = []
    for rel in (LINT_RULES, STATIC_DOC):
        if not (root / rel).is_file():
            errors.append(f"{rel}:1: missing (the lint rule set and its "
                          "documentation travel together)")
    if errors:
        return errors
    try:
        rules = load_lint_rules(root)
        implemented = set(rules.RULES)
        scopes = dict(rules.SCOPE_DISPLAY)
    except Exception as exc:
        return [f"{LINT_RULES}:1: could not import the rule catalog "
                f"({exc})"]
    text = doc.read_text(encoding="utf-8")
    documented = set(RULE_ID_RE.findall(text))
    for rule in sorted(documented - implemented):
        errors.append(f"{STATIC_DOC}:1: rule {rule} is documented but not "
                      f"implemented in {LINT_RULES}")
    for rule in sorted(implemented - documented):
        errors.append(f"{LINT_RULES}:1: rule {rule} is implemented but "
                      f"not documented in {STATIC_DOC}")

    # Scope sync: each `### R<k>` section must carry a `**Scope:**` line
    # equal (modulo backticks) to the implementation's scope string.
    doc_scopes = {}
    current = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        heading = RULE_HEADING_RE.match(line)
        if heading:
            current = heading.group(1)
            continue
        if line.startswith("## "):
            current = None
            continue
        scope = SCOPE_LINE_RE.match(line)
        if scope and current is not None:
            doc_scopes[current] = (lineno, scope.group(1))
    for rule in sorted(implemented):
        if rule not in doc_scopes:
            errors.append(f"{STATIC_DOC}:1: rule {rule} has no "
                          f"'**Scope:**' line in its section")
            continue
        lineno, documented_scope = doc_scopes[rule]
        want = scopes[rule].replace("`", "")
        got = documented_scope.replace("`", "")
        if want != got:
            errors.append(
                f"{STATIC_DOC}:{lineno}: rule {rule} scope drifted from "
                f"the implementation — doc says '{got}', "
                f"{LINT_RULES} says '{want}'")
    for rule in sorted(set(doc_scopes) - implemented):
        lineno, _ = doc_scopes[rule]
        errors.append(f"{STATIC_DOC}:{lineno}: scope line for unknown "
                      f"rule {rule}")
    return errors


def check_salt_inventory_sync(root: pathlib.Path) -> list:
    """Stream-inventory table in docs/STATIC_ANALYSIS.md <-> the salt
    registry src/radiocast/rng/salts.hpp (names and values)."""
    registry = root / SALTS_HPP
    doc = root / STATIC_DOC
    errors = []
    for rel in (SALTS_HPP, STATIC_DOC):
        if not (root / rel).is_file():
            errors.append(f"{rel}:1: missing (the salt registry and its "
                          "inventory table travel together)")
    if errors:
        return errors

    def norm(value: str) -> int:
        return int(value.replace("'", ""), 16)

    registered = {m.group(1): norm(m.group(2))
                  for m in SALT_DEF_RE.finditer(
                      registry.read_text(encoding="utf-8"))}
    if not registered:
        return [f"{SALTS_HPP}:1: no kSalt* definitions found — is this "
                "still the registry?"]
    documented = {}
    for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1):
        m = SALT_ROW_RE.match(line)
        if m:
            documented[m.group(1)] = (lineno, norm(m.group(2)))
    if not documented:
        return [f"{STATIC_DOC}:1: no salt inventory rows found (expected "
                "a table of `kSalt*` | `0x...` entries)"]
    for name in sorted(set(documented) - set(registered)):
        lineno, _ = documented[name]
        errors.append(f"{STATIC_DOC}:{lineno}: salt {name} is in the "
                      f"inventory table but not in {SALTS_HPP}")
    for name in sorted(set(registered) - set(documented)):
        errors.append(f"{SALTS_HPP}:1: salt {name} is registered but has "
                      f"no inventory row in {STATIC_DOC}")
    for name in sorted(set(registered) & set(documented)):
        lineno, value = documented[name]
        if value != registered[name]:
            errors.append(
                f"{STATIC_DOC}:{lineno}: salt {name} value "
                f"{value:#x} does not match the registry's "
                f"{registered[name]:#x}")
    return errors


SCHEMA_FILE = "scripts/bench_schema.json"
OBS_DOC = "docs/OBSERVABILITY.md"
SCHEMA_SECTION = "## RunRecord schema"
FIELD_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9_.]+)`\s*\|")


def schema_field_paths(node: dict, prefix: str = "") -> set:
    """Dotted paths of every declared property, recursing into nested
    objects but not into ``additionalProperties`` (those subtrees are
    free-form per-name maps — counters, histograms — whose keys are not
    part of the fixed record layout)."""
    paths = set()
    for name, sub in node.get("properties", {}).items():
        path = f"{prefix}{name}"
        paths.add(path)
        if isinstance(sub, dict):
            paths |= schema_field_paths(sub, prefix=path + ".")
    return paths


def documented_field_rows(text: str) -> set:
    """Field names from table rows inside the "## RunRecord schema"
    section of docs/OBSERVABILITY.md (up to the next ``## `` heading)."""
    fields = set()
    in_section = False
    for line in text.splitlines():
        if line.startswith("## "):
            in_section = line.strip() == SCHEMA_SECTION
            continue
        if not in_section:
            continue
        match = FIELD_ROW_RE.match(line)
        if match:
            fields.add(match.group(1))
    return fields


def check_record_schema_sync(root: pathlib.Path) -> list:
    """Field table in docs/OBSERVABILITY.md <-> bench_schema.json."""
    schema_path = root / SCHEMA_FILE
    doc_path = root / OBS_DOC
    errors = []
    for path in (schema_path, doc_path):
        if not path.is_file():
            errors.append(f"{path.relative_to(root)}:1: missing (the run "
                          "record schema and its documentation travel "
                          "together)")
    if errors:
        return errors
    try:
        schema = json.loads(schema_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"{SCHEMA_FILE}:1: not valid JSON ({exc})"]
    declared = schema_field_paths(schema)
    if not declared:
        return [f"{SCHEMA_FILE}:1: no properties found — is this still "
                "a JSON Schema?"]
    documented = documented_field_rows(doc_path.read_text(encoding="utf-8"))
    if not documented:
        return [f"{OBS_DOC}:1: could not find any field rows under the "
                f"'{SCHEMA_SECTION}' section"]
    for field in sorted(documented - declared):
        errors.append(f"{OBS_DOC}:1: field '{field}' is documented but "
                      f"absent from {SCHEMA_FILE}")
    for field in sorted(declared - documented):
        errors.append(f"{SCHEMA_FILE}:1: field '{field}' is in the schema "
                      f"but undocumented in {OBS_DOC}")
    return errors


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    basenames = set()
    for ext in ("*.cpp", "*.hpp"):
        for path in root.rglob(ext):
            if any(part in SKIP_DIRS for part in path.parts):
                continue
            basenames.add(path.name)

    failures = 0
    docs = 0
    for doc in md_files(root):
        docs += 1
        rel = doc.relative_to(root)
        for lineno, line in enumerate(strip_code_fences(
                doc.read_text(encoding="utf-8")), start=1):
            for match in LINK_RE.finditer(line):
                err = check_link(match.group(1), doc, root)
                if err:
                    failures += 1
                    print(f"{rel}:{lineno}: {err}")
            for match in CPP_RE.finditer(line):
                err = check_cpp_mention(match.group(0), doc, root, basenames)
                if err:
                    failures += 1
                    print(f"{rel}:{lineno}: {err}")
    for error in check_rule_sync(root):
        failures += 1
        print(error)
    for error in check_salt_inventory_sync(root):
        failures += 1
        print(error)
    for error in check_record_schema_sync(root):
        failures += 1
        print(error)
    if failures:
        print(f"{failures} dangling reference(s) across {docs} documents")
        return 1
    print(f"ok: {docs} markdown documents, all links and source paths "
          f"resolve; lint rule catalog, scopes and salt inventory agree "
          f"with {STATIC_DOC}; "
          f"{OBS_DOC} covers every {SCHEMA_FILE} field")
    return 0


if __name__ == "__main__":
    sys.exit(main())
