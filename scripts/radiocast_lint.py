#!/usr/bin/env python3
"""radiocast-lint: the project's determinism/invariant static-analysis pass.

Usage:
    radiocast_lint.py [--root DIR] [FILE ...] [--engine auto|clang|regex]
                      [--list-rules] [--quiet]

Walks ``src/``, ``bench/`` and ``tests/`` (or lints exactly the FILEs
given) and enforces the determinism contract that every reproduction
claim in this repo rests on — the rule catalog, with the paper-level
rationale for each rule, lives in ``docs/STATIC_ANALYSIS.md``:

  R1  sequential/global RNG (std::mt19937, std::rand, std::random_device)
      outside src/radiocast/rng/
  R2  wall-clock or environment reads (time(), std::chrono::system_clock,
      getenv) in sim/, proto/, fault/, harness/ or graph/ trial paths
      (std::chrono::steady_clock timing in bench code is allowlisted —
      it is monotonic and never feeds a result)
  R3  std::unordered_map / std::unordered_set in result-bearing
      directories (sim/, proto/, stats/, obs/, fault/, graph/) —
      iteration order is unspecified, so every use must either be
      replaced with an ordered container or carry a written
      order-independence proof
  R4  duplicate CounterRng salt constants (two kSalt* constants sharing
      a value silently correlate the streams they are meant to separate)
  R5  static non-const locals or globals in sim/, proto/ and graph/
      (hidden mutable state breaks trial independence and thread
      invariance)

A violation is suppressible only by an explicit annotation on the same
line or the line directly above it:

    // RADIOCAST_LINT_OK(R3): <non-empty reason>

The tool verifies every annotation (unknown rule id, missing colon or
empty reason is a *malformed suppression*) and reports the total number
of suppressions in use so reviewers can watch the count grow.

Engines: ``--engine clang`` uses libclang's lexer so comments and string
literals are excluded by construction; ``--engine regex`` is a
stdlib-only fallback with its own comment/string stripper.  ``auto``
(the default) picks clang when the bindings import, regex otherwise.
Both engines enforce the same rule set.

Exit status: 0 clean tree, 1 at least one unsuppressed violation,
2 malformed suppression or usage error.  Stdlib-only apart from the
optional clang bindings — CI must not pip-install anything.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule catalog.  check_docs.py cross-checks these ids against
# docs/STATIC_ANALYSIS.md, so the set cannot drift from its documentation.
# --------------------------------------------------------------------------

# Path *segments* (directory names anywhere in the lint-relative path)
# that place a file inside a rule's scope.  Scoping by segment instead of
# full prefix lets the tests/lint/fixtures tree mirror the layout.
R2_DIRS = {"sim", "proto", "fault", "harness", "graph"}
R3_DIRS = {"sim", "proto", "stats", "obs", "fault", "graph", "cache"}
R5_DIRS = {"sim", "proto", "graph"}

RULES = {
    "R1": "sequential RNG engine outside src/radiocast/rng/",
    "R2": "wall-clock/environment read in a trial path",
    "R3": "unordered container in a result-bearing directory",
    "R4": "duplicate CounterRng salt constant",
    "R5": "static non-const state in sim/ or proto/",
}

SUPPRESS_TOKEN = "RADIOCAST_LINT_OK"
# The only accepted shape: // RADIOCAST_LINT_OK(R3): non-empty reason
SUPPRESS_RE = re.compile(
    r"//\s*" + SUPPRESS_TOKEN + r"\((R\d+)\):\s*(\S.*)$")

R1_RE = re.compile(r"\b(?:std::)?(?:mt19937(?:_64)?|random_device)\b"
                   r"|\bstd::rand\b|\bsrand\s*\(")
R2_RE = re.compile(r"\b(?:std::)?time\s*\(|\bsystem_clock\b|\bgetenv\b")
R3_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
R4_SALT_RE = re.compile(
    r"\b(kSalt\w*)\s*=\s*(0[xX][0-9a-fA-F']+|\d[\d']*)")
R5_STATIC_RE = re.compile(r"^\s*static\s+(?:thread_local\s+)?(.*)$")
R5_EXEMPT_RE = re.compile(
    r"^\s*(?:inline\s+)?(?:const\b|constexpr\b|consteval\b|constinit\b)")
INCLUDE_RE = re.compile(r"^\s*#\s*include\b")


@dataclass
class Violation:
    path: pathlib.Path   # as reported (relative to root when possible)
    line: int            # 1-based
    rule: str
    message: str


@dataclass
class Suppression:
    line: int
    rule: str
    reason: str
    used: bool = False


@dataclass
class FileReport:
    path: pathlib.Path
    rel: pathlib.Path                 # path used for scoping + output
    suppressions: dict = field(default_factory=dict)  # line -> Suppression
    malformed: list = field(default_factory=list)     # (line, why)
    violations: list = field(default_factory=list)    # Violation
    salts: list = field(default_factory=list)         # (name, value, line)


# --------------------------------------------------------------------------
# Comment/string stripping (regex engine).
# --------------------------------------------------------------------------

def strip_code(raw_lines: list) -> list:
    """Returns `raw_lines` with comments and string/char literals blanked.

    A small state machine tracking /* */ across lines; escapes inside
    literals are honored.  Enough C++ lexing for the patterns above —
    raw strings are treated as plain strings, which only errs on the
    conservative (blanking) side.
    """
    out = []
    in_block = False
    for line in raw_lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            if c in "\"'":
                quote = c
                buf.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(" ")
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


# --------------------------------------------------------------------------
# Optional libclang lexer front-end.
# --------------------------------------------------------------------------

def load_clang():
    """Returns a working clang.cindex Index or None."""
    try:
        from clang import cindex  # type: ignore
        return cindex, cindex.Index.create()
    except Exception:
        return None


def clang_code_lines(cindex, index, path: pathlib.Path,
                     raw_lines: list) -> list:
    """Like strip_code(), but via libclang's lexer: rebuilds per-line code
    text from non-comment, non-literal tokens, so both engines feed the
    same matchers."""
    tu = index.parse(
        str(path), args=["-x", "c++", "-std=c++20", "-fsyntax-only"],
        options=0)
    out = [" " * len(line) for line in raw_lines]
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind == cindex.TokenKind.COMMENT:
            continue
        if tok.kind == cindex.TokenKind.LITERAL:
            # Drop string/char literals (a "mt19937" in a log message is
            # not a use) but keep numeric ones: R4 parses salt values.
            spelling = tok.spelling
            if not spelling or not (spelling[0].isdigit()
                                    or spelling[0] == "."):
                continue
        loc = tok.location
        row = loc.line - 1
        col = loc.column - 1
        if row < 0 or row >= len(out):
            continue
        text = tok.spelling
        line = out[row]
        out[row] = line[:col] + text + line[col + len(text):]
    return out


# --------------------------------------------------------------------------
# Per-file analysis.
# --------------------------------------------------------------------------

def collect_suppressions(report: FileReport, raw_lines: list) -> None:
    for lineno, line in enumerate(raw_lines, start=1):
        if SUPPRESS_TOKEN not in line:
            continue
        m = SUPPRESS_RE.search(line)
        if not m:
            report.malformed.append(
                (lineno, f"malformed suppression (expected "
                         f"'// {SUPPRESS_TOKEN}(<rule>): <reason>')"))
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in RULES:
            report.malformed.append(
                (lineno, f"suppression names unknown rule '{rule}'"))
            continue
        if not reason:
            report.malformed.append(
                (lineno, "suppression carries no reason"))
            continue
        report.suppressions[lineno] = Suppression(lineno, rule, reason)


def in_scope(rel: pathlib.Path, dirs: set) -> bool:
    return any(part in dirs for part in rel.parts)


def scan_file(report: FileReport, code_lines: list) -> None:
    """Applies R1/R2/R3/R5 to the comment-stripped lines and collects
    salt definitions for the cross-file R4 pass."""
    rel = report.rel
    r1 = not any(
        rel.parts[i:i + 3] == ("src", "radiocast", "rng")
        for i in range(len(rel.parts)))
    r2 = in_scope(rel, R2_DIRS)
    r3 = in_scope(rel, R3_DIRS)
    r5 = in_scope(rel, R5_DIRS)

    for lineno, line in enumerate(code_lines, start=1):
        if r1 and R1_RE.search(line):
            report.violations.append(Violation(
                rel, lineno, "R1",
                "sequential RNG engine (mt19937/rand/random_device) — all "
                "randomness must flow through radiocast::rng"))
        if r2 and R2_RE.search(line):
            report.violations.append(Violation(
                rel, lineno, "R2",
                "wall-clock/environment read (time/system_clock/getenv) in "
                "a trial path — trials must be pure functions of the seed"))
        if r3 and R3_RE.search(line) and not INCLUDE_RE.match(line):
            report.violations.append(Violation(
                rel, lineno, "R3",
                "unordered container in a result-bearing directory — "
                "iteration order is unspecified; use an ordered container "
                "or annotate with an order-independence proof"))
        if r5:
            m = R5_STATIC_RE.match(line)
            if m and not R5_EXEMPT_RE.match(m.group(1)):
                tail = m.group(1)
                stop = re.search(r"[=;{(]", tail)
                # A '(' first means a (member) function declaration, which
                # carries no state; anything else is a static object.
                if stop and stop.group(0) != "(":
                    report.violations.append(Violation(
                        rel, lineno, "R5",
                        "static non-const state — hidden mutable state "
                        "breaks trial independence"))
        for m in R4_SALT_RE.finditer(line):
            value = int(m.group(2).replace("'", ""), 0)
            report.salts.append((m.group(1), value, lineno))


def apply_suppressions(report: FileReport) -> list:
    """Filters suppressed violations; returns the surviving ones."""
    alive = []
    for v in report.violations:
        suppressed = False
        for lineno in (v.line, v.line - 1):
            s = report.suppressions.get(lineno)
            if s is not None and s.rule == v.rule:
                s.used = True
                suppressed = True
                break
        if not suppressed:
            alive.append(v)
    return alive


def check_salt_uniqueness(reports: list) -> list:
    """Cross-file R4 pass: every kSalt* constant value must be unique."""
    by_value: dict = {}
    for report in reports:
        for name, value, lineno in report.salts:
            by_value.setdefault(value, []).append((report, name, lineno))
    violations = []
    for value, sites in sorted(by_value.items()):
        if len(sites) < 2:
            continue
        first = sites[0]
        for report, name, lineno in sites[1:]:
            v = Violation(
                report.rel, lineno, "R4",
                f"salt constant {name} duplicates the value "
                f"{value:#018x} of {first[1]} "
                f"({first[0].rel}:{first[2]}) — duplicate salts silently "
                "correlate CounterRng streams")
            report.violations.append(v)
            violations.append((report, v))
    return violations


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "bench", "tests")
SCAN_EXTS = {".cpp", ".hpp", ".cc", ".h"}
# The fixture tree contains deliberate violations; the default walk must
# stay clean.  Fixtures are linted one at a time by tests/lint/.
SKIP_PARTS = {"build", ".git"}
SKIP_REL = ("tests/lint/fixtures",)


def default_files(root: pathlib.Path):
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SCAN_EXTS:
                continue
            if any(part in SKIP_PARTS for part in path.parts):
                continue
            rel = path.relative_to(root).as_posix()
            if any(rel.startswith(skip) for skip in SKIP_REL):
                continue
            yield path


def relativize(path: pathlib.Path, root: pathlib.Path) -> pathlib.Path:
    try:
        return path.resolve().relative_to(root.resolve())
    except ValueError:
        return path


def main() -> int:
    parser = argparse.ArgumentParser(
        description="radiocast determinism/invariant linter")
    parser.add_argument("files", nargs="*",
                        help="lint exactly these files instead of walking "
                             "src/, bench/ and tests/")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--engine", choices=("auto", "clang", "regex"),
                        default="auto",
                        help="lexer front-end (auto: clang when the "
                             "bindings import, else regex)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary on success")
    args = parser.parse_args()

    if args.list_rules:
        for rule_id, title in RULES.items():
            print(f"{rule_id}  {title}")
        return 0

    root = pathlib.Path(args.root)
    if not root.is_dir():
        print(f"radiocast-lint: error: --root {args.root} is not a "
              "directory", file=sys.stderr)
        return 2

    clang = None
    if args.engine in ("auto", "clang"):
        clang = load_clang()
        if clang is None and args.engine == "clang":
            print("radiocast-lint: error: --engine clang requested but the "
                  "libclang bindings are unavailable "
                  "(try --engine regex)", file=sys.stderr)
            return 2
    engine = "clang" if clang is not None else "regex"

    if args.files:
        files = [pathlib.Path(f) for f in args.files]
        for f in files:
            if not f.is_file():
                print(f"radiocast-lint: error: no such file: {f}",
                      file=sys.stderr)
                return 2
    else:
        files = list(default_files(root))

    reports = []
    for path in files:
        raw = path.read_text(encoding="utf-8",
                             errors="replace").splitlines()
        report = FileReport(path=path, rel=relativize(path, root))
        collect_suppressions(report, raw)
        code = None
        if clang is not None:
            try:
                code = clang_code_lines(clang[0], clang[1], path, raw)
            except Exception:
                code = None  # fall back to the regex stripper per file
        if code is None:
            code = strip_code(raw)
        scan_file(report, code)
        reports.append(report)

    check_salt_uniqueness(reports)

    malformed = [(r, lineno, why)
                 for r in reports for lineno, why in r.malformed]
    surviving = []
    for report in reports:
        for v in sorted(apply_suppressions(report),
                        key=lambda v: (v.line, v.rule)):
            surviving.append(v)

    for report, lineno, why in malformed:
        print(f"{report.rel}:{lineno}: SUPPRESSION: {why}")
    for v in surviving:
        print(f"{v.path}:{v.line}: {v.rule}: {v.message}")

    used = sum(1 for r in reports
               for s in r.suppressions.values() if s.used)
    unused = sum(1 for r in reports
                 for s in r.suppressions.values() if not s.used)
    if not args.quiet or surviving or malformed:
        note = f", {unused} unused annotation(s)" if unused else ""
        print(f"radiocast-lint[{engine}]: {len(files)} file(s), "
              f"{len(surviving)} violation(s), "
              f"{used} suppression(s) in use{note}")
    if malformed:
        return 2
    return 1 if surviving else 0


if __name__ == "__main__":
    sys.exit(main())
