#!/usr/bin/env python3
"""Entry-point shim for the radiocast_lint package.

The linter lives in scripts/radiocast_lint/ (rules catalog, regex and
libclang engines, JSON report, budget gate); this file keeps the
historical invocation `python3 scripts/radiocast_lint.py` working for
CI, reproduce.sh and muscle memory.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from radiocast_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
