#!/usr/bin/env python3
"""Validate JSON documents against the subset of JSON Schema the repo uses.

Usage:
    check_schema.py SCHEMA.json DOC.json [DOC2.json ...]

Supports the draft-07 keywords scripts/bench_schema.json relies on:
``type`` (object, string, integer, number, boolean, array, null),
``required``, ``properties`` and ``additionalProperties``.  Everything
else in a schema is ignored, which keeps this stdlib-only — CI must not
pip-install a validator.

Exit status is 0 when every document validates, 1 otherwise; each
violation is printed with a JSON-pointer-ish path.
"""

from __future__ import annotations

import json
import sys


def _type_ok(value, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        # bool is an int subclass in Python; a JSON true is not an integer.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool)
    if expected == "null":
        return value is None
    return True  # unknown type keyword: be permissive


def validate(value, schema: dict, path: str, errors: list) -> None:
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(f"{path or '$'}: expected {expected}, "
                      f"got {type(value).__name__}")
        return
    if not isinstance(value, dict):
        return
    for key in schema.get("required", []):
        if key not in value:
            errors.append(f"{path or '$'}: missing required field '{key}'")
    properties = schema.get("properties", {})
    additional = schema.get("additionalProperties")
    for key, child in value.items():
        child_path = f"{path}.{key}" if path else key
        if key in properties:
            validate(child, properties[key], child_path, errors)
        elif isinstance(additional, dict):
            validate(child, additional, child_path, errors)


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    failed = False
    for doc_path in sys.argv[2:]:
        with open(doc_path, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                print(f"FAIL {doc_path}: not valid JSON ({e})")
                failed = True
                continue
        errors: list = []
        validate(doc, schema, "", errors)
        if errors:
            failed = True
            print(f"FAIL {doc_path}:")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"ok   {doc_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
