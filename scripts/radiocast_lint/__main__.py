"""`python3 -m radiocast_lint` (with scripts/ on sys.path)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
