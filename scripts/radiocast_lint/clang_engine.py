"""The libclang front-end.

Two layers, both fed from one translation unit per file:

* the *lexer* layer rebuilds per-line code text from non-comment,
  non-string tokens, so the line-based rules (R1–R6, R9) run on exactly
  the same matchers as the regex engine but with comments and string
  literals excluded by construction;
* the *AST* layer walks real cursors for the two semantic rules the
  regex engine cannot approximate: R7 (writes through reference-captured
  shared state inside lambdas dispatched through
  ``common/worker_pool.hpp``) and R8 (floating-point accumulation whose
  iteration source is a parallel or unordered range).

Translation units are parsed with the file's real arguments from
``compile_commands.json`` when the build exported one (every CMake
preset does), so headers resolve and types/overloads carry real
semantic information; files outside the database (headers, the fixture
tree) fall back to ``-std=c++20 -I <root>/src``.

Both AST passes are deliberately conservative-accepting: when a
subexpression cannot be classified (macro expansions, unresolved
overloads from a degraded parse) the write is *not* flagged — a false
positive would train people to sprinkle suppressions, which is worse
than leaving the residue to TSan. The heuristics' reach is documented in
docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import pathlib
import re

from . import rules
from .report import FileReport, Violation

# Candidate shared objects for clang.cindex when the default resolution
# fails (Debian/Ubuntu install versioned sonames only).
_LIBCLANG_CANDIDATES = (
    "libclang-18.so.1", "libclang-17.so.1", "libclang-16.so.1",
    "libclang-15.so.1", "libclang-14.so.1", "libclang-14.so",
    "libclang.so.1", "libclang.so",
)

_FP_RE = re.compile(r"\b(float|double)\b")
# Textual fallback for recognizing a worker-pool dispatch when the callee
# does not resolve semantically (e.g. a fixture parsed without the
# project headers): `<something>pool<something>.run(` / `->run(`.
_POOL_CALL_RE = re.compile(r"\w*[Pp]ool\w*(?:\.|->)run\($")


def load() -> "ClangFrontEnd | None":
    """Returns a working front-end or None when the bindings (or a
    loadable libclang) are unavailable."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        return ClangFrontEnd(cindex, cindex.Index.create())
    except Exception:
        pass
    for name in _LIBCLANG_CANDIDATES:
        try:
            cindex.Config.set_library_file(name)
            return ClangFrontEnd(cindex, cindex.Index.create())
        except Exception:
            continue
    return None


class ClangFrontEnd:
    def __init__(self, cindex, index):
        self.cindex = cindex
        self.index = index
        self.db = None
        self.default_args = ["-x", "c++", "-std=c++20"]

    def configure(self, root: pathlib.Path, build_dir: pathlib.Path | None):
        self.default_args = ["-x", "c++", "-std=c++20",
                             "-I", str(root / "src")]
        if build_dir is None:
            build_dir = root / "build"
        if (build_dir / "compile_commands.json").is_file():
            try:
                self.db = self.cindex.CompilationDatabase.fromDirectory(
                    str(build_dir))
            except Exception:
                self.db = None

    # -- translation-unit plumbing ---------------------------------------

    def _file_args(self, path: pathlib.Path) -> list:
        if self.db is None:
            return self.default_args
        try:
            cmds = self.db.getCompileCommands(str(path.resolve()))
        except Exception:
            cmds = None
        if not cmds:
            return self.default_args
        cmd = cmds[0]
        raw = list(cmd.arguments)[1:]  # drop the compiler executable
        args = []
        skip_next = False
        for a in raw:
            if skip_next:
                skip_next = False
                continue
            if a == "-o":
                skip_next = True
                continue
            if a == "-c" or a == str(path) or a == str(path.resolve()):
                continue
            args.append(a)
        # Relative include paths in the database are relative to the
        # command's working directory.
        args.append(f"-working-directory={cmd.directory}")
        return args

    def parse(self, path: pathlib.Path):
        """One TU per file; raises on hard parse failure (the caller
        falls back to the regex stripper for that file)."""
        return self.index.parse(str(path), args=self._file_args(path),
                                options=0)

    def code_lines(self, tu, raw_lines: list) -> list:
        """Like lexing.strip_code(), but via libclang's lexer: rebuilds
        per-line code text from non-comment, non-literal tokens, so both
        engines feed the same matchers."""
        cindex = self.cindex
        out = [" " * len(line) for line in raw_lines]
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            if tok.kind == cindex.TokenKind.COMMENT:
                continue
            if tok.kind == cindex.TokenKind.LITERAL:
                # Drop string/char literals (a "mt19937" in a log message
                # is not a use) but keep numeric ones: R4/R6 parse salt
                # values.
                spelling = tok.spelling
                if not spelling or not (spelling[0].isdigit()
                                        or spelling[0] == "."):
                    continue
            loc = tok.location
            row = loc.line - 1
            col = loc.column - 1
            if row < 0 or row >= len(out):
                continue
            text = tok.spelling
            line = out[row]
            out[row] = line[:col] + text + line[col + len(text):]
        return out

    # -- AST helpers ------------------------------------------------------

    def _main_cursors(self, tu, path: pathlib.Path):
        """Preorder walk of every top-level cursor that lives in `path`
        (included headers are skipped at the top level, so the walk never
        descends into gtest and friends)."""
        name = str(path)
        resolved = str(path.resolve())

        def walk(cur):
            yield cur
            for child in cur.get_children():
                yield from walk(child)

        for child in tu.cursor.get_children():
            f = child.location.file
            if f is not None and f.name in (name, resolved):
                yield from walk(child)

    @staticmethod
    def _subtree(cur):
        yield cur
        for child in cur.get_children():
            yield from ClangFrontEnd._subtree(child)

    @staticmethod
    def _tokens(cur) -> list:
        try:
            return [t.spelling for t in cur.get_tokens()]
        except Exception:
            return []

    def _is_pool_dispatch(self, cur) -> bool:
        """True when `cur` (a CALL_EXPR) is WorkerPool::run."""
        if cur.spelling != "run":
            return False
        try:
            ref = cur.referenced
        except Exception:
            ref = None
        ck = self.cindex.CursorKind
        if ref is not None and ref.kind in (ck.CXX_METHOD,
                                            ck.FUNCTION_TEMPLATE):
            parent = ref.semantic_parent
            return parent is not None and parent.spelling == "WorkerPool"
        # Unresolved callee (degraded parse): match the spelled receiver.
        toks = self._tokens(cur)
        for i, t in enumerate(toks):
            if t == "(":
                return bool(_POOL_CALL_RE.search("".join(toks[:i + 1])))
        return False

    def _capture_tokens(self, lam) -> list:
        """Token spellings of the lambda's capture list (between the
        opening '[' and its matching ']')."""
        toks = self._tokens(lam)
        if not toks or toks[0] != "[":
            return []
        depth = 0
        out = []
        for t in toks:
            if t == "[":
                depth += 1
                if depth == 1:
                    continue
            elif t == "]":
                depth -= 1
                if depth == 0:
                    return out
            if depth >= 1:
                out.append(t)
        return out

    def _allowed_names(self, lam) -> set:
        """The lambda's index parameters plus every local transitively
        derived from them (`Shard& shard = shards_[s];`,
        `for (NodeId v = shards_[s].begin; ...)`, range-for loop
        variables over param-derived ranges).  Writes subscripted by any
        of these names are shard-owned by construction."""
        ck = self.cindex.CursorKind
        params = [c.spelling for c in lam.get_children()
                  if c.kind == ck.PARM_DECL and c.spelling]
        decls = []
        for cur in self._subtree(lam):
            if cur.kind == ck.CXX_FOR_RANGE_STMT:
                children = list(cur.get_children())
                var = next((c for c in children if c.kind == ck.VAR_DECL),
                           None)
                if var is None or not var.spelling:
                    continue
                dep = set()
                for c in children:
                    if c is var or (children and c is children[-1]):
                        continue
                    dep |= set(self._tokens(c))
                decls.append((var.spelling, dep))
            elif cur.kind == ck.VAR_DECL and cur is not lam and cur.spelling:
                dep = set(self._tokens(cur)) - {cur.spelling}
                decls.append((cur.spelling, dep))
        allowed = set(params)
        changed = True
        while changed:
            changed = False
            for name, dep in decls:
                if name not in allowed and dep & allowed:
                    allowed.add(name)
                    changed = True
        return allowed

    @staticmethod
    def _extent_contains(extent, loc) -> bool:
        try:
            if extent.start.file is None or loc.file is None:
                return False
            if extent.start.file.name != loc.file.name:
                return False
            return extent.start.offset <= loc.offset <= extent.end.offset
        except Exception:
            return False

    def _lhs_is_owned(self, lhs, lam, allowed: set) -> bool:
        """True when a write through `lhs` inside pool-lambda `lam` is
        provably benign: every referenced declaration is lambda-local, or
        the target type is atomic, or the target is subscripted by a
        shard-derived index."""
        ck = self.cindex.CursorKind
        outside = False
        for cur in self._subtree(lhs):
            if cur.kind == ck.CXX_THIS_EXPR:
                outside = True
            elif cur.kind in (ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR):
                try:
                    decl = cur.referenced
                except Exception:
                    decl = None
                if decl is None:
                    outside = True
                elif not self._extent_contains(lam.extent, decl.location):
                    outside = True
        if not outside:
            return True
        try:
            if "atomic" in lhs.type.spelling:
                return True
        except Exception:
            pass
        # Shard-indexed: any subscript in the write target whose index
        # expression names an allowed (param-derived) variable.
        toks = self._tokens(lhs)
        depth = 0
        for t in toks:
            if t == "[":
                depth += 1
            elif t == "]":
                depth = max(0, depth - 1)
            elif depth > 0 and t in allowed:
                return True
        return False

    def _assignment_targets(self, body):
        """Yields (cursor, lhs) for every assignment-family expression in
        `body`: plain/compound assignment (builtin and overloaded) and
        ++/--.  Method-call mutation (`v.push_back(x)`) is out of reach
        of a write-target analysis and deliberately left to TSan — the
        rule's documented limitation."""
        ck = self.cindex.CursorKind
        for cur in self._subtree(body):
            if cur is not body and cur.kind == ck.LAMBDA_EXPR:
                # A nested lambda's execution context is unknown; its
                # body is analyzed only if it is itself dispatched.
                continue
            children = list(cur.get_children())
            if cur.kind == ck.COMPOUND_ASSIGNMENT_OPERATOR and children:
                yield cur, children[0]
            elif cur.kind == ck.BINARY_OPERATOR and len(children) == 2:
                if self._binop_spelling(cur, children) == "=":
                    yield cur, children[0]
            elif cur.kind == ck.UNARY_OPERATOR and children:
                toks = self._tokens(cur)
                if toks and (toks[0] in ("++", "--")
                             or toks[-1] in ("++", "--")):
                    yield cur, children[0]
            elif cur.kind == ck.CALL_EXPR and children and (
                    cur.spelling == "operator="
                    or cur.spelling.startswith("operator")
                    and cur.spelling.endswith("=")
                    and cur.spelling not in ("operator==", "operator!=",
                                             "operator<=", "operator>=")):
                yield cur, children[0]

    def _binop_spelling(self, cur, children):
        try:
            end = children[0].extent.end.offset
            for tok in cur.get_tokens():
                if tok.location.offset >= end:
                    return tok.spelling
        except Exception:
            pass
        return None

    # -- R7: worker-pool write ownership ----------------------------------

    def r7_findings(self, tu, path: pathlib.Path, rel) -> list:
        ck = self.cindex.CursorKind
        found = []
        seen_lambdas = set()
        for cur in self._main_cursors(tu, path):
            if cur.kind != ck.CALL_EXPR or not self._is_pool_dispatch(cur):
                continue
            for lam in self._subtree(cur):
                if lam.kind != ck.LAMBDA_EXPR:
                    continue
                if lam.hash in seen_lambdas:
                    continue
                seen_lambdas.add(lam.hash)
                captures = self._capture_tokens(lam)
                if "&" not in captures and "this" not in captures:
                    continue  # value captures cannot alias caller state
                allowed = self._allowed_names(lam)
                body = next(
                    (c for c in lam.get_children()
                     if c.kind == ck.COMPOUND_STMT), None)
                if body is None:
                    continue
                for write, lhs in self._assignment_targets(body):
                    try:
                        owned = self._lhs_is_owned(lhs, lam, allowed)
                    except Exception:
                        owned = True  # unclassifiable: leave it to TSan
                    if owned:
                        continue
                    found.append(Violation(
                        rel, write.location.line, "R7",
                        "write through reference-captured shared state in "
                        "a worker-pool lambda — index the write by the "
                        "dispatch parameter (shard ownership), make it "
                        "atomic, or annotate with the ownership proof"))
        return found

    # -- R8: floating-point reduction order -------------------------------

    def _mentions_unordered(self, cur) -> bool:
        for sub in self._subtree(cur):
            try:
                if "unordered_" in sub.type.spelling:
                    return True
            except Exception:
                continue
        return False

    def _fp_compound_adds(self, body):
        ck = self.cindex.CursorKind
        for cur in self._subtree(body):
            if cur.kind != ck.COMPOUND_ASSIGNMENT_OPERATOR:
                continue
            children = list(cur.get_children())
            if len(children) != 2:
                continue
            if self._binop_spelling(cur, children) not in ("+=", "-="):
                continue
            try:
                fp = bool(_FP_RE.search(children[0].type.spelling))
            except Exception:
                fp = False
            if fp:
                yield cur

    def r8_findings(self, tu, path: pathlib.Path, rel) -> list:
        if not rules.in_scope(rel, rules.R8_DIRS):
            return []
        ck = self.cindex.CursorKind
        found = []
        for cur in self._main_cursors(tu, path):
            if cur.kind == ck.CXX_FOR_RANGE_STMT:
                children = list(cur.get_children())
                if not children:
                    continue
                body = children[-1]
                header = [c for c in children[:-1]]
                if not any(self._mentions_unordered(c) for c in header):
                    continue
                for add in self._fp_compound_adds(body):
                    found.append(Violation(
                        rel, add.location.line, "R8",
                        "floating-point accumulation over an unordered "
                        "range — bucket order varies across libstdc++ "
                        "versions and insertion histories, so the rounded "
                        "sum does too; iterate a sorted copy or annotate "
                        "with an order-independence proof"))
            elif cur.kind == ck.CALL_EXPR and cur.spelling in ("accumulate",
                                                              "reduce"):
                try:
                    fp = bool(_FP_RE.search(cur.type.spelling))
                except Exception:
                    fp = False
                if not fp:
                    continue
                unordered = self._mentions_unordered(cur)
                parallel = False
                for arg in self._subtree(cur):
                    try:
                        if "execution" in arg.type.spelling:
                            parallel = True
                    except Exception:
                        continue
                if unordered or (parallel and cur.spelling == "reduce"):
                    found.append(Violation(
                        rel, cur.location.line, "R8",
                        "floating-point reduction over a parallel or "
                        "unordered range — the reduction order (and so "
                        "the rounded result) depends on thread count or "
                        "bucket order; reduce in a fixed order or "
                        "annotate with an order-independence proof"))
        return found

    def ast_findings(self, tu, path: pathlib.Path,
                     report: FileReport) -> None:
        report.violations.extend(self.r7_findings(tu, path, report.rel))
        report.violations.extend(self.r8_findings(tu, path, report.rel))
