"""radiocast-lint: the project's determinism/invariant static-analysis pass.

The package behind the historical ``scripts/radiocast_lint.py`` entry
point. Layout:

* :mod:`radiocast_lint.rules` — the rule catalog (ids, titles, scopes,
  regexes, the salt-registry path). Pure data, importable standalone;
  ``scripts/check_docs.py`` loads it to cross-check the documentation.
* :mod:`radiocast_lint.report` — violation/suppression/file-report
  dataclasses and the ``--json`` report builder.
* :mod:`radiocast_lint.lexing` — the stdlib comment/string stripper used
  by the regex engine.
* :mod:`radiocast_lint.scan` — the engine-independent line scanners
  (R1–R6, R9, the cross-file R4 salt pass, suppression collection).
* :mod:`radiocast_lint.clang_engine` — the libclang front-end: lexer
  token lines fed to the same line scanners, plus the AST passes for the
  semantic rules R7 (worker-pool write ownership) and R8 (floating-point
  reduction order). Consumes ``compile_commands.json`` when present.
* :mod:`radiocast_lint.cli` — argument parsing, the tree walk, engine
  selection, output, the ``--json`` writer and the suppression-budget
  gate.

See ``docs/STATIC_ANALYSIS.md`` for the catalog with paper-level
rationale. Stdlib-only apart from the optional clang bindings — CI must
not pip-install anything.
"""

__all__ = ["rules", "report", "lexing", "scan", "clang_engine", "cli"]
