"""Violation/suppression bookkeeping and the ``--json`` report builder."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from . import rules

JSON_VERSION = 1


@dataclass
class Violation:
    path: pathlib.Path   # as reported (relative to root when possible)
    line: int            # 1-based
    rule: str
    message: str


@dataclass
class Suppression:
    line: int
    rule: str
    reason: str
    used: bool = False


@dataclass
class FileReport:
    path: pathlib.Path
    rel: pathlib.Path                 # path used for scoping + output
    engine: str = "regex"             # which front-end produced code lines
    suppressions: dict = field(default_factory=dict)  # line -> Suppression
    malformed: list = field(default_factory=list)     # (line, why)
    violations: list = field(default_factory=list)    # Violation
    salts: list = field(default_factory=list)         # (name, value, line)


def apply_suppressions(report: FileReport) -> list:
    """Filters suppressed violations; returns the surviving ones."""
    alive = []
    for v in report.violations:
        suppressed = False
        for lineno in (v.line, v.line - 1):
            s = report.suppressions.get(lineno)
            if s is not None and s.rule == v.rule:
                s.used = True
                suppressed = True
                break
        if not suppressed:
            alive.append(v)
    return alive


def build_json(engine: str, reports: list, surviving: list,
               malformed: list, checked_rules: set,
               exit_code: int) -> dict:
    """The machine-readable lint report (``--json``).

    The suppression *inventory* counts every well-formed annotation in
    the linted files — used or not — because that is the quantity the
    suppression-budget gate tracks: an annotation is reviewer-visible
    debt the moment it lands in the tree, and the total is identical
    under both engines (the regex engine cannot mark a clang-only
    suppression used, but it still sees the annotation)."""
    inventory = []
    for r in reports:
        for s in sorted(r.suppressions.values(), key=lambda s: s.line):
            inventory.append({
                "path": r.rel.as_posix(),
                "line": s.line,
                "rule": s.rule,
                "reason": s.reason,
                "used": s.used,
            })
    per_rule = {rule: 0 for rule in rules.RULES}
    for v in surviving:
        per_rule[v.rule] += 1
    return {
        "version": JSON_VERSION,
        "engine": engine,
        "files": len(reports),
        "files_degraded": sum(1 for r in reports
                              if engine == "clang" and r.engine != "clang"),
        "rules": {
            rule: {
                "title": rules.RULES[rule],
                "scope": rules.SCOPE_DISPLAY[rule],
                "checked": rule in checked_rules,
                "violations": per_rule[rule],
            }
            for rule in rules.RULES
        },
        "findings": [
            {"path": v.path.as_posix(), "line": v.line, "rule": v.rule,
             "message": v.message}
            for v in surviving
        ],
        "suppressions": {
            "total": len(inventory),
            "in_use": sum(1 for s in inventory if s["used"]),
            "unused": sum(1 for s in inventory if not s["used"]),
            "inventory": inventory,
        },
        "malformed": [
            {"path": r.rel.as_posix(), "line": lineno, "message": why}
            for r, lineno, why in malformed
        ],
        "exit": exit_code,
    }
