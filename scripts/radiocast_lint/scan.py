"""Engine-independent passes: suppression collection, the line-based
rules R1–R6/R9 over comment-stripped code lines (produced either by the
stdlib stripper or by libclang's lexer), and the cross-file R4 salt
pass."""

from __future__ import annotations

import re

from . import rules
from .report import FileReport, Suppression, Violation


def collect_suppressions(report: FileReport, raw_lines: list) -> None:
    for lineno, line in enumerate(raw_lines, start=1):
        if rules.SUPPRESS_TOKEN not in line:
            continue
        m = rules.SUPPRESS_RE.search(line)
        if not m:
            report.malformed.append(
                (lineno, f"malformed suppression (expected "
                         f"'// {rules.SUPPRESS_TOKEN}(<rule>): <reason>')"))
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in rules.RULES:
            report.malformed.append(
                (lineno, f"suppression names unknown rule '{rule}'"))
            continue
        if not reason:
            report.malformed.append(
                (lineno, "suppression carries no reason"))
            continue
        report.suppressions[lineno] = Suppression(lineno, rule, reason)


def scan_code_lines(report: FileReport, code_lines: list) -> None:
    """Applies the line-based rules R1/R2/R3/R5/R6/R9 to the
    comment-stripped lines and collects salt definitions for the
    cross-file R4 pass."""
    rel = report.rel
    r1 = rules.r1_in_scope(rel)
    r2 = rules.in_scope(rel, rules.R2_DIRS)
    r3 = rules.in_scope(rel, rules.R3_DIRS)
    r5 = rules.in_scope(rel, rules.R5_DIRS)
    r6 = rules.r6_in_scope(rel)
    r9 = rules.in_scope(rel, rules.R9_DIRS)

    for lineno, line in enumerate(code_lines, start=1):
        if r1 and rules.R1_RE.search(line):
            report.violations.append(Violation(
                rel, lineno, "R1",
                "sequential RNG engine (mt19937/rand/random_device) — all "
                "randomness must flow through radiocast::rng"))
        if r2 and rules.R2_RE.search(line):
            report.violations.append(Violation(
                rel, lineno, "R2",
                "wall-clock/environment read (time/system_clock/getenv) in "
                "a trial path — trials must be pure functions of the seed"))
        if r3 and rules.R3_RE.search(line) \
                and not rules.INCLUDE_RE.match(line):
            report.violations.append(Violation(
                rel, lineno, "R3",
                "unordered container in a result-bearing directory — "
                "iteration order is unspecified; use an ordered container "
                "or annotate with an order-independence proof"))
        if r5:
            m = rules.R5_STATIC_RE.match(line)
            if m and not rules.R5_EXEMPT_RE.match(m.group(1)):
                tail = m.group(1)
                stop = re.search(r"[=;{(]", tail)
                # A '(' first means a (member) function declaration, which
                # carries no state; anything else is a static object.
                if stop and stop.group(0) != "(":
                    report.violations.append(Violation(
                        rel, lineno, "R5",
                        "static non-const state — hidden mutable state "
                        "breaks trial independence"))
        if r9 and rules.R2_RE.search(line):
            report.violations.append(Violation(
                rel, lineno, "R9",
                "wall-clock/environment read (time/system_clock/getenv) in "
                "common/ or cache/ — infrastructure below the trial "
                "engines must not read ambient state that could steer a "
                "trajectory; prove the read is startup-only and "
                "outcome-invariant or hoist it to the harness"))
        salt_defs = list(rules.R4_SALT_RE.finditer(line))
        if r6:
            for m in salt_defs:
                report.violations.append(Violation(
                    rel, lineno, "R6",
                    f"salt constant {m.group(1)} defined outside the "
                    f"registry — every CounterRng stream domain lives in "
                    f"{rules.REGISTRY_REL} (with its inventory row in "
                    "docs/STATIC_ANALYSIS.md)"))
            if rules.R6_DRAW_RE.search(line):
                report.violations.append(Violation(
                    rel, lineno, "R6",
                    "literal salt at a CounterRng draw site — draws must "
                    f"be keyed by a named salt from {rules.REGISTRY_REL} "
                    "so the stream inventory stays complete"))
        for m in salt_defs:
            value = int(m.group(2).replace("'", ""), 0)
            report.salts.append((m.group(1), value, lineno))


def check_salt_uniqueness(reports: list) -> list:
    """Cross-file R4 pass: every kSalt* constant value must be unique.
    With the registry in place this is a registry property — scattered
    definitions are already R6 violations — but the pass still guards
    the registry itself against a copy-pasted value."""
    by_value: dict = {}
    for report in reports:
        for name, value, lineno in report.salts:
            by_value.setdefault(value, []).append((report, name, lineno))
    violations = []
    for value, sites in sorted(by_value.items()):
        if len(sites) < 2:
            continue
        first = sites[0]
        for report, name, lineno in sites[1:]:
            v = Violation(
                report.rel, lineno, "R4",
                f"salt constant {name} duplicates the value "
                f"{value:#018x} of {first[1]} "
                f"({first[0].rel}:{first[2]}) — duplicate salts silently "
                "correlate CounterRng streams")
            report.violations.append(v)
            violations.append((report, v))
    return violations
