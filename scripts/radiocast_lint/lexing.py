"""The regex engine's comment/string stripper."""

from __future__ import annotations


def strip_code(raw_lines: list) -> list:
    """Returns `raw_lines` with comments and string/char literals blanked.

    A small state machine tracking /* */ across lines; escapes inside
    literals are honored, and a ' between two hex digits is kept as a
    digit separator (0xC01F'F11F…) rather than opening a char literal —
    R4/R6 parse full salt values.  Enough C++ lexing for the rule
    patterns — raw strings are treated as plain strings, which only errs
    on the conservative (blanking) side.
    """
    hexdigits = set("0123456789abcdefABCDEF")
    out = []
    in_block = False
    for line in raw_lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            if c == "'" and i > 0 and line[i - 1] in hexdigits \
                    and nxt in hexdigits:
                buf.append(c)  # digit separator inside a numeric literal
                i += 1
                continue
            if c in "\"'":
                quote = c
                buf.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(" ")
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out
