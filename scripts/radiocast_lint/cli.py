"""Driver: file discovery, engine selection, reporting, and the
suppression-budget gate.

Exit codes (stable, relied on by CI and the self-tests):
  0  clean
  1  surviving violations, or a suppression-budget mismatch
  2  malformed suppressions, or usage errors (unknown rule in an
     annotation, unreadable budget doc, --engine clang without libclang)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

from . import clang_engine, rules, scan
from .lexing import strip_code
from .report import FileReport, apply_suppressions, build_json

SCAN_DIRS = ("src", "bench", "tests")
SCAN_EXTS = {".cpp", ".hpp", ".cc", ".h"}
SKIP_PARTS = {"build", ".git"}
# The deliberately-broken fixture tree is linted only by its self-test.
SKIP_REL = ("tests/lint/fixtures",)

BUDGET_RE = re.compile(r"Suppression budget:\s*`(\d+)`")


def iter_files(root: pathlib.Path):
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SCAN_EXTS:
                continue
            rel = path.relative_to(root)
            if SKIP_PARTS & set(rel.parts):
                continue
            if any(rel.as_posix().startswith(skip) for skip in SKIP_REL):
                continue
            yield path


def list_rules() -> None:
    width = max(len(r) for r in rules.RULES)
    for rule, title in rules.RULES.items():
        print(f"{rule:<{width}}  {title}")
        print(f"{'':<{width}}    scope: {rules.SCOPE_DISPLAY[rule]}")


def lint_file(path: pathlib.Path, rel: pathlib.Path,
              front_end) -> FileReport:
    report = FileReport(path=path, rel=rel)
    raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    scan.collect_suppressions(report, raw)
    code_lines = None
    if front_end is not None:
        try:
            tu = front_end.parse(path)
            code_lines = front_end.code_lines(tu, raw)
            front_end.ast_findings(tu, path, report)
            report.engine = "clang"
        except Exception:
            code_lines = None  # degraded: fall back to the stripper
    if code_lines is None:
        code_lines = strip_code(raw)
    scan.scan_code_lines(report, code_lines)
    return report


def read_budget(doc: pathlib.Path) -> int | None:
    try:
        text = doc.read_text(encoding="utf-8")
    except OSError:
        return None
    m = BUDGET_RE.search(text)
    return int(m.group(1)) if m else None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="radiocast_lint",
        description="Determinism and concurrency-ownership linter for the "
                    "radiocast tree (rules R1-R9).")
    ap.add_argument("files", nargs="*", type=pathlib.Path,
                    help="files to lint (default: walk src/ bench/ tests/)")
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (scoping + default walk)")
    ap.add_argument("--engine", choices=("auto", "clang", "regex"),
                    default="auto",
                    help="auto prefers libclang and falls back to the "
                         "regex engine; clang fails hard when libclang is "
                         "unavailable")
    ap.add_argument("--compile-commands", type=pathlib.Path, default=None,
                    help="directory holding compile_commands.json "
                         "(default: <root>/build)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    metavar="PATH",
                    help="write the machine-readable report to PATH")
    ap.add_argument("--budget", type=pathlib.Path, default=None,
                    metavar="DOC",
                    help="enforce the 'Suppression budget: `N`' line of DOC "
                         "against the annotation inventory")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-violation lines (summary only)")
    args = ap.parse_args(argv)

    if args.list_rules:
        list_rules()
        return 0

    root = args.root.resolve()

    front_end = None
    if args.engine in ("auto", "clang"):
        front_end = clang_engine.load()
        if front_end is None and args.engine == "clang":
            print("radiocast-lint: --engine clang requested but the "
                  "libclang bindings are unavailable", file=sys.stderr)
            return 2
        if front_end is not None:
            front_end.configure(root, args.compile_commands)
    engine = "clang" if front_end is not None else "regex"

    if args.files:
        targets = [p.resolve() for p in args.files]
    else:
        targets = list(iter_files(root))

    reports = []
    for path in targets:
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        reports.append(lint_file(path, rel, front_end))

    scan.check_salt_uniqueness(reports)

    surviving = []
    malformed = []
    for report in reports:
        surviving.extend(apply_suppressions(report))
        for lineno, why in report.malformed:
            malformed.append((report, lineno, why))
    surviving.sort(key=lambda v: (v.path.as_posix(), v.line, v.rule))

    for report, lineno, why in malformed:
        print(f"{report.rel.as_posix()}:{lineno}: error: {why}")
    if not args.quiet:
        for v in surviving:
            print(f"{v.path.as_posix()}:{v.line}: {v.rule}: {v.message}")

    checked = set(rules.RULES)
    note = ""
    if engine != "clang":
        checked -= rules.CLANG_ONLY
        note = ("; " + "/".join(sorted(rules.CLANG_ONLY))
                + " not checked (clang engine only)")

    total = sum(len(r.suppressions) for r in reports)
    used = sum(1 for r in reports
               for s in r.suppressions.values() if s.used)

    budget_line = ""
    budget_fail = False
    if args.budget is not None:
        budget = read_budget(args.budget)
        if budget is None:
            print(f"radiocast-lint: no 'Suppression budget: `N`' line "
                  f"found in {args.budget}", file=sys.stderr)
            return 2
        if budget != total:
            budget_fail = True
            print(f"radiocast-lint: suppression budget mismatch — "
                  f"{args.budget} pins `{budget}` but the tree carries "
                  f"{total} annotation(s); update the budget line and the "
                  f"suppression catalog together", file=sys.stderr)
        else:
            budget_line = f", budget {budget} ok"

    if malformed:
        exit_code = 2
    elif surviving or budget_fail:
        exit_code = 1
    else:
        exit_code = 0

    print(f"radiocast-lint[{engine}]: {len(reports)} file(s), "
          f"{len(surviving)} violation(s), {used} suppression(s) in use"
          f"{budget_line}{note}")

    if args.json is not None:
        payload = build_json(engine, reports, surviving, malformed,
                             checked, exit_code)
        args.json.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")

    return exit_code
