"""The rule catalog: ids, titles, scopes and the patterns that drive both
engines.

Pure data and pure helpers — no imports beyond the stdlib and no imports
from the rest of the package, so ``scripts/check_docs.py`` can load this
module standalone (via importlib) to cross-check rule ids, scope strings
and the salt registry against ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import pathlib
import re

# --------------------------------------------------------------------------
# Rule catalog.  check_docs.py cross-checks these ids *and* the scope
# strings below against docs/STATIC_ANALYSIS.md, so neither the set nor
# the scoping can drift from its documentation.
# --------------------------------------------------------------------------

RULES = {
    "R1": "sequential RNG engine outside src/radiocast/rng/",
    "R2": "wall-clock/environment read in a trial path",
    "R3": "unordered container in a result-bearing directory",
    "R4": "duplicate CounterRng salt constant",
    "R5": "static non-const state in sim/ or proto/",
    "R6": "CounterRng salt defined or drawn outside the registry",
    "R7": "unproven shared write in a worker-pool lambda",
    "R8": "floating-point accumulation over a parallel/unordered range",
    "R9": "wall-clock/environment read in common/ or cache/",
}

# Rules whose detection needs a real AST: the regex engine reports them
# as not-checked instead of pretending.
CLANG_ONLY = frozenset({"R7", "R8"})

# Path *segments* (directory names anywhere in the lint-relative path)
# that place a file inside a rule's scope.  Scoping by segment instead of
# full prefix lets the tests/lint/fixtures tree mirror the layout.
R2_DIRS = frozenset({"sim", "proto", "fault", "harness", "graph"})
R3_DIRS = frozenset({"sim", "proto", "stats", "obs", "fault", "graph",
                     "cache"})
R5_DIRS = frozenset({"sim", "proto", "graph"})
# R8 covers every result-bearing directory R3 does, plus harness/ (the
# trial aggregation layer: a thread-count-dependent reduction there feeds
# RunRecords directly).
R8_DIRS = R3_DIRS | {"harness"}
R9_DIRS = frozenset({"common", "cache"})

# The one file allowed to define kSalt* constants (R6).
REGISTRY_REL = "src/radiocast/rng/salts.hpp"

# Human- and machine-readable scope strings: printed by --list-rules and
# cross-checked (backticks ignored) against the `**Scope:**` line of each
# rule's section in docs/STATIC_ANALYSIS.md.
def _dirs(dirs: frozenset) -> str:
    return ", ".join(f"`{d}/`" for d in sorted(dirs))


SCOPE_DISPLAY = {
    "R1": "everywhere except `src/radiocast/rng/`",
    "R2": _dirs(R2_DIRS),
    "R3": _dirs(R3_DIRS),
    "R4": "everywhere (cross-file)",
    "R5": _dirs(R5_DIRS),
    "R6": "everywhere except `tests/` and the registry "
          "`src/radiocast/rng/salts.hpp`",
    "R7": "everywhere a `common/worker_pool.hpp` lambda is dispatched "
          "(clang engine only)",
    "R8": _dirs(R8_DIRS) + " (clang engine only)",
    "R9": _dirs(R9_DIRS),
}

SUPPRESS_TOKEN = "RADIOCAST_LINT_OK"
# The only accepted shape: // RADIOCAST_LINT_OK(R3): non-empty reason
SUPPRESS_RE = re.compile(
    r"//\s*" + SUPPRESS_TOKEN + r"\((R\d+)\):\s*(\S.*)$")

R1_RE = re.compile(r"\b(?:std::)?(?:mt19937(?:_64)?|random_device)\b"
                   r"|\bstd::rand\b|\bsrand\s*\(")
R2_RE = re.compile(r"\b(?:std::)?time\s*\(|\bsystem_clock\b|\bgetenv\b")
R3_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
R4_SALT_RE = re.compile(
    r"\b(kSalt\w*)\s*=\s*(0[xX][0-9a-fA-F']+|\d[\d']*)")
R5_STATIC_RE = re.compile(r"^\s*static\s+(?:thread_local\s+)?(.*)$")
R5_EXEMPT_RE = re.compile(
    r"^\s*(?:inline\s+)?(?:const\b|constexpr\b|consteval\b|constinit\b)")
# A literal (unregistered) salt handed straight to a CounterRng draw.
# word/unit take the salt as their first argument; an integer literal
# there bypasses the registry even without a kSalt* definition.
R6_DRAW_RE = re.compile(
    r"\.\s*(?:word|unit)\s*\(\s*(?:0[xX][0-9a-fA-F']+|\d[\d']*)"
    r"[uUlL]*\s*,")
INCLUDE_RE = re.compile(r"^\s*#\s*include\b")


def scoped_rel(rel: pathlib.Path) -> pathlib.Path:
    """The path used for rule scoping.  The deliberately-broken fixture
    tree mirrors the repo layout under ``tests/lint/fixtures/``; scoping
    by the subpath after ``fixtures`` lets a fixture exercise rules (like
    R6) that exclude ``tests/`` in the real tree."""
    parts = rel.parts
    if "fixtures" in parts:
        idx = len(parts) - 1 - parts[::-1].index("fixtures")
        return pathlib.Path(*parts[idx + 1:])
    return rel


def in_scope(rel: pathlib.Path, dirs: frozenset) -> bool:
    return any(part in dirs for part in scoped_rel(rel).parts)


def r1_in_scope(rel: pathlib.Path) -> bool:
    """R1 applies everywhere except the rng layer itself."""
    parts = scoped_rel(rel).parts
    return not any(parts[i:i + 3] == ("src", "radiocast", "rng")
                   for i in range(len(parts)))


def r6_in_scope(rel: pathlib.Path) -> bool:
    """R6 applies everywhere except tests (keying-contract tests draw
    from small literal salts on purpose) and the registry itself."""
    scoped = scoped_rel(rel)
    if "tests" in scoped.parts:
        return False
    return scoped.as_posix() != REGISTRY_REL
