#include "radiocast/lb/abstract_protocol.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"
#include "radiocast/common/types.hpp"

namespace radiocast::lb {

AbstractRunResult run_abstract(AbstractBroadcastProtocol& protocol,
                               std::size_t n, std::span<const NodeId> s,
                               std::size_t max_rounds) {
  RADIOCAST_CHECK_MSG(!s.empty(), "S must be non-empty");
  std::vector<char> in_s(n + 1, 0);
  for (const NodeId x : s) {
    RADIOCAST_CHECK_MSG(x >= 1 && x <= n, "S member out of range");
    in_s[x] = 1;
  }

  protocol.reset(n);
  AbstractRunResult result;
  while (result.rounds < max_rounds) {
    const Receiver rcv = protocol.receiver(result.history);
    // T = set of transmitting second-layer processors.
    std::size_t heard_count = 0;  // transmitters audible to the listener
    NodeId heard = kNoNode;
    for (NodeId p = 1; p <= n; ++p) {
      const bool chi = in_s[p] != 0;
      if (!protocol.transmits(p, chi, result.history)) {
        continue;
      }
      if (rcv == Receiver::kSink && !chi) {
        continue;  // the sink hears only its neighbors, i.e. S
      }
      ++heard_count;
      heard = p;
      if (heard_count > 1) {
        // Early exit is safe: >1 already means an unsuccessful round.
        break;
      }
    }
    ++result.rounds;
    RoundOutcome outcome;
    if (heard_count == 1) {
      outcome = RoundOutcome{true, heard, in_s[heard] != 0};
    }
    result.history.push_back(outcome);
    if (outcome.successful && outcome.indicator) {
      result.completed = true;
      return result;
    }
  }
  return result;
}

// --- RoundRobinAbstract -----------------------------------------------------

bool RoundRobinAbstract::transmits(NodeId p, bool /*chi*/,
                                   const History& h) const {
  return p == h.size() % n_ + 1;
}

Receiver RoundRobinAbstract::receiver(const History& /*h*/) const {
  return Receiver::kSink;
}

// --- BitSplitAbstract --------------------------------------------------------

bool BitSplitAbstract::transmits(NodeId p, bool /*chi*/,
                                 const History& h) const {
  const std::size_t round = h.size();
  const std::size_t mask_rounds = 2 * std::max(1U, ceil_log2(n_));
  if (round < mask_rounds) {
    const unsigned bit = static_cast<unsigned>(round / 2);
    const unsigned value = round % 2;
    return (((p - 1) >> bit) & 1U) == value;
  }
  return p == (round - mask_rounds) % n_ + 1;
}

Receiver BitSplitAbstract::receiver(const History& /*h*/) const {
  return Receiver::kSink;
}

// --- AdaptiveSplitAbstract ----------------------------------------------------

std::pair<NodeId, NodeId> AdaptiveSplitAbstract::window(
    const History& h) const {
  if (h.size() < cached_len_) {
    // A fresh (shorter) history: restart the replay.
    cached_len_ = 0;
    cached_lo_ = 1;
    cached_hi_ = static_cast<NodeId>(n_);
  }
  if (cached_len_ == 0) {
    cached_lo_ = 1;
    cached_hi_ = static_cast<NodeId>(n_);
  }
  // With the sink listening, every history entry is a failure; each one
  // shrinks or advances the window deterministically.
  for (; cached_len_ < h.size(); ++cached_len_) {
    if (cached_lo_ < cached_hi_) {
      // Silence: halve the suspect window.
      cached_hi_ = cached_lo_ + (cached_hi_ - cached_lo_) / 2;
    } else {
      // A lone candidate stayed silent-looking: it is not in S; move on.
      cached_lo_ = static_cast<NodeId>(cached_lo_ % n_ + 1);
      cached_hi_ = static_cast<NodeId>(n_);
    }
  }
  return {cached_lo_, cached_hi_};
}

bool AdaptiveSplitAbstract::transmits(NodeId p, bool chi,
                                      const History& h) const {
  if (!chi) {
    return false;  // only S-members volunteer
  }
  const auto [lo, hi] = window(h);
  return lo <= p && p <= hi;
}

Receiver AdaptiveSplitAbstract::receiver(const History& /*h*/) const {
  return Receiver::kSink;
}

}  // namespace radiocast::lb
