// Lemma 6, executable: from a *restricted* radio execution on C_n
// (recorded by the simulator's per-slot trace) extract the corresponding
// abstract-model history (Definition 4) — per virtual round, the
// second-layer transmitter set, the listening endpoint, and whether the
// round was successful, with the transmitter's S-indicator.
//
// Together with lb::RestrictedAdapter (Lemma 5) and lb::ProtocolExplorer /
// foil_strategy (Lemma 7 + Lemmas 9, 10), this makes every step of the
// paper's §3.2 reduction chain an executable, testable artifact:
//
//   radio protocol  --RestrictedAdapter-->  restricted protocol
//                   --extract_abstract_history-->  abstract execution
//                   --ProtocolExplorer-->  hitting-game strategy
//                   --find_foiling_set-->  adversarial S
//
// The extraction checks the paper's claims about the correspondence: the
// abstract run completes (first success with indicator 1) exactly when
// the restricted radio run first delivers a message across an S-sink
// link.
#pragma once

#include <vector>

#include "radiocast/graph/families.hpp"
#include "radiocast/lb/abstract_protocol.hpp"
#include "radiocast/sim/trace.hpp"

namespace radiocast::lb {

/// One virtual round (= two real slots of the restricted execution).
struct ExtractedRound {
  /// Second-layer nodes that transmitted (identical in both sub-slots for
  /// a Lemma-5 adapter; the union otherwise).
  std::vector<NodeId> transmitters;
  /// Did the listening endpoint of either sub-slot hear exactly one
  /// second-layer transmitter?
  RoundOutcome source_view;  ///< what the source heard (sub-slot A)
  RoundOutcome sink_view;    ///< what the sink heard (sub-slot B)
};

struct ExtractedHistory {
  std::vector<ExtractedRound> rounds;
  /// First round whose sink_view is successful (the heard transmitter is
  /// then necessarily in S); kNever-like sentinel if none.
  std::size_t completion_round = static_cast<std::size_t>(-1);

  bool completed() const {
    return completion_round != static_cast<std::size_t>(-1);
  }
};

/// Reads a slot-recorded trace of a restricted execution on `net` and
/// reconstructs the abstract history. Requires the trace to have been
/// recorded with SimOptions::trace_slots = true and to contain an even
/// number of slots (one virtual round per pair).
ExtractedHistory extract_abstract_history(const graph::CnNetwork& net,
                                          const sim::Trace& trace);

}  // namespace radiocast::lb
