#include "radiocast/lb/strategies.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::lb {

// --- ScanSingletonsStrategy -----------------------------------------------

void ScanSingletonsStrategy::reset(std::size_t n) {
  n_ = n;
  next_ = 1;
}

Move ScanSingletonsStrategy::next_move() {
  const NodeId x = next_;
  // Wrap around so the strategy stays well-defined past n moves (the
  // adversary benches run it for more moves than it "should" need).
  next_ = (next_ >= n_) ? 1 : next_ + 1;
  return Move{x};
}

void ScanSingletonsStrategy::observe(const RefereeAnswer& /*answer*/) {}

// --- HalvingStrategy --------------------------------------------------------

void HalvingStrategy::reset(std::size_t n) {
  pool_.clear();
  for (NodeId x = 1; x <= n; ++x) {
    pool_.push_back(x);
  }
  pending_blocks_.clear();
  pending_blocks_.push_back(pool_);
  last_.clear();
}

Move HalvingStrategy::next_move() {
  if (pending_blocks_.empty()) {
    // Everything explored without a hit (possible against the adversary):
    // fall back to rescanning the pool as singletons.
    if (pool_.empty()) {
      pool_.push_back(1);  // degenerate fallback; keeps the game total
    }
    for (const NodeId x : pool_) {
      pending_blocks_.push_back(Move{x});
    }
  }
  last_ = pending_blocks_.back();
  pending_blocks_.pop_back();
  return last_;
}

void HalvingStrategy::observe(const RefereeAnswer& answer) {
  if (answer.kind == RefereeAnswer::Kind::kComplement) {
    // Revealed non-member: prune it everywhere.
    const NodeId x = answer.revealed;
    std::erase(pool_, x);
    for (Move& b : pending_blocks_) {
      std::erase(b, x);
    }
    std::erase(last_, x);
  }
  // Silence on a non-singleton block: split it and try both halves.
  if (last_.size() > 1) {
    const auto half = static_cast<std::ptrdiff_t>(last_.size() / 2);
    Move lo(last_.begin(), last_.begin() + half);
    Move hi(last_.begin() + half, last_.end());
    if (!hi.empty()) {
      pending_blocks_.push_back(std::move(hi));
    }
    if (!lo.empty()) {
      pending_blocks_.push_back(std::move(lo));
    }
  }
}

// --- DoublingWindowStrategy -------------------------------------------------

void DoublingWindowStrategy::reset(std::size_t n) {
  n_ = n;
  width_ = 1;
  start_ = 1;
}

Move DoublingWindowStrategy::next_move() {
  Move m;
  for (std::size_t x = start_; x < start_ + width_ && x <= n_; ++x) {
    m.push_back(static_cast<NodeId>(x));
  }
  start_ += width_;
  if (start_ > n_) {
    start_ = 1;
    width_ = (2 * width_ > n_) ? 1 : 2 * width_;
  }
  if (m.empty()) {
    m.push_back(1);
  }
  return m;
}

void DoublingWindowStrategy::observe(const RefereeAnswer& /*answer*/) {}

// --- RandomSubsetStrategy -----------------------------------------------------

void RandomSubsetStrategy::reset(std::size_t n) {
  rng_ = rng::Rng(seed_);
  pool_.clear();
  for (NodeId x = 1; x <= n; ++x) {
    pool_.push_back(x);
  }
}

Move RandomSubsetStrategy::next_move() {
  RADIOCAST_CHECK_MSG(!pool_.empty(), "pool exhausted");
  // Geometric size: half the moves are singletons, a quarter pairs, ...
  std::size_t size = 1 + rng_.geometric(0.5);
  size = std::min(size, pool_.size());
  Move m;
  std::vector<NodeId> scratch = pool_;
  rng_.shuffle(scratch);
  m.assign(scratch.begin(),
           scratch.begin() + static_cast<std::ptrdiff_t>(size));
  std::ranges::sort(m);
  return m;
}

void RandomSubsetStrategy::observe(const RefereeAnswer& answer) {
  if (answer.kind == RefereeAnswer::Kind::kComplement && pool_.size() > 1) {
    std::erase(pool_, answer.revealed);
  }
}

}  // namespace radiocast::lb
