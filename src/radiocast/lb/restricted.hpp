// Lemma 5, executable (paper §3.2 / Appendix A1).
//
// A *restricted* broadcast protocol never has the source and the sink
// active in the same slot. The lemma constructs, from ANY protocol Π, a
// restricted Π' at a 2x slowdown: virtual slot i of Π becomes real slots
// 2i (sink inactive) and 2i+1 (source inactive); second-layer processors
// repeat their slot-i action in both; a processor that received messages
// in BOTH sub-slots records nothing (on C_n this can only happen to
// members of S, whose two neighbors are exactly the source and the sink —
// and in Π that slot was a collision), otherwise it records the one
// message it got.
//
// RestrictedAdapter wraps an arbitrary sim::Protocol and performs exactly
// this transformation at runtime; the wrapped protocol observes a
// *virtual* clock (ctx.now() halved) and cannot tell the difference: on
// C_n, running the adapted node set for 2t slots reproduces, node for
// node and draw for draw, the plain execution of t slots (tests verify
// this bit-for-bit, including for randomized protocols).
#pragma once

#include <memory>
#include <optional>

#include "radiocast/common/check.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::lb {

/// A node's role in a C_n execution.
enum class CnRole : std::uint8_t { kSource, kSecondLayer, kSink };

class RestrictedAdapter : public sim::Protocol {
 public:
  RestrictedAdapter(std::unique_ptr<sim::Protocol> inner, CnRole role);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return inner_->terminated(); }

  sim::Protocol& inner() noexcept { return *inner_; }
  const sim::Protocol& inner() const noexcept { return *inner_; }

  /// Typed access to the wrapped protocol.
  template <typename P>
  P& inner_as() {
    auto* p = dynamic_cast<P*>(inner_.get());
    RADIOCAST_CHECK_MSG(p != nullptr, "inner protocol type mismatch");
    return *p;
  }
  template <typename P>
  const P& inner_as() const {
    const auto* p = dynamic_cast<const P*>(inner_.get());
    RADIOCAST_CHECK_MSG(p != nullptr, "inner protocol type mismatch");
    return *p;
  }

  /// How many virtual receptions were cancelled by the received-in-both-
  /// sub-slots rule (diagnostics; only S members can ever be affected).
  std::size_t double_receptions() const noexcept {
    return double_receptions_;
  }

 private:
  sim::NodeContext virtual_context(sim::NodeContext& real,
                                   Slot virtual_now) const;
  void flush_pending_reception(sim::NodeContext& real, Slot virtual_now);

  std::unique_ptr<sim::Protocol> inner_;
  CnRole role_;
  sim::Action pending_action_;  ///< inner's action for this virtual slot
  std::optional<sim::Message> got_a_;  ///< received in the source sub-slot
  std::optional<sim::Message> got_b_;  ///< received in the sink sub-slot
  std::size_t double_receptions_ = 0;
};

}  // namespace radiocast::lb
