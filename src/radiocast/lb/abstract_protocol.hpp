// The abstract broadcast model of Definition 4 — the simplified setting the
// lower-bound reduction passes through (real radio protocol -> restricted
// protocol [Lemma 5] -> abstract protocol [Lemma 6] -> hitting-game
// strategy [Lemma 7]).
//
// Rounds: only second-layer processors (1..n) transmit; one of
// {source, sink} listens. Messages are (p, χ_p) where χ_p = [p ∈ S]. A
// round is successful iff the listener hears exactly one transmitter — the
// source hears all of {1..n}, the sink hears only S. All second-layer
// processors share the history of successful rounds. Broadcast completes
// the first time a received message has indicator 1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "radiocast/common/types.hpp"

namespace radiocast::lb {

enum class Receiver : std::uint8_t { kSource, kSink };

/// What the common knowledge records about one round.
struct RoundOutcome {
  bool successful = false;
  NodeId heard = kNoNode;   ///< transmitter whose message got through
  bool indicator = false;   ///< its S-indicator χ

  friend bool operator==(const RoundOutcome&, const RoundOutcome&) = default;
};

using History = std::vector<RoundOutcome>;

class AbstractBroadcastProtocol {
 public:
  virtual ~AbstractBroadcastProtocol() = default;

  /// Called before a run on universe {1..n}.
  virtual void reset(std::size_t /*n*/) {}

  /// The predicate π(p, χ, H): does processor p, whose S-indicator is χ,
  /// transmit in the round following history `h`?
  virtual bool transmits(NodeId p, bool chi, const History& h) const = 0;

  /// Who listens in the round following history `h`.
  virtual Receiver receiver(const History& h) const = 0;

  virtual const char* name() const = 0;

  /// True iff π and receiver() ignore the history. For oblivious protocols
  /// the find_set adversary applies verbatim (its predetermined answers
  /// cannot diverge from the real run).
  virtual bool is_oblivious() const { return false; }
};

struct AbstractRunResult {
  bool completed = false;
  std::size_t rounds = 0;  ///< rounds executed; completion round if completed
  History history;
};

/// Executes `protocol` on the network G_S for at most `max_rounds` rounds.
/// Preconditions: s non-empty, sorted, members in 1..n.
AbstractRunResult run_abstract(AbstractBroadcastProtocol& protocol,
                               std::size_t n, std::span<const NodeId> s,
                               std::size_t max_rounds);

// --- bundled protocols -------------------------------------------------------

/// Oblivious: processor (i mod n) + 1 transmits in round i, the sink
/// listens. Completes exactly at round min(S) — the natural Θ(n)
/// deterministic broadcast on C_n.
class RoundRobinAbstract final : public AbstractBroadcastProtocol {
 public:
  void reset(std::size_t n) override { n_ = n; }
  bool transmits(NodeId p, bool chi, const History& h) const override;
  Receiver receiver(const History& h) const override;
  const char* name() const override { return "round-robin"; }
  bool is_oblivious() const override { return true; }

 private:
  std::size_t n_ = 0;
};

/// Oblivious: cycles over bit-masks — round (2b + v) has every p whose
/// b-th ID bit equals v transmit, sink listening; after all 2*ceil(log n)
/// mask rounds it falls back to round-robin. The "binary splitting" idea
/// that works against *random* S but is destroyed by the adversary.
class BitSplitAbstract final : public AbstractBroadcastProtocol {
 public:
  void reset(std::size_t n) override { n_ = n; }
  bool transmits(NodeId p, bool chi, const History& h) const override;
  Receiver receiver(const History& h) const override;
  const char* name() const override { return "bit-split"; }
  bool is_oblivious() const override { return true; }

 private:
  std::size_t n_ = 0;
};

/// Adaptive: S-members volunteer in halving waves — in wave w each p ∈ S
/// transmits with the sink listening iff p falls in the current window of
/// width n/2^w; successful reveals shrink future windows. Representative of
/// adaptive conflict-resolution attempts.
class AdaptiveSplitAbstract final : public AbstractBroadcastProtocol {
 public:
  void reset(std::size_t n) override { n_ = n; }
  bool transmits(NodeId p, bool chi, const History& h) const override;
  Receiver receiver(const History& h) const override;
  const char* name() const override { return "adaptive-split"; }

 private:
  // Window of IDs allowed to transmit in round h.size(), derived by
  // replaying the history. Incrementally memoized: histories only grow
  // during a run, so consecutive calls replay just the new suffix.
  std::pair<NodeId, NodeId> window(const History& h) const;

  std::size_t n_ = 0;
  mutable std::size_t cached_len_ = 0;
  mutable NodeId cached_lo_ = 1;
  mutable NodeId cached_hi_ = 1;
};

}  // namespace radiocast::lb
