// The executable form of the paper's §3.2–3.3 reduction chain and its
// adversary:
//
//   * foil_strategy        — Lemmas 9+10 against an arbitrary explorer:
//                            collect its moves under the predetermined
//                            answers, build S with find_set, verify by
//                            replay. Succeeds for every t <= n/2.
//   * ProtocolExplorer     — Appendix A3: an abstract broadcast protocol
//                            played as a game explorer (two moves per
//                            round: T_i(1), then T_i(0)), history rebuilt
//                            from the referee's answers via the rule g.
//   * foil_abstract_protocol — the composed adversary for a protocol; the
//                            survival count is exact for oblivious
//                            protocols and empirical for adaptive ones
//                            (see DESIGN.md §4 note 6 for the subtlety).
//   * exhaustive_worst_case — ground truth for small n: max completion
//                            rounds over every non-empty S ⊆ {1..n}.
#pragma once

#include <optional>

#include "radiocast/lb/abstract_protocol.hpp"
#include "radiocast/lb/find_set.hpp"
#include "radiocast/lb/hitting_game.hpp"

namespace radiocast::lb {

struct FoilOutcome {
  std::vector<NodeId> s;          ///< the foiling set produced by find_set
  std::size_t moves_collected = 0;
  bool lemma9_holds = false;      ///< is_foiling_set re-check
  bool replay_consistent = false; ///< replay reproduced the moves, no hit
};

/// Runs the adversary against `strategy` for `t` moves. Returns nullopt
/// only if find_set exhausts the universe, which Lemma 10 rules out for
/// t <= n/2. The strategy must be deterministic across reset() calls
/// (all bundled strategies are).
std::optional<FoilOutcome> foil_strategy(ExplorerStrategy& strategy,
                                         std::size_t n, std::size_t t);

/// Appendix A3's explorer induced by an abstract broadcast protocol.
class ProtocolExplorer final : public ExplorerStrategy {
 public:
  explicit ProtocolExplorer(AbstractBroadcastProtocol& protocol)
      : protocol_(&protocol) {}

  void reset(std::size_t n) override;
  Move next_move() override;
  void observe(const RefereeAnswer& answer) override;
  const char* name() const override { return protocol_->name(); }

 private:
  AbstractBroadcastProtocol* protocol_;
  std::size_t n_ = 0;
  History history_;
  bool expecting_t0_ = false;  ///< next move is T(0) of the current round
  RefereeAnswer t1_answer_;
};

struct ProtocolFoilOutcome {
  std::vector<NodeId> s;
  std::size_t rounds_survived = 0;  ///< actual rounds on G_S before success
  bool completed = false;           ///< did it complete within max_rounds?
};

/// Builds the foiling S from 2t induced game moves, then actually executes
/// the protocol on G_S for up to `max_rounds` rounds.
std::optional<ProtocolFoilOutcome> foil_abstract_protocol(
    AbstractBroadcastProtocol& protocol, std::size_t n, std::size_t t,
    std::size_t max_rounds);

struct WorstCase {
  std::size_t rounds = 0;        ///< worst completion time observed
  std::vector<NodeId> argmax_s;  ///< an S attaining it
  bool all_completed = true;     ///< false if some S never completed
};

/// Exact worst case over all 2^n - 1 hidden sets (n <= 20 enforced).
WorstCase exhaustive_worst_case(AbstractBroadcastProtocol& protocol,
                                std::size_t n, std::size_t max_rounds);

}  // namespace radiocast::lb
