#include "radiocast/lb/reduction.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::lb {

std::optional<FoilOutcome> foil_strategy(ExplorerStrategy& strategy,
                                         std::size_t n, std::size_t t) {
  // Phase 1: collect the move sequence the strategy produces when every
  // answer follows the predetermined rule (silence for non-singletons, the
  // element itself for singletons).
  strategy.reset(n);
  std::vector<Move> moves;
  moves.reserve(t);
  for (std::size_t i = 0; i < t; ++i) {
    Move m = normalize_move(strategy.next_move(), n);
    const RefereeAnswer a = predetermined_answer(m);
    moves.push_back(std::move(m));
    strategy.observe(a);
  }

  // Phase 2: build the foiling set.
  auto s = find_foiling_set(n, moves);
  if (!s.has_value()) {
    return std::nullopt;
  }

  FoilOutcome outcome;
  outcome.s = *s;
  outcome.moves_collected = moves.size();
  outcome.lemma9_holds = is_foiling_set(n, outcome.s, moves);

  // Phase 3: replay against the real referee. Lemma 9 implies the answers
  // match the predetermined ones move for move, so the (deterministic)
  // strategy retraces its steps and never scores a hit.
  const HittingGame game(n, outcome.s);
  strategy.reset(n);
  bool consistent = true;
  for (std::size_t i = 0; i < t && consistent; ++i) {
    const Move m = normalize_move(strategy.next_move(), n);
    if (m != moves[i]) {
      consistent = false;
      break;
    }
    const RefereeAnswer a = game.answer(m);
    if (a.kind == RefereeAnswer::Kind::kHit ||
        a != predetermined_answer(m)) {
      consistent = false;
      break;
    }
    strategy.observe(a);
  }
  outcome.replay_consistent = consistent;
  return outcome;
}

// --- ProtocolExplorer ---------------------------------------------------------

void ProtocolExplorer::reset(std::size_t n) {
  n_ = n;
  history_.clear();
  expecting_t0_ = false;
  protocol_->reset(n);
}

Move ProtocolExplorer::next_move() {
  // Round i of the protocol = game moves 2i-1 and 2i:
  //   T(1) = {p : π(p, 1, H)}   (what the S-members would send)
  //   T(0) = {p : π(p, 0, H)}   (what the non-members would send)
  const bool chi = !expecting_t0_;
  Move m;
  for (NodeId p = 1; p <= n_; ++p) {
    if (protocol_->transmits(p, chi, history_)) {
      m.push_back(p);
    }
  }
  return m;
}

void ProtocolExplorer::observe(const RefereeAnswer& answer) {
  if (!expecting_t0_) {
    t1_answer_ = answer;
    expecting_t0_ = true;
    return;
  }
  expecting_t0_ = false;
  // The rule g: a round registers as successful iff the union of the two
  // revealed sets is a single element p; a complement reveal means χ_p = 0.
  const RefereeAnswer& a = t1_answer_;
  const RefereeAnswer& b = answer;
  const bool a_revealed = a.kind == RefereeAnswer::Kind::kComplement;
  const bool b_revealed = b.kind == RefereeAnswer::Kind::kComplement;
  RoundOutcome outcome;
  if (a_revealed && b_revealed && a.revealed == b.revealed) {
    outcome = RoundOutcome{true, a.revealed, false};
  } else if (a_revealed != b_revealed) {
    outcome = RoundOutcome{true, a_revealed ? a.revealed : b.revealed, false};
  }
  history_.push_back(outcome);
}

std::optional<ProtocolFoilOutcome> foil_abstract_protocol(
    AbstractBroadcastProtocol& protocol, std::size_t n, std::size_t t,
    std::size_t max_rounds) {
  ProtocolExplorer explorer(protocol);
  const auto foil = foil_strategy(explorer, n, 2 * t);
  if (!foil.has_value()) {
    return std::nullopt;
  }
  const AbstractRunResult run =
      run_abstract(protocol, n, foil->s, max_rounds);
  ProtocolFoilOutcome outcome;
  outcome.s = foil->s;
  outcome.rounds_survived = run.completed ? run.rounds - 1 : run.rounds;
  outcome.completed = run.completed;
  return outcome;
}

WorstCase exhaustive_worst_case(AbstractBroadcastProtocol& protocol,
                                std::size_t n, std::size_t max_rounds) {
  RADIOCAST_CHECK_MSG(n >= 1 && n <= 20,
                      "exhaustive sweep limited to n <= 20");
  WorstCase worst;
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    std::vector<NodeId> s;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1U) {
        s.push_back(static_cast<NodeId>(i + 1));
      }
    }
    const AbstractRunResult run = run_abstract(protocol, n, s, max_rounds);
    if (!run.completed) {
      worst.all_completed = false;
      worst.rounds = max_rounds;
      worst.argmax_s = std::move(s);
      continue;
    }
    if (run.rounds > worst.rounds) {
      worst.rounds = run.rounds;
      worst.argmax_s = std::move(s);
    }
  }
  return worst;
}

}  // namespace radiocast::lb
