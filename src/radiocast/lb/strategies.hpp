// A zoo of explorer strategies for the hitting game. None of them (nor any
// other strategy — Proposition 11) can beat the find_set adversary in n/2
// moves; the bundled ones give the benches concrete opponents and exercise
// both oblivious and adaptive behaviour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "radiocast/lb/hitting_game.hpp"
#include "radiocast/rng/rng.hpp"

namespace radiocast::lb {

/// Queries {1}, {2}, ..., {n}. Always wins by move min(S); the canonical
/// O(n) upper bound for the game.
class ScanSingletonsStrategy final : public ExplorerStrategy {
 public:
  void reset(std::size_t n) override;
  Move next_move() override;
  void observe(const RefereeAnswer& answer) override;
  const char* name() const override { return "scan-singletons"; }

 private:
  std::size_t n_ = 0;
  NodeId next_ = 1;
};

/// Adaptive halving, in the spirit of binary-search group testing: keeps a
/// candidate pool (initially {1..n}), queries its first half, and uses
/// complement reveals to prune. When a query goes silent it recurses into
/// smaller blocks; blocks of size one are definitive.
class HalvingStrategy final : public ExplorerStrategy {
 public:
  void reset(std::size_t n) override;
  Move next_move() override;
  void observe(const RefereeAnswer& answer) override;
  const char* name() const override { return "adaptive-halving"; }

 private:
  std::vector<NodeId> pool_;
  std::vector<Move> pending_blocks_;
  Move last_;
};

/// Oblivious sliding windows of doubling width: {1}, {1,2}, {3,4},
/// {1..4}, {5..8}, ... . Exercises find_set on highly structured inputs.
class DoublingWindowStrategy final : public ExplorerStrategy {
 public:
  void reset(std::size_t n) override;
  Move next_move() override;
  void observe(const RefereeAnswer& answer) override;
  const char* name() const override { return "doubling-windows"; }

 private:
  std::size_t n_ = 0;
  std::size_t width_ = 1;
  std::size_t start_ = 1;
};

/// Random subsets with geometrically distributed sizes; adaptive only in
/// that it removes revealed non-members from its sampling pool.
class RandomSubsetStrategy final : public ExplorerStrategy {
 public:
  explicit RandomSubsetStrategy(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  void reset(std::size_t n) override;
  Move next_move() override;
  void observe(const RefereeAnswer& answer) override;
  const char* name() const override { return "random-subsets"; }

 private:
  std::uint64_t seed_;
  rng::Rng rng_;
  std::vector<NodeId> pool_;
};

}  // namespace radiocast::lb
