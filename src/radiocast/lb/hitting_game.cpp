#include "radiocast/lb/hitting_game.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::lb {

Move normalize_move(Move m, std::size_t n) {
  std::ranges::sort(m);
  m.erase(std::unique(m.begin(), m.end()), m.end());
  if (!m.empty()) {
    RADIOCAST_CHECK_MSG(m.front() >= 1 && m.back() <= n,
                        "move element outside the universe {1..n}");
  }
  return m;
}

HittingGame::HittingGame(std::size_t n, std::vector<NodeId> s)
    : n_(n), s_(normalize_move(std::move(s), n)) {
  RADIOCAST_CHECK_MSG(!s_.empty(), "the hidden set S must be non-empty");
}

RefereeAnswer HittingGame::answer(const Move& m) const {
  // Count |M ∩ S| and find the unique members of each intersection lazily.
  std::size_t in_s = 0;
  NodeId in_s_elem = kNoNode;
  for (const NodeId x : m) {
    if (std::ranges::binary_search(s_, x)) {
      ++in_s;
      in_s_elem = x;
      if (in_s > 1) {
        break;
      }
    }
  }
  if (in_s == 1) {
    return RefereeAnswer{RefereeAnswer::Kind::kHit, in_s_elem};
  }
  // |M ∩ S̄| == |M| - |M ∩ S|; recount fully when needed.
  std::size_t member_count = 0;
  NodeId out_elem = kNoNode;
  for (const NodeId x : m) {
    if (std::ranges::binary_search(s_, x)) {
      ++member_count;
    } else {
      out_elem = x;
    }
  }
  if (m.size() - member_count == 1) {
    return RefereeAnswer{RefereeAnswer::Kind::kComplement, out_elem};
  }
  return RefereeAnswer{};
}

GameResult HittingGame::play(ExplorerStrategy& strategy,
                             std::size_t max_moves) const {
  strategy.reset(n_);
  GameResult result;
  while (result.moves < max_moves) {
    const Move m = normalize_move(strategy.next_move(), n_);
    ++result.moves;
    const RefereeAnswer a = answer(m);
    if (a.kind == RefereeAnswer::Kind::kHit) {
      result.won = true;
      result.hit = a.revealed;
      return result;
    }
    strategy.observe(a);
  }
  return result;
}

}  // namespace radiocast::lb
