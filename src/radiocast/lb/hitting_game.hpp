// The n-th hitting game (paper, Definition 5).
//
// Played on a hidden non-empty S ⊆ {1..n}. Each move the explorer names a
// set M:
//   |M ∩ S|  == 1  ->  the referee reveals that element; the game ends
//                      (the explorer "hit" S and won);
//   |M ∩ S̄| == 1  ->  the referee reveals that element; the game goes on;
//   otherwise      ->  the referee says nothing.
//
// Proposition 11 (reproduced by lb::find_foiling_set + bench_lower_bound):
// winning requires more than n/2 moves in the worst case.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "radiocast/common/types.hpp"

namespace radiocast::lb {

/// A move: a subset of {1..n}, kept sorted and duplicate-free.
using Move = std::vector<NodeId>;

/// Normalizes (sorts, dedups) and validates a move against universe size n.
Move normalize_move(Move m, std::size_t n);

struct RefereeAnswer {
  enum class Kind : std::uint8_t {
    kSilent,        ///< neither intersection is a singleton
    kComplement,    ///< |M ∩ S̄| == 1: revealed a non-member; game goes on
    kHit            ///< |M ∩ S| == 1: revealed a member; explorer wins
  };
  Kind kind = Kind::kSilent;
  NodeId revealed = kNoNode;  ///< valid unless kSilent

  friend bool operator==(const RefereeAnswer&, const RefereeAnswer&) =
      default;
};

/// An explorer. Implementations may be adaptive: next_move() may depend on
/// every answer observed so far. Determinism is not required (strategies
/// may carry their own rng), but the library's bundled strategies are
/// deterministic given their construction arguments.
class ExplorerStrategy {
 public:
  virtual ~ExplorerStrategy() = default;

  /// Begins a fresh game on universe {1..n}.
  virtual void reset(std::size_t n) = 0;

  /// The next move. Called once per move, alternating with observe().
  virtual Move next_move() = 0;

  /// Feedback for the move just made. Not called after a kHit (the game is
  /// over).
  virtual void observe(const RefereeAnswer& answer) = 0;

  /// Human-readable name for tables.
  virtual const char* name() const = 0;
};

struct GameResult {
  bool won = false;
  std::size_t moves = 0;      ///< moves made (including the winning one)
  NodeId hit = kNoNode;       ///< the member of S handed over, if won
};

/// The referee: binds a universe size and the hidden set.
class HittingGame {
 public:
  /// Preconditions: S non-empty, sorted will be enforced, members in 1..n.
  HittingGame(std::size_t n, std::vector<NodeId> s);

  /// The referee's answer to `m` — a pure function of (S, m).
  RefereeAnswer answer(const Move& m) const;

  /// Plays `strategy` against this referee for at most `max_moves` moves.
  GameResult play(ExplorerStrategy& strategy, std::size_t max_moves) const;

  std::size_t n() const noexcept { return n_; }
  const std::vector<NodeId>& s() const noexcept { return s_; }

 private:
  std::size_t n_;
  std::vector<NodeId> s_;
};

}  // namespace radiocast::lb
