#include "radiocast/lb/find_set.hpp"

#include <algorithm>
#include <deque>

#include "radiocast/common/check.hpp"

namespace radiocast::lb {

std::optional<std::vector<NodeId>> find_foiling_set(
    std::size_t n, std::span<const Move> moves) {
  RADIOCAST_CHECK_MSG(n >= 1, "need a non-empty universe");

  const std::size_t t = moves.size();
  std::vector<char> in_s(n + 1, 1);
  std::size_t removed = 0;

  // Incremental bookkeeping: |M_i ∩ S| per move, and for every element the
  // moves containing it, so a removal only touches affected moves.
  std::vector<std::size_t> count(t);
  std::vector<char> extra_removed(t, 0);
  std::vector<std::vector<std::size_t>> containing(n + 1);
  for (std::size_t i = 0; i < t; ++i) {
    count[i] = moves[i].size();
    for (const NodeId x : moves[i]) {
      RADIOCAST_CHECK_MSG(x >= 1 && x <= n, "move element out of range");
      containing[x].push_back(i);
    }
  }

  std::deque<std::size_t> worklist;
  for (std::size_t i = 0; i < t; ++i) {
    worklist.push_back(i);
  }

  const auto remove_element = [&](NodeId x) {
    if (in_s[x] == 0) {
      return;
    }
    in_s[x] = 0;
    ++removed;
    for (const std::size_t j : containing[x]) {
      --count[j];
      worklist.push_back(j);
    }
  };

  const auto first_member_in_s = [&](const Move& m) -> NodeId {
    for (const NodeId x : m) {
      if (in_s[x] != 0) {
        return x;
      }
    }
    return kNoNode;
  };

  while (!worklist.empty() && removed < n) {
    const std::size_t i = worklist.front();
    worklist.pop_front();
    const Move& m = moves[i];
    if (count[i] == 1) {
      // Outer rule: |M_i ∩ S| is a singleton — expel it.
      remove_element(first_member_in_s(m));
    } else if (m.size() > 1 && count[i] + 1 == m.size() &&
               extra_removed[i] == 0 && count[i] >= 1) {
      // Inner rule: a non-singleton move just lost its first element to S̄;
      // remove one more so |M_i ∩ S̄| reaches 2 and can never be 1 again.
      extra_removed[i] = 1;
      remove_element(first_member_in_s(m));
    }
  }

  if (removed >= n) {
    return std::nullopt;  // possible only for t > n/2 (Lemma 10)
  }
  std::vector<NodeId> s;
  s.reserve(n - removed);
  for (NodeId x = 1; x <= n; ++x) {
    if (in_s[x] != 0) {
      s.push_back(x);
    }
  }
  return s;
}

bool is_foiling_set(std::size_t n, std::span<const NodeId> s,
                    std::span<const Move> moves) {
  std::vector<char> in_s(n + 1, 0);
  for (const NodeId x : s) {
    RADIOCAST_CHECK_MSG(x >= 1 && x <= n, "set element out of range");
    in_s[x] = 1;
  }
  for (const Move& m : moves) {
    std::size_t inside = 0;
    for (const NodeId x : m) {
      if (in_s[x] != 0) {
        ++inside;
      }
    }
    const std::size_t outside = m.size() - inside;
    if (inside == 1) {
      return false;  // condition (1) violated
    }
    if ((outside == 1) != (m.size() == 1)) {
      return false;  // condition (2) violated
    }
  }
  return true;
}

RefereeAnswer predetermined_answer(const Move& m) {
  if (m.size() == 1) {
    return RefereeAnswer{RefereeAnswer::Kind::kComplement, m.front()};
  }
  return RefereeAnswer{};
}

}  // namespace radiocast::lb
