// The paper's adversary procedure find_set (§3.3).
//
// Given a sequence of moves M_1..M_t, constructs a non-empty S ⊆ {1..n}
// that "foils" them:
//   Lemma 9 : for every i, M_i ∩ S is not a singleton, and M_i ∩ S̄ is a
//             singleton iff M_i itself is a singleton;
//   Lemma 10: whenever t <= n/2 the procedure outputs a non-empty S.
//
// Under such an S the referee's answers are determined by the moves alone
// (silence for every non-singleton move, the element itself for every
// singleton move), so the explorer learns nothing — which is exactly why
// the construction also defeats adaptive strategies: collect their moves
// while feeding them those predetermined answers, then build S.
//
// Construction: start from S = {1..n}; while some |M_i ∩ S| == 1 remove
// that element; whenever a non-singleton move first loses an element to S̄,
// remove one more of its elements (pushing |M_i ∩ S̄| to 2). Each singleton
// move is charged one removal and each non-singleton at most two, hence at
// most 2t - 1 < n removals for t <= n/2.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "radiocast/lb/hitting_game.hpp"

namespace radiocast::lb {

/// Runs find_set. Returns the foiling set, or nullopt if the procedure
/// exhausted {1..n} (possible only when moves.size() > n/2).
/// Precondition: each move is normalized (sorted, unique, members in 1..n).
std::optional<std::vector<NodeId>> find_foiling_set(
    std::size_t n, std::span<const Move> moves);

/// Checks the two Lemma-9 conditions of `s` against `moves`:
///   (1) no M_i ∩ S is a singleton;
///   (2) M_i ∩ S̄ is a singleton iff M_i is a singleton.
bool is_foiling_set(std::size_t n, std::span<const NodeId> s,
                    std::span<const Move> moves);

/// The predetermined referee answer a foiling set induces for `m`
/// (Lemma 9): silence unless `m` is a singleton, in which case its element
/// is revealed as a non-member.
RefereeAnswer predetermined_answer(const Move& m);

}  // namespace radiocast::lb
