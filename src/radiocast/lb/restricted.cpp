#include "radiocast/lb/restricted.hpp"

#include <utility>

namespace radiocast::lb {

RestrictedAdapter::RestrictedAdapter(std::unique_ptr<sim::Protocol> inner,
                                     CnRole role)
    : inner_(std::move(inner)), role_(role) {
  RADIOCAST_CHECK_MSG(inner_ != nullptr, "inner protocol must not be null");
}

sim::NodeContext RestrictedAdapter::virtual_context(sim::NodeContext& real,
                                                    Slot virtual_now) const {
  return sim::NodeContext(real.id(), virtual_now, real.rng(),
                          real.neighbors_out(), real.neighbors_in(),
                          real.collision_detection());
}

void RestrictedAdapter::on_start(sim::NodeContext& ctx) {
  sim::NodeContext vctx = virtual_context(ctx, 0);
  inner_->on_start(vctx);
}

void RestrictedAdapter::flush_pending_reception(sim::NodeContext& real,
                                                Slot virtual_now) {
  // Lemma 5's merge rule: both sub-slots -> record nothing (in the plain
  // execution that slot was a source+sink collision); exactly one -> that
  // message; none -> nothing.
  if (got_a_.has_value() && got_b_.has_value()) {
    ++double_receptions_;
  } else if (got_a_.has_value() || got_b_.has_value()) {
    sim::NodeContext vctx = virtual_context(real, virtual_now);
    inner_->on_receive(vctx, got_a_.has_value() ? *got_a_ : *got_b_);
  }
  got_a_.reset();
  got_b_.reset();
}

sim::Action RestrictedAdapter::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  const Slot vnow = now / 2;
  if (now % 2 == 0) {
    // Start of a virtual slot: deliver the previous slot's merged
    // reception (this mirrors the plain schedule, where on_receive of
    // slot i-1 precedes on_slot of slot i), then ask the inner protocol
    // for its action once.
    if (vnow > 0) {
      flush_pending_reception(ctx, vnow - 1);
    }
    sim::NodeContext vctx = virtual_context(ctx, vnow);
    pending_action_ = inner_->on_slot(vctx);
    // Sub-slot A: the sink is inactive.
    if (role_ == CnRole::kSink) {
      return sim::Action::idle();
    }
    return pending_action_;
  }
  // Sub-slot B: the source is inactive; everyone else repeats the action.
  if (role_ == CnRole::kSource) {
    return sim::Action::idle();
  }
  return pending_action_;
}

void RestrictedAdapter::on_receive(sim::NodeContext& ctx,
                                   const sim::Message& m) {
  if (ctx.now() % 2 == 0) {
    got_a_ = m;
  } else {
    got_b_ = m;
  }
}

}  // namespace radiocast::lb
