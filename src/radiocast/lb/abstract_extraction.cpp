#include "radiocast/lb/abstract_extraction.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::lb {

namespace {

/// Second-layer members of `transmitters` (sorted in, sorted out).
std::vector<NodeId> second_layer_only(const std::vector<NodeId>& transmitters,
                                      const graph::CnNetwork& net) {
  std::vector<NodeId> out;
  for (const NodeId v : transmitters) {
    if (v != net.source && v != net.sink) {
      out.push_back(v);
    }
  }
  return out;
}

/// What `listener` heard in this sub-slot, as an abstract RoundOutcome:
/// successful iff exactly one of its in-neighbors transmitted, in which
/// case the transmitter and its S-indicator are recorded.
RoundOutcome endpoint_view(const sim::SlotRecord& record,
                           const graph::CnNetwork& net, NodeId listener) {
  std::size_t audible = 0;
  NodeId heard = kNoNode;
  for (const NodeId u : record.transmitters) {
    if (u == listener) {
      return RoundOutcome{};  // it was transmitting, not listening
    }
    if (net.g.has_arc(u, listener)) {
      ++audible;
      heard = u;
    }
  }
  if (audible != 1) {
    return RoundOutcome{};
  }
  const bool indicator = std::ranges::binary_search(net.s, heard);
  return RoundOutcome{true, heard, indicator};
}

}  // namespace

ExtractedHistory extract_abstract_history(const graph::CnNetwork& net,
                                          const sim::Trace& trace) {
  RADIOCAST_CHECK_MSG(trace.records_slots(),
                      "extraction needs a slot-recorded trace");
  const auto& slots = trace.slots();
  RADIOCAST_CHECK_MSG(slots.size() % 2 == 0,
                      "restricted executions pair slots two per round");

  ExtractedHistory history;
  for (std::size_t i = 0; i + 1 < slots.size(); i += 2) {
    const sim::SlotRecord& sub_a = slots[i];      // sink inactive
    const sim::SlotRecord& sub_b = slots[i + 1];  // source inactive
    RADIOCAST_CHECK_MSG(
        !std::ranges::binary_search(sub_a.transmitters, net.sink),
        "sink transmitted in a source sub-slot: not a restricted run");
    RADIOCAST_CHECK_MSG(
        !std::ranges::binary_search(sub_b.transmitters, net.source),
        "source transmitted in a sink sub-slot: not a restricted run");

    ExtractedRound round;
    // The second-layer transmitter set (identical across sub-slots under
    // the Lemma-5 construction; take the union to stay total).
    round.transmitters = second_layer_only(sub_a.transmitters, net);
    for (const NodeId v : second_layer_only(sub_b.transmitters, net)) {
      if (!std::ranges::binary_search(round.transmitters, v)) {
        round.transmitters.insert(
            std::ranges::lower_bound(round.transmitters, v), v);
      }
    }
    round.source_view = endpoint_view(sub_a, net, net.source);
    round.sink_view = endpoint_view(sub_b, net, net.sink);
    if (round.sink_view.successful && !history.completed()) {
      // Anything the sink hears comes from S: completion (Definition 4(5)).
      RADIOCAST_DCHECK(round.sink_view.indicator);
      history.completion_round = history.rounds.size();
    }
    history.rounds.push_back(std::move(round));
  }
  return history;
}

}  // namespace radiocast::lb
