#include "radiocast/fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "radiocast/common/check.hpp"
#include "radiocast/obs/metrics.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/rng/salts.hpp"

namespace radiocast::fault {

namespace {

// Domain-separation salts for the counter-based draws live in the central
// registry (rng/salts.hpp); the aliases keep the draw sites short.
using rng::kSaltBernoulli;
using rng::kSaltGeLoss;
using rng::kSaltGeState;
using rng::kSaltJam;
/// rng stream id for the crash-schedule compiler.
constexpr std::uint64_t kCrashStream = 0xC4A5'0001ULL;

std::uint64_t link_key(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

void check_probability(double p, const char* what) {
  RADIOCAST_CHECK_MSG(p >= 0.0 && p <= 1.0, what);
}

}  // namespace

void validate_fault_config(const FaultConfig& config) {
  switch (config.loss.kind) {
    case LossModel::Kind::kNone:
      break;
    case LossModel::Kind::kBernoulli:
      check_probability(config.loss.p, "Bernoulli loss p must be in [0,1]");
      break;
    case LossModel::Kind::kGilbertElliott: {
      const GilbertElliott& ge = config.loss.gilbert;
      check_probability(ge.p_good_to_bad, "GE p_good_to_bad in [0,1]");
      check_probability(ge.p_bad_to_good, "GE p_bad_to_good in [0,1]");
      check_probability(ge.loss_good, "GE loss_good in [0,1]");
      check_probability(ge.loss_bad, "GE loss_bad in [0,1]");
      break;
    }
  }
  for (const JammerSpec& spec : config.jammers) {
    if (spec.kind == JammerSpec::Kind::kOblivious) {
      check_probability(spec.probability,
                        "oblivious jammer probability in [0,1]");
    }
  }
}

CrashScheduleCounts compile_crash_schedule(
    const FaultConfig& config, std::size_t node_count,
    std::vector<sim::TopologyEvent>& out) {
  // Node choice, crash slots and downtimes come from a dedicated rng
  // substream of the fault seed, so the schedule is a pure function of
  // (config, node_count).
  CrashScheduleCounts counts;
  const CrashSpec& cs = config.crashes;
  if (!cs.any()) {
    return counts;
  }
  RADIOCAST_CHECK_MSG(cs.fraction <= 1.0, "crash fraction in [0,1]");
  RADIOCAST_CHECK_MSG(cs.min_downtime <= cs.max_downtime ||
                          cs.max_downtime == 0,
                      "crash min_downtime must not exceed max_downtime");
  std::vector<char> immune(node_count, 0);
  for (const NodeId v : cs.immune) {
    RADIOCAST_CHECK_MSG(v < node_count, "immune node id out of range");
    immune[v] = 1;
  }
  std::vector<NodeId> eligible;
  eligible.reserve(node_count);
  for (NodeId v = 0; v < node_count; ++v) {
    if (immune[v] == 0) {
      eligible.push_back(v);
    }
  }
  rng::Rng r(config.seed, kCrashStream);
  r.shuffle(eligible);
  const auto victims = std::min(
      eligible.size(),
      static_cast<std::size_t>(
          cs.fraction * static_cast<double>(eligible.size()) + 0.5));
  for (std::size_t i = 0; i < victims; ++i) {
    const NodeId v = eligible[i];
    const Slot at = 1 + r.uniform(cs.window);
    out.push_back({at, sim::EventKind::kCrashNode, v, kNoNode});
    ++counts.crashes;
    if (cs.max_downtime > 0) {
      const Slot down =
          cs.min_downtime + r.uniform(cs.max_downtime - cs.min_downtime + 1);
      out.push_back({at + down, sim::EventKind::kRecoverNode, v, kNoNode});
      ++counts.recoveries;
    }
  }
  return counts;
}

void publish_fault_counters(const FaultPlan::Counters& c) {
  auto& registry = obs::metrics();
  const std::uint64_t total = c.jammed_slots | c.jammed_deliveries |
                              c.dropped_deliveries | c.crashed_node_slots |
                              c.crash_events | c.recover_events;
  if (!registry.enabled() || total == 0) {
    return;
  }
  registry.counter("fault.jammed_slots").add(c.jammed_slots);
  registry.counter("fault.jammed_deliveries").add(c.jammed_deliveries);
  registry.counter("fault.dropped_deliveries").add(c.dropped_deliveries);
  registry.counter("fault.crashed_node_slots").add(c.crashed_node_slots);
  registry.counter("fault.crash_events").add(c.crash_events);
  registry.counter("fault.recover_events").add(c.recover_events);
}

FaultPlan::FaultPlan(FaultConfig config, std::size_t node_count)
    : config_(std::move(config)),
      draws_(config_.seed),
      node_count_(node_count) {
  // Validate the declarative parts once, here, so every later decision
  // can assume a well-formed config.
  validate_fault_config(config_);
  jammers_.reserve(config_.jammers.size());
  for (const JammerSpec& spec : config_.jammers) {
    jammers_.push_back(JammerState{spec, spec.budget});
  }

  const CrashScheduleCounts crash_counts =
      compile_crash_schedule(config_, node_count_, events_);
  counters_.crash_events += crash_counts.crashes;
  counters_.recover_events += crash_counts.recoveries;
  for (const sim::TopologyEvent& e : config_.extra_events) {
    events_.push_back(e);
    if (e.kind == sim::EventKind::kCrashNode) {
      ++counters_.crash_events;
    } else if (e.kind == sim::EventKind::kRecoverNode ||
               e.kind == sim::EventKind::kReviveNode) {
      ++counters_.recover_events;
    }
  }
}

FaultPlan::~FaultPlan() { publish_fault_counters(counters_); }

std::vector<sim::TopologyEvent> FaultPlan::scheduled_events() {
  return events_;
}

void FaultPlan::begin_slot(Slot now, std::size_t dead_nodes) {
  counters_.crashed_node_slots += dead_nodes;
  slot_jammed_ = false;
  reactive_armed_ = false;
  for (std::size_t i = 0; i < jammers_.size(); ++i) {
    JammerState& j = jammers_[i];
    if (j.remaining == 0) {
      continue;
    }
    bool active = false;
    switch (j.spec.kind) {
      case JammerSpec::Kind::kOblivious:
        active = draws_.unit(kSaltJam, i, now) < j.spec.probability;
        break;
      case JammerSpec::Kind::kPeriodic:
        active = j.spec.period > 0 &&
                 now % j.spec.period == j.spec.phase % j.spec.period;
        break;
      case JammerSpec::Kind::kReactive:
        // Decides lazily, at the first would-be delivery of the slot.
        reactive_armed_ = true;
        continue;
    }
    if (active) {
      // Every jammer that fires spends budget, even when the slot is
      // already noise — a jammer cannot observe its peers.
      if (j.remaining != kUnlimitedBudget) {
        --j.remaining;
      }
      slot_jammed_ = true;
    }
  }
  if (slot_jammed_) {
    ++counters_.jammed_slots;
  }
}

bool FaultPlan::loss_drops(Slot now, NodeId u, NodeId v) {
  switch (config_.loss.kind) {
    case LossModel::Kind::kNone:
      return false;
    case LossModel::Kind::kBernoulli:
      return draws_.unit(kSaltBernoulli, link_key(u, v), now) < config_.loss.p;
    case LossModel::Kind::kGilbertElliott:
      break;
  }
  // Gilbert–Elliott: sample the chain state at `now` conditioned on the
  // state at the link's previous use, via the closed-form k-step
  // transition probability of the 2-state chain —
  //   P(bad at t+k | state at t) = pi_bad + (delta_bad - pi_bad) * lambda^k
  // with lambda = 1 - p_gb - p_bg and pi_bad = p_gb / (p_gb + p_bg).
  // Advancing only on use keeps per-delivery cost O(1) regardless of how
  // long the link sat idle.
  const GilbertElliott& ge = config_.loss.gilbert;
  LinkState& link = links_[link_key(u, v)];
  const double denom = ge.p_good_to_bad + ge.p_bad_to_good;
  const double pi_bad = denom > 0.0 ? ge.p_good_to_bad / denom : 0.0;
  double p_bad = pi_bad;  // unseen link: stationary start
  if (link.seen) {
    const double lambda = 1.0 - denom;
    const double delta = link.bad ? 1.0 : 0.0;
    const auto k = static_cast<double>(now - link.last);
    p_bad = pi_bad + (delta - pi_bad) * std::pow(lambda, k);
  }
  link.bad = draws_.unit(kSaltGeState, link_key(u, v), now) < p_bad;
  link.last = now;
  link.seen = true;
  const double loss = link.bad ? ge.loss_bad : ge.loss_good;
  return draws_.unit(kSaltGeLoss, link_key(u, v), now) < loss;
}

sim::DeliveryFate FaultPlan::on_delivery(Slot now, NodeId u, NodeId v) {
  if (!slot_jammed_ && reactive_armed_) {
    // First would-be delivery of the slot: this is exactly the signal a
    // channel-sensing jammer reacts to ("a slot where exactly one
    // neighbor transmits"). One reactive jammer spends one budget unit
    // and the whole slot becomes noise; its peers keep their budgets.
    for (JammerState& j : jammers_) {
      if (j.spec.kind == JammerSpec::Kind::kReactive && j.remaining > 0) {
        if (j.remaining != kUnlimitedBudget) {
          --j.remaining;
        }
        slot_jammed_ = true;
        ++counters_.jammed_slots;
        break;
      }
    }
    reactive_armed_ = false;
  }
  if (slot_jammed_) {
    ++counters_.jammed_deliveries;
    return sim::DeliveryFate::kJam;
  }
  if (loss_drops(now, u, v)) {
    ++counters_.dropped_deliveries;
    return sim::DeliveryFate::kDrop;
  }
  return sim::DeliveryFate::kDeliver;
}

std::uint64_t FaultPlan::remaining_budget(std::size_t i) const {
  RADIOCAST_CHECK_MSG(i < jammers_.size(), "jammer index out of range");
  return jammers_[i].remaining;
}

}  // namespace radiocast::fault
