#include "radiocast/fault/lane_plan.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "radiocast/common/check.hpp"
#include "radiocast/rng/salts.hpp"

namespace radiocast::fault {

using sim::batch::kAllLanes;
using sim::batch::kLanes;
using sim::batch::lane_prefix;
using sim::batch::LaneMask;

namespace {

// Domain-separation salts for the lane-family draws live in the central
// registry (rng/salts.hpp) — distinct from FaultPlan's link-keyed salts
// because the lane family keys loss on the receiver, not the link; a
// separate determinism contract, shared by LaneFaultPlan/LaneFaultReplay.
using rng::kSaltLaneGeLoss;
using rng::kSaltLaneGeState;
using rng::kSaltLaneJam;
using rng::kSaltLaneLoss;

/// P(bad at now | chain observed `gap` slots ago), the closed-form k-step
/// transition of the 2-state chain — the same arithmetic, in the same
/// order, as FaultPlan::loss_drops, and shared by the lane plan and its
/// scalar replay so both compute bit-identical doubles.
double ge_p_bad(const GilbertElliott& ge, bool seen, bool bad, Slot gap) {
  const double denom = ge.p_good_to_bad + ge.p_bad_to_good;
  const double pi_bad = denom > 0.0 ? ge.p_good_to_bad / denom : 0.0;
  if (!seen) {
    return pi_bad;  // unseen receiver: stationary start
  }
  const double lambda = 1.0 - denom;
  const double delta = bad ? 1.0 : 0.0;
  return pi_bad + (delta - pi_bad) * std::pow(lambda, static_cast<double>(gap));
}

}  // namespace

bool lane_fault_supported(const FaultConfig& config) {
  return config.extra_events.empty();
}

LaneFaultPlan::LaneFaultPlan(const FaultConfig& config,
                             std::size_t node_count,
                             std::uint64_t first_block, std::size_t width,
                             std::size_t trial_count)
    : config_(config),
      draws_(config.seed),
      node_count_(node_count),
      first_block_(first_block),
      width_(width) {
  RADIOCAST_CHECK_MSG(lane_fault_supported(config_),
                      "scripted topology events cannot run as lane masks");
  RADIOCAST_CHECK_MSG(sim::batch::lane_width_supported(width),
                      "unsupported lane width");
  RADIOCAST_CHECK_MSG(trial_count <= kLanes * width,
                      "trial count exceeds the block row");
  validate_fault_config(config_);

  valid_.assign(width, 0);
  for (std::size_t w = 0; w < width; ++w) {
    const std::size_t begin = w * kLanes;
    if (trial_count > begin) {
      valid_[w] = lane_prefix(trial_count - begin);
    }
  }
  slot_jam_.assign(width, 0);

  // Crash planes: each trial's schedule comes from compile_crash_schedule
  // at the classic per-trial seed, then flattens to (node, word, bit).
  any_crashes_ = config_.crashes.any();
  if (any_crashes_) {
    alive_.assign(node_count * width, kAllLanes);
    std::vector<sim::TopologyEvent> trial_events;
    for (std::size_t t = 0; t < trial_count; ++t) {
      const std::uint64_t global_trial = first_block * kLanes + t;
      trial_events.clear();
      const FaultConfig per_trial =
          config_.with_seed(rng::mix64(config_.seed ^ global_trial));
      const CrashScheduleCounts counts =
          compile_crash_schedule(per_trial, node_count, trial_events);
      counters_.crash_events += counts.crashes;
      counters_.recover_events += counts.recoveries;
      const auto word = static_cast<std::uint32_t>(t / kLanes);
      const LaneMask bit = LaneMask{1} << (t % kLanes);
      for (const sim::TopologyEvent& e : trial_events) {
        events_.push_back(
            {e.at, e.u, word, bit, e.kind == sim::EventKind::kCrashNode});
      }
    }
    // stable: a same-slot crash+recover pair of one trial keeps its
    // crash-before-recover order, exactly like the scalar event queue.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const LaneEvent& a, const LaneEvent& b) {
                       return a.at < b.at;
                     });
  }

  jammers_.reserve(config_.jammers.size());
  for (const JammerSpec& spec : config_.jammers) {
    JammerState j;
    j.spec = spec;
    if (spec.kind == JammerSpec::Kind::kOblivious) {
      j.coin = rng::SlicedBernoulli(spec.probability);
    } else if (spec.kind == JammerSpec::Kind::kReactive) {
      any_reactive_ = true;
    }
    if (spec.budget == kUnlimitedBudget) {
      j.has_budget.assign(width, kAllLanes);
    } else {
      j.has_budget.assign(width, spec.budget > 0 ? kAllLanes : 0);
      j.remaining.assign(width * kLanes, spec.budget);
    }
    jammers_.push_back(std::move(j));
  }

  switch (config_.loss.kind) {
    case LossModel::Kind::kNone:
      break;
    case LossModel::Kind::kBernoulli:
      bern_ = rng::SlicedBernoulli(config_.loss.p);
      loss_chain_.assign(width, 0);
      break;
    case LossModel::Kind::kGilbertElliott:
      ge_bad_.assign(node_count * width, 0);
      ge_seen_.assign(node_count * width, 0);
      ge_last_.assign(node_count * width * kLanes, 0);
      break;
  }
}

LaneFaultPlan::~LaneFaultPlan() { publish_fault_counters(counters_); }

void LaneFaultPlan::begin_slot(Slot now) {
  while (next_event_ < events_.size() && events_[next_event_].at <= now) {
    const LaneEvent& e = events_[next_event_++];
    LaneMask& a = alive_[std::size_t{e.node} * width_ + e.word];
    if (e.crash) {
      if ((a & e.bit) != 0) {
        a &= ~e.bit;
        ++dead_lanes_;
      }
    } else if ((a & e.bit) == 0) {
      a |= e.bit;
      --dead_lanes_;
    }
  }
  counters_.crashed_node_slots += dead_lanes_;

  for (std::size_t w = 0; w < width_; ++w) {
    slot_jam_[w] = 0;
  }
  for (std::size_t i = 0; i < jammers_.size(); ++i) {
    JammerState& j = jammers_[i];
    switch (j.spec.kind) {
      case JammerSpec::Kind::kOblivious:
        for (std::size_t w = 0; w < width_; ++w) {
          // Every firing lane spends budget, even when its slot is
          // already noise — a jammer cannot observe its peers.
          const LaneMask fire =
              j.coin.mask(draws_, kSaltLaneJam, i, first_block_ + w, now) &
              valid_[w] & j.has_budget[w];
          if (fire != 0) {
            spend_budget(j, w, fire);
            slot_jam_[w] |= fire;
          }
        }
        break;
      case JammerSpec::Kind::kPeriodic:
        if (j.spec.period > 0 &&
            now % j.spec.period == j.spec.phase % j.spec.period) {
          for (std::size_t w = 0; w < width_; ++w) {
            const LaneMask fire = valid_[w] & j.has_budget[w];
            if (fire != 0) {
              spend_budget(j, w, fire);
              slot_jam_[w] |= fire;
            }
          }
        }
        break;
      case JammerSpec::Kind::kReactive:
        // Decides lazily, per lane, in resolve_jam.
        break;
    }
  }
  std::uint64_t jammed = 0;
  for (std::size_t w = 0; w < width_; ++w) {
    jammed += static_cast<std::uint64_t>(std::popcount(slot_jam_[w]));
  }
  counters_.jammed_slots += jammed;

  if (config_.loss.kind == LossModel::Kind::kBernoulli) {
    // Hoist the (salt, block, slot) chain once per word; deliver_mask
    // then finishes each receiver's draw from it.
    for (std::size_t w = 0; w < width_; ++w) {
      loss_chain_[w] = draws_.word(kSaltLaneLoss, first_block_ + w, now);
    }
  }
}

std::span<const LaneMask> LaneFaultPlan::alive() const {
  if (!any_crashes_) {
    return {};
  }
  return alive_;
}

void LaneFaultPlan::spend_budget(JammerState& j, std::size_t word,
                                 LaneMask fired) {
  if (j.remaining.empty()) {
    return;  // unlimited budget
  }
  for (LaneMask rest = fired; rest != 0; rest &= rest - 1) {
    const auto lane = static_cast<std::size_t>(std::countr_zero(rest));
    std::uint64_t& rem = j.remaining[word * kLanes + lane];
    if (--rem == 0) {
      j.has_budget[word] &= ~(LaneMask{1} << lane);
    }
  }
}

void LaneFaultPlan::resolve_jam(Slot /*now*/,
                                std::span<const LaneMask> candidates) {
  if (!any_reactive_) {
    return;
  }
  for (std::size_t w = 0; w < width_; ++w) {
    // A lane about to carry a delivery, not already noise: the signal a
    // channel-sensing jammer reacts to. Per lane, the first reactive
    // jammer with budget spends one unit; its peers keep theirs.
    LaneMask want = candidates[w] & valid_[w] & ~slot_jam_[w];
    if (want == 0) {
      continue;
    }
    for (JammerState& j : jammers_) {
      if (j.spec.kind != JammerSpec::Kind::kReactive) {
        continue;
      }
      const LaneMask fire = want & j.has_budget[w];
      if (fire != 0) {
        spend_budget(j, w, fire);
        slot_jam_[w] |= fire;
        counters_.jammed_slots +=
            static_cast<std::uint64_t>(std::popcount(fire));
        want &= ~fire;
        if (want == 0) {
          break;
        }
      }
    }
  }
}

LaneMask LaneFaultPlan::ge_drop_mask(Slot now, NodeId v, std::size_t word,
                                     LaneMask live) {
  const GilbertElliott& ge = config_.loss.gilbert;
  const std::size_t elem = std::size_t{v} * width_ + word;
  LaneMask bad_bits = ge_bad_[elem];
  LaneMask seen_bits = ge_seen_[elem];
  LaneMask drop = 0;
  const std::uint64_t trial0 = (first_block_ + word) * kLanes;
  // Chains advance only for lanes actually delivering to v this slot —
  // the same "advance on use" rule as the scalar engines, per lane.
  for (LaneMask rest = live; rest != 0; rest &= rest - 1) {
    const auto lane = static_cast<std::size_t>(std::countr_zero(rest));
    const LaneMask bit = LaneMask{1} << lane;
    Slot& last = ge_last_[elem * kLanes + lane];
    const double p_bad = ge_p_bad(ge, (seen_bits & bit) != 0,
                                  (bad_bits & bit) != 0, now - last);
    const std::uint64_t trial = trial0 + lane;
    const bool now_bad =
        draws_.unit(kSaltLaneGeState, trial, now, v) < p_bad;
    bad_bits = now_bad ? (bad_bits | bit) : (bad_bits & ~bit);
    seen_bits |= bit;
    last = now;
    const double loss = now_bad ? ge.loss_bad : ge.loss_good;
    if (draws_.unit(kSaltLaneGeLoss, trial, now, v) < loss) {
      drop |= bit;
    }
  }
  ge_bad_[elem] = bad_bits;
  ge_seen_[elem] = seen_bits;
  return drop;
}

LaneMask LaneFaultPlan::deliver_mask(Slot now, NodeId v, std::size_t word,
                                     LaneMask candidates) {
  const LaneMask jammed = candidates & slot_jam_[word];
  counters_.jammed_deliveries +=
      static_cast<std::uint64_t>(std::popcount(jammed));
  const LaneMask live = candidates & ~jammed;
  if (live == 0) {
    return 0;
  }
  LaneMask drop = 0;
  switch (config_.loss.kind) {
    case LossModel::Kind::kNone:
      break;
    case LossModel::Kind::kBernoulli:
      drop = live & bern_.mask_from(loss_chain_[word], v);
      break;
    case LossModel::Kind::kGilbertElliott:
      drop = ge_drop_mask(now, v, word, live);
      break;
  }
  counters_.dropped_deliveries +=
      static_cast<std::uint64_t>(std::popcount(drop));
  return live & ~drop;
}

LaneFaultReplay::LaneFaultReplay(const FaultConfig& config,
                                 std::size_t node_count, std::uint64_t trial)
    : config_(config),
      draws_(config.seed),
      trial_(trial),
      block_(trial / kLanes),
      lane_(trial % kLanes) {
  RADIOCAST_CHECK_MSG(lane_fault_supported(config_),
                      "scripted topology events cannot run as lane masks");
  validate_fault_config(config_);
  if (config_.crashes.any()) {
    const FaultConfig per_trial =
        config_.with_seed(rng::mix64(config_.seed ^ trial));
    const CrashScheduleCounts counts =
        compile_crash_schedule(per_trial, node_count, events_);
    counters_.crash_events += counts.crashes;
    counters_.recover_events += counts.recoveries;
  }
  jammers_.reserve(config_.jammers.size());
  for (const JammerSpec& spec : config_.jammers) {
    JammerState j;
    j.spec = spec;
    if (spec.kind == JammerSpec::Kind::kOblivious) {
      j.coin = rng::SlicedBernoulli(spec.probability);
    }
    j.remaining = spec.budget;
    jammers_.push_back(j);
  }
  switch (config_.loss.kind) {
    case LossModel::Kind::kNone:
      break;
    case LossModel::Kind::kBernoulli:
      bern_ = rng::SlicedBernoulli(config_.loss.p);
      break;
    case LossModel::Kind::kGilbertElliott:
      ge_.assign(node_count, {});
      break;
  }
}

LaneFaultReplay::~LaneFaultReplay() { publish_fault_counters(counters_); }

std::vector<sim::TopologyEvent> LaneFaultReplay::scheduled_events() {
  return events_;
}

void LaneFaultReplay::begin_slot(Slot now, std::size_t dead_nodes) {
  counters_.crashed_node_slots += dead_nodes;
  slot_jammed_ = false;
  reactive_armed_ = false;
  for (std::size_t i = 0; i < jammers_.size(); ++i) {
    JammerState& j = jammers_[i];
    if (j.remaining == 0) {
      continue;
    }
    bool active = false;
    switch (j.spec.kind) {
      case JammerSpec::Kind::kOblivious:
        // Bit `lane` of the exact mask LaneFaultPlan applies in bulk.
        active = ((j.coin.mask(draws_, kSaltLaneJam, i, block_, now) >>
                   lane_) &
                  1U) != 0;
        break;
      case JammerSpec::Kind::kPeriodic:
        active = j.spec.period > 0 &&
                 now % j.spec.period == j.spec.phase % j.spec.period;
        break;
      case JammerSpec::Kind::kReactive:
        reactive_armed_ = true;
        continue;
    }
    if (active) {
      if (j.remaining != kUnlimitedBudget) {
        --j.remaining;
      }
      slot_jammed_ = true;
    }
  }
  if (slot_jammed_) {
    ++counters_.jammed_slots;
  }
}

bool LaneFaultReplay::loss_drops(Slot now, NodeId v) {
  switch (config_.loss.kind) {
    case LossModel::Kind::kNone:
      return false;
    case LossModel::Kind::kBernoulli:
      return ((bern_.mask(draws_, kSaltLaneLoss, block_, now, v) >> lane_) &
              1U) != 0;
    case LossModel::Kind::kGilbertElliott:
      break;
  }
  const GilbertElliott& ge = config_.loss.gilbert;
  ReceiverState& r = ge_[v];
  const double p_bad = ge_p_bad(ge, r.seen, r.bad, now - r.last);
  r.bad = draws_.unit(kSaltLaneGeState, trial_, now, v) < p_bad;
  r.last = now;
  r.seen = true;
  const double loss = r.bad ? ge.loss_bad : ge.loss_good;
  return draws_.unit(kSaltLaneGeLoss, trial_, now, v) < loss;
}

sim::DeliveryFate LaneFaultReplay::on_delivery(Slot now, NodeId /*u*/,
                                               NodeId v) {
  if (!slot_jammed_ && reactive_armed_) {
    for (JammerState& j : jammers_) {
      if (j.spec.kind == JammerSpec::Kind::kReactive && j.remaining > 0) {
        if (j.remaining != kUnlimitedBudget) {
          --j.remaining;
        }
        slot_jammed_ = true;
        ++counters_.jammed_slots;
        break;
      }
    }
    reactive_armed_ = false;
  }
  if (slot_jammed_) {
    ++counters_.jammed_deliveries;
    return sim::DeliveryFate::kJam;
  }
  if (loss_drops(now, v)) {
    ++counters_.dropped_deliveries;
    return sim::DeliveryFate::kDrop;
  }
  return sim::DeliveryFate::kDeliver;
}

}  // namespace radiocast::fault
