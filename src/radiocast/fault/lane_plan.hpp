// Lane-parallel fault plans for the batched trial engine.
//
// A FaultPlan executes one trial's faults against one scalar Simulator; a
// LaneFaultPlan executes 64·width trials' faults against one
// BatchSimulator, as per-slot lane masks:
//
//   crash planes  — each trial's crash/recover schedule is compiled by
//                   the SAME compile_crash_schedule the classic engine
//                   uses, at the SAME per-trial seed
//                   mix64(config.seed ^ trial), then flattened into
//                   per-(node, word) alive bitmasks applied by the
//                   engine. Counter-RNG crash semantics: an interrupted
//                   Decay run aborts (see proto/broadcast_batch.hpp).
//   jammer planes — oblivious jammers draw one bit-sliced Bernoulli mask
//                   per (jammer, word, slot); periodic jammers fire on
//                   the shared clock; reactive jammers fire per lane on
//                   "some delivery is about to happen", each with
//                   per-lane budgets. Jam beats loss, as in FaultPlan.
//   loss masks    — Bernoulli loss is one bit-sliced mask per (word,
//                   slot, receiver); Gilbert–Elliott advances one lazy
//                   chain per (receiver, lane) with per-lane scalar
//                   draws.
//
// Model note (documented in docs/FAULTS.md): the classic engine keys loss
// on the directed *link* (sender, receiver); the lane family keys it on
// the *receiver* only. The two are distributionally identical for every
// delivery decision — a receiver hears at most one exactly-one delivery
// per slot, so no slot ever consumes two draws for the same receiver —
// but the trajectories differ, so the lane family is its own determinism
// contract, shared bit-for-bit by LaneFaultPlan and LaneFaultReplay.
//
// LaneFaultReplay is the scalar half of that contract: a sim::FaultHook
// that replays exactly one global trial by extracting bit `lane` of the
// very same counter-keyed masks (and the same per-trial crash schedule).
// harness::run_bgi_broadcast_trials installs it on the scalar counter-RNG
// path, and tests/test_batch.cpp holds the two implementations equal.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/fault/config.hpp"
#include "radiocast/fault/plan.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/rng/sliced_bernoulli.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"
#include "radiocast/sim/fault_hook.hpp"

namespace radiocast::fault {

/// True when the batched engine can execute `config` as lane masks:
/// everything except scripted extra_events, which may rewire edges — the
/// lane engine's topology is immutable (crash "removal" is a liveness
/// plane, not a topology change).
bool lane_fault_supported(const FaultConfig& config);

class LaneFaultPlan final : public sim::batch::BatchFaultHook {
 public:
  /// Compiles `config` for trials [first_block * 64,
  /// first_block * 64 + trial_count) of a `node_count`-node batch run
  /// with `width` words per block row (trial_count <= 64 * width).
  /// Lanes beyond trial_count stay alive and un-jammed forever.
  LaneFaultPlan(const FaultConfig& config, std::size_t node_count,
                std::uint64_t first_block, std::size_t width,
                std::size_t trial_count);

  /// Publishes fault.* counters into obs::metrics() when enabled. Note
  /// the lane counters aggregate over the whole block's run (lanes that
  /// retire early keep being counted in crashed_node_slots/jammed_slots
  /// until the block finishes), so totals are per-block observations, not
  /// exact sums of per-trial scalar runs.
  ~LaneFaultPlan() override;
  LaneFaultPlan(const LaneFaultPlan&) = delete;
  LaneFaultPlan& operator=(const LaneFaultPlan&) = delete;

  // --- sim::batch::BatchFaultHook ---------------------------------------
  void begin_slot(Slot now) override;
  std::span<const sim::batch::LaneMask> alive() const override;
  void resolve_jam(Slot now,
                   std::span<const sim::batch::LaneMask> candidates) override;
  sim::batch::LaneMask deliver_mask(Slot now, NodeId v, std::size_t word,
                                    sim::batch::LaneMask candidates) override;

  const FaultPlan::Counters& counters() const noexcept { return counters_; }
  const FaultConfig& config() const noexcept { return config_; }

 private:
  /// One compiled crash/recover event, flattened to its lane.
  struct LaneEvent {
    Slot at;
    NodeId node;
    std::uint32_t word;
    sim::batch::LaneMask bit;
    bool crash;
  };
  struct JammerState {
    JammerSpec spec;
    rng::SlicedBernoulli coin;  ///< oblivious firing draw
    /// Lanes with budget left, per word (all-ones when unlimited).
    std::vector<sim::batch::LaneMask> has_budget;
    /// Per-lane remaining budget; empty when unlimited.
    std::vector<std::uint64_t> remaining;
  };

  void spend_budget(JammerState& j, std::size_t word,
                    sim::batch::LaneMask fired);
  sim::batch::LaneMask ge_drop_mask(Slot now, NodeId v, std::size_t word,
                                    sim::batch::LaneMask live);

  FaultConfig config_;
  rng::CounterRng draws_;  ///< keyed on config.seed (the base fault seed)
  std::size_t node_count_;
  std::uint64_t first_block_;
  std::size_t width_;

  std::vector<LaneEvent> events_;  ///< time-sorted, applied by cursor
  std::size_t next_event_ = 0;
  std::vector<sim::batch::LaneMask> alive_;  ///< node-major, n * width
  std::uint64_t dead_lanes_ = 0;
  bool any_crashes_ = false;

  std::vector<JammerState> jammers_;
  bool any_reactive_ = false;
  std::vector<sim::batch::LaneMask> valid_;     ///< trial_count prefix
  std::vector<sim::batch::LaneMask> slot_jam_;  ///< per word, this slot

  rng::SlicedBernoulli bern_;                   ///< Bernoulli loss
  std::vector<std::uint64_t> loss_chain_;      ///< per-word hoisted key
  std::vector<sim::batch::LaneMask> ge_bad_;   ///< per (node, word)
  std::vector<sim::batch::LaneMask> ge_seen_;  ///< per (node, word)
  std::vector<Slot> ge_last_;                  ///< per (node, word, lane)

  FaultPlan::Counters counters_;
};

/// The scalar replay of one lane of a LaneFaultPlan: trial `trial` is
/// block trial/64, lane trial%64, and every decision extracts bit lane of
/// the same counter-keyed construction the lane plan applies in bulk —
/// plus the identical per-trial crash schedule, delivered through
/// scheduled_events() like any sim::FaultHook.
class LaneFaultReplay final : public sim::FaultHook {
 public:
  LaneFaultReplay(const FaultConfig& config, std::size_t node_count,
                  std::uint64_t trial);

  /// Publishes fault.* counters into obs::metrics() when enabled.
  ~LaneFaultReplay() override;
  LaneFaultReplay(const LaneFaultReplay&) = delete;
  LaneFaultReplay& operator=(const LaneFaultReplay&) = delete;

  // --- sim::FaultHook ---------------------------------------------------
  void begin_slot(Slot now, std::size_t dead_nodes) override;
  sim::DeliveryFate on_delivery(Slot now, NodeId u, NodeId v) override;
  std::vector<sim::TopologyEvent> scheduled_events() override;

  const FaultPlan::Counters& counters() const noexcept { return counters_; }

 private:
  struct JammerState {
    JammerSpec spec;
    rng::SlicedBernoulli coin;
    std::uint64_t remaining = kUnlimitedBudget;
  };
  /// Lazily-advanced Gilbert–Elliott chain for one receiver.
  struct ReceiverState {
    Slot last = 0;
    bool bad = false;
    bool seen = false;
  };

  bool loss_drops(Slot now, NodeId v);

  FaultConfig config_;
  rng::CounterRng draws_;  ///< keyed on config.seed (the base fault seed)
  std::uint64_t trial_;
  std::uint64_t block_;
  std::size_t lane_;
  std::vector<sim::TopologyEvent> events_;
  std::vector<JammerState> jammers_;
  rng::SlicedBernoulli bern_;
  std::vector<ReceiverState> ge_;
  bool slot_jammed_ = false;
  bool reactive_armed_ = false;
  FaultPlan::Counters counters_;
};

}  // namespace radiocast::fault
