// Fault & channel-impairment configuration (the *what*).
//
// A FaultConfig is a declarative description of every impairment a run
// should suffer: fail-stop crashes with optional recovery, per-link
// probabilistic loss (i.i.d. Bernoulli or Gilbert–Elliott bursty), and
// jammer adversaries. It is cheap to copy and carries its own seed, so a
// Monte-Carlo harness derives one config per trial (`with_seed`) exactly
// like it derives per-trial simulation seeds — which is what keeps fault
// outcomes bit-identical at any worker-thread count.
//
// The paper connection (see docs/FAULTS.md for the full mapping): §2.2
// property 3 allows topology change mid-run and BGI's Decay is oblivious
// to it; crashes + loss probe exactly that robustness claim, and jammers
// model the adversarial-noise arguments of the collision-detection
// literature (Ghaffari–Haeupler–Khabbazian; Newport's jamming-style lower
// bounds).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/sim/events.hpp"

namespace radiocast::fault {

/// Jammer budgets use this to mean "no limit".
inline constexpr std::uint64_t kUnlimitedBudget =
    std::numeric_limits<std::uint64_t>::max();

/// Two-state bursty-loss channel (Gilbert–Elliott): a hidden good/bad
/// state per link, flipping with the given per-slot probabilities, and a
/// state-dependent loss probability per delivery. The classic model for
/// fading links where losses cluster instead of arriving i.i.d.
struct GilbertElliott {
  double p_good_to_bad = 0.0;  ///< per-slot P(good -> bad)
  double p_bad_to_good = 1.0;  ///< per-slot P(bad -> good)
  double loss_good = 0.0;      ///< P(drop delivery | link good)
  double loss_bad = 1.0;       ///< P(drop delivery | link bad)

  friend bool operator==(const GilbertElliott&,
                         const GilbertElliott&) = default;
};

/// Per-link loss applied at delivery time (only a message that would have
/// been received — exactly one transmitting in-neighbor — can be lost;
/// collisions are already noise).
struct LossModel {
  enum class Kind : std::uint8_t { kNone, kBernoulli, kGilbertElliott };

  Kind kind = Kind::kNone;
  double p = 0.0;          ///< Bernoulli: i.i.d. P(drop) per delivery
  GilbertElliott gilbert;  ///< Gilbert–Elliott parameters

  static LossModel none() { return {}; }
  static LossModel bernoulli(double p) {
    return {Kind::kBernoulli, p, {}};
  }
  static LossModel gilbert_elliott(const GilbertElliott& ge) {
    return {Kind::kGilbertElliott, 0.0, ge};
  }

  bool any() const noexcept { return kind != Kind::kNone; }

  friend bool operator==(const LossModel&, const LossModel&) = default;
};

/// One jammer adversary. Jamming is channel-wide: in a jammed slot every
/// would-be delivery becomes noise (a collision from the receivers' point
/// of view). Every kind can be budget-limited (total slots it may jam).
struct JammerSpec {
  enum class Kind : std::uint8_t {
    kOblivious,  ///< jams each slot independently with `probability`
    kPeriodic,   ///< jams slots where now % period == phase
    kReactive    ///< senses the channel: jams a slot iff some receiver
                 ///< would otherwise hear exactly one transmitter
  };

  Kind kind = Kind::kOblivious;
  double probability = 0.0;  ///< oblivious only
  Slot period = 0;           ///< periodic only (0 = never)
  Slot phase = 0;            ///< periodic only
  std::uint64_t budget = kUnlimitedBudget;  ///< max slots jammed, total

  static JammerSpec oblivious(double probability,
                              std::uint64_t budget = kUnlimitedBudget) {
    JammerSpec j;
    j.kind = Kind::kOblivious;
    j.probability = probability;
    j.budget = budget;
    return j;
  }
  static JammerSpec periodic(Slot period, Slot phase = 0,
                             std::uint64_t budget = kUnlimitedBudget) {
    JammerSpec j;
    j.kind = Kind::kPeriodic;
    j.period = period;
    j.phase = phase;
    j.budget = budget;
    return j;
  }
  static JammerSpec reactive(std::uint64_t budget) {
    JammerSpec j;
    j.kind = Kind::kReactive;
    j.budget = budget;
    return j;
  }

  friend bool operator==(const JammerSpec&, const JammerSpec&) = default;
};

/// Seed-derived fail-stop crash (and optional recovery) schedule. A
/// `fraction` of the non-immune nodes crash once each, at a slot drawn
/// uniformly from [1, window] (slot 0 always runs clean so on_start
/// semantics stay trivial); with max_downtime > 0 each crashed node
/// recovers after a downtime drawn uniformly from
/// [min_downtime, max_downtime]. State is preserved across the outage
/// (fail-stop, not fail-reset).
struct CrashSpec {
  double fraction = 0.0;
  Slot window = 0;
  Slot min_downtime = 0;
  Slot max_downtime = 0;  ///< 0 = crashed nodes never recover
  /// Nodes exempt from random crashes (e.g. the broadcast source, without
  /// which every trial trivially fails).
  std::vector<NodeId> immune;

  bool any() const noexcept { return fraction > 0.0 && window > 0; }

  friend bool operator==(const CrashSpec&, const CrashSpec&) = default;
};

/// The full impairment description for one run. Everything the compiled
/// FaultPlan does is a deterministic function of this struct (including
/// `seed`) plus the node count — see fault/plan.hpp.
struct FaultConfig {
  /// Fault randomness stream, deliberately separate from the simulation
  /// seed so "same protocol randomness, different faults" (and vice
  /// versa) experiments are expressible.
  std::uint64_t seed = 0;
  LossModel loss;
  std::vector<JammerSpec> jammers;
  CrashSpec crashes;
  /// Extra scripted topology events injected verbatim (on top of the
  /// compiled crash/recover schedule).
  std::vector<sim::TopologyEvent> extra_events;

  bool any() const noexcept {
    return loss.any() || !jammers.empty() || crashes.any() ||
           !extra_events.empty();
  }

  /// Copy with the seed replaced — the per-trial derivation helper:
  /// `config.with_seed(rng::mix64(fault_seed ^ trial))`.
  FaultConfig with_seed(std::uint64_t s) const {
    FaultConfig c = *this;
    c.seed = s;
    return c;
  }

  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

}  // namespace radiocast::fault
