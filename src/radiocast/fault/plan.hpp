// FaultPlan — a FaultConfig compiled against one simulation (the *how*).
//
// Compilation happens once, at construction: the crash/recover schedule
// is drawn and frozen into a TopologyEvent list, jammer budgets are
// materialized, and loss state is set up. The per-slot hooks then stay
// branch-cheap: slot-level jamming is resolved once per slot, and every
// per-delivery random decision is a *counter-based* draw — a pure hash of
// (plan seed, link, slot) — so outcomes never depend on scheduling or
// thread count, only on the config. The one stateful piece, the
// Gilbert–Elliott per-link chain, advances only when a link is used, in
// the simulator's deterministic increasing-receiver-id delivery order.
//
// One FaultPlan serves exactly one Simulator (it is stateful: budgets,
// link states, counters). Monte-Carlo harnesses build one per trial from
// `config.with_seed(f(fault_seed, trial))`, which is what the
// thread-count-invariance guarantee rests on (docs/PARALLELISM.md rules).
//
// Like sim::Trace, a dying plan publishes its counters into the global
// obs::metrics() registry (fault.jammed_slots, fault.dropped_deliveries,
// fault.jammed_deliveries, fault.crashed_node_slots, fault.crash_events,
// fault.recover_events) — once, at end of life, only when the registry is
// enabled, so record-emitting runs see whole-run fault totals for free.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "radiocast/fault/config.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/sim/fault_hook.hpp"

namespace radiocast::fault {

class FaultPlan final : public sim::FaultHook {
 public:
  /// Compiles `config` for a `node_count`-node simulation. Throws
  /// ContractViolation on out-of-range probabilities/fractions or crash
  /// schedules referencing nodes >= node_count.
  FaultPlan(FaultConfig config, std::size_t node_count);

  /// Publishes the counters below into obs::metrics() when enabled.
  ~FaultPlan() override;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // --- sim::FaultHook -----------------------------------------------------
  void begin_slot(Slot now, std::size_t dead_nodes) override;
  sim::DeliveryFate on_delivery(Slot now, NodeId u, NodeId v) override;
  std::vector<sim::TopologyEvent> scheduled_events() override;

  // --- observation --------------------------------------------------------
  struct Counters {
    std::uint64_t jammed_slots = 0;       ///< slots with an active jammer
    std::uint64_t jammed_deliveries = 0;  ///< deliveries turned into noise
    std::uint64_t dropped_deliveries = 0; ///< deliveries lost (erasure)
    std::uint64_t crashed_node_slots = 0; ///< sum over slots of dead nodes
    std::uint64_t crash_events = 0;       ///< kCrashNode events compiled
    std::uint64_t recover_events = 0;     ///< kRecoverNode events compiled

    friend bool operator==(const Counters&, const Counters&) = default;
  };
  const Counters& counters() const noexcept { return counters_; }

  /// The compiled crash/recover (+ extra) schedule, time-ordered per node.
  const std::vector<sim::TopologyEvent>& events() const noexcept {
    return events_;
  }

  /// Remaining jam budget of jammer `i` (kUnlimitedBudget if unlimited).
  std::uint64_t remaining_budget(std::size_t i) const;

  const FaultConfig& config() const noexcept { return config_; }

 private:
  struct JammerState {
    JammerSpec spec;
    std::uint64_t remaining = kUnlimitedBudget;
  };
  /// Lazily-advanced Gilbert–Elliott chain for one directed link.
  struct LinkState {
    Slot last = 0;
    bool bad = false;
    bool seen = false;
  };

  bool loss_drops(Slot now, NodeId u, NodeId v);

  FaultConfig config_;
  /// Counter-based draws keyed on the plan seed (rng::CounterRng): pure
  /// functions of the salts, so draw order is irrelevant.
  rng::CounterRng draws_;
  std::size_t node_count_ = 0;
  std::vector<sim::TopologyEvent> events_;
  std::vector<JammerState> jammers_;
  // Keyed lookup only — nothing ever iterates this map (audited: every
  // access is links_[link_key(u, v)]), and each chain advances in the
  // simulator's deterministic increasing-receiver-id delivery order, so
  // bucket order cannot leak into any result.
  // RADIOCAST_LINT_OK(R3): lookup-only map, never iterated; per-link state
  std::unordered_map<std::uint64_t, LinkState> links_;
  bool slot_jammed_ = false;     ///< an oblivious/periodic jammer fired
  bool reactive_armed_ = false;  ///< a reactive jammer has budget this slot
  Counters counters_;
};

/// Throws ContractViolation when `config`'s declarative probabilities are
/// out of range (loss model and jammer specs; crash bounds are validated
/// by compile_crash_schedule). Shared by FaultPlan and the batched
/// LaneFaultPlan so both reject exactly the same configs.
void validate_fault_config(const FaultConfig& config);

struct CrashScheduleCounts {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
};

/// Compiles `config.crashes` (the CrashSpec only — not extra_events) into
/// crash/recover TopologyEvents appended to `out`, a pure function of
/// (config.seed, node_count). Extracted from FaultPlan's constructor so
/// the batched lane plans (fault/lane_plan.hpp) draw the *same* schedule
/// for the same per-trial seed as the classic engine — crash trajectories
/// stay comparable across engines.
CrashScheduleCounts compile_crash_schedule(
    const FaultConfig& config, std::size_t node_count,
    std::vector<sim::TopologyEvent>& out);

/// Publishes `c` into obs::metrics() under the fault.* counter names
/// (no-op when the registry is disabled or all counters are zero). Called
/// by every fault hook's destructor — FaultPlan and the lane variants.
void publish_fault_counters(const FaultPlan::Counters& c);

}  // namespace radiocast::fault
