// Executes a precomputed centralized schedule on the radio simulator: the
// "trivial protocol using the schedule" half of the paper's observation
// that its distributed protocol = (distributed schedule finding) +
// (trivial execution). Pairing this with sched::greedy_cover_schedule
// gives the centralized comparison point of §1.3.
#pragma once

#include <optional>
#include <vector>

#include "radiocast/sched/schedule.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::sched {

class ScheduledBroadcast : public sim::Protocol {
 public:
  /// `self`'s view of `schedule`. The source passes the payload; everyone
  /// else waits to receive it. If the schedule is valid, a node is always
  /// informed by the time its first transmit slot arrives; if not, the
  /// node stays silent at that slot and records the violation.
  ScheduledBroadcast(const BroadcastSchedule& schedule, NodeId self,
                     std::optional<sim::Message> payload);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return done_; }

  bool informed() const noexcept { return message_.has_value(); }
  Slot informed_at() const noexcept { return informed_at_; }

  /// True iff a transmit slot arrived while this node was uninformed —
  /// evidence the schedule was invalid for this topology.
  bool schedule_violation() const noexcept { return violation_; }

 private:
  std::vector<Slot> my_slots_;  ///< sorted slots where `self` transmits
  Slot horizon_;
  std::optional<sim::Message> message_;
  Slot informed_at_ = kNever;
  std::size_t next_ = 0;  ///< index into my_slots_
  bool violation_ = false;
  bool done_ = false;
};

}  // namespace radiocast::sched
