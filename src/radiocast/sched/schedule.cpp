#include "radiocast/sched/schedule.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"
#include "radiocast/graph/algorithms.hpp"

namespace radiocast::sched {

ScheduleCheck verify_schedule(const graph::Graph& g, NodeId source,
                              const BroadcastSchedule& schedule) {
  const std::size_t n = g.node_count();
  RADIOCAST_CHECK_MSG(source < n, "source out of range");
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  std::size_t informed_count = 1;

  ScheduleCheck check;
  std::vector<char> transmitting(n, 0);
  std::vector<std::uint32_t> hears(n, 0);
  for (std::size_t t = 0; t < schedule.slots.size(); ++t) {
    const auto& txs = schedule.slots[t];
    std::fill(transmitting.begin(), transmitting.end(), 0);
    for (const NodeId u : txs) {
      RADIOCAST_CHECK_MSG(u < n, "scheduled node out of range");
      if (informed[u] == 0) {
        return check;  // invalid: transmitting before holding the message
      }
      transmitting[u] = 1;
    }
    std::fill(hears.begin(), hears.end(), 0);
    for (const NodeId u : txs) {
      ++check.transmissions;
      for (const NodeId v : g.out_neighbors(u)) {
        ++hears[v];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (transmitting[v] == 0 && hears[v] == 1 && informed[v] == 0) {
        informed[v] = 1;
        ++informed_count;
        if (informed_count == n && check.completion_slot == kNever) {
          check.completion_slot = t;
        }
      }
    }
  }
  check.valid = informed_count == n;
  return check;
}

namespace {

/// Nodes of `layer` that hear exactly one member of `t` (their count in
/// `hear`), where `hear` is maintained incrementally by the caller.
std::size_t covered_count(const std::vector<NodeId>& layer,
                          const std::vector<std::uint32_t>& hear,
                          const std::vector<char>& still_uncovered) {
  std::size_t covered = 0;
  for (const NodeId v : layer) {
    if (still_uncovered[v] != 0 && hear[v] == 1) {
      ++covered;
    }
  }
  return covered;
}

}  // namespace

BroadcastSchedule greedy_cover_schedule(const graph::Graph& g,
                                        NodeId source) {
  const std::size_t n = g.node_count();
  const auto dist = graph::bfs_distances(g, source);
  graph::Dist depth = 0;
  for (const auto d : dist) {
    RADIOCAST_CHECK_MSG(d != graph::kUnreachable,
                        "broadcast schedule needs a reachable graph");
    depth = std::max(depth, d);
  }

  std::vector<std::vector<NodeId>> layers(depth + 1);
  for (NodeId v = 0; v < n; ++v) {
    layers[dist[v]].push_back(v);
  }

  BroadcastSchedule schedule;
  std::vector<char> uncovered(n, 0);
  std::vector<std::uint32_t> hear(n, 0);
  for (graph::Dist layer = 1; layer <= depth; ++layer) {
    const auto& targets = layers[layer];
    const auto& senders = layers[layer - 1];
    std::size_t remaining = targets.size();
    for (const NodeId v : targets) {
      uncovered[v] = 1;
    }
    while (remaining > 0) {
      // Build one slot: greedily add previous-layer transmitters while the
      // exactly-one coverage of the remaining targets improves.
      std::vector<NodeId> slot;
      std::vector<char> in_slot(n, 0);
      std::fill(hear.begin(), hear.end(), 0);
      std::size_t best_cover = 0;
      for (;;) {
        NodeId best = kNoNode;
        std::size_t best_gain_cover = best_cover;
        for (const NodeId u : senders) {
          if (in_slot[u] != 0) {
            continue;
          }
          // Tentatively add u.
          for (const NodeId v : g.out_neighbors(u)) {
            ++hear[v];
          }
          const std::size_t c = covered_count(targets, hear, uncovered);
          if (c > best_gain_cover) {
            best_gain_cover = c;
            best = u;
          }
          for (const NodeId v : g.out_neighbors(u)) {
            --hear[v];
          }
        }
        if (best == kNoNode) {
          break;
        }
        in_slot[best] = 1;
        slot.push_back(best);
        best_cover = best_gain_cover;
        for (const NodeId v : g.out_neighbors(best)) {
          ++hear[v];
        }
      }
      RADIOCAST_CHECK_MSG(!slot.empty(),
                          "greedy slot made no progress (disconnected?)");
      // Commit: mark the exactly-one hearers covered.
      for (const NodeId v : targets) {
        if (uncovered[v] != 0 && hear[v] == 1) {
          uncovered[v] = 0;
          --remaining;
        }
      }
      std::ranges::sort(slot);
      schedule.slots.push_back(std::move(slot));
    }
  }
  return schedule;
}

BroadcastSchedule naive_schedule(const graph::Graph& g, NodeId source) {
  const std::size_t n = g.node_count();
  const auto dist = graph::bfs_distances(g, source);
  graph::Dist depth = 0;
  for (const auto d : dist) {
    RADIOCAST_CHECK_MSG(d != graph::kUnreachable,
                        "broadcast schedule needs a reachable graph");
    depth = std::max(depth, d);
  }
  std::vector<std::vector<NodeId>> layers(depth + 1);
  for (NodeId v = 0; v < n; ++v) {
    layers[dist[v]].push_back(v);
  }
  BroadcastSchedule schedule;
  std::vector<char> covered(n, 0);
  covered[source] = 1;
  for (graph::Dist layer = 1; layer <= depth; ++layer) {
    for (const NodeId u : layers[layer - 1]) {
      bool useful = false;
      for (const NodeId v : g.out_neighbors(u)) {
        if (dist[v] == layer && covered[v] == 0) {
          useful = true;
          covered[v] = 1;
        }
      }
      if (useful) {
        schedule.slots.push_back({u});
      }
    }
  }
  return schedule;
}

}  // namespace radiocast::sched
