#include "radiocast/sched/scheduled_broadcast.hpp"

#include <algorithm>
#include <utility>

namespace radiocast::sched {

ScheduledBroadcast::ScheduledBroadcast(const BroadcastSchedule& schedule,
                                       NodeId self,
                                       std::optional<sim::Message> payload)
    : horizon_(schedule.slots.size()), message_(std::move(payload)) {
  if (message_.has_value()) {
    informed_at_ = 0;
  }
  for (Slot t = 0; t < schedule.slots.size(); ++t) {
    if (std::ranges::binary_search(schedule.slots[t], self)) {
      my_slots_.push_back(t);
    }
  }
}

sim::Action ScheduledBroadcast::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  if (now >= horizon_) {
    done_ = true;
    return sim::Action::receive();
  }
  if (next_ < my_slots_.size() && my_slots_[next_] == now) {
    ++next_;
    if (!informed()) {
      violation_ = true;  // scheduled to speak without holding the message
      return sim::Action::receive();
    }
    return sim::Action::transmit(*message_);
  }
  return sim::Action::receive();
}

void ScheduledBroadcast::on_receive(sim::NodeContext& ctx,
                                    const sim::Message& m) {
  if (!informed()) {
    message_ = m;
    informed_at_ = ctx.now();
  }
}

}  // namespace radiocast::sched
