// Centralized broadcast schedules (paper §1.3, related work).
//
// Chlamtac & Kutten [CK85] showed computing an optimal schedule is
// NP-hard; Chlamtac & Weinstein [CW87] gave a centralized polynomial
// algorithm producing O(D log^2 n)-slot schedules. This module provides
// the schedule abstraction, an exact validity checker against the radio
// semantics, a CW-style greedy scheduler, and the naive one-transmitter-
// per-slot baseline — the comparison point the paper contrasts its
// distributed protocol with.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/graph/graph.hpp"

namespace radiocast::sched {

/// slots[t] = the set of nodes scheduled to transmit in slot t (sorted).
struct BroadcastSchedule {
  std::vector<std::vector<NodeId>> slots;

  std::size_t length() const noexcept { return slots.size(); }
};

struct ScheduleCheck {
  bool valid = false;           ///< informs every node, transmitters informed
  Slot completion_slot = kNever;  ///< slot after which all nodes hold m
  std::size_t transmissions = 0;
};

/// Replays `schedule` on `g` under the exact radio semantics (a node
/// receives in slot t iff exactly one in-neighbor transmits then) and
/// checks that (a) only already-informed nodes are ever scheduled, and
/// (b) every node is informed by the end.
ScheduleCheck verify_schedule(const graph::Graph& g, NodeId source,
                              const BroadcastSchedule& schedule);

/// CW87-spirit greedy scheduler: processes BFS layers in order; for each
/// layer boundary, repeatedly builds a transmitter set by greedily adding
/// informed previous-layer nodes while the number of next-layer nodes that
/// hear *exactly one* transmitter grows; emits the slot, marks the covered
/// nodes, and repeats until the layer is covered. Produces valid schedules
/// of length O(D log^2 n) in practice (each greedy slot covers a constant
/// fraction of what remains).
BroadcastSchedule greedy_cover_schedule(const graph::Graph& g,
                                        NodeId source);

/// The trivial baseline: one informed transmitter per slot, layer by
/// layer (every second-layer node gets its own slot). Always valid;
/// length <= n - 1. This is the schedule-world analogue of the paper's
/// DFS 2n upper bound.
BroadcastSchedule naive_schedule(const graph::Graph& g, NodeId source);

}  // namespace radiocast::sched
