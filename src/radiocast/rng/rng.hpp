// Deterministic, portable pseudo-random number generation.
//
// radiocast never uses std::mt19937 / std::uniform_* because their streams
// are implementation-defined in places and slow to seed per node. Instead we
// ship splitmix64 (for seeding) and xoshiro256** (for generation), both with
// fixed, documented output sequences, so simulation results are reproducible
// bit-for-bit across compilers and platforms.
//
// Sub-streams: every node in a simulation gets its own statistically
// independent stream derived from (master seed, stream id). This makes the
// results independent of the order in which the simulator polls nodes.
#pragma once

#include <array>
#include <cstdint>

#include "radiocast/common/check.hpp"

namespace radiocast::rng {

/// One step of the splitmix64 generator (Steele, Lea & Flood). Used for
/// seed expansion; also a decent 64-bit mixer/hash. Inline because the
/// counter-based generator (counter_rng.hpp) invokes it per draw on the
/// batched simulator's hot path.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31U);
}

/// Stateless mix: the output of splitmix64 after advancing from `x` once.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return splitmix64(x);
}

/// xoshiro256** 1.0 (Blackman & Vigna): fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64 expansion.
  explicit Xoshiro256(std::uint64_t seed = 0) noexcept;

  /// Seeds from (seed, stream): distinct streams are independent for all
  /// practical purposes. Used to give each node its own generator.
  Xoshiro256(std::uint64_t seed, std::uint64_t stream) noexcept;

  /// Next 64 uniformly random bits.
  result_type next() noexcept;

  result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Advances the stream by 2^128 steps; yields a non-overlapping substream.
  void jump() noexcept;

  /// The raw 256-bit state (for tests of reproducibility).
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Convenience wrapper bundling a Xoshiro256 with the distributions the
/// simulator needs. All methods are O(1) and allocation-free.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) noexcept : gen_(seed) {}
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept : gen_(seed, stream) {}

  /// Uniform in [0, bound). Precondition: bound > 0. Unbiased (rejection).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// A fair coin (probability exactly 1/2) using one fresh random bit.
  /// This is the coin of the paper's Decay procedure.
  bool fair_coin() noexcept;

  /// Geometric: number of failures before the first success with success
  /// probability p in (0, 1]. Mean (1-p)/p.
  std::uint64_t geometric(double p);

  /// Fisher-Yates shuffle of [first, last) indices stored in a container
  /// supporting operator[] and size().
  template <typename Container>
  void shuffle(Container& c) {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  Xoshiro256& generator() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
};

}  // namespace radiocast::rng
