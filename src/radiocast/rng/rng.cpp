#include "radiocast/rng/rng.hpp"

#include <cmath>

namespace radiocast::rng {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept : state_{} {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Xoshiro256::Xoshiro256(std::uint64_t seed, std::uint64_t stream) noexcept
    : Xoshiro256(mix64(mix64(seed) ^ mix64(stream ^ 0xD1B54A32D192ED03ULL))) {
  // The (seed, stream) pair is collapsed into a fresh 64-bit seed through
  // nonlinear splitmix mixing and then expanded into the full state.
  // Deliberately NOT implemented by XOR-perturbing a common state:
  // xoshiro's transition is linear over GF(2), so states x^P1 and x^P2
  // would stay correlated forever and per-node coin flips in one
  // simulation would not be independent.
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17U;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (std::uint64_t{1} << bit)) != 0) {
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] ^= state_[i];
        }
      }
      (void)next();
    }
  }
  state_ = acc;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  RADIOCAST_CHECK_MSG(bound > 0, "uniform bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = gen_.next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  RADIOCAST_CHECK_MSG(lo <= hi, "uniform_range requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_.next());
  }
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  // Top 53 bits -> double in [0,1).
  return static_cast<double>(gen_.next() >> 11U) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

bool Rng::fair_coin() noexcept { return (gen_.next() >> 63U) != 0; }

std::uint64_t Rng::geometric(double p) {
  RADIOCAST_CHECK_MSG(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
  if (p == 1.0) {
    return 0;
  }
  // Inversion: floor(log(U) / log(1-p)).
  const double u = 1.0 - uniform01();  // in (0,1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace radiocast::rng
