// The central CounterRng salt registry — every stream domain in one place.
//
// Salts are the domain separators of the counter-keyed RNG
// (counter_rng.hpp): two subsystems sharing a seed stay independent only
// because their salts differ, so the full set of salts IS the inventory
// of randomness streams this reproduction draws from. Scattering the
// constants across subsystems made that inventory invisible — a new
// protocol could collide with the fault layer and only the R4 duplicate
// scan would notice, after the fact. Centralizing them makes uniqueness a
// *registry property*: every salt is defined on the lines below, the
// radiocast-lint R6 rule rejects `kSalt*` definitions (and literal salts
// at draw sites) anywhere else, and `scripts/check_docs.py` cross-checks
// this file against the stream-inventory table in
// docs/STATIC_ANALYSIS.md in both directions.
//
// Adding a stream: pick a fresh 64-bit constant (convention: a mnemonic
// high word, an odd low word), add one line here with a one-line
// description of what the stream keys, and add the matching row to the
// docs/STATIC_ANALYSIS.md inventory table.
//
// Changing a value changes every trajectory keyed under it — salts are
// part of the determinism contract (docs/PARALLELISM.md), pinned by the
// bit-identity suites (tests/test_batch.cpp, tests/test_fault.cpp).
#pragma once

#include <cstdint>

namespace radiocast::rng {

// --- scalar fault plans (fault/plan.cpp) --------------------------------
// Per-slot jammer activation coin, keyed (jammer index, slot).
inline constexpr std::uint64_t kSaltJam = 0x4A4D4A4D'00000001ULL;
// Bernoulli link-loss coin, keyed (link key, slot).
inline constexpr std::uint64_t kSaltBernoulli = 0x10550001'00000003ULL;
// Gilbert–Elliott per-link state-transition draw, keyed (link key, slot).
inline constexpr std::uint64_t kSaltGeState = 0x6E5F5701'00000005ULL;
// Gilbert–Elliott in-state loss draw, keyed (link key, slot).
inline constexpr std::uint64_t kSaltGeLoss = 0x6E5F5702'00000007ULL;

// --- batched Decay coin (proto/decay_batch.hpp) -------------------------
// The Decay stop coin: 64-lane words keyed (lane block, slot, node); the
// scalar counter-RNG protocol replays single bits of the same masks,
// which is what makes lane k of block b bit-identical to trial 64b+k.
inline constexpr std::uint64_t kSaltDecayCoin = 0xDECA'C019'0000'0009ULL;

// --- batched fault lanes (fault/lane_plan.cpp) --------------------------
// Lane-parallel jammer activation masks, keyed (jammer, lane block, slot).
inline constexpr std::uint64_t kSaltLaneJam = 0x4A4DB17C'0000000BULL;
// Lane-parallel Bernoulli loss masks, keyed (lane block, slot).
inline constexpr std::uint64_t kSaltLaneLoss = 0x1055B17C'0000000DULL;
// Lane-replay Gilbert–Elliott state-transition draw, keyed
// (trial, slot, receiver).
inline constexpr std::uint64_t kSaltLaneGeState = 0x6E5FB17C'00000011ULL;
// Lane-replay Gilbert–Elliott in-state loss draw, keyed
// (trial, slot, receiver).
inline constexpr std::uint64_t kSaltLaneGeLoss = 0x6E5FB17D'00000013ULL;

}  // namespace radiocast::rng
