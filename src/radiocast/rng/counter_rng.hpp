// Counter-based ("random-access") pseudo-random draws.
//
// A CounterRng has no sequential state: every draw is a pure function of
// the seed plus a salt and up to three counters, evaluated as a chain of
// splitmix64 finalizer steps. That purity is what the deterministic layers
// of this repo are built on:
//
//   * the fault layer keys per-delivery loss/jam decisions on
//     (plan seed, link, slot), so outcomes never depend on the order in
//     which deliveries are resolved or on the worker-thread count;
//   * the batched trial engine (sim/batch) keys the Decay coin on
//     (seed, lane block, slot, node) and hands each of the 64 lanes one
//     bit of the same word — and the scalar counter-RNG engine replays the
//     exact same draws one lane at a time, which is what makes the two
//     engines bit-identical rather than merely statistically equivalent.
//
// Salts are arbitrary odd constants owned by the caller; they separate
// domains, so two subsystems sharing a seed never consume the same draw.
// Changing a salt changes every trajectory keyed under it — salts are part
// of the determinism contract exactly like the seed is.
//
// `word` is header-inline: the batched simulator calls it once per
// transmitting node per slot. The floating-point conveniences live in
// counter_rng.cpp; they are per-delivery cost at worst (fault layer).
#pragma once

#include <cstdint>

#include "radiocast/rng/rng.hpp"

namespace radiocast::rng {

class CounterRng {
 public:
  constexpr CounterRng() noexcept = default;
  constexpr explicit CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  constexpr std::uint64_t seed() const noexcept { return seed_; }

  /// 64 uniformly random bits, a pure function of (seed, salt, a, b).
  constexpr std::uint64_t word(std::uint64_t salt, std::uint64_t a,
                               std::uint64_t b) const noexcept {
    std::uint64_t x = mix64(seed_ ^ salt);
    x = mix64(x ^ a);
    return mix64(x ^ b);
  }

  /// 64 uniformly random bits keyed on one more counter — the batched
  /// engine's (salt, lane block, slot, node) coin draw.
  constexpr std::uint64_t word(std::uint64_t salt, std::uint64_t a,
                               std::uint64_t b,
                               std::uint64_t c) const noexcept {
    return mix64(word(salt, a, b) ^ c);
  }

  /// 64 uniformly random bits keyed on a fourth counter — slice i >= 1 of
  /// a bit-sliced Bernoulli draw (rng/sliced_bernoulli.hpp) extends the
  /// three-counter key with the slice index.
  constexpr std::uint64_t word(std::uint64_t salt, std::uint64_t a,
                               std::uint64_t b, std::uint64_t c,
                               std::uint64_t d) const noexcept {
    return mix64(word(salt, a, b, c) ^ d);
  }

  /// Uniform double in [0, 1) with 53 bits of precision. Bit-compatible
  /// with the draw the fault layer shipped before CounterRng existed.
  double unit(std::uint64_t salt, std::uint64_t a, std::uint64_t b) const
      noexcept;

  /// Uniform double in [0, 1) keyed on three counters — the per-lane
  /// Gilbert–Elliott chain draws of fault/lane_plan.hpp, whose thresholds
  /// differ lane by lane and therefore cannot be bit-sliced.
  double unit(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const noexcept;

  /// True with probability `p` (clamped by comparison semantics: p <= 0
  /// is never, p >= 1 is always).
  bool bernoulli(double p, std::uint64_t salt, std::uint64_t a,
                 std::uint64_t b) const noexcept;

 private:
  std::uint64_t seed_ = 0;
};

}  // namespace radiocast::rng
