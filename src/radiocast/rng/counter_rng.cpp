#include "radiocast/rng/counter_rng.hpp"

namespace radiocast::rng {

double CounterRng::unit(std::uint64_t salt, std::uint64_t a,
                        std::uint64_t b) const noexcept {
  // Top 53 bits scaled into [0, 1) — the same construction Rng::uniform01
  // uses, and bit-identical to the fault layer's historical unit_draw.
  return static_cast<double>(word(salt, a, b) >> 11) * 0x1.0p-53;
}

double CounterRng::unit(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                        std::uint64_t c) const noexcept {
  return static_cast<double>(word(salt, a, b, c) >> 11) * 0x1.0p-53;
}

bool CounterRng::bernoulli(double p, std::uint64_t salt, std::uint64_t a,
                           std::uint64_t b) const noexcept {
  return unit(salt, a, b) < p;
}

}  // namespace radiocast::rng
