// Bit-sliced Bernoulli(p): one hit bit per lane, 64 lanes per draw.
//
// Each lane k conceptually owns a uniform u_k in [0, 1) whose binary
// digits are spread across a sequence of counter-keyed random words: slice
// i holds digit i (most significant first) of every lane's uniform, in bit
// k. Comparing u_k < p for all 64 lanes at once is then the classic
// bit-serial comparator: walk p's binary digits from the top, keep an
// "equal so far" mask, and a lane drops into "less than" exactly when p
// has a 1-digit where the lane's uniform has a 0-digit.
//
// p is first rounded to a 32-bit fixed-point fraction scaled/2^32 (error
// at most 2^-33), and trailing zero digits are trimmed: a draw consumes
// `slices()` words in the worst case, and on average about two, because
// the comparator stops as soon as the "equal" mask empties — each slice
// halves it. Dyadic probabilities get the exact fast path for free:
// p = 0.5 compiles to a single slice whose comparator reduces to ~word,
// and p = 0/1 consume no randomness at all.
//
// The keying contract: slice 0 of mask(rng, salt, a, b, c) is
// `rng.word(salt, a, b, c)` — for the Decay coin under kSaltDecayCoin
// this is the exact word the fair-coin engine has always drawn, so every
// p = 0.5 trajectory recorded before biased coins existed is preserved
// bit for bit. Slice i >= 1 appends the slice index as a fourth counter:
// `rng.word(salt, a, b, c, i)`.
//
// Hot loops draw through mask_from(keyed, c), where keyed is the hoisted
// (seed, salt, a, b) chain `rng.word(salt, a, b)`: the per-draw cost then
// starts at one mix64 instead of three. mask() and mask_from() are the
// same function by construction, not by convention.
//
// The scalar counter-RNG engines replay a single lane by extracting bit
// `lane` of the very same masks, which is what keeps the batched and
// scalar paths bit-identical rather than merely equal in distribution.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "radiocast/rng/counter_rng.hpp"

namespace radiocast::rng {

class SlicedBernoulli {
 public:
  /// Default: the never-hits distribution (p <= 0).
  constexpr SlicedBernoulli() noexcept = default;

  explicit SlicedBernoulli(double p) noexcept {
    if (p >= 1.0) {
      scaled_ = kOne;
    } else if (p > 0.0) {
      scaled_ = static_cast<std::uint64_t>(std::llround(std::ldexp(p, 32)));
      if (scaled_ > kOne) {
        scaled_ = kOne;  // defensive: llround at p just below 1
      }
    }
    if (scaled_ != 0 && scaled_ != kOne) {
      slices_ = static_cast<unsigned>(
          32 - std::countr_zero(static_cast<std::uint32_t>(scaled_)));
    }
  }

  constexpr bool never() const noexcept { return scaled_ == 0; }
  constexpr bool always() const noexcept { return scaled_ == kOne; }

  /// Number of random words a single draw consumes in the worst case.
  constexpr unsigned slices() const noexcept { return slices_; }

  /// The compiled fixed-point probability: p rounded to scaled()/2^32.
  constexpr std::uint64_t scaled() const noexcept { return scaled_; }

  /// 64 independent Bernoulli(p) bits: bit k is set iff lane k's uniform
  /// falls below p. `keyed` is the hoisted chain rng.word(salt, a, b).
  constexpr std::uint64_t mask_from(std::uint64_t keyed,
                                    std::uint64_t c) const noexcept {
    if (scaled_ == 0) {
      return 0;
    }
    if (scaled_ == kOne) {
      return ~std::uint64_t{0};
    }
    const std::uint64_t base = mix64(keyed ^ c);  // == slice-0 word
    std::uint64_t lt = 0;
    std::uint64_t eq = ~std::uint64_t{0};
    for (unsigned i = 0; i < slices_; ++i) {
      const std::uint64_t w = i == 0 ? base : mix64(base ^ i);
      if (((scaled_ >> (31 - i)) & 1U) != 0) {
        lt |= eq & ~w;
        eq &= w;
      } else {
        eq &= ~w;
      }
      if (eq == 0) {
        break;
      }
    }
    // Lanes still in `eq` match p's trimmed digits exactly; their
    // remaining (all-zero) digits make u_k == p, i.e. not < p.
    return lt;
  }

  /// mask_from with the full four-counter key spelled out.
  constexpr std::uint64_t mask(const CounterRng& rng, std::uint64_t salt,
                               std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) const noexcept {
    return mask_from(rng.word(salt, a, b), c);
  }

 private:
  static constexpr std::uint64_t kOne = std::uint64_t{1} << 32;

  std::uint64_t scaled_ = 0;
  unsigned slices_ = 0;
};

}  // namespace radiocast::rng
