#include "radiocast/sim/sharded.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace radiocast::sim {

namespace {

/// Phase-1 word for a node that did not choose kReceive this slot: the
/// count field reads 2^31, so it can never equal 0 (untouched receiver)
/// or 1 (clean delivery), and incrementing it by every in-range
/// transmitter can never carry into the heard-from field (degree < 2^31,
/// enforced at construction).
constexpr std::uint64_t kNonReceiverBase = std::uint64_t{1} << 31;

/// Sparse-sweep round budget: a round expands about this many
/// (transmitter, receiver) pairs before handing them to the shards, so
/// bucket scratch stays bounded (~8M pairs = 32 MiB of ids) no matter how
/// many transmitters a slot has.
constexpr std::size_t kSparsePairBudget = std::size_t{1} << 23;

/// Auto-sharding: one shard per this many receivers, so a shard's
/// recv_state_ slice (8 bytes/node) stays around 256 KiB — L2-resident
/// while the shard consumes its buckets.
constexpr std::size_t kNodesPerShard = 32768;
constexpr std::size_t kMaxAutoShards = 256;

/// cache_span_ value for a node whose neighbor row is not memoized.
constexpr std::uint64_t kNotCached = ~std::uint64_t{0};

/// Auto cap for the adjacency cache: generous (the cache is the difference
/// between re-running every geometric query every slot and running it once
/// per node) but bounded so a pathological degree hint cannot eat the
/// machine.
constexpr std::size_t kMaxAutoCacheBytes = std::size_t{6} << 30;

}  // namespace

const char* sweep_strategy_name(SweepStrategy s) noexcept {
  switch (s) {
    case SweepStrategy::kDense:
      return "dense";
    case SweepStrategy::kSparse:
      return "sparse";
    case SweepStrategy::kAuto:
      break;
  }
  return "auto";
}

std::optional<SweepStrategy> parse_sweep_strategy(
    std::string_view value) noexcept {
  if (value == "auto") {
    return SweepStrategy::kAuto;
  }
  if (value == "dense") {
    return SweepStrategy::kDense;
  }
  if (value == "sparse") {
    return SweepStrategy::kSparse;
  }
  return std::nullopt;
}

SweepStrategy sweep_strategy_from_env() {
  // Both strategies are bit-identical by the determinism contract, so this
  // startup-only knob can never touch a trajectory.
  static const SweepStrategy resolved = [] {
    // RADIOCAST_LINT_OK(R2): startup-only sweep knob; outcome-invariant
    if (const char* env = std::getenv("RADIOCAST_SCALE_SWEEP")) {
      if (const auto parsed = parse_sweep_strategy(env)) {
        return *parsed;
      }
      std::fprintf(
          stderr,
          "radiocast: ignoring RADIOCAST_SCALE_SWEEP='%s' (want auto, dense "
          "or sparse)\n",
          env);
    }
    return SweepStrategy::kAuto;
  }();
  return resolved;
}

ScaleTrace::ScaleTrace(std::size_t n, Slot sample_period)
    : sample_period_(sample_period), first_delivery_(n, kNever) {}

ShardedSimulator::ShardedSimulator(const graph::ImplicitTopology& topo,
                                   ShardedSimOptions options)
    : topo_(&topo),
      options_(options),
      trace_(topo.node_count(), options.trace_sample_period),
      protocols_(topo.node_count()),
      pool_(options.threads, options.affinity) {
  const std::size_t n = topo.node_count();
  RADIOCAST_CHECK_MSG(n <= kNoNode, "node count overflows the NodeId range");
  RADIOCAST_CHECK_MSG(n <= (std::size_t{1} << 31),
                      "node count overflows the hit-count field");
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    node_rngs_.emplace_back(options_.seed, /*stream=*/v);
  }
  std::size_t shard_count = options_.shards;
  if (shard_count == 0) {
    // Enough shards that each receiver slice is cache-resident, but at
    // least one per worker so no thread idles.
    const std::size_t for_cache =
        std::min(kMaxAutoShards, (n + kNodesPerShard - 1) / kNodesPerShard);
    shard_count = std::max(pool_.thread_count(), for_cache);
  }
  shard_count = std::max<std::size_t>(
      1, std::min(shard_count, std::max<std::size_t>(n, 1)));
  shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].begin = static_cast<NodeId>(n * s / shard_count);
    shards_[s].end = static_cast<NodeId>(n * (s + 1) / shard_count);
    shards_[s].terminated_prefix = shards_[s].begin;
  }
  chunks_.resize(std::max<std::size_t>(1, pool_.thread_count()));
  for (SparseChunk& chunk : chunks_) {
    chunk.buckets.resize(shard_count);
  }
  sweep_ = options_.sweep != SweepStrategy::kAuto ? options_.sweep
                                                  : sweep_strategy_from_env();
  sparse_threshold_ = options_.sweep_sparse_threshold != 0
                          ? options_.sweep_sparse_threshold
                          : std::max<std::size_t>(1, n / 2);
  degree_hint_ = std::max<std::size_t>(1, topo.degree_hint());
  std::size_t cache_bytes = options_.adjacency_cache_bytes;
  if (cache_bytes == 0 && !topo.adjacency_is_materialized()) {
    cache_bytes =
        std::min(kMaxAutoCacheBytes, 2 * n * degree_hint_ * sizeof(NodeId));
  }
  cache_cap_per_shard_ = cache_bytes / sizeof(NodeId) / shard_count;
  const bool cache_on = cache_cap_per_shard_ > 0;
  // First-touch: each shard's state pages are faulted in by the worker
  // that will sweep them (static dispatch keeps the shard->worker map
  // fixed), so with pinned threads the pages land NUMA-local.
  recv_state_ = common::FirstTouchArray<std::uint64_t>(n);
  tx_message_ = common::FirstTouchArray<const Message*>(n);
  wake_slot_ = common::FirstTouchArray<Slot>(n);
  if (cache_on) {
    cache_span_ = common::FirstTouchArray<std::uint64_t>(n);
  }
  pool_.run(
      shards_.size(),
      [this, cache_on](std::size_t s) {
        for (NodeId v = shards_[s].begin; v < shards_[s].end; ++v) {
          recv_state_[v] = kNonReceiverBase;
          tx_message_[v] = nullptr;
          wake_slot_[v] = 0;
          if (cache_on) {
            cache_span_[v] = kNotCached;
          }
        }
      },
      common::Dispatch::kStatic);
}

std::size_t ShardedSimulator::owner_shard(NodeId v) const noexcept {
  // Shards are the equal-width intervals [n*s/S, n*(s+1)/S), so the owner
  // index is v*S/n up to flooring slack; begin <= v always holds for that
  // guess, so only a forward fix-up is ever needed.
  std::size_t s =
      static_cast<std::size_t>(v) * shards_.size() / node_count();
  while (v >= shards_[s].end) {
    ++s;
  }
  return s;
}

std::pair<const NodeId*, std::size_t> ShardedSimulator::cached_row(
    NodeId u) const noexcept {
  if (cache_cap_per_shard_ == 0) {
    return {nullptr, 0};
  }
  const std::uint64_t span = cache_span_[u];
  if (span == kNotCached) {
    return {nullptr, 0};
  }
  const Shard& owner = shards_[owner_shard(u)];
  return {owner.cache_arena.data() + (span >> 32),
          static_cast<std::uint32_t>(span)};
}

void ShardedSimulator::cache_shard_rows(Shard& shard) {
  // Memoize the sorted full neighbor row of every one of this shard's
  // transmitters that has not been cached yet (nodes transmit many slots
  // under Decay-style schedules, so this pays the implicit-topology query
  // once per node instead of once per slot). Only the owning shard writes
  // its arena and its cache_span_ slice, and only in this barriered phase,
  // so the sweeps that follow read both without synchronization.
  for (const NodeId u : shard.tx_ids) {
    if (shard.cache_full || cache_span_[u] != kNotCached) {
      continue;
    }
    shard.neighbor_buf.clear();
    topo_->append_out_neighbors(u, shard.neighbor_buf);
    const std::size_t len = shard.neighbor_buf.size();
    if (shard.cache_arena.size() + len > cache_cap_per_shard_) {
      // Over budget: stop memoizing so the pass never re-queries rows it
      // cannot store — everything uncached stays a live query forever.
      shard.cache_full = true;
      continue;
    }
    cache_span_[u] = (static_cast<std::uint64_t>(shard.cache_arena.size())
                      << 32) |
                     static_cast<std::uint32_t>(len);
    shard.cache_arena.insert(shard.cache_arena.end(),
                             shard.neighbor_buf.begin(),
                             shard.neighbor_buf.end());
    ++shard.cached_rows;
  }
}

std::size_t ShardedSimulator::cached_rows() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.cached_rows;
  }
  return total;
}

void ShardedSimulator::set_protocol(NodeId v, std::unique_ptr<Protocol> p) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(!started_, "cannot replace protocols after start");
  RADIOCAST_CHECK_MSG(p != nullptr, "protocol must not be null");
  protocols_[v] = std::move(p);
}

void ShardedSimulator::install_all(
    const std::function<std::unique_ptr<Protocol>(NodeId)>& factory) {
  for (NodeId v = 0; v < node_count(); ++v) {
    set_protocol(v, factory(v));
  }
}

Protocol& ShardedSimulator::protocol(NodeId v) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

const Protocol& ShardedSimulator::protocol(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

void ShardedSimulator::run_dense_sweep(Shard& shard) {
  // Receiver-owned: project every transmitter's audience onto this
  // shard's id interval. Only the [shard.begin, shard.end) slice of
  // recv_state_ is written, so shards never contend. The within-u order
  // of the unordered query is irrelevant: each (u, v) pair is emitted
  // once, hit counting commutes, and resolve_shard() sorts `touched`.
  for (const NodeId u : transmitters_) {
    const NodeId* nbrs = nullptr;
    std::size_t len = 0;
    if (const auto [row, row_len] = cached_row(u); row != nullptr) {
      // Memoized sorted row: binary-search this shard's id slice.
      const NodeId* first = std::lower_bound(row, row + row_len, shard.begin);
      const NodeId* last = std::lower_bound(first, row + row_len, shard.end);
      nbrs = first;
      len = static_cast<std::size_t>(last - first);
    } else {
      shard.neighbor_buf.clear();
      topo_->append_out_neighbors_unordered_in(u, shard.begin, shard.end,
                                               shard.neighbor_buf);
      nbrs = shard.neighbor_buf.data();
      len = shard.neighbor_buf.size();
    }
    const std::uint64_t from_word = static_cast<std::uint64_t>(u) << 32;
    for (std::size_t i = 0; i < len; ++i) {
      const NodeId v = nbrs[i];
      const std::uint64_t w = recv_state_[v];
      if (static_cast<std::uint32_t>(w) == 0) {
        // First hit on a receiver: record the sender and count 1.
        recv_state_[v] = from_word | 1;
        shard.touched.push_back(v);
      } else {
        recv_state_[v] = w + 1;
      }
    }
  }
}

void ShardedSimulator::fill_sparse_chunk(std::size_t c, std::size_t base,
                                         std::size_t batch) {
  SparseChunk& chunk = chunks_[c];
  for (SparseBucket& bucket : chunk.buckets) {
    bucket.runs.clear();
    bucket.verts.clear();
  }
  // This chunk's contiguous sub-range of the round's transmitters; the
  // split mirrors Dispatch::kStatic so chunk c is always filled and
  // ordered the same way regardless of thread count.
  const std::size_t chunk_count = chunks_.size();
  const std::size_t b0 = base + batch * c / chunk_count;
  const std::size_t b1 = base + batch * (c + 1) / chunk_count;
  for (std::size_t i = b0; i < b1; ++i) {
    const NodeId u = transmitters_[i];
    if (i + 1 < b1 && cache_cap_per_shard_ > 0) {
      __builtin_prefetch(&cache_span_[transmitters_[i + 1]]);
    }
    const NodeId* nbrs = nullptr;
    std::size_t len = 0;
    if (const auto [row, row_len] = cached_row(u); row != nullptr) {
      nbrs = row;
      len = row_len;
    } else {
      // The *ordered* query: the monotone walk below needs a sorted row.
      chunk.nbrs.clear();
      topo_->append_out_neighbors(u, chunk.nbrs);
      nbrs = chunk.nbrs.data();
      len = chunk.nbrs.size();
    }
    // The row is sorted, so the owning shard only ever advances along it:
    // each shard's slice of u's audience is one contiguous segment,
    // appended as a single run header plus a bulk copy. This keeps the
    // owner-shard arithmetic (an integer division) per *segment*, not per
    // pair — at high shard counts the division was the fill's hot spot.
    std::size_t j = 0;
    std::size_t s = len > 0 ? owner_shard(nbrs[0]) : 0;
    while (j < len) {
      while (nbrs[j] >= shards_[s].end) {
        ++s;
      }
      const NodeId seg_end = shards_[s].end;
      std::size_t k = j + 1;
      while (k < len && nbrs[k] < seg_end) {
        ++k;
      }
      SparseBucket& bucket = chunk.buckets[s];
      bucket.runs.push_back(TxRun{u, static_cast<std::uint32_t>(k - j)});
      bucket.verts.insert(bucket.verts.end(), nbrs + j, nbrs + k);
      j = k;
    }
  }
}

void ShardedSimulator::consume_sparse_shard(Shard& shard, std::size_t s) {
  // Walking the chunks in index order visits transmitters in globally
  // ascending id order (chunks partition an ascending range, runs within
  // a bucket are appended in fill order), so the first hit each receiver
  // sees comes from the same transmitter as in the dense and classic
  // sweeps — heard-from bit-identity.
  for (const SparseChunk& chunk : chunks_) {
    const SparseBucket& bucket = chunk.buckets[s];
    std::size_t idx = 0;
    for (const TxRun run : bucket.runs) {
      const std::uint64_t from_word = static_cast<std::uint64_t>(run.u) << 32;
      for (std::uint32_t k = 0; k < run.len; ++k) {
        const NodeId v = bucket.verts[idx++];
        const std::uint64_t w = recv_state_[v];
        if (static_cast<std::uint32_t>(w) == 0) {
          recv_state_[v] = from_word | 1;
          shard.touched.push_back(v);
        } else {
          recv_state_[v] = w + 1;
        }
      }
    }
  }
}

void ShardedSimulator::run_direct_sweep() {
  // Single-worker specialization, valid for both strategies: the bucketed
  // fill/consume handoff and the per-shard range projections only exist to
  // move work between workers without contention. With one worker there is
  // nobody to hand work to, so apply each transmitter's full row to
  // recv_state_ in place, in ascending transmitter order — the exact
  // global order both parallel paths reproduce (first hit per receiver
  // comes from its smallest transmitting in-neighbor, counts commute),
  // hence bit-identical trajectories. `touched` still lands in the owning
  // shard so resolve_shard() runs unchanged; the owner-shard division is
  // paid per first hit only, not per pair.
  SparseChunk& chunk = chunks_[0];
  for (std::size_t i = 0; i < transmitters_.size(); ++i) {
    const NodeId u = transmitters_[i];
    if (i + 1 < transmitters_.size() && cache_cap_per_shard_ > 0) {
      __builtin_prefetch(&cache_span_[transmitters_[i + 1]]);
    }
    const NodeId* nbrs = nullptr;
    std::size_t len = 0;
    if (const auto [row, row_len] = cached_row(u); row != nullptr) {
      nbrs = row;
      len = row_len;
    } else {
      chunk.nbrs.clear();
      topo_->append_out_neighbors(u, chunk.nbrs);
      nbrs = chunk.nbrs.data();
      len = chunk.nbrs.size();
    }
    const std::uint64_t from_word = static_cast<std::uint64_t>(u) << 32;
    for (std::size_t j = 0; j < len; ++j) {
      const NodeId v = nbrs[j];
      if (j + 4 < len) {
        __builtin_prefetch(&recv_state_[nbrs[j + 4]]);
      }
      const std::uint64_t w = recv_state_[v];
      if (static_cast<std::uint32_t>(w) == 0) {
        recv_state_[v] = from_word | 1;
        shards_[owner_shard(v)].touched.push_back(v);
      } else {
        recv_state_[v] = w + 1;
      }
    }
  }
}

void ShardedSimulator::run_sparse_rounds() {
  // Rounds bound the pair scratch: expand at most kSparsePairBudget
  // expected pairs, hand them to the shards, repeat. Transmitters are
  // processed in ascending order across rounds, preserving first-hit
  // order within every receiver.
  const std::size_t total = transmitters_.size();
  const std::size_t per_round =
      std::max<std::size_t>(1, kSparsePairBudget / degree_hint_);
  for (std::size_t base = 0; base < total; base += per_round) {
    const std::size_t batch = std::min(per_round, total - base);
    pool_.run(
        chunks_.size(),
        [this, base, batch](std::size_t c) {
          fill_sparse_chunk(c, base, batch);
        },
        common::Dispatch::kStatic);
    pool_.run(
        shards_.size(),
        [this](std::size_t s) { consume_sparse_shard(shards_[s], s); },
        common::Dispatch::kStatic);
  }
}

void ShardedSimulator::resolve_shard(Shard& shard, bool sampled) {
  // Resolve this shard's receivers in increasing id order. Shards are
  // contiguous and ascending, so concatenating the shards' work
  // reproduces the classic engine's global 0..n-1 order.
  std::sort(shard.touched.begin(), shard.touched.end());
  for (const NodeId v : shard.touched) {
    const std::uint64_t w = recv_state_[v];
    // Restore the asleep-receiver invariant (recv_state_ == 0) now that
    // the word is consumed; awake nodes get theirs rewritten by the next
    // poll anyway.
    recv_state_[v] = 0;
    const std::uint32_t count = static_cast<std::uint32_t>(w);
    if (count == 1) {
      const NodeId sender = static_cast<NodeId>(w >> 32);
      if (trace_.first_delivery_[v] == kNever) {
        trace_.first_delivery_[v] = now_;
        ++shard.newly_delivered;
      }
      ++shard.deliveries;
      if (sampled) {
        shard.sampled_deliveries.push_back(Delivery{v, sender});
      }
      wake_slot_[v] = 0;  // any callback ends the dormancy promise
      NodeContext ctx = make_context(v);
      protocols_[v]->on_receive(ctx, *tx_message_[sender]);
    } else {
      ++shard.collisions;
      if (sampled) {
        shard.sampled_collisions.push_back(v);
      }
      if (options_.collision_detection) {
        // An unreliable detector misses this collision with the configured
        // probability — the receiver then experiences plain silence. Same
        // draw, from the same per-node stream, as the classic engine.
        if (options_.cd_false_negative_rate > 0.0 &&
            node_rngs_[v].bernoulli(options_.cd_false_negative_rate)) {
          continue;
        }
        wake_slot_[v] = 0;  // any callback ends the dormancy promise
        NodeContext ctx = make_context(v);
        protocols_[v]->on_collision(ctx);
      }
    }
  }
  shard.touched.clear();
  // Advance the terminated prefix now that this slot can no longer change
  // any of this shard's protocol states (termination is monotone).
  while (shard.terminated_prefix < shard.end &&
         protocols_[shard.terminated_prefix]->terminated()) {
    ++shard.terminated_prefix;
  }
}

void ShardedSimulator::step() {
  const std::size_t n = node_count();
  if (!started_) {
    for (NodeId v = 0; v < n; ++v) {
      RADIOCAST_CHECK_MSG(protocols_[v] != nullptr,
                          "every node needs a protocol before step()");
    }
    started_ = true;
    pool_.run(
        shards_.size(),
        [this](std::size_t s) {
          for (NodeId v = shards_[s].begin; v < shards_[s].end; ++v) {
            NodeContext ctx = make_context(v);
            protocols_[v]->on_start(ctx);
          }
        },
        common::Dispatch::kStatic);
  }

  ++trace_.total_slots_;
  const bool sampled = options_.trace_sample_period > 0 &&
                       now_ % options_.trace_sample_period == 0;

  // Phase 1: poll every awake node's protocol, shard-parallel. Each shard
  // writes only its own recv_state_ slice (which doubles as the kind mark
  // and the count reset; asleep nodes hold 0 by invariant and are not
  // touched at all) and collects its own (ascending) transmitter list;
  // node rngs are per-node streams, so polling order is irrelevant.
  pool_.run(
      shards_.size(),
      [this](std::size_t s) {
        Shard& shard = shards_[s];
        shard.tx_ids.clear();
        shard.tx_messages.clear();
        for (NodeId v = shard.begin; v < shard.end; ++v) {
          // Dormancy fast path: the protocol promised every poll before
          // wake_slot_[v] is a pure receive() (Protocol::dormant_until()),
          // so skip the virtual call outright. Nothing is written either:
          // asleep nodes hold recv_state_[v] == 0 as an invariant (the
          // word was written 0 when the node fell asleep, and the resolve
          // phase restores any word the sweep dirtied). The resolve phase
          // also wakes a node the moment a callback fires for it.
          if (wake_slot_[v] > now_) {
            continue;
          }
          NodeContext ctx = make_context(v);
          Action a = protocols_[v]->on_slot(ctx);
          recv_state_[v] =
              a.kind == ActionKind::kReceive ? 0 : kNonReceiverBase;
          if (a.kind == ActionKind::kTransmit) {
            shard.tx_ids.push_back(v);
            shard.tx_messages.push_back(std::move(a.message));
          } else if (a.kind == ActionKind::kReceive) {
            const Slot wake = protocols_[v]->dormant_until();
            if (wake > now_) {
              wake_slot_[v] = wake;
            }
          }
        }
      },
      common::Dispatch::kStatic);

  // Serial merge: concatenating the shards' ascending transmitter lists in
  // shard order yields the globally ascending transmitter set; publish
  // each transmitter's message pointer for phase 3.
  transmitters_.clear();
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < shard.tx_ids.size(); ++i) {
      const NodeId u = shard.tx_ids[i];
      transmitters_.push_back(u);
      tx_message_[u] = &shard.tx_messages[i];
    }
  }
  trace_.total_tx_ += transmitters_.size();

  // Cache pass: memoize the rows of first-time transmitters before the
  // sweep (its own barrier, so the sweeps read the arenas race-free).
  if (cache_cap_per_shard_ > 0) {
    pool_.run(
        shards_.size(),
        [this](std::size_t s) { cache_shard_rows(shards_[s]); },
        common::Dispatch::kStatic);
  }

  // Phase 2: pick the sweep. Dense when the slot is transmitter-heavy (or
  // forced); transmitter-indexed sparse otherwise. With a single shard the
  // dense sweep already does the minimal O(transmitters) full queries, so
  // auto never picks sparse there.
  const bool sparse =
      sweep_ == SweepStrategy::kSparse ||
      (sweep_ == SweepStrategy::kAuto && shards_.size() > 1 &&
       transmitters_.size() <= sparse_threshold_);
  if (sparse) {
    ++trace_.sweep_sparse_;
  } else {
    ++trace_.sweep_dense_;
  }
  if (pool_.thread_count() <= 1) {
    // One worker: the parallel machinery of either strategy is pure
    // overhead, so both collapse to the in-place ascending sweep (the
    // strategy counters above still record what was *chosen* — the
    // trajectory is identical either way).
    run_direct_sweep();
    pool_.run(
        shards_.size(),
        [this, sampled](std::size_t s) { resolve_shard(shards_[s], sampled); },
        common::Dispatch::kStatic);
  } else if (sparse) {
    run_sparse_rounds();
    pool_.run(
        shards_.size(),
        [this, sampled](std::size_t s) { resolve_shard(shards_[s], sampled); },
        common::Dispatch::kStatic);
  } else {
    // Phases 2 + 3 fused per shard: a shard's deliveries depend only on
    // its own recv_state_ slice, which no other shard touches, so there
    // is no barrier between the sweep and the resolution.
    pool_.run(
        shards_.size(),
        [this, sampled](std::size_t s) {
          run_dense_sweep(shards_[s]);
          resolve_shard(shards_[s], sampled);
        },
        common::Dispatch::kStatic);
  }


  // Serial reduce: fold the per-shard counters (order-independent sums)
  // and splice sampled records in shard order == receiver id order.
  bool all_done = true;
  SlotRecord* record = nullptr;
  if (sampled) {
    trace_.sampled_.emplace_back();
    record = &trace_.sampled_.back();
    record->slot = now_;
    record->transmitters = transmitters_;
  }
  for (Shard& shard : shards_) {
    trace_.total_rx_ += shard.deliveries;
    trace_.total_coll_ += shard.collisions;
    trace_.delivered_count_ += shard.newly_delivered;
    shard.deliveries = 0;
    shard.collisions = 0;
    shard.newly_delivered = 0;
    if (record != nullptr) {
      record->deliveries.insert(record->deliveries.end(),
                                shard.sampled_deliveries.begin(),
                                shard.sampled_deliveries.end());
      record->collision_receivers.insert(record->collision_receivers.end(),
                                         shard.sampled_collisions.begin(),
                                         shard.sampled_collisions.end());
    }
    shard.sampled_deliveries.clear();
    shard.sampled_collisions.clear();
    all_done = all_done && shard.terminated_prefix == shard.end;
  }
  all_terminated_ = all_done;

  ++now_;
}

Slot ShardedSimulator::run_to_quiescence(Slot max_slots) {
  // At least one step so on_start effects are observable even for
  // protocols that are terminated from the outset (same contract as the
  // classic engine).
  while (now_ < max_slots) {
    if (now_ > 0 && all_terminated()) {
      break;
    }
    step();
  }
  return now_;
}

bool ShardedSimulator::all_terminated() const {
  if (started_) {
    // Maintained incrementally: each shard advances its terminated prefix
    // at the end of its sweep, and step() folds the verdict.
    return all_terminated_;
  }
  for (NodeId v = 0; v < node_count(); ++v) {
    if (protocols_[v] == nullptr || !protocols_[v]->terminated()) {
      return false;
    }
  }
  return true;
}

}  // namespace radiocast::sim
