#include "radiocast/sim/sharded.hpp"

#include <algorithm>
#include <utility>

namespace radiocast::sim {

ScaleTrace::ScaleTrace(std::size_t n, Slot sample_period)
    : sample_period_(sample_period), first_delivery_(n, kNever) {}

ShardedSimulator::ShardedSimulator(const graph::ImplicitTopology& topo,
                                   ShardedSimOptions options)
    : topo_(&topo),
      options_(options),
      trace_(topo.node_count(), options.trace_sample_period),
      protocols_(topo.node_count()),
      pool_(options.threads),
      kind_(topo.node_count(), static_cast<std::uint8_t>(ActionKind::kIdle)),
      hear_count_(topo.node_count(), 0),
      heard_from_(topo.node_count(), kNoNode),
      tx_message_(topo.node_count(), nullptr) {
  const std::size_t n = topo.node_count();
  RADIOCAST_CHECK_MSG(n <= kNoNode, "node count overflows the NodeId range");
  node_rngs_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    node_rngs_.emplace_back(options_.seed, /*stream=*/v);
  }
  std::size_t shard_count =
      options_.shards == 0 ? pool_.thread_count() : options_.shards;
  shard_count = std::max<std::size_t>(1, std::min(shard_count, std::max<std::size_t>(n, 1)));
  shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].begin = static_cast<NodeId>(n * s / shard_count);
    shards_[s].end = static_cast<NodeId>(n * (s + 1) / shard_count);
    shards_[s].terminated_prefix = shards_[s].begin;
  }
}

void ShardedSimulator::set_protocol(NodeId v, std::unique_ptr<Protocol> p) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(!started_, "cannot replace protocols after start");
  RADIOCAST_CHECK_MSG(p != nullptr, "protocol must not be null");
  protocols_[v] = std::move(p);
}

void ShardedSimulator::install_all(
    const std::function<std::unique_ptr<Protocol>(NodeId)>& factory) {
  for (NodeId v = 0; v < node_count(); ++v) {
    set_protocol(v, factory(v));
  }
}

Protocol& ShardedSimulator::protocol(NodeId v) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

const Protocol& ShardedSimulator::protocol(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

void ShardedSimulator::run_shard_sweep(Shard& shard, bool sampled) {
  const std::uint8_t kReceiveByte =
      static_cast<std::uint8_t>(ActionKind::kReceive);
  // Phase 2 (shard-local): project every transmitter's audience onto this
  // shard's id interval. Only [shard.begin, shard.end) slices of
  // hear_count_ / heard_from_ are written, so shards never contend.
  shard.touched.clear();
  for (const NodeId u : transmitters_) {
    shard.neighbor_buf.clear();
    topo_->append_out_neighbors_in(u, shard.begin, shard.end,
                                   shard.neighbor_buf);
    for (const NodeId v : shard.neighbor_buf) {
      if (kind_[v] != kReceiveByte) {
        continue;
      }
      if (++hear_count_[v] == 1) {
        heard_from_[v] = u;
        shard.touched.push_back(v);
      }
    }
  }
  // Phase 3 (shard-local): resolve this shard's receivers in increasing id
  // order. Shards are contiguous and ascending, so concatenating the
  // shards' work reproduces the classic engine's global 0..n-1 order.
  std::sort(shard.touched.begin(), shard.touched.end());
  for (const NodeId v : shard.touched) {
    const std::uint32_t count = hear_count_[v];
    hear_count_[v] = 0;
    if (count == 1) {
      const NodeId sender = heard_from_[v];
      if (trace_.first_delivery_[v] == kNever) {
        trace_.first_delivery_[v] = now_;
        ++shard.newly_delivered;
      }
      ++shard.deliveries;
      if (sampled) {
        shard.sampled_deliveries.push_back(Delivery{v, sender});
      }
      NodeContext ctx = make_context(v);
      protocols_[v]->on_receive(ctx, *tx_message_[sender]);
    } else {
      ++shard.collisions;
      if (sampled) {
        shard.sampled_collisions.push_back(v);
      }
      if (options_.collision_detection) {
        // An unreliable detector misses this collision with the configured
        // probability — the receiver then experiences plain silence. Same
        // draw, from the same per-node stream, as the classic engine.
        if (options_.cd_false_negative_rate > 0.0 &&
            node_rngs_[v].bernoulli(options_.cd_false_negative_rate)) {
          continue;
        }
        NodeContext ctx = make_context(v);
        protocols_[v]->on_collision(ctx);
      }
    }
  }
  // Advance the terminated prefix now that this slot can no longer change
  // any of this shard's protocol states (termination is monotone).
  while (shard.terminated_prefix < shard.end &&
         protocols_[shard.terminated_prefix]->terminated()) {
    ++shard.terminated_prefix;
  }
}

void ShardedSimulator::step() {
  const std::size_t n = node_count();
  if (!started_) {
    for (NodeId v = 0; v < n; ++v) {
      RADIOCAST_CHECK_MSG(protocols_[v] != nullptr,
                          "every node needs a protocol before step()");
    }
    started_ = true;
    pool_.run(shards_.size(), [this](std::size_t s) {
      for (NodeId v = shards_[s].begin; v < shards_[s].end; ++v) {
        NodeContext ctx = make_context(v);
        protocols_[v]->on_start(ctx);
      }
    });
  }

  ++trace_.total_slots_;
  const bool sampled = options_.trace_sample_period > 0 &&
                       now_ % options_.trace_sample_period == 0;

  // Phase 1: poll every node's protocol, shard-parallel. Each shard writes
  // only its own kind_ slice and collects its own (ascending) transmitter
  // list; node rngs are per-node streams, so polling order is irrelevant.
  pool_.run(shards_.size(), [this](std::size_t s) {
    Shard& shard = shards_[s];
    shard.tx_ids.clear();
    shard.tx_messages.clear();
    for (NodeId v = shard.begin; v < shard.end; ++v) {
      NodeContext ctx = make_context(v);
      Action a = protocols_[v]->on_slot(ctx);
      kind_[v] = static_cast<std::uint8_t>(a.kind);
      if (a.kind == ActionKind::kTransmit) {
        shard.tx_ids.push_back(v);
        shard.tx_messages.push_back(std::move(a.message));
      }
    }
  });

  // Serial merge: concatenating the shards' ascending transmitter lists in
  // shard order yields the globally ascending transmitter set; publish
  // each transmitter's message pointer for phase 3.
  transmitters_.clear();
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < shard.tx_ids.size(); ++i) {
      const NodeId u = shard.tx_ids[i];
      transmitters_.push_back(u);
      tx_message_[u] = &shard.tx_messages[i];
    }
  }
  trace_.total_tx_ += transmitters_.size();

  // Phases 2 + 3, fused per shard: a shard's deliveries depend only on its
  // own hear-count slice, which no other shard touches, so there is no
  // barrier between the sweep and the resolution.
  pool_.run(shards_.size(), [this, sampled](std::size_t s) {
    run_shard_sweep(shards_[s], sampled);
  });

  // Serial reduce: fold the per-shard counters (order-independent sums)
  // and splice sampled records in shard order == receiver id order.
  bool all_done = true;
  SlotRecord* record = nullptr;
  if (sampled) {
    trace_.sampled_.emplace_back();
    record = &trace_.sampled_.back();
    record->slot = now_;
    record->transmitters = transmitters_;
  }
  for (Shard& shard : shards_) {
    trace_.total_rx_ += shard.deliveries;
    trace_.total_coll_ += shard.collisions;
    trace_.delivered_count_ += shard.newly_delivered;
    shard.deliveries = 0;
    shard.collisions = 0;
    shard.newly_delivered = 0;
    if (record != nullptr) {
      record->deliveries.insert(record->deliveries.end(),
                                shard.sampled_deliveries.begin(),
                                shard.sampled_deliveries.end());
      record->collision_receivers.insert(record->collision_receivers.end(),
                                         shard.sampled_collisions.begin(),
                                         shard.sampled_collisions.end());
    }
    shard.sampled_deliveries.clear();
    shard.sampled_collisions.clear();
    all_done = all_done && shard.terminated_prefix == shard.end;
  }
  all_terminated_ = all_done;

  ++now_;
}

Slot ShardedSimulator::run_to_quiescence(Slot max_slots) {
  // At least one step so on_start effects are observable even for
  // protocols that are terminated from the outset (same contract as the
  // classic engine).
  while (now_ < max_slots) {
    if (now_ > 0 && all_terminated()) {
      break;
    }
    step();
  }
  return now_;
}

bool ShardedSimulator::all_terminated() const {
  if (started_) {
    // Maintained incrementally: each shard advances its terminated prefix
    // at the end of its sweep, and step() folds the verdict.
    return all_terminated_;
  }
  for (NodeId v = 0; v < node_count(); ++v) {
    if (protocols_[v] == nullptr || !protocols_[v]->terminated()) {
      return false;
    }
  }
  return true;
}

}  // namespace radiocast::sim
