// Scheduled topology/fault events for the dynamic-network experiments
// (paper §2.2 property 3: "edges may be added or deleted at any time,
// provided that the network of unchanged edges remains connected").
#pragma once

#include <cstddef>
#include <vector>

#include "radiocast/common/types.hpp"

namespace radiocast::sim {

enum class EventKind : std::uint8_t {
  kAddEdge,     ///< add u<->v (both arcs)
  kRemoveEdge,  ///< remove u<->v (both arcs)
  kAddArc,      ///< add u->v
  kRemoveArc,   ///< remove u->v
  kCrashNode,   ///< node u stops transmitting and receiving (fail-stop)
  kReviveNode,  ///< node u resumes operating (state preserved)
  /// Node u resumes operating after a fail-stop crash (state preserved).
  /// Semantically identical to kReviveNode; kept distinct so fault-plan
  /// provenance can tell scripted revivals from fault-layer recoveries
  /// (fault.recover_events counts only these).
  kRecoverNode
};

struct TopologyEvent {
  Slot at = 0;  ///< applied before the actions of slot `at` are requested
  EventKind kind = EventKind::kAddEdge;
  NodeId u = kNoNode;
  NodeId v = kNoNode;  ///< unused for node events

  friend bool operator==(const TopologyEvent&, const TopologyEvent&) =
      default;
};

/// A time-ordered queue of events. Events with equal `at` apply in
/// insertion order.
class EventQueue {
 public:
  /// Enqueues `e`. Throws ContractViolation when `e.at` lies before the
  /// largest `now` already handed to pop_due — such an event would be in
  /// the queue's past and could only be applied late or out of order.
  /// Scheduling at exactly that time is allowed; it is delivered by the
  /// next pop_due.
  void push(TopologyEvent e);

  /// Pops and returns all events scheduled at or before `now`, in order.
  /// Advances the queue's clock to `now` (see push).
  std::vector<TopologyEvent> pop_due(Slot now);

  bool empty() const noexcept { return next_ >= events_.size(); }
  std::size_t pending() const noexcept { return events_.size() - next_; }

 private:
  void ensure_sorted();

  std::vector<TopologyEvent> events_;
  std::size_t next_ = 0;
  bool sorted_ = true;
  /// Largest `now` any pop_due call has seen — the queue's clock.
  Slot last_popped_at_ = 0;
};

}  // namespace radiocast::sim
