#include "radiocast/sim/batch/batch_simulator.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::sim::batch {

BatchSimulator::BatchSimulator(const graph::Graph& g)
    : BatchSimulator(graph::CsrTopology(g)) {}

BatchSimulator::BatchSimulator(graph::CsrTopology csr)
    : csr_(std::move(csr)),
      tx_(csr_.node_count(), 0),
      seen_(csr_.node_count(), 0),
      twice_(csr_.node_count(), 0),
      delivered_(csr_.node_count(), 0) {
  touched_.reserve(csr_.node_count());
}

void BatchSimulator::step(BatchedProtocol& proto, LaneMask lanes) {
  const std::size_t n = csr_.node_count();
  proto.emit(now_, lanes, tx_);

  // Fold every transmitter into its out-neighbors' carry-save
  // accumulators. A receiver enters touched_ exactly once, when its
  // seen word leaves zero — there is no O(n) reset afterwards.
  for (NodeId u = 0; u < n; ++u) {
    const LaneMask t = tx_[u];
    if (t == 0) {
      continue;
    }
    // Bit-sliced transmission counting: add 1 to every lane in t.
    LaneMask carry = t;
    for (std::size_t p = 0; carry != 0 && p < kTxPlanes; ++p) {
      const LaneMask sum = tx_planes_[p] ^ carry;
      carry &= tx_planes_[p];
      tx_planes_[p] = sum;
    }
    RADIOCAST_CHECK_MSG(carry == 0, "per-lane transmission counter overflow");

    for (const NodeId v : csr_.out_neighbors(u)) {
      const LaneMask s = seen_[v];
      if (s == 0) {
        touched_.push_back(v);
      }
      twice_[v] = twice_[v] | (s & t);
      seen_[v] = s | t;
    }
  }

  // delivered = heard >= once, not >= twice, and was not itself
  // transmitting (a transmitter hears nothing in its slot).
  for (const NodeId v : touched_) {
    delivered_[v] = seen_[v] & ~twice_[v] & ~tx_[v];
  }
  proto.absorb(now_, delivered_, touched_);
  for (const NodeId v : touched_) {
    seen_[v] = 0;
    twice_[v] = 0;
    delivered_[v] = 0;
  }
  touched_.clear();

  ++now_;
}

std::uint64_t BatchSimulator::transmissions(std::size_t lane) const {
  RADIOCAST_CHECK_MSG(lane < kLanes, "lane index out of range");
  std::uint64_t count = 0;
  for (std::size_t p = 0; p < kTxPlanes; ++p) {
    count |= ((tx_planes_[p] >> lane) & 1U) << p;
  }
  return count;
}

}  // namespace radiocast::sim::batch
