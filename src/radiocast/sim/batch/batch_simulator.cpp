#include "radiocast/sim/batch/batch_simulator.hpp"

#include <utility>

#include "radiocast/common/check.hpp"
#include "radiocast/sim/batch/kernel_clones.hpp"

namespace radiocast::sim::batch {

BatchSimulator::BatchSimulator(const graph::Graph& g, std::size_t width)
    : BatchSimulator(graph::CsrTopology(g), width) {}

BatchSimulator::BatchSimulator(graph::CsrTopology csr, std::size_t width)
    : csr_(std::move(csr)),
      width_(width),
      tx_(csr_.node_count() * width, 0),
      seen_(csr_.node_count() * width, 0),
      twice_(csr_.node_count() * width, 0),
      delivered_(csr_.node_count() * width, 0),
      dirty_(csr_.node_count(), 0),
      cand_(width, 0),
      tx_acc16_(width * kTxAccGroups, 0),
      tx_counts_(width * kLanes, 0) {
  RADIOCAST_CHECK_MSG(lane_width_supported(width), "unsupported lane width");
  touched_.reserve(csr_.node_count());
}

/// The width-templated step kernel. A friend struct (rather than a member
/// template) because the ISA-cloned wrappers below are free functions:
/// GCC does not clone templates, so each wrapper is a plain function the
/// kernel body is force-inlined into, picking up the clone's ISA.
struct BatchKernels {
  /// Widens one slot's byte-lane tally into the persistent u16 tier and
  /// counts the flush toward the spill budget (see the tier comment in
  /// the header). Bytes 2m / 2m+1 of slot group g are lanes 16m + g and
  /// 16m + 8 + g, i.e. u16 groups g and g + 8.
  template <std::size_t W>
  RADIOCAST_ALWAYS_INLINE static void flush_tx(BatchSimulator& s,
                                               std::uint64_t* sacc) {
    constexpr std::uint64_t kEvenBytes = 0x00FF'00FF'00FF'00FFULL;
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t* const acc =
          s.tx_acc16_.data() + w * BatchSimulator::kTxAccGroups;
      std::uint64_t* const a = sacc + w * 8;
      for (std::size_t g = 0; g < 8; ++g) {
        acc[g] += a[g] & kEvenBytes;
        acc[g + 8] += (a[g] >> 8) & kEvenBytes;
        a[g] = 0;
      }
    }
    if (++s.tx_flushes_ == BatchSimulator::kTxSpillAt) {
      s.spill_tx_counts();
    }
  }

  template <std::size_t W>
  RADIOCAST_ALWAYS_INLINE static void fold(
      BatchSimulator& s, std::span<const LaneMask> alive) {
    const std::size_t n = s.csr_.node_count();
    const LaneMask* const tx = s.tx_.data();
    LaneMask* const seen = s.seen_.data();
    LaneMask* const twice = s.twice_.data();
    LaneMask* const delivered = s.delivered_.data();
    std::uint8_t* const dirty = s.dirty_.data();

    // This slot's transmission tally, byte lanes on the stack: byte j of
    // sacc[w * 8 + g] counts lane 8j + g of word w. Flushed to the u16
    // tier at the end of the slot, and early every 255 transmitters so
    // no byte lane can saturate.
    constexpr std::uint64_t kByteLanes01 = 0x0101'0101'0101'0101ULL;
    std::uint64_t sacc[W * 8] = {};
    std::uint32_t tallied = 0;

    // Fold every transmitter into its out-neighbors' carry-save
    // accumulators. A receiver enters touched_ exactly once, when its
    // dirty flag flips, and its seen/twice words are initialized right
    // there — stale values from earlier slots are never read, so there
    // is no O(n) reset afterwards.
    for (NodeId u = 0; u < n; ++u) {
      const LaneMask* const tu = tx + std::size_t{u} * W;
      LaneMask any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        any |= tu[w];
      }
      if (any == 0) {
        continue;
      }

      // Count this transmitter: 8 branchless shift/and/adds per word in
      // place of the old bit-plane ripple, whose data-dependent carry
      // loop (max length across 64 lanes) cost a multiple of that.
      for (std::size_t w = 0; w < W; ++w) {
        const LaneMask m = tu[w];
        if (m == 0) {
          continue;
        }
        std::uint64_t* const a = sacc + w * 8;
        for (std::size_t g = 0; g < 8; ++g) {
          a[g] += (m >> g) & kByteLanes01;
        }
      }
      if (++tallied == BatchSimulator::kTxSpillAt) {
        flush_tx<W>(s, sacc);
        tallied = 0;
      }

      for (const NodeId v : s.csr_.out_neighbors(u)) {
        LaneMask* const sv = seen + std::size_t{v} * W;
        LaneMask* const tw = twice + std::size_t{v} * W;
        if (dirty[v] == 0) {
          dirty[v] = 1;
          s.touched_.push_back(v);
          for (std::size_t w = 0; w < W; ++w) {
            sv[w] = tu[w];
            tw[w] = 0;
          }
        } else {
          for (std::size_t w = 0; w < W; ++w) {
            tw[w] |= sv[w] & tu[w];
            sv[w] |= tu[w];
          }
        }
      }
    }
    if (tallied != 0) {
      flush_tx<W>(s, sacc);
    }

    // delivered = heard >= once, not >= twice, was not itself
    // transmitting (a transmitter hears nothing in its slot), and — when
    // faults are in play — alive (a dead node receives nothing).
    if (alive.empty()) {
      for (const NodeId v : s.touched_) {
        const std::size_t i = std::size_t{v} * W;
        for (std::size_t w = 0; w < W; ++w) {
          delivered[i + w] = seen[i + w] & ~twice[i + w] & ~tx[i + w];
        }
      }
    } else {
      const LaneMask* const al = alive.data();
      for (const NodeId v : s.touched_) {
        const std::size_t i = std::size_t{v} * W;
        for (std::size_t w = 0; w < W; ++w) {
          delivered[i + w] =
              seen[i + w] & ~twice[i + w] & ~tx[i + w] & al[i + w];
        }
      }
    }
  }
};

namespace {

RADIOCAST_TARGET_CLONES
void fold_lanes_w1(BatchSimulator& s, std::span<const LaneMask> alive) {
  BatchKernels::fold<1>(s, alive);
}

RADIOCAST_TARGET_CLONES
void fold_lanes_w4(BatchSimulator& s, std::span<const LaneMask> alive) {
  BatchKernels::fold<4>(s, alive);
}

RADIOCAST_TARGET_CLONES
void fold_lanes_w8(BatchSimulator& s, std::span<const LaneMask> alive) {
  BatchKernels::fold<8>(s, alive);
}

}  // namespace

void BatchSimulator::step(BatchedProtocol& proto,
                          std::span<const LaneMask> lanes,
                          BatchFaultHook* fault) {
  RADIOCAST_CHECK_MSG(lanes.size() == width_,
                      "engine lane mask count must match width");
  std::span<const LaneMask> alive{};
  if (fault != nullptr) {
    fault->begin_slot(now_);
    alive = fault->alive();
    RADIOCAST_CHECK_MSG(alive.empty() || alive.size() == tx_.size(),
                        "alive plane count must match node count * width");
  }

  proto.emit(now_, lanes, alive, tx_);
  if (!alive.empty()) {
    // Well-behaved protocols already silence dead lanes (retired state);
    // the engine masks anyway so liveness is a guarantee, not an ask.
    for (std::size_t i = 0; i < tx_.size(); ++i) {
      tx_[i] &= alive[i];
    }
  }

  switch (width_) {
    case 1:
      fold_lanes_w1(*this, alive);
      break;
    case 4:
      fold_lanes_w4(*this, alive);
      break;
    default:
      fold_lanes_w8(*this, alive);
      break;
  }

  if (fault != nullptr) {
    resolve_faults(*fault);
  }

  proto.absorb(now_, delivered_, touched_);
  // seen_/twice_/delivered_ stay stale: the fold re-initializes a
  // receiver's words on first touch, and nothing reads an untouched
  // node's words.
  for (const NodeId v : touched_) {
    dirty_[v] = 0;
  }
  touched_.clear();

  ++now_;
}

void BatchSimulator::resolve_faults(BatchFaultHook& fault) {
  // Reactive jammers key on "some delivery is about to happen in this
  // lane": hand the hook the per-word candidate OR before the
  // per-receiver fates are resolved.
  for (std::size_t w = 0; w < width_; ++w) {
    cand_[w] = 0;
  }
  for (const NodeId v : touched_) {
    const std::size_t i = std::size_t{v} * width_;
    for (std::size_t w = 0; w < width_; ++w) {
      cand_[w] |= delivered_[i + w];
    }
  }
  fault.resolve_jam(now_, cand_);
  for (const NodeId v : touched_) {
    const std::size_t i = std::size_t{v} * width_;
    for (std::size_t w = 0; w < width_; ++w) {
      const LaneMask c = delivered_[i + w];
      if (c != 0) {
        delivered_[i + w] = fault.deliver_mask(now_, v, w, c);
      }
    }
  }
}

void BatchSimulator::spill_tx_counts() {
  for (std::size_t w = 0; w < width_; ++w) {
    std::uint64_t* const acc = tx_acc16_.data() + w * kTxAccGroups;
    std::uint64_t* const counts = tx_counts_.data() + w * kLanes;
    for (std::size_t g = 0; g < kTxAccGroups; ++g) {
      std::uint64_t v = acc[g];
      acc[g] = 0;
      for (std::size_t m = 0; v != 0 && m < kLanes / kTxAccGroups; ++m) {
        counts[m * kTxAccGroups + g] += v & 0xFFFFU;
        v >>= 16;
      }
    }
  }
  tx_flushes_ = 0;
}

std::uint64_t BatchSimulator::transmissions(std::size_t word,
                                            std::size_t lane) const {
  RADIOCAST_CHECK_MSG(word < width_, "lane word out of range");
  RADIOCAST_CHECK_MSG(lane < kLanes, "lane index out of range");
  const std::uint64_t pending =
      (tx_acc16_[word * kTxAccGroups + (lane % kTxAccGroups)] >>
       (16 * (lane / kTxAccGroups))) &
      0xFFFFU;
  return tx_counts_[word * kLanes + lane] + pending;
}

}  // namespace radiocast::sim::batch
