// The bit-parallel batched slot engine: 64 Monte-Carlo trials per word.
//
// A scalar Simulator steps one trial at a time; a BatchSimulator steps a
// *lane block* of 64 independent trials of the same protocol on the same
// topology simultaneously. Per-node state is structure-of-arrays: every
// node owns one std::uint64_t per state kind, and bit k of each word
// belongs to trial lane k. All 64 lanes share the slot loop, the CSR
// neighbor walks, and the cache lines — the per-slot cost is the same as
// one scalar trial's, amortized 64 ways.
//
// The radio semantics ("receive iff exactly one in-neighbor transmits")
// reduce to a two-word carry-save accumulator per receiver:
//
//   twice |= seen & tx;   // lanes hearing a 2nd transmitter -> collision
//   seen  |= tx;          // lanes hearing a 1st (or later) transmitter
//
// After all transmitters are folded in, `seen & ~twice` is exactly the
// "heard exactly one" lane set, and masking with ~tx[v] removes lanes in
// which v itself transmitted (a transmitter hears nothing). Two bitwise
// ops per (transmitter, out-neighbor) arc resolve the rule for all 64
// trials at once.
//
// What the batch engine deliberately does NOT support — faults, collision
// detection, per-slot traces, topology events — is what keeps every lane
// a pure function of (seed, lane, slot, node); harness::run_bgi_broadcast_
// trials falls back to the scalar Simulator whenever any of those is
// requested (see harness/batch_runner.hpp and docs/PARALLELISM.md).
//
// Determinism: a BatchSimulator never draws randomness itself. Protocols
// draw counter-based coins (rng::CounterRng) keyed on (seed, lane block,
// slot, node), so lane k of block b is bit-identical to scalar trial
// 64*b + k replayed through the counter-RNG protocol variant — the
// differential suite (tests/test_batch.cpp) pins this down outcome by
// outcome.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/graph/csr.hpp"
#include "radiocast/graph/graph.hpp"

namespace radiocast::sim::batch {

/// One bit per trial lane; bit k belongs to lane k of the block.
using LaneMask = std::uint64_t;

/// Lanes per block == bits per machine word.
inline constexpr std::size_t kLanes = 64;

/// All 64 lanes.
inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// The first `count` lanes (count <= 64); ragged tail blocks use this.
constexpr LaneMask lane_prefix(std::size_t count) noexcept {
  return count >= kLanes ? kAllLanes : (LaneMask{1} << count) - 1;
}

/// A protocol that can advance 64 trial lanes of every node at once.
///
/// Contract per slot: the engine calls emit(), resolves the exactly-one
/// rule, then calls absorb() with the delivered lanes. Implementations
/// keep all per-node state as LaneMask SoA (see proto/broadcast_batch).
class BatchedProtocol {
 public:
  virtual ~BatchedProtocol() = default;

  /// Writes tx[v] = lanes in which node v transmits at `now`, for every
  /// node (stale entries must be overwritten). `lanes` is the engine's
  /// still-active lane set; bits outside it must be 0 in tx so retired
  /// lanes stop contributing work and statistics.
  virtual void emit(Slot now, LaneMask lanes, std::span<LaneMask> tx) = 0;

  /// delivered[v] = lanes in which v heard exactly one in-neighbor at
  /// `now`. Only entries for nodes in `touched` are meaningful (all other
  /// nodes heard nothing in every lane).
  virtual void absorb(Slot now, std::span<const LaneMask> delivered,
                      std::span<const NodeId> touched) = 0;
};

class BatchSimulator {
 public:
  /// Snapshots `g` (the lanes share one immutable topology).
  explicit BatchSimulator(const graph::Graph& g);

  /// Adopts an existing CSR snapshot (no Graph needed).
  explicit BatchSimulator(graph::CsrTopology csr);

  std::size_t node_count() const noexcept { return csr_.node_count(); }
  Slot now() const noexcept { return now_; }

  /// Runs one slot for the lanes in `lanes`: asks `proto` to emit
  /// transmit masks, resolves the exactly-one rule for all lanes via the
  /// carry-save accumulator, then hands the delivered masks back through
  /// absorb(). Advances the clock.
  void step(BatchedProtocol& proto, LaneMask lanes);

  /// Transmissions accumulated in `lane` over all step() calls in which
  /// the lane was active (bit-sliced counters, folded here on demand).
  std::uint64_t transmissions(std::size_t lane) const;

 private:
  graph::CsrTopology csr_;
  Slot now_ = 0;

  // Per-node lane masks, reused across slots. seen_/twice_/delivered_
  // are all-zero between slots except during step() (touched_ tracks
  // exactly which entries were dirtied, so resets are O(touched)).
  std::vector<LaneMask> tx_;
  std::vector<LaneMask> seen_;
  std::vector<LaneMask> twice_;
  std::vector<LaneMask> delivered_;
  std::vector<NodeId> touched_;

  /// Bit-sliced per-lane transmission totals: plane p holds bit p of each
  /// lane's count. A transmitter's tx word is folded in by ripple-carry
  /// (amortized ~2 word ops), so counting never loops over lanes.
  static constexpr std::size_t kTxPlanes = 48;
  std::array<LaneMask, kTxPlanes> tx_planes_{};
};

}  // namespace radiocast::sim::batch
