// The bit-parallel batched slot engine: 64·W Monte-Carlo trials per step.
//
// A scalar Simulator steps one trial at a time; a BatchSimulator steps a
// *lane block* of 64 × width independent trials of the same protocol on
// the same topology simultaneously. Per-node state is structure-of-arrays
// and node-major: every node owns `width` contiguous std::uint64_t words
// per state kind (node v's word w at index v * width + w), and bit k of
// word w belongs to trial lane k of counter-RNG block first_block + w.
// All lanes share the slot loop, the CSR neighbor walks, and the cache
// lines — and because a node's words are contiguous, the inner per-word
// loops are fixed-trip and auto-vectorize: the step kernel is compiled
// once per supported width and (on x86-64 ELF) cloned for AVX2/AVX-512
// via function multiversioning, so W = 4 folds a node's lanes in one
// 256-bit op and W = 8 in one 512-bit op.
//
// The radio semantics ("receive iff exactly one in-neighbor transmits")
// reduce to a two-word carry-save accumulator per receiver and word:
//
//   twice |= seen & tx;   // lanes hearing a 2nd transmitter -> collision
//   seen  |= tx;          // lanes hearing a 1st (or later) transmitter
//
// After all transmitters are folded in, `seen & ~twice` is exactly the
// "heard exactly one" lane set, and masking with ~tx[v] removes lanes in
// which v itself transmitted (a transmitter hears nothing).
//
// Faults run as lane masks through the BatchFaultHook seam: the hook owns
// per-lane crash planes (alive()), jammer planes, and loss masks, all
// keyed on the same counter-RNG draws the scalar replay consumes — the
// engine itself never draws randomness and never includes a fault header.
// What stays unsupported is anything that mutates the shared topology
// (scripted edge events) plus collision detection and per-slot traces;
// harness::run_bgi_broadcast_trials falls back to the scalar Simulator
// for those (see harness/batch_runner.hpp and docs/PARALLELISM.md).
//
// Determinism: lane k of word w of a simulator started at first_block b0
// is bit-identical to scalar trial 64*(b0+w) + k replayed through the
// counter-RNG protocol variant, for every width — the trial <-> (block,
// lane) mapping never depends on W, so width is a throughput knob, not
// part of the determinism contract. The differential suite
// (tests/test_batch.cpp) pins this down outcome by outcome.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/graph/csr.hpp"
#include "radiocast/graph/graph.hpp"

namespace radiocast::sim::batch {

/// One bit per trial lane; bit k belongs to lane k of a block.
using LaneMask = std::uint64_t;

/// Lanes per block == bits per machine word.
inline constexpr std::size_t kLanes = 64;

/// All 64 lanes.
inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// Largest supported lane width (words per block row).
inline constexpr std::size_t kMaxLaneWidth = 8;

/// Supported widths: 1 (64 trials), 4 (256, one AVX2 vector), 8 (512,
/// one AVX-512 vector). The step kernel is instantiated per width.
constexpr bool lane_width_supported(std::size_t width) noexcept {
  return width == 1 || width == 4 || width == 8;
}

/// The first `count` lanes (count <= 64); ragged tail blocks use this.
constexpr LaneMask lane_prefix(std::size_t count) noexcept {
  return count >= kLanes ? kAllLanes : (LaneMask{1} << count) - 1;
}

/// A protocol that can advance 64·width trial lanes of every node at
/// once.
///
/// Contract per slot: the engine calls emit(), resolves the exactly-one
/// rule, then calls absorb() with the delivered lanes. Implementations
/// keep all per-node state as node-major LaneMask SoA, width words per
/// node (see proto/broadcast_batch).
class BatchedProtocol {
 public:
  virtual ~BatchedProtocol() = default;

  /// Writes tx[v * width + w] = lanes in which node v transmits at `now`,
  /// for every node (stale entries must be overwritten). `lanes[w]` is
  /// the engine's still-active lane set of word w; bits outside it must
  /// be 0 in tx so retired lanes stop contributing work and statistics.
  /// `alive` is empty (no faults) or the fault hook's per-node liveness
  /// planes — a protocol must neither transmit nor credit progress in
  /// dead lanes (the engine additionally masks tx defensively).
  virtual void emit(Slot now, std::span<const LaneMask> lanes,
                    std::span<const LaneMask> alive,
                    std::span<LaneMask> tx) = 0;

  /// delivered[v * width + w] = lanes in which v heard exactly one
  /// in-neighbor at `now` (post fault resolution). Only entries for nodes
  /// in `touched` are meaningful (all other nodes heard nothing in every
  /// lane).
  virtual void absorb(Slot now, std::span<const LaneMask> delivered,
                      std::span<const NodeId> touched) = 0;
};

/// Per-lane fault resolution, implemented by fault::LaneFaultPlan. The
/// engine drives it in scalar Simulator order: events/jam planes at slot
/// begin, then per-receiver delivery fates for exactly-one candidates.
class BatchFaultHook {
 public:
  virtual ~BatchFaultHook() = default;

  /// Called at the top of every slot, before the protocol is polled:
  /// applies due crash/recovery events and resolves the slot's
  /// non-reactive jammer planes.
  virtual void begin_slot(Slot now) = 0;

  /// Per-node liveness planes, node-major (node_count * width words), or
  /// an empty span when no crash faults are configured. Valid until the
  /// next begin_slot().
  virtual std::span<const LaneMask> alive() const = 0;

  /// Called once per slot after the exactly-one rule, with candidates[w]
  /// = the OR over all receivers of word w's delivered lanes: resolves
  /// reactive jammers (which fire only on lanes where some delivery is
  /// about to happen) and spends their budgets.
  virtual void resolve_jam(Slot now,
                           std::span<const LaneMask> candidates) = 0;

  /// Resolves receiver v's word-w candidates (nonzero): returns the lanes
  /// whose delivery survives jamming and loss. Called once per touched
  /// (receiver, word) pair, in increasing receiver id — the same order
  /// the scalar engine resolves deliveries in.
  virtual LaneMask deliver_mask(Slot now, NodeId v, std::size_t word,
                                LaneMask candidates) = 0;
};

class BatchSimulator {
 public:
  /// Snapshots `g` (the lanes share one immutable topology).
  explicit BatchSimulator(const graph::Graph& g, std::size_t width = 1);

  /// Adopts an existing CSR snapshot (no Graph needed).
  explicit BatchSimulator(graph::CsrTopology csr, std::size_t width = 1);

  std::size_t node_count() const noexcept { return csr_.node_count(); }
  std::size_t width() const noexcept { return width_; }
  Slot now() const noexcept { return now_; }

  /// Runs one slot for the lanes in `lanes` (width words): asks `proto`
  /// to emit transmit masks, resolves the exactly-one rule for all lanes
  /// via the carry-save accumulator, applies `fault` (may be null), then
  /// hands the delivered masks back through absorb(). Advances the clock.
  void step(BatchedProtocol& proto, std::span<const LaneMask> lanes,
            BatchFaultHook* fault = nullptr);

  /// Transmissions accumulated in lane `lane` of word `word` over all
  /// step() calls in which the lane was active (bit-sliced counters,
  /// folded here on demand).
  std::uint64_t transmissions(std::size_t word, std::size_t lane) const;

 private:
  friend struct BatchKernels;

  void resolve_faults(BatchFaultHook& fault);

  graph::CsrTopology csr_;
  std::size_t width_;
  Slot now_ = 0;

  // Per-(node, word) lane masks, node-major, reused across slots.
  // seen_/twice_/delivered_ carry stale values between slots: the fold
  // initializes a receiver's words when its dirty flag flips (first
  // transmitter into it this slot), and every later read loops over
  // touched_ only, so no per-slot reset pass is needed.
  std::vector<LaneMask> tx_;
  std::vector<LaneMask> seen_;
  std::vector<LaneMask> twice_;
  std::vector<LaneMask> delivered_;
  std::vector<NodeId> touched_;
  std::vector<std::uint8_t> dirty_;

  /// Scratch for resolve_faults: candidates[w] across all receivers.
  std::vector<LaneMask> cand_;

  /// Per-lane transmission totals, kept in three tiers so the hot fold
  /// never walks a data-dependent carry chain (the old bit-plane ripple
  /// cost ~7 dependent iterations per transmitter — the max carry length
  /// across 64 lanes defeats the usual amortization):
  ///
  ///   1. The fold kernel tallies one slot into stack-local byte lanes
  ///      (byte j of group g = lane 8j + g): 8 branchless
  ///      shift/and/adds per transmitting word.
  ///   2. flush_tx widens them into tx_acc16_ once per slot (u16 lanes;
  ///      group G = lane & 15, u16 slot lane >> 4), plus mid-slot
  ///      whenever 255 transmitters have been tallied (a byte lane gains
  ///      at most 1 per transmitter, so it can never saturate).
  ///   3. spill_tx_counts() drains tx_acc16_ into tx_counts_ after
  ///      kTxSpillAt flushes — a u16 lane gains at most 255 per flush,
  ///      so 255 flushes stay below 65535.
  ///
  /// transmissions() sums tiers 3 and 2; tier 1 never outlives step().
  static constexpr std::size_t kTxAccGroups = 16;
  static constexpr std::uint32_t kTxSpillAt = 255;
  void spill_tx_counts();
  std::vector<std::uint64_t> tx_acc16_;
  std::vector<std::uint64_t> tx_counts_;
  std::uint32_t tx_flushes_ = 0;
};

}  // namespace radiocast::sim::batch
