// Function-multiversioning macros for the batched engine's hot kernels.
//
// RADIOCAST_TARGET_CLONES compiles the same portable C++ body once per
// ISA level and dispatches through an ifunc at load time, so the default
// build stays runnable on any x86-64 while hosts with AVX2 / AVX-512 fold
// a node's 4/8 lane words in one vector op. The clone targets are the
// x86-64 micro-architecture levels rather than single features: v4 brings
// AVX-512F/DQ (vpmullq — the 64-bit multiplies inside mix64 vectorize as
// one instruction), v3 brings AVX2. Requires ELF ifunc support;
// everywhere else the macro compiles to nothing and the "default" body is
// the only one.
//
// GCC does not clone templates, so width-templated kernel bodies are
// force-inlined (RADIOCAST_ALWAYS_INLINE) into plain cloned free
// functions — see BatchKernels in batch_simulator.cpp for the scheme.
//
// ThreadSanitizer cannot run ifunc resolvers (they fire during
// relocation, before the TSan runtime is initialized — any instrumented
// binary segfaults on startup), so TSan builds compile only the default
// body. TSan validates interleavings, not throughput; ASan/UBSan are
// unaffected and keep the clones.
//
// NOTE: the kernel translation units that use these macros are compiled
// at -O3 (see src/CMakeLists.txt): GCC 12's -O2 vectorizer cost model
// refuses the mix64 multiply chains that are exactly the point of the
// wider clones.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define RADIOCAST_NO_TARGET_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RADIOCAST_NO_TARGET_CLONES 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && \
    !defined(RADIOCAST_NO_TARGET_CLONES) && \
    (defined(__clang__) ? __clang_major__ >= 14 : defined(__GNUC__))
#define RADIOCAST_TARGET_CLONES \
  __attribute__(( \
      target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define RADIOCAST_TARGET_CLONES
#endif

#if defined(__GNUC__)
#define RADIOCAST_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define RADIOCAST_ALWAYS_INLINE inline
#endif
