// Omniscient observation of a run. The trace is the experimenter's view —
// protocols never see it. Aggregate counters are always maintained;
// per-slot records are optional (they cost memory proportional to run
// length) and are enabled through SimOptions::trace_slots.
#pragma once

#include <cstdint>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/sim/message.hpp"

namespace radiocast::sim {

/// One delivered message: `receiver` heard `sender` in some slot.
struct Delivery {
  NodeId receiver = kNoNode;
  NodeId sender = kNoNode;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// Full record of a single slot (only with trace_slots enabled).
struct SlotRecord {
  Slot slot = 0;
  std::vector<NodeId> transmitters;  ///< sorted
  std::vector<Delivery> deliveries;
  std::vector<NodeId> collision_receivers;  ///< receivers with >= 2 senders

  friend bool operator==(const SlotRecord&, const SlotRecord&) = default;
};

class Trace {
 public:
  explicit Trace(std::size_t n, bool record_slots);

  /// Publishes aggregate totals (slots, transmissions, deliveries,
  /// collisions) into the global obs::metrics() registry when it is
  /// enabled — once, at end of life, so the per-slot path carries no
  /// metrics cost. Copying a Trace is forbidden precisely so totals are
  /// never published twice.
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;
  Trace(Trace&&) noexcept;
  Trace& operator=(Trace&&) noexcept;

  // --- observation API ---------------------------------------------------

  /// Slot in which `v` first received any message; kNever if it has not.
  Slot first_delivery(NodeId v) const;

  /// True iff every node in `nodes` has received at least one message.
  bool all_delivered(const std::vector<NodeId>& nodes) const;

  /// Latest first_delivery among `nodes`; kNever if any has not received.
  Slot last_first_delivery(const std::vector<NodeId>& nodes) const;

  /// Number of slots recorded (begin_slot calls), i.e. slots simulated.
  std::uint64_t total_slots() const noexcept { return total_slots_; }
  std::uint64_t total_transmissions() const noexcept { return total_tx_; }
  std::uint64_t total_deliveries() const noexcept { return total_rx_; }
  std::uint64_t total_collisions() const noexcept { return total_coll_; }
  std::uint64_t transmissions_of(NodeId v) const;
  std::uint64_t deliveries_to(NodeId v) const;

  bool records_slots() const noexcept { return record_slots_; }
  const std::vector<SlotRecord>& slots() const noexcept { return slots_; }

  // --- recording API (called by the Simulator) ---------------------------

  void begin_slot(Slot now);
  void record_transmission(NodeId sender);
  void record_delivery(Slot now, NodeId receiver, NodeId sender);
  void record_collision(NodeId receiver);

 private:
  bool record_slots_;
  std::vector<Slot> first_delivery_;
  std::vector<std::uint64_t> tx_count_;
  std::vector<std::uint64_t> rx_count_;
  std::uint64_t total_slots_ = 0;
  std::uint64_t total_tx_ = 0;
  std::uint64_t total_rx_ = 0;
  std::uint64_t total_coll_ = 0;
  std::vector<SlotRecord> slots_;
};

}  // namespace radiocast::sim
