// The unit of radio communication.
//
// The model (paper §1) treats message contents abstractly: a slot delivers
// whatever the unique transmitter sent. We carry an origin id, a small
// protocol-defined tag, and an optional word payload (the DFS token uses it
// for its visited list; BFS for the root's start time; broadcast leaves it
// empty).
#pragma once

#include <cstdint>
#include <vector>

#include "radiocast/common/types.hpp"

namespace radiocast::sim {

struct Message {
  /// The node that originated the payload (e.g. the broadcast source).
  NodeId origin = kNoNode;
  /// Protocol-defined discriminator (e.g. message id, token type).
  std::uint64_t tag = 0;
  /// Optional protocol-defined payload words.
  std::vector<std::uint64_t> data;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace radiocast::sim
