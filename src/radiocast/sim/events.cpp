#include "radiocast/sim/events.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::sim {

void EventQueue::push(TopologyEvent e) {
  RADIOCAST_CHECK_MSG(next_ == 0 || events_.empty() ||
                          e.at >= events_[next_ - 1].at,
                      "cannot schedule an event in the past");
  if (!events_.empty() && e.at < events_.back().at) {
    sorted_ = false;
  }
  events_.push_back(e);
}

void EventQueue::ensure_sorted() {
  if (!sorted_) {
    std::stable_sort(events_.begin() + static_cast<std::ptrdiff_t>(next_),
                     events_.end(),
                     [](const TopologyEvent& a, const TopologyEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
}

std::vector<TopologyEvent> EventQueue::pop_due(Slot now) {
  ensure_sorted();
  std::vector<TopologyEvent> due;
  while (next_ < events_.size() && events_[next_].at <= now) {
    due.push_back(events_[next_]);
    ++next_;
  }
  return due;
}

}  // namespace radiocast::sim
