#include "radiocast/sim/events.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::sim {

void EventQueue::push(TopologyEvent e) {
  // Guard against scheduling in the past relative to the queue's clock.
  // `last_popped_at_` is the largest `now` any pop_due has seen — NOT the
  // time of the last popped event: after unsorted pushes, the slot before
  // `next_` can hold an event earlier than the pop's `now`, and comparing
  // against it used to let a stale event slip through and be applied (or
  // reordered) slots later.
  RADIOCAST_CHECK_MSG(e.at >= last_popped_at_,
                      "cannot schedule an event in the past");
  if (!events_.empty() && e.at < events_.back().at) {
    sorted_ = false;
  }
  events_.push_back(e);
}

void EventQueue::ensure_sorted() {
  if (!sorted_) {
    std::stable_sort(events_.begin() + static_cast<std::ptrdiff_t>(next_),
                     events_.end(),
                     [](const TopologyEvent& a, const TopologyEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
}

std::vector<TopologyEvent> EventQueue::pop_due(Slot now) {
  ensure_sorted();
  last_popped_at_ = std::max(last_popped_at_, now);
  std::vector<TopologyEvent> due;
  while (next_ < events_.size() && events_[next_].at <= now) {
    due.push_back(events_[next_]);
    ++next_;
  }
  return due;
}

}  // namespace radiocast::sim
