// The per-node protocol interface.
//
// Each slot the simulator asks every live node for an Action (transmit,
// receive, or idle), resolves the radio semantics, then delivers receive /
// collision callbacks. Protocols are synchronous state machines; they see
// the global clock through NodeContext::now() (the model is synchronous, so
// a common clock is part of the model, cf. the paper's `Time mod k` tests).
#pragma once

#include <span>
#include <utility>

#include "radiocast/common/types.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/sim/message.hpp"

namespace radiocast::sim {

enum class ActionKind : std::uint8_t {
  kIdle,     ///< neither transmits nor listens this slot
  kReceive,  ///< listens; hears a message iff exactly one in-neighbor sends
  kTransmit  ///< sends; cannot hear anything this slot
};

struct Action {
  ActionKind kind = ActionKind::kIdle;
  Message message;  ///< meaningful only when kind == kTransmit

  static Action idle() noexcept { return {}; }
  static Action receive() noexcept { return {ActionKind::kReceive, {}}; }
  static Action transmit(Message m) {
    return {ActionKind::kTransmit, std::move(m)};
  }
};

/// Everything a node may legitimately see, bundled per callback.
///
/// Which accessors a protocol uses determines which model it lives in:
/// randomized BGI protocols use only id/now/rng (topology-oblivious);
/// the deterministic protocols of §3 additionally use neighbors() — the
/// paper's Definition 1(4) gives them their own ID plus neighbor IDs.
class NodeContext {
 public:
  NodeContext(NodeId id, Slot now, rng::Rng& rng,
              std::span<const NodeId> neighbors_out,
              std::span<const NodeId> neighbors_in,
              bool collision_detection) noexcept
      : id_(id),
        now_(now),
        rng_(rng),
        neighbors_out_(neighbors_out),
        neighbors_in_(neighbors_in),
        collision_detection_(collision_detection) {}

  NodeId id() const noexcept { return id_; }
  Slot now() const noexcept { return now_; }
  rng::Rng& rng() noexcept { return rng_; }

  /// IDs of nodes that can hear this node (sorted).
  std::span<const NodeId> neighbors_out() const noexcept {
    return neighbors_out_;
  }
  /// IDs of nodes this node can hear (sorted). Equal to neighbors_out() in
  /// undirected networks.
  std::span<const NodeId> neighbors_in() const noexcept {
    return neighbors_in_;
  }

  bool collision_detection() const noexcept { return collision_detection_; }

 private:
  NodeId id_;
  Slot now_;
  rng::Rng& rng_;
  std::span<const NodeId> neighbors_out_;
  std::span<const NodeId> neighbors_in_;
  bool collision_detection_;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once, before slot 0 actions are requested.
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// Decide this slot's action. Called exactly once per slot per live node.
  virtual Action on_slot(NodeContext& ctx) = 0;

  /// Exactly one in-neighbor transmitted while this node was receiving.
  virtual void on_receive(NodeContext& /*ctx*/, const Message& /*m*/) {}

  /// Two or more in-neighbors transmitted while this node was receiving.
  /// Only ever called when the simulator runs with collision detection
  /// enabled; in the default (no-CD) model a collision is indistinguishable
  /// from silence and no callback fires.
  virtual void on_collision(NodeContext& /*ctx*/) {}

  /// True once this node's protocol will never transmit again. Used by the
  /// harness's run-to-quiescence helper; has no effect on the semantics.
  virtual bool terminated() const { return false; }

  /// Optional engine fast-path: the dormancy promise. A return value W
  /// promises that every on_slot() at a slot strictly before W would
  /// return Action::receive() without mutating protocol state and without
  /// drawing from the node's rng — and that the protocol behaves
  /// identically whether or not those polls actually happen. An engine may
  /// then skip the polls outright and treat the node as a plain receiver
  /// until slot W, or until an on_receive()/on_collision() callback fires
  /// for the node, whichever comes first (the sharded engine does; see
  /// docs/PARALLELISM.md) — by the promise the trajectory is bit-identical
  /// to polling every slot. kNever means dormant indefinitely: only a
  /// callback can make the node's behaviour change. The default (0) makes
  /// no promise, which is correct for every protocol; only override this
  /// where the promise provably holds, e.g. a node waiting to be informed,
  /// one listening out the tail of a Decay phase, or one that has finished
  /// transmitting for good.
  virtual Slot dormant_until() const { return 0; }
};

}  // namespace radiocast::sim
