// The simulator's fault-injection extension point.
//
// sim stays the bottom of the stack: it defines this abstract hook and
// radiocast::fault implements it (fault/plan.hpp), so the slot engine
// never includes a fault header. A Simulator with options.fault == nullptr
// pays exactly one pointer test per slot and one per delivery-candidate —
// nothing else — which is what keeps the disabled-fault hot path inside
// run-to-run noise (see docs/FAULTS.md for the measurement).
//
// Channel semantics of the three fates (paper §1: a receiver cannot tell
// silence from collision):
//   kDeliver — the message arrives; normal on_receive.
//   kDrop    — erasure (packet loss): the receiver hears *silence*. With
//              collision detection enabled nothing fires either — loss is
//              indistinguishable from "nobody transmitted".
//   kJam     — noise (jamming): the receiver hears a *collision*. Without
//              CD that is silence too; with CD, on_collision fires (subject
//              to SimOptions::cd_false_negative_rate, like any collision).
#pragma once

#include <cstdint>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/sim/events.hpp"

namespace radiocast::sim {

enum class DeliveryFate : std::uint8_t { kDeliver, kDrop, kJam };

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called once per slot, after due topology events were applied and
  /// before any delivery is resolved. `dead_nodes` is the number of
  /// currently crashed nodes (for the fault.crashed_node_slots counter).
  virtual void begin_slot(Slot now, std::size_t dead_nodes) = 0;

  /// Called for every would-be delivery — receiver `v` with *exactly one*
  /// transmitting in-neighbor `u` in slot `now`, in increasing receiver-id
  /// order. Never called for collisions (>= 2 transmitters), which are
  /// already noise. Must be deterministic given the hook's own seed and
  /// the call sequence; one Simulator calls it from a single thread.
  virtual DeliveryFate on_delivery(Slot now, NodeId u, NodeId v) = 0;

  /// Crash/recover (or any other) topology events the hook wants applied;
  /// drained once, when the Simulator the hook is attached to is
  /// constructed, into the network's event queue.
  virtual std::vector<TopologyEvent> scheduled_events() = 0;
};

}  // namespace radiocast::sim
