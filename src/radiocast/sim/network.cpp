#include "radiocast/sim/network.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::sim {

Network::Network(graph::Graph g)
    : graph_(std::move(g)),
      alive_(graph_.node_count(), 1),
      alive_count_(graph_.node_count()) {}

bool Network::is_alive(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  return alive_[v] != 0;
}

void Network::crash(NodeId v) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  if (alive_[v] != 0) {
    alive_[v] = 0;
    --alive_count_;
  }
}

void Network::recover(NodeId v) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  if (alive_[v] == 0) {
    alive_[v] = 1;
    ++alive_count_;
  }
}

std::size_t Network::apply_due_events(Slot now) {
  const auto due = events_.pop_due(now);
  for (const TopologyEvent& e : due) {
    apply(e);
  }
  return due.size();
}

void Network::apply(const TopologyEvent& e) {
  switch (e.kind) {
    case EventKind::kAddEdge:
      graph_.add_edge(e.u, e.v);
      break;
    case EventKind::kRemoveEdge:
      graph_.remove_edge(e.u, e.v);
      break;
    case EventKind::kAddArc:
      graph_.add_arc(e.u, e.v);
      break;
    case EventKind::kRemoveArc:
      graph_.remove_arc(e.u, e.v);
      break;
    case EventKind::kCrashNode:
      crash(e.u);
      break;
    case EventKind::kReviveNode:
    case EventKind::kRecoverNode:
      recover(e.u);
      break;
  }
}

}  // namespace radiocast::sim
