#include "radiocast/sim/trace.hpp"

#include <algorithm>
#include <utility>

#include "radiocast/common/check.hpp"
#include "radiocast/obs/metrics.hpp"

namespace radiocast::sim {

Trace::Trace(std::size_t n, bool record_slots)
    : record_slots_(record_slots),
      first_delivery_(n, kNever),
      tx_count_(n, 0),
      rx_count_(n, 0) {}

namespace {

/// End-of-life publication into the global registry: one enabled check
/// per Trace, nothing per slot. Totals accumulate across every simulator
/// a process runs (the parallel trial pool included — counters are
/// atomic), so a run record reports whole-run simulation volume.
void publish_totals(std::uint64_t slots, std::uint64_t tx, std::uint64_t rx,
                    std::uint64_t coll) {
  auto& registry = obs::metrics();
  if (!registry.enabled() || (slots | tx | rx | coll) == 0) {
    return;
  }
  registry.counter("sim.slots").add(slots);
  registry.counter("sim.transmissions").add(tx);
  registry.counter("sim.deliveries").add(rx);
  registry.counter("sim.collisions").add(coll);
}

}  // namespace

Trace::~Trace() {
  publish_totals(total_slots_, total_tx_, total_rx_, total_coll_);
}

Trace::Trace(Trace&& other) noexcept
    : record_slots_(other.record_slots_),
      first_delivery_(std::move(other.first_delivery_)),
      tx_count_(std::move(other.tx_count_)),
      rx_count_(std::move(other.rx_count_)),
      total_slots_(std::exchange(other.total_slots_, 0)),
      total_tx_(std::exchange(other.total_tx_, 0)),
      total_rx_(std::exchange(other.total_rx_, 0)),
      total_coll_(std::exchange(other.total_coll_, 0)),
      slots_(std::move(other.slots_)) {}

Trace& Trace::operator=(Trace&& other) noexcept {
  if (this != &other) {
    publish_totals(total_slots_, total_tx_, total_rx_, total_coll_);
    record_slots_ = other.record_slots_;
    first_delivery_ = std::move(other.first_delivery_);
    tx_count_ = std::move(other.tx_count_);
    rx_count_ = std::move(other.rx_count_);
    total_slots_ = std::exchange(other.total_slots_, 0);
    total_tx_ = std::exchange(other.total_tx_, 0);
    total_rx_ = std::exchange(other.total_rx_, 0);
    total_coll_ = std::exchange(other.total_coll_, 0);
    slots_ = std::move(other.slots_);
  }
  return *this;
}

Slot Trace::first_delivery(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < first_delivery_.size(), "node id out of range");
  return first_delivery_[v];
}

bool Trace::all_delivered(const std::vector<NodeId>& nodes) const {
  return std::ranges::all_of(
      nodes, [this](NodeId v) { return first_delivery(v) != kNever; });
}

Slot Trace::last_first_delivery(const std::vector<NodeId>& nodes) const {
  Slot worst = 0;
  for (const NodeId v : nodes) {
    const Slot s = first_delivery(v);
    if (s == kNever) {
      return kNever;
    }
    worst = std::max(worst, s);
  }
  return worst;
}

std::uint64_t Trace::transmissions_of(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < tx_count_.size(), "node id out of range");
  return tx_count_[v];
}

std::uint64_t Trace::deliveries_to(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < rx_count_.size(), "node id out of range");
  return rx_count_[v];
}

void Trace::begin_slot(Slot now) {
  ++total_slots_;
  if (record_slots_) {
    slots_.push_back(SlotRecord{now, {}, {}, {}});
  }
}

void Trace::record_transmission(NodeId sender) {
  ++tx_count_[sender];
  ++total_tx_;
  if (record_slots_) {
    slots_.back().transmitters.push_back(sender);
  }
}

void Trace::record_delivery(Slot now, NodeId receiver, NodeId sender) {
  ++rx_count_[receiver];
  ++total_rx_;
  first_delivery_[receiver] = std::min(first_delivery_[receiver], now);
  if (record_slots_) {
    slots_.back().deliveries.push_back(Delivery{receiver, sender});
  }
}

void Trace::record_collision(NodeId receiver) {
  ++total_coll_;
  if (record_slots_) {
    slots_.back().collision_receivers.push_back(receiver);
  }
}

}  // namespace radiocast::sim
