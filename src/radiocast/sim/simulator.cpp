#include "radiocast/sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "radiocast/sim/fault_hook.hpp"

namespace radiocast::sim {

Simulator::Simulator(graph::Graph g, SimOptions options)
    : network_(std::move(g)),
      options_(options),
      trace_(network_.node_count(), options.trace_slots),
      protocols_(network_.node_count()),
      csr_(network_.topology()),
      actions_(network_.node_count()),
      kind_(network_.node_count(),
            static_cast<std::uint8_t>(ActionKind::kIdle)),
      hear_count_(network_.node_count(), 0),
      heard_from_(network_.node_count(), kNoNode) {
  node_rngs_.reserve(network_.node_count());
  for (NodeId v = 0; v < network_.node_count(); ++v) {
    node_rngs_.emplace_back(options_.seed, /*stream=*/v);
  }
  transmitters_.reserve(network_.node_count());
  touched_.reserve(network_.node_count());
  if (options_.fault != nullptr) {
    for (const TopologyEvent& e : options_.fault->scheduled_events()) {
      network_.schedule(e);
    }
  }
}

void Simulator::set_protocol(NodeId v, std::unique_ptr<Protocol> p) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(!started_, "cannot replace protocols after start");
  RADIOCAST_CHECK_MSG(p != nullptr, "protocol must not be null");
  protocols_[v] = std::move(p);
}

void Simulator::install_all(
    const std::function<std::unique_ptr<Protocol>(NodeId)>& factory) {
  for (NodeId v = 0; v < node_count(); ++v) {
    set_protocol(v, factory(v));
  }
}

Protocol& Simulator::protocol(NodeId v) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

const Protocol& Simulator::protocol(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

NodeContext Simulator::make_context(NodeId v) {
  return NodeContext(v, now_, node_rngs_[v], csr_.out_neighbors(v),
                     csr_.in_neighbors(v), options_.collision_detection);
}

void Simulator::refresh_topology() {
  if (csr_.source_version() != network_.topology().version()) {
    csr_ = graph::CsrTopology(network_.topology());
  }
}

void Simulator::step() {
  // The topology may have been mutated directly (network().topology())
  // since the last slot; catch up before handing out neighbor spans.
  refresh_topology();

  if (!started_) {
    for (NodeId v = 0; v < node_count(); ++v) {
      RADIOCAST_CHECK_MSG(protocols_[v] != nullptr,
                          "every node needs a protocol before step()");
    }
    started_ = true;
    for (NodeId v = 0; v < node_count(); ++v) {
      NodeContext ctx = make_context(v);
      protocols_[v]->on_start(ctx);
    }
  }

  network_.apply_due_events(now_);
  refresh_topology();
  FaultHook* const fault = options_.fault;
  if (fault != nullptr) {
    fault->begin_slot(now_, network_.dead_count());
  }
  trace_.begin_slot(now_);

  const std::size_t n = node_count();
  const std::span<const char> alive = network_.alive_mask();

  // Phase 1: collect actions (and this slot's transmitter set, which is
  // naturally sorted because nodes are polled in id order). Dead nodes'
  // Action records are left stale — only kind_ must be correct, because
  // actions_[v] is read again solely for transmitters (phase 3's sender).
  transmitters_.clear();
  const std::uint8_t kReceiveByte =
      static_cast<std::uint8_t>(ActionKind::kReceive);
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v] == 0) {
      kind_[v] = static_cast<std::uint8_t>(ActionKind::kIdle);
      continue;
    }
    NodeContext ctx = make_context(v);
    Action a = protocols_[v]->on_slot(ctx);
    kind_[v] = static_cast<std::uint8_t>(a.kind);
    if (a.kind == ActionKind::kTransmit) {
      // Only transmitters' Actions are ever read back (phase 3 delivers
      // actions_[sender].message), so only they pay the 48-byte store.
      actions_[v] = std::move(a);
      transmitters_.push_back(v);
    }
  }

  // Phase 2: propagate transmissions into per-receiver counters. Only
  // receivers actually reached this slot enter `touched_` (exactly once,
  // when their counter leaves zero) — everyone else's counter is already
  // zero and stays untouched, so there is no O(n) fill.
  for (const NodeId u : transmitters_) {
    trace_.record_transmission(u);
    for (const NodeId v : csr_.out_neighbors(u)) {
      if (kind_[v] != kReceiveByte) {
        continue;
      }
      if (++hear_count_[v] == 1) {
        heard_from_[v] = u;
        touched_.push_back(v);
      }
    }
  }

  // Phase 3: deliveries and collisions, in increasing receiver id — the
  // same order the previous full 0..n-1 scan used, so traces and rng
  // draws are bit-identical. Counters are reset as they are consumed.
  //
  // Two strategies with identical observable behavior:
  //   sparse — sort the touched list and walk it: O(t log t), t = touched
  //            receivers. The common case for radio broadcast, where most
  //            slots reach few receivers (Decay thins transmitters, most
  //            nodes idle or hear nothing).
  //   dense  — when a large fraction of nodes was touched, a linear scan
  //            over the (already zero elsewhere) counter array is cheaper
  //            than sorting.
  // A single transmitter's touched list is already sorted (its CSR
  // neighbor span is), so that frequent case skips the sort outright.
  const bool dense = touched_.size() >= n / 8 && transmitters_.size() > 1;
  if (!dense && transmitters_.size() > 1) {
    std::sort(touched_.begin(), touched_.end());
  }
  const auto collide = [&](NodeId v) {
    trace_.record_collision(v);
    if (options_.collision_detection) {
      // An unreliable detector misses this collision with the configured
      // probability — the receiver then experiences plain silence.
      if (options_.cd_false_negative_rate > 0.0 &&
          node_rngs_[v].bernoulli(options_.cd_false_negative_rate)) {
        return;
      }
      NodeContext ctx = make_context(v);
      protocols_[v]->on_collision(ctx);
    }
  };
  const auto deliver_or_collide = [&](NodeId v, std::uint32_t count) {
    if (count == 1) {
      const NodeId sender = heard_from_[v];
      if (fault != nullptr) {
        // Channel impairments intercept the would-be delivery: kDrop is an
        // erasure (the receiver hears silence — recorded nowhere), kJam is
        // noise (the receiver experiences a collision).
        switch (fault->on_delivery(now_, sender, v)) {
          case DeliveryFate::kDeliver:
            break;
          case DeliveryFate::kDrop:
            return;
          case DeliveryFate::kJam:
            collide(v);
            return;
        }
      }
      trace_.record_delivery(now_, v, sender);
      NodeContext ctx = make_context(v);
      protocols_[v]->on_receive(ctx, actions_[sender].message);
    } else {
      collide(v);
    }
  };
  if (dense) {
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t count = hear_count_[v];
      if (count == 0) {
        continue;
      }
      hear_count_[v] = 0;
      deliver_or_collide(v, count);
    }
  } else {
    for (const NodeId v : touched_) {
      const std::uint32_t count = hear_count_[v];
      hear_count_[v] = 0;
      deliver_or_collide(v, count);
    }
  }
  touched_.clear();

  ++now_;
}

Slot Simulator::run_until(const std::function<bool(const Simulator&)>& pred,
                          Slot max_slots) {
  while (now_ < max_slots && !pred(*this)) {
    step();
  }
  return now_;
}

Slot Simulator::run_to_quiescence(Slot max_slots) {
  // At least one step so on_start effects are observable even for
  // protocols that are terminated from the outset.
  while (now_ < max_slots) {
    if (now_ > 0 && all_terminated()) {
      break;
    }
    step();
  }
  return now_;
}

bool Simulator::all_terminated() const {
  const std::size_t n = node_count();
  // Advance the cursor past protocols already seen terminated: termination
  // is monotone, so they never need a virtual dispatch again. Liveness is
  // deliberately ignored here — a crashed-but-unterminated node must keep
  // being rechecked in case it is revived.
  while (terminated_prefix_ < n &&
         protocols_[terminated_prefix_]->terminated()) {
    ++terminated_prefix_;
  }
  for (NodeId v = terminated_prefix_; v < n; ++v) {
    if (network_.is_alive(v) && !protocols_[v]->terminated()) {
      return false;
    }
  }
  return true;
}

}  // namespace radiocast::sim
