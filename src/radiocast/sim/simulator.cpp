#include "radiocast/sim/simulator.hpp"

#include <utility>

namespace radiocast::sim {

Simulator::Simulator(graph::Graph g, SimOptions options)
    : network_(std::move(g)),
      options_(options),
      trace_(network_.node_count(), options.trace_slots),
      protocols_(network_.node_count()),
      actions_(network_.node_count()),
      hear_count_(network_.node_count(), 0),
      heard_from_(network_.node_count(), kNoNode) {
  node_rngs_.reserve(network_.node_count());
  for (NodeId v = 0; v < network_.node_count(); ++v) {
    node_rngs_.emplace_back(options_.seed, /*stream=*/v);
  }
}

void Simulator::set_protocol(NodeId v, std::unique_ptr<Protocol> p) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(!started_, "cannot replace protocols after start");
  RADIOCAST_CHECK_MSG(p != nullptr, "protocol must not be null");
  protocols_[v] = std::move(p);
}

void Simulator::install_all(
    const std::function<std::unique_ptr<Protocol>(NodeId)>& factory) {
  for (NodeId v = 0; v < node_count(); ++v) {
    set_protocol(v, factory(v));
  }
}

Protocol& Simulator::protocol(NodeId v) {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

const Protocol& Simulator::protocol(NodeId v) const {
  RADIOCAST_CHECK_MSG(v < node_count(), "node id out of range");
  RADIOCAST_CHECK_MSG(protocols_[v] != nullptr, "no protocol installed");
  return *protocols_[v];
}

NodeContext Simulator::make_context(NodeId v) {
  const graph::Graph& g = network_.topology();
  return NodeContext(v, now_, node_rngs_[v], g.out_neighbors(v),
                     g.in_neighbors(v), options_.collision_detection);
}

void Simulator::step() {
  if (!started_) {
    for (NodeId v = 0; v < node_count(); ++v) {
      RADIOCAST_CHECK_MSG(protocols_[v] != nullptr,
                          "every node needs a protocol before step()");
    }
    started_ = true;
    for (NodeId v = 0; v < node_count(); ++v) {
      NodeContext ctx = make_context(v);
      protocols_[v]->on_start(ctx);
    }
  }

  network_.apply_due_events(now_);
  trace_.begin_slot(now_);

  const std::size_t n = node_count();
  const graph::Graph& g = network_.topology();

  // Phase 1: collect actions.
  for (NodeId v = 0; v < n; ++v) {
    if (!network_.is_alive(v)) {
      actions_[v] = Action::idle();
      continue;
    }
    NodeContext ctx = make_context(v);
    actions_[v] = protocols_[v]->on_slot(ctx);
  }

  // Phase 2: propagate transmissions into per-receiver counters.
  std::fill(hear_count_.begin(), hear_count_.end(), 0);
  for (NodeId u = 0; u < n; ++u) {
    if (actions_[u].kind != ActionKind::kTransmit) {
      continue;
    }
    trace_.record_transmission(u);
    for (const NodeId v : g.out_neighbors(u)) {
      if (!network_.is_alive(v) ||
          actions_[v].kind != ActionKind::kReceive) {
        continue;
      }
      if (++hear_count_[v] == 1) {
        heard_from_[v] = u;
      }
    }
  }

  // Phase 3: deliveries and collisions.
  for (NodeId v = 0; v < n; ++v) {
    if (actions_[v].kind != ActionKind::kReceive || hear_count_[v] == 0) {
      continue;
    }
    if (hear_count_[v] == 1) {
      const NodeId sender = heard_from_[v];
      trace_.record_delivery(now_, v, sender);
      NodeContext ctx = make_context(v);
      protocols_[v]->on_receive(ctx, actions_[sender].message);
    } else {
      trace_.record_collision(v);
      if (options_.collision_detection) {
        // An unreliable detector misses this collision with the configured
        // probability — the receiver then experiences plain silence.
        if (options_.cd_false_negative_rate > 0.0 &&
            node_rngs_[v].bernoulli(options_.cd_false_negative_rate)) {
          continue;
        }
        NodeContext ctx = make_context(v);
        protocols_[v]->on_collision(ctx);
      }
    }
  }

  ++now_;
}

Slot Simulator::run_until(const std::function<bool(const Simulator&)>& pred,
                          Slot max_slots) {
  while (now_ < max_slots && !pred(*this)) {
    step();
  }
  return now_;
}

Slot Simulator::run_to_quiescence(Slot max_slots) {
  // At least one step so on_start effects are observable even for
  // protocols that are terminated from the outset.
  while (now_ < max_slots) {
    if (now_ > 0 && all_terminated()) {
      break;
    }
    step();
  }
  return now_;
}

bool Simulator::all_terminated() const {
  for (NodeId v = 0; v < node_count(); ++v) {
    if (network_.is_alive(v) && !protocols_[v]->terminated()) {
      return false;
    }
  }
  return true;
}

}  // namespace radiocast::sim
