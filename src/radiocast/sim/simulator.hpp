// The synchronous slot engine.
//
// Semantics per slot t (paper §1):
//   1. Due topology/fault events are applied.
//   2. Every live node's protocol chooses an Action.
//   3. For every node v that chose kReceive: count the live in-neighbors of
//      v that chose kTransmit. Exactly one  -> on_receive(v, its message).
//      Two or more                          -> nothing (collision; with
//      collision detection enabled, on_collision(v) fires instead).
//      Zero                                 -> nothing.
//   4. The clock advances.
//
// A transmitting node hears nothing in that slot (it is not a receiver),
// and never hears itself. Crashed nodes neither transmit nor receive.
//
// Determinism: node i draws randomness from its own substream seeded by
// (options.seed, i); two runs with equal seeds, graphs, protocols and event
// schedules produce identical traces.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "radiocast/common/check.hpp"
#include "radiocast/graph/csr.hpp"
#include "radiocast/graph/graph.hpp"
#include "radiocast/sim/network.hpp"
#include "radiocast/sim/protocol.hpp"
#include "radiocast/sim/trace.hpp"

namespace radiocast::sim {

class FaultHook;  // sim/fault_hook.hpp; implemented by fault::FaultPlan

struct SimOptions {
  std::uint64_t seed = 1;
  /// Enables the collision-detection model variant (paper §4): receivers
  /// with >= 2 transmitting in-neighbors get on_collision instead of
  /// silence.
  bool collision_detection = false;
  /// Probability that a collision goes UNDETECTED (no on_collision fires;
  /// the receiver hears silence). Models the paper's §1 concern: "the
  /// protocol will not fail in case of undetected collision" is exactly
  /// the property CD-reliant protocols lack. Only meaningful with
  /// collision_detection = true.
  double cd_false_negative_rate = 0.0;
  /// Record per-slot transmitter/delivery detail in the trace.
  bool trace_slots = false;
  /// Fault-injection hook (channel loss, jamming, crash/recover plans —
  /// see fault::FaultPlan and docs/FAULTS.md). Not owned; must outlive the
  /// Simulator. nullptr (the default) disables fault injection entirely:
  /// the slot loop then pays one pointer test per slot plus one per
  /// delivery candidate, nothing more.
  FaultHook* fault = nullptr;
};

class Simulator {
 public:
  Simulator(graph::Graph g, SimOptions options = {});

  /// Installs `p` at node `v`. Must happen before the first step().
  void set_protocol(NodeId v, std::unique_ptr<Protocol> p);

  /// Constructs a protocol of type P in place at node `v`; returns it.
  template <typename P, typename... Args>
  P& emplace_protocol(NodeId v, Args&&... args) {
    auto owned = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *owned;
    set_protocol(v, std::move(owned));
    return ref;
  }

  /// Installs factory(v) at every node. Convenient for uniform protocols.
  void install_all(
      const std::function<std::unique_ptr<Protocol>(NodeId)>& factory);

  /// Runs one slot. Precondition: every node has a protocol.
  void step();

  /// Steps until `pred(*this)` holds or `max_slots` slots have run.
  /// Returns the slot count at exit (== now()).
  Slot run_until(const std::function<bool(const Simulator&)>& pred,
                 Slot max_slots);

  /// Steps until every live node's protocol reports terminated() or
  /// `max_slots` elapse. Returns now().
  Slot run_to_quiescence(Slot max_slots);

  Slot now() const noexcept { return now_; }
  std::size_t node_count() const noexcept { return network_.node_count(); }

  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }
  const Trace& trace() const noexcept { return trace_; }

  Protocol& protocol(NodeId v);
  const Protocol& protocol(NodeId v) const;

  /// Typed access to a node's protocol. Throws ContractViolation on
  /// type mismatch (always a harness bug).
  template <typename P>
  P& protocol_as(NodeId v) {
    auto* p = dynamic_cast<P*>(&protocol(v));
    RADIOCAST_CHECK_MSG(p != nullptr, "protocol type mismatch");
    return *p;
  }
  template <typename P>
  const P& protocol_as(NodeId v) const {
    const auto* p = dynamic_cast<const P*>(&protocol(v));
    RADIOCAST_CHECK_MSG(p != nullptr, "protocol type mismatch");
    return *p;
  }

  bool all_terminated() const;

 private:
  NodeContext make_context(NodeId v);

  /// Rebuilds the CSR snapshot iff the topology mutated since it was
  /// taken (Graph::version() comparison — O(1) when nothing changed).
  void refresh_topology();

  Network network_;
  SimOptions options_;
  Trace trace_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<rng::Rng> node_rngs_;
  Slot now_ = 0;
  bool started_ = false;

  /// Flat snapshot of network_.topology(); the hot path iterates this
  /// instead of the pointer-chasing vector<vector<NodeId>> graph.
  graph::CsrTopology csr_;

  // Scratch buffers reused across slots to avoid per-slot allocation.
  std::vector<Action> actions_;
  /// actions_[v].kind as a packed byte array (dead nodes folded to kIdle):
  /// the per-arc receiver test in phase 2 reads one byte instead of
  /// striding across 48-byte Action records plus the liveness vector.
  std::vector<std::uint8_t> kind_;
  std::vector<std::uint32_t> hear_count_;  ///< all-zero between slots
  std::vector<NodeId> heard_from_;
  std::vector<NodeId> transmitters_;  ///< this slot's transmitters, by id
  /// Receivers whose hear_count_ went nonzero this slot; resetting exactly
  /// these makes the slot cost O(transmitters + touched edges), not O(n+m).
  std::vector<NodeId> touched_;
  /// Nodes 0..terminated_prefix_-1 have reported terminated(); since
  /// termination is monotone (see Protocol::terminated), they need never
  /// be polled again. Mutable: all_terminated() is logically const.
  mutable NodeId terminated_prefix_ = 0;
};

}  // namespace radiocast::sim
