// The receiver-sharded slot engine for million-node topologies.
//
// The classic Simulator walks a materialized CSR snapshot serially; at
// n >= 10^5 a slot no longer fits in cache and throughput collapses
// (BENCH_engine.json: 95k slots/s at n = 256 down to 5.6k at n = 4096).
// ShardedSimulator re-shapes the slot loop for scale:
//
//   * adjacency comes from a graph::ImplicitTopology, so grid/hypercube/
//     unit-disk families at n = 10^6–10^7 never materialize their arc
//     lists (a CsrBackedTopology view runs arbitrary materialized graphs
//     through the same engine);
//   * receivers are partitioned into contiguous id shards, each with its
//     own scratch (touched list, neighbor buffer, delivery buffers), and
//     the three slot phases gang-dispatch over a persistent
//     common::WorkerPool — every shard only ever writes its own slice of
//     per-node state, so there are no locks in the slot path;
//   * observation is a sampling ScaleTrace: aggregate totals plus each
//     node's first-delivery slot are always on, full per-slot records only
//     for slots selected by trace_sample_period, so omniscient bookkeeping
//     is opt-in rather than the bottleneck.
//
// Determinism contract (docs/PARALLELISM.md): node i draws only from its
// own (seed, i) substream and every per-node array is sliced by shard, so
// results — trace totals, first deliveries, sampled slot records, every
// protocol's final state — are bit-identical for ANY shard count and ANY
// thread count, and match the classic Simulator slot for slot
// (tests/test_sharded.cpp pins both equivalences).
//
// Scope: the scale engine deliberately omits the classic engine's
// per-slot event queue, liveness mask and FaultHook, and it hands
// protocols empty neighbor spans — it is built for topology-oblivious
// protocols (Decay, BGI broadcast: the paper's §2.2 "no topology
// knowledge" property). Deterministic protocols that read
// NodeContext::neighbors_*() must use the classic Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "radiocast/common/check.hpp"
#include "radiocast/common/worker_pool.hpp"
#include "radiocast/graph/implicit.hpp"
#include "radiocast/sim/protocol.hpp"
#include "radiocast/sim/trace.hpp"

namespace radiocast::sim {

struct ShardedSimOptions {
  std::uint64_t seed = 1;
  /// Collision-detection model variant; same semantics as SimOptions.
  bool collision_detection = false;
  /// Probability a collision goes undetected (receiver hears silence);
  /// drawn from the receiver's own rng stream, exactly like the classic
  /// engine, so CD runs stay comparable across engines.
  double cd_false_negative_rate = 0.0;
  /// Receiver shards. 0 = one per worker thread. Results never depend on
  /// this; only wall-clock does.
  std::size_t shards = 0;
  /// Worker threads. 0 = common::default_thread_count() (RADIOCAST_THREADS
  /// aware). 1 runs everything inline.
  std::size_t threads = 0;
  /// Record a full SlotRecord for slots where now % period == 0; 0 turns
  /// per-slot records off entirely. Aggregate totals and first-delivery
  /// slots are always maintained.
  Slot trace_sample_period = 0;
};

/// Sampling observation for the sharded engine. Cheap invariants (totals,
/// per-node first delivery) are always on; full SlotRecords exist only for
/// sampled slots. Unlike sim::Trace it does not publish obs metrics at
/// destruction and keeps no per-node transmission/delivery counters — at
/// n = 10^6 those cost more than the simulation.
class ScaleTrace {
 public:
  ScaleTrace(std::size_t n, Slot sample_period);

  /// Slot in which `v` first received a message; kNever if it has not.
  Slot first_delivery(NodeId v) const {
    RADIOCAST_CHECK_MSG(v < first_delivery_.size(), "node id out of range");
    return first_delivery_[v];
  }

  /// Number of nodes that have received at least one message.
  std::size_t delivered_count() const noexcept { return delivered_count_; }

  std::uint64_t total_slots() const noexcept { return total_slots_; }
  std::uint64_t total_transmissions() const noexcept { return total_tx_; }
  std::uint64_t total_deliveries() const noexcept { return total_rx_; }
  std::uint64_t total_collisions() const noexcept { return total_coll_; }

  Slot sample_period() const noexcept { return sample_period_; }
  /// Records of the sampled slots (slot % period == 0), in slot order.
  const std::vector<SlotRecord>& sampled_slots() const noexcept {
    return sampled_;
  }

 private:
  friend class ShardedSimulator;

  Slot sample_period_;
  std::vector<Slot> first_delivery_;
  std::size_t delivered_count_ = 0;
  std::uint64_t total_slots_ = 0;
  std::uint64_t total_tx_ = 0;
  std::uint64_t total_rx_ = 0;
  std::uint64_t total_coll_ = 0;
  std::vector<SlotRecord> sampled_;
};

class ShardedSimulator {
 public:
  /// `topo` is not owned and must outlive the simulator.
  explicit ShardedSimulator(const graph::ImplicitTopology& topo,
                            ShardedSimOptions options = {});

  /// Installs `p` at node `v`. Must happen before the first step().
  void set_protocol(NodeId v, std::unique_ptr<Protocol> p);

  /// Constructs a protocol of type P in place at node `v`; returns it.
  template <typename P, typename... Args>
  P& emplace_protocol(NodeId v, Args&&... args) {
    auto owned = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *owned;
    set_protocol(v, std::move(owned));
    return ref;
  }

  /// Installs factory(v) at every node.
  void install_all(
      const std::function<std::unique_ptr<Protocol>(NodeId)>& factory);

  /// Runs one slot. Precondition: every node has a protocol.
  void step();

  /// Steps until every node's protocol reports terminated() or `max_slots`
  /// elapse (at least one step runs). Returns now().
  Slot run_to_quiescence(Slot max_slots);

  Slot now() const noexcept { return now_; }
  std::size_t node_count() const noexcept { return topo_->node_count(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t thread_count() const noexcept { return pool_.thread_count(); }

  const graph::ImplicitTopology& topology() const noexcept { return *topo_; }
  const ScaleTrace& trace() const noexcept { return trace_; }

  Protocol& protocol(NodeId v);
  const Protocol& protocol(NodeId v) const;

  /// Typed access to a node's protocol. Throws ContractViolation on
  /// type mismatch (always a harness bug).
  template <typename P>
  P& protocol_as(NodeId v) {
    auto* p = dynamic_cast<P*>(&protocol(v));
    RADIOCAST_CHECK_MSG(p != nullptr, "protocol type mismatch");
    return *p;
  }
  template <typename P>
  const P& protocol_as(NodeId v) const {
    const auto* p = dynamic_cast<const P*>(&protocol(v));
    RADIOCAST_CHECK_MSG(p != nullptr, "protocol type mismatch");
    return *p;
  }

  bool all_terminated() const;

 private:
  /// Per-shard scratch. Shard s owns the contiguous node interval
  /// [begin, end) and is the only writer of every per-node array slice in
  /// that interval while a phase is in flight.
  struct Shard {
    NodeId begin = 0;
    NodeId end = 0;
    // Phase 1 output: this shard's transmitters (ascending) and their
    // messages; message storage is stable until the next slot, so
    // tx_message_ pointers into it stay valid through phase 3.
    std::vector<NodeId> tx_ids;
    std::vector<Message> tx_messages;
    // Phase 2/3 scratch.
    std::vector<NodeId> touched;
    std::vector<NodeId> neighbor_buf;
    // Per-slot counters, reduced serially after the phases.
    std::uint64_t deliveries = 0;
    std::uint64_t collisions = 0;
    std::uint64_t newly_delivered = 0;
    // Sampled-slot output (only filled on sampled slots).
    std::vector<Delivery> sampled_deliveries;
    std::vector<NodeId> sampled_collisions;
    /// Nodes [begin, terminated_prefix) have reported terminated();
    /// termination is monotone, so they are never polled again.
    NodeId terminated_prefix = 0;
  };

  NodeContext make_context(NodeId v) {
    return NodeContext(v, now_, node_rngs_[v], {}, {},
                       options_.collision_detection);
  }

  void run_shard_sweep(Shard& shard, bool sampled);

  const graph::ImplicitTopology* topo_;
  ShardedSimOptions options_;
  ScaleTrace trace_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<rng::Rng> node_rngs_;
  common::WorkerPool pool_;
  std::vector<Shard> shards_;
  Slot now_ = 0;
  bool started_ = false;
  bool all_terminated_ = false;

  /// actions' kinds as a packed byte array, one per node (same trick as
  /// the classic engine). Written by each node's own shard in phase 1,
  /// read shard-locally in phases 2–3.
  std::vector<std::uint8_t> kind_;
  std::vector<std::uint32_t> hear_count_;  ///< all-zero between slots
  std::vector<NodeId> heard_from_;
  /// tx_message_[u] points at u's message for the current slot; valid only
  /// for u in this slot's transmitter set (stale otherwise, never read).
  std::vector<const Message*> tx_message_;
  std::vector<NodeId> transmitters_;  ///< this slot's transmitters, by id
};

}  // namespace radiocast::sim
