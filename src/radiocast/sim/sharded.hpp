// The receiver-sharded slot engine for million-node topologies.
//
// The classic Simulator walks a materialized CSR snapshot serially; at
// n >= 10^5 a slot no longer fits in cache and throughput collapses
// (BENCH_engine.json: 95k slots/s at n = 256 down to 5.6k at n = 4096).
// ShardedSimulator re-shapes the slot loop for scale:
//
//   * adjacency comes from a graph::ImplicitTopology, so grid/hypercube/
//     unit-disk families at n = 10^6–10^7 never materialize their arc
//     lists (a CsrBackedTopology view runs arbitrary materialized graphs
//     through the same engine);
//   * receivers are partitioned into contiguous id shards, each with its
//     own scratch (touched list, neighbor buffer, delivery buffers), and
//     the slot phases gang-dispatch over a persistent common::WorkerPool —
//     every shard only ever writes its own slice of per-node state, so
//     there are no locks in the slot path;
//   * the delivery sweep is adaptive (SweepStrategy below): a
//     receiver-owned dense sweep for transmitter-heavy slots, a
//     transmitter-indexed sparse sweep for the wavefront-shaped slots
//     Decay/BGI actually produce, picked per slot from the live
//     transmitter count (docs/PARALLELISM.md, "Sweep strategies");
//   * observation is a sampling ScaleTrace: aggregate totals plus each
//     node's first-delivery slot are always on, full per-slot records only
//     for slots selected by trace_sample_period, so omniscient bookkeeping
//     is opt-in rather than the bottleneck.
//
// Determinism contract (docs/PARALLELISM.md): node i draws only from its
// own (seed, i) substream and every per-node array is sliced by shard, so
// results — trace totals, first deliveries, sampled slot records, every
// protocol's final state — are bit-identical for ANY shard count, ANY
// thread count and ANY sweep strategy, and match the classic Simulator
// slot for slot (tests/test_sharded.cpp pins all three equivalences).
//
// Scope: the scale engine deliberately omits the classic engine's
// per-slot event queue, liveness mask and FaultHook, and it hands
// protocols empty neighbor spans — it is built for topology-oblivious
// protocols (Decay, BGI broadcast: the paper's §2.2 "no topology
// knowledge" property). Deterministic protocols that read
// NodeContext::neighbors_*() must use the classic Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "radiocast/common/check.hpp"
#include "radiocast/common/worker_pool.hpp"
#include "radiocast/graph/implicit.hpp"
#include "radiocast/sim/protocol.hpp"
#include "radiocast/sim/trace.hpp"

namespace radiocast::sim {

/// How a slot's deliveries are swept. Both strategies are bit-identical
/// (the strategy — like shard and thread counts — may only change
/// wall-clock time); the engine records its per-slot picks in
/// ScaleTrace::sweep_dense_slots()/sweep_sparse_slots() and benches
/// publish them as the scale.sweep.dense / scale.sweep.sparse counters.
enum class SweepStrategy {
  /// Per slot: sparse when the live-transmitter count is at or below the
  /// crossover threshold and there is more than one shard, else dense.
  kAuto,
  /// Receiver-owned: every shard range-queries every transmitter's
  /// audience inside its own id interval. O(shards x transmitters)
  /// queries — unbeatable cache behavior when most nodes transmit.
  kDense,
  /// Transmitter-indexed: transmitters are expanded once (full unordered
  /// neighbor query) and their audiences bucketed per owning shard;
  /// shards then consume only their buckets. O(transmitters x degree)
  /// regardless of the shard count — the wavefront-slot fast path.
  kSparse,
};

/// "auto" / "dense" / "sparse".
const char* sweep_strategy_name(SweepStrategy s) noexcept;

/// Strict parse of a sweep-strategy knob value; anything but the three
/// names above -> nullopt. Pure, for tests.
std::optional<SweepStrategy> parse_sweep_strategy(
    std::string_view value) noexcept;

/// The SweepStrategy::kAuto env resolution, read once per process:
/// RADIOCAST_SCALE_SWEEP if it strictly parses ("auto", "dense",
/// "sparse"); malformed values get a one-line stderr warning and fall
/// through to kAuto. Mirrors the RADIOCAST_BATCH_WIDTH dispatch knob.
SweepStrategy sweep_strategy_from_env();

struct ShardedSimOptions {
  std::uint64_t seed = 1;
  /// Collision-detection model variant; same semantics as SimOptions.
  bool collision_detection = false;
  /// Probability a collision goes undetected (receiver hears silence);
  /// drawn from the receiver's own rng stream, exactly like the classic
  /// engine, so CD runs stay comparable across engines.
  double cd_false_negative_rate = 0.0;
  /// Receiver shards. 0 = auto: enough shards that a shard's receiver
  /// state fits in L2 (one per ~32768 nodes, capped at 256), but never
  /// fewer than the worker threads. Results never depend on this; only
  /// wall-clock does.
  std::size_t shards = 0;
  /// Worker threads. 0 = common::default_thread_count() (RADIOCAST_THREADS
  /// aware). 1 runs everything inline.
  std::size_t threads = 0;
  /// Record a full SlotRecord for slots where now % period == 0; 0 turns
  /// per-slot records off entirely. Aggregate totals and first-delivery
  /// slots are always maintained.
  Slot trace_sample_period = 0;
  /// Delivery-sweep strategy. kAuto defers to RADIOCAST_SCALE_SWEEP, then
  /// to the per-slot heuristic. Bit-identical either way.
  SweepStrategy sweep = SweepStrategy::kAuto;
  /// kAuto's crossover: a slot sweeps sparse when its live-transmitter
  /// count is <= this. 0 = calibrated default n/2 — below that the dense
  /// sweep's O(shards x transmitters) query fan-out loses to the
  /// transmitter-indexed expansion (calibrated on bench_scale's BGI
  /// workload, where post-wavefront slots have T << n).
  std::size_t sweep_sparse_threshold = 0;
  /// Worker placement (common::Affinity). kAuto defers to
  /// RADIOCAST_AFFINITY; pinning + the engine's first-touch slices give
  /// NUMA-local sweeps. Wall-clock only, no-op where unsupported.
  common::Affinity affinity = common::Affinity::kAuto;
  /// Byte budget for the adjacency-row cache: the sweep memoizes each
  /// transmitter's sorted neighbor row (in its owning shard's arena) the
  /// first slot it transmits, so Decay-style protocols — where every node
  /// transmits many times — pay the implicit-topology query once per node
  /// instead of once per slot. 0 = auto: twice the degree-hint estimate of
  /// the arc list, capped at 6 GiB, and disabled entirely for topologies
  /// whose rows are already materialized (CsrBackedTopology — a cache
  /// would just copy the CSR). Rows past the budget simply fall back to
  /// live queries; the cache is wall-clock only and can never change a
  /// trajectory.
  std::size_t adjacency_cache_bytes = 0;
};

/// Sampling observation for the sharded engine. Cheap invariants (totals,
/// per-node first delivery) are always on; full SlotRecords exist only for
/// sampled slots. Unlike sim::Trace it does not publish obs metrics at
/// destruction and keeps no per-node transmission/delivery counters — at
/// n = 10^6 those cost more than the simulation.
class ScaleTrace {
 public:
  ScaleTrace(std::size_t n, Slot sample_period);

  /// Slot in which `v` first received a message; kNever if it has not.
  Slot first_delivery(NodeId v) const {
    RADIOCAST_CHECK_MSG(v < first_delivery_.size(), "node id out of range");
    return first_delivery_[v];
  }

  /// Number of nodes that have received at least one message.
  std::size_t delivered_count() const noexcept { return delivered_count_; }

  std::uint64_t total_slots() const noexcept { return total_slots_; }
  std::uint64_t total_transmissions() const noexcept { return total_tx_; }
  std::uint64_t total_deliveries() const noexcept { return total_rx_; }
  std::uint64_t total_collisions() const noexcept { return total_coll_; }

  /// Slots swept with each strategy (dense + sparse == total_slots()).
  /// Wall-clock bookkeeping only — never part of a trajectory comparison.
  std::uint64_t sweep_dense_slots() const noexcept { return sweep_dense_; }
  std::uint64_t sweep_sparse_slots() const noexcept { return sweep_sparse_; }

  Slot sample_period() const noexcept { return sample_period_; }
  /// Records of the sampled slots (slot % period == 0), in slot order.
  const std::vector<SlotRecord>& sampled_slots() const noexcept {
    return sampled_;
  }

 private:
  friend class ShardedSimulator;

  Slot sample_period_;
  std::vector<Slot> first_delivery_;
  std::size_t delivered_count_ = 0;
  std::uint64_t total_slots_ = 0;
  std::uint64_t total_tx_ = 0;
  std::uint64_t total_rx_ = 0;
  std::uint64_t total_coll_ = 0;
  std::uint64_t sweep_dense_ = 0;
  std::uint64_t sweep_sparse_ = 0;
  std::vector<SlotRecord> sampled_;
};

class ShardedSimulator {
 public:
  /// `topo` is not owned and must outlive the simulator.
  explicit ShardedSimulator(const graph::ImplicitTopology& topo,
                            ShardedSimOptions options = {});

  /// Installs `p` at node `v`. Must happen before the first step().
  void set_protocol(NodeId v, std::unique_ptr<Protocol> p);

  /// Constructs a protocol of type P in place at node `v`; returns it.
  template <typename P, typename... Args>
  P& emplace_protocol(NodeId v, Args&&... args) {
    auto owned = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *owned;
    set_protocol(v, std::move(owned));
    return ref;
  }

  /// Installs factory(v) at every node.
  void install_all(
      const std::function<std::unique_ptr<Protocol>(NodeId)>& factory);

  /// Runs one slot. Precondition: every node has a protocol.
  void step();

  /// Steps until every node's protocol reports terminated() or `max_slots`
  /// elapse (at least one step runs). Returns now().
  Slot run_to_quiescence(Slot max_slots);

  Slot now() const noexcept { return now_; }
  std::size_t node_count() const noexcept { return topo_->node_count(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t thread_count() const noexcept { return pool_.thread_count(); }

  /// The strategy picked at construction (kAuto means per-slot choice;
  /// the trace's sweep counters say what actually ran).
  SweepStrategy sweep_strategy() const noexcept { return sweep_; }
  /// The resolved kAuto crossover (sweep_sparse_threshold or its n/2
  /// default).
  std::size_t sweep_sparse_threshold() const noexcept {
    return sparse_threshold_;
  }
  /// Neighbor rows currently memoized by the adjacency cache (for tests
  /// and diagnostics; 0 when the cache is disabled or the budget is too
  /// small for any row).
  std::size_t cached_rows() const noexcept;

  const graph::ImplicitTopology& topology() const noexcept { return *topo_; }
  const ScaleTrace& trace() const noexcept { return trace_; }

  Protocol& protocol(NodeId v);
  const Protocol& protocol(NodeId v) const;

  /// Typed access to a node's protocol. Throws ContractViolation on
  /// type mismatch (always a harness bug).
  template <typename P>
  P& protocol_as(NodeId v) {
    auto* p = dynamic_cast<P*>(&protocol(v));
    RADIOCAST_CHECK_MSG(p != nullptr, "protocol type mismatch");
    return *p;
  }
  template <typename P>
  const P& protocol_as(NodeId v) const {
    const auto* p = dynamic_cast<const P*>(&protocol(v));
    RADIOCAST_CHECK_MSG(p != nullptr, "protocol type mismatch");
    return *p;
  }

  bool all_terminated() const;

 private:
  /// Per-shard scratch. Shard s owns the contiguous node interval
  /// [begin, end) and is the only writer of every per-node array slice in
  /// that interval while a phase is in flight.
  struct Shard {
    NodeId begin = 0;
    NodeId end = 0;
    // Phase 1 output: this shard's transmitters (ascending) and their
    // messages; message storage is stable until the next slot, so
    // tx_message_ pointers into it stay valid through phase 3.
    std::vector<NodeId> tx_ids;
    std::vector<Message> tx_messages;
    // Phase 2/3 scratch.
    std::vector<NodeId> touched;
    std::vector<NodeId> neighbor_buf;
    // Adjacency-cache arena: the concatenated sorted neighbor rows of this
    // shard's nodes that have transmitted at least once (cache_span_ holds
    // each row's offset/length). Only the owning shard ever appends, and
    // only between slot phases, so sweeps read it without synchronization.
    std::vector<NodeId> cache_arena;
    std::size_t cached_rows = 0;
    /// Set once an insert would overflow the shard's arena budget; from
    /// then on the cache pass skips this shard entirely (uncached rows
    /// fall back to live queries in the sweeps).
    bool cache_full = false;
    // Per-slot counters, reduced serially after the phases.
    std::uint64_t deliveries = 0;
    std::uint64_t collisions = 0;
    std::uint64_t newly_delivered = 0;
    // Sampled-slot output (only filled on sampled slots).
    std::vector<Delivery> sampled_deliveries;
    std::vector<NodeId> sampled_collisions;
    /// Nodes [begin, terminated_prefix) have reported terminated();
    /// termination is monotone, so the quiescence check never needs a
    /// virtual dispatch on them again (they are still polled every slot —
    /// same semantics as the classic engine).
    NodeId terminated_prefix = 0;
  };

  /// A transmitter's contribution to one shard's bucket: `len` audience
  /// ids follow in the bucket's verts stream. Run-length framing keeps
  /// the per-pair cost at 4 bytes while preserving which transmitter each
  /// id belongs to.
  struct TxRun {
    NodeId u = 0;
    std::uint32_t len = 0;
  };
  struct SparseBucket {
    std::vector<TxRun> runs;
    std::vector<NodeId> verts;
  };
  /// Per-worker sparse scratch: fill workers expand disjoint transmitter
  /// sub-ranges into per-shard buckets; consume workers then read every
  /// chunk's bucket for their shard. The two-phase handoff is the only
  /// cross-thread traffic in the sparse sweep.
  struct SparseChunk {
    std::vector<SparseBucket> buckets;
    std::vector<NodeId> nbrs;
  };

  NodeContext make_context(NodeId v) {
    return NodeContext(v, now_, node_rngs_[v], {}, {},
                       options_.collision_detection);
  }

  /// Owning shard of node `v` (shards are the equal-width intervals
  /// [n*s/S, n*(s+1)/S), so the v*S/n guess only ever needs forward
  /// fix-up).
  std::size_t owner_shard(NodeId v) const noexcept;
  /// `u`'s cached sorted neighbor row, or an empty nullopt-like span pair;
  /// `first == nullptr` means not cached.
  std::pair<const NodeId*, std::size_t> cached_row(NodeId u) const noexcept;
  void cache_shard_rows(Shard& shard);

  void run_dense_sweep(Shard& shard);
  void fill_sparse_chunk(std::size_t c, std::size_t base, std::size_t batch);
  void consume_sparse_shard(Shard& shard, std::size_t s);
  void run_sparse_rounds();
  /// Single-worker sweep specialization used for BOTH strategies when the
  /// pool has one thread: the bucketed handoff (fill/consume) and the
  /// per-shard range projections only exist to move work between workers,
  /// so with nobody to hand work to, each transmitter's full row is
  /// applied to recv_state_ in place, in ascending transmitter order —
  /// the exact order both parallel paths reproduce, hence bit-identical.
  void run_direct_sweep();
  void resolve_shard(Shard& shard, bool sampled);

  const graph::ImplicitTopology* topo_;
  ShardedSimOptions options_;
  ScaleTrace trace_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::vector<rng::Rng> node_rngs_;
  common::WorkerPool pool_;
  std::vector<Shard> shards_;
  std::vector<SparseChunk> chunks_;
  SweepStrategy sweep_ = SweepStrategy::kAuto;
  std::size_t sparse_threshold_ = 0;
  std::size_t degree_hint_ = 1;
  /// Per-shard arena capacity in NodeId entries; 0 disables the cache.
  std::size_t cache_cap_per_shard_ = 0;
  /// Per-node (offset << 32 | length) into the owning shard's cache_arena;
  /// kNotCached until the node first transmits (or forever, once the
  /// shard's budget is exhausted). Sized only when the cache is enabled.
  common::FirstTouchArray<std::uint64_t> cache_span_;
  Slot now_ = 0;
  bool started_ = false;
  bool all_terminated_ = false;

  /// Per-receiver slot state, one word per node, first-touch-initialized
  /// by its owning shard: bits [63:32] the first transmitter heard
  /// (undefined until the first hit), bits [31:0] the hit count. Phase 1
  /// rewrites every node's word — 0 for receivers, kNonReceiverBase
  /// (1 << 31, so the count field can never read 0 or 1) for everyone
  /// else — which replaces the classic engine's separate kind check and
  /// end-of-slot count reset with a single store.
  common::FirstTouchArray<std::uint64_t> recv_state_;
  /// tx_message_[u] points at u's message for the current slot; valid only
  /// for u in this slot's transmitter set (stale otherwise, never read).
  common::FirstTouchArray<const Message*> tx_message_;
  /// wake_slot_[v] caches a Protocol::dormant_until() promise: while
  /// now_ < wake_slot_[v] the node's on_slot() would be a pure receive()
  /// (no state change, no rng draw), so the poll loop skips it entirely —
  /// not even its recv_state_ word is rewritten, because asleep nodes keep
  /// the invariant recv_state_[v] == 0 (the resolve phase restores any
  /// word the sweep dirtied). Set when a poll returns receive() with a
  /// future dormant_until(); cleared by the resolve phase the moment any
  /// callback (delivery or detected collision) fires for the node. Only
  /// the owning shard reads or writes its slice.
  common::FirstTouchArray<Slot> wake_slot_;
  std::vector<NodeId> transmitters_;  ///< this slot's transmitters, by id
};

}  // namespace radiocast::sim
