// Network = topology + node liveness + the event machinery that mutates
// both while a simulation runs. The Simulator owns one Network and applies
// due events at the start of every slot.
#pragma once

#include <span>
#include <vector>

#include "radiocast/graph/graph.hpp"
#include "radiocast/sim/events.hpp"

namespace radiocast::sim {

class Network {
 public:
  explicit Network(graph::Graph g);

  const graph::Graph& topology() const noexcept { return graph_; }
  graph::Graph& topology() noexcept { return graph_; }

  std::size_t node_count() const noexcept { return graph_.node_count(); }

  bool is_alive(NodeId v) const;
  void crash(NodeId v);
  /// Brings a crashed node back (fail-stop recovery: protocol state is
  /// preserved, the node just resumes acting). No-op when already alive.
  void recover(NodeId v);
  /// Synonym for recover(), kept for the scripted-event vocabulary
  /// (kReviveNode predates the fault layer's kRecoverNode).
  void revive(NodeId v) { recover(v); }
  std::size_t alive_count() const noexcept { return alive_count_; }
  std::size_t dead_count() const noexcept {
    return node_count() - alive_count_;
  }

  /// Raw per-node liveness (1 = alive), indexed by NodeId. The simulator's
  /// inner loop reads this directly instead of paying a bounds-checked
  /// is_alive() call per arc.
  std::span<const char> alive_mask() const noexcept { return alive_; }

  /// Schedules `e` for application at slot e.at.
  void schedule(TopologyEvent e) { events_.push(e); }

  /// Applies every event due at or before `now`. Returns how many applied.
  std::size_t apply_due_events(Slot now);

  std::size_t pending_events() const noexcept { return events_.pending(); }

 private:
  void apply(const TopologyEvent& e);

  graph::Graph graph_;
  std::vector<char> alive_;
  std::size_t alive_count_;
  EventQueue events_;
};

}  // namespace radiocast::sim
