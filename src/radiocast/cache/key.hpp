// Cache-key derivation for the sweep service (docs/SWEEP.md).
//
// A cache entry is addressed by SHA-256 over exactly three inputs:
//
//   1. the runner name (which experiment function produced the payload),
//   2. the engine fingerprint (a hand-bumped semantic version of the
//      result-producing code, NOT git describe — see kEngineFingerprint),
//   3. the canonicalized job config (sorted keys, exact number rendering).
//
// What is deliberately EXCLUDED: wall-clock timestamps, hostnames, thread
// counts, build type, compiler — anything the determinism contract
// (docs/PARALLELISM.md, lint rules R1–R5) guarantees cannot change a
// result. Including them would shatter the cache across runs that are
// bit-identical by construction. The flip side: anything that CAN change
// a result (seed, trials, topology parameters, fault config, epsilon)
// MUST appear in the config object, and any semantic change to the trial
// engines MUST bump the fingerprint. docs/SWEEP.md is the contract;
// tests/test_cache.cpp pins the derivation byte for byte.
#pragma once

#include <string>
#include <string_view>

#include "radiocast/obs/json.hpp"

namespace radiocast::cache {

/// Semantic version of everything that feeds a cached result: the slot
/// engines, the protocols, the RNG derivations and the fault compiler.
/// Bump it whenever a change alters any trial outcome for a fixed config
/// (the differential and thread-invariance suites tell you when that
/// happens). Doc-only, build-system and observability changes must NOT
/// bump it — that is the whole point of not keying on git describe.
inline constexpr std::string_view kEngineFingerprint =
    "radiocast-engines-v1";

/// `config` with every object's keys sorted (recursively, arrays kept in
/// order). Two configs that differ only in insertion order canonicalize
/// to the same document and therefore the same key.
obs::JsonValue canonicalize(const obs::JsonValue& config);

/// canonicalize(config).dump() — the exact string that gets hashed, also
/// what the store writes into the entry envelope for inspection.
std::string canonical_config_text(const obs::JsonValue& config);

/// The content address: 64 lowercase hex characters. `fingerprint`
/// defaults to kEngineFingerprint; tests (and a future multi-engine
/// daemon) can pass their own.
std::string derive_key(std::string_view runner,
                       const obs::JsonValue& config,
                       std::string_view fingerprint = kEngineFingerprint);

}  // namespace radiocast::cache
