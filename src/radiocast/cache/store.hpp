// On-disk content-addressed result store (docs/SWEEP.md).
//
// One entry per cache key: `<root>/objects/<k[0:2]>/<k[2:]>.json`, where
// k is the 64-hex-char key from cache::derive_key. Each file is a small
// envelope wrapping the cached record:
//
//   {
//     "cache_version": 1,
//     "key": "<the 64 hex chars, again — self-identifying>",
//     "runner": "...", "fingerprint": "...",
//     "config": { ...canonicalized job config... },
//     "payload_sha256": "<SHA-256 of the record's serialized text>",
//     "record": { ...the cached result document... }
//   }
//
// Integrity before trust: get() re-derives the payload checksum and
// cross-checks the embedded key, so a truncated, torn or bit-flipped
// entry is reported as a miss (never served) and the caller recomputes;
// put() overwrites it with a fresh entry. Writes are atomic
// (tmp file + rename) so a crashed writer can at worst leave a tmp file
// that gc() sweeps, never a half-entry under the final name.
//
// Counters (when obs::metrics() is enabled): sweep.cache.hit / .miss /
// .corrupt / .put / .evict. Local Stats are kept unconditionally so CLI
// summaries work without the registry.
//
// Concurrency: safe for concurrent use by the sweep worker pool —
// per-instance stats are atomics and filesystem updates are
// rename-atomic. Two processes racing to fill the same key both write
// valid identical entries (results are deterministic), so last rename
// wins harmlessly.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "radiocast/obs/json.hpp"

namespace radiocast::cache {

class ResultCache {
 public:
  static constexpr int kCacheVersion = 1;

  /// Binds to `root` (created on first put; reads from a missing root are
  /// plain misses).
  explicit ResultCache(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  /// The cached record for `key`, or nullopt (miss or corrupt entry —
  /// corrupt entries are deleted so the next put starts clean).
  std::optional<obs::JsonValue> get(const std::string& key);

  /// Stores `record` under `key`. `runner`/`fingerprint`/`config` are
  /// recorded in the envelope for status/debugging; `config` is stored
  /// canonicalized. Returns false (after a stderr warning) when the
  /// entry cannot be written — callers proceed uncached.
  bool put(const std::string& key, std::string_view runner,
           std::string_view fingerprint, const obs::JsonValue& config,
           const obs::JsonValue& record);

  struct EntryInfo {
    std::string key;
    std::string runner;  ///< "" when the envelope could not be parsed
    std::uintmax_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  /// Every entry on disk, sorted by key. Unreadable envelopes appear
  /// with an empty runner so status/gc still account for them.
  std::vector<EntryInfo> scan() const;

  struct GcOptions {
    /// Keep at most this many entries (0 = unlimited).
    std::size_t max_entries = 0;
    /// Keep at most this many payload bytes (0 = unlimited).
    std::uintmax_t max_bytes = 0;
  };
  /// Evicts oldest-mtime-first (key order breaks ties) until both limits
  /// hold, and deletes any leftover tmp files. Returns the number of
  /// entries evicted.
  std::size_t gc(const GcOptions& options);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;  ///< subset of misses
    std::uint64_t puts = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const noexcept;

 private:
  std::filesystem::path entry_path(const std::string& key) const;

  std::filesystem::path root_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  /// Uniquifies concurrent writers' tmp names within this instance;
  /// cross-process collisions are avoided by the pid-free rename dance
  /// (both writers produce identical bytes for the same key).
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace radiocast::cache
