// SHA-256 for the content-addressed result cache (docs/SWEEP.md).
//
// Cache keys must be stable across processes, machines, compilers and
// library versions — a key minted on one CI runner must find the entry a
// different runner wrote. std::hash guarantees none of that (it may even
// be seeded per process), so the cache uses a self-contained SHA-256:
// byte-exact everywhere, collision-resistant enough that distinct configs
// never share an entry, and with no third-party dependency (the repo
// takes none).
//
// This is NOT a general-purpose crypto module: it exists to name cache
// entries and to checksum their payloads against torn writes. Nothing in
// the trial path hashes anything — keys are derived once per job, outside
// the simulators, so the determinism rules R1–R5 are untouched.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace radiocast::cache {

/// Incremental SHA-256 (FIPS 180-4). Feed any number of update() calls,
/// then read the digest once via hex(); the object is single-use.
class Sha256 {
 public:
  Sha256();

  void update(std::string_view data);

  /// The 32-byte digest of everything updated so far. Finalizes the
  /// stream: further update() calls are a contract violation.
  std::array<std::uint8_t, 32> digest();

  /// digest() as 64 lowercase hex characters.
  std::string hex();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience: SHA-256 of `data` as 64 hex characters.
std::string sha256_hex(std::string_view data);

}  // namespace radiocast::cache
