#include "radiocast/cache/key.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "radiocast/cache/hash.hpp"

namespace radiocast::cache {

obs::JsonValue canonicalize(const obs::JsonValue& config) {
  using obs::JsonValue;
  switch (config.kind()) {
    case JsonValue::Kind::kArray: {
      JsonValue out = JsonValue::array();
      for (std::size_t i = 0; i < config.size(); ++i) {
        out.push_back(canonicalize(config.at(i)));
      }
      return out;
    }
    case JsonValue::Kind::kObject: {
      std::vector<std::pair<std::string, const JsonValue*>> entries;
      entries.reserve(config.size());
      for (const auto& [key, value] : config.items()) {
        entries.emplace_back(key, &value);
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      JsonValue out = JsonValue::object();
      for (const auto& [key, value] : entries) {
        out.set(key, canonicalize(*value));
      }
      return out;
    }
    default:
      // Scalars already render canonically: integers print exactly,
      // doubles print their shortest round-trip form (obs/json.hpp).
      return config;
  }
}

std::string canonical_config_text(const obs::JsonValue& config) {
  return canonicalize(config).dump();
}

std::string derive_key(std::string_view runner,
                       const obs::JsonValue& config,
                       std::string_view fingerprint) {
  // Length-prefix-free framing via NUL separators: none of the three
  // parts may contain a raw NUL (runner/fingerprint are identifiers, the
  // config is JSON text), so the concatenation is unambiguous.
  Sha256 h;
  h.update("radiocast-sweep-key-v1");
  h.update(std::string_view("\0", 1));
  h.update(runner);
  h.update(std::string_view("\0", 1));
  h.update(fingerprint);
  h.update(std::string_view("\0", 1));
  h.update(canonical_config_text(config));
  return h.hex();
}

}  // namespace radiocast::cache
