#include "radiocast/cache/store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "radiocast/cache/hash.hpp"
#include "radiocast/cache/key.hpp"
#include "radiocast/common/check.hpp"
#include "radiocast/obs/metrics.hpp"

namespace radiocast::cache {

namespace fs = std::filesystem;

namespace {

bool valid_key(const std::string& key) {
  if (key.size() != 64) {
    return false;
  }
  return std::all_of(key.begin(), key.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

void count(const char* name) {
  auto& registry = obs::metrics();
  if (registry.enabled()) {
    registry.counter(name).add();
  }
}

}  // namespace

ResultCache::ResultCache(fs::path root) : root_(std::move(root)) {
  RADIOCAST_CHECK_MSG(!root_.empty(), "cache root must not be empty");
}

fs::path ResultCache::entry_path(const std::string& key) const {
  return root_ / "objects" / key.substr(0, 2) / (key.substr(2) + ".json");
}

std::optional<obs::JsonValue> ResultCache::get(const std::string& key) {
  RADIOCAST_CHECK_MSG(valid_key(key), "cache key must be 64 hex chars");
  const fs::path path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    count("sweep.cache.miss");
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();

  // Anything short of a fully self-consistent envelope is corruption:
  // report a miss so the caller recomputes, and delete the entry so the
  // recompute's put() starts from a clean slot.
  const auto corrupt = [&](const char* why) -> std::optional<obs::JsonValue> {
    std::fprintf(stderr,
                 "warning: dropping corrupt cache entry %s (%s)\n",
                 path.string().c_str(), why);
    std::error_code ec;
    fs::remove(path, ec);
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    count("sweep.cache.corrupt");
    count("sweep.cache.miss");
    return std::nullopt;
  };

  obs::JsonValue envelope;
  try {
    envelope = obs::JsonValue::parse(text.str());
  } catch (const ContractViolation&) {
    return corrupt("unparsable JSON");
  }
  if (!envelope.is_object()) {
    return corrupt("envelope is not an object");
  }
  const obs::JsonValue* version = envelope.find("cache_version");
  if (version == nullptr || !version->is_integer() ||
      version->as_int() != kCacheVersion) {
    return corrupt("unknown cache_version");
  }
  const obs::JsonValue* stored_key = envelope.find("key");
  if (stored_key == nullptr || !stored_key->is_string() ||
      stored_key->as_string() != key) {
    return corrupt("embedded key mismatch");
  }
  const obs::JsonValue* checksum = envelope.find("payload_sha256");
  const obs::JsonValue* record = envelope.find("record");
  if (checksum == nullptr || !checksum->is_string() || record == nullptr) {
    return corrupt("missing payload_sha256/record");
  }
  if (sha256_hex(record->dump()) != checksum->as_string()) {
    return corrupt("payload checksum mismatch");
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  count("sweep.cache.hit");
  return *record;
}

bool ResultCache::put(const std::string& key, std::string_view runner,
                      std::string_view fingerprint,
                      const obs::JsonValue& config,
                      const obs::JsonValue& record) {
  RADIOCAST_CHECK_MSG(valid_key(key), "cache key must be 64 hex chars");
  const fs::path path = entry_path(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create cache directory %s: %s\n",
                 path.parent_path().string().c_str(),
                 ec.message().c_str());
    return false;
  }

  obs::JsonValue envelope = obs::JsonValue::object();
  envelope.set("cache_version", obs::JsonValue(kCacheVersion));
  envelope.set("key", obs::JsonValue(key));
  envelope.set("runner", obs::JsonValue(std::string(runner)));
  envelope.set("fingerprint", obs::JsonValue(std::string(fingerprint)));
  envelope.set("config", canonicalize(config));
  envelope.set("payload_sha256", obs::JsonValue(sha256_hex(record.dump())));
  envelope.set("record", record);

  // Atomic publish: write the whole envelope to a tmp name, then rename.
  // A reader either sees the complete old entry, the complete new one, or
  // no entry — never a torn file under the final name.
  const fs::path tmp = path.parent_path() /
                       (path.filename().string() + ".tmp" +
                        std::to_string(tmp_seq_.fetch_add(
                            1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write cache entry %s\n",
                   tmp.string().c_str());
      return false;
    }
    out << envelope.dump();
    out.flush();
    if (!out) {
      std::fprintf(stderr, "warning: short write of cache entry %s\n",
                   tmp.string().c_str());
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot publish cache entry %s: %s\n",
                 path.string().c_str(), ec.message().c_str());
    fs::remove(tmp, ec);
    return false;
  }
  puts_.fetch_add(1, std::memory_order_relaxed);
  count("sweep.cache.put");
  return true;
}

std::vector<ResultCache::EntryInfo> ResultCache::scan() const {
  std::vector<EntryInfo> out;
  const fs::path objects = root_ / "objects";
  std::error_code ec;
  if (!fs::is_directory(objects, ec)) {
    return out;
  }
  for (const auto& shard : fs::directory_iterator(objects, ec)) {
    if (!shard.is_directory()) {
      continue;
    }
    const std::string prefix = shard.path().filename().string();
    for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
      const std::string name = file.path().filename().string();
      if (name.size() < 5 || name.substr(name.size() - 5) != ".json") {
        continue;  // tmp leftovers are gc()'s business
      }
      EntryInfo info;
      info.key = prefix + name.substr(0, name.size() - 5);
      info.bytes = file.is_regular_file() ? file.file_size() : 0;
      info.mtime = fs::last_write_time(file.path(), ec);
      // Best-effort runner label for status displays.
      std::ifstream in(file.path(), std::ios::binary);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        try {
          const obs::JsonValue envelope = obs::JsonValue::parse(text.str());
          if (const obs::JsonValue* runner = envelope.find("runner");
              runner != nullptr && runner->is_string()) {
            info.runner = runner->as_string();
          }
        } catch (const ContractViolation&) {
          // Leave runner empty; get() will classify it as corrupt.
        }
      }
      out.push_back(std::move(info));
    }
  }
  std::sort(out.begin(), out.end(), [](const EntryInfo& a,
                                       const EntryInfo& b) {
    return a.key < b.key;
  });
  return out;
}

std::size_t ResultCache::gc(const GcOptions& options) {
  std::error_code ec;
  // Sweep tmp leftovers from crashed writers first.
  const fs::path objects = root_ / "objects";
  if (fs::is_directory(objects, ec)) {
    for (const auto& shard : fs::directory_iterator(objects, ec)) {
      if (!shard.is_directory()) {
        continue;
      }
      for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
        const std::string name = file.path().filename().string();
        if (name.find(".json.tmp") != std::string::npos) {
          fs::remove(file.path(), ec);
        }
      }
    }
  }

  std::vector<EntryInfo> entries = scan();
  // Oldest first; key order breaks mtime ties so eviction is
  // reproducible on filesystems with coarse timestamps.
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.mtime != b.mtime) {
                return a.mtime < b.mtime;
              }
              return a.key < b.key;
            });
  std::uintmax_t total_bytes = 0;
  for (const EntryInfo& e : entries) {
    total_bytes += e.bytes;
  }

  std::size_t evicted = 0;
  std::size_t remaining = entries.size();
  for (const EntryInfo& e : entries) {
    const bool over_entries =
        options.max_entries != 0 && remaining > options.max_entries;
    const bool over_bytes =
        options.max_bytes != 0 && total_bytes > options.max_bytes;
    if (!over_entries && !over_bytes) {
      break;
    }
    fs::remove(entry_path(e.key), ec);
    total_bytes -= e.bytes;
    --remaining;
    ++evicted;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    count("sweep.cache.evict");
  }
  return evicted;
}

ResultCache::Stats ResultCache::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace radiocast::cache
