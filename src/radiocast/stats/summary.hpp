// Sample summaries for the experiment harness: moments, order statistics,
// and binomial (success-rate) confidence intervals.
#pragma once

#include <cstddef>
#include <vector>

namespace radiocast::stats {

/// Accumulates double-valued samples; keeps them all so exact quantiles are
/// available (experiment sample counts are small).
class Summary {
 public:
  void add(double x);

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  double variance() const;  ///< unbiased sample variance; 0 for count < 2
  double stddev() const;
  double min() const;
  double max() const;

  /// Exact sample quantile with linear interpolation, q in [0,1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Wilson score interval for a binomial proportion.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

/// `z` defaults to the 95% two-sided normal quantile.
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.959964);

}  // namespace radiocast::stats
