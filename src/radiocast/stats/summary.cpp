#include "radiocast/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "radiocast/common/check.hpp"

namespace radiocast::stats {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  sorted_valid_ = false;
}

double Summary::mean() const {
  RADIOCAST_CHECK_MSG(!samples_.empty(), "no samples");
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::variance() const {
  const auto n = static_cast<double>(samples_.size());
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  return std::max(0.0, (sum_sq_ - n * m * m) / (n - 1.0));
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  RADIOCAST_CHECK_MSG(!samples_.empty(), "no samples");
  return *std::ranges::min_element(samples_);
}

double Summary::max() const {
  RADIOCAST_CHECK_MSG(!samples_.empty(), "no samples");
  return *std::ranges::max_element(samples_);
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::ranges::sort(sorted_);
    sorted_valid_ = true;
  }
}

double Summary::quantile(double q) const {
  RADIOCAST_CHECK_MSG(!samples_.empty(), "no samples");
  RADIOCAST_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z) {
  RADIOCAST_CHECK_MSG(trials > 0, "need at least one trial");
  RADIOCAST_CHECK_MSG(successes <= trials, "successes exceed trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return Interval{std::max(0.0, (center - margin) / denom),
                  std::min(1.0, (center + margin) / denom)};
}

}  // namespace radiocast::stats
