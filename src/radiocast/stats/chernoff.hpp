// The quantitative bounds of Lemma 3 / Theorem 4, as evaluable functions,
// plus the Hoeffding/Chernoff tail the proof uses.
//
// Notation (paper §2.2):
//   M(ε) = ceil(log2(n/ε))
//   T(ε) = 2D + 5*max(sqrt(D*M), M)
//     — with this T, Pr[Binomial(T,1/2) < D] <= exp(-2 (T/2 - D)^2 / T)
//       <= 2^{-M} <= ε/n, which is the per-node failure bound in the
//       layer-progress argument. (The preprint's typesetting of T is
//       partially garbled; this reconstruction satisfies the same Chernoff
//       inequality the proof requires — see EXPERIMENTS.md.)
//   Theorem 4: with probability 1 - 2ε all nodes receive the message by
//   slot 2*ceil(log Δ) * T, and terminate by
//   2*ceil(log Δ) * (T + ceil(log2(N/ε))).
#pragma once

#include <cstddef>

namespace radiocast::stats {

/// Hoeffding upper bound on Pr[Binomial(t, p) <= threshold] for
/// threshold < t*p: exp(-2 (t*p - threshold)^2 / t). Returns 1 when the
/// threshold is at or above the mean.
double binomial_lower_tail_bound(double t, double p, double threshold);

/// M(ε) = ceil(log2(n/ε)), at least 1.
unsigned lemma3_m(std::size_t n, double epsilon);

/// T(ε) = 2D + 5*max(sqrt(D*M), M) (in Decay phases).
double lemma3_t(std::size_t diameter, std::size_t n, double epsilon);

/// Theorem 4 delivery bound, in slots: 2*ceil(log2 Δ) * T(ε).
double theorem4_delivery_slots(std::size_t diameter, std::size_t n,
                               std::size_t degree_bound, double epsilon);

/// Theorem 4 termination bound, in slots:
/// 2*ceil(log2 Δ) * (T(ε) + ceil(log2(N/ε))).
double theorem4_termination_slots(std::size_t diameter, std::size_t n,
                                  std::size_t network_size_bound,
                                  std::size_t degree_bound, double epsilon);

/// §2.2 property 2: expected total transmissions <= 2 n ceil(log2(N/ε)).
double message_complexity_bound(std::size_t n,
                                std::size_t network_size_bound,
                                double epsilon);

/// §2.3: BFS slot bound 2 D ceil(log2 Δ) ceil(log2(N/ε)).
double bfs_slot_bound(std::size_t diameter, std::size_t network_size_bound,
                      std::size_t degree_bound, double epsilon);

}  // namespace radiocast::stats
