// Exact analysis of the Decay procedure (paper §2.1, Theorem 1).
//
// Model: d neighbors of a receiver y all start Decay at slot 0. While
// active they all transmit each slot; after transmitting, each stays
// active with probability `cont` (the paper's coin = 1, cont = 1/2). y
// receives in the first slot where exactly one neighbor is active.
//
//   P(k, d)  = Pr[some slot in 0..k-1 has exactly one active neighbor]
//   P(∞, d) = lim_{k→∞} P(k, d)   — recurrence (1) of the paper:
//              P(∞,d) = Σ_{j} C(d,j) cont^j (1-cont)^{d-j} P(∞,j),
//              P(∞,0) = 0, P(∞,1) = 1.
//
// Theorem 1 (verified in tests and reproduced by bench_decay):
//   (i)  P(∞,d) >= 2/3 for every d >= 2 (with cont = 1/2);
//   (ii) P(k,d) > 1/2 whenever k >= 2*log2(d), d >= 2.
//
// Everything is O(k d^2) / O(d^2) double-precision dynamic programming:
// the number of active neighbors is a Markov chain with binomial
// transitions, absorbed at 1 (success) and 0 (failure).
#pragma once

#include <cstddef>
#include <vector>

namespace radiocast::stats {

/// Exact P(k, d) for continue-probability `cont` (default: the paper's
/// fair coin). Preconditions: cont in [0,1].
double decay_success_probability(unsigned k, std::size_t d,
                                 double cont = 0.5);

/// Exact P(k, j) for every j = 0..d in one DP pass (cheaper than d calls).
std::vector<double> decay_success_probabilities(unsigned k, std::size_t d,
                                                double cont = 0.5);

/// Exact limit P(∞, d).
double decay_limit_probability(std::size_t d, double cont = 0.5);

/// P(∞, j) for every j = 0..d in one pass.
std::vector<double> decay_limit_probabilities(std::size_t d,
                                              double cont = 0.5);

}  // namespace radiocast::stats
