// A fixed-width-bin histogram with an ASCII renderer, used by benches to
// show completion-time distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace radiocast::stats {

class Histogram {
 public:
  /// Bins [lo, hi) split into `bins` equal cells, plus under/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering, `width` characters for the longest bar.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace radiocast::stats
