#include "radiocast/stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "radiocast/common/check.hpp"

namespace radiocast::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RADIOCAST_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  RADIOCAST_CHECK_MSG(bins >= 1, "need at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac *
                                      static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  RADIOCAST_CHECK_MSG(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  RADIOCAST_CHECK_MSG(bin < counts_.size(), "bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  RADIOCAST_CHECK_MSG(bin < counts_.size(), "bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      counts_.empty() ? 0 : *std::ranges::max_element(counts_);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    std::snprintf(line, sizeof(line), "  [%10.1f, %10.1f) %8zu |",
                  bin_lo(b), bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof(line), "  underflow %zu, overflow %zu\n",
                  underflow_, overflow_);
    out += line;
  }
  return out;
}

}  // namespace radiocast::stats
