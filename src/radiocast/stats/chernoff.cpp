#include "radiocast/stats/chernoff.hpp"

#include <algorithm>
#include <cmath>

#include "radiocast/common/check.hpp"
#include "radiocast/common/types.hpp"
#include "radiocast/proto/decay.hpp"

namespace radiocast::stats {

double binomial_lower_tail_bound(double t, double p, double threshold) {
  RADIOCAST_CHECK_MSG(t > 0 && p >= 0.0 && p <= 1.0, "bad tail arguments");
  const double mean = t * p;
  if (threshold >= mean) {
    return 1.0;
  }
  const double gap = mean - threshold;
  return std::exp(-2.0 * gap * gap / t);
}

unsigned lemma3_m(std::size_t n, double epsilon) {
  return proto::decay_repetitions(n, epsilon);
}

double lemma3_t(std::size_t diameter, std::size_t n, double epsilon) {
  const double d = static_cast<double>(diameter);
  const double m = lemma3_m(n, epsilon);
  return 2.0 * d + 5.0 * std::max(std::sqrt(d * m), m);
}

double theorem4_delivery_slots(std::size_t diameter, std::size_t n,
                               std::size_t degree_bound, double epsilon) {
  const unsigned k = proto::decay_phase_length(degree_bound);
  return k * lemma3_t(diameter, n, epsilon);
}

double theorem4_termination_slots(std::size_t diameter, std::size_t n,
                                  std::size_t network_size_bound,
                                  std::size_t degree_bound, double epsilon) {
  const unsigned k = proto::decay_phase_length(degree_bound);
  const unsigned reps =
      proto::decay_repetitions(network_size_bound, epsilon);
  return k * (lemma3_t(diameter, n, epsilon) + reps);
}

double message_complexity_bound(std::size_t n,
                                std::size_t network_size_bound,
                                double epsilon) {
  return 2.0 * static_cast<double>(n) *
         proto::decay_repetitions(network_size_bound, epsilon);
}

double bfs_slot_bound(std::size_t diameter, std::size_t network_size_bound,
                      std::size_t degree_bound, double epsilon) {
  // D BFS phases of k * reps slots each; k = 2*ceil(log Δ) already carries
  // the paper's factor 2, so this is 2 D ceil(log Δ) ceil(log(N/ε)).
  const unsigned k = proto::decay_phase_length(degree_bound);
  const unsigned reps =
      proto::decay_repetitions(network_size_bound, epsilon);
  return static_cast<double>(std::max<std::size_t>(diameter, 1)) * k * reps;
}

}  // namespace radiocast::stats
