#include "radiocast/stats/decay_analysis.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::stats {

namespace {

/// Fills `pmf[j]` = C(a, j) cont^j (1-cont)^{a-j} for j = 0..a, computed
/// with the multiplicative recurrence (no factorial overflow).
void binomial_pmf(std::size_t a, double cont, std::vector<double>& pmf) {
  pmf.assign(a + 1, 0.0);
  const double stay = cont;
  const double stop = 1.0 - cont;
  if (stay == 0.0) {
    pmf[0] = 1.0;
    return;
  }
  if (stop == 0.0) {
    pmf[a] = 1.0;
    return;
  }
  // Start at j = 0 and walk up: pmf[j+1]/pmf[j] = (a-j)/(j+1) * stay/stop.
  // For numerical robustness start from the mode-side by computing in log
  // space would be overkill; stop^a underflows only for a ~> 1000 with
  // cont = 0.5, so accumulate from the larger end when needed.
  double base = 1.0;
  for (std::size_t i = 0; i < a; ++i) {
    base *= stop;
  }
  if (base > 0.0) {
    pmf[0] = base;
    for (std::size_t j = 0; j < a; ++j) {
      pmf[j + 1] = pmf[j] * static_cast<double>(a - j) /
                   static_cast<double>(j + 1) * (stay / stop);
    }
    return;
  }
  // Underflow path: anchor at the mode, then renormalize.
  const auto mode = static_cast<std::size_t>(
      static_cast<double>(a + 1) * stay);
  const std::size_t m = std::min(mode, a);
  pmf[m] = 1.0;
  for (std::size_t j = m; j < a; ++j) {
    pmf[j + 1] = pmf[j] * static_cast<double>(a - j) /
                 static_cast<double>(j + 1) * (stay / stop);
  }
  for (std::size_t j = m; j > 0; --j) {
    pmf[j - 1] = pmf[j] * static_cast<double>(j) /
                 static_cast<double>(a - j + 1) * (stop / stay);
  }
  double total = 0.0;
  for (const double x : pmf) {
    total += x;
  }
  for (double& x : pmf) {
    x /= total;
  }
}

void check_cont(double cont) {
  RADIOCAST_CHECK_MSG(cont >= 0.0 && cont <= 1.0,
                      "continue probability must be in [0,1]");
}

}  // namespace

std::vector<double> decay_success_probabilities(unsigned k, std::size_t d,
                                                double cont) {
  check_cont(cont);
  // g[r][a] = success probability with a active and r slots left;
  // g[0][*] = 0, g[r][1] = 1, g[r][0] = 0,
  // g[r][a] = Σ_j pmf_a[j] g[r-1][j]  for a >= 2.
  std::vector<double> prev(d + 1, 0.0);
  std::vector<double> cur(d + 1, 0.0);
  std::vector<double> pmf;
  for (unsigned r = 1; r <= k; ++r) {
    cur[0] = 0.0;
    if (d >= 1) {
      cur[1] = 1.0;
    }
    for (std::size_t a = 2; a <= d; ++a) {
      binomial_pmf(a, cont, pmf);
      double acc = 0.0;
      for (std::size_t j = 0; j <= a; ++j) {
        acc += pmf[j] * prev[j];
      }
      cur[a] = acc;
    }
    std::swap(prev, cur);
  }
  return prev;
}

double decay_success_probability(unsigned k, std::size_t d, double cont) {
  return decay_success_probabilities(k, d, cont)[d];
}

std::vector<double> decay_limit_probabilities(std::size_t d, double cont) {
  check_cont(cont);
  std::vector<double> p(d + 1, 0.0);
  if (d >= 1) {
    p[1] = 1.0;
  }
  std::vector<double> pmf;
  for (std::size_t a = 2; a <= d; ++a) {
    binomial_pmf(a, cont, pmf);
    // p[a] (1 - pmf[a]) = Σ_{j<a} pmf[j] p[j]; pmf[a] = cont^a < 1 unless
    // cont == 1, in which case the chain never leaves a and p[a] = 0.
    const double self = pmf[a];
    if (self >= 1.0) {
      p[a] = 0.0;
      continue;
    }
    double acc = 0.0;
    for (std::size_t j = 1; j < a; ++j) {
      acc += pmf[j] * p[j];
    }
    p[a] = acc / (1.0 - self);
  }
  return p;
}

double decay_limit_probability(std::size_t d, double cont) {
  return decay_limit_probabilities(d, cont)[d];
}

}  // namespace radiocast::stats
