#include "radiocast/proto/bfs.hpp"

#include <utility>

namespace radiocast::proto {

BgiBfs::BgiBfs(BroadcastParams params, BfsSchedule schedule)
    : params_(params),
      k_(params.phase_length()),
      t_(params.repetitions()),
      schedule_(schedule) {}

BgiBfs::BgiBfs(BroadcastParams params, sim::Message initial,
               BfsSchedule schedule)
    : BgiBfs(params, schedule) {
  message_ = std::move(initial);
  distance_ = 0;
  transmit_phase_ = 0;
}

std::uint64_t BgiBfs::distance() const {
  RADIOCAST_CHECK_MSG(informed(), "node has no distance label yet");
  return distance_;
}

sim::Action BgiBfs::on_slot(sim::NodeContext& ctx) {
  if (!informed() || done_) {
    return sim::Action::receive();
  }
  const std::uint64_t phase = ctx.now() / phase_length();
  if (phase < transmit_phase_) {
    return sim::Action::receive();  // waiting for our layer's turn
  }
  if (sub_rounds_done_ >= t_) {
    done_ = true;
    return sim::Action::receive();
  }
  if (schedule_ == BfsSchedule::kBlockPerLayer && phase > transmit_phase_) {
    // Our one transmit phase is over (t sub-rounds exactly fill it).
    done_ = true;
    return sim::Action::receive();
  }
  if (!run_.has_value()) {
    const bool start =
        schedule_ == BfsSchedule::kBlockPerLayer
            // Back-to-back sub-rounds, aligned at multiples of k within
            // the phase; every layer member entered at the phase boundary,
            // so the runs stay synchronized (Theorem 1's hypothesis per
            // sub-round).
            ? ctx.now() % k_ == 0
            // Literal pseudocode: a single Decay at each phase boundary.
            : ctx.now() % phase_length() == 0;
    if (!start) {
      return sim::Action::receive();
    }
    run_.emplace(k_, *message_, params_.stop_probability,
                 params_.send_before_flip);
  }
  const sim::Action action = run_->tick(ctx.rng());
  if (run_->phase_over()) {
    run_.reset();
    ++sub_rounds_done_;
  }
  return action;
}

void BgiBfs::on_receive(sim::NodeContext& ctx, const sim::Message& m) {
  if (!informed()) {
    message_ = m;
    // First reception during 0-based phase i: the transmitters of phase i
    // are (w.h.p.) exactly the nodes at distance i, so we are at i + 1 —
    // and it is our turn to transmit from the next phase on.
    const std::uint64_t phase = ctx.now() / phase_length();
    distance_ = phase + 1;
    transmit_phase_ = phase + 1;
  }
}

}  // namespace radiocast::proto
