// 64·W lanes of the paper's Decay procedure, one bit per Monte-Carlo
// trial.
//
// BatchDecay is the lane-parallel counterpart of DecayRun: every node
// carries `width` words of an `active` lane mask (lanes still in the coin
// game of the current phase) and of a `runs` mask (lanes that started the
// phase), stored node-major — node v's word w lives at index
// v * width + w, and word w of every node belongs to counter-RNG lane
// block `block0 + w`. One slot costs a few bitwise ops per (node, word)
// plus one bit-sliced coin draw per word that is active in at least one
// lane — the silent majority costs a load and a store.
//
// The coin: bit k of slice 0 is CounterRng::word(kSaltDecayCoin, block,
// slot, node) — for the fair coin (stop probability 1/2) that single
// slice IS the draw, 1 continues and 0 stops, matching the paper's "until
// coin = 0" and bit-identical to the engine's original fair-coin-only
// trajectories. Biased coins (any stop probability in (0,1), to 2^-32
// resolution) consume further slices per rng::SlicedBernoulli. The scalar
// counter-RNG protocol (CounterCoinBgiBroadcast) replays single bits of
// the very same masks, which is what makes the batched and scalar engines
// bit-identical rather than merely statistically equivalent.
//
// Both transmit-then-flip (the paper's "at least once!") and the
// flip-first ablation order are supported, as is crash retirement:
// retire() clears dead lanes out of both masks, the lane analog of a
// crashed node missing its on_slot polls (the counter-RNG family aborts a
// Decay run interrupted by a crash; see CounterCoinBgiBroadcast).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/rng/salts.hpp"
#include "radiocast/rng/sliced_bernoulli.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"

namespace radiocast::proto {

/// Domain-separation salt for the Decay coin words — defined in the
/// central registry (rng/salts.hpp); the alias keeps the historical
/// proto:: spelling at the draw sites. Part of the determinism contract:
/// changing it changes every counter-RNG/batched trajectory (but never
/// the classic per-node xoshiro streams).
using rng::kSaltDecayCoin;

/// The 64-lane fair-coin word at (slot, node) for one lane block. Bit k
/// (lane k): 1 = coin 1 (continue), 0 = coin 0 (stop). Slice 0 of the
/// general draw below; kept as the historical fair-coin spelling.
constexpr std::uint64_t decay_coin_word(const rng::CounterRng& rng,
                                        std::uint64_t block, Slot slot,
                                        NodeId node) noexcept {
  return rng.word(kSaltDecayCoin, block, slot, node);
}

/// One lane's fair-coin flip extracted from its block's coin word: true =
/// the coin came up 0 and the scalar DecayRun must stop transmitting.
constexpr bool decay_coin_stops(std::uint64_t coin_word,
                                std::size_t lane) noexcept {
  return ((coin_word >> lane) & 1U) == 0;
}

/// The 64-lane stop mask at (slot, node) for one lane block under an
/// arbitrary compiled stop probability: bit k set = lane k's coin stops.
/// For the fair coin this is exactly ~decay_coin_word(...).
constexpr std::uint64_t decay_stop_mask(const rng::CounterRng& rng,
                                        const rng::SlicedBernoulli& coin,
                                        std::uint64_t block, Slot slot,
                                        NodeId node) noexcept {
  return coin.mask(rng, kSaltDecayCoin, block, slot, node);
}

class BatchDecay {
 public:
  /// Lane-parallel Decay(k) state for `node_count` nodes × `width` lane
  /// words. Preconditions: k >= 1, width a supported lane width, and
  /// stop_probability in [0, 1]. `send_before_flip` selects the paper's
  /// transmit-then-flip order (true) or the flip-first ablation (false),
  /// as in DecayRun.
  BatchDecay(std::size_t node_count, std::size_t width, unsigned k,
             double stop_probability, bool send_before_flip);

  unsigned k() const noexcept { return k_; }
  const rng::SlicedBernoulli& coin() const noexcept { return coin_; }

  /// Starts a phase: lane set starters[v * width + w] of node v begins a
  /// fresh Decay(k) run (they all transmit first slot under the paper's
  /// order). Lanes outside starters stay silent for the whole phase.
  void begin_phase(std::span<const sim::batch::LaneMask> starters);

  /// Clears lanes outside `alive` (node-major, node_count * width words)
  /// out of both the active and runs masks: a crashed lane neither
  /// transmits nor earns phase credit for the run it abandoned.
  void retire(std::span<const sim::batch::LaneMask> alive);

  /// One slot of the current phase: writes tx[v * width + w] for every
  /// node (lanes transmitting this slot, masked by the engine-active
  /// `lanes[w]`) and advances the coin game with the (block0 + w, now,
  /// node)-keyed stop masks.
  void tick(Slot now, const rng::CounterRng& rng, std::uint64_t block0,
            std::span<const sim::batch::LaneMask> lanes,
            std::span<sim::batch::LaneMask> tx);

  /// runs()[v * width + w] = lanes of node v that started the current
  /// phase and have not been retired since. The caller
  /// (BatchBgiBroadcast) credits these lanes' phase counters when the
  /// phase's k-th slot has run.
  std::span<const sim::batch::LaneMask> runs() const noexcept {
    return runs_;
  }

 private:
  /// The width-templated tick kernel (decay_batch.cpp): a friend struct
  /// rather than a member template so the ISA-cloned wrappers can be
  /// plain free functions — GCC does not clone templates.
  friend struct BatchDecayKernels;

  unsigned k_;
  bool send_before_flip_;
  std::size_t width_;
  rng::SlicedBernoulli coin_;
  std::vector<sim::batch::LaneMask> active_;
  std::vector<sim::batch::LaneMask> runs_;
};

}  // namespace radiocast::proto
