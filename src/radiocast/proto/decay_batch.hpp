// 64 lanes of the paper's Decay procedure, one bit per Monte-Carlo trial.
//
// BatchDecay is the lane-parallel counterpart of DecayRun: every node
// carries an `active` lane mask (lanes still in the coin game of the
// current phase) and a `runs` mask (lanes that started the phase). One
// slot costs two bitwise ops per node plus one counter-RNG word per node
// that is active in at least one lane — the silent majority costs a load
// and a store.
//
// The coin: bit k of CounterRng::word(kSaltDecayCoin, block, slot, node)
// is lane k's flip at (slot, node) — 1 continues, 0 stops, matching the
// paper's "until coin = 0". One 64-bit hash serves all 64 lanes, and the
// scalar counter-RNG protocol (CounterCoinBgiBroadcast) replays single
// bits of the very same words, which is what makes the batched and scalar
// engines bit-identical rather than merely statistically equivalent.
//
// Supported regime: the fair coin only (stop probability 1/2 — one random
// bit per flip). Biased-coin ablations need a full uniform draw per lane
// and stay on the scalar engine (harness::batched_bgi_supported gates
// this). Both transmit-then-flip (the paper's "at least once!") and the
// flip-first ablation order are supported.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/common/types.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"

namespace radiocast::proto {

/// Domain-separation salt for the Decay coin words. Part of the
/// determinism contract: changing it changes every counter-RNG/batched
/// trajectory (but never the classic per-node xoshiro streams).
inline constexpr std::uint64_t kSaltDecayCoin = 0xDECA'C019'0000'0009ULL;

/// The 64-lane Decay coin word at (slot, node) for one lane block. Bit k
/// (lane k): 1 = coin 1 (continue), 0 = coin 0 (stop).
constexpr std::uint64_t decay_coin_word(const rng::CounterRng& rng,
                                        std::uint64_t block, Slot slot,
                                        NodeId node) noexcept {
  return rng.word(kSaltDecayCoin, block, slot, node);
}

/// One lane's flip extracted from its block's coin word: true = the coin
/// came up 0 and the scalar DecayRun must stop transmitting.
constexpr bool decay_coin_stops(std::uint64_t coin_word,
                                std::size_t lane) noexcept {
  return ((coin_word >> lane) & 1U) == 0;
}

class BatchDecay {
 public:
  /// Lane-parallel Decay(k) state for `node_count` nodes. Preconditions:
  /// k >= 1. `send_before_flip` selects the paper's transmit-then-flip
  /// order (true) or the flip-first ablation (false), as in DecayRun.
  BatchDecay(std::size_t node_count, unsigned k, bool send_before_flip);

  unsigned k() const noexcept { return k_; }

  /// Starts a phase: lane set starters[v] of node v begins a fresh
  /// Decay(k) run (they all transmit first slot under the paper's order).
  /// Lanes outside starters stay silent for the whole phase.
  void begin_phase(std::span<const sim::batch::LaneMask> starters);

  /// One slot of the current phase: writes tx[v] for every node (lanes
  /// transmitting this slot, masked by the engine-active `lanes`) and
  /// advances the coin game with the (block, now, node)-keyed words.
  void tick(Slot now, const rng::CounterRng& rng, std::uint64_t block,
            sim::batch::LaneMask lanes,
            std::span<sim::batch::LaneMask> tx);

  /// runs()[v] = lanes of node v that started the current phase. The
  /// caller (BatchBgiBroadcast) credits these lanes' phase counters when
  /// the phase's k-th slot has run.
  std::span<const sim::batch::LaneMask> runs() const noexcept {
    return runs_;
  }

 private:
  unsigned k_;
  bool send_before_flip_;
  std::vector<sim::batch::LaneMask> active_;
  std::vector<sim::batch::LaneMask> runs_;
};

}  // namespace radiocast::proto
