// The paper's §3.5 observation: if processors may transmit spontaneously
// (without having received a message first), C_n admits a trivial 3-round
// deterministic broadcast — which is why the stronger family C*_n is needed
// to sustain the lower bound in that model.
//
//   round 0: the source transmits m (all second-layer nodes receive it).
//   round 1: the sink spontaneously "awakes" and transmits the smallest of
//            its neighbors' IDs (it knows them).
//   round 2: that named node transmits m; the sink, its only listener with
//            a single active in-neighbor, receives it. Broadcast complete.
//
// No collision detection is needed; the only departure from Definition 1
// is the spontaneous transmission in round 1.
#pragma once

#include <optional>

#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

class SpontaneousStarBroadcast : public sim::Protocol {
 public:
  static constexpr std::uint64_t kNominateTag = 0x5A;

  /// `n` = number of second-layer nodes; role deduced from the node id
  /// (0 = source, n+1 = sink). The source carries the payload.
  SpontaneousStarBroadcast(std::size_t n,
                           std::optional<sim::Message> payload);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return terminated_; }

  bool informed() const noexcept { return message_.has_value(); }
  Slot informed_at() const noexcept { return informed_at_; }

 private:
  enum class Role { kSource, kSecondLayer, kSink };

  std::size_t n_;
  Role role_ = Role::kSecondLayer;
  bool nominated_ = false;
  std::optional<sim::Message> message_;
  Slot informed_at_ = kNever;
  bool terminated_ = false;
};

}  // namespace radiocast::proto
