// Point-to-point routing over a multi-hop radio network without collision
// detection — the second application the paper attributes to [BII89]
// ("efficient protocols for ... point-to-point routing of messages in
// multi-hop radio networks"), built from the two primitives this library
// already reproduces:
//
//   stage 1 (slots [0, bfs_horizon)): the §2.3 BFS protocol rooted at the
//     DESTINATION labels every node with its hop distance to it;
//   stage 2 (afterwards): the source injects the packet; it travels down
//     the label gradient — a node relays the packet (t aligned Decay
//     phases, §2.1) iff its own label is strictly smaller than the
//     sender's, and every node forwards at most once. The packet therefore
//     floods only the cone of shortest paths toward the destination,
//     reaching it in ~dist(source, destination) phases w.h.p. while
//     leaving the rest of the network silent.
//
// This is the natural label-guided scheme, not BII89's protocol (whose
// details are in that paper); see DESIGN.md §6.
#pragma once

#include <optional>

#include "radiocast/proto/bfs.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

struct RoutingParams {
  BroadcastParams base;
  /// Upper bound on the network diameter; sizes the BFS stage.
  std::size_t diameter_bound = 0;

  /// Slots spent in the BFS stage: (D_bound + 2) BFS phases.
  Slot bfs_horizon() const {
    return static_cast<Slot>(diameter_bound + 2) * base.phase_length() *
           base.repetitions();
  }
  /// Total slots after which everything is quiescent: BFS stage plus a
  /// routing stage of (D_bound + 2) relay windows of t phases each.
  Slot horizon() const { return 2 * bfs_horizon(); }
};

class PointToPointRouting : public sim::Protocol {
 public:
  static constexpr std::uint64_t kPacketTag = 0x907E;

  enum class Role : std::uint8_t { kSource, kDestination, kRelay };

  /// The source's payload words are carried to the destination.
  PointToPointRouting(RoutingParams params, Role role,
                      std::vector<std::uint64_t> payload = {});

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override;

  /// Destination only: has the packet arrived?
  bool delivered() const noexcept { return has_packet_ && role_ == Role::kDestination; }
  bool has_packet() const noexcept { return has_packet_; }
  Slot packet_at() const noexcept { return packet_at_; }
  const std::vector<std::uint64_t>& payload() const noexcept {
    return payload_;
  }

  /// The BFS label this node computed in stage 1 (distance to the
  /// destination); meaningful only if labelled().
  bool labelled() const noexcept { return bfs_.informed(); }
  std::uint64_t label() const { return bfs_.distance(); }

 private:
  sim::Message packet_message(NodeId self) const;

  RoutingParams params_;
  Role role_;
  unsigned k_;
  unsigned t_;
  BgiBfs bfs_;
  std::vector<std::uint64_t> payload_;
  bool has_packet_ = false;
  Slot packet_at_ = kNever;
  unsigned relay_phases_left_ = 0;
  std::optional<DecayRun> run_;
};

}  // namespace radiocast::proto
