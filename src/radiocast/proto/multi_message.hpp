// Multi-message broadcast built on Decay — a simplified take on the
// follow-on work [BII89] the paper cites ("Bar-Yehuda, Israeli and Itai,
// building on the ideas presented in our protocol, have developed efficient
// protocols for broadcasting multiple messages").
//
// We implement the straightforward *sequential epoch* scheme: time is
// divided into epochs of a fixed length (chosen by the caller from the
// Theorem-4 bound so that one single-message broadcast succeeds whp within
// an epoch); in epoch q the source initiates message q and every node runs
// a fresh instance of the single-message Broadcast protocol. Messages
// collected in earlier epochs are retained. This is deliberately not the
// pipelined BII89 protocol — see DESIGN.md §6 — but it exercises the
// library's composition of Decay-based protocols over time.
#pragma once

#include <optional>
#include <vector>

#include "radiocast/proto/broadcast.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

struct MultiMessageParams {
  BroadcastParams base;
  /// Slots per epoch; rounded up internally to a multiple of the Decay
  /// phase length so phase alignment is preserved inside every epoch.
  Slot epoch_length = 0;
  /// Number of messages the source will send (known to all, like N).
  std::size_t message_count = 1;
};

class MultiMessageBroadcast : public sim::Protocol {
 public:
  /// A non-source node.
  explicit MultiMessageBroadcast(MultiMessageParams params);

  /// The source: sends `messages[q]` in epoch q.
  MultiMessageBroadcast(MultiMessageParams params,
                        std::vector<sim::Message> messages);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return terminated_; }

  /// Messages this node obtained, in epoch order (gaps are skipped).
  const std::vector<sim::Message>& delivered() const noexcept {
    return delivered_;
  }

  Slot epoch_length() const noexcept { return params_.epoch_length; }

 private:
  void roll_epoch(std::size_t epoch);

  MultiMessageParams params_;
  bool is_source_ = false;
  std::vector<sim::Message> outgoing_;
  std::optional<BgiBroadcast> inner_;
  std::size_t current_epoch_ = static_cast<std::size_t>(-1);
  std::vector<sim::Message> delivered_;
  bool terminated_ = false;
};

}  // namespace radiocast::proto
