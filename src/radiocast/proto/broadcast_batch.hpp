// Broadcast_scheme on the bit-parallel engine: 64·W trials per block.
//
// Two protocol variants live here, and they are two views of the same
// random experiment:
//
//   BatchBgiBroadcast     — all 64·width lanes of a block row at once,
//                           driven by a sim::batch::BatchSimulator.
//                           Per-node state is `width` LaneMask words per
//                           kind (informed, done) plus a bit-sliced phase
//                           counter (kPhasePlanes planes per word).
//   CounterCoinBgiBroadcast — one scalar trial on the classic Simulator,
//                           but drawing its Decay coins from the SAME
//                           (seed, block, slot, node)-keyed counter-RNG
//                           stop masks, bit `lane` of each. Lane k of
//                           block b therefore equals scalar trial
//                           64*b + k bit-for-bit — the differential
//                           suite in tests/test_batch.cpp compares full
//                           outcome sequences between the two.
//
// Supported regime (batched_bgi_supported in harness/batch_runner.hpp):
// aligned phases and a repetition count the 16-plane phase counters can
// hold — which is every t an IEEE double epsilon can produce. Any
// stop_probability in [0, 1] is batchable via bit-sliced coins
// (rng/sliced_bernoulli.hpp), and fault configurations without scripted
// topology events run as lane planes (fault/lane_plan.hpp). The
// start-immediately ablation (align_phases = false) and scripted edge
// events stay on the classic scalar engine.
//
// Crash semantics of the counter-RNG family: a Decay run interrupted by a
// crash is aborted, not resumed — the lane earns no phase credit for it
// and waits for the next boundary after revival. The batched side
// implements this by retiring dead lanes each slot; the scalar replay
// detects the missed polls (a dead node is not polled) and resets its
// run. This differs from the classic engine, whose nodes freeze and
// resume mid-run; it is the lane-compatible semantics, and the
// differential suite pins both sides of it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay_batch.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/rng/sliced_bernoulli.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"

namespace radiocast::proto {

/// True when BatchBgiBroadcast reproduces the scalar counter-RNG protocol
/// exactly: aligned phases (all lanes share the global phase grid; the
/// start-immediately ablation gives every node its own phase offset) and
/// a repetition count the 16-plane phase counters can hold. The coin bias
/// no longer matters — any stop probability is drawn bit-sliced.
bool batchable(const BroadcastParams& params);

class BatchBgiBroadcast final : public sim::batch::BatchedProtocol {
 public:
  /// Lane block rows `first_block` .. `first_block + width - 1` of
  /// Broadcast_scheme trials on a `node_count`-node topology: every node
  /// in `sources` holds the message at slot 0 in every lane.
  /// Precondition: batchable(params), lane_width_supported(width).
  BatchBgiBroadcast(const BroadcastParams& params, std::size_t node_count,
                    std::span<const NodeId> sources, std::uint64_t seed,
                    std::uint64_t first_block, std::size_t width);

  void emit(Slot now, std::span<const sim::batch::LaneMask> lanes,
            std::span<const sim::batch::LaneMask> alive,
            std::span<sim::batch::LaneMask> tx) override;
  void absorb(Slot now, std::span<const sim::batch::LaneMask> delivered,
              std::span<const NodeId> touched) override;

  /// out[w] = lanes of word w in which every node is informed
  /// (AND-reduction, early exit).
  void all_informed_lanes(std::span<sim::batch::LaneMask> out) const;

  /// out[w] = lanes of word w in which some informed node still has Decay
  /// phases left — the complement of the scalar harness's dead()
  /// predicate: once a lane has no live relayer, nothing in it can ever
  /// change. Liveness here is protocol state, not crash state, exactly
  /// like the scalar harness's predicates (a crashed lane still counts
  /// while its informed nodes have phases left — it may be revived).
  void live_relayer_lanes(std::span<sim::batch::LaneMask> out) const;

  unsigned k() const noexcept { return k_; }
  unsigned t() const noexcept { return t_; }
  std::size_t width() const noexcept { return width_; }

  /// Bit-sliced per-(node, lane) count of completed Decay phases: plane p
  /// of element (v, w) holds bit p of each lane's count. Counts never
  /// exceed t_; batchable() gates t < 2^kPhasePlanes.
  static constexpr std::size_t kPhasePlanes = 16;

 private:
  /// Credits one finished Decay phase to every lane that ran it, and marks
  /// lanes reaching t phases as done. Called after the k-th tick of the
  /// phase — the same slot in which the scalar protocol increments
  /// phases_done_, so the harness's per-slot dead() check sees the credit
  /// at the same clock value in both engines.
  void credit_phase();

  unsigned k_;
  unsigned t_;
  rng::CounterRng rng_;
  std::uint64_t block_;
  std::size_t width_;
  BatchDecay decay_;
  std::vector<sim::batch::LaneMask> informed_;
  std::vector<sim::batch::LaneMask> done_;
  std::vector<sim::batch::LaneMask> phase_planes_;
  std::vector<sim::batch::LaneMask> starters_;  ///< per-boundary scratch
};

/// The scalar protocol with its coins rerouted through the counter RNG:
/// behaves exactly like BgiBroadcast except that each Decay flip is bit
/// `lane` of the bit-sliced stop mask keyed on (seed, block, slot, node)
/// instead of a draw from the node's sequential xoshiro stream — for any
/// stop probability, not just the fair coin. This is the replay view of
/// batched lane (block, lane) — and the reference implementation the
/// batched engine is differentially tested against.
///
/// It also carries the counter-RNG family's crash semantics: a run whose
/// node missed a poll (it was dead for at least one slot) is aborted
/// without phase credit, mirroring the batched engine's lane retirement.
class CounterCoinBgiBroadcast final : public BgiBroadcast {
 public:
  CounterCoinBgiBroadcast(const BroadcastParams& params, std::uint64_t seed,
                          std::uint64_t block, std::size_t lane);
  /// Source (initiator) variant: holds `initial` from slot 0.
  CounterCoinBgiBroadcast(const BroadcastParams& params, sim::Message initial,
                          std::uint64_t seed, std::uint64_t block,
                          std::size_t lane);

  sim::Action on_slot(sim::NodeContext& ctx) override;

 protected:
  sim::Action tick_run(sim::NodeContext& ctx) override;

 private:
  rng::CounterRng rng_;
  rng::SlicedBernoulli coin_;
  std::uint64_t block_;
  std::size_t lane_;
  Slot last_polled_ = kNever;
};

}  // namespace radiocast::proto
