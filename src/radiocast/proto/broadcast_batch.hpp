// Broadcast_scheme on the bit-parallel engine: 64 trials per word.
//
// Two protocol variants live here, and they are two views of the same
// random experiment:
//
//   BatchBgiBroadcast     — all 64 lanes of a block at once, driven by a
//                           sim::batch::BatchSimulator. Per-node state is
//                           one LaneMask per kind (informed, done) plus a
//                           bit-sliced phase counter (8 planes per node).
//   CounterCoinBgiBroadcast — one scalar trial on the classic Simulator,
//                           but drawing its Decay coins from the SAME
//                           (seed, block, slot, node)-keyed counter-RNG
//                           words, bit `lane` of each. Lane k of block b
//                           therefore equals scalar trial 64*b + k
//                           bit-for-bit — the differential suite in
//                           tests/test_batch.cpp compares full outcome
//                           sequences between the two.
//
// Supported regime (batched_bgi_supported in harness/batch_runner.hpp):
// fair coin (stop_probability == 0.5), aligned phases, t < 256, no faults.
// Everything else falls back to the classic scalar engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay_batch.hpp"
#include "radiocast/rng/counter_rng.hpp"
#include "radiocast/sim/batch/batch_simulator.hpp"

namespace radiocast::proto {

/// True when BatchBgiBroadcast reproduces the scalar protocol exactly:
/// fair coin (one random bit per flip — a biased coin cannot be drawn as
/// a single lane bit), aligned phases (all lanes share the global phase
/// grid; the start-immediately ablation gives every node its own phase
/// offset), and a repetition count the 8-plane phase counters can hold.
bool batchable(const BroadcastParams& params);

class BatchBgiBroadcast final : public sim::batch::BatchedProtocol {
 public:
  /// One lane block (number `block`) of Broadcast_scheme trials on a
  /// `node_count`-node topology: every node in `sources` holds the message
  /// at slot 0 in every lane. Precondition: batchable(params).
  BatchBgiBroadcast(const BroadcastParams& params, std::size_t node_count,
                    std::span<const NodeId> sources, std::uint64_t seed,
                    std::uint64_t block);

  void emit(Slot now, sim::batch::LaneMask lanes,
            std::span<sim::batch::LaneMask> tx) override;
  void absorb(Slot now, std::span<const sim::batch::LaneMask> delivered,
              std::span<const NodeId> touched) override;

  /// Lanes in which every node is informed (AND-reduction, early exit).
  sim::batch::LaneMask all_informed_lanes() const;

  /// Lanes in which some informed node still has Decay phases left — the
  /// complement of the scalar harness's dead() predicate: once a lane has
  /// no live relayer, nothing in it can ever change.
  sim::batch::LaneMask live_relayer_lanes() const;

  unsigned k() const noexcept { return k_; }
  unsigned t() const noexcept { return t_; }

  /// Bit-sliced per-(node, lane) count of completed Decay phases: plane p
  /// of node v holds bit p of each lane's count. Counts never exceed t_;
  /// batchable() gates t < 2^kPhasePlanes.
  static constexpr std::size_t kPhasePlanes = 8;

 private:
  /// Credits one finished Decay phase to every lane that ran it, and marks
  /// lanes reaching t phases as done. Called after the k-th tick of the
  /// phase — the same slot in which the scalar protocol increments
  /// phases_done_, so the harness's per-slot dead() check sees the credit
  /// at the same clock value in both engines.
  void credit_phase();

  unsigned k_;
  unsigned t_;
  rng::CounterRng rng_;
  std::uint64_t block_;
  BatchDecay decay_;
  std::vector<sim::batch::LaneMask> informed_;
  std::vector<sim::batch::LaneMask> done_;
  std::vector<sim::batch::LaneMask> phase_planes_;
  std::vector<sim::batch::LaneMask> starters_;  ///< per-boundary scratch
};

/// The scalar protocol with its coins rerouted through the counter RNG:
/// behaves exactly like BgiBroadcast except that each Decay flip is bit
/// `lane` of decay_coin_word(seed, block, slot, node) instead of a draw
/// from the node's sequential xoshiro stream. This is the replay view of
/// batched lane (block, lane) — and the reference implementation the
/// batched engine is differentially tested against.
class CounterCoinBgiBroadcast final : public BgiBroadcast {
 public:
  CounterCoinBgiBroadcast(const BroadcastParams& params, std::uint64_t seed,
                          std::uint64_t block, std::size_t lane);
  /// Source (initiator) variant: holds `initial` from slot 0.
  CounterCoinBgiBroadcast(const BroadcastParams& params, sim::Message initial,
                          std::uint64_t seed, std::uint64_t block,
                          std::size_t lane);

 protected:
  sim::Action tick_run(sim::NodeContext& ctx) override;

 private:
  rng::CounterRng rng_;
  std::uint64_t block_;
  std::size_t lane_;
};

}  // namespace radiocast::proto
