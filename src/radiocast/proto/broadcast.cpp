#include "radiocast/proto/broadcast.hpp"

#include <utility>

namespace radiocast::proto {

BgiBroadcast::BgiBroadcast(BroadcastParams params)
    : params_(params),
      k_(params.phase_length()),
      t_(params.repetitions()) {}

BgiBroadcast::BgiBroadcast(BroadcastParams params, sim::Message initial)
    : BgiBroadcast(params) {
  message_ = std::move(initial);
  informed_at_ = 0;
}

const sim::Message& BgiBroadcast::message() const {
  RADIOCAST_CHECK_MSG(message_.has_value(), "node is not informed yet");
  return *message_;
}

sim::Action BgiBroadcast::on_slot(sim::NodeContext& ctx) {
  if (!informed() || phases_done_ >= t_) {
    return sim::Action::receive();
  }
  // Start a Decay run only on a phase boundary, so every competing
  // transmitter in the network is synchronized (Theorem 1's hypothesis).
  // The ablation variant starts immediately and shows why that matters.
  if (!run_.has_value()) {
    if (params_.align_phases && ctx.now() % k_ != 0) {
      return sim::Action::receive();
    }
    run_.emplace(k_, *message_, params_.stop_probability,
                 params_.send_before_flip);
  }
  const sim::Action action = tick_run(ctx);
  if (run_->phase_over()) {
    run_.reset();
    ++phases_done_;
  }
  return action;
}

sim::Action BgiBroadcast::tick_run(sim::NodeContext& ctx) {
  return run_->tick(ctx.rng());
}

void BgiBroadcast::on_receive(sim::NodeContext& ctx, const sim::Message& m) {
  if (!informed()) {
    message_ = m;
    informed_at_ = ctx.now();
  }
}

bool BgiBroadcast::terminated() const {
  return informed() && phases_done_ >= t_;
}

}  // namespace radiocast::proto
