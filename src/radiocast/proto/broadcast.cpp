#include "radiocast/proto/broadcast.hpp"

#include <utility>

namespace radiocast::proto {

BgiBroadcast::BgiBroadcast(BroadcastParams params)
    : params_(params),
      k_(params.phase_length()),
      t_(params.repetitions()) {}

BgiBroadcast::BgiBroadcast(BroadcastParams params, sim::Message initial)
    : BgiBroadcast(params) {
  message_ = std::move(initial);
  informed_at_ = 0;
}

const sim::Message& BgiBroadcast::message() const {
  RADIOCAST_CHECK_MSG(message_.has_value(), "node is not informed yet");
  return *message_;
}

sim::Action BgiBroadcast::on_slot(sim::NodeContext& ctx) {
  if (!informed() || phases_done_ >= t_) {
    return sim::Action::receive();
  }
  if (pending_phase_end_ != 0) {
    // Listening out the tail of a phase whose run already stopped: the
    // skipped-over ticks drew no coin and changed nothing observable. The
    // phase credit lands during the phase's final slot — the same slot
    // the classic tick-by-tick bookkeeping granted it.
    if (ctx.now() + 1 < pending_phase_end_) {
      return sim::Action::receive();
    }
    pending_phase_end_ = 0;
    ++phases_done_;
    return sim::Action::receive();
  }
  // Start a Decay run only on a phase boundary, so every competing
  // transmitter in the network is synchronized (Theorem 1's hypothesis).
  // The ablation variant starts immediately and shows why that matters.
  if (!run_.has_value()) {
    if (params_.align_phases && ctx.now() % k_ != 0) {
      return sim::Action::receive();
    }
    run_.emplace(k_, *message_, params_.stop_probability,
                 params_.send_before_flip);
    run_start_ = ctx.now();
  }
  const sim::Action action = tick_run(ctx);
  if (run_->phase_over()) {
    run_.reset();
    ++phases_done_;
  } else if (run_->transmissions_done()) {
    // The coin stopped this node mid-phase: every remaining tick would be
    // a pure receive() (DecayRun draws nothing once transmissions are
    // done), so complete the run now and remember when its phase ends.
    pending_phase_end_ = run_start_ + k_;
    run_.reset();
  }
  return action;
}

sim::Action BgiBroadcast::tick_run(sim::NodeContext& ctx) {
  return run_->tick(ctx.rng());
}

void BgiBroadcast::on_receive(sim::NodeContext& ctx, const sim::Message& m) {
  if (!informed()) {
    message_ = m;
    informed_at_ = ctx.now();
  }
}

bool BgiBroadcast::terminated() const {
  return informed() && phases_done_ >= t_;
}

Slot BgiBroadcast::dormant_until() const {
  if (!informed() || phases_done_ >= t_) {
    // Uninformed (only on_receive can change that) or terminated (nothing
    // ever will): dormant until a callback.
    return kNever;
  }
  if (pending_phase_end_ != 0) {
    // Pure listening until the phase's final slot, where the phase credit
    // is granted — that poll must happen.
    return pending_phase_end_ - 1;
  }
  return 0;
}

}  // namespace radiocast::proto
