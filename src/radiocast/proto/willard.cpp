#include "radiocast/proto/willard.hpp"

#include <cmath>

#include "radiocast/common/check.hpp"
#include "radiocast/common/types.hpp"

namespace radiocast::proto {

namespace {
constexpr std::uint64_t kCandidateTag = 0xE1;
constexpr std::uint64_t kAckTag = 0xE2;
}  // namespace

WillardElection::WillardElection(std::size_t candidate_bound)
    : cycle_(ceil_log2(std::max<std::size_t>(candidate_bound, 2)) + 1) {}

void WillardElection::on_start(sim::NodeContext& ctx) {
  RADIOCAST_CHECK_MSG(ctx.collision_detection(),
                      "WillardElection requires the CD model variant");
  RADIOCAST_CHECK_MSG(!ctx.neighbors_out().empty(),
                      "a lone node cannot learn that it won");
}

sim::Action WillardElection::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  if (now % 2 == 0) {
    // Contention slot of round r = now / 2.
    transmitted_this_slot_ = false;
    if (leader_.has_value()) {
      return sim::Action::receive();
    }
    const auto level = static_cast<unsigned>((now / 2) % cycle_);
    const double p = std::ldexp(1.0, -static_cast<int>(level));  // 2^-level
    if (ctx.rng().bernoulli(p)) {
      transmitted_this_slot_ = true;
      sim::Message m;
      m.origin = ctx.id();
      m.tag = kCandidateTag;
      return sim::Action::transmit(m);
    }
    return sim::Action::receive();
  }
  // Ack slot. A node that just learned the leader echoes once so the
  // winner — who cannot listen while transmitting — learns it won: any
  // activity here (single ack or CD-detected collision of many acks)
  // confirms the preceding contention slot had a unique transmitter.
  if (ack_due_) {
    ack_due_ = false;
    sim::Message m;
    m.origin = ctx.id();
    m.tag = kAckTag;
    return sim::Action::transmit(m);
  }
  return sim::Action::receive();
}

void WillardElection::on_receive(sim::NodeContext& ctx,
                                 const sim::Message& m) {
  if (ctx.now() % 2 == 0) {
    if (m.tag == kCandidateTag && !leader_.has_value()) {
      leader_ = m.origin;
      ack_due_ = true;
    }
    return;
  }
  if (m.tag == kAckTag && transmitted_this_slot_ && !leader_.has_value()) {
    leader_ = ctx.id();  // our lone transmission got through (n == 2 case)
  }
}

void WillardElection::on_collision(sim::NodeContext& ctx) {
  if (ctx.now() % 2 == 1 && transmitted_this_slot_ &&
      !leader_.has_value()) {
    // Many ackers collided — still proof that we won the contention slot.
    leader_ = ctx.id();
  }
}

NodeId WillardElection::leader() const {
  RADIOCAST_CHECK_MSG(leader_.has_value(), "no leader elected yet");
  return *leader_;
}

// --- WillardBinarySearchElection ---------------------------------------------

namespace {
constexpr std::uint64_t kEchoTag = 0xE3;
}  // namespace

WillardBinarySearchElection::WillardBinarySearchElection(
    std::size_t candidate_bound)
    : max_level_(ceil_log2(std::max<std::size_t>(candidate_bound, 2))),
      hi_(max_level_) {}

void WillardBinarySearchElection::on_start(sim::NodeContext& ctx) {
  RADIOCAST_CHECK_MSG(ctx.collision_detection(),
                      "WillardBinarySearchElection requires the CD variant");
  RADIOCAST_CHECK_MSG(!ctx.neighbors_out().empty(),
                      "a lone node cannot learn that it won");
}

sim::Action WillardBinarySearchElection::on_slot(sim::NodeContext& ctx) {
  const Slot phase = ctx.now() % 3;
  if (phase == 0) {
    // A node that heard nothing in the echo slot settles the previous
    // round as silence now, before probing the next level.
    if (pending_update_) {
      observe_round(/*collision=*/false, /*success=*/saw_success_);
    }
    // Contention slot at the probed level mid = (lo + hi) / 2.
    transmitted_this_slot_ = false;
    saw_collision_ = false;
    saw_success_ = false;
    if (leader_.has_value()) {
      return sim::Action::receive();
    }
    const unsigned mid = (lo_ + hi_) / 2;
    const double p = std::ldexp(1.0, -static_cast<int>(mid));
    if (ctx.rng().bernoulli(p)) {
      transmitted_this_slot_ = true;
      sim::Message m;
      m.origin = ctx.id();
      m.tag = kCandidateTag;
      return sim::Action::transmit(m);
    }
    return sim::Action::receive();
  }
  if (phase == 1) {
    // Ack slot: receivers of a candidate id confirm the win.
    if (ack_due_) {
      ack_due_ = false;
      sim::Message m;
      m.origin = ctx.id();
      m.tag = kAckTag;
      return sim::Action::transmit(m);
    }
    return sim::Action::receive();
  }
  // Echo slot: collision detectors tell the (deaf) transmitters.
  if (saw_collision_ && !transmitted_this_slot_) {
    sim::Message m;
    m.origin = ctx.id();
    m.tag = kEchoTag;
    // Round bookkeeping happens in observe_round at slot end; flag now so
    // the echoer itself also updates with "collision".
    observe_round(/*collision=*/true, /*success=*/false);
    return sim::Action::transmit(m);
  }
  // Everyone else learns the round's verdict from what this slot carries;
  // a silent echo slot means the contention slot had <= 1 transmitter.
  // Defer the final decision to on_receive / on_collision, with a default
  // of "silence" applied here for nodes that will hear nothing. To keep
  // the state machine simple we decide at the NEXT slot-0 boundary via
  // pending flags: mark silence now, upgrade to collision on activity.
  pending_update_ = true;
  return sim::Action::receive();
}

void WillardBinarySearchElection::observe_round(bool collision,
                                                bool success) {
  pending_update_ = false;
  if (success || leader_.has_value()) {
    return;
  }
  const unsigned mid = (lo_ + hi_) / 2;
  // "Silence" at level 0 is logically impossible with >= 2 live
  // candidates: at p = 1 they all transmitted and were all deaf — a
  // hidden collision. Reclassify, or tiny networks (n = 2) deadlock.
  const bool effective_collision = collision || mid == 0;
  if (effective_collision) {
    // Too many transmitters: need stronger suppression (higher level).
    if (mid >= hi_) {
      lo_ = 0;
      hi_ = max_level_;  // interval exhausted: restart
    } else {
      lo_ = mid + 1;
    }
  } else {
    // Silence: too much suppression (lower level).
    if (mid <= lo_) {
      lo_ = 0;
      hi_ = max_level_;
    } else {
      hi_ = mid - 1;
    }
  }
}

void WillardBinarySearchElection::on_receive(sim::NodeContext& ctx,
                                             const sim::Message& m) {
  const Slot phase = ctx.now() % 3;
  if (phase == 0 && m.tag == kCandidateTag && !leader_.has_value()) {
    leader_ = m.origin;
    saw_success_ = true;
    ack_due_ = true;
    return;
  }
  if (phase == 1 && m.tag == kAckTag && transmitted_this_slot_ &&
      !leader_.has_value()) {
    leader_ = ctx.id();
    return;
  }
  if (phase == 2 && m.tag == kEchoTag && pending_update_) {
    observe_round(/*collision=*/true, /*success=*/saw_success_);
  }
}

void WillardBinarySearchElection::on_collision(sim::NodeContext& ctx) {
  const Slot phase = ctx.now() % 3;
  if (phase == 0) {
    saw_collision_ = true;
    return;
  }
  if (phase == 1 && transmitted_this_slot_ && !leader_.has_value()) {
    leader_ = ctx.id();  // many ackers collided: still proof we won
    return;
  }
  if (phase == 2 && pending_update_) {
    observe_round(/*collision=*/true, /*success=*/saw_success_);
  }
}

NodeId WillardBinarySearchElection::leader() const {
  RADIOCAST_CHECK_MSG(leader_.has_value(), "no leader elected yet");
  return *leader_;
}

}  // namespace radiocast::proto
