// The paper's randomized broadcast protocol (§2.2):
//
//   procedure Broadcast;
//     k := 2*ceil(log Δ); t := ceil(log(N/ε));
//     Wait until receiving a message, say m;
//     do t times
//       Wait until (Time mod k) = 0;
//       Decay(k, m);
//     od
//
// Broadcast_scheme = every node runs Broadcast; the source holds the
// message at Time 0 and enters the loop immediately, so its phase-0 Decay
// transmission is the paper's "initial transmission". The Remark after
// Theorem 4 (multi-source initiation) is obtained by constructing several
// nodes with `initially_informed`.
//
// Guarantees reproduced by the benches:
//   Lemma 2  : Pr[all nodes receive m] >= 1 - ε.
//   Theorem 4: with probability 1-2ε all nodes receive m within
//              2*ceil(log Δ) * T slots, T = 2D + 5*max(sqrt(D)*sqrt(M), M),
//              M = ceil(log(n/ε)); and all terminate by
//              2*ceil(log Δ) * (T + ceil(log(N/ε))).
//
// The protocol uses no IDs, no neighbor knowledge, and no topology
// knowledge — only N, Δ and ε — which is what makes it robust to dynamic
// topology (§2.2 property 3) and directed links (property 4).
#pragma once

#include <optional>

#include "radiocast/proto/decay.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

struct BroadcastParams {
  std::size_t network_size_bound;  ///< the paper's N (upper bound on n)
  std::size_t degree_bound;        ///< the paper's Δ (bound on max in-degree)
  double epsilon = 0.1;            ///< target failure probability ε
  double stop_probability = 0.5;   ///< Decay coin bias (Hofri ablation)

  // --- ablation switches (the paper's design is the default) ------------
  /// Start Decay only at Time mod k == 0 (synchronizing competitors, the
  /// hypothesis of Theorem 1). false = start immediately when informed.
  bool align_phases = true;
  /// The Decay transmit-then-toss order ("at least once!"). false = toss
  /// first, so a node may stay silent for a whole phase.
  bool send_before_flip = true;

  unsigned phase_length() const {
    return decay_phase_length(degree_bound);
  }
  unsigned repetitions() const {
    return decay_repetitions(network_size_bound, epsilon);
  }
};

class BgiBroadcast : public sim::Protocol {
 public:
  /// A non-source node: waits for a message, then relays it for t phases.
  explicit BgiBroadcast(BroadcastParams params);

  /// A source (initiator): holds `initial` from Time 0 and relays it.
  BgiBroadcast(BroadcastParams params, sim::Message initial);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;

  /// Terminated == informed and all t Decay phases performed. Uninformed
  /// nodes never terminate (they are still waiting).
  bool terminated() const override;

  /// The Protocol::dormant_until() promise holds in three waiting states:
  /// uninformed and terminated (dormant until a callback, kNever), and
  /// listening out the tail of a Decay phase after the coin stopped this
  /// node (dormant until the phase's final slot — no coin is drawn there,
  /// so the skipped polls are pure receives). Informed-but-waiting for the
  /// NEXT phase boundary makes no promise: that state's action depends on
  /// ctx.now() and the run start must not be skipped.
  Slot dormant_until() const override;

  bool informed() const noexcept { return message_.has_value(); }
  const sim::Message& message() const;

  /// Slot at which the message was first obtained (0 for initiators);
  /// kNever while uninformed.
  Slot informed_at() const noexcept { return informed_at_; }

  unsigned phases_completed() const noexcept { return phases_done_; }
  const BroadcastParams& params() const noexcept { return params_; }

 protected:
  /// Advances the current Decay run by one slot, flipping its coin. The
  /// base class draws the flip from the node's sequential rng stream; the
  /// counter-RNG engine (proto/broadcast_batch.hpp) overrides this with a
  /// pure (seed, lane, slot, node)-keyed draw so a batched lane can replay
  /// the exact same coins. Only ever called with an in-progress run.
  virtual sim::Action tick_run(sim::NodeContext& ctx);

  BroadcastParams params_;
  unsigned k_;
  unsigned t_;
  std::optional<sim::Message> message_;
  Slot informed_at_ = kNever;
  std::optional<DecayRun> run_;
  /// Slot the current run_ was started at (valid while run_ is engaged).
  Slot run_start_ = 0;
  /// Non-zero while listening out the tail of a phase whose run already
  /// stopped transmitting: the slot one past the phase's end. The run
  /// object is completed eagerly the moment its coin stops it (the
  /// remaining ticks draw nothing and do nothing observable), and the
  /// phase credit is granted on the classic schedule — during the phase's
  /// final slot — so terminated() flips exactly when it always did.
  Slot pending_phase_end_ = 0;
  unsigned phases_done_ = 0;
};

}  // namespace radiocast::proto
