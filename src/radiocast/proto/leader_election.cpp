#include "radiocast/proto/leader_election.hpp"

namespace radiocast::proto {

LeaderElection::LeaderElection(LeaderElectionParams params)
    : params_(params),
      k_(params.base.phase_length()),
      t_(params.base.repetitions()) {
  RADIOCAST_CHECK_MSG(params.diameter_bound >= 1 ||
                          params.base.network_size_bound == 1,
                      "diameter bound must be at least 1");
}

void LeaderElection::on_start(sim::NodeContext& ctx) {
  // Drawing from the node's own stream keeps runs reproducible; 64 bits
  // make priority ties astronomically unlikely, and the (priority, id)
  // pair breaks even those.
  own_priority_ = ctx.rng().generator().next();
  best_priority_ = own_priority_;
  best_owner_ = ctx.id();
}

sim::Message LeaderElection::round_message(NodeId self) const {
  sim::Message m;
  m.origin = self;
  m.tag = kPriorityTag;
  m.data = {round_priority_, round_owner_};
  return m;
}

sim::Action LeaderElection::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  const Slot round_len = params_.round_length();
  const std::uint64_t round = now / round_len;
  if (round >= params_.rounds()) {
    done_ = true;
    return sim::Action::receive();
  }
  if (round != current_round_) {
    // Round boundary: freeze the value to relay for this whole round.
    current_round_ = round;
    round_priority_ = best_priority_;
    round_owner_ = best_owner_;
    run_.reset();
  }
  if (!run_.has_value()) {
    // Decay runs tile the round back-to-back (round_len == k * t), so
    // within a round every transmitter in the network is sub-round
    // aligned — Theorem 1's hypothesis at every phase.
    RADIOCAST_DCHECK(now % k_ == 0);
    run_.emplace(k_, round_message(ctx.id()),
                 params_.base.stop_probability);
  }
  const sim::Action action = run_->tick(ctx.rng());
  if (run_->phase_over()) {
    run_.reset();
  }
  return action;
}

void LeaderElection::on_receive(sim::NodeContext& /*ctx*/,
                                const sim::Message& m) {
  if (m.tag != kPriorityTag || m.data.size() != 2) {
    return;
  }
  const std::uint64_t priority = m.data[0];
  const auto owner = static_cast<NodeId>(m.data[1]);
  if (priority > best_priority_ ||
      (priority == best_priority_ && owner > best_owner_)) {
    best_priority_ = priority;
    best_owner_ = owner;
    // Takes effect (is relayed) from the next round boundary.
  }
}

}  // namespace radiocast::proto
