// The paper's deterministic upper bound (§3.4): "one may reach all n
// processors in a network within 2n time-slots, by having the current
// transmitter traverse the network in a Depth-First-Search manner."
//
// Token-passing DFS. Exactly one node (the token holder) transmits in any
// slot, so there are never collisions and every neighbor of the holder
// hears the token — in particular every node hears the payload by the time
// DFS has visited it. The token message carries the intended next holder,
// the sender, and the visited list; a node becoming holder for the first
// time records the sender as its DFS parent for backtracking.
//
// Model requirements (Definition 1): nodes know their own ID and their
// neighbors' IDs; the network must be undirected (symmetric). Completes in
// at most 2n - 1 slots: at most n - 1 forward moves, n - 1 backtracks, and
// the root's first transmission.
#pragma once

#include <cstdint>
#include <vector>

#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

class DfsBroadcast : public sim::Protocol {
 public:
  /// Message tag identifying DFS token transmissions.
  static constexpr std::uint64_t kTokenTag = 0xDF5;

  /// A non-source node.
  DfsBroadcast() = default;

  /// The source: starts holding the token and the payload.
  explicit DfsBroadcast(sim::Message payload);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return done_; }

  bool informed() const noexcept { return informed_; }

  /// True on the source once the token has returned with nothing left to
  /// explore (the traversal is complete).
  bool traversal_complete() const noexcept { return done_ && is_source_; }

 private:
  sim::Message make_token(NodeId self, NodeId target) const;

  bool is_source_ = false;
  bool informed_ = false;
  bool holds_token_ = false;
  bool done_ = false;
  NodeId parent_ = kNoNode;
  std::vector<std::uint64_t> payload_words_;
  std::uint64_t payload_origin_ = kNoNode;
  std::vector<NodeId> visited_;  // sorted; carried with the token
};

}  // namespace radiocast::proto
