// The paper's BFS application of Decay (§2.3).
//
// Time is divided into BFS phases of length k * t slots, where
// k = 2*ceil(log Δ) is the Decay duration and t = ceil(log(N/ε)) the
// repetition count ("each phase is ⌈log(N/ε)⌉ times the duration of
// Decay"). The root transmits during phase 0; a node first informed during
// phase i labels itself Distance = i + 1 ("the distance from r equals the
// number of phases from the start until the message was first received")
// and transmits during phase i + 1 only: t back-to-back Decay runs, each
// sub-round synchronized across the whole layer. This is what forces the
// broadcast to progress layer by layer: only the frontier layer transmits
// in any phase, so a node can (except with probability ε/N per node,
// Lemma-2 argument) only first hear the message from the previous layer,
// in exactly the phase indexed by its true distance.
//
// With probability >= 1 - ε every label equals the true hop distance, and
// the run takes 2 D ceil(log Δ) ceil(log(N/ε)) slots (§2.3).
//
// Note on the pseudocode: the paper's loop reads "do t times { Wait until
// (Time mod k*t) = 0; Decay(k,m) }". Read literally (one Decay per phase,
// spread over t phases) the layer-by-layer invariant fails — a node that
// misses its layer's single Decay round gets informed one phase late with
// probability up to 1/2, not ε/N, and mislabels. We therefore implement
// the reading that matches the proof ("identical to that of Lemma 2"):
// all t Decay repetitions happen inside the node's one transmit phase.
#pragma once

#include <optional>

#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

/// How an informed node schedules its t Decay repetitions (see the header
/// comment: the paper's pseudocode is ambiguous, and only one reading
/// matches its proof).
enum class BfsSchedule : std::uint8_t {
  /// All t Decays back-to-back inside the single phase after the node was
  /// informed — the reading consistent with the Lemma-2-style proof and
  /// the 1 - ε label guarantee. Default.
  kBlockPerLayer,
  /// One Decay at the start of each of the next t phases — the literal
  /// pseudocode. Kept for the ablation bench: label accuracy degrades to
  /// roughly the single-Decay success probability per node.
  kLiteralPseudocode,
};

class BgiBfs : public sim::Protocol {
 public:
  /// A non-root node.
  explicit BgiBfs(BroadcastParams params,
                  BfsSchedule schedule = BfsSchedule::kBlockPerLayer);

  /// The root: informed at Time 0 with label 0, transmitting `initial`
  /// during phase 0.
  BgiBfs(BroadcastParams params, sim::Message initial,
         BfsSchedule schedule = BfsSchedule::kBlockPerLayer);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return done_; }

  bool informed() const noexcept { return message_.has_value(); }

  /// The computed distance label; only meaningful once informed().
  std::uint64_t distance() const;

  /// Slots in one BFS phase: k * t.
  unsigned phase_length() const noexcept { return k_ * t_; }

 private:
  BroadcastParams params_;
  unsigned k_;
  unsigned t_;
  BfsSchedule schedule_;
  std::optional<sim::Message> message_;
  std::uint64_t distance_ = 0;
  std::uint64_t transmit_phase_ = 0;  ///< first phase this node transmits in
  std::optional<DecayRun> run_;
  unsigned sub_rounds_done_ = 0;
  bool done_ = false;
};

}  // namespace radiocast::proto
