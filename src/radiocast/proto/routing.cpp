#include "radiocast/proto/routing.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

namespace {

constexpr std::uint64_t kBfsTag = 0x907F;
/// Label stamped by a source that failed to obtain a BFS label (possible
/// with probability <= ε): everyone accepts, degrading gracefully to a
/// plain flood.
constexpr std::uint64_t kUnlabelled = ~std::uint64_t{0};

sim::Message bfs_probe() {
  sim::Message m;
  m.origin = kNoNode;
  m.tag = kBfsTag;
  return m;
}

}  // namespace

PointToPointRouting::PointToPointRouting(RoutingParams params, Role role,
                                         std::vector<std::uint64_t> payload)
    : params_(params),
      role_(role),
      k_(params.base.phase_length()),
      t_(params.base.repetitions()),
      bfs_(role == Role::kDestination ? BgiBfs(params.base, bfs_probe())
                                      : BgiBfs(params.base)),
      payload_(std::move(payload)) {
  RADIOCAST_CHECK_MSG(params.diameter_bound >= 1,
                      "routing needs a diameter bound >= 1");
  if (role_ == Role::kSource) {
    has_packet_ = true;  // the packet exists from the start...
  }
}

sim::Message PointToPointRouting::packet_message(NodeId self) const {
  sim::Message m;
  m.origin = self;
  m.tag = kPacketTag;
  m.data.reserve(1 + payload_.size());
  m.data.push_back(bfs_.informed() ? bfs_.distance() : kUnlabelled);
  m.data.insert(m.data.end(), payload_.begin(), payload_.end());
  return m;
}

sim::Action PointToPointRouting::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  if (now < params_.bfs_horizon()) {
    return bfs_.on_slot(ctx);  // stage 1: label the gradient
  }
  if (now == params_.bfs_horizon() && role_ == Role::kSource) {
    packet_at_ = now;  // ...but only starts moving now
    relay_phases_left_ = t_;
  }
  if (now >= params_.horizon()) {
    return sim::Action::receive();
  }
  // Stage 2: gradient descent. The destination never relays; a relay
  // transmits for t aligned Decay phases after picking the packet up.
  if (role_ == Role::kDestination || !has_packet_ ||
      (relay_phases_left_ == 0 && !run_.has_value())) {
    return sim::Action::receive();
  }
  if (!run_.has_value()) {
    if (now % k_ != 0) {
      return sim::Action::receive();
    }
    run_.emplace(k_, packet_message(ctx.id()),
                 params_.base.stop_probability);
  }
  const sim::Action action = run_->tick(ctx.rng());
  if (run_->phase_over()) {
    run_.reset();
    if (relay_phases_left_ > 0) {
      --relay_phases_left_;
    }
  }
  return action;
}

void PointToPointRouting::on_receive(sim::NodeContext& ctx,
                                     const sim::Message& m) {
  if (ctx.now() < params_.bfs_horizon()) {
    if (m.tag == kBfsTag) {
      bfs_.on_receive(ctx, m);
    }
    return;
  }
  if (m.tag != kPacketTag || m.data.empty() || has_packet_) {
    return;
  }
  const std::uint64_t sender_label = m.data.front();
  // Accept only when strictly closer to the destination than the sender —
  // the packet may only descend the gradient.
  if (!bfs_.informed() || bfs_.distance() >= sender_label) {
    return;
  }
  has_packet_ = true;
  packet_at_ = ctx.now();
  payload_.assign(m.data.begin() + 1, m.data.end());
  if (role_ != Role::kDestination) {
    relay_phases_left_ = t_;
  }
}

bool PointToPointRouting::terminated() const {
  // Conservative: quiescent once the relay budget is spent; the harness
  // uses the fixed params_.horizon() anyway.
  return has_packet_ && relay_phases_left_ == 0 && !run_.has_value();
}

}  // namespace radiocast::proto
