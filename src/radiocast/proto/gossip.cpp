#include "radiocast/proto/gossip.hpp"

#include <algorithm>

namespace radiocast::proto {

Gossip::Gossip(GossipParams params)
    : params_(params),
      k_(params.base.phase_length()),
      t_(params.base.repetitions()) {
  RADIOCAST_CHECK_MSG(params.diameter_bound >= 1 ||
                          params.base.network_size_bound == 1,
                      "diameter bound must be at least 1");
}

void Gossip::on_start(sim::NodeContext& ctx) { rumors_ = {ctx.id()}; }

bool Gossip::knows(NodeId rumor) const {
  return std::ranges::binary_search(rumors_, rumor);
}

sim::Message Gossip::round_message(NodeId self) const {
  sim::Message m;
  m.origin = self;
  m.tag = kRumorTag;
  m.data.assign(round_rumors_.begin(), round_rumors_.end());
  return m;
}

sim::Action Gossip::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  const Slot round_len = params_.round_length();
  const std::uint64_t round = now / round_len;
  if (round >= params_.rounds()) {
    done_ = true;
    return sim::Action::receive();
  }
  if (round != current_round_) {
    // Round boundary: snapshot the set to relay this whole round, so
    // every transmitter of a given phase is sub-round aligned and the
    // contents are stable for analysis.
    current_round_ = round;
    round_rumors_ = rumors_;
    run_.reset();
  }
  if (!run_.has_value()) {
    RADIOCAST_DCHECK(now % k_ == 0);
    run_.emplace(k_, round_message(ctx.id()),
                 params_.base.stop_probability);
  }
  const sim::Action action = run_->tick(ctx.rng());
  if (run_->phase_over()) {
    run_.reset();
  }
  return action;
}

void Gossip::on_receive(sim::NodeContext& ctx, const sim::Message& m) {
  if (m.tag != kRumorTag) {
    return;
  }
  bool grew = false;
  for (const std::uint64_t word : m.data) {
    const auto rumor = static_cast<NodeId>(word);
    const auto it = std::lower_bound(rumors_.begin(), rumors_.end(), rumor);
    if (it == rumors_.end() || *it != rumor) {
      rumors_.insert(it, rumor);
      grew = true;
    }
  }
  if (grew) {
    last_learned_at_ = ctx.now();
  }
}

}  // namespace radiocast::proto
