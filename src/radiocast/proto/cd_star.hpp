// The paper's concluding remark (§4): with a collision-detection
// mechanism, the Ω(n) deterministic lower bound collapses — "one can
// broadcast in C_n using 4 time-slots".
//
// The 4-slot protocol implemented here (for the C_n family, CD enabled):
//   slot 0: the source transmits m; every second-layer node receives it.
//   slot 1: every i in S transmits m (i knows i ∈ S: the sink appears in
//           its neighbor list). If |S| = 1 the sink receives m — done in 2
//           slots. Otherwise the sink *detects the collision*.
//   slot 2: the collision licenses the sink to speak: it transmits a
//           nomination naming min(S) (the sink knows S — its own neighbor
//           list!). All of S hears it (the sink is the sole transmitter).
//   slot 3: the nominated node alone transmits m; the sink receives it.
//
// Collision detection is essential twice: it tells the sink that S is
// non-trivially populated (slot 1), and under the no-spontaneous-
// transmission rule it is the event that entitles the sink to transmit.
#pragma once

#include <optional>

#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

class CdStarBroadcast : public sim::Protocol {
 public:
  static constexpr std::uint64_t kNominateTag = 0xC0;

  /// `n` = number of second-layer nodes (the graph has n + 2 nodes).
  /// Role is deduced from the node's id: 0 = source, n+1 = sink.
  /// The source additionally carries the payload to broadcast.
  CdStarBroadcast(std::size_t n, std::optional<sim::Message> payload);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  void on_collision(sim::NodeContext& ctx) override;
  bool terminated() const override { return terminated_; }

  bool informed() const noexcept { return message_.has_value(); }
  Slot informed_at() const noexcept { return informed_at_; }

 private:
  enum class Role { kSource, kSecondLayer, kSink };

  std::size_t n_;
  Role role_ = Role::kSecondLayer;
  bool in_s_ = false;           ///< second layer: adjacent to the sink?
  bool sink_collided_ = false;  ///< sink: collision detected in slot 1
  bool nominated_ = false;      ///< second layer: named by the sink
  std::optional<sim::Message> message_;
  Slot informed_at_ = kNever;
  bool terminated_ = false;
};

}  // namespace radiocast::proto
