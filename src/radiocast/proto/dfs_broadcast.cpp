#include "radiocast/proto/dfs_broadcast.hpp"

#include <algorithm>
#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

namespace {

/// Token layout inside Message::data:
///   [0] target node, [1] sender node, [2] payload word count P,
///   [3 .. 3+P) payload words, [3+P ..] visited list (sorted).
constexpr std::size_t kTarget = 0;
constexpr std::size_t kSender = 1;
constexpr std::size_t kPayloadCount = 2;
constexpr std::size_t kPayloadStart = 3;

void sorted_insert(std::vector<NodeId>& vec, NodeId v) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) {
    vec.insert(it, v);
  }
}

bool sorted_contains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

DfsBroadcast::DfsBroadcast(sim::Message payload)
    : is_source_(true),
      informed_(true),
      holds_token_(true),
      payload_words_(std::move(payload.data)),
      payload_origin_(payload.origin) {}

sim::Message DfsBroadcast::make_token(NodeId self, NodeId target) const {
  sim::Message m;
  m.origin = static_cast<NodeId>(payload_origin_);
  m.tag = kTokenTag;
  m.data.reserve(kPayloadStart + payload_words_.size() + visited_.size());
  m.data.push_back(target);
  m.data.push_back(self);
  m.data.push_back(payload_words_.size());
  m.data.insert(m.data.end(), payload_words_.begin(), payload_words_.end());
  m.data.insert(m.data.end(), visited_.begin(), visited_.end());
  return m;
}

sim::Action DfsBroadcast::on_slot(sim::NodeContext& ctx) {
  if (!holds_token_) {
    return sim::Action::receive();
  }
  if (visited_.empty()) {
    // First act of the source: mark itself visited.
    RADIOCAST_CHECK(is_source_);
    visited_.push_back(ctx.id());
  }
  // Descend to the smallest unvisited neighbor, if any.
  for (const NodeId v : ctx.neighbors_out()) {
    if (!sorted_contains(visited_, v)) {
      sorted_insert(visited_, v);
      holds_token_ = false;
      return sim::Action::transmit(make_token(ctx.id(), v));
    }
  }
  // Nothing left below us: backtrack, or finish at the source.
  holds_token_ = false;
  done_ = true;
  if (is_source_) {
    return sim::Action::receive();
  }
  RADIOCAST_CHECK_MSG(parent_ != kNoNode, "non-source node with no parent");
  return sim::Action::transmit(make_token(ctx.id(), parent_));
}

void DfsBroadcast::on_receive(sim::NodeContext& ctx, const sim::Message& m) {
  if (m.tag != kTokenTag || m.data.size() < kPayloadStart) {
    return;
  }
  const auto payload_count = static_cast<std::size_t>(m.data[kPayloadCount]);
  RADIOCAST_CHECK_MSG(m.data.size() >= kPayloadStart + payload_count,
                      "malformed DFS token");
  if (!informed_) {
    informed_ = true;
    payload_origin_ = m.origin;
    payload_words_.assign(m.data.begin() + kPayloadStart,
                          m.data.begin() + kPayloadStart +
                              static_cast<std::ptrdiff_t>(payload_count));
  }
  if (m.data[kTarget] != ctx.id()) {
    return;  // overheard the token; the payload is all we take
  }
  holds_token_ = true;
  done_ = false;  // we may have been re-entered on backtrack
  if (parent_ == kNoNode && !is_source_) {
    parent_ = static_cast<NodeId>(m.data[kSender]);
  }
  // Adopt the (strictly newer) global visited list from the token.
  visited_.assign(m.data.begin() + kPayloadStart +
                      static_cast<std::ptrdiff_t>(payload_count),
                  m.data.end());
}

}  // namespace radiocast::proto
