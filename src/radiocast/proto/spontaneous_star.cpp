#include "radiocast/proto/spontaneous_star.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

SpontaneousStarBroadcast::SpontaneousStarBroadcast(
    std::size_t n, std::optional<sim::Message> payload)
    : n_(n), message_(std::move(payload)) {
  RADIOCAST_CHECK_MSG(n >= 1, "C_n needs n >= 1");
  if (message_.has_value()) {
    informed_at_ = 0;
  }
}

void SpontaneousStarBroadcast::on_start(sim::NodeContext& ctx) {
  const NodeId sink_id = static_cast<NodeId>(n_ + 1);
  if (ctx.id() == 0) {
    role_ = Role::kSource;
    RADIOCAST_CHECK_MSG(message_.has_value(),
                        "the source must carry the payload");
  } else if (ctx.id() == sink_id) {
    role_ = Role::kSink;
  } else {
    role_ = Role::kSecondLayer;
  }
}

sim::Action SpontaneousStarBroadcast::on_slot(sim::NodeContext& ctx) {
  const Slot t = ctx.now();
  if (t >= 3) {
    terminated_ = true;
    return sim::Action::receive();
  }
  switch (role_) {
    case Role::kSource:
      if (t == 0) {
        return sim::Action::transmit(*message_);
      }
      break;
    case Role::kSink:
      if (t == 1) {
        // Spontaneous wake-up: name the smallest neighbor.
        sim::Message nominate;
        nominate.origin = ctx.id();
        nominate.tag = kNominateTag;
        nominate.data.push_back(ctx.neighbors_out().front());
        return sim::Action::transmit(nominate);
      }
      break;
    case Role::kSecondLayer:
      if (t == 2 && nominated_ && informed()) {
        return sim::Action::transmit(*message_);
      }
      break;
  }
  return sim::Action::receive();
}

void SpontaneousStarBroadcast::on_receive(sim::NodeContext& ctx,
                                          const sim::Message& m) {
  if (m.tag == kNominateTag) {
    if (role_ == Role::kSecondLayer && !m.data.empty() &&
        m.data.front() == ctx.id()) {
      nominated_ = true;
    }
    return;
  }
  if (!informed()) {
    message_ = m;
    informed_at_ = ctx.now();
  }
}

}  // namespace radiocast::proto
