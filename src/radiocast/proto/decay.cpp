#include "radiocast/proto/decay.hpp"

#include <algorithm>
#include <cmath>

#include "radiocast/common/types.hpp"

namespace radiocast::proto {

DecayRun::DecayRun(unsigned k, sim::Message m, double stop_probability,
                   bool send_before_flip)
    : k_(k),
      message_(std::move(m)),
      stop_probability_(stop_probability),
      send_before_flip_(send_before_flip) {
  RADIOCAST_CHECK_MSG(k >= 1, "Decay needs k >= 1");
  RADIOCAST_CHECK_MSG(stop_probability >= 0.0 && stop_probability <= 1.0,
                      "stop probability must be in [0,1]");
}

bool DecayRun::flip_stops(rng::Rng& rng) {
  if (stop_probability_ == 0.5) {
    return !rng.fair_coin();  // coin = 0 stops
  }
  return rng.bernoulli(stop_probability_);
}

sim::Action DecayRun::tick(rng::Rng& rng) {
  RADIOCAST_CHECK_MSG(ticks_ < k_, "DecayRun ticked past its phase");
  if (transmissions_done()) {
    // Already out of the coin game: listen out the rest of the phase.
    // No flip is drawn, so the node's rng stream is untouched.
    ++ticks_;
    return sim::Action::receive();
  }
  return advance(flip_stops(rng));
}

sim::Action DecayRun::tick(bool stop_flip) {
  RADIOCAST_CHECK_MSG(ticks_ < k_, "DecayRun ticked past its phase");
  if (transmissions_done()) {
    ++ticks_;
    return sim::Action::receive();
  }
  return advance(stop_flip);
}

sim::Action DecayRun::advance(bool stops) {
  ++ticks_;
  if (!send_before_flip_) {
    // Ablation variant: toss first, so a node may send zero times.
    if (stops) {
      stopped_ = true;
      return sim::Action::receive();
    }
    ++sent_;
    return sim::Action::transmit(message_);
  }
  ++sent_;
  // The paper's order: send first, then flip — the procedure transmits at
  // least once and the coin decides whether to continue.
  stopped_ = stops;
  return sim::Action::transmit(message_);
}

unsigned decay_phase_length(std::size_t degree_bound) noexcept {
  const std::size_t clamped = std::max<std::size_t>(degree_bound, 2);
  return std::max(2U, 2 * ceil_log2(clamped));
}

unsigned decay_repetitions(std::size_t network_size_bound, double epsilon) {
  RADIOCAST_CHECK_MSG(network_size_bound >= 1, "need N >= 1");
  RADIOCAST_CHECK_MSG(epsilon > 0.0 && epsilon <= 1.0,
                      "epsilon must be in (0,1]");
  const double ratio = static_cast<double>(network_size_bound) / epsilon;
  const auto t =
      static_cast<unsigned>(std::ceil(std::log2(std::max(ratio, 1.0))));
  return std::max(t, 1U);
}

}  // namespace radiocast::proto
