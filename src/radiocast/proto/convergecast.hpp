// Convergecast: aggregation toward a root — the upstream counterpart of
// broadcast, and the canonical use of the §2.3 BFS layering ("BFS can be
// used for the construction of shortest routing paths").
//
//   stage 1: the BFS protocol labels every node with its distance to the
//     root (layers 0..D).
//   stage 2: layer-scheduled ascent. Rounds of W = k*t slots sweep the
//     layers from the deepest bound upward; in a layer's round exactly its
//     members relay (t aligned Decay phases) their current aggregate, and
//     everyone else listens — so per phase the only competitors at any
//     receiver are same-layer nodes, the cleanest possible Decay setting.
//     Listeners merge every aggregate they hear. The sweep repeats
//     `sweeps` times (default 2): values a parent missed in the first
//     pass get another chance, and merging is idempotent.
//
// Only idempotent, commutative aggregates are sound in a radio network
// (several parents may hear the same child): we provide max. After the
// final sweep the root's aggregate equals the true maximum over all nodes
// w.h.p.
#pragma once

#include <optional>

#include "radiocast/proto/bfs.hpp"
#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

struct ConvergecastParams {
  BroadcastParams base;
  /// Upper bound on the root's eccentricity (deepest layer).
  std::size_t depth_bound = 0;
  /// How many deep-to-shallow sweeps stage 2 performs.
  std::size_t sweeps = 2;

  Slot round_length() const {
    return static_cast<Slot>(base.phase_length()) * base.repetitions();
  }
  /// Stage 1 budget: (depth_bound + 2) BFS phases.
  Slot bfs_horizon() const {
    return static_cast<Slot>(depth_bound + 2) * round_length();
  }
  /// Total slots after which everything is quiescent.
  Slot horizon() const {
    return bfs_horizon() +
           static_cast<Slot>(sweeps) * (depth_bound + 1) * round_length();
  }
};

class Convergecast : public sim::Protocol {
 public:
  static constexpr std::uint64_t kAggregateTag = 0xA66;

  /// `value` is this node's reading; the root's role is implied by
  /// is_root (it is also the BFS origin).
  Convergecast(ConvergecastParams params, bool is_root,
               std::uint64_t value);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  bool terminated() const override { return done_; }

  std::uint64_t value() const noexcept { return value_; }
  /// Running max of everything seen (== the answer, at the root, at the
  /// end).
  std::uint64_t aggregate() const noexcept { return aggregate_; }
  bool labelled() const noexcept { return bfs_.informed(); }
  std::uint64_t label() const { return bfs_.distance(); }

 private:
  sim::Message aggregate_message(NodeId self) const;

  ConvergecastParams params_;
  unsigned k_;
  unsigned t_;
  BgiBfs bfs_;
  std::uint64_t value_;
  std::uint64_t aggregate_;
  std::optional<DecayRun> run_;
  std::uint64_t relaying_round_ = kNever;  ///< round the active run is for
  bool done_ = false;
};

}  // namespace radiocast::proto
