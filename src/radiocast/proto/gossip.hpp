// Gossiping (all-to-all broadcast): every node starts with its own rumor
// and everyone must learn all n rumors — the other classic communication
// primitive in the radio-network literature that grew out of this paper's
// broadcast problem (cf. the [BII89] line of work and the later gossiping
// results it seeded).
//
// We implement round-synchronized combined-message gossip, the same
// structure as proto::LeaderElection (which is in fact the special case
// that only tracks the maximum): R rounds of W = k*t slots; within a
// round every node relays the rumor set it knew at the round boundary
// (t aligned Decay phases), merging everything it hears for the next
// round. Messages carry whole rumor sets (the model's §1 semantics place
// no bound on message contents). Known-set growth is monotone and every
// node transmits every round, so no wavefront can starve. Unlike a single
// broadcast, all-to-all needs every rumor to first WIN a slot at its
// origin (a coupon-collector start-up over the origin's neighborhood), so
// the round budget carries the log factor twice:
// R = D_bound + 2*ceil(log2(N/ε)) + 2. With it, all sets converge to
// {0..n-1} w.h.p. and the protocol is silent afterwards.
#pragma once

#include <optional>
#include <vector>

#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

struct GossipParams {
  BroadcastParams base;
  /// Upper bound on the network diameter (<= N - 1 always works).
  std::size_t diameter_bound = 0;

  std::size_t rounds() const {
    return diameter_bound + 2 * base.repetitions() + 2;
  }
  Slot round_length() const {
    return static_cast<Slot>(base.phase_length()) * base.repetitions();
  }
  Slot horizon() const { return rounds() * round_length(); }
};

class Gossip : public sim::Protocol {
 public:
  static constexpr std::uint64_t kRumorTag = 0x6055;

  explicit Gossip(GossipParams params);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;

  /// True once all R rounds have elapsed.
  bool terminated() const override { return done_; }

  /// Sorted ids of the rumors this node knows (ids == originating nodes).
  const std::vector<NodeId>& rumors() const noexcept { return rumors_; }
  bool knows(NodeId rumor) const;
  std::size_t rumor_count() const noexcept { return rumors_.size(); }

  /// Slot at which the last new rumor arrived (0 = only its own so far).
  Slot last_learned_at() const noexcept { return last_learned_at_; }

  const GossipParams& params() const noexcept { return params_; }

 private:
  sim::Message round_message(NodeId self) const;

  GossipParams params_;
  unsigned k_;
  unsigned t_;
  std::vector<NodeId> rumors_;        ///< sorted; grows monotonically
  std::vector<NodeId> round_rumors_;  ///< snapshot relayed this round
  std::uint64_t current_round_ = kNever;
  Slot last_learned_at_ = 0;
  std::optional<DecayRun> run_;
  bool done_ = false;
};

}  // namespace radiocast::proto
