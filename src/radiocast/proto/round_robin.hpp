// Deterministic round-robin broadcast: a simple, collision-free baseline.
//
// In slot t, the unique node with id == t mod n transmits — if it holds the
// message. At most one transmitter per slot network-wide, so every round of
// n slots advances the informed frontier by at least one BFS layer:
// broadcast completes within n * (D + 1) slots on any connected n-node
// network. Requires each node to know its ID and n, but no topology.
//
// This is the natural "Θ(n)-per-layer" deterministic strawman the paper's
// randomized protocol is contrasted against: on C_n (diameter ~2, n
// second-layer nodes) it still pays Θ(n), matching the Ω(n) lower bound's
// prediction that determinism cannot exploit the tiny diameter.
#pragma once

#include <optional>

#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

class RoundRobinBroadcast : public sim::Protocol {
 public:
  /// A non-source node of a network with `n` nodes.
  explicit RoundRobinBroadcast(std::size_t n);

  /// The source: holds `initial` from slot 0.
  RoundRobinBroadcast(std::size_t n, sim::Message initial);

  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;

  bool informed() const noexcept { return message_.has_value(); }
  Slot informed_at() const noexcept { return informed_at_; }

 private:
  std::size_t n_;
  std::optional<sim::Message> message_;
  Slot informed_at_ = kNever;
};

}  // namespace radiocast::proto
