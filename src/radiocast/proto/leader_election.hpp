// Leader election on arbitrary multi-hop radio networks WITHOUT collision
// detection — the application the paper's preliminary version [BGI87]
// stated and [BGI89] developed, built directly on Decay.
//
// Mechanism: round-synchronized max-propagation. Every node draws a random
// 64-bit priority. Time is divided into R rounds of W = k*t slots each
// (k = 2 ceil(log Δ) slots per Decay, t = ceil(log(N/ε)) Decays per
// round). Within a round every node relays the largest (priority, id) pair
// it knew AT THE ROUND'S START — t back-to-back Decay phases, network-wide
// aligned — while recording any larger pair it hears for the next round.
//
// Freezing the relayed value per round makes the holder set of the global
// maximum monotone: each round, every neighbor of a holder hears some
// transmitter ~0.7*t times (Theorem 1 per phase) and each success is
// uniform-ish over its in-neighbors, so the holder set absorbs its whole
// boundary within a few rounds; R = D_bound + ceil(log2(N/ε)) + 2 rounds
// suffice w.h.p. After R rounds everyone is silent; the unique node whose
// own pair survived everywhere believes it is the leader.
//
// Cost: R*W slots, <= 2*t transmissions per node per round — the price of
// not having collision detection, matching the Θ(log^2) factors of the
// broadcast protocol per diameter unit.
#pragma once

#include <optional>

#include "radiocast/proto/broadcast.hpp"
#include "radiocast/proto/decay.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

struct LeaderElectionParams {
  BroadcastParams base;
  /// Upper bound on the network diameter (<= N - 1 always works; a tighter
  /// bound shortens the election proportionally).
  std::size_t diameter_bound = 0;

  /// Rounds executed: D_bound + ceil(log2(N/ε)) + 2.
  std::size_t rounds() const {
    return diameter_bound + base.repetitions() + 2;
  }
  /// Slots per round: k * t.
  Slot round_length() const {
    return static_cast<Slot>(base.phase_length()) * base.repetitions();
  }
  /// Total slots until every node is silent.
  Slot horizon() const { return rounds() * round_length(); }
};

class LeaderElection : public sim::Protocol {
 public:
  static constexpr std::uint64_t kPriorityTag = 0x1EAD;

  explicit LeaderElection(LeaderElectionParams params);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;

  /// True once all R rounds have elapsed.
  bool terminated() const override { return done_; }

  std::uint64_t own_priority() const noexcept { return own_priority_; }
  std::uint64_t best_priority() const noexcept { return best_priority_; }
  NodeId best_owner() const noexcept { return best_owner_; }

  /// True iff, as far as this node knows, it is the leader.
  bool believes_leader(NodeId self) const noexcept {
    return best_owner_ == self;
  }

  const LeaderElectionParams& params() const noexcept { return params_; }

 private:
  sim::Message round_message(NodeId self) const;

  LeaderElectionParams params_;
  unsigned k_;
  unsigned t_;
  std::uint64_t own_priority_ = 0;
  // Best pair known (updated immediately on hearing something larger).
  std::uint64_t best_priority_ = 0;
  NodeId best_owner_ = kNoNode;
  // Pair relayed during the current round (frozen at the round boundary).
  std::uint64_t round_priority_ = 0;
  NodeId round_owner_ = kNoNode;
  std::uint64_t current_round_ = kNever;
  std::optional<DecayRun> run_;
  bool done_ = false;
};

}  // namespace radiocast::proto
