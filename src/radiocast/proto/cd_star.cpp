#include "radiocast/proto/cd_star.hpp"

#include <algorithm>
#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

CdStarBroadcast::CdStarBroadcast(std::size_t n,
                                 std::optional<sim::Message> payload)
    : n_(n), message_(std::move(payload)) {
  RADIOCAST_CHECK_MSG(n >= 1, "C_n needs n >= 1");
  if (message_.has_value()) {
    informed_at_ = 0;
  }
}

void CdStarBroadcast::on_start(sim::NodeContext& ctx) {
  RADIOCAST_CHECK_MSG(ctx.collision_detection(),
                      "CdStarBroadcast requires the CD model variant");
  const NodeId sink_id = static_cast<NodeId>(n_ + 1);
  if (ctx.id() == 0) {
    role_ = Role::kSource;
    RADIOCAST_CHECK_MSG(message_.has_value(),
                        "the source must carry the payload");
  } else if (ctx.id() == sink_id) {
    role_ = Role::kSink;
  } else {
    role_ = Role::kSecondLayer;
    in_s_ = std::ranges::count(ctx.neighbors_out(), sink_id) > 0;
  }
}

sim::Action CdStarBroadcast::on_slot(sim::NodeContext& ctx) {
  const Slot t = ctx.now();
  if (t >= 4) {
    terminated_ = true;
    return sim::Action::receive();
  }
  switch (role_) {
    case Role::kSource:
      if (t == 0) {
        return sim::Action::transmit(*message_);
      }
      break;
    case Role::kSecondLayer:
      if (t == 1 && in_s_ && informed()) {
        return sim::Action::transmit(*message_);
      }
      if (t == 3 && nominated_ && informed()) {
        return sim::Action::transmit(*message_);
      }
      break;
    case Role::kSink:
      if (t == 2 && sink_collided_ && !informed()) {
        // The collision in slot 1 licenses this transmission: S has >= 2
        // members, so name the smallest (the sink knows its neighbors).
        sim::Message nominate;
        nominate.origin = ctx.id();
        nominate.tag = kNominateTag;
        nominate.data.push_back(ctx.neighbors_out().front());
        return sim::Action::transmit(nominate);
      }
      break;
  }
  return sim::Action::receive();
}

void CdStarBroadcast::on_receive(sim::NodeContext& ctx,
                                 const sim::Message& m) {
  if (m.tag == kNominateTag) {
    if (role_ == Role::kSecondLayer && !m.data.empty() &&
        m.data.front() == ctx.id()) {
      nominated_ = true;
    }
    return;
  }
  if (!informed()) {
    message_ = m;
    informed_at_ = ctx.now();
  }
}

void CdStarBroadcast::on_collision(sim::NodeContext& ctx) {
  if (role_ == Role::kSink && ctx.now() == 1) {
    sink_collided_ = true;
  }
}

}  // namespace radiocast::proto
