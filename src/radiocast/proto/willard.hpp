// Leader election on a single-hop radio network WITH collision detection —
// in the spirit of Willard [W86], whose protocol the paper's preliminary
// version emulated on multi-hop networks (§2.3, later published as
// [BGI89]).
//
// We implement the classic geometric-backoff election (the simple variant;
// Willard's full protocol adds a doubly-logarithmic contention search):
// rounds r = 0, 1, 2, ...; every still-active candidate transmits its id
// with probability 2^-(r mod R). Because the channel is single-hop with
// CD, every node learns each round's outcome:
//   exactly one transmitter  -> that id wins; everyone records the leader;
//   collision or silence     -> continue.
// Expected O(log n) rounds; each round is one slot.
#pragma once

#include <optional>

#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

class WillardElection : public sim::Protocol {
 public:
  /// `candidate_bound` is an upper bound on the number of candidates (the
  /// paper's N); the backoff probability cycles through
  /// 1, 1/2, ..., 2^-ceil(log N) and wraps.
  explicit WillardElection(std::size_t candidate_bound);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  void on_collision(sim::NodeContext& ctx) override;
  bool terminated() const override { return leader_.has_value(); }

  bool has_leader() const noexcept { return leader_.has_value(); }
  NodeId leader() const;
  bool is_leader(NodeId self) const {
    return leader_.has_value() && *leader_ == self;
  }

 private:
  unsigned cycle_;  ///< number of probability levels before wrapping
  bool transmitted_this_slot_ = false;  ///< sent in the last contention slot
  bool ack_due_ = false;  ///< learned the leader; owe one echo
  std::optional<NodeId> leader_;
};

/// Willard's actual contention-estimation idea [W86]: binary search over
/// the backoff levels, steered by the collision-detection feedback every
/// node shares on a single-hop channel:
///   collision -> too many transmitters: search higher suppression levels;
///   silence   -> too few: search lower levels;
///   success   -> done.
/// The level interval halves each round, so the search part takes
/// O(log log N) rounds (vs the geometric protocol's O(log N)); when the
/// interval collapses without a winner, it restarts on the full range
/// (each restart succeeds with constant probability).
///
/// Rounds take 3 slots, because in our strict radio model transmitters
/// hear nothing — the shared ternary feedback [W86] assumes has to be
/// reconstructed explicitly:
///   slot 3r   : contention at the probed level;
///   slot 3r+1 : ack — everyone who received the candidate id echoes, so
///               the winner (who could not listen) learns it won;
///   slot 3r+2 : collision echo — everyone whose detector fired echoes,
///               so the colliding transmitters (who could not listen)
///               learn the slot was a collision rather than silence.
/// With n = 2 a both-transmit round has no listener at all and is misread
/// as silence; the periodic restart keeps the protocol live anyway.
class WillardBinarySearchElection : public sim::Protocol {
 public:
  explicit WillardBinarySearchElection(std::size_t candidate_bound);

  void on_start(sim::NodeContext& ctx) override;
  sim::Action on_slot(sim::NodeContext& ctx) override;
  void on_receive(sim::NodeContext& ctx, const sim::Message& m) override;
  void on_collision(sim::NodeContext& ctx) override;
  bool terminated() const override { return leader_.has_value(); }

  bool has_leader() const noexcept { return leader_.has_value(); }
  NodeId leader() const;

 private:
  void observe_round(bool collision, bool success);

  unsigned max_level_;   ///< ceil(log2 N): strongest suppression level
  unsigned lo_ = 0;      ///< binary-search interval over levels [lo, hi]
  unsigned hi_;
  bool transmitted_this_slot_ = false;
  bool ack_due_ = false;
  bool saw_collision_ = false;   ///< in the current contention slot
  bool saw_success_ = false;     ///< heard a candidate id this round
  bool pending_update_ = false;  ///< awaiting the echo slot's verdict
  std::optional<NodeId> leader_;
};

}  // namespace radiocast::proto
