#include "radiocast/proto/decay_batch.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"
#include "radiocast/sim/batch/kernel_clones.hpp"

namespace radiocast::proto {

using sim::batch::LaneMask;

BatchDecay::BatchDecay(std::size_t node_count, std::size_t width, unsigned k,
                       double stop_probability, bool send_before_flip)
    : k_(k),
      send_before_flip_(send_before_flip),
      width_(width),
      coin_(stop_probability),
      active_(node_count * width, 0),
      runs_(node_count * width, 0) {
  RADIOCAST_CHECK_MSG(k >= 1, "Decay needs k >= 1");
  RADIOCAST_CHECK_MSG(sim::batch::lane_width_supported(width),
                      "unsupported lane width");
  RADIOCAST_CHECK_MSG(stop_probability >= 0.0 && stop_probability <= 1.0,
                      "stop probability must be in [0, 1]");
}

void BatchDecay::begin_phase(std::span<const LaneMask> starters) {
  RADIOCAST_CHECK_MSG(starters.size() == runs_.size(),
                      "starter mask count must match node count * width");
  std::copy(starters.begin(), starters.end(), runs_.begin());
  std::copy(starters.begin(), starters.end(), active_.begin());
}

void BatchDecay::retire(std::span<const LaneMask> alive) {
  RADIOCAST_CHECK_MSG(alive.size() == runs_.size(),
                      "alive mask count must match node count * width");
  for (std::size_t i = 0; i < alive.size(); ++i) {
    active_[i] &= alive[i];
    runs_[i] &= alive[i];
  }
}

/// The width-templated tick kernel, force-inlined into the ISA-cloned
/// wrappers below (the BatchKernels scheme from sim/batch). Node-major:
/// one node's W active/tx words are contiguous vector operands, and the
/// (seed, salt, block, slot) chains are hoisted to a W-entry stack array,
/// so the per-active-node coin cost starts at one mix64 (slice 0) instead
/// of three — W of them side by side, which is the multiply chain the
/// x86-64-v4 clone folds into vpmullq vectors.
///
/// Draw construction is unchanged from the word-major spelling (the coin
/// for (word w, node v) is still coin.mask_from(keyed[w], v)) — CounterRng
/// draws are pure functions of their key, so the loop order is free.
struct BatchDecayKernels {
  template <std::size_t W>
  RADIOCAST_ALWAYS_INLINE static void tick(BatchDecay& d, Slot now,
                                           const rng::CounterRng& rng,
                                           std::uint64_t block0,
                                           std::span<const LaneMask> lanes,
                                           std::span<LaneMask> tx) {
    const std::size_t n = d.active_.size() / W;
    std::uint64_t keyed[W];
    for (std::size_t w = 0; w < W; ++w) {
      keyed[w] = rng.word(kSaltDecayCoin, block0 + w, now);
    }
    LaneMask* const active = d.active_.data();
    LaneMask* const out = tx.data();
    // Fair coin: slice 0 alone decides, and the comparator collapses to
    // "continue iff the slice bit is 1", i.e. coins = mix64(keyed ^ v).
    // Branch-free inner loop — this is the vectorized fast path the
    // reference workload runs on.
    const bool fair = d.coin_.scaled() == (std::uint64_t{1} << 31);
    for (NodeId v = 0; v < n; ++v) {
      LaneMask* const a = active + std::size_t{v} * W;
      LaneMask* const t = out + std::size_t{v} * W;
      LaneMask any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        any |= a[w];
      }
      if (any == 0) {
        for (std::size_t w = 0; w < W; ++w) {
          t[w] = 0;
        }
        continue;
      }
      // Bit k of the stop mask is lane k's coin coming up "stop" —
      // exactly the bit the scalar CounterCoinBgiBroadcast feeds
      // DecayRun::tick. For the fair coin, ~stops is the historical
      // decay_coin_word.
      if (d.send_before_flip_) {
        // Paper order: transmit, then flip ("at least once!").
        if (fair) {
          for (std::size_t w = 0; w < W; ++w) {
            t[w] = a[w] & lanes[w];
            a[w] &= rng::mix64(keyed[w] ^ v);
          }
        } else {
          for (std::size_t w = 0; w < W; ++w) {
            t[w] = a[w] & lanes[w];
            a[w] &= ~d.coin_.mask_from(keyed[w], v);
          }
        }
      } else {
        // Flip-first ablation: a lane may bow out before transmitting.
        if (fair) {
          for (std::size_t w = 0; w < W; ++w) {
            a[w] &= rng::mix64(keyed[w] ^ v);
            t[w] = a[w] & lanes[w];
          }
        } else {
          for (std::size_t w = 0; w < W; ++w) {
            a[w] &= ~d.coin_.mask_from(keyed[w], v);
            t[w] = a[w] & lanes[w];
          }
        }
      }
    }
  }
};

namespace {

RADIOCAST_TARGET_CLONES
void tick_lanes_w1(BatchDecay& d, Slot now, const rng::CounterRng& rng,
                   std::uint64_t block0, std::span<const LaneMask> lanes,
                   std::span<LaneMask> tx) {
  BatchDecayKernels::tick<1>(d, now, rng, block0, lanes, tx);
}

RADIOCAST_TARGET_CLONES
void tick_lanes_w4(BatchDecay& d, Slot now, const rng::CounterRng& rng,
                   std::uint64_t block0, std::span<const LaneMask> lanes,
                   std::span<LaneMask> tx) {
  BatchDecayKernels::tick<4>(d, now, rng, block0, lanes, tx);
}

RADIOCAST_TARGET_CLONES
void tick_lanes_w8(BatchDecay& d, Slot now, const rng::CounterRng& rng,
                   std::uint64_t block0, std::span<const LaneMask> lanes,
                   std::span<LaneMask> tx) {
  BatchDecayKernels::tick<8>(d, now, rng, block0, lanes, tx);
}

}  // namespace

void BatchDecay::tick(Slot now, const rng::CounterRng& rng,
                      std::uint64_t block0, std::span<const LaneMask> lanes,
                      std::span<LaneMask> tx) {
  RADIOCAST_CHECK_MSG(tx.size() == active_.size(),
                      "tx mask count must match node count * width");
  RADIOCAST_CHECK_MSG(lanes.size() == width_,
                      "engine lane mask count must match width");
  switch (width_) {
    case 1:
      tick_lanes_w1(*this, now, rng, block0, lanes, tx);
      break;
    case 4:
      tick_lanes_w4(*this, now, rng, block0, lanes, tx);
      break;
    default:
      tick_lanes_w8(*this, now, rng, block0, lanes, tx);
      break;
  }
}

}  // namespace radiocast::proto
