#include "radiocast/proto/decay_batch.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

using sim::batch::LaneMask;

BatchDecay::BatchDecay(std::size_t node_count, unsigned k,
                       bool send_before_flip)
    : k_(k),
      send_before_flip_(send_before_flip),
      active_(node_count, 0),
      runs_(node_count, 0) {
  RADIOCAST_CHECK_MSG(k >= 1, "Decay needs k >= 1");
}

void BatchDecay::begin_phase(std::span<const LaneMask> starters) {
  RADIOCAST_CHECK_MSG(starters.size() == runs_.size(),
                      "starter mask count must match node count");
  std::copy(starters.begin(), starters.end(), runs_.begin());
  std::copy(starters.begin(), starters.end(), active_.begin());
}

void BatchDecay::tick(Slot now, const rng::CounterRng& rng,
                      std::uint64_t block, LaneMask lanes,
                      std::span<LaneMask> tx) {
  const std::size_t n = active_.size();
  RADIOCAST_CHECK_MSG(tx.size() == n, "tx mask count must match node count");
  for (NodeId v = 0; v < n; ++v) {
    LaneMask a = active_[v];
    if (a == 0) {
      tx[v] = 0;
      continue;
    }
    // Bit k of the word is lane k's coin: 1 continues, 0 stops. Exactly
    // the bit the scalar CounterCoinBgiBroadcast feeds DecayRun::tick.
    const LaneMask coins = decay_coin_word(rng, block, now, v);
    if (send_before_flip_) {
      // Paper order: transmit, then flip ("at least once!").
      tx[v] = a & lanes;
      active_[v] = a & coins;
    } else {
      // Flip-first ablation: a lane may bow out before ever transmitting.
      a &= coins;
      tx[v] = a & lanes;
      active_[v] = a;
    }
  }
}

}  // namespace radiocast::proto
