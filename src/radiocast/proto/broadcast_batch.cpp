#include "radiocast/proto/broadcast_batch.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

using sim::batch::kAllLanes;
using sim::batch::LaneMask;

bool batchable(const BroadcastParams& params) {
  // 16 phase planes hold any t = ceil(log2(N/eps)) an IEEE double can
  // express (t <= ~1088 even at eps = DBL_MIN), so the plane bound is a
  // structural invariant rather than a practical restriction.
  return params.align_phases &&
         params.repetitions() < (1U << BatchBgiBroadcast::kPhasePlanes);
}

BatchBgiBroadcast::BatchBgiBroadcast(const BroadcastParams& params,
                                     std::size_t node_count,
                                     std::span<const NodeId> sources,
                                     std::uint64_t seed,
                                     std::uint64_t first_block,
                                     std::size_t width)
    : k_(params.phase_length()),
      t_(params.repetitions()),
      rng_(seed),
      block_(first_block),
      width_(width),
      decay_(node_count, width, params.phase_length(),
             params.stop_probability, params.send_before_flip),
      informed_(node_count * width, 0),
      done_(node_count * width, 0),
      phase_planes_(node_count * width * kPhasePlanes, 0),
      starters_(node_count * width, 0) {
  RADIOCAST_CHECK_MSG(batchable(params),
                      "BatchBgiBroadcast needs a batchable parameter set "
                      "(aligned phases, t < 2^16)");
  RADIOCAST_CHECK_MSG(!sources.empty(), "need at least one initiator");
  for (const NodeId s : sources) {
    RADIOCAST_CHECK_MSG(s < node_count, "source id out of range");
    for (std::size_t w = 0; w < width; ++w) {
      informed_[std::size_t{s} * width + w] = kAllLanes;
    }
  }
}

void BatchBgiBroadcast::emit(Slot now, std::span<const LaneMask> lanes,
                             std::span<const LaneMask> alive,
                             std::span<LaneMask> tx) {
  if (!alive.empty()) {
    // Crash retirement: a dead lane abandons its Decay run — no further
    // transmissions, and no phase credit for the interrupted run. The
    // scalar CounterCoinBgiBroadcast aborts on the missed poll instead;
    // same observable state.
    decay_.retire(alive);
  }
  if (now % k_ == 0) {
    // Phase boundary: exactly the scalar protocol's start condition —
    // informed, phases left, and (under faults) alive this slot. Lanes
    // informed mid-phase wait here, like a scalar node waiting for Time
    // mod k = 0 (align_phases is a batchable precondition, so this grid
    // is global). Engine-retired lanes (already finished and recorded —
    // their transmissions are masked off anyway) are excluded so their
    // nodes drain out of the coin game instead of silently flipping
    // coins until the row's slowest lane completes; a draw is a pure
    // function of its key, so skipping it never perturbs live lanes.
    const std::size_t total = informed_.size();
    if (alive.empty()) {
      for (std::size_t i = 0; i < total; ++i) {
        starters_[i] = informed_[i] & ~done_[i] & lanes[i % width_];
      }
    } else {
      for (std::size_t i = 0; i < total; ++i) {
        starters_[i] = informed_[i] & ~done_[i] & alive[i] & lanes[i % width_];
      }
    }
    decay_.begin_phase(starters_);
  }
  decay_.tick(now, rng_, block_, lanes, tx);
  if (now % k_ == k_ - 1) {
    credit_phase();
  }
}

void BatchBgiBroadcast::credit_phase() {
  const std::span<const LaneMask> runs = decay_.runs();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const LaneMask credit = runs[i];
    if (credit == 0) {
      continue;
    }
    LaneMask* const planes = &phase_planes_[i * kPhasePlanes];
    LaneMask carry = credit;
    for (std::size_t p = 0; carry != 0 && p < kPhasePlanes; ++p) {
      const LaneMask sum = planes[p] ^ carry;
      carry &= planes[p];
      planes[p] = sum;
    }
    RADIOCAST_CHECK_MSG(carry == 0, "phase counter overflow (t too large)");
    // Lanes whose count just reached t_ are done; only credited lanes can
    // newly reach it (starters exclude done lanes, so counts are <= t_).
    LaneMask eq = credit;
    for (std::size_t p = 0; eq != 0 && p < kPhasePlanes; ++p) {
      eq &= ((t_ >> p) & 1U) != 0 ? planes[p] : ~planes[p];
    }
    done_[i] |= eq;
  }
}

void BatchBgiBroadcast::absorb(Slot /*now*/,
                               std::span<const LaneMask> delivered,
                               std::span<const NodeId> touched) {
  for (const NodeId v : touched) {
    const std::size_t i = std::size_t{v} * width_;
    for (std::size_t w = 0; w < width_; ++w) {
      informed_[i + w] |= delivered[i + w];
    }
  }
}

void BatchBgiBroadcast::all_informed_lanes(std::span<LaneMask> out) const {
  RADIOCAST_CHECK_MSG(out.size() == width_, "out must hold width words");
  for (std::size_t w = 0; w < width_; ++w) {
    out[w] = kAllLanes;
  }
  const std::size_t n = informed_.size() / width_;
  for (std::size_t v = 0; v < n; ++v) {
    LaneMask any = 0;
    for (std::size_t w = 0; w < width_; ++w) {
      out[w] &= informed_[v * width_ + w];
      any |= out[w];
    }
    if (any == 0) {
      break;
    }
  }
}

void BatchBgiBroadcast::live_relayer_lanes(std::span<LaneMask> out) const {
  RADIOCAST_CHECK_MSG(out.size() == width_, "out must hold width words");
  for (std::size_t w = 0; w < width_; ++w) {
    out[w] = 0;
  }
  const std::size_t n = informed_.size() / width_;
  for (std::size_t v = 0; v < n; ++v) {
    bool full = true;
    for (std::size_t w = 0; w < width_; ++w) {
      const std::size_t i = v * width_ + w;
      out[w] |= informed_[i] & ~done_[i];
      full = full && out[w] == kAllLanes;
    }
    if (full) {
      break;
    }
  }
}

CounterCoinBgiBroadcast::CounterCoinBgiBroadcast(const BroadcastParams& params,
                                                 std::uint64_t seed,
                                                 std::uint64_t block,
                                                 std::size_t lane)
    : BgiBroadcast(params),
      rng_(seed),
      coin_(params.stop_probability),
      block_(block),
      lane_(lane) {
  RADIOCAST_CHECK_MSG(lane < sim::batch::kLanes, "lane index out of range");
}

CounterCoinBgiBroadcast::CounterCoinBgiBroadcast(const BroadcastParams& params,
                                                 sim::Message initial,
                                                 std::uint64_t seed,
                                                 std::uint64_t block,
                                                 std::size_t lane)
    : CounterCoinBgiBroadcast(params, seed, block, lane) {
  message_ = std::move(initial);
  informed_at_ = 0;
}

sim::Action CounterCoinBgiBroadcast::on_slot(sim::NodeContext& ctx) {
  // A gap in the poll clock means this node was dead for at least one
  // slot (the simulator polls every live node every slot): abort the
  // interrupted Decay run without phase credit, mirroring the batched
  // engine's lane retirement. A phase listening out its tail
  // (pending_phase_end_) is the same run in its eagerly-completed form,
  // so it loses its credit the same way. kNever + 1 wraps to 0, so the
  // very first poll never looks like a gap.
  if ((run_.has_value() || pending_phase_end_ != 0) &&
      ctx.now() != last_polled_ + 1) {
    run_.reset();
    pending_phase_end_ = 0;
  }
  last_polled_ = ctx.now();
  return BgiBroadcast::on_slot(ctx);
}

sim::Action CounterCoinBgiBroadcast::tick_run(sim::NodeContext& ctx) {
  const std::uint64_t stops =
      decay_stop_mask(rng_, coin_, block_, ctx.now(), ctx.id());
  return run_->tick(((stops >> lane_) & 1U) != 0);
}

}  // namespace radiocast::proto
