#include "radiocast/proto/broadcast_batch.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

using sim::batch::kAllLanes;
using sim::batch::LaneMask;

bool batchable(const BroadcastParams& params) {
  return params.stop_probability == 0.5 && params.align_phases &&
         params.repetitions() < (1U << BatchBgiBroadcast::kPhasePlanes);
}

BatchBgiBroadcast::BatchBgiBroadcast(const BroadcastParams& params,
                                     std::size_t node_count,
                                     std::span<const NodeId> sources,
                                     std::uint64_t seed, std::uint64_t block)
    : k_(params.phase_length()),
      t_(params.repetitions()),
      rng_(seed),
      block_(block),
      decay_(node_count, params.phase_length(), params.send_before_flip),
      informed_(node_count, 0),
      done_(node_count, 0),
      phase_planes_(node_count * kPhasePlanes, 0),
      starters_(node_count, 0) {
  RADIOCAST_CHECK_MSG(batchable(params),
                      "BatchBgiBroadcast needs a batchable parameter set "
                      "(fair coin, aligned phases, t < 256)");
  RADIOCAST_CHECK_MSG(!sources.empty(), "need at least one initiator");
  for (const NodeId s : sources) {
    RADIOCAST_CHECK_MSG(s < node_count, "source id out of range");
    informed_[s] = kAllLanes;
  }
}

void BatchBgiBroadcast::emit(Slot now, LaneMask lanes,
                             std::span<LaneMask> tx) {
  if (now % k_ == 0) {
    // Phase boundary: exactly the scalar protocol's start condition —
    // informed, phases left. Lanes informed mid-phase wait here, like a
    // scalar node waiting for Time mod k = 0 (align_phases is a batchable
    // precondition, so this grid is global).
    const std::size_t n = informed_.size();
    for (NodeId v = 0; v < n; ++v) {
      starters_[v] = informed_[v] & ~done_[v];
    }
    decay_.begin_phase(starters_);
  }
  decay_.tick(now, rng_, block_, lanes, tx);
  if (now % k_ == k_ - 1) {
    credit_phase();
  }
}

void BatchBgiBroadcast::credit_phase() {
  const std::size_t n = informed_.size();
  const std::span<const LaneMask> runs = decay_.runs();
  for (NodeId v = 0; v < n; ++v) {
    const LaneMask credit = runs[v];
    if (credit == 0) {
      continue;
    }
    LaneMask* const planes = &phase_planes_[v * kPhasePlanes];
    LaneMask carry = credit;
    for (std::size_t p = 0; carry != 0 && p < kPhasePlanes; ++p) {
      const LaneMask sum = planes[p] ^ carry;
      carry &= planes[p];
      planes[p] = sum;
    }
    RADIOCAST_CHECK_MSG(carry == 0, "phase counter overflow (t too large)");
    // Lanes whose count just reached t_ are done; only credited lanes can
    // newly reach it (starters exclude done lanes, so counts are <= t_).
    LaneMask eq = credit;
    for (std::size_t p = 0; eq != 0 && p < kPhasePlanes; ++p) {
      eq &= ((t_ >> p) & 1U) != 0 ? planes[p] : ~planes[p];
    }
    done_[v] |= eq;
  }
}

void BatchBgiBroadcast::absorb(Slot /*now*/,
                               std::span<const LaneMask> delivered,
                               std::span<const NodeId> touched) {
  for (const NodeId v : touched) {
    informed_[v] |= delivered[v];
  }
}

LaneMask BatchBgiBroadcast::all_informed_lanes() const {
  LaneMask all = kAllLanes;
  for (const LaneMask m : informed_) {
    all &= m;
    if (all == 0) {
      break;
    }
  }
  return all;
}

LaneMask BatchBgiBroadcast::live_relayer_lanes() const {
  LaneMask live = 0;
  const std::size_t n = informed_.size();
  for (NodeId v = 0; v < n; ++v) {
    live |= informed_[v] & ~done_[v];
    if (live == kAllLanes) {
      break;
    }
  }
  return live;
}

CounterCoinBgiBroadcast::CounterCoinBgiBroadcast(const BroadcastParams& params,
                                                 std::uint64_t seed,
                                                 std::uint64_t block,
                                                 std::size_t lane)
    : BgiBroadcast(params), rng_(seed), block_(block), lane_(lane) {
  RADIOCAST_CHECK_MSG(params.stop_probability == 0.5,
                      "counter-RNG coins are fair by construction");
  RADIOCAST_CHECK_MSG(lane < sim::batch::kLanes, "lane index out of range");
}

CounterCoinBgiBroadcast::CounterCoinBgiBroadcast(const BroadcastParams& params,
                                                 sim::Message initial,
                                                 std::uint64_t seed,
                                                 std::uint64_t block,
                                                 std::size_t lane)
    : CounterCoinBgiBroadcast(params, seed, block, lane) {
  message_ = std::move(initial);
  informed_at_ = 0;
}

sim::Action CounterCoinBgiBroadcast::tick_run(sim::NodeContext& ctx) {
  const std::uint64_t w = decay_coin_word(rng_, block_, ctx.now(), ctx.id());
  return run_->tick(decay_coin_stops(w, lane_));
}

}  // namespace radiocast::proto
