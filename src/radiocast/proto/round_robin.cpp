#include "radiocast/proto/round_robin.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

RoundRobinBroadcast::RoundRobinBroadcast(std::size_t n) : n_(n) {
  RADIOCAST_CHECK_MSG(n >= 1, "need n >= 1");
}

RoundRobinBroadcast::RoundRobinBroadcast(std::size_t n, sim::Message initial)
    : RoundRobinBroadcast(n) {
  message_ = std::move(initial);
  informed_at_ = 0;
}

sim::Action RoundRobinBroadcast::on_slot(sim::NodeContext& ctx) {
  if (informed() && ctx.now() % n_ == ctx.id()) {
    return sim::Action::transmit(*message_);
  }
  return sim::Action::receive();
}

void RoundRobinBroadcast::on_receive(sim::NodeContext& ctx,
                                     const sim::Message& m) {
  if (!informed()) {
    message_ = m;
    informed_at_ = ctx.now();
  }
}

}  // namespace radiocast::proto
