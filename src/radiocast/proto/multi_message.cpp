#include "radiocast/proto/multi_message.hpp"

#include <utility>

#include "radiocast/common/check.hpp"

namespace radiocast::proto {

namespace {

Slot round_up_to_multiple(Slot value, Slot unit) {
  return ((value + unit - 1) / unit) * unit;
}

}  // namespace

MultiMessageBroadcast::MultiMessageBroadcast(MultiMessageParams params)
    : params_(params) {
  RADIOCAST_CHECK_MSG(params_.message_count >= 1, "need >= 1 message");
  const Slot k = params_.base.phase_length();
  RADIOCAST_CHECK_MSG(params_.epoch_length >= k,
                      "epoch must fit at least one Decay phase");
  params_.epoch_length = round_up_to_multiple(params_.epoch_length, k);
}

MultiMessageBroadcast::MultiMessageBroadcast(MultiMessageParams params,
                                             std::vector<sim::Message> messages)
    : MultiMessageBroadcast(params) {
  RADIOCAST_CHECK_MSG(messages.size() == params_.message_count,
                      "source must carry message_count messages");
  is_source_ = true;
  outgoing_ = std::move(messages);
}

void MultiMessageBroadcast::roll_epoch(std::size_t epoch) {
  // Harvest the message obtained in the finished epoch (if any).
  if (inner_.has_value() && !is_source_ && inner_->informed()) {
    delivered_.push_back(inner_->message());
  }
  current_epoch_ = epoch;
  if (epoch >= params_.message_count) {
    inner_.reset();
    terminated_ = true;
    return;
  }
  if (is_source_) {
    inner_.emplace(params_.base, outgoing_[epoch]);
    delivered_.push_back(outgoing_[epoch]);
  } else {
    inner_.emplace(params_.base);
  }
}

sim::Action MultiMessageBroadcast::on_slot(sim::NodeContext& ctx) {
  const auto epoch =
      static_cast<std::size_t>(ctx.now() / params_.epoch_length);
  if (epoch != current_epoch_) {
    roll_epoch(epoch);
  }
  if (!inner_.has_value()) {
    return sim::Action::receive();
  }
  return inner_->on_slot(ctx);
}

void MultiMessageBroadcast::on_receive(sim::NodeContext& ctx,
                                       const sim::Message& m) {
  if (inner_.has_value()) {
    inner_->on_receive(ctx, m);
  }
}

}  // namespace radiocast::proto
