// The paper's basic transmission procedure (§2.1):
//
//   procedure Decay(k, m);
//     repeat at most k times (but at least once!)
//       send m to all neighbors;
//       set coin to 0 or 1 with equal probability
//     until coin = 0.
//
// DecayRun is the per-node state machine for one invocation: it occupies
// exactly k slots; the node transmits in a prefix of them (at least the
// first) and listens for the remainder. Theorem 1: if d >= 2 neighbors of a
// receiver y all start Decay in the same slot, y receives a message within
// k slots with probability > 1/2 whenever k >= 2*log2(d), and the k -> inf
// limit is >= 2/3.
//
// The coin's stop probability is a parameter (default 1/2) to support the
// bias ablation the paper attributes to Hofri [H87].
#pragma once

#include <utility>

#include "radiocast/common/check.hpp"
#include "radiocast/rng/rng.hpp"
#include "radiocast/sim/protocol.hpp"

namespace radiocast::proto {

class DecayRun {
 public:
  /// A run of Decay(k, m). stop_probability is Pr[coin = 0].
  /// Preconditions: k >= 1, stop_probability in [0, 1].
  ///
  /// `send_before_flip` reproduces the paper's order (transmit, then toss;
  /// hence "at least once"). Setting it false gives the flip-first variant
  /// used by the ablation bench: a node may then send zero times, and
  /// Theorem 1's guarantees degrade measurably (a receiver can be starved
  /// by every neighbor bowing out in round one).
  DecayRun(unsigned k, sim::Message m, double stop_probability = 0.5,
           bool send_before_flip = true);

  /// Produces this slot's action and advances the state. Call exactly once
  /// per slot for k consecutive slots.
  sim::Action tick(rng::Rng& rng);

  /// Like tick(rng), but the coin's outcome is supplied by the caller:
  /// `stop_flip` is consumed only when a flip is actually due this slot
  /// (i.e. while transmissions are not done). Counter-RNG engines use this
  /// to feed the (seed, lane, slot, node)-keyed coin that the batched
  /// simulator draws, so a scalar replay is bit-identical to a lane.
  sim::Action tick(bool stop_flip);

  /// True once the node will not transmit again in this run (coin came up
  /// 0, or k transmissions were made).
  bool transmissions_done() const noexcept { return stopped_ || sent_ == k_; }

  /// True after k ticks: the phase this run occupies is over.
  bool phase_over() const noexcept { return ticks_ == k_; }

  unsigned transmissions_sent() const noexcept { return sent_; }
  unsigned k() const noexcept { return k_; }
  const sim::Message& message() const noexcept { return message_; }

 private:
  bool flip_stops(rng::Rng& rng);
  /// Common tick body once the coin outcome is known.
  sim::Action advance(bool stops);

  unsigned k_;
  sim::Message message_;
  double stop_probability_;
  bool send_before_flip_;
  unsigned sent_ = 0;
  unsigned ticks_ = 0;
  bool stopped_ = false;
};

/// The phase length the broadcast/BFS protocols use: k = 2 * ceil(log2(Δ))
/// where Δ is the known upper bound on maximum in-degree, clamped so that
/// k >= 2 (Theorem 1 needs d >= 2 competitors to be meaningful and the
/// procedure needs at least one slot).
unsigned decay_phase_length(std::size_t degree_bound) noexcept;

/// The paper's repetition count t = ceil(log2(N / eps)): how many Decay
/// phases each informed node performs (Lemma 2's union bound needs
/// (1/2)^t <= eps / N). Precondition: N >= 1, 0 < eps <= 1.
unsigned decay_repetitions(std::size_t network_size_bound, double epsilon);

}  // namespace radiocast::proto
