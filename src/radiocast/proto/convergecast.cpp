#include "radiocast/proto/convergecast.hpp"

#include <algorithm>

namespace radiocast::proto {

namespace {
constexpr std::uint64_t kBfsTag = 0xA67;

sim::Message bfs_probe() {
  sim::Message m;
  m.origin = kNoNode;
  m.tag = kBfsTag;
  return m;
}
}  // namespace

Convergecast::Convergecast(ConvergecastParams params, bool is_root,
                           std::uint64_t value)
    : params_(params),
      k_(params.base.phase_length()),
      t_(params.base.repetitions()),
      bfs_(is_root ? BgiBfs(params.base, bfs_probe())
                   : BgiBfs(params.base)),
      value_(value),
      aggregate_(value) {
  RADIOCAST_CHECK_MSG(params.depth_bound >= 1,
                      "convergecast needs a depth bound >= 1");
  RADIOCAST_CHECK_MSG(params.sweeps >= 1, "need at least one sweep");
}

sim::Message Convergecast::aggregate_message(NodeId self) const {
  sim::Message m;
  m.origin = self;
  m.tag = kAggregateTag;
  m.data = {bfs_.informed() ? bfs_.distance() : ~std::uint64_t{0},
            aggregate_};
  return m;
}

sim::Action Convergecast::on_slot(sim::NodeContext& ctx) {
  const Slot now = ctx.now();
  if (now < params_.bfs_horizon()) {
    return bfs_.on_slot(ctx);  // stage 1: establish layers
  }
  if (now >= params_.horizon()) {
    done_ = true;
    return sim::Action::receive();
  }
  if (!bfs_.informed()) {
    return sim::Action::receive();  // unlabelled (prob <= ε): listen only
  }
  // Stage 2: which layer's round is this? Rounds sweep depth_bound..0,
  // repeated `sweeps` times.
  const Slot stage2 = now - params_.bfs_horizon();
  const std::uint64_t round = stage2 / params_.round_length();
  const std::uint64_t layer_of_round =
      params_.depth_bound - (round % (params_.depth_bound + 1));
  if (bfs_.distance() != layer_of_round || bfs_.distance() == 0) {
    // Not our turn (or we are the root, which only collects).
    if (run_.has_value() && relaying_round_ != round) {
      run_.reset();  // round rolled over mid-run safety (should not occur)
    }
    return sim::Action::receive();
  }
  if (!run_.has_value() || relaying_round_ != round) {
    if (now % k_ != 0) {
      return sim::Action::receive();
    }
    run_.emplace(k_, aggregate_message(ctx.id()),
                 params_.base.stop_probability);
    relaying_round_ = round;
  }
  const sim::Action action = run_->tick(ctx.rng());
  if (run_->phase_over()) {
    // Re-arm within our round so all t phases are used, with a fresh
    // snapshot (the aggregate may have grown from same-layer traffic).
    run_.reset();
  }
  return action;
}

void Convergecast::on_receive(sim::NodeContext& ctx,
                              const sim::Message& m) {
  if (ctx.now() < params_.bfs_horizon()) {
    if (m.tag == kBfsTag) {
      bfs_.on_receive(ctx, m);
    }
    return;
  }
  if (m.tag != kAggregateTag || m.data.size() != 2) {
    return;
  }
  // Merging is idempotent and monotone, so anything heard is safe to take
  // — the layer schedule only matters for guaranteeing coverage.
  aggregate_ = std::max(aggregate_, m.data[1]);
}

}  // namespace radiocast::proto
