#include "radiocast/graph/families.hpp"

#include <algorithm>

#include "radiocast/common/check.hpp"

namespace radiocast::graph {

namespace {

std::vector<NodeId> sorted_unique(std::span<const NodeId> xs) {
  std::vector<NodeId> out(xs.begin(), xs.end());
  std::ranges::sort(out);
  RADIOCAST_CHECK_MSG(std::ranges::adjacent_find(out) == out.end(),
                      "subset has duplicate members");
  return out;
}

void check_range(const std::vector<NodeId>& xs, NodeId lo, NodeId hi,
                 const char* what) {
  RADIOCAST_CHECK_MSG(!xs.empty(), what);
  RADIOCAST_CHECK_MSG(xs.front() >= lo && xs.back() <= hi,
                      "subset member out of range");
}

}  // namespace

CnNetwork make_cn(std::size_t n, std::span<const NodeId> s) {
  RADIOCAST_CHECK_MSG(n >= 1, "C_n needs n >= 1");
  CnNetwork net{Graph(n + 2), 0, static_cast<NodeId>(n + 1),
                sorted_unique(s)};
  check_range(net.s, 1, static_cast<NodeId>(n), "S must be non-empty");
  for (NodeId i = 1; i <= n; ++i) {
    net.g.add_edge(net.source, i);  // E1: source to entire second layer
  }
  for (const NodeId i : net.s) {
    net.g.add_edge(i, net.sink);  // E2: S to the sink
  }
  return net;
}

CnNetwork make_cn_random(std::size_t n, rng::Rng& rng) {
  const auto s = random_nonempty_subset(1, static_cast<NodeId>(n), rng);
  return make_cn(n, s);
}

CnStarNetwork make_cn_star(std::size_t n, std::span<const NodeId> s,
                           std::span<const NodeId> r) {
  RADIOCAST_CHECK_MSG(n >= 1, "C*_n needs n >= 1");
  CnStarNetwork net{Graph(2 * n + 1), 0, sorted_unique(s), sorted_unique(r)};
  check_range(net.s, 1, static_cast<NodeId>(n), "S must be non-empty");
  check_range(net.sinks, static_cast<NodeId>(n + 1),
              static_cast<NodeId>(2 * n), "R must be non-empty");
  for (NodeId i = 1; i <= n; ++i) {
    net.g.add_edge(net.source, i);
  }
  for (const NodeId i : net.s) {
    for (const NodeId j : net.sinks) {
      net.g.add_edge(i, j);
    }
  }
  return net;
}

CnStarNetwork make_cn_star_random(std::size_t n, rng::Rng& rng) {
  const auto s = random_nonempty_subset(1, static_cast<NodeId>(n), rng);
  const auto r = random_nonempty_subset(static_cast<NodeId>(n + 1),
                                        static_cast<NodeId>(2 * n), rng);
  return make_cn_star(n, s, r);
}

std::vector<NodeId> random_nonempty_subset(NodeId lo, NodeId hi,
                                           rng::Rng& rng) {
  RADIOCAST_CHECK_MSG(lo <= hi, "empty range");
  std::vector<NodeId> out;
  for (NodeId v = lo; v <= hi; ++v) {
    if (rng.fair_coin()) {
      out.push_back(v);
    }
  }
  if (out.empty()) {
    // Condition on non-emptiness by inserting a uniform member.
    out.push_back(lo + static_cast<NodeId>(rng.uniform(hi - lo + 1)));
  }
  return out;
}

std::vector<NodeId> subset_from_mask(std::size_t n, std::uint64_t mask) {
  RADIOCAST_CHECK_MSG(n <= 64, "mask covers at most 64 elements");
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i) {
    if ((mask >> i) & 1U) {
      out.push_back(static_cast<NodeId>(i + 1));
    }
  }
  return out;
}

}  // namespace radiocast::graph
