// Topology generators for the experiment harness.
//
// Deterministic generators (path, grid, ...) are pure; randomized ones take
// an rng::Rng so a (seed, parameters) pair always reproduces the same graph.
// All generators that promise connectivity enforce it by construction rather
// than by rejection sampling, so they are O(n + m) and never loop forever.
#pragma once

#include <cstddef>

#include "radiocast/graph/graph.hpp"
#include "radiocast/rng/rng.hpp"

namespace radiocast::graph {

/// 0 - 1 - 2 - ... - (n-1). Diameter n-1.
Graph path(std::size_t n);

/// Cycle on n >= 3 nodes. Diameter floor(n/2).
Graph cycle(std::size_t n);

/// Node 0 is the hub, connected to 1..n-1. The canonical Decay testbed:
/// the hub has in-degree n-1.
Graph star(std::size_t n);

/// Complete graph K_n.
Graph clique(std::size_t n);

/// Complete bipartite graph: parts {0..a-1} and {a..a+b-1}.
Graph complete_bipartite(std::size_t a, std::size_t b);

/// rows x cols grid, 4-neighborhood. Node (r, c) has id r*cols + c.
Graph grid(std::size_t rows, std::size_t cols);

/// Hypercube on 2^dim nodes: ids adjacent iff they differ in one bit.
Graph hypercube(unsigned dim);

/// Uniformly random labelled tree on n nodes (Prüfer-sequence decoding).
Graph random_tree(std::size_t n, rng::Rng& rng);

/// Erdős–Rényi G(n, p): every undirected edge present independently with
/// probability p. Not necessarily connected.
Graph gnp(std::size_t n, double p, rng::Rng& rng);

/// G(n, p) unioned with a uniformly random spanning tree, so the result is
/// always connected while retaining G(n,p)-like density for p >> 1/n.
Graph connected_gnp(std::size_t n, double p, rng::Rng& rng);

/// Side length of the square bucket grid used for geometric neighbor
/// search: min(floor(1/radius), O(sqrt(n))), at least 1. The clamp keeps
/// the bucket array O(n) for tiny radii while the cell side stays >= radius,
/// so a 3x3 cell neighborhood still covers every in-radius pair. Shared by
/// random_geometric and implicit.hpp's UnitDiskTopology so both resolve the
/// same cell structure.
std::size_t geometric_cell_count(std::size_t n, double radius);

/// Random geometric ("unit disk") graph: n points uniform in the unit
/// square, edge iff Euclidean distance <= radius; a spanning chain over the
/// points sorted by x (ties broken by index) is added if needed to
/// guarantee connectivity. This models physical radio reachability.
Graph random_geometric(std::size_t n, double radius, rng::Rng& rng);

/// `layers` cliques of `width` nodes each, chained: every node of layer i is
/// connected to every node of layer i+1 and to the rest of its own layer.
/// Diameter = layers - 1 with n = layers * width: lets experiments sweep D
/// and n independently (used for the Theorem 4 time-bound series).
Graph path_of_cliques(std::size_t layers, std::size_t width);

/// A directed graph where every node is reachable from node 0 but links are
/// asymmetric: a random out-arborescence from 0 plus `extra_arcs` random
/// one-way arcs. Models transmitters of unequal power (§2.2 property 4).
Graph random_strongly_reachable_digraph(std::size_t n, std::size_t extra_arcs,
                                        rng::Rng& rng);

}  // namespace radiocast::graph
